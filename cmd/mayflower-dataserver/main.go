// Command mayflower-dataserver runs a Mayflower chunk storage server: a
// control RPC endpoint for prepares, appends and scans, and a bulk data
// endpoint for reads (§3.3.2 of the paper). It registers with the
// nameserver on startup.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mayflower-dataserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mayflower-dataserver", flag.ContinueOnError)
	var (
		id        = fs.String("id", "", "stable server identity (required)")
		root      = fs.String("root", "mayflower-data", "chunk store directory")
		host      = fs.String("host", "", "topology host name this server runs on (required)")
		pod       = fs.Int("pod", 0, "fault-domain pod index")
		rack      = fs.Int("rack", 0, "fault-domain rack index")
		ctlAddr   = fs.String("listen-control", "127.0.0.1:0", "control RPC listen address")
		dataAdr   = fs.String("listen-data", "127.0.0.1:0", "bulk data listen address")
		nsAddr    = fs.String("nameserver", "127.0.0.1:7000", "nameserver RPC address")
		fsrvAddr  = fs.String("flowserver", "", "flowserver RPC address for network-scheduled replication relays (optional; empty = static relay order)")
		fdirAddr  = fs.String("flow-directory", "", "flow-directory RPC address for shard-routed relays (optional; -flowserver wins when both are set)")
		debugAddr = fs.String("debug-addr", "", "serve /debug/metrics (runtime gauges) on this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *host == "" {
		return fmt.Errorf("-id and -host are required")
	}

	// The registry must exist before New so the server's control-plane
	// peer pool can publish its per-peer RPC counters into it.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
	}
	srv, err := dataserver.New(dataserver.Config{
		ID:                *id,
		Root:              *root,
		Host:              *host,
		Pod:               *pod,
		Rack:              *rack,
		FlowserverAddr:    *fsrvAddr,
		FlowDirectoryAddr: *fdirAddr,
		Logger:            log.Default(),
		Metrics:           reg,
	})
	if err != nil {
		return err
	}
	ctlLn, err := net.Listen("tcp", *ctlAddr)
	if err != nil {
		return err
	}
	dataLn, err := net.Listen("tcp", *dataAdr)
	if err != nil {
		ctlLn.Close()
		return err
	}
	if err := srv.Start(ctlLn, dataLn, *nsAddr); err != nil {
		return err
	}
	if *debugAddr != "" {
		dbg, bound, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			srv.Close()
			return err
		}
		defer dbg.Close()
		log.Printf("dataserver %s: metrics on http://%s/debug/metrics", *id, bound)
	}
	log.Printf("dataserver %s on host %s: control %s, data %s", *id, *host, srv.ControlAddr(), srv.DataAddr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	log.Printf("dataserver %s shutting down on %v", *id, sig)
	return srv.Close()
}
