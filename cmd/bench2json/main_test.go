package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/mayflower-dfs/mayflower/internal/netsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNetsimChurn/1k-8         	    1000	   1629307 ns/op	  150098 B/op	      18 allocs/op
BenchmarkNetsimChurn/10k-8        	      20	 374168232 ns/op	 1052857 B/op	      18 allocs/op
--- BENCH: BenchmarkNetsimChurn/10k
    bench_test.go:63: rng seed: 42
PASS
ok  	github.com/mayflower-dfs/mayflower/internal/netsim	925.211s
pkg: github.com/mayflower-dfs/mayflower/internal/flowserver
BenchmarkSelect/1k-8              	     100	   1457535 ns/op
PASS
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.Goos, rep.Goarch)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkNetsimChurn/10k" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Package != "github.com/mayflower-dfs/mayflower/internal/netsim" {
		t.Errorf("package = %q", b.Package)
	}
	if b.Iters != 20 || b.NsPerOp != 374168232 {
		t.Errorf("iters/ns = %d/%g", b.Iters, b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1052857 {
		t.Errorf("bytes_per_op = %v", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 18 {
		t.Errorf("allocs_per_op = %v", b.AllocsPerOp)
	}

	sel := rep.Benchmarks[2]
	if sel.Package != "github.com/mayflower-dfs/mayflower/internal/flowserver" {
		t.Errorf("package not updated across pkg lines: %q", sel.Package)
	}
	if sel.BytesPerOp != nil || sel.AllocsPerOp != nil {
		t.Error("memory stats invented for a line without -benchmem")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Error("no error for input without benchmark lines")
	}
}

func fp(v float64) *float64 { return &v }

func baselineReport() *Report {
	return &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSelect/1k", NsPerOp: 1000, AllocsPerOp: fp(3)},
		{Name: "BenchmarkNetsimChurn/1k", NsPerOp: 2000, AllocsPerOp: fp(7)},
	}}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSelect/1k", NsPerOp: 1150, AllocsPerOp: fp(3)},
		{Name: "BenchmarkNetsimChurn/1k", NsPerOp: 1800, AllocsPerOp: fp(7)},
		{Name: "BenchmarkNew/extra", NsPerOp: 50},
	}}
	var out strings.Builder
	if err := compare(&out, baselineReport(), cur, 0.20); err != nil {
		t.Fatalf("compare failed within budget: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Errorf("extra benchmark not reported as new:\n%s", out.String())
	}
}

func TestCompareFailsOnSlowdown(t *testing.T) {
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSelect/1k", NsPerOp: 1300, AllocsPerOp: fp(3)},
		{Name: "BenchmarkNetsimChurn/1k", NsPerOp: 2000, AllocsPerOp: fp(7)},
	}}
	var out strings.Builder
	err := compare(&out, baselineReport(), cur, 0.20)
	if err == nil {
		t.Fatalf("compare passed a 30%% slowdown:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkSelect/1k") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
}

func TestCompareFailsOnAllocGrowth(t *testing.T) {
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSelect/1k", NsPerOp: 900, AllocsPerOp: fp(4)},
		{Name: "BenchmarkNetsimChurn/1k", NsPerOp: 1900, AllocsPerOp: fp(7)},
	}}
	var out strings.Builder
	if err := compare(&out, baselineReport(), cur, 0.20); err == nil {
		t.Fatalf("compare passed an allocs/op increase:\n%s", out.String())
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSelect/1k", NsPerOp: 1000, AllocsPerOp: fp(3)},
	}}
	var out strings.Builder
	err := compare(&out, baselineReport(), cur, 0.20)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing baseline benchmark not flagged: %v\n%s", err, out.String())
	}
}
