package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/mayflower-dfs/mayflower/internal/netsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNetsimChurn/1k-8         	    1000	   1629307 ns/op	  150098 B/op	      18 allocs/op
BenchmarkNetsimChurn/10k-8        	      20	 374168232 ns/op	 1052857 B/op	      18 allocs/op
--- BENCH: BenchmarkNetsimChurn/10k
    bench_test.go:63: rng seed: 42
PASS
ok  	github.com/mayflower-dfs/mayflower/internal/netsim	925.211s
pkg: github.com/mayflower-dfs/mayflower/internal/flowserver
BenchmarkSelect/1k-8              	     100	   1457535 ns/op
PASS
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.Goos, rep.Goarch)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkNetsimChurn/10k" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Package != "github.com/mayflower-dfs/mayflower/internal/netsim" {
		t.Errorf("package = %q", b.Package)
	}
	if b.Iters != 20 || b.NsPerOp != 374168232 {
		t.Errorf("iters/ns = %d/%g", b.Iters, b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1052857 {
		t.Errorf("bytes_per_op = %v", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 18 {
		t.Errorf("allocs_per_op = %v", b.AllocsPerOp)
	}

	sel := rep.Benchmarks[2]
	if sel.Package != "github.com/mayflower-dfs/mayflower/internal/flowserver" {
		t.Errorf("package not updated across pkg lines: %q", sel.Package)
	}
	if sel.BytesPerOp != nil || sel.AllocsPerOp != nil {
		t.Error("memory stats invented for a line without -benchmem")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Error("no error for input without benchmark lines")
	}
}
