// Command bench2json converts `go test -bench` text output into a stable
// JSON document. The Makefile's bench target pipes the selection and churn
// benchmarks through it to produce BENCH_selection.json, the committed
// performance baseline for the incremental allocator hot path.
//
// Usage:
//
//	go test -bench . -benchmem ./... | bench2json > bench.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkNetsimChurn/10k".
	Name    string  `json:"name"`
	Package string  `json:"package,omitempty"`
	Iters   int64   `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was set.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and collects every benchmark result
// line, tagging each with the package it ran in.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return rep, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName/sub-8  20  374168232 ns/op  1052857 B/op  18 allocs/op
//
// Reporting lines ("--- BENCH: ...") and malformed lines return ok=false.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are machine-independent.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iters: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		}
	}
	return b, seenNs
}
