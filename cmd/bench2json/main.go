// Command bench2json converts `go test -bench` text output into a stable
// JSON document. The Makefile's bench target pipes the selection and churn
// benchmarks through it to produce BENCH_selection.json, the committed
// performance baseline for the incremental allocator hot path.
//
// It also gates CI on that baseline: with -compare, instead of emitting
// JSON it diffs the parsed results against a committed baseline and
// exits nonzero when any baseline benchmark is missing, slows down by
// more than -max-regress, or allocates more per op.
//
// Usage:
//
//	go test -bench . -benchmem ./... | bench2json > bench.json
//	go test -bench . -benchmem ./... | bench2json -compare BENCH_selection.json -max-regress 0.20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkNetsimChurn/10k".
	Name    string  `json:"name"`
	Package string  `json:"package,omitempty"`
	Iters   int64   `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was set.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		compareFile = flag.String("compare", "", "baseline JSON to diff against instead of emitting JSON; exit 1 on regression")
		maxRegress  = flag.Float64("max-regress", 0.20, "with -compare: allowed fractional ns/op slowdown per benchmark")
	)
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}

	if *compareFile != "" {
		base, err := loadReport(*compareFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		if err := compare(os.Stdout, base, rep, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// loadReport reads a baseline JSON document written by this tool.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in baseline", path)
	}
	return &rep, nil
}

// compare diffs cur against every baseline benchmark, printing one line
// per comparison, and returns an error if any baseline benchmark is
// missing from cur, slowed down by more than maxRegress, or allocates
// more per op than the baseline. Benchmarks present only in cur are
// noted but never fail the gate (the baseline defines the contract).
// Iteration counts and absolute machine speed vary between hosts, so
// the gate is relative: cur ns/op vs baseline ns/op on the same run's
// machine is only meaningful when both sides ran on comparable hardware
// — which is why CI regenerates the current side in the same job.
func compare(w io.Writer, base, cur *Report, maxRegress float64) error {
	byName := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Fprintf(w, "%-28s %14s %14s %8s  %s\n", "benchmark", "base ns/op", "cur ns/op", "delta", "verdict")
	var failures []string
	for _, b := range base.Benchmarks {
		c, ok := byName[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s %14.0f %14s %8s  MISSING\n", b.Name, b.NsPerOp, "-", "-")
			failures = append(failures, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		delete(byName, b.Name)
		delta := c.NsPerOp/b.NsPerOp - 1
		verdict := "ok"
		if delta > maxRegress {
			verdict = "REGRESS"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs %.0f baseline (%+.1f%% > %+.1f%% allowed)",
				b.Name, c.NsPerOp, b.NsPerOp, delta*100, maxRegress*100))
		}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil && *c.AllocsPerOp > *b.AllocsPerOp {
			verdict = "REGRESS"
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs %.0f baseline",
				b.Name, *c.AllocsPerOp, *b.AllocsPerOp))
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %+7.1f%%  %s\n", b.Name, b.NsPerOp, c.NsPerOp, delta*100, verdict)
	}
	for name := range byName {
		fmt.Fprintf(w, "%-28s %14s %14.0f %8s  new\n", name, "-", byName[name].NsPerOp, "-")
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// parse reads `go test -bench` output and collects every benchmark result
// line, tagging each with the package it ran in.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return rep, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName/sub-8  20  374168232 ns/op  1052857 B/op  18 allocs/op
//
// Reporting lines ("--- BENCH: ...") and malformed lines return ok=false.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are machine-independent.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iters: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		}
	}
	return b, seenNs
}
