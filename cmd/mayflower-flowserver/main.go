// Command mayflower-flowserver runs Mayflower's Flowserver as a
// standalone SDN controller application (§3.3.3 of the paper): software
// switches dial its OpenFlow-style controller port, it polls their byte
// counters to model per-flow bandwidth, and it serves the replica-path
// selection RPC that clients (or any other distributed application — the
// service is not tied to Mayflower, §5) call before starting a transfer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/sdn"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mayflower-flowserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mayflower-flowserver", flag.ContinueOnError)
	var (
		rpcAddr   = fs.String("listen", "127.0.0.1:7100", "replica-path selection RPC listen address")
		ofAddr    = fs.String("controller-listen", "127.0.0.1:6633", "OpenFlow-style controller listen address")
		poll      = fs.Duration("poll", time.Second, "switch stats polling interval")
		multi     = fs.Bool("multiread", false, "enable §4.3 multi-replica read splitting")
		pods      = fs.Int("pods", 4, "topology: pods")
		racks     = fs.Int("racks", 4, "topology: racks per pod")
		hosts     = fs.Int("hosts", 4, "topology: hosts per rack")
		aggs      = fs.Int("aggs", 2, "topology: aggregation switches per pod")
		cores     = fs.Int("cores", 2, "topology: core switches")
		edgeMbps  = fs.Float64("edge-mbps", 1000, "edge link capacity (Mbps)")
		eaMbps    = fs.Float64("edgeagg-mbps", 1000, "edge-aggregation link capacity (Mbps)")
		acMbps    = fs.Float64("aggcore-mbps", 500, "aggregation-core link capacity (Mbps)")
		debugAddr = fs.String("debug-addr", "", "serve /debug/metrics (selection/poll counters, runtime gauges) on this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, err := topology.New(topology.Config{
		Pods:           *pods,
		RacksPerPod:    *racks,
		HostsPerRack:   *hosts,
		AggsPerPod:     *aggs,
		Cores:          *cores,
		EdgeLinkBps:    topology.Mbps(*edgeMbps),
		EdgeAggLinkBps: topology.Mbps(*eaMbps),
		AggCoreLinkBps: topology.Mbps(*acMbps),
	})
	if err != nil {
		return err
	}

	controller := sdn.NewController()
	ofBound, err := controller.Listen(*ofAddr)
	if err != nil {
		return err
	}
	defer controller.Close()

	reg := obs.NewRegistry()
	start := time.Now()
	srv := flowserver.New(topo, flowserver.Options{
		MultiReplica: *multi,
		Now:          func() float64 { return time.Since(start).Seconds() },
		Metrics:      reg,
	})
	if *debugAddr != "" {
		obs.RegisterRuntimeMetrics(reg)
		dbg, bound, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Printf("flowserver: metrics on http://%s/debug/metrics", bound)
	}

	rpc := wire.NewServer()
	hooks := flowserver.Hooks{
		OnAssign: func(a flowserver.Assignment) {
			for _, l := range a.Path {
				link := topo.Link(l)
				if topo.Node(link.From).Kind == topology.KindHost {
					continue
				}
				if err := controller.InstallFlow(uint64(link.From), uint64(a.FlowID), uint32(l)); err != nil {
					log.Printf("install flow %d on switch %d: %v", a.FlowID, link.From, err)
				}
			}
		},
		OnFinish: func(id flowserver.FlowID) {
			for _, dpid := range controller.Switches() {
				_ = controller.RemoveFlow(dpid, uint64(id))
			}
		},
	}
	if err := flowserver.RegisterRPC(rpc, srv, topo, hooks); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *rpcAddr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- rpc.Serve(ln) }()
	log.Printf("flowserver: RPC on %s, controller on %s, polling every %v", ln.Addr(), ofBound, *poll)

	stop := make(chan struct{})
	done := make(chan struct{})
	go pollStats(controller, srv, topo, *poll, start, stop, done)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		close(stop)
		<-done
		return err
	case sig := <-sigc:
		log.Printf("flowserver shutting down on %v", sig)
		close(stop)
		<-done
		return rpc.Close()
	}
}

// pollStats periodically collects per-flow byte counters from the edge
// switches and feeds them to the Flowserver's bandwidth model.
func pollStats(controller *sdn.Controller, srv *flowserver.Server, topo *topology.Topology, interval time.Duration, start time.Time, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		byFlow := make(map[flowserver.FlowID]float64)
		for _, edge := range topo.EdgeSwitches() {
			stats, err := controller.FlowStats(ctx, uint64(edge))
			if err != nil {
				continue
			}
			for _, st := range stats {
				id := flowserver.FlowID(st.FlowID)
				if bits := float64(st.ByteCount) * 8; bits > byFlow[id] {
					byFlow[id] = bits
				}
			}
		}
		cancel()
		batch := make([]flowserver.FlowStat, 0, len(byFlow))
		for id, bits := range byFlow {
			batch = append(batch, flowserver.FlowStat{ID: id, TransferredBits: bits})
		}
		srv.UpdateFlowStats(time.Since(start).Seconds(), batch)
	}
}
