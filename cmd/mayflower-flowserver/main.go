// Command mayflower-flowserver runs Mayflower's Flowserver as a
// standalone SDN controller application (§3.3.3 of the paper): software
// switches dial its OpenFlow-style controller port, it polls their byte
// counters to model per-flow bandwidth, and it serves the replica-path
// selection RPC that clients (or any other distributed application — the
// service is not tied to Mayflower, §5) call before starting a transfer.
//
// With -shards N (and -shard-id K) the process runs one shard of the
// partitioned flowctl control plane instead of the monolithic server:
// it serves selections for the pods the shard directory assigns it,
// exchanges foreign commits and utilization digests with its peer
// shards (-peers), and renews an epoch-numbered lease against the
// directory (-directory-addr; one process, usually shard 0, also hosts
// the directory via -directory-listen). Clients and dataservers resolve
// pod ownership through the directory and re-route on epoch bumps.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/flowctl"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/sdn"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mayflower-flowserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mayflower-flowserver", flag.ContinueOnError)
	var (
		rpcAddr   = fs.String("listen", "127.0.0.1:7100", "replica-path selection RPC listen address")
		ofAddr    = fs.String("controller-listen", "127.0.0.1:6633", "OpenFlow-style controller listen address")
		poll      = fs.Duration("poll", time.Second, "switch stats polling interval")
		multi     = fs.Bool("multiread", false, "enable §4.3 multi-replica read splitting")
		pods      = fs.Int("pods", 4, "topology: pods")
		racks     = fs.Int("racks", 4, "topology: racks per pod")
		hosts     = fs.Int("hosts", 4, "topology: hosts per rack")
		aggs      = fs.Int("aggs", 2, "topology: aggregation switches per pod")
		cores     = fs.Int("cores", 2, "topology: core switches")
		edgeMbps  = fs.Float64("edge-mbps", 1000, "edge link capacity (Mbps)")
		eaMbps    = fs.Float64("edgeagg-mbps", 1000, "edge-aggregation link capacity (Mbps)")
		acMbps    = fs.Float64("aggcore-mbps", 500, "aggregation-core link capacity (Mbps)")
		debugAddr = fs.String("debug-addr", "", "serve /debug/metrics (selection/poll counters, runtime gauges) on this address")

		shards    = fs.Int("shards", 1, "total flowctl shard count (1 runs the monolithic server)")
		shardID   = fs.Int("shard-id", 0, "this process's shard index in [0, shards)")
		peers     = fs.String("peers", "", "comma-separated selection RPC addresses of all shards, index-ordered (required when -shards > 1)")
		dirListen = fs.String("directory-listen", "", "also host the shard directory on this address (one process per deployment)")
		dirAddr   = fs.String("directory-addr", "", "shard directory to heartbeat against (defaults to -directory-listen)")
		heartbeat = fs.Duration("heartbeat", time.Second, "shard lease renewal interval; the lease TTL is 3x this")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if *shardID < 0 || *shardID >= *shards {
		return fmt.Errorf("-shard-id %d out of range for %d shards", *shardID, *shards)
	}
	sharded := *shards > 1 || *dirListen != "" || *dirAddr != ""
	if sharded && *multi {
		return fmt.Errorf("-multiread needs the monolithic server: §4.3 splitting is not partitioned")
	}

	topo, err := topology.New(topology.Config{
		Pods:           *pods,
		RacksPerPod:    *racks,
		HostsPerRack:   *hosts,
		AggsPerPod:     *aggs,
		Cores:          *cores,
		EdgeLinkBps:    topology.Mbps(*edgeMbps),
		EdgeAggLinkBps: topology.Mbps(*eaMbps),
		AggCoreLinkBps: topology.Mbps(*acMbps),
	})
	if err != nil {
		return err
	}

	controller := sdn.NewController()
	ofBound, err := controller.Listen(*ofAddr)
	if err != nil {
		return err
	}
	defer controller.Close()

	reg := obs.NewRegistry()
	start := time.Now()
	now := func() float64 { return time.Since(start).Seconds() }

	// The selection service is either the monolithic flowserver or one
	// flowctl shard; both satisfy flowserver.Service and feed the same
	// counter-poll loop.
	var (
		svc      flowserver.Service
		sink     statsSink
		pollTick func()
		shard    *flowctl.Shard
		pool     *rpc.Pool
	)
	if !sharded {
		srv := flowserver.New(topo, flowserver.Options{
			MultiReplica: *multi,
			Now:          now,
			Metrics:      reg,
		})
		svc, sink = srv, srv
	} else {
		pool = rpc.NewPool(rpc.Options{Metrics: reg, MetricsPrefix: "flowserver.rpc"})
		defer pool.Close()
		met := flowctl.NewMetrics()
		met.Register(reg)
		// The directory's initial layout: pod p belongs to shard p mod N
		// under epoch 1. A shard boots with the same map and converges to
		// the directory's via heartbeats.
		owner := make([]int, *pods)
		for p := range owner {
			owner[p] = p % *shards
		}
		shard, err = flowctl.NewShard(topo, flowctl.ShardConfig{
			Index:   *shardID,
			Shards:  *shards,
			Owner:   owner,
			Epoch:   1,
			Now:     now,
			Metrics: met,
		})
		if err != nil {
			return err
		}
		if *shards > 1 {
			addrs := strings.Split(*peers, ",")
			if len(addrs) != *shards {
				return fmt.Errorf("-peers lists %d addresses for %d shards", len(addrs), *shards)
			}
			mkCtx := func() (context.Context, context.CancelFunc) {
				return context.WithTimeout(context.Background(), 2*time.Second)
			}
			links := make([]flowctl.ShardLink, *shards)
			for k, a := range addrs {
				if k == *shardID {
					continue
				}
				links[k] = flowctl.NewRPCShardLink(pool.Peer(strings.TrimSpace(a)), mkCtx)
			}
			shard.SetPeers(links)
		}
		svc, sink = shard, shard.Server()
		pollTick = shard.RefreshDigests
	}

	if *debugAddr != "" {
		obs.RegisterRuntimeMetrics(reg)
		dbg, bound, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Printf("flowserver: metrics on http://%s/debug/metrics", bound)
	}

	rpcSrv := wire.NewServer()
	hooks := flowserver.Hooks{
		OnAssign: func(a flowserver.Assignment) {
			for _, l := range a.Path {
				link := topo.Link(l)
				if topo.Node(link.From).Kind == topology.KindHost {
					continue
				}
				if err := controller.InstallFlow(uint64(link.From), uint64(a.FlowID), uint32(l)); err != nil {
					log.Printf("install flow %d on switch %d: %v", a.FlowID, link.From, err)
				}
			}
		},
		OnFinish: func(id flowserver.FlowID) {
			for _, dpid := range controller.Switches() {
				_ = controller.RemoveFlow(dpid, uint64(id))
			}
		},
	}
	if err := flowserver.RegisterRPC(rpcSrv, svc, topo, hooks); err != nil {
		return err
	}
	if shard != nil {
		if err := flowctl.RegisterShardRPC(rpcSrv, shard, now); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", *rpcAddr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- rpcSrv.Serve(ln) }()
	log.Printf("flowserver: RPC on %s, controller on %s, polling every %v", ln.Addr(), ofBound, *poll)

	stop := make(chan struct{})
	done := make(chan struct{})
	go pollStats(controller, sink, topo, *poll, start, pollTick, stop, done)

	// Directory: optionally hosted here, heartbeated against either way.
	if *dirListen != "" {
		dir, err := flowctl.NewDirectory(*pods, *shards)
		if err != nil {
			return err
		}
		dirSrv := wire.NewServer()
		if err := flowctl.RegisterDirectoryRPC(dirSrv, dir, now); err != nil {
			return err
		}
		dln, err := net.Listen("tcp", *dirListen)
		if err != nil {
			return err
		}
		go dirSrv.Serve(dln) //nolint:errcheck // Serve returns on Close
		defer dirSrv.Close()
		if *dirAddr == "" {
			*dirAddr = dln.Addr().String()
		}
		log.Printf("flowserver: shard directory on %s", dln.Addr())
	}
	if sharded && *dirAddr != "" {
		go heartbeatLoop(pool, *dirAddr, shard, *shardID, *pods, ln.Addr().String(), *heartbeat, stop)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		close(stop)
		<-done
		return err
	case sig := <-sigc:
		log.Printf("flowserver shutting down on %v", sig)
		close(stop)
		<-done
		return rpcSrv.Close()
	}
}

// statsSink is where polled flow counters land: the monolithic server
// or a shard's embedded one.
type statsSink interface {
	UpdateFlowStats(now float64, stats []flowserver.FlowStat)
}

// heartbeatLoop renews this shard's directory lease. An epoch change in
// the reply means ownership moved while this shard was (or appeared)
// away — the pod→shard map is rebuilt with per-pod Lookups so the shard
// starts honoring (or refusing) the pods the directory says it owns.
func heartbeatLoop(pool *rpc.Pool, dirAddr string, shard *flowctl.Shard, shardID, pods int,
	selAddr string, interval time.Duration, stop <-chan struct{}) {

	dc := flowctl.NewDirectoryClient(pool.Peer(dirAddr))
	ttl := 3 * interval.Seconds()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var last int64
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		epoch, err := dc.Heartbeat(ctx, shardID, selAddr, ttl)
		if err == nil && epoch != last {
			owner := make([]int, pods)
			ok := true
			for p := range owner {
				rep, err := dc.Lookup(ctx, p)
				if err != nil {
					ok = false
					break
				}
				owner[p] = rep.Shard
			}
			if ok {
				shard.SetOwners(owner, epoch)
				last = epoch
			}
		}
		cancel()
	}
}

// pollStats periodically collects per-flow byte counters from the edge
// switches and feeds them to the bandwidth model; in sharded mode each
// poll also refreshes the peer digests (tick), which is what bounds
// cross-shard staleness to the poll cadence.
func pollStats(controller *sdn.Controller, sink statsSink, topo *topology.Topology, interval time.Duration, start time.Time, tick func(), stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		byFlow := make(map[flowserver.FlowID]float64)
		for _, edge := range topo.EdgeSwitches() {
			stats, err := controller.FlowStats(ctx, uint64(edge))
			if err != nil {
				continue
			}
			for _, st := range stats {
				id := flowserver.FlowID(st.FlowID)
				if bits := float64(st.ByteCount) * 8; bits > byFlow[id] {
					byFlow[id] = bits
				}
			}
		}
		cancel()
		batch := make([]flowserver.FlowStat, 0, len(byFlow))
		for id, bits := range byFlow {
			batch = append(batch, flowserver.FlowStat{ID: id, TransferredBits: bits})
		}
		sink.UpdateFlowStats(time.Since(start).Seconds(), batch)
		if tick != nil {
			tick()
		}
	}
}
