// Command mayflower-sim runs the Mayflower simulation experiments and
// prints the tables behind the paper's figures.
//
// Usage:
//
//	mayflower-sim -fig 4            # Figure 4 (normalized comparison)
//	mayflower-sim -fig 5            # Figure 5 (client locality sweep)
//	mayflower-sim -fig 6a           # Figure 6(a) (λ sweep, rack-heavy)
//	mayflower-sim -fig 6b           # Figure 6(b) (λ sweep, core-heavy)
//	mayflower-sim -fig 7            # Figure 7 (oversubscription)
//	mayflower-sim -fig 8            # Figure 8 (HDFS integration)
//	mayflower-sim -fig 9            # Figure 9 (write-workload sweep)
//	mayflower-sim -fig multiread    # §4.3 multi-replica reads
//	mayflower-sim -fig background   # robustness to unscheduled cross traffic
//	mayflower-sim -fig ablate-cost  # DESIGN.md ablation: Eq. 2 impact term
//	mayflower-sim -fig ablate-freeze
//	mayflower-sim -fig ablate-poll  # stats-poll interval sensitivity
//	mayflower-sim -fig shards       # flowctl shard-count sweep
//	mayflower-sim -fig all          # everything above
//
// Scale knobs: -jobs, -warmup, -files, -lambda, -seed, -oversub, -multi,
// -write-frac (run a read/append mix through any figure).
// Control plane: -shards N runs the Flowserver schemes on the sharded
// flowctl plane (0 = the single in-process Flowserver; 1 is
// byte-identical to 0; >= 2 partitions the link model by pod).
// Parallelism: -j bounds how many sweep cells run concurrently (0 =
// GOMAXPROCS); -trials repeats every figure cell on derived seeds and
// reports Student-t confidence intervals over the trial means. Tables
// are byte-identical for every -j value.
// Backend: -backend netsim (default, virtual time) or -backend emunet
// (real paced bytes in wall time; shrink -jobs and raise -emu-speedup,
// or a run takes as long as the workload it emulates).
// Profiling: -cpuprofile and -memprofile write pprof profiles for the run.
// Observability: -metrics-out snapshot.json dumps the run's metrics
// registry (flowserver/fabric counters, flow-model drift histograms) as
// JSON; -progress prints per-scheme job progress to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/mayflower-dfs/mayflower/internal/experiment"
	"github.com/mayflower-dfs/mayflower/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mayflower-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mayflower-sim", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "4", "experiment to run: 4, 5, 6a, 6b, 7, 8, 9, multiread, background, ablate-cost, ablate-freeze, ablate-poll, shards, all")
		jobs       = fs.Int("jobs", 1200, "number of read jobs per run")
		warmup     = fs.Int("warmup", 100, "jobs excluded from statistics")
		files      = fs.Int("files", 300, "catalog size")
		lambda     = fs.Float64("lambda", 0.07, "per-server Poisson arrival rate")
		seed       = fs.Int64("seed", 1, "workload seed")
		oversub    = fs.Float64("oversub", 8, "core-to-rack oversubscription ratio")
		multi      = fs.Bool("multi", false, "enable §4.3 multi-replica reads for the Mayflower scheme")
		workers    = fs.Int("j", 0, "max sweep cells run concurrently (0 = GOMAXPROCS); does not change results")
		trials     = fs.Int("trials", 1, "trials per figure cell on derived seeds (CIs over trial means)")
		backend    = fs.String("backend", "netsim", "network backend: netsim (virtual time) or emunet (emulated bytes, wall time)")
		speedup    = fs.Float64("emu-speedup", 1, "emunet only: compress the emulation clock by this factor")
		asCSV      = fs.Bool("csv", false, "emit figures 4/5/6a/6b/7 as CSV instead of tables")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file on exit")
		metricsOut = fs.String("metrics-out", "", "write a JSON metrics snapshot (counters, drift histograms) to this file on exit")
		progress   = fs.Bool("progress", false, "print per-scheme job progress to stderr")
		writeFrac  = fs.Float64("write-frac", -1, "fraction of jobs run as appends; <0 keeps each figure's default (figure 9 sweeps its own fractions)")
		shards     = fs.Int("shards", 0, "flowctl controller shards (0 = single in-process Flowserver; 1 is byte-identical to 0)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mayflower-sim: writing heap profile:", err)
			}
			f.Close()
		}()
	}

	base := experiment.Defaults(experiment.SchemeMayflower)
	switch *backend {
	case "netsim":
		base.Backend = experiment.BackendNetsim
	case "emunet":
		base.Backend = experiment.BackendEmunet
		base.EmuSpeedup = *speedup
	default:
		return fmt.Errorf("unknown backend %q (want netsim or emunet)", *backend)
	}
	base.NumJobs = *jobs
	base.WarmupJobs = *warmup
	base.NumFiles = *files
	base.Lambda = *lambda
	base.Seed = *seed
	base.Oversubscription = *oversub
	base.MultiReplica = *multi
	base.Workers = *workers
	base.Trials = *trials
	if *writeFrac >= 0 {
		base.WriteFraction = *writeFrac
	}
	base.Shards = *shards
	if *progress {
		base.Progress = os.Stderr
	}
	if *metricsOut != "" {
		reg := obs.NewRegistry()
		base.Metrics = reg
		defer func() {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mayflower-sim: writing metrics:", err)
				return
			}
			defer f.Close()
			if err := reg.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, "mayflower-sim: writing metrics:", err)
			}
		}()
	}

	if *fig == "all" {
		for _, name := range []string{"4", "5", "6a", "6b", "7", "8", "9", "multiread", "background", "ablate-cost", "ablate-freeze", "ablate-poll", "shards"} {
			if err := runOne(out, name, base, *asCSV); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	return runOne(out, *fig, base, *asCSV)
}

func runOne(out io.Writer, name string, base experiment.Config, asCSV bool) error {
	switch name {
	case "4":
		tbl, err := experiment.Figure4(base)
		if err != nil {
			return err
		}
		if asCSV {
			return experiment.WriteNormalizedCSV(out, tbl)
		}
		fmt.Fprintln(out, "=== Figure 4: replica/path selection comparison ===")
		return experiment.WriteNormalizedTable(out, tbl)
	case "5":
		tables, err := experiment.Figure5(base)
		if err != nil {
			return err
		}
		if !asCSV {
			fmt.Fprintln(out, "=== Figure 5: client locality sweep ===")
		}
		for _, tbl := range tables {
			if asCSV {
				if err := experiment.WriteNormalizedCSV(out, tbl); err != nil {
					return err
				}
				continue
			}
			if err := experiment.WriteNormalizedTable(out, tbl); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	case "6a":
		sw, err := experiment.Figure6a(base)
		if err != nil {
			return err
		}
		if asCSV {
			return experiment.WriteSweepCSV(out, sw, "lambda")
		}
		fmt.Fprintln(out, "=== Figure 6(a): job arrival rate sweep, locality (0.5,0.3,0.2) ===")
		return experiment.WriteSweep(out, sw, "lambda")
	case "6b":
		sw, err := experiment.Figure6b(base)
		if err != nil {
			return err
		}
		if asCSV {
			return experiment.WriteSweepCSV(out, sw, "lambda")
		}
		fmt.Fprintln(out, "=== Figure 6(b): job arrival rate sweep, locality (0.2,0.3,0.5) ===")
		return experiment.WriteSweep(out, sw, "lambda")
	case "7":
		sw, err := experiment.Figure7(base)
		if err != nil {
			return err
		}
		if asCSV {
			return experiment.WriteSweepCSV(out, sw, "oversub")
		}
		fmt.Fprintln(out, "=== Figure 7: oversubscription impact ===")
		return experiment.WriteSweep(out, sw, "oversub")
	case "8":
		tbl, err := experiment.Figure8(base)
		if err != nil {
			return err
		}
		if asCSV {
			return experiment.WriteNormalizedCSV(out, tbl)
		}
		fmt.Fprintln(out, "=== Figure 8: HDFS with and without Mayflower's network scheduler ===")
		return experiment.WriteNormalizedTable(out, tbl)
	case "9":
		sw, err := experiment.Figure9(base)
		if err != nil {
			return err
		}
		if asCSV {
			return experiment.WriteSweepCSV(out, sw, "write-frac")
		}
		fmt.Fprintln(out, "=== Figure 9: write-workload sweep ===")
		return experiment.WriteSweep(out, sw, "write-frac")
	case "multiread":
		fmt.Fprintln(out, "=== §4.3: reading from multiple replicas ===")
		mr, err := experiment.MultiRead(base)
		if err != nil {
			return err
		}
		return experiment.WriteMultiRead(out, mr)
	case "ablate-cost":
		fmt.Fprintln(out, "=== Ablation: Eq. 2 impact term ===")
		ab, err := experiment.AblateCostTerm(base)
		if err != nil {
			return err
		}
		return experiment.WriteAblation(out, ab)
	case "ablate-freeze":
		fmt.Fprintln(out, "=== Ablation: update-freeze slack ===")
		ab, err := experiment.AblateFreeze(base)
		if err != nil {
			return err
		}
		return experiment.WriteAblation(out, ab)
	case "background":
		fmt.Fprintln(out, "=== Robustness: unscheduled background traffic ===")
		sw, err := experiment.BackgroundSweep(base, nil)
		if err != nil {
			return err
		}
		if asCSV {
			return experiment.WriteSweepCSV(out, sw, "bg-load")
		}
		return experiment.WriteSweep(out, sw, "bg-load")
	case "ablate-poll":
		fmt.Fprintln(out, "=== Ablation: stats-poll interval ===")
		sw, err := experiment.PollSweep(base, nil)
		if err != nil {
			return err
		}
		return experiment.WriteSweep(out, sw, "interval")
	case "shards":
		fmt.Fprintln(out, "=== Control plane: flowctl shard-count sweep ===")
		sw, err := experiment.ShardSweep(base, nil)
		if err != nil {
			return err
		}
		if asCSV {
			return experiment.WriteSweepCSV(out, sw, "shards")
		}
		return experiment.WriteSweep(out, sw, "shards")
	default:
		return fmt.Errorf("unknown figure %q", name)
	}
}
