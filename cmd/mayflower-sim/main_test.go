package main

import (
	"strings"
	"testing"
)

// smallArgs keeps CLI test runs fast.
func smallArgs(extra ...string) []string {
	base := []string{"-jobs", "200", "-warmup", "30", "-files", "80"}
	return append(base, extra...)
}

func TestRunFigure4(t *testing.T) {
	var sb strings.Builder
	if err := run(smallArgs("-fig", "4"), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 4", "Mayflower", "Sinbad-R ECMP", "Nearest ECMP", "avg ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunEveryFigure(t *testing.T) {
	figures := []string{"5", "7", "8", "multiread", "ablate-cost", "ablate-freeze", "ablate-poll"}
	for _, fig := range figures {
		fig := fig
		t.Run(fig, func(t *testing.T) {
			var sb strings.Builder
			if err := run(smallArgs("-fig", fig), &sb); err != nil {
				t.Fatal(err)
			}
			if sb.Len() == 0 {
				t.Error("no output")
			}
		})
	}
}

func TestRunLambdaSweepFigures(t *testing.T) {
	// 6a/6b sweep many (λ, scheme) pairs; shrink further.
	for _, fig := range []string{"6a", "6b"} {
		fig := fig
		t.Run(fig, func(t *testing.T) {
			var sb strings.Builder
			args := []string{"-jobs", "120", "-warmup", "20", "-files", "60", "-fig", fig}
			if err := run(args, &sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), "lambda") {
				t.Error("sweep output missing x-axis label")
			}
		})
	}
}

// TestRunParallelFlagsMatchSequential checks the CLI contract for -j
// and -trials: the rendered table is byte-identical across worker
// counts, including with multiple trials.
func TestRunParallelFlagsMatchSequential(t *testing.T) {
	render := func(j string) string {
		var sb strings.Builder
		args := []string{"-jobs", "120", "-warmup", "20", "-files", "60",
			"-fig", "4", "-trials", "2", "-j", j}
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	seq := render("1")
	par := render("8")
	if seq != par {
		t.Errorf("-j 1 and -j 8 tables differ:\n--- j=1\n%s--- j=8\n%s", seq, par)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "99"}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nonsense"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunMultiReplicaFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(smallArgs("-fig", "4", "-multi"), &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(smallArgs("-fig", "4", "-csv"), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "locality,lambda,scheme,") {
		t.Errorf("CSV header missing: %q", out[:60])
	}
	if strings.Contains(out, "===") {
		t.Error("CSV output contains table banner")
	}
	lines := strings.Count(strings.TrimSpace(out), "\n")
	if lines != 5 { // header + 5 schemes - 1
		t.Errorf("CSV line count = %d, want 5", lines)
	}

	sb.Reset()
	if err := run(smallArgs("-fig", "7", "-csv"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "oversub,scheme,") {
		t.Error("sweep CSV header missing")
	}
}
