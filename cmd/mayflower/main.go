// Command mayflower is the Mayflower filesystem CLI client.
//
// Usage:
//
//	mayflower -ns <addr> [-fs <addr>] [-host <name>] <command> [args]
//
// Commands:
//
//	put <name> <local-file>     create a file and upload contents
//	get <name> [local-file]     read a file (stdout if no destination)
//	append <name> <local-file>  append a local file's bytes
//	ls [prefix]                 list files
//	stat <name>                 show metadata
//	rm <name>                   delete a file
//	scrub                       verify chunk checksums on every dataserver
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/client"
	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mayflower:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mayflower", flag.ContinueOnError)
	var (
		nsAddr  = fs.String("ns", "127.0.0.1:7000", "nameserver RPC address")
		fsAddr  = fs.String("fs", "", "flowserver RPC address (optional)")
		fdAddr  = fs.String("fd", "", "flow-directory RPC address for shard-routed selections (optional; -fs wins when both are set)")
		host    = fs.String("host", "", "topology host name of this client")
		chunk   = fs.Int64("chunk", 0, "chunk size for new files (bytes, 0 = default)")
		repl    = fs.Int("replication", 0, "replication factor for new files (0 = default)")
		strong  = fs.Bool("strong", false, "use strong read consistency")
		timeout = fs.Duration("timeout", 5*time.Minute, "operation timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command (put, get, append, ls, stat, rm)")
	}

	mode := client.Sequential
	if *strong {
		mode = client.Strong
	}
	c, err := client.New(client.Options{
		NameserverAddr:    *nsAddr,
		FlowserverAddr:    *fsAddr,
		FlowDirectoryAddr: *fdAddr,
		Host:              *host,
		Consistency:       mode,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd, args := rest[0], rest[1:]; cmd {
	case "put":
		if len(args) != 2 {
			return fmt.Errorf("usage: put <name> <local-file>")
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		if _, err := c.Create(ctx, args[0], nameserver.CreateOptions{
			ChunkSize: *chunk, Replication: *repl,
		}); err != nil {
			return err
		}
		size, err := c.Append(ctx, args[0], data)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "put %s (%d bytes)\n", args[0], size)
		return nil

	case "get":
		if len(args) < 1 || len(args) > 2 {
			return fmt.Errorf("usage: get <name> [local-file]")
		}
		data, err := c.ReadAll(ctx, args[0])
		if err != nil {
			return err
		}
		if len(args) == 2 {
			return os.WriteFile(args[1], data, 0o644)
		}
		_, err = out.Write(data)
		return err

	case "append":
		if len(args) != 2 {
			return fmt.Errorf("usage: append <name> <local-file>")
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		size, err := c.Append(ctx, args[0], data)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "appended %d bytes to %s (now %d bytes)\n", len(data), args[0], size)
		return nil

	case "ls":
		prefix := ""
		if len(args) == 1 {
			prefix = args[0]
		}
		files, err := c.List(ctx, prefix)
		if err != nil {
			return err
		}
		for _, fi := range files {
			fmt.Fprintf(out, "%12d  %-36s  %s\n", fi.SizeBytes, fi.ID, fi.Name)
		}
		return nil

	case "stat":
		if len(args) != 1 {
			return fmt.Errorf("usage: stat <name>")
		}
		fi, err := c.Stat(ctx, args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "name:       %s\nid:         %s\nsize:       %d bytes\nchunk size: %d bytes\nchunks:     %d\n",
			fi.Name, fi.ID, fi.SizeBytes, fi.ChunkSize, fi.NumChunks())
		for i, r := range fi.Replicas {
			role := "replica"
			if i == 0 {
				role = "primary"
			}
			fmt.Fprintf(out, "%s:    %s on %s (%s)\n", role, r.ServerID, r.Host, r.DataAddr)
		}
		return nil

	case "rm":
		if len(args) != 1 {
			return fmt.Errorf("usage: rm <name>")
		}
		if err := c.Delete(ctx, args[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "deleted %s\n", args[0])
		return nil

	case "scrub":
		return scrub(ctx, *nsAddr, out)

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// scrub asks every registered dataserver to verify its chunk checksums
// and prints any faults.
func scrub(ctx context.Context, nsAddr string, out io.Writer) error {
	pool := rpc.NewPool(rpc.Options{})
	defer pool.Close()
	ns := nameserver.NewClient(pool.Peer(nsAddr))
	servers, err := ns.Servers(ctx)
	if err != nil {
		return err
	}
	total := 0
	for _, si := range servers {
		faults, err := dataserver.NewClient(pool.Peer(si.ControlAddr)).Scrub(ctx)
		if err != nil {
			fmt.Fprintf(out, "%-8s scrub failed: %v\n", si.ID, err)
			total++
			continue
		}
		for _, f := range faults {
			fmt.Fprintf(out, "%-8s file %s chunk %d: %s\n", si.ID, f.FileID, f.Chunk, f.Reason)
		}
		total += len(faults)
	}
	if total == 0 {
		fmt.Fprintf(out, "scrub clean: %d dataservers, no faults\n", len(servers))
		return nil
	}
	return fmt.Errorf("scrub found %d fault(s)", total)
}
