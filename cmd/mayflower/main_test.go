package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/testbed"
)

// startBackend boots an in-process deployment and returns CLI base flags.
func startBackend(t *testing.T) []string {
	t.Helper()
	cluster, err := testbed.NewCluster(testbed.ClusterConfig{Mode: testbed.ModeMayflower, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	clientHost := cluster.Topo.Node(cluster.Topo.HostAt(0, 0, 0)).Name
	return []string{
		"-ns", cluster.NameserverAddr(),
		"-fs", cluster.FlowserverAddr(),
		"-host", clientHost,
	}
}

func cli(t *testing.T, base []string, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(append(append([]string{}, base...), args...), &sb); err != nil {
		t.Fatalf("mayflower %v: %v", args, err)
	}
	return sb.String()
}

func TestCLIRoundTrip(t *testing.T) {
	base := startBackend(t)
	dir := t.TempDir()

	src := filepath.Join(dir, "in.txt")
	payload := strings.Repeat("mayflower cli\n", 500)
	if err := os.WriteFile(src, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}

	out := cli(t, base, "put", "docs/cli.txt", src)
	if !strings.Contains(out, "put docs/cli.txt") {
		t.Errorf("put output %q", out)
	}

	out = cli(t, base, "ls", "docs/")
	if !strings.Contains(out, "docs/cli.txt") {
		t.Errorf("ls output %q", out)
	}

	out = cli(t, base, "stat", "docs/cli.txt")
	if !strings.Contains(out, "primary:") || !strings.Contains(out, "chunks:") {
		t.Errorf("stat output %q", out)
	}

	dst := filepath.Join(dir, "out.txt")
	cli(t, base, "get", "docs/cli.txt", dst)
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Error("get returned wrong bytes")
	}

	// get to stdout
	out = cli(t, base, "get", "docs/cli.txt")
	if out != payload {
		t.Error("get (stdout) returned wrong bytes")
	}

	more := filepath.Join(dir, "more.txt")
	if err := os.WriteFile(more, []byte("EXTRA"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = cli(t, base, "append", "docs/cli.txt", more)
	if !strings.Contains(out, "appended 5 bytes") {
		t.Errorf("append output %q", out)
	}
	out = cli(t, base, "get", "docs/cli.txt")
	if out != payload+"EXTRA" {
		t.Error("append not visible in get")
	}

	out = cli(t, base, "rm", "docs/cli.txt")
	if !strings.Contains(out, "deleted") {
		t.Errorf("rm output %q", out)
	}
	if err := run(append(append([]string{}, base...), "get", "docs/cli.txt"), &strings.Builder{}); err == nil {
		t.Error("get of deleted file succeeded")
	}
}

func TestCLIStrongMode(t *testing.T) {
	base := append(startBackend(t), "-strong")
	dir := t.TempDir()
	src := filepath.Join(dir, "s.txt")
	if err := os.WriteFile(src, []byte("strong-read"), 0o644); err != nil {
		t.Fatal(err)
	}
	cli(t, base, "put", "s", src)
	if out := cli(t, base, "get", "s"); out != "strong-read" {
		t.Errorf("strong get = %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	base := startBackend(t)
	var sb strings.Builder

	if err := run(base, &sb); err == nil {
		t.Error("missing command accepted")
	}
	if err := run(append(append([]string{}, base...), "frobnicate"), &sb); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run(append(append([]string{}, base...), "put", "only-name"), &sb); err == nil {
		t.Error("put without file accepted")
	}
	if err := run(append(append([]string{}, base...), "get"), &sb); err == nil {
		t.Error("get without name accepted")
	}
	if err := run(append(append([]string{}, base...), "stat"), &sb); err == nil {
		t.Error("stat without name accepted")
	}
	if err := run(append(append([]string{}, base...), "rm"), &sb); err == nil {
		t.Error("rm without name accepted")
	}
	if err := run(append(append([]string{}, base...), "append", "x"), &sb); err == nil {
		t.Error("append without file accepted")
	}
	if err := run([]string{"-ns", "127.0.0.1:1", "ls"}, &sb); err == nil {
		t.Error("dead nameserver accepted")
	}
}

func TestCLIScrub(t *testing.T) {
	base := startBackend(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "s.txt")
	if err := os.WriteFile(src, []byte("scrub me"), 0o644); err != nil {
		t.Fatal(err)
	}
	cli(t, base, "put", "scrub/file", src)
	out := cli(t, base, "scrub")
	if !strings.Contains(out, "scrub clean") {
		t.Errorf("scrub output %q", out)
	}
}
