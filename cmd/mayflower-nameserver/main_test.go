package main

import (
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("1=host-b:7500, 2=host-c:7500", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("got %d peers", len(peers))
	}
	if _, ok := peers[1]; !ok {
		t.Error("peer 1 missing")
	}
	if _, ok := peers[2]; !ok {
		t.Error("peer 2 missing")
	}
}

func TestParsePeersEmpty(t *testing.T) {
	peers, err := parsePeers("  ", 0)
	if err != nil || len(peers) != 0 {
		t.Fatalf("parsePeers(blank) = %v, %v", peers, err)
	}
}

func TestParsePeersErrors(t *testing.T) {
	for _, bad := range []string{"nonsense", "x=addr", "1", "0=self:1"} {
		if _, err := parsePeers(bad, 0); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}
