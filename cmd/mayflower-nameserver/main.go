// Command mayflower-nameserver runs the Mayflower metadata server: it
// owns file→chunks and file→dataservers mappings, places replicas under
// fault-domain constraints, and persists state in an embedded key-value
// store (fsync off by default, as in the paper, §3.3.1).
//
// The paper's fault-tolerance extension is available too: with
// -replica-id and -peers set, the nameserver replicates every mutation
// through a Paxos log across the listed peers ("we can improve the
// fault-tolerance of the nameserver by using a state machine replication
// algorithm, such as Paxos", §3.3.1):
//
//	mayflower-nameserver -listen :7000 -paxos-listen :7500 \
//	    -replica-id 0 -peers 1=host-b:7500,2=host-c:7500
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/paxos"
	"github.com/mayflower-dfs/mayflower/internal/repair"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mayflower-nameserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mayflower-nameserver", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:7000", "RPC listen address")
		dbDir       = fs.String("db", "mayflower-ns", "metadata store directory")
		sync        = fs.Bool("sync", false, "fsync the metadata WAL on every write")
		replicaID   = fs.Int64("replica-id", -1, "Paxos replica id (enables replication with -peers)")
		peersSpec   = fs.String("peers", "", "comma-separated id=addr Paxos peers, e.g. 1=host-b:7500,2=host-c:7500")
		paxosListen = fs.String("paxos-listen", "127.0.0.1:7500", "Paxos RPC listen address (replicated mode)")
		rebuild     = fs.Bool("rebuild", false, "discard the file table and rebuild it by scanning the registered dataservers (after an unexpected restart, §3.3.1)")
		repairEvery = fs.Duration("repair-interval", 0, "run re-replication passes at this interval (0 disables); dead = no heartbeat for 5 intervals")
		debugAddr   = fs.String("debug-addr", "", "serve /debug/metrics (file/server gauges, runtime gauges) on this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := kvstore.Open(*dbDir, kvstore.Options{SyncWrites: *sync})
	if err != nil {
		return err
	}
	defer store.Close()

	svc, err := nameserver.NewService(store, rand.New(rand.NewSource(time.Now().UnixNano())))
	if err != nil {
		return err
	}
	if *rebuild {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := svc.Rebuild(ctx, &dataserver.RPCScanner{})
		cancel()
		if err != nil {
			return fmt.Errorf("rebuild: %w", err)
		}
		log.Printf("rebuilt %d files from %d dataservers", svc.NumFiles(), len(svc.Servers()))
	}

	var meta nameserver.Metadata = svc
	var paxosSrv *wire.Server
	if *replicaID >= 0 {
		peers, err := parsePeers(*peersSpec, *replicaID)
		if err != nil {
			return err
		}
		rs := nameserver.NewReplicatedService(svc)
		node, err := paxos.NewNode(paxos.Config{ID: *replicaID, Peers: peers, Apply: rs.Apply})
		if err != nil {
			return err
		}
		rs.SetNode(node)
		paxosSrv = wire.NewServer()
		if err := paxos.RegisterRPC(paxosSrv, node); err != nil {
			return err
		}
		go func() {
			if err := paxosSrv.ListenAndServe(*paxosListen); err != nil {
				log.Printf("paxos listener: %v", err)
			}
		}()
		defer paxosSrv.Close()
		log.Printf("nameserver replica %d: paxos on %s with %d peers", *replicaID, *paxosListen, len(peers))
		meta = rs
	}

	srv := wire.NewServer()
	if err := nameserver.RegisterRPC(srv, meta); err != nil {
		return err
	}

	if *debugAddr != "" {
		reg := obs.NewRegistry()
		reg.RegisterGaugeFunc("nameserver.files", func() float64 { return float64(svc.NumFiles()) })
		reg.RegisterGaugeFunc("nameserver.servers", func() float64 { return float64(len(svc.Servers())) })
		obs.RegisterRuntimeMetrics(reg)
		dbg, bound, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Printf("nameserver: metrics on http://%s/debug/metrics", bound)
	}

	repairStop := make(chan struct{})
	repairDone := make(chan struct{})
	if *repairEvery > 0 {
		// The monitor announces each death once per down episode; passes
		// that only re-confirm an already-declared death stay quiet unless
		// they did work. New-file placement uses the same death horizon,
		// so a server the monitor would declare dead is never handed a
		// fresh file's replica.
		svc.SetPlacementLiveness(5 * *repairEvery)
		monitor := repair.NewMonitor(repair.Config{
			Service:   svc,
			DeadAfter: 5 * *repairEvery,
		})
		go func() {
			defer close(repairDone)
			ticker := time.NewTicker(*repairEvery)
			defer ticker.Stop()
			for {
				select {
				case <-repairStop:
					return
				case <-ticker.C:
				}
				ctx, cancel := context.WithTimeout(context.Background(), *repairEvery)
				res, err := monitor.Pass(ctx)
				cancel()
				if err != nil {
					log.Printf("repair pass: %v", err)
					continue
				}
				if len(res.Dead) > 0 || res.Repaired > 0 || len(res.Lost) > 0 || len(res.Faults) > 0 {
					log.Printf("repair: %d newly dead server(s) %v, %d replicas repaired, %d files lost, %d faults",
						len(res.Dead), res.Dead, res.Repaired, len(res.Lost), len(res.Faults))
				}
			}
		}()
	} else {
		close(repairDone)
	}
	defer func() {
		close(repairStop)
		<-repairDone
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*listen) }()
	log.Printf("nameserver listening on %s (db %s, %d files)", *listen, *dbDir, svc.NumFiles())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("nameserver shutting down on %v", sig)
		if err := srv.Close(); err != nil {
			return err
		}
		return store.Compact()
	}
}

// parsePeers parses "id=addr,id=addr" into Paxos transports, rejecting
// the local replica id.
func parsePeers(spec string, self int64) (map[int64]paxos.Transport, error) {
	peers := make(map[int64]paxos.Transport)
	if strings.TrimSpace(spec) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want id=addr)", part)
		}
		id, err := strconv.ParseInt(kv[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q", kv[0])
		}
		if id == self {
			return nil, fmt.Errorf("peer list contains this replica's id %d", id)
		}
		peers[id] = paxos.NewRPCTransport(kv[1])
	}
	return peers, nil
}
