// Command mayflower-bench runs the prototype (emulated-network)
// experiments behind Figure 8 of the paper: the full Mayflower filesystem
// against HDFS-style rack-aware selection, with and without Mayflower's
// network flow scheduler, at several job arrival rates.
//
// Unlike mayflower-sim (which drives the flow-level simulator), this
// harness boots real servers — nameserver, one dataserver per emulated
// host, the Flowserver polling real switch counters over the OpenFlow-
// style control protocol — and measures wall-clock read completion times.
//
// Usage:
//
//	mayflower-bench                    # Figure 8 at the default rates
//	mayflower-bench -lambdas 2,2.5,3 -jobs 140 -filebytes 1048576
//	mayflower-bench -multiread         # §4.3 split reads on the prototype
//	mayflower-bench -metrics-out m.json  # dump counters + drift audit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mayflower-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mayflower-bench", flag.ContinueOnError)
	var (
		lambdas    = fs.String("lambdas", "2,2.5,3", "comma-separated per-server arrival rates (scaled timebase)")
		jobs       = fs.Int("jobs", 140, "jobs per run")
		warmup     = fs.Int("warmup", 20, "jobs excluded from statistics")
		files      = fs.Int("files", 40, "catalog size")
		fileBytes  = fs.Int64("filebytes", 1<<20, "bytes per file")
		seed       = fs.Int64("seed", 1, "workload seed")
		multiread  = fs.Bool("multiread", false, "also run Mayflower with §4.3 multi-replica reads")
		metricsOut = fs.String("metrics-out", "", "write a JSON metrics snapshot (flowserver/fabric counters, cumulative drift histograms) to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rates, err := parseRates(*lambdas)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		defer func() {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mayflower-bench: writing metrics:", err)
				return
			}
			defer f.Close()
			if err := reg.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, "mayflower-bench: writing metrics:", err)
			}
		}()
	}

	fmt.Fprintln(out, "=== Figure 8: prototype comparison with HDFS (emulated network) ===")
	fmt.Fprintf(out, "%-8s %-18s %10s %10s %10s %8s\n", "lambda", "mode", "mean (s)", "p95 (s)", "max (s)", "jobs")
	modes := []testbed.Mode{testbed.ModeMayflower, testbed.ModeHDFSMayflower, testbed.ModeHDFSECMP}
	for _, lambda := range rates {
		for _, mode := range modes {
			cfg := testbed.DefaultExperiment(mode)
			cfg.Lambda = lambda
			cfg.NumJobs = *jobs
			cfg.WarmupJobs = *warmup
			cfg.NumFiles = *files
			cfg.FileBytes = *fileBytes
			cfg.Seed = *seed
			cfg.Metrics = reg
			res, err := testbed.RunExperiment(cfg)
			if err != nil {
				return fmt.Errorf("λ=%g %v: %w", lambda, mode, err)
			}
			fmt.Fprintf(out, "%-8.3g %-18s %10.3f %10.3f %10.3f %8d\n",
				lambda, mode, res.Summary.Mean, res.Summary.P95, res.Summary.Max, res.Summary.N)
		}
	}

	if *multiread {
		fmt.Fprintln(out, "\n=== §4.3 multi-replica reads on the prototype ===")
		for _, multi := range []bool{false, true} {
			cfg := testbed.DefaultExperiment(testbed.ModeMayflower)
			cfg.NumJobs = *jobs
			cfg.WarmupJobs = *warmup
			cfg.NumFiles = *files
			cfg.FileBytes = *fileBytes
			cfg.Seed = *seed
			cfg.MultiReplica = multi
			cfg.Metrics = reg
			res, err := testbed.RunExperiment(cfg)
			if err != nil {
				return fmt.Errorf("multiread=%v: %w", multi, err)
			}
			label := "single-replica"
			if multi {
				label = "multi-replica"
			}
			fmt.Fprintf(out, "%-16s mean=%.3fs p95=%.3fs\n", label, res.Summary.Mean, res.Summary.P95)
		}
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
