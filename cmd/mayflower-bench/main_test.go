package main

import (
	"strings"
	"testing"
)

func TestParseRates(t *testing.T) {
	got, err := parseRates("2, 2.5,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 2.5, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "x", "1,-2", "0"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestRunTinyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype run is wall-clock bound")
	}
	var sb strings.Builder
	args := []string{
		"-lambdas", "2",
		"-jobs", "25",
		"-warmup", "5",
		"-files", "8",
		"-filebytes", "262144",
	}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 8", "Mayflower", "HDFS-Mayflower", "HDFS-ECMP"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-lambdas", "zero"}, &sb); err == nil {
		t.Error("bad lambdas accepted")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}
