GO ?= go

.PHONY: all build vet fmt-check test race fuzz bench check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# race runs the whole suite under the race detector, chaos scenarios
# included. This is the bar CI holds every change to.
race:
	$(GO) test -race ./...

# fuzz gives each fuzz target a short budget beyond its seed corpus.
fuzz:
	$(GO) test -fuzz=FuzzAllocate -fuzztime=30s ./internal/maxmin
	$(GO) test -fuzz=FuzzSharesWithNewFlow -fuzztime=30s ./internal/maxmin

# bench runs the hot-path selection/churn benchmarks and records the result
# in BENCH_selection.json, the committed performance baseline for the
# incremental allocator.
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkSelect$$|^BenchmarkNetsimChurn$$' \
		-benchmem -timeout 0 ./internal/flowserver ./internal/netsim \
		| $(GO) run ./cmd/bench2json > BENCH_selection.json
	@cat BENCH_selection.json

check: build vet fmt-check race

clean:
	$(GO) clean ./...
