GO ?= go

.PHONY: all build vet fmt-check test race figures-smoke shards-golden fuzz bench bench-check cover check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# race runs the whole suite under the race detector — chaos scenarios and
# the sim-vs-emu cross-validation included — with shuffled test order so
# inter-test state leaks surface. This is the bar CI holds every change to.
race:
	$(GO) test -race -shuffle=on ./...

# figures-smoke runs the parallel figure-sweep determinism and golden
# tests under the race detector at -j 8: a tiny grid, but it exercises
# the worker pool, the shared shortest-path cache, the progress mux, and
# the byte-identical-tables invariant end to end.
figures-smoke:
	$(GO) test -race -count=1 \
		-run 'TestSweep|TestGolden|TestRunParallelFlagsMatchSequential' \
		./internal/experiment ./cmd/mayflower-sim

# shards-golden proves the sharded control plane is a byte-identical
# drop-in at -shards 1: the Figure 4/6b/7/9 pipelines rerun through the
# flowctl single-shard plane and must reproduce the committed golden
# tables byte for byte, and the flowctl conformance suite (ownership,
# digest staleness, epoch failover) runs at -race on top.
shards-golden:
	$(GO) test -race -count=1 \
		-run 'TestGoldenShards1ByteIdentity|TestGoldenShardSweep|TestShardSweepWorkerInvariance|TestShardedRunCompletes' \
		./internal/experiment
	$(GO) test -race -count=1 ./internal/flowctl

# cover runs the suite with coverage (-short: the timing-sensitive paced
# emulation tests distort under instrumentation and are covered by the race
# job), writes the profile to cover.out and the per-package summary plus
# total to cover.txt. CI uploads both as a workflow artifact.
cover:
	$(GO) test -short -coverprofile=cover.out -covermode=atomic ./... > cover.txt
	@cat cover.txt
	$(GO) tool cover -func=cover.out | tail -1 | tee -a cover.txt

# fuzz gives each fuzz target a short budget beyond its seed corpus.
fuzz:
	$(GO) test -fuzz=FuzzAllocate -fuzztime=30s ./internal/maxmin
	$(GO) test -fuzz=FuzzSharesWithNewFlow -fuzztime=30s ./internal/maxmin

# bench runs the hot-path selection/churn/replication/RPC benchmarks and
# records the result in BENCH_selection.json, the committed performance
# baseline for the incremental allocator, the write path, and the
# control-plane session layer.
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkSelect$$|^BenchmarkSelectSharded$$|^BenchmarkDigestMerge$$|^BenchmarkNetsimChurn$$|^BenchmarkSweepFigure6b$$|^BenchmarkAppendReplicated$$|^BenchmarkRPCRoundTrip$$|^BenchmarkRPCPooledFanout$$|^BenchmarkLookupCached$$|^BenchmarkLookupBatchValidate$$' \
		-benchmem -timeout 0 ./internal/flowserver ./internal/flowctl ./internal/netsim ./internal/experiment ./internal/dataserver ./internal/rpc ./internal/client ./internal/nameserver \
		| $(GO) run ./cmd/bench2json > BENCH_selection.json
	@cat BENCH_selection.json

# bench-check reruns the hot-path benchmarks and fails if any of them
# regressed more than 20% ns/op (or grew allocs/op) against the committed
# BENCH_selection.json baseline. Runs at the same default 1s benchtime the
# baseline was recorded with — shorter runs shrink N enough that one-time
# warm-up allocations tip the allocs/op average. CI's bench-smoke job
# runs this.
bench-check:
	$(GO) test -run '^$$' -bench '^BenchmarkSelect$$|^BenchmarkSelectSharded$$|^BenchmarkDigestMerge$$|^BenchmarkNetsimChurn$$|^BenchmarkSweepFigure6b$$|^BenchmarkAppendReplicated$$|^BenchmarkRPCRoundTrip$$|^BenchmarkRPCPooledFanout$$|^BenchmarkLookupCached$$|^BenchmarkLookupBatchValidate$$' \
		-benchmem -timeout 0 ./internal/flowserver ./internal/flowctl ./internal/netsim ./internal/experiment ./internal/dataserver ./internal/rpc ./internal/client ./internal/nameserver \
		| $(GO) run ./cmd/bench2json -compare BENCH_selection.json -max-regress 0.20

check: build vet fmt-check race

clean:
	$(GO) clean ./...
