module github.com/mayflower-dfs/mayflower

go 1.22
