// Policysim: compare the five replica/path selection schemes of the
// paper's §6.2 on the simulated 64-host testbed — a scaled-down version
// of Figure 4 that runs in under a second.
//
//	go run ./examples/policysim
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/mayflower-dfs/mayflower/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := experiment.Defaults(experiment.SchemeMayflower)
	base.NumJobs = 600
	base.WarmupJobs = 80

	fmt.Println("Simulating 600 read jobs (256 MB each) on the paper's 64-host testbed,")
	fmt.Printf("Poisson λ=%.2f per server, Zipf popularity, locality %v.\n\n",
		base.Lambda, base.Locality)

	tbl, err := experiment.Figure4(base)
	if err != nil {
		return err
	}
	if err := experiment.WriteNormalizedTable(os.Stdout, tbl); err != nil {
		return err
	}

	fmt.Println("\nPaper's Figure 4 for comparison (their testbed):")
	fmt.Println("  Mayflower 1x, Sinbad-R Mayflower 1.42x, Sinbad-R ECMP 1.69x,")
	fmt.Println("  Nearest Mayflower 3.24x, Nearest ECMP 3.42x;")
	fmt.Println("  p95: 1x / 1.54x / 2.08x / 12.4x / 12.4x.")
	return nil
}
