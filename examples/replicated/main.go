// Replicated: run the nameserver as a three-replica Paxos group over real
// TCP — the fault-tolerance extension §3.3.1 of the paper sketches ("we
// can improve the fault-tolerance of the nameserver by using a state
// machine replication algorithm, such as Paxos") — then kill a replica
// and keep operating on the surviving majority.
//
//	go run ./examples/replicated
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/paxos"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

type replica struct {
	id      int64
	rs      *nameserver.ReplicatedService
	node    *paxos.Node
	paxosWS *wire.Server
	nsWS    *wire.Server
	nsAddr  string
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 3
	replicas := make([]*replica, n)
	peerMaps := make([]map[int64]paxos.Transport, n)
	paxosAddrs := make([]string, n)

	// Boot three replicas, each with its own store, Paxos endpoint, and
	// client-facing nameserver RPC endpoint.
	for i := 0; i < n; i++ {
		peerMaps[i] = make(map[int64]paxos.Transport)
		dir, err := os.MkdirTemp("", fmt.Sprintf("mayflower-replica-%d-*", i))
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		store, err := kvstore.Open(dir, kvstore.Options{})
		if err != nil {
			return err
		}
		defer store.Close()
		svc, err := nameserver.NewService(store, rand.New(rand.NewSource(int64(i+1))))
		if err != nil {
			return err
		}
		rs := nameserver.NewReplicatedService(svc)
		rs.ProposeTimeout = 3 * time.Second
		node, err := paxos.NewNode(paxos.Config{ID: int64(i), Peers: peerMaps[i], Apply: rs.Apply})
		if err != nil {
			return err
		}
		rs.SetNode(node)

		paxosWS := wire.NewServer()
		if err := paxos.RegisterRPC(paxosWS, node); err != nil {
			return err
		}
		pln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go paxosWS.Serve(pln)
		defer paxosWS.Close()
		paxosAddrs[i] = pln.Addr().String()

		nsWS := wire.NewServer()
		if err := nameserver.RegisterRPC(nsWS, rs); err != nil {
			return err
		}
		nln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go nsWS.Serve(nln)
		defer nsWS.Close()

		replicas[i] = &replica{
			id: int64(i), rs: rs, node: node,
			paxosWS: paxosWS, nsWS: nsWS, nsAddr: nln.Addr().String(),
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				peerMaps[i][int64(j)] = paxos.NewRPCTransport(paxosAddrs[j])
			}
		}
	}
	fmt.Printf("3 nameserver replicas up (paxos: %v)\n\n", paxosAddrs)

	// Register a dataserver fleet and create files through replica 0.
	for k := 0; k < 4; k++ {
		err := replicas[0].rs.RegisterServer(nameserver.ServerInfo{
			ID:          fmt.Sprintf("ds-%d", k),
			ControlAddr: fmt.Sprintf("10.0.0.%d:7001", k),
			Host:        fmt.Sprintf("host-p0-r%d-h0", k),
			Rack:        k,
		})
		if err != nil {
			return err
		}
	}
	if _, err := replicas[0].rs.Create("logs/day-1", nameserver.CreateOptions{Replication: 3}); err != nil {
		return err
	}
	fmt.Println("created logs/day-1 through replica 0")

	// The mutation is replicated: replica 2 sees it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := replicas[2].rs.Lookup("logs/day-1"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return errors.New("replica 2 never learned the create")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("replica 2 sees logs/day-1 (learned via Paxos)")

	// Kill replica 1 and keep going with a 2/3 majority.
	replicas[1].paxosWS.Close()
	replicas[1].nsWS.Close()
	fmt.Println("\nkilled replica 1")

	if _, err := replicas[0].rs.Create("logs/day-2", nameserver.CreateOptions{Replication: 3}); err != nil {
		return fmt.Errorf("create with majority: %w", err)
	}
	fmt.Println("created logs/day-2 with only 2 of 3 replicas alive")

	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := replicas[2].rs.Lookup("logs/day-2"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return errors.New("replica 2 never learned the second create")
		}
		time.Sleep(5 * time.Millisecond)
	}
	files := replicas[2].rs.List("logs/")
	fmt.Printf("replica 2 lists %d files under logs/:\n", len(files))
	for _, fi := range files {
		fmt.Printf("  %s (id %s)\n", fi.Name, fi.ID)
	}
	fmt.Println("\nA minority failure is invisible to clients; a majority failure")
	fmt.Println("would block mutations (but not local reads) until replicas return.")
	return nil
}
