// Quickstart: boot a complete in-process Mayflower deployment (SDN
// control plane, Flowserver, nameserver, a dataserver per emulated host)
// and use the client library for the basic filesystem operations.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 16-host, 2-pod emulated datacenter with the paper's 8:1
	// core-to-rack oversubscription.
	cluster, err := testbed.NewCluster(testbed.ClusterConfig{Mode: testbed.ModeMayflower, Seed: 42})
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("cluster up: %d hosts, nameserver %s, flowserver %s\n",
		cluster.Topo.NumHosts(), cluster.NameserverAddr(), cluster.FlowserverAddr())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// A client on one host writes...
	writer, err := cluster.Client(cluster.Topo.HostAt(0, 0, 0))
	if err != nil {
		return err
	}
	info, err := writer.Create(ctx, "examples/hello.txt", nameserver.CreateOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("created %s (id %s) with %d replicas:\n", info.Name, info.ID, len(info.Replicas))
	for i, r := range info.Replicas {
		role := "replica"
		if i == 0 {
			role = "primary"
		}
		fmt.Printf("  %s on %s\n", role, r.Host)
	}

	payload := bytes.Repeat([]byte("hello, mayflower! "), 1000)
	size, err := writer.Append(ctx, "examples/hello.txt", payload)
	if err != nil {
		return err
	}
	fmt.Printf("appended %d bytes (file size now %d)\n", len(payload), size)

	// ...and a client in a different pod reads it back. The read first
	// asks the Flowserver which replica and network path to use.
	reader, err := cluster.Client(cluster.Topo.HostAt(1, 1, 0))
	if err != nil {
		return err
	}
	start := time.Now()
	got, err := reader.ReadAll(ctx, "examples/hello.txt")
	if err != nil {
		return err
	}
	fmt.Printf("read %d bytes from another pod in %v (intact: %v)\n",
		len(got), time.Since(start).Round(time.Millisecond), bytes.Equal(got, payload))

	files, err := reader.List(ctx, "examples/")
	if err != nil {
		return err
	}
	fmt.Printf("listing %d file(s) under examples/\n", len(files))

	if err := writer.Delete(ctx, "examples/hello.txt"); err != nil {
		return err
	}
	fmt.Println("deleted examples/hello.txt")
	return nil
}
