// Parallelread: demonstrate §4.3 of the paper — reading one file from two
// replicas in parallel when their combined bandwidth beats the best
// single replica, with the split sized so both subflows finish together.
//
// The topology bottlenecks each pod behind 10 Mbps uplinks while the
// client's own link is fast, so two replicas in different pods together
// deliver ~2x the single-replica bandwidth.
//
//	go run ./examples/parallelread
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// podBottleneckTopo puts 10 Mbps on the aggregation tiers and 100 Mbps at
// the hosts: a single cross-pod flow is capped at 10 Mbps, but flows from
// two different pods do not share a bottleneck until the client's edge.
func podBottleneckTopo() topology.Config {
	return topology.Config{
		Pods: 3, RacksPerPod: 1, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps:    topology.Mbps(100),
		EdgeAggLinkBps: topology.Mbps(10),
		AggCoreLinkBps: topology.Mbps(10),
	}
}

func run() error {
	const fileBytes = 2 << 20 // 2 MB: ~1.7 s at 10 Mbps, ~0.85 s split
	payload := bytes.Repeat([]byte{0xA5}, fileBytes)

	measure := func(multi bool) (time.Duration, error) {
		cluster, err := testbed.NewCluster(testbed.ClusterConfig{
			Mode:         testbed.ModeMayflower,
			Topo:         podBottleneckTopo(),
			Seed:         7,
			MultiReplica: multi,
		})
		if err != nil {
			return 0, err
		}
		defer cluster.Close()

		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()

		// Replicas in pods 1 and 2; client in pod 0.
		rep1 := cluster.Topo.HostAt(1, 0, 0)
		rep2 := cluster.Topo.HostAt(2, 0, 0)
		writer, err := cluster.Client(rep1)
		if err != nil {
			return 0, err
		}
		if _, err := writer.Create(ctx, "big.bin", nameserver.CreateOptions{
			ChunkSize:         fileBytes,
			PreferredReplicas: []string{cluster.ServerID(rep1), cluster.ServerID(rep2)},
		}); err != nil {
			return 0, err
		}
		if _, err := writer.Append(ctx, "big.bin", payload); err != nil {
			return 0, err
		}

		reader, err := cluster.Client(cluster.Topo.HostAt(0, 0, 0))
		if err != nil {
			return 0, err
		}
		start := time.Now()
		got, err := reader.ReadAll(ctx, "big.bin")
		if err != nil {
			return 0, err
		}
		if !bytes.Equal(got, payload) {
			return 0, fmt.Errorf("payload corrupted")
		}
		return time.Since(start), nil
	}

	single, err := measure(false)
	if err != nil {
		return err
	}
	multi, err := measure(true)
	if err != nil {
		return err
	}
	fmt.Printf("2 MB cross-pod read, 10 Mbps pod uplinks\n")
	fmt.Printf("  single replica      : %v\n", single.Round(10*time.Millisecond))
	fmt.Printf("  two replicas (§4.3) : %v\n", multi.Round(10*time.Millisecond))
	fmt.Printf("  speedup             : %.2fx\n", float64(single)/float64(multi))
	return nil
}
