// Congestion: watch Mayflower's replica-path selection steer reads away
// from network hotspots — the behaviour that separates it from static
// "nearest replica" selection (§4 of the paper).
//
// The example builds the paper's 64-host testbed topology, places a
// client next to one replica, and progressively loads that replica's
// uplink with background flows. Selection flips from the nearby replica
// to remote ones exactly when the estimated completion time says it
// should.
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/netsim"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		return err
	}
	sim := netsim.New(topo)

	client := topo.HostAt(0, 0, 0)
	nearReplica := topo.HostAt(0, 0, 1) // same rack as the client
	podReplica := topo.HostAt(0, 2, 0)  // same pod
	farReplica := topo.HostAt(2, 1, 0)  // different pod
	replicas := []topology.NodeID{nearReplica, podReplica, farReplica}

	const readBits = 256 * 8e6 // a 256 MB block
	name := func(h topology.NodeID) string { return topo.Node(h).Name }
	fmt.Printf("client %s; replicas: near=%s pod=%s far=%s\n\n",
		name(client), name(nearReplica), name(podReplica), name(farReplica))

	// Progressively congest the near replica's rack: other clients keep
	// reading from it, eating the shared host uplink.
	for load := 0; load <= 4; load++ {
		probe := flowserver.New(topo, flowserver.Options{Now: sim.Now})
		for i := 0; i < load; i++ {
			// Each background reader sits in another rack of pod 0 and
			// pulls a full block from the near replica.
			bg := topo.HostAt(0, 1+i%3, i%4)
			if _, err := probe.SelectPath(bg, nearReplica, readBits); err != nil {
				return err
			}
		}
		// Eq. 2 cost of insisting on the nearest replica...
		nearPath := topo.ShortestPaths(nearReplica, client)[0]
		nearCost, nearBw := probe.PathCost(nearReplica, nearPath, readBits)

		// ...versus what joint replica-path selection chooses.
		as, err := probe.SelectReplicaAndPath(flowserver.Request{
			Client:   client,
			Replicas: replicas,
			Bits:     readBits,
		})
		if err != nil {
			return err
		}
		choice := as[0]
		secs := choice.Bits / choice.EstimatedBw
		fmt.Printf("bg flows: %d | nearest replica: cost %5.1f s (share %4.0f Mbps) | chosen: %-16s est. %4.1f s\n",
			load, nearCost, nearBw/1e6, name(choice.Replica), secs)
	}

	fmt.Println("\nWith an idle network the nearest replica wins; once its uplink is")
	fmt.Println("shared with enough flows, Mayflower pays the longer path to a remote")
	fmt.Println("replica because the *completion time* is better — static nearest-replica")
	fmt.Println("selection would keep queueing on the hotspot.")
	return nil
}
