#!/bin/sh
# CI entry point: build, vet, formatting, and the full test suite under
# the race detector (the chaos fault-injection scenarios run as part of
# it). Mirrors `make check` for environments without make.
set -eu

cd "$(dirname "$0")"

echo '--- go build'
go build ./...

echo '--- go vet'
go vet ./...

echo '--- govulncheck'
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo 'govulncheck not installed; skipping (the GitHub workflow runs it)'
fi

echo '--- staticcheck'
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo 'staticcheck not installed; skipping (the GitHub workflow runs it)'
fi

echo '--- gofmt'
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed:"
	echo "$unformatted"
	exit 1
fi

echo '--- go test -race'
go test -race -shuffle=on ./...
