// Package mayflower is a from-scratch Go reproduction of "Mayflower:
// Improving Distributed Filesystem Performance Through SDN/Filesystem
// Co-Design" (ICDCS 2016): a distributed filesystem whose replica
// selection and network path selection are performed jointly by a
// Flowserver embedded in the SDN control plane.
//
// The repository root carries the benchmark harness (bench_test.go), with
// one benchmark per table/figure of the paper's evaluation. The
// implementation lives under internal/ (see DESIGN.md for the module
// map), the executables under cmd/, and runnable examples under
// examples/.
package mayflower
