package wire

import (
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/testutil"
)

// TestMain fails the package if any test leaves a goroutine behind —
// every client and server a wire test starts must be closed, and closing
// must actually unwind the reader goroutines.
func TestMain(m *testing.M) {
	testutil.VerifyNoLeaks(m)
}
