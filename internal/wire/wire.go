// Package wire is a small request/response RPC framework over TCP, the
// stand-in for the Apache Thrift control-message transport the Mayflower
// prototype used (§5 of the paper).
//
// Messages are length-prefixed JSON frames. A server registers named
// handlers; a client multiplexes concurrent calls over one connection and
// honours context deadlines. Remote handler failures surface as
// *RemoteError so callers can distinguish transport problems from
// application errors.
package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds a single message; control messages are small, so this
// is purely a defense against corrupt length prefixes.
const maxFrame = 16 << 20

// ErrClosed is returned for operations on a closed client or server.
var ErrClosed = errors.New("wire: closed")

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure).
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote %s: %s", e.Method, e.Msg)
}

type request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

type response struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func writeFrame(w io.Writer, mu *sync.Mutex, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("wire: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	mu.Lock()
	defer mu.Unlock()
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readBufCap caps the upfront buffer reservation while a frame's body
// arrives. The length prefix is untrusted until that many bytes actually
// show up, so a corrupt prefix must not cost a maxFrame-sized
// allocation; frames larger than this (rare — control messages are
// small) grow the buffer as data arrives.
const readBufCap = 64 << 10

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := int64(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return fmt.Errorf("wire: frame too large (%d bytes)", n)
	}
	var body bytes.Buffer
	grow := n
	if grow > readBufCap {
		grow = readBufCap
	}
	body.Grow(int(grow))
	m, err := body.ReadFrom(io.LimitReader(r, n))
	if err != nil {
		return err
	}
	if m < n {
		return io.ErrUnexpectedEOF
	}
	return json.Unmarshal(body.Bytes(), v)
}

// Handler processes one request's parameters and returns a result to be
// JSON-encoded, or an error that is reported to the caller.
type Handler func(ctx context.Context, params json.RawMessage) (any, error)

// Server dispatches wire requests to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register installs a handler for a method name. Registering a duplicate
// method or registering after Serve has started is an error.
func (s *Server) Register(method string, h Handler) error {
	if method == "" || h == nil {
		return errors.New("wire: empty method or nil handler")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		return fmt.Errorf("wire: duplicate method %q", method)
	}
	s.handlers[method] = h
	return nil
}

// Serve accepts connections on ln until the server is closed. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until closed.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	ctx, cancel := context.WithCancel(context.Background())
	var writeMu sync.Mutex
	var handlerWG sync.WaitGroup
	// LIFO: cancel in-flight handlers first, then wait for them to drain.
	defer handlerWG.Wait()
	defer cancel()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		s.mu.Lock()
		h := s.handlers[req.Method]
		s.mu.Unlock()

		handlerWG.Add(1)
		go func(req request) {
			defer handlerWG.Done()
			resp := response{ID: req.ID}
			if h == nil {
				resp.Error = fmt.Sprintf("unknown method %q", req.Method)
			} else if result, err := h(ctx, req.Params); err != nil {
				resp.Error = err.Error()
			} else if result != nil {
				body, err := json.Marshal(result)
				if err != nil {
					resp.Error = fmt.Sprintf("marshal result: %v", err)
				} else {
					resp.Result = body
				}
			}
			// A write failure means the connection is gone; the read
			// loop will notice and clean up.
			_ = writeFrame(conn, &writeMu, &resp)
		}(req)
	}
}

// Addr returns the listener address, if serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener, closes every connection, and waits for
// in-flight handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a wire RPC client multiplexing calls over one connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan response
	nextID  uint64
	closed  bool
	readErr error
}

// Dial connects to a wire server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout connects to a wire server, bounding the TCP connect so a
// dead or partitioned peer surfaces as an error instead of a hang.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialContext connects to a wire server, honouring ctx cancellation and
// deadline during the TCP connect: cancelling the context aborts an
// in-flight dial promptly, with no connection left behind.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan response),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		var resp response
		if err := readFrame(c.conn, &resp); err != nil {
			c.failAll(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr == nil {
		c.readErr = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// Call invokes method with params (JSON-encoded) and decodes the result
// into result (unless nil). It respects ctx cancellation and deadlines.
func (c *Client) Call(ctx context.Context, method string, params, result any) error {
	var raw json.RawMessage
	if params != nil {
		body, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("wire: marshal params: %w", err)
		}
		raw = body
	}

	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	err := writeFrame(c.conn, &c.writeMu, &request{ID: id, Method: method, Params: raw})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}

	select {
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return ctx.Err()
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return err
		}
		if resp.Error != "" {
			return &RemoteError{Method: method, Msg: resp.Error}
		}
		if result != nil {
			if len(resp.Result) == 0 {
				return fmt.Errorf("wire: %s returned no result", method)
			}
			if err := json.Unmarshal(resp.Result, result); err != nil {
				return fmt.Errorf("wire: decode result: %w", err)
			}
		}
		return nil
	}
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
