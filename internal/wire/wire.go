// Package wire is a small request/response RPC framework over TCP, the
// stand-in for the Apache Thrift control-message transport the Mayflower
// prototype used (§5 of the paper).
//
// Messages are length-prefixed JSON frames. A server registers named
// handlers; a client multiplexes concurrent calls over one connection and
// honours context deadlines. Remote handler failures surface as
// *RemoteError so callers can distinguish transport problems from
// application errors.
//
// Deadlines and cancellation propagate across the wire (DESIGN.md §13):
// a request frame carries the caller's remaining deadline, which the
// server installs on the handler's context, and a client that abandons a
// call (its context cancelled or expired) sends a cancel frame so the
// server stops doing work whose result nobody will read.
//
// This package is the framing layer only. Control-plane consumers do not
// dial it directly: connection lifecycle (pooling, reconnection, retry,
// metrics) belongs to internal/rpc, which is the sole caller of
// DialContext — a repo test enforces that no other package dials wire.
package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds a single message; control messages are small, so this
// is purely a defense against corrupt length prefixes.
const maxFrame = 16 << 20

// ErrClosed is returned for operations on a closed client or server.
var ErrClosed = errors.New("wire: closed")

// Error codes carried alongside a remote error message so context
// sentinels survive the JSON round trip: with deadlines propagating to
// the server, a handler may observe the caller's timeout first and
// report it as its own error — the caller must still see
// errors.Is(err, context.DeadlineExceeded) succeed.
const (
	codeDeadline = "deadline"
	codeCanceled = "canceled"
)

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure).
type RemoteError struct {
	Method string
	Msg    string
	// Code classifies context-cancellation errors ("deadline" or
	// "canceled"); empty for ordinary application errors.
	Code string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote %s: %s", e.Method, e.Msg)
}

// Is maps coded remote errors back onto the context sentinels, so a
// handler that surfaced the propagated deadline still matches
// errors.Is(err, context.DeadlineExceeded) at the caller.
func (e *RemoteError) Is(target error) bool {
	switch e.Code {
	case codeDeadline:
		return target == context.DeadlineExceeded
	case codeCanceled:
		return target == context.Canceled
	}
	return false
}

// UnsentError wraps a transport failure that occurred before the request
// reached the wire: the remote handler cannot have run, so a session
// layer may safely retry the call on a fresh connection — even for
// non-idempotent methods. Failures after the frame was fully written are
// never wrapped (the handler may have executed).
type UnsentError struct {
	Err error
}

// Error implements the error interface.
func (e *UnsentError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying transport error to errors.Is/As.
func (e *UnsentError) Unwrap() error { return e.Err }

// request is the client→server frame. A frame with Cancel set carries no
// method or params: it asks the server to cancel the in-flight call with
// the same ID, and no response follows.
type request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	// TimeoutMs is the caller's remaining deadline in milliseconds at
	// send time (0 = no deadline). A relative duration rather than an
	// absolute timestamp so the contract survives clock skew between
	// peers.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Cancel marks a cancel frame for an abandoned call.
	Cancel bool `json:"cancel,omitempty"`
}

type response struct {
	ID      uint64          `json:"id"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	ErrCode string          `json:"errCode,omitempty"`
}

func writeFrame(w io.Writer, mu *sync.Mutex, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("wire: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	mu.Lock()
	defer mu.Unlock()
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readBufCap caps the upfront buffer reservation while a frame's body
// arrives. The length prefix is untrusted until that many bytes actually
// show up, so a corrupt prefix must not cost a maxFrame-sized
// allocation; frames larger than this (rare — control messages are
// small) grow the buffer as data arrives.
const readBufCap = 64 << 10

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := int64(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return fmt.Errorf("wire: frame too large (%d bytes)", n)
	}
	var body bytes.Buffer
	grow := n
	if grow > readBufCap {
		grow = readBufCap
	}
	body.Grow(int(grow))
	m, err := body.ReadFrom(io.LimitReader(r, n))
	if err != nil {
		return err
	}
	if m < n {
		return io.ErrUnexpectedEOF
	}
	return json.Unmarshal(body.Bytes(), v)
}

// Handler processes one request's parameters and returns a result to be
// JSON-encoded, or an error that is reported to the caller. The context
// carries the caller's deadline (when the request frame had one) and is
// cancelled when the caller abandons the call or the connection drops.
type Handler func(ctx context.Context, params json.RawMessage) (any, error)

// Server dispatches wire requests to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[string]Handler
	limits   map[string]int // per-method inflight caps
	inflight map[string]int // per-method live handler counts
	ln       net.Listener
	conns    map[net.Conn]struct{}
	serving  bool
	draining bool
	closed   bool
	wg       sync.WaitGroup // connection goroutines
	calls    sync.WaitGroup // in-flight handler goroutines (for Drain)
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		limits:   make(map[string]int),
		inflight: make(map[string]int),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register installs a handler for a method name. Registering a duplicate
// method or registering after Serve has started is an error.
func (s *Server) Register(method string, h Handler) error {
	if method == "" || h == nil {
		return errors.New("wire: empty method or nil handler")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.serving {
		return fmt.Errorf("wire: register %q after Serve started", method)
	}
	if _, dup := s.handlers[method]; dup {
		return fmt.Errorf("wire: duplicate method %q", method)
	}
	s.handlers[method] = h
	return nil
}

// SetInflightLimit caps concurrent in-flight calls of one method; excess
// requests are rejected immediately with a *RemoteError instead of
// queueing, so one slow method cannot absorb every handler goroutine.
// Zero (the default) means unlimited. Like Register, limits must be set
// before Serve starts.
func (s *Server) SetInflightLimit(method string, max int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.serving {
		return fmt.Errorf("wire: set limit for %q after Serve started", method)
	}
	if max <= 0 {
		delete(s.limits, method)
		return nil
	}
	s.limits[method] = max
	return nil
}

// Inflight returns the number of currently executing handlers.
func (s *Server) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.inflight {
		n += c
	}
	return n
}

// Serve accepts connections on ln until the server is closed. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ln = ln
	s.serving = true
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.closed || s.draining
			s.mu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until closed.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// admit decides how to dispatch one request: it resolves the handler,
// applies draining and per-method inflight caps, and (when admitted)
// counts the call in. The returned release func must be called when the
// handler finishes; reject is a non-"" error message to answer with
// instead of running a handler.
func (s *Server) admit(method string) (h Handler, release func(), reject string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return nil, nil, "server draining"
	}
	h = s.handlers[method]
	if h == nil {
		return nil, nil, fmt.Sprintf("unknown method %q", method)
	}
	if max := s.limits[method]; max > 0 && s.inflight[method] >= max {
		return nil, nil, fmt.Sprintf("too many in-flight %s calls (limit %d)", method, max)
	}
	s.inflight[method]++
	s.calls.Add(1)
	release = func() {
		s.mu.Lock()
		s.inflight[method]--
		s.mu.Unlock()
		s.calls.Done()
	}
	return h, release, ""
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	ctx, cancel := context.WithCancel(context.Background())
	var writeMu sync.Mutex
	var handlerWG sync.WaitGroup
	// Per-call cancel funcs, keyed by request id, so a cancel frame (or a
	// completed handler) can release exactly its own call.
	var liveMu sync.Mutex
	live := make(map[uint64]context.CancelFunc)
	// LIFO: cancel in-flight handlers first, then wait for them to drain.
	defer handlerWG.Wait()
	defer cancel()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		if req.Cancel {
			// The caller abandoned the call: cancel its handler context.
			// The handler still writes a response (which the caller
			// ignores); an id with no live handler is a no-op.
			liveMu.Lock()
			if stop := live[req.ID]; stop != nil {
				stop()
			}
			liveMu.Unlock()
			continue
		}

		h, release, reject := s.admit(req.Method)
		if reject != "" {
			handlerWG.Add(1)
			go func(id uint64, msg string) {
				defer handlerWG.Done()
				_ = writeFrame(conn, &writeMu, &response{ID: id, Error: msg})
			}(req.ID, reject)
			continue
		}

		// The handler context: bounded by the caller's propagated
		// deadline, cancelled by a cancel frame or connection loss.
		callCtx, stop := context.WithCancel(ctx)
		if req.TimeoutMs > 0 {
			stop() // replace the plain cancel with a deadline-carrying one
			callCtx, stop = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		}
		liveMu.Lock()
		live[req.ID] = stop
		liveMu.Unlock()

		handlerWG.Add(1)
		go func(req request, callCtx context.Context, stop context.CancelFunc) {
			defer handlerWG.Done()
			defer release()
			defer func() {
				liveMu.Lock()
				delete(live, req.ID)
				liveMu.Unlock()
				stop()
			}()
			resp := response{ID: req.ID}
			if result, err := h(callCtx, req.Params); err != nil {
				resp.Error = err.Error()
				switch {
				case errors.Is(err, context.DeadlineExceeded):
					resp.ErrCode = codeDeadline
				case errors.Is(err, context.Canceled):
					resp.ErrCode = codeCanceled
				}
			} else if result != nil {
				body, err := json.Marshal(result)
				if err != nil {
					resp.Error = fmt.Sprintf("marshal result: %v", err)
				} else {
					resp.Result = body
				}
			}
			// A write failure means the connection is gone; the read
			// loop will notice and clean up.
			_ = writeFrame(conn, &writeMu, &resp)
		}(req, callCtx, stop)
	}
}

// Addr returns the listener address, if serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Drain gracefully quiesces the server: the listener closes, new
// requests on existing connections are answered with a "server draining"
// error, and Drain waits — bounded by ctx — for in-flight handlers to
// finish so their responses still reach callers. Connections stay open
// until Close. Draining is terminal: there is no undrain.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.calls.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the listener, closes every connection, and waits for
// in-flight handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a wire RPC client multiplexing calls over one connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan response
	nextID  uint64
	closed  bool
	readErr error
}

// DialContext connects to a wire server, honouring ctx cancellation and
// deadline during the TCP connect: cancelling the context aborts an
// in-flight dial promptly, with no connection left behind. This is the
// only dial this package offers — internal/rpc owns every control-plane
// connection and is its sole caller outside tests.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan response),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		var resp response
		if err := readFrame(c.conn, &resp); err != nil {
			c.failAll(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr == nil {
		c.readErr = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// Err reports the connection's terminal state: nil while the session is
// healthy, ErrClosed after Close, or the transport error that killed the
// read loop. A session layer uses this to discard dead cached
// connections before sending on them.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.readErr
}

// Call invokes method with params (JSON-encoded) and decodes the result
// into result (unless nil). It respects ctx cancellation and deadlines:
// the remaining deadline travels with the request frame (the server
// bounds the handler context with it), and abandoning the call sends a
// cancel frame so the server stops the handler. Failures from before the
// request reached the wire are wrapped in *UnsentError (safe to retry on
// a fresh connection).
func (c *Client) Call(ctx context.Context, method string, params, result any) error {
	var raw json.RawMessage
	if params != nil {
		body, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("wire: marshal params: %w", err)
		}
		raw = body
	}

	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return &UnsentError{Err: ErrClosed}
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return &UnsentError{Err: err}
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	req := request{ID: id, Method: method, Params: raw}
	if deadline, ok := ctx.Deadline(); ok {
		ms := time.Until(deadline).Milliseconds()
		if ms < 1 {
			// Already (nearly) expired: still send a positive bound so the
			// server-side contract "frame deadline ⇒ handler deadline"
			// holds; the caller's own select fires immediately anyway.
			ms = 1
		}
		req.TimeoutMs = ms
	}
	if err := writeFrame(c.conn, &c.writeMu, &req); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// A partial frame is unparseable, so the handler cannot have run.
		return &UnsentError{Err: err}
	}

	select {
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// Tell the server to stop working on the abandoned call.
		// Best-effort: a dead connection cleans up server-side anyway.
		_ = writeFrame(c.conn, &c.writeMu, &request{ID: id, Cancel: true})
		return ctx.Err()
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return err
		}
		if resp.Error != "" {
			return &RemoteError{Method: method, Msg: resp.Error, Code: resp.ErrCode}
		}
		if result != nil {
			if len(resp.Result) == 0 {
				return fmt.Errorf("wire: %s returned no result", method)
			}
			if err := json.Unmarshal(resp.Result, result); err != nil {
				return fmt.Errorf("wire: decode result: %w", err)
			}
		}
		return nil
	}
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
