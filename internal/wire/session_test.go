package wire

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegisterAfterServe: the handler table is frozen once Serve starts —
// late registration is an error, not a silent data race with dispatch.
func TestRegisterAfterServe(t *testing.T) {
	s := NewServer()
	mustRegister(t, s, "early", func(context.Context, json.RawMessage) (any, error) { return nil, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.Addr() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := s.Register("late", func(context.Context, json.RawMessage) (any, error) { return nil, nil }); err == nil {
		t.Fatal("Register after Serve succeeded")
	}
	if err := s.SetInflightLimit("early", 1); err == nil {
		t.Fatal("SetInflightLimit after Serve succeeded")
	}
}

// TestDeadlinePropagatesToHandler: the client's context deadline rides
// the request frame and bounds the handler's context server-side, so a
// handler that honours ctx stops within the caller's budget even though
// the server itself set no timeout.
func TestDeadlinePropagatesToHandler(t *testing.T) {
	sawDeadline := make(chan time.Duration, 1)
	s := NewServer()
	mustRegister(t, s, "probe", func(ctx context.Context, _ json.RawMessage) (any, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			sawDeadline <- -1
			return nil, nil
		}
		sawDeadline <- time.Until(dl)
		return nil, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer s.Close()
	c := dial(t, ln.Addr().String())

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := c.Call(ctx, "probe", nil, nil); err != nil {
		t.Fatal(err)
	}
	rem := <-sawDeadline
	if rem < 0 {
		t.Fatal("handler context carried no deadline")
	}
	if rem > 500*time.Millisecond {
		t.Fatalf("handler deadline %v exceeds the caller's 500ms budget", rem)
	}
}

// TestNoDeadlineMeansNoHandlerDeadline: a call without a deadline must
// not invent one server-side.
func TestNoDeadlineMeansNoHandlerDeadline(t *testing.T) {
	hadDeadline := make(chan bool, 1)
	s := NewServer()
	mustRegister(t, s, "probe", func(ctx context.Context, _ json.RawMessage) (any, error) {
		_, ok := ctx.Deadline()
		hadDeadline <- ok
		return nil, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer s.Close()
	c := dial(t, ln.Addr().String())
	if err := c.Call(context.Background(), "probe", nil, nil); err != nil {
		t.Fatal(err)
	}
	if <-hadDeadline {
		t.Fatal("handler context had a deadline for a deadline-free call")
	}
}

// TestDeadlineStopsHandlerServerSide: a handler that blocks past the
// caller's deadline is cancelled by the server's own clock — the
// propagated budget, not just client-side abandonment, bounds the work.
func TestDeadlineStopsHandlerServerSide(t *testing.T) {
	stopped := make(chan error, 1)
	s := NewServer()
	mustRegister(t, s, "block", func(ctx context.Context, _ json.RawMessage) (any, error) {
		select {
		case <-ctx.Done():
			stopped <- ctx.Err()
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			stopped <- nil
			return nil, nil
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer s.Close()
	c := dial(t, ln.Addr().String())

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.Call(ctx, "block", nil, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Call err = %v, want DeadlineExceeded", err)
	}
	select {
	case err := <-stopped:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("handler observed %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never stopped")
	}
}

// TestCancelFrameStopsHandler: abandoning a deadline-free call sends a
// cancel frame that cancels the in-flight handler's context — the server
// stops doing work whose result nobody will read.
func TestCancelFrameStopsHandler(t *testing.T) {
	entered := make(chan struct{}, 1)
	stopped := make(chan error, 1)
	s := NewServer()
	mustRegister(t, s, "hang", func(ctx context.Context, _ json.RawMessage) (any, error) {
		entered <- struct{}{}
		select {
		case <-ctx.Done():
			stopped <- ctx.Err()
		case <-time.After(10 * time.Second):
			stopped <- nil
		}
		return nil, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer s.Close()
	c := dial(t, ln.Addr().String())

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Call(ctx, "hang", nil, nil) }()
	<-entered
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("Call err = %v, want Canceled", err)
	}
	select {
	case err := <-stopped:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("handler observed %v, want Canceled (cancel frame)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel frame did not stop the handler")
	}
}

// TestInflightLimitRejects: the per-method cap answers excess calls with
// an immediate error instead of queueing them behind the slow ones, and
// capacity frees once a call finishes.
func TestInflightLimitRejects(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s := NewServer()
	mustRegister(t, s, "slow", func(ctx context.Context, _ json.RawMessage) (any, error) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "done", nil
	})
	if err := s.SetInflightLimit("slow", 2); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer s.Close()
	c := dial(t, ln.Addr().String())

	errs := make(chan error, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		go func() {
			var out string
			errs <- c.Call(ctx, "slow", nil, &out)
		}()
	}
	<-entered
	<-entered // both slots occupied
	if got := s.Inflight(); got != 2 {
		t.Fatalf("Inflight = %d, want 2", got)
	}

	// The third call is rejected immediately, not queued.
	err = c.Call(ctx, "slow", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "in-flight") {
		t.Fatalf("over-limit call err = %v, want in-flight rejection", err)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("admitted call failed: %v", err)
		}
	}
	// Capacity is free again.
	var out string
	if err := c.Call(ctx, "slow", nil, &out); err != nil {
		t.Fatalf("call after release: %v", err)
	}
}

// TestDrainFinishesInflight: Drain stops accepting work — new calls get
// a "draining" rejection — but in-flight handlers finish and their
// responses still reach the caller.
func TestDrainFinishesInflight(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s := NewServer()
	mustRegister(t, s, "work", func(ctx context.Context, _ json.RawMessage) (any, error) {
		entered <- struct{}{}
		<-release
		return "finished", nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck // Serve returns on Close or Drain
	defer s.Close()
	c := dial(t, ln.Addr().String())

	callErr := make(chan error, 1)
	var out string
	go func() { callErr <- c.Call(context.Background(), "work", nil, &out) }()
	<-entered

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining: a new call on the existing connection is rejected.
	var rejected atomic.Bool
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		err := c.Call(context.Background(), "work", nil, nil)
		var re *RemoteError
		if errors.As(err, &re) && strings.Contains(re.Msg, "draining") {
			rejected.Store(true)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !rejected.Load() {
		t.Fatal("new call was not rejected while draining")
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if err := <-callErr; err != nil {
		t.Fatalf("in-flight call failed across Drain: %v", err)
	}
	if out != "finished" {
		t.Fatalf("in-flight result = %q, want finished", out)
	}
	// Drain is bounded: a second drain with nothing in flight returns at
	// once, and a drain on a closed server errors.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("idle Drain = %v", err)
	}
	s.Close()
	if err := s.Drain(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
}

// TestUnsentErrorMarksSafeRetries: failures from before the request could
// have reached the wire wrap *UnsentError; a response that made it back
// never does.
func TestUnsentErrorMarksSafeRetries(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	err := c.Call(context.Background(), "echo", echoArgs{Msg: "x"}, nil)
	var ue *UnsentError
	if !errors.As(err, &ue) {
		t.Fatalf("call on closed client = %v, want *UnsentError", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("UnsentError does not unwrap to ErrClosed: %v", err)
	}

	// A remote application error is NOT an UnsentError — the handler ran.
	c2 := dial(t, addr)
	err = c2.Call(context.Background(), "fail", nil, nil)
	if errors.As(err, &ue) {
		t.Fatalf("remote error wrapped as UnsentError: %v", err)
	}
}
