package wire

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"
)

// TestDialContextCancelled: a cancelled context aborts the dial
// immediately, before any connection exists.
func TestDialContextCancelled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	cl, err := DialContext(ctx, ln.Addr().String())
	if err == nil {
		cl.Close()
		t.Fatal("dial succeeded with a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("dial error = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled dial took %v, want immediate return", d)
	}
}

// TestDialContextConnects: the context-aware dial produces a working
// client (and Close unwinds its reader — TestMain's leak check fails the
// package otherwise).
func TestDialContextConnects(t *testing.T) {
	srv := NewServer()
	if err := srv.Register("echo", func(_ context.Context, p json.RawMessage) (any, error) {
		return p, nil
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cl, err := DialContext(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var out int
	if err := cl.Call(ctx, "echo", 42, &out); err != nil {
		t.Fatal(err)
	}
	if out != 42 {
		t.Fatalf("echo = %d, want 42", out)
	}
}

// TestCallCancelledMidFlight: cancelling a call whose handler never
// replies unblocks the caller promptly; the connection stays usable for
// other calls and Close leaks nothing (TestMain enforces the latter).
func TestCallCancelledMidFlight(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := NewServer()
	if err := srv.Register("hang", func(ctx context.Context, _ json.RawMessage) (any, error) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("ping", func(context.Context, json.RawMessage) (any, error) {
		return "pong", nil
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	defer srv.Close()
	defer close(release)

	cl, err := DialContext(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- cl.Call(ctx, "hang", nil, nil) }()
	<-entered // the handler is live; the call is truly mid-flight
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Call error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call did not return")
	}

	// The connection survived the abandoned call.
	var out string
	callCtx, callCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer callCancel()
	if err := cl.Call(callCtx, "ping", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out != "pong" {
		t.Fatalf("ping = %q, want pong", out)
	}
}
