package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// frameBytes builds a raw frame with an arbitrary length prefix, which
// need not match the body length — that mismatch is exactly what the
// decoder must survive.
func frameBytes(prefix uint32, body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], prefix)
	return append(hdr[:], body...)
}

// FuzzReadFrame throws corrupt, truncated, and oversized frames at the
// decoder. The decoder must never panic, must reject length prefixes
// beyond maxFrame, and — the finding that motivated the chunked read —
// must not allocate prefix-sized buffers for data that never arrives: a
// 4-byte input claiming a 16 MB body should cost roughly nothing.
func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(2, []byte(`{}`)))
	f.Add(frameBytes(0, nil))
	f.Add(frameBytes(5, []byte(`{"id"`)))      // truncated JSON, honest length
	f.Add(frameBytes(100, []byte(`{}`)))       // length longer than body
	f.Add(frameBytes(1, []byte(`{"id":1}`)))   // length shorter than body
	f.Add(frameBytes(maxFrame+1, nil))         // oversized prefix, no body
	f.Add(frameBytes(0xffffffff, []byte("x"))) // absurd prefix
	f.Add(frameBytes(7, []byte("not json")))   // non-JSON body
	f.Add([]byte{0x00})                        // truncated header
	f.Add(frameBytes(3, []byte(`123`)))        // JSON, wrong shape
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		err := readFrame(bytes.NewReader(data), &req)
		if len(data) < 4 {
			if err == nil {
				t.Fatal("decoded a frame from a truncated header")
			}
			return
		}
		n := binary.BigEndian.Uint32(data[:4])
		switch {
		case n > maxFrame:
			if err == nil {
				t.Fatalf("accepted oversized frame (%d bytes)", n)
			}
		case uint32(len(data)-4) < n:
			if err == nil {
				t.Fatalf("decoded a frame missing %d body bytes", n-uint32(len(data)-4))
			}
			if err == io.EOF {
				// A frame cut off mid-body must be distinguishable from a
				// clean end-of-stream, or reconnect logic would treat
				// half a message as a graceful close.
				t.Fatal("short body reported as clean EOF")
			}
		}
	})
}

// TestReadFrameShortBody pins the truncation semantics outside the
// fuzzer: a clean EOF at a frame boundary is io.EOF, mid-header is
// io.ErrUnexpectedEOF, and mid-body is io.ErrUnexpectedEOF.
func TestReadFrameShortBody(t *testing.T) {
	var req request
	if err := readFrame(bytes.NewReader(nil), &req); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
	if err := readFrame(bytes.NewReader([]byte{0, 0}), &req); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-header cut: got %v, want io.ErrUnexpectedEOF", err)
	}
	if err := readFrame(bytes.NewReader(frameBytes(10, []byte("abc"))), &req); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-body cut: got %v, want io.ErrUnexpectedEOF", err)
	}
}
