package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

type echoArgs struct {
	Msg string `json:"msg"`
}

type echoReply struct {
	Msg string `json:"msg"`
}

// startServer runs a server with an echo, fail, and slow method.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	mustRegister(t, s, "echo", func(ctx context.Context, params json.RawMessage) (any, error) {
		var a echoArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		return echoReply{Msg: a.Msg}, nil
	})
	mustRegister(t, s, "fail", func(ctx context.Context, params json.RawMessage) (any, error) {
		return nil, errors.New("boom")
	})
	mustRegister(t, s, "slow", func(ctx context.Context, params json.RawMessage) (any, error) {
		select {
		case <-time.After(5 * time.Second):
			return echoReply{Msg: "late"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	mustRegister(t, s, "void", func(ctx context.Context, params json.RawMessage) (any, error) {
		return nil, nil
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func mustRegister(t *testing.T, s *Server, method string, h Handler) {
	t.Helper()
	if err := s.Register(method, h); err != nil {
		t.Fatalf("Register(%s): %v", method, err)
	}
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := DialContext(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	var reply echoReply
	if err := c.Call(context.Background(), "echo", echoArgs{Msg: "hello"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "hello" {
		t.Errorf("reply = %q, want %q", reply.Msg, "hello")
	}
}

func TestCallRemoteError(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	err := c.Call(context.Background(), "fail", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if re.Method != "fail" || re.Msg != "boom" {
		t.Errorf("RemoteError = %+v", re)
	}
	if re.Error() == "" {
		t.Error("empty error string")
	}
}

func TestCallUnknownMethod(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	err := c.Call(context.Background(), "nope", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
}

func TestCallContextTimeout(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Call(ctx, "slow", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout did not take effect promptly")
	}
	// The connection is still usable after a timed-out call.
	var reply echoReply
	if err := c.Call(context.Background(), "echo", echoArgs{Msg: "still alive"}, &reply); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
}

func TestVoidResult(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Call(context.Background(), "void", nil, nil); err != nil {
		t.Fatal(err)
	}
	// Requesting a result from a void method is an error.
	var reply echoReply
	if err := c.Call(context.Background(), "void", nil, &reply); err == nil {
		t.Error("expected error decoding empty result")
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := fmt.Sprintf("msg-%d", i)
			var reply echoReply
			if err := c.Call(context.Background(), "echo", echoArgs{Msg: msg}, &reply); err != nil {
				errs <- err
				return
			}
			if reply.Msg != msg {
				errs <- fmt.Errorf("got %q, want %q", reply.Msg, msg)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	s, addr := startServer(t)
	c := dial(t, addr)

	done := make(chan error, 1)
	go func() {
		done <- c.Call(context.Background(), "slow", nil, nil)
	}()
	time.Sleep(50 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending call succeeded after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call hung after server close")
	}
}

func TestClientCloseRejectsCalls(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := c.Call(context.Background(), "echo", echoArgs{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after close = %v, want ErrClosed", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewServer()
	if err := s.Register("", func(context.Context, json.RawMessage) (any, error) { return nil, nil }); err == nil {
		t.Error("empty method accepted")
	}
	if err := s.Register("m", nil); err == nil {
		t.Error("nil handler accepted")
	}
	mustRegister(t, s, "m", func(context.Context, json.RawMessage) (any, error) { return nil, nil })
	if err := s.Register("m", func(context.Context, json.RawMessage) (any, error) { return nil, nil }); err == nil {
		t.Error("duplicate method accepted")
	}
}

func TestServeAfterClose(t *testing.T) {
	s := NewServer()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := s.Serve(ln); !errors.Is(err, ErrClosed) {
		t.Errorf("Serve after close = %v, want ErrClosed", err)
	}
}

func TestServerAddr(t *testing.T) {
	s := NewServer()
	if s.Addr() != nil {
		t.Error("Addr before Serve should be nil")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.Addr() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Addr() == nil {
		t.Error("Addr not set while serving")
	}
}

func TestLargePayload(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	var reply echoReply
	if err := c.Call(context.Background(), "echo", echoArgs{Msg: string(big)}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != string(big) {
		t.Error("large payload corrupted")
	}
}
