package flowctl

// LinkLoad is one link's modeled utilization as exported in a digest:
// the number of committed flows crossing it and the sum of their
// current bandwidth estimates. The zero value means "no information",
// which ShareEstimate scores as a fully available link.
type LinkLoad struct {
	Flows int32
	SumBw float64
}

// Digest is one shard's bounded-staleness summary of the links it owns,
// gossiped to the other shards so their coordinators can score remote
// sub-paths without owning the state. Entries are sparse — only links
// with at least one committed flow appear — and sorted by ascending
// link id, so merging into a dense view is a deterministic scatter.
type Digest struct {
	// Shard is the producing shard's index.
	Shard int
	// Seq increases by one per BuildDigest call on the producer; a
	// consumer holding Seq s can discard any digest with Seq <= s.
	Seq int64
	// Time is the model-clock time the snapshot was taken; consumers
	// derive digest age from it.
	Time float64
	// Links and Loads are parallel: Loads[i] is the load of link
	// Links[i].
	Links []int32
	Loads []LinkLoad
}

// ShareEstimate estimates the max-min share a new flow would receive on
// a link of the given capacity under the digested load: the larger of
// the equal-split share capacity/(n+1) (the floor max-min guarantees a
// new flow against n saturated peers) and the headroom capacity−sumBw
// (links whose flows are bottlenecked elsewhere give the new flow the
// slack). With no information it is the full capacity — the coordinator
// is optimistic about links it cannot see, exactly like a freshly
// booted Flowserver.
func ShareEstimate(capacity float64, l LinkLoad) float64 {
	if l.Flows <= 0 {
		return capacity
	}
	share := capacity - l.SumBw
	if even := capacity / float64(l.Flows+1); even > share {
		share = even
	}
	if share < 0 {
		return 0
	}
	return share
}

// ScatterInto writes the digest's sparse entries into a dense per-link
// view. Links the digest does not mention are left untouched.
func (d *Digest) ScatterInto(dst []LinkLoad) {
	for i, l := range d.Links {
		if int(l) < len(dst) {
			dst[int(l)] = d.Loads[i]
		}
	}
}

// MergeDigests builds a dense per-link view from a set of digests over
// disjoint link ownership (one per remote shard), reusing dst when it
// has the right length. Nil digests are skipped — a shard whose digest
// pull failed simply contributes no information, which ShareEstimate
// treats optimistically.
func MergeDigests(dst []LinkLoad, numLinks int, ds ...*Digest) []LinkLoad {
	if len(dst) != numLinks {
		dst = make([]LinkLoad, numLinks)
	} else {
		for i := range dst {
			dst[i] = LinkLoad{}
		}
	}
	for _, d := range ds {
		if d != nil {
			d.ScatterInto(dst)
		}
	}
	return dst
}
