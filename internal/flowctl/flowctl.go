// Package flowctl shards the Flowserver by pod: a partitioned control
// plane in which each shard owns the links, switch counters, and
// committed-flow table for the pods the directory assigns it, reusing
// flowserver's Eq. 2 / max-min machinery per shard.
//
// The partition exploits a structural property of the three-tier
// topology: every directed link touches exactly one pod-resident node
// (host↔edge and edge↔agg links live wholly inside a pod; an agg↔core
// link belongs to its aggregation switch's pod), so "owns the pod"
// induces a clean partition of the link set. A shortest path between
// hosts in different pods therefore splits into exactly two owned
// sub-paths.
//
// Selections are coordinated by the requester-side shard — the shard
// owning the client's pod for reads, the writing host's pod for write
// pipelines. The coordinator scores the links it owns exactly against
// its own model (flowserver.EvalPathCost) and the remote sub-path from
// gossiped per-link utilization digests (bounded staleness: digests
// refresh on the stats-poll cadence, so a digest is never older than
// one poll interval plus the time since the last poll). Commits are
// exact everywhere: the coordinator commits its own sub-path and pushes
// the remote sub-path to its owning shard under the same globally
// unique flow id (flowserver.CommitForeign), so every shard's model
// stays truthful for the links it owns — staleness only ever degrades
// selection quality, never model integrity.
//
// A small directory maps pods to shards under an epoch-numbered lease:
// every ownership change bumps the epoch, and clients cache (shard,
// epoch) routes they must revalidate on epoch change (see
// internal/client). When a shard dies — missed heartbeats in the
// deployed form, an explicit kill in tests — the directory promotes its
// pods to the next live shard and bumps the epoch; the promoted shard
// adopts the links with an empty model that repopulates from counter
// polls, and in-flight clients fall back to the degraded locality-order
// read path until they re-resolve.
package flowctl

import (
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// Metrics is the sharded control plane's instrumentation: selection
// routing (pod-local vs cross-shard), foreign-commit traffic, digest
// freshness, and failovers. Counters are atomic words touched directly;
// a registry (when attached) publishes them under "flowctl." names.
type Metrics struct {
	Selections         obs.Counter
	WriteSelections    obs.Counter
	Candidates         obs.Counter
	PodLocal           obs.Counter
	CrossShard         obs.Counter
	RemoteCommits      obs.Counter
	RemoteCommitErrors obs.Counter
	DigestRefreshes    obs.Counter
	Failovers          obs.Counter
	// DigestAge observes, at every cross-shard commit, how stale the
	// consulted remote digest was (seconds on the model clock).
	DigestAge *obs.Histogram

	epoch *obs.Gauge
}

// NewMetrics creates an unregistered metrics set (the histogram must
// exist even without a registry).
func NewMetrics() *Metrics {
	return &Metrics{DigestAge: obs.NewHistogram(1e-6, 10)}
}

// Register publishes the metrics into r under "flowctl." names.
func (m *Metrics) Register(r *obs.Registry) {
	r.RegisterCounter("flowctl.selections", &m.Selections)
	r.RegisterCounter("flowctl.write_selections", &m.WriteSelections)
	r.RegisterCounter("flowctl.candidates_evaluated", &m.Candidates)
	r.RegisterCounter("flowctl.pod_local_selections", &m.PodLocal)
	r.RegisterCounter("flowctl.cross_shard_selections", &m.CrossShard)
	r.RegisterCounter("flowctl.remote_commits", &m.RemoteCommits)
	r.RegisterCounter("flowctl.remote_commit_errors", &m.RemoteCommitErrors)
	r.RegisterCounter("flowctl.digest_refreshes", &m.DigestRefreshes)
	r.RegisterCounter("flowctl.failovers", &m.Failovers)
	r.RegisterHistogram("flowctl.digest_age_seconds", m.DigestAge)
	m.epoch = r.Gauge("flowctl.epoch")
}

// setEpoch mirrors the directory epoch into the registry when attached.
func (m *Metrics) setEpoch(e int64) {
	if m.epoch != nil {
		m.epoch.Set(e)
	}
}

// LinkPods maps every link to the pod that owns it: the pod of the
// link's single pod-resident endpoint (agg↔core links belong to the
// aggregation switch's pod). This is the static half of the ownership
// relation; the directory's pod→shard map is the dynamic half.
func LinkPods(topo *topology.Topology) []int {
	pods := make([]int, topo.NumLinks())
	for _, l := range topo.Links() {
		if p := topo.Node(l.From).Pod; p >= 0 {
			pods[l.ID] = p
		} else {
			pods[l.ID] = topo.Node(l.To).Pod
		}
	}
	return pods
}
