package flowctl

import (
	"fmt"
	"math"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// ShardLink is a coordinator's handle on a remote shard: push the
// remote half of a flow it is committing, retire it, and pull the
// remote shard's utilization digest. The in-process plane implements it
// with direct calls; the deployed form with ctl.* RPCs over
// internal/rpc sessions.
type ShardLink interface {
	// CommitForeign registers links (all owned by the target shard) as
	// the remote sub-path of flow id, demand capped at capBw. It
	// returns the share the remote model granted.
	CommitForeign(id flowserver.FlowID, links topology.Path, bits, capBw float64) (float64, error)
	// FinishForeign retires the remote sub-path of flow id.
	FinishForeign(id flowserver.FlowID) error
	// Digest returns the shard's current utilization digest.
	Digest() (*Digest, error)
}

// Shard is one partition of the sharded Flowserver: a full
// flowserver.Server scoped (by commit discipline, not by construction)
// to the links of the pods this shard owns, plus the coordinator logic
// for selections whose requester lives in one of those pods.
//
// Locking: selMu serializes coordinator work (a selection must evaluate
// and commit atomically against this shard's model). The serve-side
// methods remote shards call — CommitForeignLocal, FinishLocal,
// BuildDigest — deliberately do NOT take selMu: shard A's coordinator
// may be committing into shard B while B's coordinator commits into A,
// and the embedded Server's own lock already makes each call atomic.
type Shard struct {
	idx      int
	nshards  int
	topo     *topology.Topology
	srv      *flowserver.Server
	capacity []float64
	linkPod  []int
	now      func() float64
	met      *Metrics

	// ownMu guards the directory-driven ownership view.
	ownMu sync.RWMutex
	owner []int // pod → shard
	epoch int64

	selMu sync.Mutex
	peers []ShardLink // by shard index; nil for self and until SetPeers
	// remote[g] is the latest digest pulled from shard g; view is the
	// dense merge used to score remote links.
	remote []*Digest
	view   []LinkLoad
	seq    int64
	// coordinated maps flows this shard coordinated to the remote
	// shards holding their other half, for fan-out on Finished.
	coordinated map[flowserver.FlowID][]int
	localLinks  []topology.LinkID // scratch
}

// ShardConfig parameterizes one shard.
type ShardConfig struct {
	// Index is this shard's slot in [0, Shards).
	Index int
	// Shards is the total shard count (the flow-id stride).
	Shards int
	// Owner is the initial pod→shard map and Epoch its lease epoch,
	// both from the directory.
	Owner []int
	Epoch int64
	// DisableImpactTerm / DisableFreeze / Now / MaxPollSkew pass
	// through to the embedded flowserver (see flowserver.Options).
	DisableImpactTerm bool
	DisableFreeze     bool
	Now               func() float64
	MaxPollSkew       float64
	// Metrics receives the shard's flowctl instrumentation; a fresh
	// unregistered set when nil.
	Metrics *Metrics
}

// NewShard creates one shard over the full topology. The embedded
// server's flow-id sequence is Index+1, Index+1+Shards, … so ids stay
// globally unique across shards without coordination.
func NewShard(topo *topology.Topology, cfg ShardConfig) (*Shard, error) {
	if cfg.Shards < 1 || cfg.Index < 0 || cfg.Index >= cfg.Shards {
		return nil, fmt.Errorf("flowctl: shard index %d out of range for %d shards", cfg.Index, cfg.Shards)
	}
	if len(cfg.Owner) != topo.Config().Pods {
		return nil, fmt.Errorf("flowctl: owner map covers %d pods, topology has %d", len(cfg.Owner), topo.Config().Pods)
	}
	met := cfg.Metrics
	if met == nil {
		met = NewMetrics()
	}
	capacity := make([]float64, topo.NumLinks())
	for _, l := range topo.Links() {
		capacity[l.ID] = l.Capacity
	}
	s := &Shard{
		idx:      cfg.Index,
		nshards:  cfg.Shards,
		topo:     topo,
		capacity: capacity,
		linkPod:  LinkPods(topo),
		now:      cfg.Now,
		met:      met,
		owner:    append([]int(nil), cfg.Owner...),
		epoch:    cfg.Epoch,
		peers:    make([]ShardLink, cfg.Shards),
		remote:   make([]*Digest, cfg.Shards),
		view:     make([]LinkLoad, topo.NumLinks()),

		coordinated: make(map[flowserver.FlowID][]int),
	}
	s.srv = flowserver.New(topo, flowserver.Options{
		DisableImpactTerm: cfg.DisableImpactTerm,
		DisableFreeze:     cfg.DisableFreeze,
		Now:               cfg.Now,
		MaxPollSkew:       cfg.MaxPollSkew,
		IDBase:            int64(cfg.Index + 1),
		IDStride:          int64(cfg.Shards),
	})
	return s, nil
}

// Index returns this shard's slot.
func (s *Shard) Index() int { return s.idx }

// Server exposes the embedded flowserver (stats ingestion, counters).
func (s *Shard) Server() *flowserver.Server { return s.srv }

// SetPeers installs the links to the other shards. peers[s.idx] is
// ignored.
func (s *Shard) SetPeers(peers []ShardLink) {
	s.selMu.Lock()
	defer s.selMu.Unlock()
	s.peers = append([]ShardLink(nil), peers...)
}

// SetOwners installs a new pod→shard map under its epoch (a directory
// failover). Stale epochs are ignored.
func (s *Shard) SetOwners(owner []int, epoch int64) {
	s.ownMu.Lock()
	defer s.ownMu.Unlock()
	if epoch < s.epoch {
		return
	}
	s.owner = append([]int(nil), owner...)
	s.epoch = epoch
}

// OwnsPod reports whether this shard currently owns the pod.
func (s *Shard) OwnsPod(pod int) bool {
	s.ownMu.RLock()
	defer s.ownMu.RUnlock()
	return pod >= 0 && pod < len(s.owner) && s.owner[pod] == s.idx
}

// ownerOf returns the shard owning a link's pod.
func (s *Shard) ownerOf(link topology.LinkID) int {
	s.ownMu.RLock()
	defer s.ownMu.RUnlock()
	return s.owner[s.linkPod[link]]
}

// candidate is one scored replica/path option of a sharded selection.
type shardCandidate struct {
	replica topology.NodeID
	path    topology.Path
	cost    float64
	bw      float64
	cap     float64 // remote sub-path cap used in the evaluation
	cross   bool
}

// evalSharded scores one path: links this shard owns exactly, remote
// links from the merged digest view. The remote estimate carries no
// impact term — the completion-time increase of flows another shard
// models is exactly the information the digest compresses away — which
// is the bounded-staleness approximation the shard-count sweep
// quantifies. Caller must hold selMu.
func (s *Shard) evalSharded(path topology.Path, bits float64) shardCandidate {
	local := s.localLinks[:0]
	remoteCap := math.Inf(1)
	cross := false
	for _, lid := range path {
		if s.ownerOf(lid) == s.idx {
			local = append(local, lid)
			continue
		}
		cross = true
		if est := ShareEstimate(s.capacity[lid], s.view[lid]); est < remoteCap {
			remoteCap = est
		}
	}
	s.localLinks = local
	var cost, bw float64
	if len(local) > 0 {
		cost, bw = s.srv.EvalPathCost(local, bits, remoteCap)
	} else {
		bw = remoteCap
		if bw > 0 {
			cost = bits / bw
		} else {
			cost = math.Inf(1)
		}
	}
	return shardCandidate{path: path, cost: cost, bw: bw, cap: remoteCap, cross: cross}
}

// commitSharded registers the winning candidate: the owned sub-path
// exactly (allocating the flow id), then the remote sub-path with its
// owning shard under the same id, capped at the granted share. A
// remote commit failure (peer dead or unreachable) is counted and
// tolerated: the flow still runs, the remote model just cannot see it
// until its counters do — the same blindness background traffic
// already inflicts. Caller must hold selMu.
func (s *Shard) commitSharded(c shardCandidate, bits float64) flowserver.Assignment {
	local := make(topology.Path, 0, len(c.path))
	remoteLinks := make(map[int]topology.Path)
	var remoteOrder []int
	for _, lid := range c.path {
		g := s.ownerOf(lid)
		if g == s.idx {
			local = append(local, lid)
			continue
		}
		if _, ok := remoteLinks[g]; !ok {
			remoteOrder = append(remoteOrder, g)
		}
		remoteLinks[g] = append(remoteLinks[g], lid)
	}
	a := s.srv.CommitPath(local, bits, c.cap)
	if c.cross {
		s.met.CrossShard.Inc()
	} else {
		s.met.PodLocal.Inc()
	}
	var committed []int
	for _, g := range remoteOrder {
		if d := s.remote[g]; d != nil && s.now != nil {
			s.met.DigestAge.Observe(s.now() - d.Time)
		}
		peer := s.peers[g]
		if peer == nil {
			s.met.RemoteCommitErrors.Inc()
			continue
		}
		if _, err := peer.CommitForeign(a.FlowID, remoteLinks[g], bits, a.EstimatedBw); err != nil {
			s.met.RemoteCommitErrors.Inc()
			continue
		}
		s.met.RemoteCommits.Inc()
		committed = append(committed, g)
	}
	if len(committed) > 0 {
		s.coordinated[a.FlowID] = committed
	}
	return flowserver.Assignment{
		FlowID:      a.FlowID,
		Replica:     c.replica,
		Path:        c.path,
		Bits:        bits,
		EstimatedBw: a.EstimatedBw,
	}
}

// Select is the sharded SelectReplicaAndPath: joint replica and path
// selection coordinated by this shard (which must own the client's
// pod). Multi-replica splits are a single-shard-only optimization —
// their rollback would have to snapshot two shards atomically — so the
// sharded path always returns one assignment.
func (s *Shard) Select(req flowserver.Request) ([]flowserver.Assignment, error) {
	if len(req.Replicas) == 0 {
		return nil, flowserver.ErrNoReplicas
	}
	if req.Bits < 0 {
		return nil, fmt.Errorf("flowctl: negative read size %g", req.Bits)
	}
	s.selMu.Lock()
	defer s.selMu.Unlock()
	s.met.Selections.Inc()

	// A co-located replica costs nothing; every policy prefers it.
	for _, r := range req.Replicas {
		if r == req.Client {
			return []flowserver.Assignment{{
				FlowID:      s.srv.AllocFlowID(),
				Replica:     r,
				Bits:        req.Bits,
				EstimatedBw: math.Inf(1),
			}}, nil
		}
	}

	var best shardCandidate
	found := false
	evaluated := int64(0)
	for _, rep := range req.Replicas {
		if rep == req.Client {
			continue
		}
		for _, path := range s.topo.ShortestPaths(rep, req.Client) {
			c := s.evalSharded(path, req.Bits)
			c.replica = rep
			evaluated++
			if !found || c.cost < best.cost {
				best = c
				found = true
			}
		}
	}
	s.met.Candidates.Add(evaluated)
	if !found {
		return nil, fmt.Errorf("flowctl: no path from any replica to client %d", req.Client)
	}
	return []flowserver.Assignment{s.commitSharded(best, req.Bits)}, nil
}

// SelectPath is the path-only scheduler for a pre-chosen replica.
func (s *Shard) SelectPath(client, replica topology.NodeID, bits float64) (flowserver.Assignment, error) {
	as, err := s.Select(flowserver.Request{Client: client, Replicas: []topology.NodeID{replica}, Bits: bits})
	if err != nil {
		return flowserver.Assignment{}, err
	}
	return as[0], nil
}

// SelectWrite is the sharded SelectWritePipeline: greedy cheapest-first
// ordering of the replication fan-out from source, each round scored
// with evalSharded so later hops see both the local model and the
// digest view the earlier hops updated locally.
func (s *Shard) SelectWrite(source topology.NodeID, targets []topology.NodeID, bits float64) ([]flowserver.Assignment, error) {
	if len(targets) == 0 {
		return nil, flowserver.ErrNoReplicas
	}
	if bits < 0 {
		return nil, fmt.Errorf("flowctl: negative write size %g", bits)
	}
	s.selMu.Lock()
	defer s.selMu.Unlock()
	s.met.Selections.Inc()
	s.met.WriteSelections.Inc()

	remaining := append([]topology.NodeID(nil), targets...)
	out := make([]flowserver.Assignment, 0, len(targets))
	for len(remaining) > 0 {
		bestIdx, local := -1, false
		var best shardCandidate
		evaluated := int64(0)
		for i, tgt := range remaining {
			if tgt == source {
				bestIdx, local = i, true
				break
			}
			for _, path := range s.topo.ShortestPaths(source, tgt) {
				c := s.evalSharded(path, bits)
				c.replica = tgt
				evaluated++
				if bestIdx < 0 || c.cost < best.cost {
					best = c
					bestIdx = i
				}
			}
		}
		s.met.Candidates.Add(evaluated)
		if bestIdx < 0 {
			return nil, fmt.Errorf("flowctl: no path from source %d to targets %v", source, remaining)
		}
		if local {
			out = append(out, flowserver.Assignment{
				FlowID:      s.srv.AllocFlowID(),
				Replica:     source,
				Bits:        bits,
				EstimatedBw: math.Inf(1),
			})
		} else {
			out = append(out, s.commitSharded(best, bits))
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return out, nil
}

// Finished retires a flow this shard coordinated: its own sub-path and,
// via the peer links, any remote halves.
func (s *Shard) Finished(id flowserver.FlowID) {
	s.srv.FlowFinished(id)
	s.selMu.Lock()
	parts := s.coordinated[id]
	delete(s.coordinated, id)
	peers := s.peers
	s.selMu.Unlock()
	for _, g := range parts {
		if peers[g] != nil {
			_ = peers[g].FinishForeign(id) // best effort; counters reconcile
		}
	}
}

// CommitForeignLocal serves a remote coordinator's commit (the target
// half of ShardLink.CommitForeign). It must not take selMu — see the
// type comment.
func (s *Shard) CommitForeignLocal(id flowserver.FlowID, links topology.Path, bits, capBw float64) float64 {
	return s.srv.CommitForeign(id, links, bits, capBw)
}

// FinishLocal serves a remote coordinator's finish.
func (s *Shard) FinishLocal(id flowserver.FlowID) {
	s.srv.FlowFinished(id)
}

// BuildDigest snapshots the modeled load of every link this shard owns.
// It must not take selMu — see the type comment.
func (s *Shard) BuildDigest(now float64) *Digest {
	s.ownMu.Lock()
	s.seq++
	d := &Digest{Shard: s.idx, Seq: s.seq, Time: now}
	owner, idx := s.owner, s.idx
	s.ownMu.Unlock()
	s.srv.LinkLoads(func(link, flows int, sumBw float64) {
		if owner[s.linkPod[link]] != idx {
			return
		}
		d.Links = append(d.Links, int32(link))
		d.Loads = append(d.Loads, LinkLoad{Flows: int32(flows), SumBw: sumBw})
	})
	return d
}

// InstallDigests replaces the remote digest set (one slot per shard;
// nil entries keep the previous digest — a failed pull just ages the
// view) and rebuilds the dense scoring view.
func (s *Shard) InstallDigests(ds []*Digest) {
	s.selMu.Lock()
	defer s.selMu.Unlock()
	for g, d := range ds {
		if g == s.idx || d == nil {
			continue
		}
		if s.remote[g] == nil || d.Seq >= s.remote[g].Seq {
			s.remote[g] = d
		}
	}
	live := make([]*Digest, 0, len(s.remote))
	for g, d := range s.remote {
		if g != s.idx && d != nil {
			live = append(live, d)
		}
	}
	s.view = MergeDigests(s.view, s.topo.NumLinks(), live...)
	s.met.DigestRefreshes.Inc()
}

// RefreshDigests pulls every live peer's digest and installs the set.
// Pull failures leave the previous digest in place.
func (s *Shard) RefreshDigests() {
	s.selMu.Lock()
	peers := append([]ShardLink(nil), s.peers...)
	s.selMu.Unlock()
	ds := make([]*Digest, len(peers))
	for g, p := range peers {
		if g == s.idx || p == nil {
			continue
		}
		if d, err := p.Digest(); err == nil {
			ds[g] = d
		}
	}
	s.InstallDigests(ds)
}

// DigestAge returns the age (model seconds) of the digest held for
// shard g, or ok=false when none has been installed.
func (s *Shard) DigestAge(g int, now float64) (float64, bool) {
	s.selMu.Lock()
	defer s.selMu.Unlock()
	if g < 0 || g >= len(s.remote) || s.remote[g] == nil {
		return 0, false
	}
	return now - s.remote[g].Time, true
}
