package flowctl

import "testing"

func TestDirectoryRoundRobinAndLookup(t *testing.T) {
	d, err := NewDirectory(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 {
		t.Fatalf("fresh directory epoch = %d, want 1", d.Epoch())
	}
	wantOwner := []int{0, 1, 0, 1}
	for p, want := range wantOwner {
		g, _, epoch, ok := d.Lookup(p)
		if !ok || g != want || epoch != 1 {
			t.Errorf("Lookup(%d) = (%d, %d, %v), want (%d, 1, true)", p, g, epoch, ok, want)
		}
	}
	if _, _, _, ok := d.Lookup(4); ok {
		t.Error("Lookup of unknown pod succeeded")
	}
}

func TestDirectoryRejectsBadShapes(t *testing.T) {
	if _, err := NewDirectory(4, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewDirectory(2, 3); err == nil {
		t.Error("more shards than pods accepted")
	}
}

func TestDirectoryMarkDeadPromotesOnceAndBumpsEpoch(t *testing.T) {
	d, err := NewDirectory(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	epoch, changed := d.MarkDead(1)
	if !changed || epoch != 2 {
		t.Fatalf("MarkDead(1) = (%d, %v), want (2, true)", epoch, changed)
	}
	for _, p := range []int{1, 3} {
		g, _, e, ok := d.Lookup(p)
		if !ok || g != 0 || e != 2 {
			t.Errorf("after failover Lookup(%d) = (%d, %d, %v), want (0, 2, true)", p, g, e, ok)
		}
	}
	// Death is declared once: a second MarkDead changes nothing.
	if epoch, changed := d.MarkDead(1); changed || epoch != 2 {
		t.Errorf("second MarkDead(1) = (%d, %v), want (2, false)", epoch, changed)
	}
}

func TestDirectoryAllDeadLookupFails(t *testing.T) {
	d, err := NewDirectory(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.MarkDead(0)
	d.MarkDead(1)
	if _, _, _, ok := d.Lookup(0); ok {
		t.Error("Lookup succeeded with every shard dead")
	}
}

func TestDirectoryLeaseExpiryAndRevival(t *testing.T) {
	d, err := NewDirectory(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shards register with 5 s leases at t=0.
	for s := 0; s < 2; s++ {
		if _, err := d.Heartbeat(s, "addr", 0, 5); err != nil {
			t.Fatal(err)
		}
	}
	if changed := d.ExpireBefore(4); changed {
		t.Error("lease expired before its TTL")
	}
	// Shard 1 misses its renewal; shard 0 renews at t=4.
	if _, err := d.Heartbeat(0, "addr", 4, 5); err != nil {
		t.Fatal(err)
	}
	if changed := d.ExpireBefore(6); !changed {
		t.Error("lapsed lease not expired")
	}
	if d.Alive(1) {
		t.Error("shard 1 still alive after lease lapse")
	}
	if g, _, _, _ := d.Lookup(1); g != 0 {
		t.Errorf("pod 1 owner after expiry = %d, want 0", g)
	}
	epoch := d.Epoch()
	// Revival renews the lease but must not reclaim pods or move the
	// epoch — ownership changes only through death.
	if _, err := d.Heartbeat(1, "addr2", 7, 5); err != nil {
		t.Fatal(err)
	}
	if !d.Alive(1) {
		t.Error("heartbeat did not revive shard 1")
	}
	if g, _, _, _ := d.Lookup(1); g != 0 {
		t.Errorf("revival reclaimed pod 1 (owner %d)", g)
	}
	if d.Epoch() != epoch {
		t.Errorf("revival moved epoch %d -> %d", epoch, d.Epoch())
	}
}

func TestDirectoryHeartbeatUnknownShard(t *testing.T) {
	d, err := NewDirectory(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Heartbeat(7, "x", 0, 1); err == nil {
		t.Error("heartbeat from unknown shard accepted")
	}
}
