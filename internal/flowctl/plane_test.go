package flowctl

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// fakeClock is the injected model clock a test advances explicitly.
type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

// statsBatch adapts a prebuilt poll cycle to flowserver.StatsSource.
type statsBatch []flowserver.FlowStat

func (b statsBatch) FlowStats() []flowserver.FlowStat { return b }

// controlPlane is the surface shared by flowserver.Server and Plane,
// letting the conformance driver run the same op stream against both.
type controlPlane interface {
	SelectReplicaAndPath(flowserver.Request) ([]flowserver.Assignment, error)
	SelectPath(client, replica topology.NodeID, bits float64) (flowserver.Assignment, error)
	SelectWritePipeline(source topology.NodeID, targets []topology.NodeID, bits float64) ([]flowserver.Assignment, error)
	FlowFinished(flowserver.FlowID)
	PollFrom(now float64, src flowserver.StatsSource)
	EstimatedBW(flowserver.FlowID) (float64, bool)
}

// op is one step of a deterministic conformance workload.
type op struct {
	kind      int // 0 read, 1 write, 2 finish, 3 poll
	time      float64
	client    topology.NodeID
	replicas  []topology.NodeID
	bits      float64
	finishIdx int
}

// genOps builds a deterministic op stream. podLocal restricts every
// transfer's endpoints to one pod, the workload class whose selections
// must be invariant to the shard count.
func genOps(seed int64, topo *topology.Topology, n int, podLocal bool) []op {
	rng := rand.New(rand.NewSource(seed))
	cfg := topo.Config()
	hostIn := func(pod int) topology.NodeID {
		return topo.HostAt(pod, rng.Intn(cfg.RacksPerPod), rng.Intn(cfg.HostsPerRack))
	}
	anyHost := func(pod int) topology.NodeID {
		if podLocal {
			return hostIn(pod)
		}
		return hostIn(rng.Intn(cfg.Pods))
	}
	now := 0.0
	var ops []op
	issued := 0
	for i := 0; i < n; i++ {
		now += rng.Float64() * 0.2
		switch k := rng.Intn(10); {
		case k < 5: // read
			pod := rng.Intn(cfg.Pods)
			client := hostIn(pod)
			reps := []topology.NodeID{anyHost(pod), anyHost(pod), anyHost(pod)}
			ops = append(ops, op{kind: 0, time: now, client: client, replicas: reps,
				bits: float64(1+rng.Intn(8)) * 1e8})
			issued++
		case k < 7: // write pipeline
			pod := rng.Intn(cfg.Pods)
			src := hostIn(pod)
			tgts := []topology.NodeID{anyHost(pod), anyHost(pod)}
			ops = append(ops, op{kind: 1, time: now, client: src, replicas: tgts,
				bits: float64(1+rng.Intn(8)) * 1e8})
			issued++
		case k < 9 && issued > 0: // finish a previously issued job
			ops = append(ops, op{kind: 2, time: now, finishIdx: rng.Intn(issued)})
		default: // stats poll
			ops = append(ops, op{kind: 3, time: now})
		}
	}
	return ops
}

// applyOps drives one op stream against a control plane, returning one
// comparison record per select call. withIDs includes flow ids (for
// byte-identity of the single-shard delegation); without, records
// compare across shard counts, whose id sequences legitimately differ.
func applyOps(t *testing.T, cp controlPlane, clock *fakeClock, ops []op, withIDs bool) []string {
	t.Helper()
	type job struct {
		ids      []flowserver.FlowID
		bits     float64
		progress float64
		done     bool
	}
	var jobs []*job
	var out []string
	record := func(as []flowserver.Assignment) {
		j := &job{}
		for _, a := range as {
			key := fmt.Sprintf("r=%d path=%v bits=%x bw=%x", a.Replica, a.Path, a.Bits, a.EstimatedBw)
			if withIDs {
				key = fmt.Sprintf("id=%d %s", a.FlowID, key)
			}
			out = append(out, key)
			if !a.Local() {
				j.ids = append(j.ids, a.FlowID)
				j.bits = a.Bits
			}
		}
		jobs = append(jobs, j)
	}
	for _, o := range ops {
		clock.t = o.time
		switch o.kind {
		case 0:
			as, err := cp.SelectReplicaAndPath(flowserver.Request{
				Client: o.client, Replicas: o.replicas, Bits: o.bits})
			if err != nil {
				t.Fatalf("select: %v", err)
			}
			record(as)
		case 1:
			as, err := cp.SelectWritePipeline(o.client, o.replicas, o.bits)
			if err != nil {
				t.Fatalf("select write: %v", err)
			}
			record(as)
		case 2:
			j := jobs[o.finishIdx]
			if !j.done {
				j.done = true
				for _, id := range j.ids {
					cp.FlowFinished(id)
				}
			}
		case 3:
			var batch statsBatch
			for _, j := range jobs {
				if j.done {
					continue
				}
				j.progress += j.bits * 0.07
				if j.progress > j.bits {
					j.progress = j.bits
				}
				for _, id := range j.ids {
					batch = append(batch, flowserver.FlowStat{ID: id, TransferredBits: j.progress})
				}
			}
			cp.PollFrom(o.time, batch)
		}
	}
	return out
}

// TestSingleShardDelegatesByteIdentical pins the Plane's Shards == 1
// contract: every call delegates verbatim to one flowserver.Server, so
// the full op stream — ids included — matches a bare server exactly.
func TestSingleShardDelegatesByteIdentical(t *testing.T) {
	topo := testTopo(t)
	ops := genOps(11, topo, 600, false)

	clockA := &fakeClock{}
	srv := flowserver.New(topo, flowserver.Options{MultiReplica: true, Now: clockA.Now})
	got := applyOps(t, srv, clockA, ops, true)

	clockB := &fakeClock{}
	plane, err := NewPlane(topo, Options{Shards: 1, MultiReplica: true, Now: clockB.Now})
	if err != nil {
		t.Fatal(err)
	}
	want := applyOps(t, plane, clockB, ops, true)

	if !reflect.DeepEqual(got, want) {
		for i := range got {
			if i < len(want) && got[i] != want[i] {
				t.Fatalf("first divergence at record %d:\nserver: %s\nplane:  %s", i, got[i], want[i])
			}
		}
		t.Fatalf("record counts differ: server %d, plane %d", len(got), len(want))
	}
}

// TestPodLocalShardInvariance pins the partition's core guarantee: a
// workload whose transfers stay inside single pods takes identical
// decisions (replica, path, estimated share — ids aside) at every shard
// count, because every candidate path is wholly owned by its
// coordinator and scored by the exact local model.
func TestPodLocalShardInvariance(t *testing.T) {
	topo := testTopo(t)
	ops := genOps(23, topo, 600, true)
	var base []string
	for _, shards := range []int{1, 2, 4} {
		clock := &fakeClock{}
		plane, err := NewPlane(topo, Options{Shards: shards, Now: clock.Now})
		if err != nil {
			t.Fatal(err)
		}
		got := applyOps(t, plane, clock, ops, false)
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(base, got) {
			for i := range base {
				if i < len(got) && base[i] != got[i] {
					t.Fatalf("shards=%d diverges at record %d:\n1 shard: %s\n%d shards: %s",
						shards, i, base[i], shards, got[i])
				}
			}
			t.Fatalf("shards=%d record count %d, 1 shard %d", shards, len(got), len(base))
		}
	}
}

// TestCrossPodDeterminism pins run-to-run determinism of the sharded
// path on a workload that does exercise digests and foreign commits.
func TestCrossPodDeterminism(t *testing.T) {
	topo := testTopo(t)
	ops := genOps(37, topo, 600, false)
	var base []string
	for run := 0; run < 2; run++ {
		clock := &fakeClock{}
		plane, err := NewPlane(topo, Options{Shards: 2, Now: clock.Now})
		if err != nil {
			t.Fatal(err)
		}
		got := applyOps(t, plane, clock, ops, true)
		if plane.Metrics().CrossShard.Value() == 0 {
			t.Fatal("workload never crossed shards; test is vacuous")
		}
		if run == 0 {
			base = got
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatal("identical op stream produced different selections across runs")
		}
	}
}

// TestKillShardFailover: killing a shard promotes its pods (one epoch
// bump), selections for those pods route to the successor, and retiring
// pre-kill flows stays safe.
func TestKillShardFailover(t *testing.T) {
	topo := testTopo(t)
	clock := &fakeClock{}
	plane, err := NewPlane(topo, Options{Shards: 2, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	// Pod 1 is owned by shard 1. A cross-pod read from a pod-1 client.
	client := topo.HostAt(1, 0, 0)
	rep := topo.HostAt(2, 1, 1)
	as, err := plane.SelectReplicaAndPath(flowserver.Request{
		Client: client, Replicas: []topology.NodeID{rep}, Bits: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if got := plane.Shard(1); !got.OwnsPod(1) {
		t.Fatal("precondition: shard 1 should own pod 1")
	}

	epochBefore := plane.Directory().Epoch()
	if err := plane.KillShard(1); err != nil {
		t.Fatal(err)
	}
	if got := plane.Directory().Epoch(); got != epochBefore+1 {
		t.Errorf("epoch after kill = %d, want %d", got, epochBefore+1)
	}
	g, _, _, ok := plane.Directory().Lookup(1)
	if !ok || g != 0 {
		t.Fatalf("pod 1 after kill routes to shard %d (ok=%v), want 0", g, ok)
	}
	// New selection for the promoted pod succeeds via the successor.
	as2, err := plane.SelectReplicaAndPath(flowserver.Request{
		Client: client, Replicas: []topology.NodeID{rep}, Bits: 1e8})
	if err != nil {
		t.Fatalf("post-failover select: %v", err)
	}
	if as2[0].FlowID%2 != 1 {
		t.Errorf("post-failover flow id %d not from shard 0's sequence", as2[0].FlowID)
	}
	// Retiring the pre-kill flow (coordinated by the dead shard) is safe.
	plane.FlowFinished(as[0].FlowID)
	if got := plane.Metrics().Failovers.Value(); got != 1 {
		t.Errorf("failovers counter = %d, want 1", got)
	}
	// Killing the last shard leaves the pods orphaned: selects fail.
	if err := plane.KillShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := plane.SelectReplicaAndPath(flowserver.Request{
		Client: client, Replicas: []topology.NodeID{rep}, Bits: 1e8}); err == nil {
		t.Error("select succeeded with every shard dead")
	}
}

// TestDigestStalenessBound pins the freshness contract: digests refresh
// on every poll, so the age a coordinator sees never exceeds the time
// since the last poll.
func TestDigestStalenessBound(t *testing.T) {
	topo := testTopo(t)
	clock := &fakeClock{}
	plane, err := NewPlane(topo, Options{Shards: 2, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	// Commit a cross-pod flow so shard 1 has digest content.
	client := topo.HostAt(0, 0, 0)
	rep := topo.HostAt(1, 0, 0)
	if _, err := plane.SelectReplicaAndPath(flowserver.Request{
		Client: client, Replicas: []topology.NodeID{rep}, Bits: 1e9}); err != nil {
		t.Fatal(err)
	}
	if _, ok := plane.Shard(0).DigestAge(1, clock.t); ok {
		t.Fatal("digest present before any poll")
	}
	const interval = 1.0
	for tick := 1; tick <= 5; tick++ {
		clock.t = float64(tick) * interval
		plane.PollFrom(clock.t, statsBatch(nil))
		age, ok := plane.Shard(0).DigestAge(1, clock.t)
		if !ok || age != 0 {
			t.Fatalf("tick %d: age right after poll = (%g, %v), want (0, true)", tick, age, ok)
		}
		// Mid-interval the age is the time since the poll.
		clock.t += 0.7 * interval
		age, _ = plane.Shard(0).DigestAge(1, clock.t)
		if diff := age - 0.7*interval; diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("tick %d: mid-interval age = %g, want %g", tick, age, 0.7*interval)
		}
		if age > interval {
			t.Fatalf("tick %d: staleness bound violated: %g > %g", tick, age, interval)
		}
	}
	// The digest actually carries the remote load: shard 1's links show
	// the committed flow.
	d := plane.Shard(1).BuildDigest(clock.t)
	if len(d.Links) == 0 {
		t.Error("shard 1 digest empty despite a committed cross-pod flow")
	}
}

// TestNewPlaneValidation: the constructor rejects impossible shapes.
func TestNewPlaneValidation(t *testing.T) {
	topo := testTopo(t)
	if _, err := NewPlane(topo, Options{Shards: 0}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewPlane(topo, Options{Shards: 2, MultiReplica: true}); err == nil {
		t.Error("multi-replica with 2 shards accepted")
	}
	if _, err := NewPlane(topo, Options{Shards: 8}); err == nil {
		t.Error("more shards than pods accepted")
	}
	plane, err := NewPlane(topo, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plane.KillShard(0); err == nil {
		t.Error("killed the only shard")
	}
}

// TestPlaneConcurrentUse exercises the sharded plane from concurrent
// goroutines (the RPC form serves shards concurrently); the -race run
// in CI is the assertion.
func TestPlaneConcurrentUse(t *testing.T) {
	topo := testTopo(t)
	clock := &fakeClock{}
	plane, err := NewPlane(topo, Options{Shards: 4, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := topo.HostAt(w, 0, 0)
			rep := topo.HostAt((w+1)%4, 1, 1)
			for i := 0; i < 50; i++ {
				as, err := plane.SelectReplicaAndPath(flowserver.Request{
					Client: client, Replicas: []topology.NodeID{rep}, Bits: 1e8})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				plane.FlowFinished(as[0].FlowID)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			plane.PollFrom(clock.Now(), statsBatch(nil))
		}
	}()
	wg.Wait()
	if n := plane.NumFlows(); n != 0 {
		t.Errorf("%d flows leaked", n)
	}
}
