package flowctl

import (
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/testutil"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// BenchmarkSelectSharded measures one read selection against a plane
// already holding ~1k live flows, at 1, 2 and 4 shards. The 1-shard
// case is pure delegation to the monolithic server (the baseline); at
// N >= 2 the measured work adds pod routing, digest scoring of the
// remote sub-path, and the foreign commit to the owning shard (direct
// in-process links here, so the delta is the partitioning machinery
// itself, not wire latency).
func BenchmarkSelectSharded(b *testing.B) {
	for _, bc := range []struct {
		name   string
		shards int
	}{{"1", 1}, {"2", 2}, {"4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			topo, err := topology.New(topology.PaperTestbed(8))
			if err != nil {
				b.Fatal(err)
			}
			p, err := NewPlane(topo, Options{Shards: bc.shards})
			if err != nil {
				b.Fatal(err)
			}
			r := testutil.Rand(b, 7)
			hosts := topo.Hosts()
			for i := 0; i < 1000; i++ {
				src := hosts[r.Intn(len(hosts))]
				dst := hosts[r.Intn(len(hosts))]
				if src == dst {
					i--
					continue
				}
				if _, err := p.SelectPath(src, dst, 1e6*(1+r.Float64()*2000)); err != nil {
					b.Fatal(err)
				}
			}
			p.PollFrom(1.0, staticStats{})
			// Cross-pod on the paper testbed: client in pod 0, replicas
			// spread over pods 0, 1 and 2, so N >= 2 planes always score
			// at least one remote sub-path from digests.
			client := topo.HostAt(0, 0, 0)
			replicas := []topology.NodeID{
				topo.HostAt(0, 1, 0), topo.HostAt(1, 0, 0), topo.HostAt(2, 2, 3),
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				as, err := p.SelectReplicaAndPath(flowserver.Request{
					Client: client, Replicas: replicas, Bits: 256 * 8e6,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, a := range as {
					p.FlowFinished(a.FlowID)
				}
			}
		})
	}
}

// staticStats is an empty poll source: PollFrom still rebuilds and
// installs every shard's digest, which is what the benchmarks need.
type staticStats struct{}

func (staticStats) FlowStats() []flowserver.FlowStat { return nil }

// BenchmarkDigestMerge measures rebuilding the dense per-link remote
// view from three peer digests (the 4-shard case) with 256 loaded links
// each — the per-poll cost every shard pays to keep its cross-pod
// scoring fresh.
func BenchmarkDigestMerge(b *testing.B) {
	const numLinks = 2048
	r := testutil.Rand(b, 11)
	ds := make([]*Digest, 3)
	for g := range ds {
		d := &Digest{Shard: g + 1, Seq: 1, Time: 1.0}
		for i := 0; i < 256; i++ {
			d.Links = append(d.Links, int32(r.Intn(numLinks)))
			d.Loads = append(d.Loads, LinkLoad{
				Flows: int32(1 + r.Intn(8)),
				SumBw: 1e6 * (1 + r.Float64()*999),
			})
		}
		ds[g] = d
	}
	dst := make([]LinkLoad, numLinks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = MergeDigests(dst, numLinks, ds...)
	}
}
