package flowctl

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// The deployed control plane splits into two wire services. The
// directory (fd.*) is the tiny replicated map clients, dataservers and
// shards resolve pod ownership against; shards renew epoch-numbered
// leases on it and callers cache its answers keyed by epoch. The
// shard-to-shard channel (ctl.*) carries foreign commits, finishes and
// digest pulls between shard processes — the RPC form of ShardLink.
const (
	MethodLookup    = "fd.Lookup"
	MethodHeartbeat = "fd.Heartbeat"

	MethodCommitForeign = "ctl.Commit"
	MethodFinishForeign = "ctl.Finish"
	MethodPullDigest    = "ctl.Digest"
)

// LookupArgs asks which shard owns a pod.
type LookupArgs struct {
	Pod int `json:"pod"`
}

// LookupReply names the owning shard, the address it last registered,
// and the directory epoch the answer is valid under. Callers caching
// the route must drop it when a later Lookup returns a higher epoch —
// ownership only changes with an epoch bump.
type LookupReply struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	Epoch int64  `json:"epoch"`
}

// HeartbeatArgs renews one shard's lease and (re)registers its
// selection RPC address.
type HeartbeatArgs struct {
	Shard      int     `json:"shard"`
	Addr       string  `json:"addr"`
	TTLSeconds float64 `json:"ttlSeconds"`
}

// HeartbeatReply returns the current directory epoch so a reviving
// shard learns it was failed over while away.
type HeartbeatReply struct {
	Epoch int64 `json:"epoch"`
}

// RegisterDirectoryRPC serves a Directory. Lookups lapse overdue leases
// first, so a silent shard is failed over by the next resolution
// touching the directory rather than by a background sweeper.
func RegisterDirectoryRPC(srv *wire.Server, d *Directory, now func() float64) error {
	lookup := func(_ context.Context, params json.RawMessage) (any, error) {
		var a LookupArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		d.ExpireBefore(now())
		shard, addr, epoch, ok := d.Lookup(a.Pod)
		if !ok {
			return nil, fmt.Errorf("flowctl: no live shard owns pod %d", a.Pod)
		}
		return LookupReply{Shard: shard, Addr: addr, Epoch: epoch}, nil
	}
	heartbeat := func(_ context.Context, params json.RawMessage) (any, error) {
		var a HeartbeatArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		d.ExpireBefore(now())
		epoch, err := d.Heartbeat(a.Shard, a.Addr, now(), a.TTLSeconds)
		if err != nil {
			return nil, err
		}
		return HeartbeatReply{Epoch: epoch}, nil
	}
	if err := srv.Register(MethodLookup, lookup); err != nil {
		return err
	}
	return srv.Register(MethodHeartbeat, heartbeat)
}

// DirectoryClient is the typed directory stub over an rpc session.
type DirectoryClient struct {
	c rpc.Caller
}

// NewDirectoryClient wraps a control-plane session to the directory.
func NewDirectoryClient(c rpc.Caller) *DirectoryClient { return &DirectoryClient{c: c} }

// Lookup resolves the shard owning a pod.
func (c *DirectoryClient) Lookup(ctx context.Context, pod int) (LookupReply, error) {
	var out LookupReply
	err := c.c.Call(ctx, MethodLookup, LookupArgs{Pod: pod}, &out)
	return out, err
}

// Heartbeat renews a shard's lease.
func (c *DirectoryClient) Heartbeat(ctx context.Context, shard int, addr string, ttlSeconds float64) (int64, error) {
	var out HeartbeatReply
	err := c.c.Call(ctx, MethodHeartbeat, HeartbeatArgs{Shard: shard, Addr: addr, TTLSeconds: ttlSeconds}, &out)
	return out.Epoch, err
}

// CommitForeignArgs registers the receiving shard's sub-path of a flow
// the calling shard coordinated.
type CommitForeignArgs struct {
	FlowID flowserver.FlowID `json:"flowId"`
	Links  []int32           `json:"links"`
	Bits   float64           `json:"bits"`
	CapBw  float64           `json:"capBw"`
}

// CommitForeignReply returns the share the receiving model granted.
type CommitForeignReply struct {
	EstimatedBw float64 `json:"estimatedBw"`
}

// FinishForeignArgs retires a foreign sub-path.
type FinishForeignArgs struct {
	FlowID flowserver.FlowID `json:"flowId"`
}

func wirePath(links topology.Path) []int32 {
	out := make([]int32, len(links))
	for i, l := range links {
		out[i] = int32(l)
	}
	return out
}

func pathFromWire(links []int32) topology.Path {
	out := make(topology.Path, len(links))
	for i, l := range links {
		out[i] = topology.LinkID(l)
	}
	return out
}

// RegisterShardRPC serves one shard's ctl.* channel (foreign commits,
// finishes, digest pulls) plus the standard fs.* selection surface for
// the pods it owns (via flowserver.RegisterRPC — the Shard satisfies
// flowserver.Service through the aliases below).
func RegisterShardRPC(srv *wire.Server, s *Shard, now func() float64) error {
	commit := func(_ context.Context, params json.RawMessage) (any, error) {
		var a CommitForeignArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		bw := s.CommitForeignLocal(a.FlowID, pathFromWire(a.Links), a.Bits, a.CapBw)
		return CommitForeignReply{EstimatedBw: bw}, nil
	}
	finish := func(_ context.Context, params json.RawMessage) (any, error) {
		var a FinishForeignArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		s.FinishLocal(a.FlowID)
		return struct{}{}, nil
	}
	digest := func(_ context.Context, _ json.RawMessage) (any, error) {
		return s.BuildDigest(now()), nil
	}
	if err := srv.Register(MethodCommitForeign, commit); err != nil {
		return err
	}
	if err := srv.Register(MethodFinishForeign, finish); err != nil {
		return err
	}
	return srv.Register(MethodPullDigest, digest)
}

// RPCShardLink is the deployed ShardLink: ctl.* calls over a pooled
// control-plane session to a peer shard.
type RPCShardLink struct {
	c rpc.Caller
	// Timeout bounds each peer call; rpc.Caller's default when zero.
	ctx func() (context.Context, context.CancelFunc)
}

// NewRPCShardLink wraps a session to a peer shard. mkCtx supplies the
// per-call context (deadline policy belongs to the deployment); nil
// means context.Background.
func NewRPCShardLink(c rpc.Caller, mkCtx func() (context.Context, context.CancelFunc)) *RPCShardLink {
	if mkCtx == nil {
		mkCtx = func() (context.Context, context.CancelFunc) {
			return context.Background(), func() {}
		}
	}
	return &RPCShardLink{c: c, ctx: mkCtx}
}

// CommitForeign implements ShardLink.
func (l *RPCShardLink) CommitForeign(id flowserver.FlowID, links topology.Path, bits, capBw float64) (float64, error) {
	ctx, cancel := l.ctx()
	defer cancel()
	var out CommitForeignReply
	err := l.c.Call(ctx, MethodCommitForeign, CommitForeignArgs{
		FlowID: id, Links: wirePath(links), Bits: bits, CapBw: capBw,
	}, &out)
	return out.EstimatedBw, err
}

// FinishForeign implements ShardLink.
func (l *RPCShardLink) FinishForeign(id flowserver.FlowID) error {
	ctx, cancel := l.ctx()
	defer cancel()
	var out struct{}
	return l.c.Call(ctx, MethodFinishForeign, FinishForeignArgs{FlowID: id}, &out)
}

// Digest implements ShardLink.
func (l *RPCShardLink) Digest() (*Digest, error) {
	ctx, cancel := l.ctx()
	defer cancel()
	var out Digest
	if err := l.c.Call(ctx, MethodPullDigest, struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// flowserver.Service aliases: a Shard serves the same fs.* RPC surface
// as a standalone Flowserver for requesters in the pods it owns.

// SelectReplicaAndPath implements flowserver.Service.
func (s *Shard) SelectReplicaAndPath(req flowserver.Request) ([]flowserver.Assignment, error) {
	return s.Select(req)
}

// SelectWritePipeline implements flowserver.Service.
func (s *Shard) SelectWritePipeline(source topology.NodeID, targets []topology.NodeID, bits float64) ([]flowserver.Assignment, error) {
	return s.SelectWrite(source, targets, bits)
}

// FlowFinished implements flowserver.Service.
func (s *Shard) FlowFinished(id flowserver.FlowID) {
	s.Finished(id)
}
