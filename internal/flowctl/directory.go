package flowctl

import (
	"fmt"
	"math"
	"sync"
)

// Directory is the pod→shard ownership map with epoch-numbered leases.
// It is the single authority clients, dataservers and shards resolve
// routing against: Lookup answers "which shard owns this pod right now,
// and under which epoch". Every ownership change — a shard declared
// dead and its pods promoted — bumps the epoch exactly once, so a
// cached route is valid if and only if its epoch still matches.
//
// Liveness is lease-based: shards register and renew with Heartbeat,
// and ExpireBefore declares shards whose lease lapsed dead (the
// repair.Monitor pattern: death is declared once, by the party that
// owns the clock). Tests and the in-process plane can also declare
// death explicitly with MarkDead. A dead shard's pods all promote to
// one successor — the next live shard scanning upward — keeping the
// reassignment deterministic and the move count minimal.
//
// The deployed form serves this state over RPC (see rpc.go) from the
// shard-0 process; replicating the directory itself via paxos is future
// work recorded in DESIGN.md §15 — its state is a few dozen bytes and
// rebuilds from shard heartbeats, so a restart loses only routing
// freshness, never correctness.
type Directory struct {
	mu     sync.Mutex
	owner  []int // pod → shard
	alive  []bool
	addr   []string  // shard → registered RPC address ("" in-process)
	expiry []float64 // shard → lease expiry; +Inf until first Heartbeat
	epoch  int64
}

// NewDirectory creates a directory for pods pods round-robin assigned
// to shards shards, all initially live with unexpiring leases (the
// in-process plane never heartbeats).
func NewDirectory(pods, shards int) (*Directory, error) {
	if shards < 1 {
		return nil, fmt.Errorf("flowctl: need at least 1 shard, got %d", shards)
	}
	if pods < shards {
		return nil, fmt.Errorf("flowctl: %d shards for %d pods; at most one shard per pod", shards, pods)
	}
	d := &Directory{
		owner:  make([]int, pods),
		alive:  make([]bool, shards),
		addr:   make([]string, shards),
		expiry: make([]float64, shards),
		epoch:  1,
	}
	for p := range d.owner {
		d.owner[p] = p % shards
	}
	for s := range d.alive {
		d.alive[s] = true
		d.expiry[s] = math.Inf(1)
	}
	return d, nil
}

// Pods returns the number of pods the directory routes.
func (d *Directory) Pods() int { return len(d.owner) }

// Shards returns the number of shard slots.
func (d *Directory) Shards() int { return len(d.alive) }

// Epoch returns the current lease epoch.
func (d *Directory) Epoch() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Lookup resolves the shard owning a pod. ok is false for an unknown
// pod or when the owning shard (and every possible successor) is dead.
func (d *Directory) Lookup(pod int) (shard int, addr string, epoch int64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if pod < 0 || pod >= len(d.owner) {
		return 0, "", d.epoch, false
	}
	s := d.owner[pod]
	if !d.alive[s] {
		return 0, "", d.epoch, false
	}
	return s, d.addr[s], d.epoch, true
}

// Owners returns a copy of the pod→shard map and the epoch it is valid
// under.
func (d *Directory) Owners() ([]int, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), d.owner...), d.epoch
}

// Alive reports whether a shard currently holds a live lease.
func (d *Directory) Alive(shard int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return shard >= 0 && shard < len(d.alive) && d.alive[shard]
}

// Heartbeat registers or renews shard's lease until now+ttl, recording
// the address it serves on. Renewing is cheap and does not touch the
// epoch. A heartbeat from a shard previously declared dead revives its
// lease but does NOT reclaim its promoted pods — ownership only ever
// changes through death, keeping epochs monotone and rebalancing a
// deliberate operation rather than a flap side effect.
func (d *Directory) Heartbeat(shard int, addr string, now, ttl float64) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if shard < 0 || shard >= len(d.alive) {
		return d.epoch, fmt.Errorf("flowctl: heartbeat from unknown shard %d", shard)
	}
	d.alive[shard] = true
	d.addr[shard] = addr
	d.expiry[shard] = now + ttl
	return d.epoch, nil
}

// ExpireBefore declares every shard whose lease expired before now
// dead, promoting its pods. It returns true when any ownership changed.
func (d *Directory) ExpireBefore(now float64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	changed := false
	for s := range d.alive {
		if d.alive[s] && d.expiry[s] < now {
			if d.markDeadLocked(s) {
				changed = true
			}
		}
	}
	return changed
}

// MarkDead declares a shard dead and promotes its pods to the next live
// shard (scanning upward, wrapping). The epoch is bumped once when any
// pod moved. It returns the post-call epoch and whether ownership
// changed; declaring an already-dead shard dead again changes nothing.
func (d *Directory) MarkDead(shard int) (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if shard < 0 || shard >= len(d.alive) || !d.alive[shard] {
		return d.epoch, false
	}
	changed := d.markDeadLocked(shard)
	return d.epoch, changed
}

// markDeadLocked does the promotion. Caller must hold d.mu.
func (d *Directory) markDeadLocked(shard int) bool {
	d.alive[shard] = false
	succ := -1
	n := len(d.alive)
	for i := 1; i < n; i++ {
		if c := (shard + i) % n; d.alive[c] {
			succ = c
			break
		}
	}
	if succ < 0 {
		// No live successor: leave ownership as-is; Lookup answers
		// not-ok until a shard heartbeats back.
		return false
	}
	moved := false
	for p, s := range d.owner {
		if s == shard {
			d.owner[p] = succ
			moved = true
		}
	}
	if moved {
		d.epoch++
	}
	return moved
}
