package flowctl

import (
	"fmt"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// Options parameterize a Plane.
type Options struct {
	// Shards is the number of controller shards (>= 1).
	Shards int
	// MultiReplica enables §4.3 split reads. Single-shard only: the
	// split's trial-commit/rollback would have to snapshot two shards
	// atomically, so NewPlane rejects it with Shards > 1.
	MultiReplica bool
	// DisableImpactTerm / DisableFreeze / Now / MaxPollSkew pass
	// through to every shard's embedded flowserver.
	DisableImpactTerm bool
	DisableFreeze     bool
	Now               func() float64
	MaxPollSkew       float64
	// Metrics receives instrumentation. With one shard the embedded
	// flowserver registers its full legacy "flowserver." surface; with
	// more, the plane registers the "flowctl." surface instead (the
	// per-shard flowserver counters would collide by name and are
	// aggregated through Counters()).
	Metrics *obs.Registry
}

// Plane is the in-process sharded control plane: N shards over one
// topology, wired to each other with direct calls, plus the directory.
// It exposes the same selection surface as a single flowserver.Server,
// so the experiment driver runs against either interchangeably.
//
// With Shards == 1 every method delegates verbatim to one embedded
// flowserver.Server — no id translation, no digests, no directory hops
// — which is how the figure goldens stay byte-identical through the
// plane (the CI golden job pins this).
//
// All coordination state is deterministic: selections are a pure
// function of the call sequence, digests refresh in shard-index order
// on every PollFrom, and flow ids are arithmetic in (shard, sequence).
type Plane struct {
	topo   *topology.Topology
	opts   Options
	single *flowserver.Server // non-nil iff Shards == 1
	dir    *Directory
	shards []*Shard
	met    *Metrics

	mu     sync.Mutex
	killed []bool
}

// planeLink wires shard-to-shard calls directly, refusing calls to
// killed shards so a dead peer looks unreachable, not absent.
type planeLink struct {
	p      *Plane
	target int
}

func (l planeLink) CommitForeign(id flowserver.FlowID, links topology.Path, bits, capBw float64) (float64, error) {
	if l.p.isKilled(l.target) {
		return 0, fmt.Errorf("flowctl: shard %d is down", l.target)
	}
	return l.p.shards[l.target].CommitForeignLocal(id, links, bits, capBw), nil
}

func (l planeLink) FinishForeign(id flowserver.FlowID) error {
	if l.p.isKilled(l.target) {
		return fmt.Errorf("flowctl: shard %d is down", l.target)
	}
	l.p.shards[l.target].FinishLocal(id)
	return nil
}

func (l planeLink) Digest() (*Digest, error) {
	if l.p.isKilled(l.target) {
		return nil, fmt.Errorf("flowctl: shard %d is down", l.target)
	}
	return l.p.shards[l.target].BuildDigest(l.p.now()), nil
}

// NewPlane builds the control plane. Shards must be in [1, pods].
func NewPlane(topo *topology.Topology, opts Options) (*Plane, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("flowctl: need at least 1 shard, got %d", opts.Shards)
	}
	if opts.MultiReplica && opts.Shards > 1 {
		return nil, fmt.Errorf("flowctl: multi-replica reads require a single shard")
	}
	p := &Plane{topo: topo, opts: opts, met: NewMetrics()}
	if opts.Shards == 1 {
		p.single = flowserver.New(topo, flowserver.Options{
			MultiReplica:      opts.MultiReplica,
			DisableImpactTerm: opts.DisableImpactTerm,
			DisableFreeze:     opts.DisableFreeze,
			Now:               opts.Now,
			MaxPollSkew:       opts.MaxPollSkew,
			Metrics:           opts.Metrics,
		})
		return p, nil
	}
	dir, err := NewDirectory(topo.Config().Pods, opts.Shards)
	if err != nil {
		return nil, err
	}
	p.dir = dir
	if opts.Metrics != nil {
		p.met.Register(opts.Metrics)
	}
	p.met.setEpoch(dir.Epoch())
	owner, epoch := dir.Owners()
	p.shards = make([]*Shard, opts.Shards)
	p.killed = make([]bool, opts.Shards)
	for k := range p.shards {
		s, err := NewShard(topo, ShardConfig{
			Index:             k,
			Shards:            opts.Shards,
			Owner:             owner,
			Epoch:             epoch,
			DisableImpactTerm: opts.DisableImpactTerm,
			DisableFreeze:     opts.DisableFreeze,
			Now:               opts.Now,
			MaxPollSkew:       opts.MaxPollSkew,
			Metrics:           p.met,
		})
		if err != nil {
			return nil, err
		}
		p.shards[k] = s
	}
	for k, s := range p.shards {
		peers := make([]ShardLink, opts.Shards)
		for g := range peers {
			if g != k {
				peers[g] = planeLink{p: p, target: g}
			}
		}
		s.SetPeers(peers)
	}
	return p, nil
}

// NumShards returns the configured shard count.
func (p *Plane) NumShards() int {
	if p.single != nil {
		return 1
	}
	return len(p.shards)
}

// Directory exposes the plane's directory (nil with one shard).
func (p *Plane) Directory() *Directory { return p.dir }

// Shard returns shard k (nil with one shard).
func (p *Plane) Shard(k int) *Shard {
	if p.single != nil || k < 0 || k >= len(p.shards) {
		return nil
	}
	return p.shards[k]
}

// Single returns the embedded server in single-shard mode, else nil.
func (p *Plane) Single() *flowserver.Server { return p.single }

func (p *Plane) now() float64 {
	if p.opts.Now != nil {
		return p.opts.Now()
	}
	return 0
}

func (p *Plane) isKilled(k int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed[k]
}

// coordinatorFor resolves the shard coordinating selections for a
// requester host via the directory.
func (p *Plane) coordinatorFor(host topology.NodeID) (*Shard, error) {
	pod := p.topo.Node(host).Pod
	g, _, _, ok := p.dir.Lookup(pod)
	if !ok || p.isKilled(g) {
		return nil, fmt.Errorf("flowctl: no live shard owns pod %d", pod)
	}
	return p.shards[g], nil
}

// SelectReplicaAndPath routes the read selection to the shard owning
// the client's pod.
func (p *Plane) SelectReplicaAndPath(req flowserver.Request) ([]flowserver.Assignment, error) {
	if p.single != nil {
		return p.single.SelectReplicaAndPath(req)
	}
	s, err := p.coordinatorFor(req.Client)
	if err != nil {
		return nil, err
	}
	return s.Select(req)
}

// SelectPath routes the path-only selection to the shard owning the
// client's pod.
func (p *Plane) SelectPath(client, replica topology.NodeID, bits float64) (flowserver.Assignment, error) {
	if p.single != nil {
		return p.single.SelectPath(client, replica, bits)
	}
	s, err := p.coordinatorFor(client)
	if err != nil {
		return flowserver.Assignment{}, err
	}
	return s.SelectPath(client, replica, bits)
}

// SelectWritePipeline routes the replication fan-out to the shard
// owning the source's pod.
func (p *Plane) SelectWritePipeline(source topology.NodeID, targets []topology.NodeID, bits float64) ([]flowserver.Assignment, error) {
	if p.single != nil {
		return p.single.SelectWritePipeline(source, targets, bits)
	}
	s, err := p.coordinatorFor(source)
	if err != nil {
		return nil, err
	}
	return s.SelectWrite(source, targets, bits)
}

// coordinatorOf recovers the coordinating shard from a flow id: shard k
// assigns ids ≡ k+1 (mod N).
func (p *Plane) coordinatorOf(id flowserver.FlowID) *Shard {
	n := flowserver.FlowID(len(p.shards))
	k := (id - 1) % n
	if k < 0 {
		k += n
	}
	return p.shards[k]
}

// FlowFinished retires a flow everywhere it was committed. Routing is
// id arithmetic, so it works even for flows whose coordinator has been
// killed (the in-process state survives; only new work is refused).
func (p *Plane) FlowFinished(id flowserver.FlowID) {
	if p.single != nil {
		p.single.FlowFinished(id)
		return
	}
	p.coordinatorOf(id).Finished(id)
}

// EstimatedBW returns the coordinator's bandwidth estimate for a flow.
func (p *Plane) EstimatedBW(id flowserver.FlowID) (float64, bool) {
	if p.single != nil {
		return p.single.EstimatedBW(id)
	}
	return p.coordinatorOf(id).Server().EstimatedBW(id)
}

// PollFrom ingests one stats cycle into every live shard and then
// refreshes the cross-shard digests, in shard-index order — each shard
// in a real deployment polls the edge switches of its own pods and
// gossips on the same tick; the in-process plane hands every shard the
// full batch and lets the model's flow tables pick out their own rows.
func (p *Plane) PollFrom(now float64, src flowserver.StatsSource) {
	if p.single != nil {
		p.single.PollFrom(now, src)
		return
	}
	batch := src.FlowStats()
	for k, s := range p.shards {
		if p.isKilled(k) {
			continue
		}
		s.Server().UpdateFlowStats(now, batch)
	}
	ds := make([]*Digest, len(p.shards))
	for k, s := range p.shards {
		if !p.isKilled(k) {
			ds[k] = s.BuildDigest(now)
		}
	}
	for k, s := range p.shards {
		if !p.isKilled(k) {
			s.InstallDigests(ds)
		}
	}
}

// Counters aggregates the model counters across shards, with the
// plane-level selection counters (selections are coordinated above the
// embedded servers, which only see commits) folded in.
func (p *Plane) Counters() flowserver.StatsCounters {
	if p.single != nil {
		return p.single.Counters()
	}
	var out flowserver.StatsCounters
	for _, s := range p.shards {
		c := s.Server().Counters()
		out.FreezeHits += c.FreezeHits
		out.FreezeExpirations += c.FreezeExpirations
		out.Polls += c.Polls
		out.PollSamples += c.PollSamples
		out.PollDropsDT += c.PollDropsDT
		out.PollDropsRegress += c.PollDropsRegress
		out.PollDropsSkewFuture += c.PollDropsSkewFuture
		out.PollDropsSkewPast += c.PollDropsSkewPast
	}
	out.Selections = p.met.Selections.Value()
	out.WriteSelections = p.met.WriteSelections.Value()
	out.CandidatesEvaluated = p.met.Candidates.Value()
	return out
}

// NumFlows returns the number of registered flow entries across shards
// (a cross-shard flow counts once per shard holding a sub-path).
func (p *Plane) NumFlows() int {
	if p.single != nil {
		return p.single.NumFlows()
	}
	n := 0
	for _, s := range p.shards {
		n += s.Server().NumFlows()
	}
	return n
}

// KillShard declares shard k dead: the directory promotes its pods to
// the next live shard (bumping the epoch) and every surviving shard
// learns the new ownership. Selections for the promoted pods route to
// the successor, whose model for the adopted links starts empty and
// repopulates from counter polls.
func (p *Plane) KillShard(k int) error {
	if p.single != nil {
		return fmt.Errorf("flowctl: cannot kill the only shard")
	}
	if k < 0 || k >= len(p.shards) {
		return fmt.Errorf("flowctl: no shard %d", k)
	}
	p.mu.Lock()
	if p.killed[k] {
		p.mu.Unlock()
		return nil
	}
	p.killed[k] = true
	p.mu.Unlock()
	p.dir.MarkDead(k)
	owner, epoch := p.dir.Owners()
	for g, s := range p.shards {
		if !p.isKilled(g) {
			s.SetOwners(owner, epoch)
		}
	}
	p.met.Failovers.Inc()
	p.met.setEpoch(epoch)
	return nil
}

// Metrics exposes the plane's flowctl instrumentation.
func (p *Plane) Metrics() *Metrics { return p.met }
