package flowctl

import "testing"

func TestShareEstimate(t *testing.T) {
	cases := []struct {
		name string
		cap  float64
		load LinkLoad
		want float64
	}{
		{"no info is full capacity", 100, LinkLoad{}, 100},
		{"saturated link equal-splits", 100, LinkLoad{Flows: 3, SumBw: 100}, 25},
		{"bottlenecked-elsewhere flows leave headroom", 100, LinkLoad{Flows: 1, SumBw: 10}, 90},
		{"headroom beats equal split", 100, LinkLoad{Flows: 9, SumBw: 20}, 80},
		{"oversubscribed clamps at zero equal split", 100, LinkLoad{Flows: 4, SumBw: 150}, 20},
	}
	for _, c := range cases {
		if got := ShareEstimate(c.cap, c.load); got != c.want {
			t.Errorf("%s: ShareEstimate(%g, %+v) = %g, want %g", c.name, c.cap, c.load, got, c.want)
		}
	}
}

func TestMergeDigestsScattersDisjointOwnership(t *testing.T) {
	d1 := &Digest{Shard: 0, Links: []int32{0, 2}, Loads: []LinkLoad{{1, 10}, {2, 20}}}
	d2 := &Digest{Shard: 1, Links: []int32{5}, Loads: []LinkLoad{{3, 30}}}
	view := MergeDigests(nil, 6, d1, nil, d2)
	if len(view) != 6 {
		t.Fatalf("view length %d, want 6", len(view))
	}
	if view[0] != (LinkLoad{1, 10}) || view[2] != (LinkLoad{2, 20}) || view[5] != (LinkLoad{3, 30}) {
		t.Errorf("scatter wrong: %+v", view)
	}
	if view[1] != (LinkLoad{}) || view[3] != (LinkLoad{}) {
		t.Errorf("unmentioned links not zero: %+v", view)
	}
	// Reuse clears stale entries.
	view2 := MergeDigests(view, 6, d2)
	if view2[0] != (LinkLoad{}) || view2[5] != (LinkLoad{3, 30}) {
		t.Errorf("reused view not cleared: %+v", view2)
	}
}
