package uuid

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestNewVersionAndVariant(t *testing.T) {
	for i := 0; i < 100; i++ {
		u, err := New()
		if err != nil {
			t.Fatal(err)
		}
		if v := u[6] >> 4; v != 4 {
			t.Fatalf("version = %d, want 4", v)
		}
		if v := u[8] >> 6; v != 2 {
			t.Fatalf("variant bits = %b, want 10", v)
		}
		if u.IsZero() {
			t.Fatal("generated zero UUID")
		}
	}
}

func TestNewUnique(t *testing.T) {
	seen := make(map[UUID]bool)
	for i := 0; i < 1000; i++ {
		u := MustNew()
		if seen[u] {
			t.Fatalf("duplicate UUID %s", u)
		}
		seen[u] = true
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		u := MustNew()
		s := u.String()
		if len(s) != 36 || strings.Count(s, "-") != 4 {
			t.Fatalf("malformed string %q", s)
		}
		parsed, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if parsed != u {
			t.Fatalf("round trip %s != %s", parsed, u)
		}
	}
}

func TestParseKnownValue(t *testing.T) {
	const s = "6ba7b810-9dad-11d1-80b4-00c04fd430c8"
	u, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.String(); got != s {
		t.Errorf("String() = %q, want %q", got, s)
	}
	if u[0] != 0x6b || u[15] != 0xc8 {
		t.Errorf("bytes decoded incorrectly: % x", u[:])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"6ba7b810",
		"6ba7b810-9dad-11d1-80b4-00c04fd430c",  // too short
		"6ba7b8109dad-11d1-80b4-00c04fd430c88", // missing dash
		"6ba7b810-9dad-11d1-80b4-00c04fd430zz", // non-hex
		strings.Repeat("x", 36),
	}
	for _, s := range bad {
		if _, err := Parse(s); !errors.Is(err, ErrInvalid) {
			t.Errorf("Parse(%q) err = %v, want ErrInvalid", s, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	u := MustNew()
	b, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var back UUID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != u {
		t.Fatalf("JSON round trip %s != %s", back, u)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &back); err == nil {
		t.Error("unmarshal of invalid UUID succeeded")
	}
}

func TestIsZero(t *testing.T) {
	var z UUID
	if !z.IsZero() {
		t.Error("zero value not IsZero")
	}
}
