// Package uuid generates and parses RFC 4122 version-4 (random) UUIDs.
// Mayflower names each stored file by a UUID: the dataserver keeps one
// directory per file UUID (§3.3.2).
package uuid

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
)

// UUID is a 128-bit RFC 4122 identifier.
type UUID [16]byte

// ErrInvalid is returned when parsing a malformed UUID string.
var ErrInvalid = errors.New("uuid: invalid format")

// New returns a fresh random (version 4, variant 10) UUID.
func New() (UUID, error) {
	var u UUID
	if _, err := rand.Read(u[:]); err != nil {
		return UUID{}, fmt.Errorf("uuid: %w", err)
	}
	u[6] = (u[6] & 0x0f) | 0x40 // version 4
	u[8] = (u[8] & 0x3f) | 0x80 // variant 10
	return u, nil
}

// MustNew returns a fresh UUID and panics if the system's entropy source
// fails, which is unrecoverable at startup.
func MustNew() UUID {
	u, err := New()
	if err != nil {
		panic(err)
	}
	return u
}

// String formats the UUID in the canonical 8-4-4-4-12 form.
func (u UUID) String() string {
	var buf [36]byte
	hex.Encode(buf[0:8], u[0:4])
	buf[8] = '-'
	hex.Encode(buf[9:13], u[4:6])
	buf[13] = '-'
	hex.Encode(buf[14:18], u[6:8])
	buf[18] = '-'
	hex.Encode(buf[19:23], u[8:10])
	buf[23] = '-'
	hex.Encode(buf[24:36], u[10:16])
	return string(buf[:])
}

// IsZero reports whether the UUID is the all-zero value.
func (u UUID) IsZero() bool { return u == UUID{} }

// Parse decodes a canonical UUID string.
func Parse(s string) (UUID, error) {
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return UUID{}, ErrInvalid
	}
	var u UUID
	segments := []struct {
		src      string
		dstStart int
	}{
		{s[0:8], 0}, {s[9:13], 4}, {s[14:18], 6}, {s[19:23], 8}, {s[24:36], 10},
	}
	for _, seg := range segments {
		b, err := hex.DecodeString(seg.src)
		if err != nil {
			return UUID{}, ErrInvalid
		}
		copy(u[seg.dstStart:], b)
	}
	return u, nil
}

// MarshalText implements encoding.TextMarshaler.
func (u UUID) MarshalText() ([]byte, error) { return []byte(u.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (u *UUID) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*u = parsed
	return nil
}
