// Package kvstore is an embedded, persistent key-value store standing in
// for LevelDB in the Mayflower nameserver (§3.3.1, §5 of the paper).
//
// The design matches how the paper actually uses LevelDB:
//
//   - all reads are served from memory (the nameserver is provisioned so
//     the whole mapping fits in RAM);
//   - writes append to a write-ahead log, with fsync configurable and off
//     by default ("LevelDB is configured with fsync off in order to speed
//     up file creation and deletion");
//   - the persistent state exists to make graceful restarts fast; after a
//     crash the nameserver rebuilds from the dataservers anyway, so the
//     store only guarantees a consistent prefix of writes.
//
// On disk a store directory holds a snapshot file (a compacted image,
// replaced atomically) and a WAL. Recovery loads the snapshot and replays
// the WAL, discarding a torn tail record if the process died mid-append.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	snapshotName = "SNAPSHOT"
	walName      = "WAL"

	opPut    = byte(1)
	opDelete = byte(2)

	maxKeyLen   = 1 << 20
	maxValueLen = 64 << 20
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

// Options configure a store.
type Options struct {
	// SyncWrites forces an fsync after every logged write. The paper runs
	// with this off for speed; turn it on for stronger durability.
	SyncWrites bool
}

// Store is an in-memory map with write-ahead logging and snapshot
// compaction. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.RWMutex
	mem     map[string][]byte
	wal     *os.File
	walRecs int
	closed  bool
}

// Open opens (or creates) the store in dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: create dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts, mem: make(map[string][]byte)}

	if err := s.loadFile(filepath.Join(dir, snapshotName)); err != nil {
		return nil, fmt.Errorf("kvstore: load snapshot: %w", err)
	}
	walPath := filepath.Join(dir, walName)
	if err := s.loadFile(walPath); err != nil {
		return nil, fmt.Errorf("kvstore: replay wal: %w", err)
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	s.wal = wal
	return s, nil
}

// loadFile replays a record file into the memtable. A corrupt or torn
// record ends the replay (the consistent prefix wins); if the corruption
// is in the WAL, the file is truncated to the valid prefix so new appends
// do not land after garbage.
func (s *Store) loadFile(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()

	var validOffset int64
	r := newRecordReader(f)
	for {
		op, key, val, err := r.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// Torn tail: keep the valid prefix.
			if strings.HasSuffix(path, walName) {
				if terr := os.Truncate(path, validOffset); terr != nil {
					return fmt.Errorf("truncate torn wal: %w", terr)
				}
			}
			break
		}
		validOffset = r.offset
		switch op {
		case opPut:
			s.mem[string(key)] = val
		case opDelete:
			delete(s.mem, string(key))
		}
	}
	return nil
}

type recordReader struct {
	r      io.Reader
	offset int64
}

func newRecordReader(r io.Reader) *recordReader { return &recordReader{r: r} }

// next reads one record: op(1) keyLen(4) valLen(4) key val crc(4).
func (rr *recordReader) next() (op byte, key, val []byte, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, nil, fmt.Errorf("kvstore: torn header: %w", err)
		}
		return 0, nil, nil, err
	}
	op = hdr[0]
	keyLen := binary.BigEndian.Uint32(hdr[1:5])
	valLen := binary.BigEndian.Uint32(hdr[5:9])
	if op != opPut && op != opDelete {
		return 0, nil, nil, fmt.Errorf("kvstore: bad op %d", op)
	}
	if keyLen > maxKeyLen || valLen > maxValueLen {
		return 0, nil, nil, fmt.Errorf("kvstore: implausible record lengths %d/%d", keyLen, valLen)
	}
	body := make([]byte, int(keyLen)+int(valLen)+4)
	if _, err := io.ReadFull(rr.r, body); err != nil {
		return 0, nil, nil, fmt.Errorf("kvstore: torn body: %w", err)
	}
	crc := binary.BigEndian.Uint32(body[len(body)-4:])
	sum := crc32.NewIEEE()
	_, _ = sum.Write(hdr[:])
	_, _ = sum.Write(body[:len(body)-4])
	if sum.Sum32() != crc {
		return 0, nil, nil, errors.New("kvstore: checksum mismatch")
	}
	key = body[:keyLen]
	val = body[keyLen : keyLen+valLen]
	rr.offset += int64(9 + len(body))
	return op, key, val, nil
}

func encodeRecord(op byte, key, val []byte) []byte {
	buf := make([]byte, 9+len(key)+len(val)+4)
	buf[0] = op
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(key)))
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(val)))
	copy(buf[9:], key)
	copy(buf[9+len(key):], val)
	sum := crc32.ChecksumIEEE(buf[:len(buf)-4])
	binary.BigEndian.PutUint32(buf[len(buf)-4:], sum)
	return buf
}

// Get returns the value stored at key. The returned slice is a copy.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.mem[string(key)]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true, nil
}

// Put stores value at key.
func (s *Store) Put(key, value []byte) error {
	if len(key) == 0 {
		return errors.New("kvstore: empty key")
	}
	if len(key) > maxKeyLen || len(value) > maxValueLen {
		return fmt.Errorf("kvstore: key/value too large (%d/%d)", len(key), len(value))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.appendLocked(opPut, key, value); err != nil {
		return err
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.mem[string(key)] = v
	return nil
}

// Delete removes key. Deleting an absent key is a no-op (still logged, so
// it replays identically).
func (s *Store) Delete(key []byte) error {
	if len(key) == 0 {
		return errors.New("kvstore: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.appendLocked(opDelete, key, nil); err != nil {
		return err
	}
	delete(s.mem, string(key))
	return nil
}

func (s *Store) appendLocked(op byte, key, val []byte) error {
	rec := encodeRecord(op, key, val)
	if _, err := s.wal.Write(rec); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	s.walRecs++
	if s.opts.SyncWrites {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("kvstore: wal sync: %w", err)
		}
	}
	return nil
}

// Range calls fn for every key with the given prefix, in ascending key
// order, until fn returns false. Keys and values passed to fn are copies.
func (s *Store) Range(prefix []byte, fn func(key, value []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.mem))
	p := string(prefix)
	for k := range s.mem {
		if strings.HasPrefix(k, p) {
			keys = append(keys, k)
		}
	}
	// Copy values under the read lock so fn runs without holding it.
	sort.Strings(keys)
	type kv struct {
		k string
		v []byte
	}
	items := make([]kv, 0, len(keys))
	for _, k := range keys {
		v := s.mem[k]
		vc := make([]byte, len(v))
		copy(vc, v)
		items = append(items, kv{k: k, v: vc})
	}
	s.mu.RUnlock()

	for _, it := range items {
		if !fn([]byte(it.k), it.v) {
			break
		}
	}
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return len(s.mem), nil
}

// WALRecords reports how many records have been appended to the WAL since
// it was last compacted (observability and compaction-policy hook).
func (s *Store) WALRecords() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return s.walRecs, nil
}

// Compact writes the current state to a fresh snapshot (atomically
// replacing the old one) and truncates the WAL.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot-*")
	if err != nil {
		return fmt.Errorf("kvstore: compact: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename

	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := tmp.Write(encodeRecord(opPut, []byte(k), s.mem[k])); err != nil {
			tmp.Close()
			return fmt.Errorf("kvstore: compact write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("kvstore: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("kvstore: compact close: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("kvstore: compact rename: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("kvstore: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("kvstore: rewind wal: %w", err)
	}
	s.walRecs = 0
	return nil
}

// Close flushes and closes the store. Closing twice is an error-free
// no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("kvstore: close sync: %w", err)
	}
	return s.wal.Close()
}
