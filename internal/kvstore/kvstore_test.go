package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t)

	if _, ok, err := s.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v", ok, err)
	}
	if err := s.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q ok=%v err=%v", v, ok, err)
	}
	if err := s.Put([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Get([]byte("a"))
	if string(v) != "2" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if err := s.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("a")); ok {
		t.Fatal("deleted key still present")
	}
	if err := s.Delete([]byte("a")); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if n, _ := s.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
}

func TestValidation(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted for Put")
	}
	if err := s.Delete(nil); err == nil {
		t.Error("empty key accepted for Delete")
	}
	if err := s.Put(make([]byte, maxKeyLen+1), nil); err == nil {
		t.Error("oversized key accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Put([]byte("k"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Get([]byte("k"))
	v[0] = 'X'
	v2, _, _ := s.Get([]byte("k"))
	if string(v2) != "value" {
		t.Fatalf("internal state mutated through returned slice: %q", v2)
	}
	// And Put copies its input.
	in := []byte("orig")
	if err := s.Put([]byte("k2"), in); err != nil {
		t.Fatal(err)
	}
	in[0] = 'X'
	v3, _, _ := s.Get([]byte("k2"))
	if string(v3) != "orig" {
		t.Fatalf("Put did not copy input: %q", v3)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if err := s.Put([]byte(key), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("key-050")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, _ := s2.Len(); n != 99 {
		t.Fatalf("Len after reopen = %d, want 99", n)
	}
	v, ok, _ := s2.Get([]byte("key-042"))
	if !ok || string(v) != "val-42" {
		t.Fatalf("Get(key-042) = %q ok=%v", v, ok)
	}
	if _, ok, _ := s2.Get([]byte("key-050")); ok {
		t.Fatal("deleted key resurrected after reopen")
	}
}

func TestCompactAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("k10")); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.WALRecords(); n != 51 {
		t.Fatalf("WALRecords = %d, want 51", n)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.WALRecords(); n != 0 {
		t.Fatalf("WALRecords after compact = %d, want 0", n)
	}
	// Post-compaction writes land in the fresh WAL.
	if err := s.Put([]byte("after"), []byte("compact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, _ := s2.Len(); n != 50 {
		t.Fatalf("Len = %d, want 50", n)
	}
	if _, ok, _ := s2.Get([]byte("after")); !ok {
		t.Fatal("post-compaction write lost")
	}
	if _, ok, _ := s2.Get([]byte("k10")); ok {
		t.Fatal("compaction resurrected deleted key")
	}
}

func TestTornWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("x"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the WAL tail.
	walPath := filepath.Join(dir, "WAL")
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-37); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn WAL: %v", err)
	}
	defer s2.Close()
	if n, _ := s2.Len(); n != 9 {
		t.Fatalf("Len = %d, want 9 (one torn record dropped)", n)
	}
	// The store keeps working after recovery.
	if err := s2.Put([]byte("new"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok, _ := s3.Get([]byte("new")); !ok {
		t.Fatal("write after torn-WAL recovery lost")
	}
}

func TestCorruptWALChecksum(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("aaa"), []byte("111")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("bbb"), []byte("222")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, "WAL")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // flip a bit in the second record's checksum
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get([]byte("aaa")); !ok {
		t.Fatal("first (intact) record lost")
	}
	if _, ok, _ := s2.Get([]byte("bbb")); ok {
		t.Fatal("corrupt record replayed")
	}
}

func TestRangePrefix(t *testing.T) {
	s, _ := openTemp(t)
	keys := []string{"files/a", "files/b", "files/c", "servers/x", "servers/y"}
	for _, k := range keys {
		if err := s.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := s.Range([]byte("files/"), func(k, v []byte) bool {
		got = append(got, string(k))
		if string(v) != "v-"+string(k) {
			t.Errorf("value mismatch for %s: %q", k, v)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"files/a", "files/b", "files/c"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (sorted)", got, want)
		}
	}

	// Early termination.
	count := 0
	if err := s.Range(nil, func(k, v []byte) bool { count++; return count < 2 }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("Range visited %d keys after early stop, want 2", count)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put([]byte("k"), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close = %v", err)
	}
	if _, _, err := s.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close = %v", err)
	}
	if err := s.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after close = %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after close = %v", err)
	}
	if err := s.Range(nil, func(k, v []byte) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Errorf("Range after close = %v", err)
	}
	if _, err := s.Len(); !errors.Is(err, ErrClosed) {
		t.Errorf("Len after close = %v", err)
	}
	if _, err := s.WALRecords(); !errors.Is(err, ErrClosed) {
		t.Errorf("WALRecords after close = %v", err)
	}
}

func TestSyncWritesMode(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s.Len(); n != 10 {
		t.Fatalf("Len = %d", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := []byte(fmt.Sprintf("g%d-k%d", g, i))
				if err := s.Put(key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := s.Get(key); err != nil || !ok {
					t.Errorf("Get(%s) ok=%v err=%v", key, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := s.Len(); n != 800 {
		t.Fatalf("Len = %d, want 800", n)
	}
}

// TestRandomOpsMatchModel property-checks the store against a plain map
// through random operations, compactions, and reopens.
func TestRandomOpsMatchModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		model := make(map[string]string)
		for i := 0; i < 150; i++ {
			key := fmt.Sprintf("k%d", r.Intn(30))
			switch r.Intn(10) {
			case 0, 1:
				if err := s.Delete([]byte(key)); err != nil {
					t.Log(err)
					return false
				}
				delete(model, key)
			case 2:
				if err := s.Compact(); err != nil {
					t.Log(err)
					return false
				}
			case 3:
				if err := s.Close(); err != nil {
					t.Log(err)
					return false
				}
				if s, err = Open(dir, Options{}); err != nil {
					t.Log(err)
					return false
				}
			default:
				val := fmt.Sprintf("v%d", r.Int())
				if err := s.Put([]byte(key), []byte(val)); err != nil {
					t.Log(err)
					return false
				}
				model[key] = val
			}
		}
		defer s.Close()
		if n, _ := s.Len(); n != len(model) {
			t.Logf("Len = %d, model %d", n, len(model))
			return false
		}
		for k, v := range model {
			got, ok, err := s.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				t.Logf("Get(%s) = %q ok=%v err=%v, want %q", k, got, ok, err, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Error(err)
	}
}
