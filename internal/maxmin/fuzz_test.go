package maxmin

import (
	"math"
	"testing"
)

// decodeScenario turns an arbitrary fuzz payload into a valid allocation
// problem: the first bytes size the link set, the rest stream out flows
// (demand byte + up to three link bytes each). Every byte pattern decodes
// to something Allocate must handle.
func decodeScenario(data []byte) ([]float64, []Flow) {
	if len(data) == 0 {
		return nil, nil
	}
	nLinks := 1 + int(data[0]%16)
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1 // overwritten below when bytes remain
	}
	pos := 1
	for i := range caps {
		if pos >= len(data) {
			break
		}
		// Capacities from 0 (a dead link is legal) to 25.5.
		caps[i] = float64(data[pos]) / 10
		pos++
	}
	var flows []Flow
	for pos < len(data) {
		d := data[pos]
		pos++
		demand := math.Inf(1)
		switch {
		case d%4 == 0:
			demand = float64(d) / 8 // bounded, possibly zero
		case d%4 == 1:
			demand = 0
		}
		nl := int(d%3) + 1
		seen := make(map[int]bool)
		var links []int
		for j := 0; j < nl && pos < len(data); j++ {
			l := int(data[pos]) % nLinks
			pos++
			if !seen[l] {
				seen[l] = true
				links = append(links, l)
			}
		}
		flows = append(flows, Flow{Links: links, Demand: demand})
	}
	return caps, flows
}

// checkAllocation asserts the three max-min invariants on an allocation:
// no flow above its demand, no link above its capacity, and every
// demand-unsatisfied flow bottlenecked on a saturated link where it holds
// (one of) the largest rates.
func checkAllocation(t *testing.T, caps []float64, flows []Flow, rates []float64) {
	t.Helper()
	if len(rates) != len(flows) {
		t.Fatalf("got %d rates for %d flows", len(rates), len(flows))
	}
	load := make([]float64, len(caps))
	for i, fl := range flows {
		if math.IsNaN(rates[i]) {
			t.Fatalf("flow %d: rate is NaN", i)
		}
		if rates[i] < -tol {
			t.Fatalf("flow %d: negative rate %g", i, rates[i])
		}
		if rates[i] > fl.Demand+tol {
			t.Fatalf("flow %d: rate %g exceeds demand %g", i, rates[i], fl.Demand)
		}
		for _, l := range fl.Links {
			load[l] += rates[i]
		}
	}
	for l := range caps {
		if load[l] > caps[l]*(1+tol)+tol {
			t.Fatalf("link %d: load %g exceeds capacity %g", l, load[l], caps[l])
		}
	}
	for i, fl := range flows {
		if rates[i] >= fl.Demand-tol || len(fl.Links) == 0 {
			continue // demand-limited (or unconstrained) flows need no bottleneck
		}
		bottlenecked := false
		for _, l := range fl.Links {
			if load[l] < caps[l]*(1-1e-4) {
				continue // not saturated
			}
			isMax := true
			for j, fj := range flows {
				if j == i {
					continue
				}
				for _, lj := range fj.Links {
					if lj == l && rates[j] > rates[i]+1e-4*(1+rates[i]) {
						isMax = false
					}
				}
			}
			if isMax {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			t.Fatalf("flow %d (rate %g, demand %g) has no bottleneck link; caps=%v flows=%+v rates=%v",
				i, rates[i], fl.Demand, caps, flows, rates)
		}
	}
}

// FuzzAllocate feeds arbitrary byte-decoded scenarios through the
// water-filling allocator and checks the max-min invariants on every
// output. Run `go test -fuzz=FuzzAllocate ./internal/maxmin` to explore
// beyond the seed corpus.
func FuzzAllocate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x64, 0xff, 0x00, 0xff, 0x00})          // one link, two flows
	f.Add([]byte{0x03, 0x28, 0x64, 0x0a, 0x02, 0x00, 0x01})    // bottleneck chain
	f.Add([]byte{0x10, 0x00, 0x00, 0x01, 0x00, 0x05, 0x00})    // zero-capacity links
	f.Add([]byte{0x02, 0xff, 0xff, 0x04, 0x00, 0x04, 0x01, 7}) // bounded demands
	f.Add([]byte{0x05, 1, 2, 3, 4, 5, 0xfe, 0, 1, 0xfe, 2, 3}) // multi-link flows
	f.Fuzz(func(t *testing.T, data []byte) {
		caps, flows := decodeScenario(data)
		rates := Allocate(caps, flows)
		checkAllocation(t, caps, flows, rates)
	})
}

// FuzzSharesWithNewFlow checks the Flowserver's single-link estimator:
// the sum of shares never exceeds capacity, no existing flow's share
// rises above its current demand, and the new flow's share is
// non-negative and within its demand.
func FuzzSharesWithNewFlow(f *testing.F) {
	f.Add(10.0, []byte{20, 20, 60}, -1.0)
	f.Add(10.0, []byte{100}, 3.0)
	f.Add(0.0, []byte{5}, 5.0)
	f.Fuzz(func(t *testing.T, capBps float64, raw []byte, newDemand float64) {
		if math.IsNaN(capBps) || capBps < 0 || capBps > 1e12 {
			t.Skip()
		}
		if math.IsNaN(newDemand) {
			t.Skip()
		}
		if newDemand < 0 {
			newDemand = math.Inf(1)
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		existing := make([]float64, len(raw))
		for i, b := range raw {
			existing[i] = float64(b) / 10
		}
		shares, nf := SharesWithNewFlow(capBps, existing, newDemand)
		if math.IsNaN(nf) || nf < -tol || nf > newDemand+tol {
			t.Fatalf("new flow share %g out of [0, %g]", nf, newDemand)
		}
		total := nf
		for i, s := range shares {
			if s > existing[i]+tol {
				t.Fatalf("existing flow %d raised from %g to %g", i, existing[i], s)
			}
			if s < -tol {
				t.Fatalf("existing flow %d negative share %g", i, s)
			}
			total += s
		}
		if total > capBps*(1+tol)+tol {
			t.Fatalf("shares total %g exceed capacity %g", total, capBps)
		}
	})
}
