package maxmin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-6

func near(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestAllocateSingleLinkEqualSplit(t *testing.T) {
	rates := Allocate([]float64{10}, []Flow{
		{Links: []int{0}, Demand: math.Inf(1)},
		{Links: []int{0}, Demand: math.Inf(1)},
	})
	for i, r := range rates {
		if !near(r, 5) {
			t.Errorf("rates[%d] = %g, want 5", i, r)
		}
	}
}

func TestAllocateDemandCapped(t *testing.T) {
	rates := Allocate([]float64{10}, []Flow{
		{Links: []int{0}, Demand: 2},
		{Links: []int{0}, Demand: math.Inf(1)},
	})
	if !near(rates[0], 2) || !near(rates[1], 8) {
		t.Errorf("rates = %v, want [2 8]", rates)
	}
}

func TestAllocateMultiLinkBottleneck(t *testing.T) {
	// Flow 0 crosses both links; flow 1 only link 1. Link 0 is the
	// bottleneck for flow 0 (cap 4), so flow 1 picks up the slack on
	// link 1 (cap 10).
	rates := Allocate([]float64{4, 10}, []Flow{
		{Links: []int{0, 1}, Demand: math.Inf(1)},
		{Links: []int{1}, Demand: math.Inf(1)},
	})
	if !near(rates[0], 4) || !near(rates[1], 6) {
		t.Errorf("rates = %v, want [4 6]", rates)
	}
}

func TestAllocateZeroAndEmpty(t *testing.T) {
	if got := Allocate(nil, nil); len(got) != 0 {
		t.Errorf("Allocate(nil, nil) = %v", got)
	}
	rates := Allocate([]float64{10}, []Flow{
		{Links: []int{0}, Demand: 0},
		{Links: []int{0}, Demand: math.Inf(1)},
	})
	if !near(rates[0], 0) || !near(rates[1], 10) {
		t.Errorf("rates = %v, want [0 10]", rates)
	}
}

func TestAllocateNoLinksFlow(t *testing.T) {
	rates := Allocate([]float64{1}, []Flow{
		{Demand: 7},
		{Links: []int{0}, Demand: math.Inf(1)},
	})
	if !near(rates[0], 7) || !near(rates[1], 1) {
		t.Errorf("rates = %v, want [7 1]", rates)
	}
	// Unbounded demand with no links is unbounded rate.
	rates = Allocate(nil, []Flow{{Demand: math.Inf(1)}})
	if !math.IsInf(rates[0], 1) {
		t.Errorf("rates[0] = %g, want +Inf", rates[0])
	}
}

func TestAllocateFigure2FirstPathGroundTruth(t *testing.T) {
	// Figure 2(b): second link of the first path carries flows with
	// current shares 2, 2, 6 (10 Mbps links). Max-min with the new flow:
	// the 2s keep 2, the 6 drops to 3, the new flow gets 3.
	newShares, newFlow := SharesWithNewFlow(10, []float64{2, 2, 6}, math.Inf(1))
	want := []float64{2, 2, 3}
	for i := range want {
		if !near(newShares[i], want[i]) {
			t.Errorf("newShares[%d] = %g, want %g", i, newShares[i], want[i])
		}
	}
	if !near(newFlow, 3) {
		t.Errorf("newFlow = %g, want 3", newFlow)
	}

	// Third link: one existing flow at 10. The new flow would get 5.
	if got := ShareOnLink(10, []float64{10}); !near(got, 5) {
		t.Errorf("ShareOnLink = %g, want 5", got)
	}
	// With the new flow's demand pinned to the path bottleneck (3), the
	// existing flow keeps 7 (paper: "the 10Mbps-flow ... reduced to 7").
	newShares, newFlow = SharesWithNewFlow(10, []float64{10}, 3)
	if !near(newShares[0], 7) || !near(newFlow, 3) {
		t.Errorf("SharesWithNewFlow(10, [10], 3) = %v, %g; want [7], 3", newShares, newFlow)
	}
}

func TestAllocateFigure2SecondPathGroundTruth(t *testing.T) {
	// Second path, second link: shares 2, 2, 4. New flow gets 3; the
	// 4-share flow drops to 3.
	newShares, newFlow := SharesWithNewFlow(10, []float64{2, 2, 4}, math.Inf(1))
	want := []float64{2, 2, 3}
	for i := range want {
		if !near(newShares[i], want[i]) {
			t.Errorf("newShares[%d] = %g, want %g", i, newShares[i], want[i])
		}
	}
	if !near(newFlow, 3) {
		t.Errorf("newFlow = %g, want 3", newFlow)
	}
	// Third link: one flow at 8; with new demand 3 it drops to 7.
	newShares, _ = SharesWithNewFlow(10, []float64{8}, 3)
	if !near(newShares[0], 7) {
		t.Errorf("newShares[0] = %g, want 7", newShares[0])
	}
}

func TestShareOnLinkUndersubscribed(t *testing.T) {
	// 20 Mbps variant from §4.2: demands 2+2+6 leave 10 for the new flow.
	if got := ShareOnLink(20, []float64{2, 2, 6}); !near(got, 10) {
		t.Errorf("ShareOnLink(20, ...) = %g, want 10", got)
	}
	// And existing flows are not squeezed by a demand-3 arrival.
	newShares, _ := SharesWithNewFlow(20, []float64{2, 2, 6}, 5)
	for i, want := range []float64{2, 2, 6} {
		if !near(newShares[i], want) {
			t.Errorf("newShares[%d] = %g, want %g", i, newShares[i], want)
		}
	}
}

func TestShareOnLinkEmpty(t *testing.T) {
	if got := ShareOnLink(10, nil); !near(got, 10) {
		t.Errorf("ShareOnLink(10, nil) = %g, want 10", got)
	}
}

// randomScenario builds a random allocation problem from a seed.
func randomScenario(seed int64) ([]float64, []Flow) {
	r := rand.New(rand.NewSource(seed))
	nLinks := 1 + r.Intn(8)
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1 + r.Float64()*99
	}
	nFlows := 1 + r.Intn(12)
	flows := make([]Flow, nFlows)
	for i := range flows {
		nl := 1 + r.Intn(3)
		if nl > nLinks {
			nl = nLinks
		}
		seen := make(map[int]bool)
		var links []int
		for len(links) < nl {
			l := r.Intn(nLinks)
			if !seen[l] {
				seen[l] = true
				links = append(links, l)
			}
		}
		d := math.Inf(1)
		if r.Intn(2) == 0 {
			d = r.Float64() * 50
		}
		flows[i] = Flow{Links: links, Demand: d}
	}
	return caps, flows
}

// TestAllocateInvariants property-checks that the allocation never exceeds
// demand or link capacity, and that it satisfies the max-min optimality
// condition: every demand-unsatisfied flow has a saturated link on which it
// holds (one of) the largest rates.
func TestAllocateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		caps, flows := randomScenario(seed)
		rates := Allocate(caps, flows)

		load := make([]float64, len(caps))
		for i, fl := range flows {
			if rates[i] < -tol || rates[i] > fl.Demand+tol {
				t.Logf("seed %d: rate %g out of [0, %g]", seed, rates[i], fl.Demand)
				return false
			}
			for _, l := range fl.Links {
				load[l] += rates[i]
			}
		}
		for l := range caps {
			if load[l] > caps[l]*(1+tol)+tol {
				t.Logf("seed %d: link %d load %g > cap %g", seed, l, load[l], caps[l])
				return false
			}
		}
		// Max-min optimality.
		for i, fl := range flows {
			if rates[i] >= fl.Demand-tol {
				continue // demand-limited flows need no bottleneck
			}
			ok := false
			for _, l := range fl.Links {
				if load[l] < caps[l]*(1-1e-4) {
					continue // not saturated
				}
				isMax := true
				for j, fj := range flows {
					if j == i {
						continue
					}
					for _, lj := range fj.Links {
						if lj == l && rates[j] > rates[i]+1e-4*(1+rates[i]) {
							isMax = false
						}
					}
				}
				if isMax {
					ok = true
					break
				}
			}
			if !ok {
				t.Logf("seed %d: flow %d (rate %g) has no bottleneck link", seed, i, rates[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSharesWithNewFlowConservation checks the single-link estimator never
// exceeds the capacity and never raises an existing flow above its demand.
func TestSharesWithNewFlowConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capBps := 1 + r.Float64()*999
		existing := make([]float64, r.Intn(10))
		for i := range existing {
			existing[i] = r.Float64() * capBps
		}
		newDemand := math.Inf(1)
		if r.Intn(2) == 0 {
			newDemand = r.Float64() * capBps
		}
		shares, nf := SharesWithNewFlow(capBps, existing, newDemand)
		total := nf
		for i, s := range shares {
			if s > existing[i]+tol {
				return false // estimator must never raise an existing share
			}
			total += s
		}
		return total <= capBps*(1+tol)+tol && nf >= -tol
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocate64Hosts(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	nLinks := 224 // paper testbed directed link count
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1e9
	}
	flows := make([]Flow, 200)
	for i := range flows {
		links := []int{r.Intn(nLinks), r.Intn(nLinks), r.Intn(nLinks)}
		flows[i] = Flow{Links: links, Demand: math.Inf(1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Allocate(caps, flows)
	}
}
