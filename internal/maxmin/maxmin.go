// Package maxmin implements max-min fair bandwidth sharing.
//
// It provides two layers used throughout the Mayflower reproduction:
//
//   - Allocate: a global progressive-filling (water-filling) allocator over
//     an arbitrary set of capacitated links and multi-link flows. The
//     flow-level network simulator uses it as ground truth for how TCP-like
//     flows share a datacenter fabric.
//
//   - Single-link estimators (ShareOnLink, SharesWithNewFlow): the
//     calculation the Mayflower Flowserver performs when evaluating a
//     candidate path (§4.2 of the paper). Existing flows contribute their
//     currently-measured bandwidth share as their demand; the new flow has
//     infinite demand; capacity is divided equally up to each flow's demand.
//
// Callers on a hot path should use an Alloc, which keeps every scratch
// buffer across calls; the package-level functions allocate fresh slices
// each call but compute bit-identical results (both run the same filling
// loop).
//
// All rates and capacities are in bits per second (any consistent unit
// works); Inf is a valid demand meaning "unbounded".
package maxmin

import (
	"math"
)

// Flow describes one flow for Allocate: the set of directed link indices it
// traverses and its demand (use math.Inf(1) for an unbounded flow).
type Flow struct {
	Links  []int
	Demand float64
}

// epsilon bounds for float comparisons; rates are O(1e9) so 1e-6 relative
// precision is ample.
const eps = 1e-9

// Allocate computes the max-min fair rate for each flow given per-link
// capacities. capacity is indexed by link id; every link id in a flow must
// be a valid index. A flow with no links is limited only by its demand. The
// returned slice is parallel to flows.
//
// The algorithm is progressive filling: all unfrozen flows' rates rise at
// the same pace; a flow freezes when it reaches its demand or when one of
// its links saturates. This terminates in at most len(flows) iterations.
func Allocate(capacity []float64, flows []Flow) []float64 {
	rates := make([]float64, len(flows))
	if len(flows) == 0 {
		return rates
	}
	remaining := make([]float64, len(capacity))
	active := make([]bool, len(flows))
	activeOnLink := make([]int, len(capacity))
	allocate(capacity, flows, rates, remaining, active, activeOnLink)
	return rates
}

// allocate is the shared progressive-filling body. All buffers must be
// sized exactly (rates/active to len(flows), remaining/activeOnLink to
// len(capacity)); their prior contents are ignored.
func allocate(capacity []float64, flows []Flow, rates, remaining []float64, active []bool, activeOnLink []int) {
	for i := range rates {
		rates[i] = 0
	}
	copy(remaining, capacity)
	for l := range activeOnLink {
		activeOnLink[l] = 0
	}
	nActive := 0
	for i, f := range flows {
		active[i] = false
		if f.Demand <= 0 {
			continue
		}
		active[i] = true
		nActive++
		for _, l := range f.Links {
			activeOnLink[l]++
		}
	}

	for nActive > 0 {
		// Largest uniform rate increment before a link saturates or a
		// flow's demand is met.
		inc := math.Inf(1)
		for l, n := range activeOnLink {
			if n > 0 {
				if d := remaining[l] / float64(n); d < inc {
					inc = d
				}
			}
		}
		for i, f := range flows {
			if active[i] && !math.IsInf(f.Demand, 1) {
				if d := f.Demand - rates[i]; d < inc {
					inc = d
				}
			}
		}
		if math.IsInf(inc, 1) {
			// Every active flow has infinite demand and no capacitated
			// links; their rate is unbounded.
			for i := range flows {
				if active[i] {
					rates[i] = math.Inf(1)
				}
			}
			break
		}
		if inc > 0 {
			for i := range flows {
				if active[i] {
					rates[i] += inc
				}
			}
			for l, n := range activeOnLink {
				if n > 0 {
					remaining[l] -= inc * float64(n)
				}
			}
		}

		// Freeze flows that hit their demand or sit on a saturated link.
		frozeAny := false
		for i, f := range flows {
			if !active[i] {
				continue
			}
			done := rates[i] >= f.Demand-eps
			if !done {
				for _, l := range f.Links {
					if remaining[l] <= eps*capacity[l]+eps {
						done = true
						break
					}
				}
			}
			if done {
				active[i] = false
				nActive--
				frozeAny = true
				for _, l := range f.Links {
					activeOnLink[l]--
				}
			}
		}
		if !frozeAny {
			// Defensive: numerical stall. Freeze the flow with the
			// tightest link to guarantee progress.
			for i := range flows {
				if active[i] {
					active[i] = false
					nActive--
					for _, l := range flows[i].Links {
						activeOnLink[l]--
					}
					break
				}
			}
		}
	}
}

// ShareOnLink returns the max-min fair share a new flow with unbounded
// demand would receive on a single link of the given capacity, where the
// existing flows on that link have the given demands (their current
// bandwidth shares, per §4.2). It equals water-filling capacity across
// existing demands plus one infinite demand.
func ShareOnLink(capacity float64, existing []float64) float64 {
	_, share := SharesWithNewFlow(capacity, existing, math.Inf(1))
	return share
}

// SharesWithNewFlow water-fills a single link of the given capacity across
// the existing flows (demand-capped at their current shares) plus one new
// flow with demand newDemand. It returns the new share of every existing
// flow (parallel to existing) and the share of the new flow.
//
// This is the per-link primitive behind both halves of the Flowserver's
// estimate: with newDemand = +Inf it yields the new flow's share on the
// link, and with newDemand = b_j (the path bottleneck share) it yields the
// updated shares of the existing flows.
func SharesWithNewFlow(capacity float64, existing []float64, newDemand float64) (newShares []float64, newFlowShare float64) {
	var a Alloc
	return a.SharesWithNewFlow(capacity, existing, newDemand)
}

// singleLink is the shared link set of every flow in the single-link
// estimators. Allocate only reads Flow.Links, so aliasing is safe.
var singleLink = []int{0}

// Alloc runs the same allocations as the package-level functions but keeps
// every scratch buffer between calls, so steady-state calls are
// allocation-free. The zero value is ready to use. Not safe for concurrent
// use; returned slices are scratch backed and valid until the next call.
type Alloc struct {
	flows        []Flow
	rates        []float64
	remaining    []float64
	active       []bool
	activeOnLink []int
	cap1         [1]float64
}

// Allocate is the scratch-reusing equivalent of the package-level Allocate.
// The returned slice is owned by the Alloc and overwritten by the next call.
func (a *Alloc) Allocate(capacity []float64, flows []Flow) []float64 {
	a.rates = sized(a.rates, len(flows))
	if len(flows) == 0 {
		return a.rates
	}
	a.remaining = sized(a.remaining, len(capacity))
	a.active = sized(a.active, len(flows))
	a.activeOnLink = sized(a.activeOnLink, len(capacity))
	allocate(capacity, flows, a.rates, a.remaining, a.active, a.activeOnLink)
	return a.rates
}

// SharesWithNewFlow is the scratch-reusing equivalent of the package-level
// SharesWithNewFlow. The newShares slice is owned by the Alloc and
// overwritten by the next call.
func (a *Alloc) SharesWithNewFlow(capacity float64, existing []float64, newDemand float64) (newShares []float64, newFlowShare float64) {
	a.flows = a.flows[:0]
	for _, d := range existing {
		a.flows = append(a.flows, Flow{Links: singleLink, Demand: d})
	}
	a.flows = append(a.flows, Flow{Links: singleLink, Demand: newDemand})
	a.cap1[0] = capacity
	rates := a.Allocate(a.cap1[:], a.flows)
	return rates[:len(existing)], rates[len(existing)]
}

// ShareOnLink is the scratch-reusing equivalent of the package-level
// ShareOnLink.
func (a *Alloc) ShareOnLink(capacity float64, existing []float64) float64 {
	_, share := a.SharesWithNewFlow(capacity, existing, math.Inf(1))
	return share
}

// sized returns s resized to n, reusing its backing array when possible.
func sized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
