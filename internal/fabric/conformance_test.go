package fabric_test

import (
	"sync/atomic"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/emunet"
	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/netsim"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// The conformance suite runs the same scenarios against every Backend
// implementation. A third backend (e.g. Mininet/tc) joins the evaluation
// by adding a constructor here and passing these tests.
func conformanceBackends() map[string]func(*topology.Topology) fabric.Backend {
	return map[string]func(*topology.Topology) fabric.Backend{
		"netsim": func(topo *topology.Topology) fabric.Backend {
			return netsim.New(topo)
		},
		"emunet": func(topo *topology.Topology) fabric.Backend {
			return emunet.NewFabric(emunet.NewWithClock(topo, fabric.NewScaledClock(8)))
		},
	}
}

func conformanceTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Config{
		Pods: 2, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: 8e6, EdgeAggLinkBps: 8e6, AggCoreLinkBps: 4e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func intraRackPath(t *testing.T, topo *topology.Topology) topology.Path {
	t.Helper()
	paths := topo.ShortestPaths(topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))
	if len(paths) == 0 {
		t.Fatal("no intra-rack path")
	}
	return paths[0]
}

// TestConformanceFlowLifecycle checks the heart of the contract on every
// backend: two flows sharing one 8 Mbps path each get the exact 4 Mbps
// max-min share, counters advance mid-flight, completions land when the
// share says they should, and counters for finished flows are evicted.
func TestConformanceFlowLifecycle(t *testing.T) {
	for name, mk := range conformanceBackends() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			topo := conformanceTopo(t)
			fab := mk(topo)
			path := intraRackPath(t, topo)

			const bits = 0.8e6 // 0.2s per flow at the 4 Mbps half-share
			var idA, idB fabric.FlowID
			var endA, endB float64
			fab.Schedule(0, func() {
				idA = fab.StartFlow(fabric.FlowConfig{Links: path, Bits: bits,
					OnComplete: func(e float64) { endA = e }})
				idB = fab.StartFlow(fabric.FlowConfig{Links: path, Bits: bits,
					OnComplete: func(e float64) { endB = e }})
				if idA == idB {
					t.Error("StartFlow reused a flow id")
				}
			})
			fab.Schedule(0.05, func() {
				if now := fab.Now(); now < 0.05 {
					t.Errorf("Schedule(0.05) callback ran at Now() = %.4f", now)
				}
				if n := fab.NumActiveFlows(); n != 2 {
					t.Errorf("NumActiveFlows mid-flight = %d, want 2", n)
				}
				for _, id := range []fabric.FlowID{idA, idB} {
					if r := fab.FlowRate(id); r < 3.9e6 || r > 4.1e6 {
						t.Errorf("FlowRate(%d) = %g, want the 4e6 fair half-share", id, r)
					}
				}
				if tr := fab.FlowTransferred(idA); tr <= 0 || tr >= bits {
					t.Errorf("FlowTransferred mid-flight = %g, want in (0, %g)", tr, bits)
				}
			})
			if err := fab.Run(); err != nil {
				t.Fatal(err)
			}
			// netsim lands both at exactly 0.2s; emunet pays chunk
			// quantization and OS-timer slop through the 8x clock.
			for _, end := range []float64{endA, endB} {
				if end < 0.19 || end > 0.5 {
					t.Errorf("completion at %.3fs, want ≈0.2s", end)
				}
			}
			if n := fab.NumActiveFlows(); n != 0 {
				t.Errorf("NumActiveFlows after Run = %d, want 0", n)
			}
			if r := fab.FlowRate(idA); r != 0 {
				t.Errorf("FlowRate of finished flow = %g, want 0", r)
			}
			if tr := fab.FlowTransferred(idA); tr != 0 {
				t.Errorf("FlowTransferred of evicted flow = %g, want 0", tr)
			}
			// Port counter: both flows crossed path[0], every bit credited.
			if lt := fab.LinkTransferred(path[0]); lt < 2*bits-1 || lt > 2*bits+1 {
				t.Errorf("LinkTransferred = %g, want %g", lt, 2*bits)
			}
		})
	}
}

// TestConformanceCancel: cancelling an in-flight flow frees its bandwidth,
// suppresses its completion callback, and lets Run terminate even though
// the flow's bits were never fully delivered.
func TestConformanceCancel(t *testing.T) {
	for name, mk := range conformanceBackends() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			topo := conformanceTopo(t)
			fab := mk(topo)
			path := intraRackPath(t, topo)

			var id fabric.FlowID
			completed := false
			fab.Schedule(0, func() {
				id = fab.StartFlow(fabric.FlowConfig{
					Links: path,
					Bits:  8e6, // 1s alone — far beyond the cancel point
					OnComplete: func(float64) {
						completed = true
					},
				})
			})
			fab.Schedule(0.05, func() {
				fab.CancelFlow(id)
				fab.CancelFlow(id) // idempotent
			})
			if err := fab.Run(); err != nil {
				t.Fatal(err)
			}
			if completed {
				t.Error("cancelled flow ran its completion callback")
			}
			if n := fab.NumActiveFlows(); n != 0 {
				t.Errorf("NumActiveFlows after cancel = %d, want 0", n)
			}
			if r := fab.FlowRate(id); r != 0 {
				t.Errorf("FlowRate of cancelled flow = %g, want 0", r)
			}
		})
	}
}

// TestConformanceRateNotify: the notification hook fires on each
// reallocation — admission, capacity change, and removal — on every
// backend.
func TestConformanceRateNotify(t *testing.T) {
	for name, mk := range conformanceBackends() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			topo := conformanceTopo(t)
			fab := mk(topo)
			path := intraRackPath(t, topo)

			var notifies atomic.Int64
			fab.SetRateNotify(func() { notifies.Add(1) })
			fab.Schedule(0, func() {
				fab.StartFlow(fabric.FlowConfig{Links: path, Bits: 0.4e6})
			})
			fab.Schedule(0.01, func() {
				fab.SetLinkCapacity(path[0], 4e6)
			})
			if err := fab.Run(); err != nil {
				t.Fatal(err)
			}
			// admission + capacity change + completion removal.
			if n := notifies.Load(); n < 3 {
				t.Errorf("rate notifications = %d, want >= 3", n)
			}
		})
	}
}
