package fabric

import (
	"math"

	"github.com/mayflower-dfs/mayflower/internal/maxmin"
)

// Table is the flow-table and arbiter plumbing shared by network
// backends built on maxmin: it tracks each admitted flow's link path in
// a dense, deterministic order (insertion order with swap-remove, like
// the simulator's active list) and recomputes every flow's max-min fair
// rate with reusable scratch, so reallocation allocates nothing in
// steady state. The emulator's arbiter is this table; the simulator
// keeps its own incremental component allocator (see DESIGN.md §8) but
// honours the identical sharing model, which is what cross-validation
// asserts.
//
// Table is not synchronized; owners serialize access (the emulator holds
// its network mutex).
type Table struct {
	capacity []float64
	ids      []uint64
	paths    [][]int
	pos      map[uint64]int
	rates    []float64

	scratch []maxmin.Flow
	alloc   maxmin.Alloc
}

// NewTable creates an empty table over the given per-link capacities
// (indexed by dense link id). The slice is copied.
func NewTable(capacity []float64) *Table {
	return &Table{
		capacity: append([]float64(nil), capacity...),
		pos:      make(map[uint64]int),
	}
}

// Len returns the number of admitted flows.
func (t *Table) Len() int { return len(t.ids) }

// NumLinks returns the number of links the table arbitrates over.
func (t *Table) NumLinks() int { return len(t.capacity) }

// Set admits a flow on a path of dense link indices, or replaces the
// path of an existing id. The links slice is retained; callers must not
// mutate it afterwards. Rates are stale until the next Reallocate.
func (t *Table) Set(id uint64, links []int) {
	if i, ok := t.pos[id]; ok {
		t.paths[i] = links
		return
	}
	t.pos[id] = len(t.ids)
	t.ids = append(t.ids, id)
	t.paths = append(t.paths, links)
	t.rates = append(t.rates, 0)
}

// Remove deletes a flow, reporting whether it was present. Rates are
// stale until the next Reallocate.
func (t *Table) Remove(id uint64) bool {
	i, ok := t.pos[id]
	if !ok {
		return false
	}
	last := len(t.ids) - 1
	t.ids[i] = t.ids[last]
	t.paths[i] = t.paths[last]
	t.rates[i] = t.rates[last]
	t.pos[t.ids[i]] = i
	t.ids = t.ids[:last]
	t.paths[last] = nil
	t.paths = t.paths[:last]
	t.rates = t.rates[:last]
	delete(t.pos, id)
	return true
}

// SetCapacity changes one link's capacity (bps >= 0). Rates are stale
// until the next Reallocate.
func (t *Table) SetCapacity(link int, bps float64) {
	t.capacity[link] = bps
}

// Capacity returns one link's current capacity.
func (t *Table) Capacity(link int) float64 { return t.capacity[link] }

// ValidLink reports whether a dense link index is within the table.
func (t *Table) ValidLink(link int) bool {
	return link >= 0 && link < len(t.capacity)
}

// Reallocate recomputes the max-min fair rate of every admitted flow
// (each demanding unbounded bandwidth — the steady-state behaviour of
// long TCP flows) by progressive filling over the current capacities.
// It is allocation-free in steady state.
func (t *Table) Reallocate() {
	flows := t.scratch[:0]
	for _, links := range t.paths {
		flows = append(flows, maxmin.Flow{Links: links, Demand: math.Inf(1)})
	}
	t.scratch = flows
	copy(t.rates, t.alloc.Allocate(t.capacity, flows))
}

// Rate returns a flow's rate as of the last Reallocate.
func (t *Table) Rate(id uint64) (float64, bool) {
	i, ok := t.pos[id]
	if !ok {
		return 0, false
	}
	return t.rates[i], true
}

// Each visits every admitted flow with its current rate, in the table's
// dense (deterministic) order. fn must not mutate the table.
func (t *Table) Each(fn func(id uint64, rate float64)) {
	for i, id := range t.ids {
		fn(id, t.rates[i])
	}
}
