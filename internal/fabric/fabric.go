// Package fabric defines the network-backend contract both halves of
// the Mayflower evaluation run on. The paper evaluates twice — a
// flow-level simulation (§6.2–6.6) and a Mininet prototype (§6.7) — and
// the credibility of every reported figure rests on the two agreeing.
// This package is the seam that makes that agreement systematic instead
// of incidental: the simulator (package netsim) and the emulator
// (package emunet) both implement Backend, so one driver (package
// experiment) runs every scheme unchanged on either substrate, and one
// fault injector (package chaos) cuts links on either substrate.
//
// The contract has four parts:
//
//   - Flow admission and removal on a directed link path, with a
//     completion callback (Backend.StartFlow / CancelFlow, or the
//     Admitter face for deployments that move their own bytes).
//
//   - Observability: the ground-truth per-flow rate, plus cumulative
//     per-flow and per-link byte counters — exactly what an OpenFlow
//     edge switch would export and what the Flowserver's stats polling
//     consumes (FlowRate, FlowTransferred, LinkTransferred).
//
//   - A pluggable clock (Clock): virtual event time in the simulator,
//     wall time — optionally compressed — in the emulator. All times
//     crossing the contract are float64 seconds since the backend's
//     origin.
//
//   - Change notification: SetRateNotify fires after any reallocation of
//     fair-share rates, and CounterSink receives byte credits as traffic
//     crosses links (the hook SDN switch agents hang off).
//
// Callback discipline: a backend never runs two driver callbacks
// (Schedule functions or flow OnComplete functions) concurrently, so a
// driver may keep unsynchronized state across them. The simulator gets
// this for free from its event loop; the emulator serializes callbacks
// explicitly. Relative ordering of callbacks scheduled at distinct times
// follows the clock; ordering within one instant is only deterministic
// on a virtual-time backend.
package fabric

import (
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// FlowID identifies a flow started on a Backend. IDs are assigned by the
// backend, unique within it, and never reused.
type FlowID int64

// FlowConfig describes a flow to start on a Backend.
type FlowConfig struct {
	// Links is the directed path the flow takes.
	Links []topology.LinkID
	// Bits is the amount of data to transfer.
	Bits float64
	// OnComplete, if non-nil, runs when the flow finishes, with the
	// completion time in backend seconds. It is a driver callback and is
	// serialized with all other driver callbacks.
	OnComplete func(endTime float64)
}

// Backend is a network substrate a driver can run a whole experiment
// trace on: it owns the clock, moves every admitted flow's bytes at the
// max-min fair share of the topology's links, and exposes the counters
// the control plane observes. netsim.Sim (virtual time, simulated bytes)
// and emunet.Fabric (wall or compressed time, real paced bytes) are the
// two implementations.
type Backend interface {
	// Topology returns the topology the backend runs over.
	Topology() *topology.Topology

	// Now returns the current backend time in seconds.
	Now() float64

	// Schedule runs fn at backend time t (>= Now) as a driver callback.
	Schedule(t float64, fn func())

	// StartFlow admits a flow at the current time and returns its id.
	// The backend moves the flow's bits at its fair share and invokes
	// cfg.OnComplete when the last bit lands.
	StartFlow(cfg FlowConfig) FlowID

	// CancelFlow removes a flow without running its completion callback.
	// Cancelling an unknown (or already finished) flow is a no-op.
	CancelFlow(id FlowID)

	// FlowRate returns the ground-truth current fair-share rate of a flow
	// in bits per second, or 0 if the flow is not active.
	FlowRate(id FlowID) float64

	// FlowTransferred returns the cumulative bits delivered for an active
	// flow: the per-flow byte counter an edge switch would export. It
	// returns 0 for unknown flows (counters for completed flows are gone,
	// as they are when a switch evicts a flow-table entry).
	FlowTransferred(id FlowID) float64

	// LinkTransferred returns the cumulative bits forwarded over a
	// directed link: the port byte counter of the switch driving it.
	LinkTransferred(id topology.LinkID) float64

	// SetLinkCapacity changes the capacity of one directed link
	// (bps >= 0; zero models a dead link, starving every flow crossing
	// it). Affected fair shares are recomputed.
	SetLinkCapacity(id topology.LinkID, bps float64)

	// NumActiveFlows returns the number of in-flight flows.
	NumActiveFlows() int

	// SetRateNotify installs fn to run after every fair-share
	// reallocation (admission, removal, capacity change). fn must be
	// fast and must not call back into the backend. nil uninstalls.
	SetRateNotify(fn func())

	// Run drives the backend until all scheduled work and all admitted
	// flows have completed. It returns an error if progress became
	// impossible (e.g. flows starved on a dead link with no further
	// events pending, on backends that can detect it).
	Run() error
}

// Admitter is the control-plane admission face of a backend whose bytes
// are moved by an external data plane — the emulator under the real
// testbed (dataservers stream bytes through its pacers), or a future
// Mininet/tc backend. The Flowserver's assignment hooks speak this
// interface; flow ids are chosen by the caller.
type Admitter interface {
	// RegisterFlow admits a flow on a path and recomputes fair rates.
	// Registering an existing id replaces its path.
	RegisterFlow(id uint64, path topology.Path) error
	// UnregisterFlow removes a flow and returns bandwidth to the others.
	// Unknown ids are a no-op.
	UnregisterFlow(id uint64)
	// FlowRate returns a flow's current fair rate in bits per second.
	FlowRate(id uint64) (float64, bool)
}

// CounterSink receives byte credits as traffic crosses directed links.
// It is the seam through which SDN switch agents (package sdn) mirror
// fabric traffic into their OpenFlow-style per-flow and per-port
// counters. Implementations must be safe for concurrent use; backends
// may invoke them with internal locks held, so a sink must not call back
// into the backend.
type CounterSink interface {
	CreditBytes(flowID uint64, link topology.LinkID, bytes uint64)
}
