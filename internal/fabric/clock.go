package fabric

import "time"

// Clock abstracts the passage of backend time for wall-clock backends:
// the emulator's pacers sleep on it and its scheduler fires events by
// it, so substituting a compressed clock shrinks an emulation's wall
// time without touching rates, sizes, or the timeline. (The simulator
// needs no Clock — its event loop is the clock.)
//
// All values are float64 seconds since the clock's origin, matching the
// rest of the fabric contract.
type Clock interface {
	// Now returns the current time in fabric seconds.
	Now() float64
	// Sleep blocks the caller for d fabric seconds (no-op for d <= 0).
	Sleep(d float64)
}

// wallClock maps fabric seconds onto the wall clock, optionally
// compressed: one wall second is speedup fabric seconds.
type wallClock struct {
	origin  time.Time
	speedup float64
}

// NewWallClock returns a real-time clock starting at zero now. This is
// the emulator's default: fabric seconds are wall seconds.
func NewWallClock() Clock { return NewScaledClock(1) }

// NewScaledClock returns a clock running speedup times faster than the
// wall clock, starting at zero now. A paced transfer that takes t fabric
// seconds occupies t/speedup wall seconds, so emulator tests can
// compress their timelines deterministically — every fabric-time
// quantity (rates, completion times, poll intervals) is unchanged, only
// the wall time spent waiting shrinks. Speedups much above ~10 start to
// run into OS sleep granularity; cross-validation tolerances should
// widen accordingly. A speedup <= 0 is treated as 1.
func NewScaledClock(speedup float64) Clock {
	if speedup <= 0 {
		speedup = 1
	}
	return &wallClock{origin: time.Now(), speedup: speedup}
}

func (c *wallClock) Now() float64 {
	return time.Since(c.origin).Seconds() * c.speedup
}

func (c *wallClock) Sleep(d float64) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(d / c.speedup * float64(time.Second)))
}
