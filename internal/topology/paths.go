package topology

// Path is an ordered sequence of directed links from a source host to a
// destination host.
type Path []LinkID

// PathNodes returns the node sequence a path traverses, starting at the
// first link's source node.
func (t *Topology) PathNodes(p Path) []NodeID {
	if len(p) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(p)+1)
	out = append(out, t.links[p[0]].From)
	for _, l := range p {
		out = append(out, t.links[l].To)
	}
	return out
}

// ValidPath reports whether p is a contiguous directed path from src to dst.
func (t *Topology) ValidPath(p Path, src, dst NodeID) bool {
	if len(p) == 0 {
		return src == dst
	}
	if t.links[p[0]].From != src || t.links[p[len(p)-1]].To != dst {
		return false
	}
	for i := 1; i < len(p); i++ {
		if t.links[p[i]].From != t.links[p[i-1]].To {
			return false
		}
	}
	return true
}

// ShortestPaths enumerates every shortest path from the host src to the
// host dst, following the Mayflower restriction to shortest paths only
// (§4.2): paths have 2 links within a rack, 4 links within a pod (one per
// aggregation switch), and 6 links across pods (one per aggregation switch
// pair and core switch combination). It returns nil when src == dst.
//
// Results are memoized per (src, dst): the topology is immutable, so the
// Flowserver's per-request path enumeration amortizes to a map lookup. The
// returned paths are shared across callers and must not be modified.
//
// ShortestPaths is safe for concurrent use: parallel experiment cells
// share one topology (and therefore one path cache), so the memo map is
// guarded by pathMu, and a double-check under the write lock makes every
// caller — including concurrent first callers racing to fill the same
// entry — observe the one canonical slice for a host pair.
func (t *Topology) ShortestPaths(src, dst NodeID) []Path {
	if src == dst {
		return nil
	}
	key := hostPair{src, dst}
	t.pathMu.RLock()
	ps, ok := t.pathCache[key]
	t.pathMu.RUnlock()
	if ok {
		return ps
	}
	built := t.buildShortestPaths(src, dst)
	t.pathMu.Lock()
	ps, ok = t.pathCache[key]
	if !ok {
		ps = built
		t.pathCache[key] = ps
	}
	t.pathMu.Unlock()
	return ps
}

// buildShortestPaths constructs the path set for one host pair.
func (t *Topology) buildShortestPaths(src, dst NodeID) []Path {
	ns, nd := t.nodes[src], t.nodes[dst]
	if ns.Kind != KindHost || nd.Kind != KindHost {
		panic("topology: ShortestPaths requires host endpoints")
	}
	srcEdge, dstEdge := t.EdgeOf(src), t.EdgeOf(dst)

	mustLink := func(a, b NodeID) LinkID {
		id, ok := t.linkBetween[a][b]
		if !ok {
			panic("topology: missing link " + t.nodes[a].Name + " -> " + t.nodes[b].Name)
		}
		return id
	}

	up := mustLink(src, srcEdge)
	down := mustLink(dstEdge, dst)

	if t.SameRack(src, dst) {
		return []Path{{up, down}}
	}

	if t.SamePod(src, dst) {
		paths := make([]Path, 0, t.cfg.AggsPerPod)
		for _, agg := range t.aggs[ns.Pod] {
			paths = append(paths, Path{
				up,
				mustLink(srcEdge, agg),
				mustLink(agg, dstEdge),
				down,
			})
		}
		return paths
	}

	paths := make([]Path, 0, t.cfg.AggsPerPod*t.cfg.Cores*t.cfg.AggsPerPod)
	for _, aggUp := range t.aggs[ns.Pod] {
		for _, core := range t.cores {
			for _, aggDown := range t.aggs[nd.Pod] {
				paths = append(paths, Path{
					up,
					mustLink(srcEdge, aggUp),
					mustLink(aggUp, core),
					mustLink(core, aggDown),
					mustLink(aggDown, dstEdge),
					down,
				})
			}
		}
	}
	return paths
}

// UplinkOf returns the directed host-to-edge link for a host.
func (t *Topology) UplinkOf(host NodeID) LinkID {
	id, ok := t.linkBetween[host][t.EdgeOf(host)]
	if !ok {
		panic("topology: host has no uplink")
	}
	return id
}

// DownlinkOf returns the directed edge-to-host link for a host.
func (t *Topology) DownlinkOf(host NodeID) LinkID {
	id, ok := t.linkBetween[t.EdgeOf(host)][host]
	if !ok {
		panic("topology: host has no downlink")
	}
	return id
}

// EdgeUplinks returns the directed links from a host's edge switch toward
// the aggregation tier. Sinbad-R uses the utilization of these core-facing
// links when estimating a replica's available read bandwidth (§6.2).
func (t *Topology) EdgeUplinks(host NodeID) []LinkID {
	n := t.nodes[host]
	edge := t.edges[n.Pod][n.Rack]
	out := make([]LinkID, 0, t.cfg.AggsPerPod)
	for _, agg := range t.aggs[n.Pod] {
		if id, ok := t.linkBetween[edge][agg]; ok {
			out = append(out, id)
		}
	}
	return out
}
