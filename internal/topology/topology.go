// Package topology models a three-tier (edge/aggregation/core) datacenter
// network as used in the Mayflower evaluation (ICDCS 2016, §6.1): hosts are
// grouped into racks behind edge (top-of-rack) switches, racks are grouped
// into pods behind aggregation switches, and pods are interconnected by core
// switches. The package provides the structural queries the rest of the
// system needs: node and link lookup, rack/pod locality predicates, hop
// distance, and exhaustive shortest-path enumeration between hosts.
//
// All link capacities are expressed in bits per second, and all links are
// directed: a physical cable between two switches is represented by two
// Link values, one per direction. Flow-level bandwidth sharing only ever
// contends on directed links, which is what makes read traffic (server to
// client) distinguishable from write traffic.
package topology

import (
	"fmt"
	"strconv"
	"sync"
)

// NodeKind identifies the tier a node belongs to.
type NodeKind int

// Node kinds, from the bottom of the tree up.
const (
	KindHost NodeKind = iota + 1
	KindEdge
	KindAgg
	KindCore
)

// String returns a short human-readable tier name.
func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindEdge:
		return "edge"
	case KindAgg:
		return "agg"
	case KindCore:
		return "core"
	default:
		return "unknown(" + strconv.Itoa(int(k)) + ")"
	}
}

// NodeID is a dense index into the topology's node table.
type NodeID int

// LinkID is a dense index into the topology's directed-link table.
type LinkID int

// Node is a host or switch in the network.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string

	// Pod is the pod index for hosts, edge and aggregation switches;
	// -1 for core switches.
	Pod int
	// Rack is the rack index within the pod for hosts and edge switches;
	// -1 for aggregation and core switches.
	Rack int
	// Index is the node's index within its grouping (host within rack,
	// edge within pod, agg within pod, core overall).
	Index int
}

// Link is a directed network link with a fixed capacity in bits per second.
type Link struct {
	ID       LinkID
	From, To NodeID
	Capacity float64
}

// Config describes a three-tier topology to build.
type Config struct {
	// Pods is the number of pods (aggregation groups).
	Pods int
	// RacksPerPod is the number of racks (edge switches) in each pod.
	RacksPerPod int
	// HostsPerRack is the number of hosts attached to each edge switch.
	HostsPerRack int
	// AggsPerPod is the number of aggregation switches per pod. Every edge
	// switch in a pod connects to every aggregation switch in that pod.
	AggsPerPod int
	// Cores is the number of core switches. Every aggregation switch
	// connects to every core switch.
	Cores int

	// EdgeLinkBps is the capacity of each host-to-edge link.
	EdgeLinkBps float64
	// EdgeAggLinkBps is the capacity of each edge-to-aggregation link.
	EdgeAggLinkBps float64
	// AggCoreLinkBps is the capacity of each aggregation-to-core link.
	AggCoreLinkBps float64
}

// Validate reports whether the configuration is structurally usable.
func (c Config) Validate() error {
	switch {
	case c.Pods < 1:
		return fmt.Errorf("topology: Pods must be >= 1, got %d", c.Pods)
	case c.RacksPerPod < 1:
		return fmt.Errorf("topology: RacksPerPod must be >= 1, got %d", c.RacksPerPod)
	case c.HostsPerRack < 1:
		return fmt.Errorf("topology: HostsPerRack must be >= 1, got %d", c.HostsPerRack)
	case c.AggsPerPod < 1:
		return fmt.Errorf("topology: AggsPerPod must be >= 1, got %d", c.AggsPerPod)
	case c.Cores < 1:
		return fmt.Errorf("topology: Cores must be >= 1, got %d", c.Cores)
	case c.EdgeLinkBps <= 0:
		return fmt.Errorf("topology: EdgeLinkBps must be > 0, got %g", c.EdgeLinkBps)
	case c.EdgeAggLinkBps <= 0:
		return fmt.Errorf("topology: EdgeAggLinkBps must be > 0, got %g", c.EdgeAggLinkBps)
	case c.AggCoreLinkBps <= 0:
		return fmt.Errorf("topology: AggCoreLinkBps must be > 0, got %g", c.AggCoreLinkBps)
	}
	return nil
}

// Mbps converts megabits per second to bits per second.
func Mbps(v float64) float64 { return v * 1e6 }

// Gbps converts gigabits per second to bits per second.
func Gbps(v float64) float64 { return v * 1e9 }

// PaperTestbed returns the configuration of the Mayflower evaluation
// testbed: 64 hosts in 4 pods of 4 racks of 4 hosts, 2 aggregation switches
// per pod, 2 core switches, and 1 Gbps edge links.
//
// The edge-to-aggregation tier is provisioned at a fixed 2:1
// oversubscription; the aggregation-to-core tier capacity is derived from
// the requested overall core-to-rack oversubscription ratio (8, 16 or 24 in
// the paper, §6.6), which makes the core the most oversubscribed tier, in
// line with the traffic study the paper cites (§6.4: "the core tier ... is
// the most oversubscribed").
func PaperTestbed(oversubscription float64) Config {
	const (
		pods         = 4
		racksPerPod  = 4
		hostsPerRack = 4
		aggsPerPod   = 2
		cores        = 2
		edgeAggRatio = 2.0
	)
	edge := Gbps(1)
	// Rack host bandwidth / rack uplink bandwidth = edgeAggRatio.
	hostBwPerRack := float64(hostsPerRack) * edge
	edgeAgg := hostBwPerRack / edgeAggRatio / float64(aggsPerPod)
	// Overall core-to-rack ratio = rack host bandwidth / rack share of the
	// pod's core capacity. Pod core capacity = aggsPerPod*cores*aggCore.
	podHostBw := float64(racksPerPod) * hostBwPerRack
	podCoreBw := podHostBw / oversubscription
	aggCore := podCoreBw / float64(aggsPerPod*cores)
	return Config{
		Pods:           pods,
		RacksPerPod:    racksPerPod,
		HostsPerRack:   hostsPerRack,
		AggsPerPod:     aggsPerPod,
		Cores:          cores,
		EdgeLinkBps:    edge,
		EdgeAggLinkBps: edgeAgg,
		AggCoreLinkBps: aggCore,
	}
}

// Topology is an immutable three-tier network graph.
type Topology struct {
	cfg   Config
	nodes []Node
	links []Link

	hosts []NodeID // all hosts, in construction order
	cores []NodeID

	// edges[pod][rack], aggs[pod][i] index switch nodes.
	edges [][]NodeID
	aggs  [][]NodeID

	// linkBetween[from] maps destination node to the directed link id.
	linkBetween []map[NodeID]LinkID

	// pathCache memoizes ShortestPaths results per host pair. The graph is
	// immutable, so entries never invalidate; the lock only guards the map
	// itself (cached paths are shared and must be treated as read-only).
	pathMu    sync.RWMutex
	pathCache map[hostPair][]Path
}

// hostPair keys the shortest-path cache.
type hostPair struct{ src, dst NodeID }

// New builds the topology described by cfg.
func New(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{cfg: cfg, pathCache: make(map[hostPair][]Path)}

	addNode := func(kind NodeKind, name string, pod, rack, index int) NodeID {
		id := NodeID(len(t.nodes))
		t.nodes = append(t.nodes, Node{
			ID:    id,
			Kind:  kind,
			Name:  name,
			Pod:   pod,
			Rack:  rack,
			Index: index,
		})
		return id
	}

	t.edges = make([][]NodeID, cfg.Pods)
	t.aggs = make([][]NodeID, cfg.Pods)
	for p := 0; p < cfg.Pods; p++ {
		t.edges[p] = make([]NodeID, cfg.RacksPerPod)
		for r := 0; r < cfg.RacksPerPod; r++ {
			name := fmt.Sprintf("edge-p%d-r%d", p, r)
			t.edges[p][r] = addNode(KindEdge, name, p, r, r)
			for h := 0; h < cfg.HostsPerRack; h++ {
				hname := fmt.Sprintf("host-p%d-r%d-h%d", p, r, h)
				id := addNode(KindHost, hname, p, r, h)
				t.hosts = append(t.hosts, id)
			}
		}
		t.aggs[p] = make([]NodeID, cfg.AggsPerPod)
		for a := 0; a < cfg.AggsPerPod; a++ {
			name := fmt.Sprintf("agg-p%d-a%d", p, a)
			t.aggs[p][a] = addNode(KindAgg, name, p, -1, a)
		}
	}
	t.cores = make([]NodeID, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		t.cores[c] = addNode(KindCore, fmt.Sprintf("core-%d", c), -1, -1, c)
	}

	t.linkBetween = make([]map[NodeID]LinkID, len(t.nodes))
	for i := range t.linkBetween {
		t.linkBetween[i] = make(map[NodeID]LinkID)
	}
	addPair := func(a, b NodeID, capacity float64) {
		for _, dir := range [2][2]NodeID{{a, b}, {b, a}} {
			id := LinkID(len(t.links))
			t.links = append(t.links, Link{ID: id, From: dir[0], To: dir[1], Capacity: capacity})
			t.linkBetween[dir[0]][dir[1]] = id
		}
	}

	for p := 0; p < cfg.Pods; p++ {
		for r := 0; r < cfg.RacksPerPod; r++ {
			edge := t.edges[p][r]
			for h := 0; h < cfg.HostsPerRack; h++ {
				host := t.HostAt(p, r, h)
				addPair(host, edge, cfg.EdgeLinkBps)
			}
			for a := 0; a < cfg.AggsPerPod; a++ {
				addPair(edge, t.aggs[p][a], cfg.EdgeAggLinkBps)
			}
		}
		for a := 0; a < cfg.AggsPerPod; a++ {
			for c := 0; c < cfg.Cores; c++ {
				addPair(t.aggs[p][a], t.cores[c], cfg.AggCoreLinkBps)
			}
		}
	}
	return t, nil
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// NumNodes returns the total number of nodes (hosts and switches).
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks returns the total number of directed links.
func (t *Topology) NumLinks() int { return len(t.links) }

// NumHosts returns the number of hosts.
func (t *Topology) NumHosts() int { return len(t.hosts) }

// Node returns the node with the given id.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Link returns the directed link with the given id.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Links returns a copy of all directed links.
func (t *Topology) Links() []Link {
	out := make([]Link, len(t.links))
	copy(out, t.links)
	return out
}

// Hosts returns a copy of all host node ids, ordered by pod, rack, index.
func (t *Topology) Hosts() []NodeID {
	out := make([]NodeID, len(t.hosts))
	copy(out, t.hosts)
	return out
}

// HostAt returns the host at (pod, rack, index within rack).
func (t *Topology) HostAt(pod, rack, idx int) NodeID {
	per := t.cfg.HostsPerRack
	i := (pod*t.cfg.RacksPerPod+rack)*per + idx
	return t.hosts[i]
}

// HostIndex returns a dense 0-based index for a host node id, suitable for
// array-backed per-host state. It panics if id is not a host.
func (t *Topology) HostIndex(id NodeID) int {
	n := t.nodes[id]
	if n.Kind != KindHost {
		panic("topology: HostIndex called on " + n.Kind.String())
	}
	return (n.Pod*t.cfg.RacksPerPod+n.Rack)*t.cfg.HostsPerRack + n.Index
}

// EdgeOf returns the edge (top-of-rack) switch for a host.
func (t *Topology) EdgeOf(host NodeID) NodeID {
	n := t.nodes[host]
	return t.edges[n.Pod][n.Rack]
}

// EdgeSwitches returns all edge switch ids ordered by pod then rack.
func (t *Topology) EdgeSwitches() []NodeID {
	var out []NodeID
	for _, pod := range t.edges {
		out = append(out, pod...)
	}
	return out
}

// AggSwitches returns all aggregation switch ids ordered by pod then index.
func (t *Topology) AggSwitches() []NodeID {
	var out []NodeID
	for _, pod := range t.aggs {
		out = append(out, pod...)
	}
	return out
}

// CoreSwitches returns all core switch ids.
func (t *Topology) CoreSwitches() []NodeID {
	out := make([]NodeID, len(t.cores))
	copy(out, t.cores)
	return out
}

// LinkBetween returns the directed link from one node to an adjacent node.
// The second return value is false if the nodes are not adjacent.
func (t *Topology) LinkBetween(from, to NodeID) (LinkID, bool) {
	id, ok := t.linkBetween[from][to]
	return id, ok
}

// SameRack reports whether two hosts are in the same rack.
func (t *Topology) SameRack(a, b NodeID) bool {
	na, nb := t.nodes[a], t.nodes[b]
	return na.Pod == nb.Pod && na.Rack == nb.Rack
}

// SamePod reports whether two hosts are in the same pod.
func (t *Topology) SamePod(a, b NodeID) bool {
	return t.nodes[a].Pod == t.nodes[b].Pod
}

// Distance returns the number of directed links on a shortest path between
// two hosts: 0 if they are the same host, 2 within a rack, 4 within a pod,
// and 6 across pods.
func (t *Topology) Distance(a, b NodeID) int {
	switch {
	case a == b:
		return 0
	case t.SameRack(a, b):
		return 2
	case t.SamePod(a, b):
		return 4
	default:
		return 6
	}
}
