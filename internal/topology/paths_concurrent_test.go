package topology

import (
	"reflect"
	"sync"
	"testing"
)

// TestShortestPathsConcurrent hammers the shortest-path memo from many
// goroutines at once — the access pattern of a parallel figure sweep
// whose cells share one topology. Run under -race it fails on any
// unsynchronized access to the memo map (the pre-RWMutex code raced
// here), and the canonical-slice invariant below fails if two racing
// first callers could each install their own copy of an entry.
func TestShortestPathsConcurrent(t *testing.T) {
	topo := testTopo(t)
	hosts := topo.Hosts()

	// Sequential reference on a second, identical topology.
	ref, err := New(PaperTestbed(8))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	first := make([][][]Path, workers) // worker -> pair -> paths
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every worker walks every ordered host pair, twice: the
			// first pass races on cold cache entries, the second pass
			// must hit the memo.
			for pass := 0; pass < 2; pass++ {
				var got [][]Path
				for _, src := range hosts {
					for _, dst := range hosts {
						if src == dst {
							continue
						}
						got = append(got, topo.ShortestPaths(src, dst))
					}
				}
				if pass == 0 {
					first[w] = got
				}
			}
		}()
	}
	wg.Wait()

	// Canonical-slice invariant: all workers saw the exact same slice
	// (not just equal contents) for every pair, and a post-race lookup
	// returns it too.
	i := 0
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			canon := topo.ShortestPaths(src, dst)
			for w := 0; w < workers; w++ {
				if &first[w][i][0] != &canon[0] {
					t.Fatalf("worker %d saw a non-canonical path set for pair %d", w, i)
				}
			}
			// Contents must match an independently built topology.
			want := ref.ShortestPaths(src, dst)
			if !reflect.DeepEqual(canon, want) {
				t.Fatalf("concurrent fill corrupted paths for %v->%v", src, dst)
			}
			if !topo.ValidPath(canon[0], src, dst) {
				t.Fatalf("invalid memoized path for %v->%v", src, dst)
			}
			i++
		}
	}
}
