package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testTopo(t *testing.T) *Topology {
	t.Helper()
	topo, err := New(PaperTestbed(8))
	if err != nil {
		t.Fatalf("New(PaperTestbed(8)): %v", err)
	}
	return topo
}

func TestPaperTestbedShape(t *testing.T) {
	topo := testTopo(t)

	if got, want := topo.NumHosts(), 64; got != want {
		t.Errorf("NumHosts = %d, want %d", got, want)
	}
	// 4 pods * (4 edge + 2 agg) + 2 core = 26 switches.
	if got, want := topo.NumNodes(), 64+26; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
	// Directed links: 64 host links + 4*4*2 edge-agg + 4*2*2 agg-core,
	// each doubled.
	if got, want := topo.NumLinks(), 2*(64+32+16); got != want {
		t.Errorf("NumLinks = %d, want %d", got, want)
	}
	if got, want := len(topo.EdgeSwitches()), 16; got != want {
		t.Errorf("len(EdgeSwitches) = %d, want %d", got, want)
	}
	if got, want := len(topo.AggSwitches()), 8; got != want {
		t.Errorf("len(AggSwitches) = %d, want %d", got, want)
	}
	if got, want := len(topo.CoreSwitches()), 2; got != want {
		t.Errorf("len(CoreSwitches) = %d, want %d", got, want)
	}
}

func TestPaperTestbedOversubscription(t *testing.T) {
	tests := []struct {
		oversub     float64
		wantAggCore float64
	}{
		// Pod host bandwidth is 16 Gbps over 4 agg-core links.
		{oversub: 8, wantAggCore: Mbps(500)},
		{oversub: 16, wantAggCore: Mbps(250)},
		{oversub: 24, wantAggCore: Mbps(500) / 3},
	}
	for _, tt := range tests {
		cfg := PaperTestbed(tt.oversub)
		if got := cfg.AggCoreLinkBps; !closeTo(got, tt.wantAggCore, 1) {
			t.Errorf("oversub %g: AggCoreLinkBps = %g, want %g", tt.oversub, got, tt.wantAggCore)
		}
		if got, want := cfg.EdgeAggLinkBps, Gbps(1); !closeTo(got, want, 1) {
			t.Errorf("oversub %g: EdgeAggLinkBps = %g, want %g", tt.oversub, got, want)
		}
		if got, want := cfg.EdgeLinkBps, Gbps(1); got != want {
			t.Errorf("oversub %g: EdgeLinkBps = %g, want %g", tt.oversub, got, want)
		}
	}
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestConfigValidate(t *testing.T) {
	valid := PaperTestbed(8)
	if err := valid.Validate(); err != nil {
		t.Fatalf("Validate(valid) = %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero pods", func(c *Config) { c.Pods = 0 }},
		{"zero racks", func(c *Config) { c.RacksPerPod = 0 }},
		{"zero hosts", func(c *Config) { c.HostsPerRack = 0 }},
		{"zero aggs", func(c *Config) { c.AggsPerPod = 0 }},
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"zero edge bw", func(c *Config) { c.EdgeLinkBps = 0 }},
		{"negative edge-agg bw", func(c *Config) { c.EdgeAggLinkBps = -1 }},
		{"zero agg-core bw", func(c *Config) { c.AggCoreLinkBps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate() = nil, want error")
			}
			if _, err := New(cfg); err == nil {
				t.Errorf("New() = nil error, want error")
			}
		})
	}
}

func TestHostAtRoundTrip(t *testing.T) {
	topo := testTopo(t)
	cfg := topo.Config()
	for p := 0; p < cfg.Pods; p++ {
		for r := 0; r < cfg.RacksPerPod; r++ {
			for h := 0; h < cfg.HostsPerRack; h++ {
				id := topo.HostAt(p, r, h)
				n := topo.Node(id)
				if n.Kind != KindHost {
					t.Fatalf("HostAt(%d,%d,%d) kind = %v", p, r, h, n.Kind)
				}
				if n.Pod != p || n.Rack != r || n.Index != h {
					t.Fatalf("HostAt(%d,%d,%d) = pod %d rack %d idx %d", p, r, h, n.Pod, n.Rack, n.Index)
				}
				if got := topo.HostIndex(id); got != (p*cfg.RacksPerPod+r)*cfg.HostsPerRack+h {
					t.Fatalf("HostIndex(%v) = %d", id, got)
				}
			}
		}
	}
}

func TestLocalityPredicates(t *testing.T) {
	topo := testTopo(t)
	a := topo.HostAt(0, 0, 0)
	sameRack := topo.HostAt(0, 0, 3)
	samePod := topo.HostAt(0, 2, 1)
	otherPod := topo.HostAt(3, 1, 0)

	tests := []struct {
		name     string
		b        NodeID
		sameRack bool
		samePod  bool
		distance int
	}{
		{"self", a, true, true, 0},
		{"same rack", sameRack, true, true, 2},
		{"same pod", samePod, false, true, 4},
		{"other pod", otherPod, false, false, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := topo.SameRack(a, tt.b); got != tt.sameRack {
				t.Errorf("SameRack = %v, want %v", got, tt.sameRack)
			}
			if got := topo.SamePod(a, tt.b); got != tt.samePod {
				t.Errorf("SamePod = %v, want %v", got, tt.samePod)
			}
			if got := topo.Distance(a, tt.b); got != tt.distance {
				t.Errorf("Distance = %d, want %d", got, tt.distance)
			}
		})
	}
}

func TestLinkBetweenSymmetry(t *testing.T) {
	topo := testTopo(t)
	for _, l := range topo.Links() {
		back, ok := topo.LinkBetween(l.To, l.From)
		if !ok {
			t.Fatalf("no reverse link for %v", l)
		}
		rl := topo.Link(back)
		if rl.Capacity != l.Capacity {
			t.Fatalf("asymmetric capacity: %v vs %v", l, rl)
		}
	}
}

func TestEdgeOf(t *testing.T) {
	topo := testTopo(t)
	for _, h := range topo.Hosts() {
		edge := topo.EdgeOf(h)
		ne, nh := topo.Node(edge), topo.Node(h)
		if ne.Kind != KindEdge {
			t.Fatalf("EdgeOf(%v).Kind = %v", h, ne.Kind)
		}
		if ne.Pod != nh.Pod || ne.Rack != nh.Rack {
			t.Fatalf("EdgeOf(%v) in pod %d rack %d, host in pod %d rack %d",
				h, ne.Pod, ne.Rack, nh.Pod, nh.Rack)
		}
		if _, ok := topo.LinkBetween(h, edge); !ok {
			t.Fatalf("host %v not adjacent to its edge switch", h)
		}
	}
}

func TestUplinkDownlink(t *testing.T) {
	topo := testTopo(t)
	h := topo.HostAt(1, 2, 3)
	up := topo.Link(topo.UplinkOf(h))
	if up.From != h || up.To != topo.EdgeOf(h) {
		t.Errorf("UplinkOf = %+v", up)
	}
	down := topo.Link(topo.DownlinkOf(h))
	if down.From != topo.EdgeOf(h) || down.To != h {
		t.Errorf("DownlinkOf = %+v", down)
	}
	ups := topo.EdgeUplinks(h)
	if len(ups) != topo.Config().AggsPerPod {
		t.Fatalf("len(EdgeUplinks) = %d, want %d", len(ups), topo.Config().AggsPerPod)
	}
	for _, id := range ups {
		l := topo.Link(id)
		if l.From != topo.EdgeOf(h) || topo.Node(l.To).Kind != KindAgg {
			t.Errorf("EdgeUplinks contains %+v", l)
		}
	}
}

func TestShortestPathsCounts(t *testing.T) {
	topo := testTopo(t)
	a := topo.HostAt(0, 0, 0)

	tests := []struct {
		name      string
		b         NodeID
		wantPaths int
		wantLen   int
	}{
		{"same rack", topo.HostAt(0, 0, 1), 1, 2},
		{"same pod", topo.HostAt(0, 3, 0), 2, 4},
		{"cross pod", topo.HostAt(2, 0, 0), 8, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			paths := topo.ShortestPaths(a, tt.b)
			if len(paths) != tt.wantPaths {
				t.Fatalf("got %d paths, want %d", len(paths), tt.wantPaths)
			}
			for _, p := range paths {
				if len(p) != tt.wantLen {
					t.Errorf("path length %d, want %d", len(p), tt.wantLen)
				}
				if !topo.ValidPath(p, a, tt.b) {
					t.Errorf("invalid path %v", p)
				}
			}
		})
	}

	if got := topo.ShortestPaths(a, a); got != nil {
		t.Errorf("ShortestPaths(a, a) = %v, want nil", got)
	}
}

func TestShortestPathsDistinct(t *testing.T) {
	topo := testTopo(t)
	a, b := topo.HostAt(0, 0, 0), topo.HostAt(1, 1, 1)
	seen := make(map[string]bool)
	for _, p := range topo.ShortestPaths(a, b) {
		key := ""
		for _, l := range p {
			key += "," + topo.Node(topo.Link(l).From).Name
		}
		if seen[key] {
			t.Fatalf("duplicate path %s", key)
		}
		seen[key] = true
	}
}

// TestShortestPathsProperty checks, for random host pairs, that every
// enumerated path is a valid directed path of the expected length and that
// the path count matches the combinatorial expectation.
func TestShortestPathsProperty(t *testing.T) {
	topo := testTopo(t)
	cfg := topo.Config()
	hosts := topo.Hosts()

	f := func(ai, bi uint16) bool {
		a := hosts[int(ai)%len(hosts)]
		b := hosts[int(bi)%len(hosts)]
		paths := topo.ShortestPaths(a, b)
		switch topo.Distance(a, b) {
		case 0:
			return paths == nil
		case 2:
			if len(paths) != 1 {
				return false
			}
		case 4:
			if len(paths) != cfg.AggsPerPod {
				return false
			}
		case 6:
			if len(paths) != cfg.AggsPerPod*cfg.Cores*cfg.AggsPerPod {
				return false
			}
		}
		for _, p := range paths {
			if len(p) != topo.Distance(a, b) {
				return false
			}
			if !topo.ValidPath(p, a, b) {
				return false
			}
		}
		return true
	}
	cfgQ := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(42)),
	}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Error(err)
	}
}

func TestPathNodes(t *testing.T) {
	topo := testTopo(t)
	a, b := topo.HostAt(0, 0, 0), topo.HostAt(1, 0, 0)
	p := topo.ShortestPaths(a, b)[0]
	nodes := topo.PathNodes(p)
	if len(nodes) != len(p)+1 {
		t.Fatalf("len(nodes) = %d, want %d", len(nodes), len(p)+1)
	}
	if nodes[0] != a || nodes[len(nodes)-1] != b {
		t.Fatalf("path endpoints = %v..%v, want %v..%v", nodes[0], nodes[len(nodes)-1], a, b)
	}
	wantKinds := []NodeKind{KindHost, KindEdge, KindAgg, KindCore, KindAgg, KindEdge, KindHost}
	for i, n := range nodes {
		if topo.Node(n).Kind != wantKinds[i] {
			t.Errorf("node %d kind = %v, want %v", i, topo.Node(n).Kind, wantKinds[i])
		}
	}
	if topo.PathNodes(nil) != nil {
		t.Error("PathNodes(nil) != nil")
	}
}

func TestValidPathRejects(t *testing.T) {
	topo := testTopo(t)
	a, b := topo.HostAt(0, 0, 0), topo.HostAt(1, 0, 0)
	p := topo.ShortestPaths(a, b)[0]

	if topo.ValidPath(p, b, a) {
		t.Error("ValidPath accepted reversed endpoints")
	}
	// Swap two middle links to break contiguity.
	broken := make(Path, len(p))
	copy(broken, p)
	broken[1], broken[2] = broken[2], broken[1]
	if topo.ValidPath(broken, a, b) {
		t.Error("ValidPath accepted non-contiguous path")
	}
	if !topo.ValidPath(nil, a, a) {
		t.Error("ValidPath rejected empty self-path")
	}
	if topo.ValidPath(nil, a, b) {
		t.Error("ValidPath accepted empty path between distinct hosts")
	}
}

func TestNodeKindString(t *testing.T) {
	tests := []struct {
		kind NodeKind
		want string
	}{
		{KindHost, "host"},
		{KindEdge, "edge"},
		{KindAgg, "agg"},
		{KindCore, "core"},
		{NodeKind(99), "unknown(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}
