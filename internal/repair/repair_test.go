package repair

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// fixture is a nameserver plus dataservers with heartbeats flowing.
type fixture struct {
	svc     *nameserver.Service
	nsAddr  string
	servers []*dataserver.Server
}

// startFixture boots a nameserver RPC endpoint and n dataservers spread
// over n racks, each heartbeating every 20 ms.
func startFixture(t *testing.T, n int) *fixture {
	t.Helper()
	store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	svc, err := nameserver.NewService(store, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	nsSrv := wire.NewServer()
	if err := nameserver.RegisterRPC(nsSrv, svc); err != nil {
		t.Fatal(err)
	}
	nsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go nsSrv.Serve(nsLn)
	t.Cleanup(func() { nsSrv.Close() })

	f := &fixture{svc: svc, nsAddr: nsLn.Addr().String()}
	for i := 0; i < n; i++ {
		ds, err := dataserver.New(dataserver.Config{
			ID:                fmt.Sprintf("ds-%d", i),
			Root:              t.TempDir(),
			Host:              fmt.Sprintf("host-p0-r%d-h0", i),
			Rack:              i,
			HeartbeatInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dataLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Start(ctlLn, dataLn, f.nsAddr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		f.servers = append(f.servers, ds)
	}
	return f
}

// createFile creates and fills a 3-replica file on servers 0, 1, 2.
func createFile(t *testing.T, f *fixture, name string, payload []byte) nameserver.FileInfo {
	t.Helper()
	fi, err := f.svc.Create(name, nameserver.CreateOptions{
		ChunkSize:         64,
		PreferredReplicas: []string{"ds-0", "ds-1", "ds-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cc := rpc.NewPeer(fi.Primary().ControlAddr, rpc.Options{})
	defer cc.Close()
	var out struct{}
	if err := cc.Call(context.Background(), dataserver.MethodPrepare,
		dataserver.PrepareArgs{Info: fi, Relay: true}, &out); err != nil {
		t.Fatal(err)
	}
	var reply dataserver.AppendReply
	if err := cc.Call(context.Background(), dataserver.MethodAppend,
		dataserver.AppendArgs{FileID: fi.ID, Name: name, Data: payload}, &reply); err != nil {
		t.Fatal(err)
	}
	return fi
}

func statOn(t *testing.T, ctlAddr string, fi nameserver.FileInfo) int64 {
	t.Helper()
	cc := rpc.NewPeer(ctlAddr, rpc.Options{})
	defer cc.Close()
	var st dataserver.StatReply
	if err := cc.Call(context.Background(), dataserver.MethodStat,
		dataserver.FileIDArgs{FileID: fi.ID}, &st); err != nil {
		t.Fatal(err)
	}
	return st.SizeBytes
}

func TestRepairReplacesDeadSecondary(t *testing.T) {
	f := startFixture(t, 4)
	payload := bytes.Repeat([]byte("fault-tolerance "), 20) // 320 bytes, 5 chunks
	fi := createFile(t, f, "repairme", payload)

	// Kill the second replica and let its heartbeats lapse.
	f.servers[1].Close()
	time.Sleep(150 * time.Millisecond)

	res, err := Run(context.Background(), Config{
		Service:   f.svc,
		DeadAfter: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dead) != 1 || res.Dead[0] != "ds-1" {
		t.Fatalf("Dead = %v", res.Dead)
	}
	if res.Repaired != 1 || len(res.Lost) != 0 || len(res.Faults) != 0 {
		t.Fatalf("result = %+v", res)
	}

	// Metadata now points at ds-3 instead of ds-1, same primary.
	got, err := f.svc.Lookup("repairme")
	if err != nil {
		t.Fatal(err)
	}
	if got.Primary().ServerID != "ds-0" {
		t.Errorf("primary = %s, want ds-0", got.Primary().ServerID)
	}
	ids := map[string]bool{}
	for _, r := range got.Replicas {
		ids[r.ServerID] = true
	}
	if ids["ds-1"] || !ids["ds-3"] {
		t.Errorf("replicas = %v", ids)
	}
	// The replacement holds every byte.
	if size := statOn(t, f.servers[3].ControlAddr(), fi); size != int64(len(payload)) {
		t.Errorf("replacement size = %d, want %d", size, len(payload))
	}

	// A second pass has nothing to do for this file.
	res, err = Run(context.Background(), Config{Service: f.svc, DeadAfter: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired != 0 || len(res.Faults) != 0 {
		t.Fatalf("second pass = %+v", res)
	}
}

func TestRepairPromotesPrimary(t *testing.T) {
	f := startFixture(t, 4)
	payload := bytes.Repeat([]byte("x"), 100)
	fi := createFile(t, f, "promoted", payload)

	// Kill the primary.
	f.servers[0].Close()
	time.Sleep(150 * time.Millisecond)

	res, err := Run(context.Background(), Config{Service: f.svc, DeadAfter: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired != 1 {
		t.Fatalf("result = %+v", res)
	}
	got, err := f.svc.Lookup("promoted")
	if err != nil {
		t.Fatal(err)
	}
	if got.Primary().ServerID != "ds-1" {
		t.Fatalf("promoted primary = %s, want ds-1", got.Primary().ServerID)
	}

	// Appends keep working through the new primary: its local metadata
	// was rewritten, so it accepts the orderer role and relays to the
	// surviving + replacement replicas.
	cc := rpc.NewPeer(got.Primary().ControlAddr, rpc.Options{})
	defer cc.Close()
	var reply dataserver.AppendReply
	if err := cc.Call(context.Background(), dataserver.MethodAppend,
		dataserver.AppendArgs{FileID: fi.ID, Name: "promoted", Data: []byte("more")}, &reply); err != nil {
		t.Fatalf("append through promoted primary: %v", err)
	}
	if reply.SizeBytes != 104 {
		t.Fatalf("size after append = %d, want 104", reply.SizeBytes)
	}
	// Every live replica converged on 104 bytes.
	for _, idx := range []int{1, 2, 3} {
		if size := statOn(t, f.servers[idx].ControlAddr(), fi); size != 104 {
			t.Errorf("ds-%d size = %d, want 104", idx, size)
		}
	}
}

func TestRepairReportsLostFiles(t *testing.T) {
	f := startFixture(t, 4)
	createFile(t, f, "doomed", []byte("bytes"))
	f.servers[0].Close()
	f.servers[1].Close()
	f.servers[2].Close()
	time.Sleep(150 * time.Millisecond)

	res, err := Run(context.Background(), Config{Service: f.svc, DeadAfter: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lost) == 0 || res.Lost[0] != "doomed" {
		t.Fatalf("Lost = %v", res.Lost)
	}
	if res.Repaired != 0 {
		t.Fatalf("Repaired = %d", res.Repaired)
	}
}

func TestRepairNoDeadServersIsNoop(t *testing.T) {
	f := startFixture(t, 3)
	createFile(t, f, "healthy", []byte("ok"))
	res, err := Run(context.Background(), Config{Service: f.svc, DeadAfter: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dead) != 0 || res.Repaired != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("missing service accepted")
	}
	f := startFixture(t, 3)
	if _, err := Run(context.Background(), Config{Service: f.svc}); err == nil {
		t.Error("zero DeadAfter accepted")
	}
}
