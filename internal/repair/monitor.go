package repair

import (
	"context"
	"sync"
)

// Monitor drives repeated repair passes and deduplicates death
// declarations: a server is declared dead exactly once per down episode.
// A server whose heartbeat resumes is cleared, so a later genuine death
// is declared again.
type Monitor struct {
	cfg Config

	mu       sync.Mutex
	declared map[string]bool
}

// NewMonitor creates a monitor over the given repair configuration.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg, declared: make(map[string]bool)}
}

// Pass runs one repair pass. The returned Result.Dead lists only servers
// newly declared dead by this pass — servers already declared by an
// earlier pass (and still dead) are repaired against but not re-announced.
func (m *Monitor) Pass(ctx context.Context) (*Result, error) {
	res, err := Run(ctx, m.cfg)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := make(map[string]bool, len(res.Dead))
	fresh := make([]string, 0, len(res.Dead))
	for _, id := range res.Dead {
		cur[id] = true
		if !m.declared[id] {
			m.declared[id] = true
			fresh = append(fresh, id)
		}
	}
	for id := range m.declared {
		if !cur[id] {
			// The heartbeat resumed; the next silence is a new episode.
			delete(m.declared, id)
		}
	}
	res.Dead = fresh
	return res, nil
}

// Declared reports whether the monitor currently considers the server
// declared dead.
func (m *Monitor) Declared(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.declared[id]
}
