// Package repair restores replication after dataserver failures,
// completing the paper's §3.2 design goal of GFS/HDFS-grade fault
// tolerance (the paper leaves re-replication to the substrate designs it
// inherits from).
//
// A repair pass works against the nameserver's liveness view
// (heartbeats):
//
//  1. Dataservers that have not beaten within the timeout are declared
//     dead.
//  2. Every file with a replica on a dead server gets a replacement
//     placed on a live server in (preferably) a previously unused rack.
//  3. The replacement copies the bytes from a surviving replica over the
//     bulk data protocol (ds.Replicate), resumable if interrupted.
//  4. The nameserver swaps the replica in the file record — promoting the
//     first surviving replica to primary when the primary died — and the
//     final record is pushed to every live replica (ds.UpdateMeta) so
//     their local metadata agrees on the new append orderer.
//
// A file whose every replica is dead is reported as lost, not repaired.
package repair

import (
	"context"
	"fmt"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// Config parameterizes a repair pass.
type Config struct {
	// Service is the (co-located) nameserver.
	Service *nameserver.Service
	// DeadAfter is the heartbeat silence that declares a server dead.
	DeadAfter time.Duration
	// Pool supplies dataserver control sessions. When nil each pass runs
	// over a private pool (built with Dial) that is closed when the pass
	// ends.
	Pool *rpc.Pool
	// Dial customizes session establishment when Pool is nil;
	// rpc.DialSession if also nil. Tests inject failures here.
	Dial func(ctx context.Context, addr string) (*wire.Client, error)
}

// FileFault records one file the pass could not repair.
type FileFault struct {
	Name string
	Err  error
}

// Result summarizes one repair pass.
type Result struct {
	// Dead lists the server ids declared dead this pass.
	Dead []string
	// Repaired counts replica replacements performed.
	Repaired int
	// Lost lists files with no surviving replica.
	Lost []string
	// Faults lists files whose repair failed (retried next pass).
	Faults []FileFault
}

// Run executes one repair pass.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Service == nil {
		return nil, fmt.Errorf("repair: Service is required")
	}
	if cfg.DeadAfter <= 0 {
		return nil, fmt.Errorf("repair: DeadAfter must be > 0, got %v", cfg.DeadAfter)
	}
	pool := cfg.Pool
	if pool == nil {
		pool = rpc.NewPool(rpc.Options{Dial: cfg.Dial})
		defer pool.Close()
	}
	svc := cfg.Service

	dead := svc.DeadServers(time.Now().Add(-cfg.DeadAfter))
	deadSet := make(map[string]bool, len(dead))
	res := &Result{}
	for _, si := range dead {
		deadSet[si.ID] = true
		res.Dead = append(res.Dead, si.ID)
	}
	if len(deadSet) == 0 {
		return res, nil
	}
	alive := func(si nameserver.ServerInfo) bool { return !deadSet[si.ID] }

	// stillDead re-checks a declared-dead server against the live
	// heartbeat state, so a flapping server (heartbeat resumed mid-pass)
	// stops being repaired against as soon as it recovers — repairing a
	// recovered server would strip it of replicas it still holds.
	stillDead := func(id string) bool {
		for _, si := range svc.DeadServers(time.Now().Add(-cfg.DeadAfter)) {
			if si.ID == id {
				return true
			}
		}
		return false
	}

	for _, fi := range svc.List("") {
		for _, rep := range fi.Replicas {
			if !deadSet[rep.ServerID] {
				continue
			}
			if !stillDead(rep.ServerID) {
				delete(deadSet, rep.ServerID)
				continue
			}
			// Re-read the record: an earlier iteration may have already
			// promoted or replaced replicas of this file.
			cur, err := svc.Lookup(fi.Name)
			if err != nil {
				continue // deleted meanwhile
			}
			if err := repairOne(ctx, svc, pool, cur, rep.ServerID, deadSet, alive); err != nil {
				if isLost(err) {
					// Every replica is dead: count the file once, not
					// once per dead replica.
					res.Lost = append(res.Lost, fi.Name)
					break
				}
				res.Faults = append(res.Faults, FileFault{Name: fi.Name, Err: err})
				continue
			}
			res.Repaired++
		}
	}
	return res, nil
}

type lostError struct{ name string }

func (e *lostError) Error() string {
	return fmt.Sprintf("repair: every replica of %s is dead", e.name)
}

func isLost(err error) bool {
	_, ok := err.(*lostError)
	return ok
}

// repairOne replaces one dead replica of one file.
func repairOne(ctx context.Context, svc *nameserver.Service, pool *rpc.Pool,
	fi nameserver.FileInfo, deadID string, deadSet map[string]bool, alive func(nameserver.ServerInfo) bool) error {

	// A surviving source.
	var source *nameserver.ReplicaLoc
	stillDead := false
	for i := range fi.Replicas {
		rep := fi.Replicas[i]
		if rep.ServerID == deadID {
			stillDead = true
			continue
		}
		if !deadSet[rep.ServerID] && source == nil {
			source = &rep
		}
	}
	if !stillDead {
		return nil // already repaired earlier this pass
	}
	if source == nil {
		return &lostError{name: fi.Name}
	}

	deadIDs := make([]string, 0, len(deadSet))
	for id := range deadSet {
		deadIDs = append(deadIDs, id)
	}
	repl, err := svc.PlaceReplacement(fi, deadIDs, alive)
	if err != nil {
		return err
	}

	// Authoritative size from the source.
	st, err := dataserver.NewClient(pool.Peer(source.ControlAddr)).Stat(ctx, fi.ID)
	if err != nil {
		return fmt.Errorf("repair: stat source %s: %w", source.ServerID, err)
	}

	// Copy the bytes onto the replacement.
	rr, err := dataserver.NewClient(pool.Peer(repl.ControlAddr)).Replicate(ctx, dataserver.ReplicateArgs{
		Info:           fi,
		SourceDataAddr: source.DataAddr,
		SizeBytes:      st.SizeBytes,
	})
	if err != nil {
		return fmt.Errorf("repair: replicate %s to %s: %w", fi.Name, repl.ServerID, err)
	}
	if rr.SizeBytes < st.SizeBytes {
		return fmt.Errorf("repair: replacement %s holds %d of %d bytes", repl.ServerID, rr.SizeBytes, st.SizeBytes)
	}

	// Commit the new replica set and push it to every live replica so
	// local metadata (notably the primary identity) agrees.
	if err := svc.ReplaceReplica(fi.Name, deadID, repl); err != nil {
		return err
	}
	updated, err := svc.Lookup(fi.Name)
	if err != nil {
		return err
	}
	for _, rep := range updated.Replicas {
		if deadSet[rep.ServerID] {
			continue
		}
		err := dataserver.NewClient(pool.Peer(rep.ControlAddr)).
			UpdateMeta(ctx, dataserver.UpdateMetaArgs{Info: updated})
		if err != nil {
			return fmt.Errorf("repair: update meta on %s: %w", rep.ServerID, err)
		}
	}
	return nil
}
