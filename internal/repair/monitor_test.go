package repair

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// TestMonitorDeclaresDeadExactlyOnce: the first pass after a death
// announces the server and repairs; later passes during the same down
// episode announce nothing and repair nothing.
func TestMonitorDeclaresDeadExactlyOnce(t *testing.T) {
	f := startFixture(t, 4)
	createFile(t, f, "once", bytes.Repeat([]byte("a"), 200))

	f.servers[1].Close()
	time.Sleep(150 * time.Millisecond)

	m := NewMonitor(Config{Service: f.svc, DeadAfter: 100 * time.Millisecond})
	res, err := m.Pass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dead) != 1 || res.Dead[0] != "ds-1" {
		t.Fatalf("first pass Dead = %v, want [ds-1]", res.Dead)
	}
	if res.Repaired != 1 {
		t.Fatalf("first pass Repaired = %d, want 1", res.Repaired)
	}
	if !m.Declared("ds-1") {
		t.Fatal("ds-1 not recorded as declared")
	}

	for pass := 2; pass <= 3; pass++ {
		res, err = m.Pass(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Dead) != 0 {
			t.Fatalf("pass %d re-announced %v", pass, res.Dead)
		}
		if res.Repaired != 0 || len(res.Faults) != 0 {
			t.Fatalf("pass %d = %+v, want nothing to do", pass, res)
		}
	}
}

// TestMonitorFlapClearsDeclaration: a server whose heartbeat resumes is
// no longer declared, and a later genuine death is announced as a fresh
// episode.
func TestMonitorFlapClearsDeclaration(t *testing.T) {
	f := startFixture(t, 4)
	// ds-3 holds no file, so its death is declaration-only.
	f.servers[3].Close()
	time.Sleep(150 * time.Millisecond)

	m := NewMonitor(Config{Service: f.svc, DeadAfter: 100 * time.Millisecond})
	res, err := m.Pass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dead) != 1 || res.Dead[0] != "ds-3" {
		t.Fatalf("Dead = %v, want [ds-3]", res.Dead)
	}

	// The heartbeat resumes (flap): the declaration must clear.
	if err := f.svc.Heartbeat("ds-3"); err != nil {
		t.Fatal(err)
	}
	res, err = m.Pass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dead) != 0 {
		t.Fatalf("Dead after flap = %v, want none", res.Dead)
	}
	if m.Declared("ds-3") {
		t.Fatal("declaration survived a heartbeat resume")
	}

	// Silence again: a new episode gets a new declaration.
	time.Sleep(150 * time.Millisecond)
	res, err = m.Pass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dead) != 1 || res.Dead[0] != "ds-3" {
		t.Fatalf("Dead after second silence = %v, want [ds-3]", res.Dead)
	}
}

// TestRepairFlappingServerNotStripped: when a declared-dead server's
// heartbeat resumes mid-pass, the pass stops repairing against it — a
// recovered server must not have its remaining replicas stripped.
func TestRepairFlappingServerNotStripped(t *testing.T) {
	f := startFixture(t, 4)
	payload := bytes.Repeat([]byte("b"), 150)
	createFile(t, f, "file-a", payload)
	createFile(t, f, "file-b", payload)

	f.servers[1].Close()
	time.Sleep(150 * time.Millisecond)

	// The Dial hook fires once repair of the first file (List order:
	// file-a) is underway; resuming ds-1's heartbeat there means the
	// stillDead recheck fails before file-b is touched.
	var once sync.Once
	dial := func(ctx context.Context, addr string) (*wire.Client, error) {
		once.Do(func() {
			if err := f.svc.Heartbeat("ds-1"); err != nil {
				t.Errorf("heartbeat: %v", err)
			}
		})
		return rpc.DialSession(ctx, addr)
	}
	res, err := Run(context.Background(), Config{
		Service:   f.svc,
		DeadAfter: 100 * time.Millisecond,
		Dial:      dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dead) != 1 || res.Dead[0] != "ds-1" {
		t.Fatalf("Dead = %v, want [ds-1]", res.Dead)
	}
	if res.Repaired != 1 || len(res.Faults) != 0 || len(res.Lost) != 0 {
		t.Fatalf("result = %+v, want exactly one repair", res)
	}
	// file-a was repaired away from ds-1; file-b kept its ds-1 replica.
	fa, err := f.svc.Lookup("file-a")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := f.svc.Lookup("file-b")
	if err != nil {
		t.Fatal(err)
	}
	if holdsReplica(fa, "ds-1") {
		t.Errorf("file-a still on ds-1 after repair: %v", replicaIDs(fa))
	}
	if !holdsReplica(fb, "ds-1") {
		t.Errorf("file-b stripped from flapped ds-1: %v", replicaIDs(fb))
	}
}

func holdsReplica(fi nameserver.FileInfo, id string) bool {
	for _, r := range fi.Replicas {
		if r.ServerID == id {
			return true
		}
	}
	return false
}

func replicaIDs(fi nameserver.FileInfo) []string {
	ids := make([]string, len(fi.Replicas))
	for i, r := range fi.Replicas {
		ids[i] = r.ServerID
	}
	return ids
}

// newPlacementService builds a bare nameserver (no RPC, no dataservers)
// for placement-only tests, with a deterministic rng.
func newPlacementService(t *testing.T, seed int64) *nameserver.Service {
	t.Helper()
	store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	svc, err := nameserver.NewService(store, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func register(t *testing.T, svc *nameserver.Service, id string, pod, rack int) {
	t.Helper()
	err := svc.RegisterServer(nameserver.ServerInfo{
		ID:          id,
		ControlAddr: "127.0.0.1:1",
		DataAddr:    "127.0.0.1:2",
		Host:        fmt.Sprintf("host-p%d-r%d-h0", pod, rack),
		Pod:         pod,
		Rack:        rack,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlaceReplacementRespectsFaultDomains: while a rack the file does
// not occupy has a live candidate, the replacement never lands in an
// already-used rack — across seeds, so it is a property of the
// candidate filtering, not of one lucky rng draw.
func TestPlaceReplacementRespectsFaultDomains(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		svc := newPlacementService(t, seed)
		// Used racks: (0,0) and (0,1). Same-rack spares exist on both,
		// plus one fresh-rack candidate in (0,2) and one in pod 1 rack 0
		// (a distinct [pod, rack] fault domain despite the rack number).
		register(t, svc, "used-a", 0, 0)
		register(t, svc, "spare-r0", 0, 0)
		register(t, svc, "used-b", 0, 1)
		register(t, svc, "spare-r1", 0, 1)
		register(t, svc, "fresh", 0, 2)
		register(t, svc, "fresh-pod1", 1, 0)
		fi := nameserver.FileInfo{
			Name: "f",
			Replicas: []nameserver.ReplicaLoc{
				{ServerID: "used-a"},
				{ServerID: "used-b"},
			},
		}
		repl, err := svc.PlaceReplacement(fi, []string{"used-b"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if repl.ServerID != "fresh" && repl.ServerID != "fresh-pod1" {
			t.Fatalf("seed %d: replacement %s landed in a used rack", seed, repl.ServerID)
		}
	}
}

// TestPlaceReplacementFallsBackToUsedRack: with no fresh rack available
// the placement degrades to any live server rather than failing, and it
// still never picks a dead or already-holding server.
func TestPlaceReplacementFallsBackToUsedRack(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		svc := newPlacementService(t, seed)
		register(t, svc, "used-a", 0, 0)
		register(t, svc, "used-b", 0, 1)
		register(t, svc, "spare-r1", 0, 1) // only candidate, in a used rack
		fi := nameserver.FileInfo{
			Name: "f",
			Replicas: []nameserver.ReplicaLoc{
				{ServerID: "used-a"},
				{ServerID: "used-b"},
			},
		}
		repl, err := svc.PlaceReplacement(fi, []string{"used-b"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if repl.ServerID != "spare-r1" {
			t.Fatalf("seed %d: replacement = %s, want spare-r1", seed, repl.ServerID)
		}
	}

	// And with genuinely no candidate, a clear error — not a panic.
	svc := newPlacementService(t, 1)
	register(t, svc, "used-a", 0, 0)
	fi := nameserver.FileInfo{Name: "f", Replicas: []nameserver.ReplicaLoc{{ServerID: "used-a"}}}
	if _, err := svc.PlaceReplacement(fi, nil, nil); err == nil {
		t.Fatal("placement with no candidates succeeded")
	}
}

// TestPlaceReplacementHonorsAliveFilter: the alive callback vetoes
// candidates (repair passes it the not-in-dead-set predicate).
func TestPlaceReplacementHonorsAliveFilter(t *testing.T) {
	svc := newPlacementService(t, 3)
	register(t, svc, "used-a", 0, 0)
	register(t, svc, "dead-fresh", 0, 1)
	register(t, svc, "live-fresh", 0, 2)
	fi := nameserver.FileInfo{Name: "f", Replicas: []nameserver.ReplicaLoc{{ServerID: "used-a"}}}
	alive := func(si nameserver.ServerInfo) bool { return si.ID != "dead-fresh" }
	for i := 0; i < 20; i++ {
		repl, err := svc.PlaceReplacement(fi, nil, alive)
		if err != nil {
			t.Fatal(err)
		}
		if repl.ServerID != "live-fresh" {
			t.Fatalf("replacement = %s, want live-fresh", repl.ServerID)
		}
	}
}
