package workload

import (
	"math"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/testutil"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestZipfValidation(t *testing.T) {
	rng := testutil.Rand(t, 1)
	if _, err := NewZipf(rng, 1.1, 0); err == nil {
		t.Error("NewZipf(n=0) should error")
	}
	if _, err := NewZipf(rng, 0, 10); err == nil {
		t.Error("NewZipf(s=0) should error")
	}
	z, err := NewZipf(rng, 1.1, 10)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	if z.N() != 10 {
		t.Errorf("N = %d, want 10", z.N())
	}
}

func TestZipfSkew(t *testing.T) {
	rng := testutil.Rand(t, 2)
	const n = 1000
	z, err := NewZipf(rng, 1.1, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		r := z.Sample()
		if r < 0 || r >= n {
			t.Fatalf("sample %d out of range", r)
		}
		counts[r]++
	}
	// Theoretical P(rank 0) = 1 / H_{n,1.1} ≈ 1/9.01 ≈ 0.111 for n=1000.
	var h float64
	for k := 1; k <= n; k++ {
		h += 1 / math.Pow(float64(k), 1.1)
	}
	want := 1 / h
	got := float64(counts[0]) / draws
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P(rank 0) = %.4f, want ≈ %.4f", got, want)
	}
	// Monotone-ish popularity: top rank strictly dominates rank 10.
	if counts[0] <= counts[10] {
		t.Errorf("rank 0 count %d <= rank 10 count %d", counts[0], counts[10])
	}
}

func TestLocalityValidate(t *testing.T) {
	for _, l := range []Locality{LocalityRackHeavy, LocalityPodHeavy, LocalityCoreHeavy, LocalityUniform} {
		if err := l.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", l, err)
		}
	}
	if err := (Locality{SameRack: 0.5, SamePod: 0.6, OtherPod: -0.1}).Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	if err := (Locality{SameRack: 0.5, SamePod: 0.3, OtherPod: 0.3}).Validate(); err == nil {
		t.Error("sum != 1 accepted")
	}
	if got, want := LocalityRackHeavy.String(), "(0.5,0.3,0.2)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestPlaceReplicasPaperEval(t *testing.T) {
	topo := testTopo(t)
	rng := testutil.Rand(t, 3)
	for trial := 0; trial < 200; trial++ {
		reps, err := PlaceReplicas(topo, rng, PlacementPaperEval, 3)
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		if len(reps) != 3 {
			t.Fatalf("got %d replicas", len(reps))
		}
		// Distinct hosts and racks.
		seen := make(map[topology.NodeID]bool)
		for _, r := range reps {
			if seen[r] {
				t.Fatalf("duplicate replica host %v", r)
			}
			seen[r] = true
		}
		if topo.SameRack(reps[0], reps[1]) {
			t.Fatal("second replica in primary's rack")
		}
		if !topo.SamePod(reps[0], reps[1]) {
			t.Fatal("second replica not in primary's pod")
		}
		if topo.SamePod(reps[0], reps[2]) {
			t.Fatal("third replica in primary's pod")
		}
	}
}

func TestPlaceReplicasRackPair(t *testing.T) {
	topo := testTopo(t)
	rng := testutil.Rand(t, 4)
	for trial := 0; trial < 200; trial++ {
		reps, err := PlaceReplicas(topo, rng, PlacementRackPair, 3)
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		if !topo.SameRack(reps[0], reps[1]) || reps[0] == reps[1] {
			t.Fatal("first two replicas not distinct hosts of the same rack")
		}
		if topo.SameRack(reps[0], reps[2]) {
			t.Fatal("third replica in the primary rack")
		}
	}
}

func TestPlaceReplicasErrors(t *testing.T) {
	topo := testTopo(t)
	rng := testutil.Rand(t, 5)
	if _, err := PlaceReplicas(topo, rng, PlacementPaperEval, 0); err == nil {
		t.Error("replication 0 accepted")
	}
	if _, err := PlaceReplicas(topo, rng, PlacementPaperEval, topo.NumHosts()+1); err == nil {
		t.Error("replication > hosts accepted")
	}
	if _, err := PlaceReplicas(topo, rng, Placement(99), 3); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestPlaceClientDistribution(t *testing.T) {
	topo := testTopo(t)
	rng := testutil.Rand(t, 6)
	primary := topo.HostAt(1, 2, 3)
	loc := LocalityRackHeavy

	const trials = 20000
	var rack, pod, other int
	for i := 0; i < trials; i++ {
		c := PlaceClient(topo, rng, loc, primary)
		if c == primary {
			t.Fatal("client placed on the primary host")
		}
		switch {
		case topo.SameRack(c, primary):
			rack++
		case topo.SamePod(c, primary):
			pod++
		default:
			other++
		}
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"same rack", float64(rack) / trials, 0.5},
		{"same pod", float64(pod) / trials, 0.3},
		{"other pod", float64(other) / trials, 0.2},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.02 {
			t.Errorf("%s fraction = %.3f, want %.1f", c.name, c.got, c.want)
		}
	}
}

func TestNewCatalog(t *testing.T) {
	topo := testTopo(t)
	rng := testutil.Rand(t, 7)
	cat, err := NewCatalog(topo, rng, CatalogConfig{
		NumFiles:    50,
		SizeBits:    256 * 8e6,
		Replication: 3,
		Placement:   PlacementPaperEval,
	})
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	if len(cat.Files) != 50 {
		t.Fatalf("got %d files", len(cat.Files))
	}
	for i, f := range cat.Files {
		if f.Index != i {
			t.Errorf("file %d Index = %d", i, f.Index)
		}
		if len(f.Replicas) != 3 {
			t.Errorf("file %d has %d replicas", i, len(f.Replicas))
		}
		if f.SizeBits != 256*8e6 {
			t.Errorf("file %d size = %g", i, f.SizeBits)
		}
	}

	if _, err := NewCatalog(topo, rng, CatalogConfig{NumFiles: 0, SizeBits: 1, Replication: 3, Placement: PlacementPaperEval}); err == nil {
		t.Error("NumFiles=0 accepted")
	}
	if _, err := NewCatalog(topo, rng, CatalogConfig{NumFiles: 1, SizeBits: 0, Replication: 3, Placement: PlacementPaperEval}); err == nil {
		t.Error("SizeBits=0 accepted")
	}
}

func TestGenerateTrace(t *testing.T) {
	topo := testTopo(t)
	rng := testutil.Rand(t, 8)
	cat, err := NewCatalog(topo, rng, CatalogConfig{
		NumFiles: 100, SizeBits: 1e6, Replication: 3, Placement: PlacementPaperEval,
	})
	if err != nil {
		t.Fatal(err)
	}
	const lambda = 0.07
	jobs, err := Generate(topo, rng, cat, TraceConfig{
		LambdaPerServer: lambda,
		NumJobs:         5000,
		ZipfSkew:        1.1,
		Locality:        LocalityRackHeavy,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(jobs) != 5000 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	prev := 0.0
	for i, j := range jobs {
		if j.ID != i {
			t.Fatalf("job %d ID = %d", i, j.ID)
		}
		if j.Time < prev {
			t.Fatalf("job %d time %g before previous %g", i, j.Time, prev)
		}
		prev = j.Time
		if j.FileIndex < 0 || j.FileIndex >= len(cat.Files) {
			t.Fatalf("job %d file index %d out of range", i, j.FileIndex)
		}
		if cat.Files[j.FileIndex].Replicas[0] == j.Client {
			t.Fatalf("job %d client co-located with primary", i)
		}
	}
	// Mean inter-arrival should be ≈ 1/(λ·64) ≈ 0.2232 s.
	meanGap := jobs[len(jobs)-1].Time / float64(len(jobs)-1)
	want := 1 / (lambda * float64(topo.NumHosts()))
	if math.Abs(meanGap-want)/want > 0.1 {
		t.Errorf("mean inter-arrival = %g, want ≈ %g", meanGap, want)
	}
}

func TestGenerateValidation(t *testing.T) {
	topo := testTopo(t)
	rng := testutil.Rand(t, 9)
	cat, err := NewCatalog(topo, rng, CatalogConfig{
		NumFiles: 5, SizeBits: 1e6, Replication: 3, Placement: PlacementPaperEval,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := TraceConfig{LambdaPerServer: 0.07, NumJobs: 10, ZipfSkew: 1.1, Locality: LocalityRackHeavy}

	bad := base
	bad.LambdaPerServer = 0
	if _, err := Generate(topo, rng, cat, bad); err == nil {
		t.Error("lambda=0 accepted")
	}
	bad = base
	bad.NumJobs = -1
	if _, err := Generate(topo, rng, cat, bad); err == nil {
		t.Error("NumJobs<0 accepted")
	}
	bad = base
	bad.Locality = Locality{SameRack: 2}
	if _, err := Generate(topo, rng, cat, bad); err == nil {
		t.Error("bad locality accepted")
	}
	bad = base
	bad.ZipfSkew = -1
	if _, err := Generate(topo, rng, cat, bad); err == nil {
		t.Error("bad zipf skew accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	topo := testTopo(t)
	gen := func() []Job {
		rng := testutil.Rand(t, 42)
		cat, err := NewCatalog(topo, rng, CatalogConfig{
			NumFiles: 20, SizeBits: 1e6, Replication: 3, Placement: PlacementPaperEval,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := Generate(topo, rng, cat, TraceConfig{
			LambdaPerServer: 0.07, NumJobs: 100, ZipfSkew: 1.1, Locality: LocalityUniform,
		})
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}
