// Package workload synthesizes the read-dominant traffic matrix of the
// Mayflower evaluation (§6.1.1):
//
//   - job arrivals follow a Poisson process with a per-server rate λ;
//   - file read popularity follows a Zipf distribution with skew ρ = 1.1;
//   - clients are placed with the staggered probability of Hedera: in the
//     same rack as the primary replica with probability R, in another rack
//     of the same pod with probability P, and in a different pod with
//     probability O = 1 − R − P;
//   - replicas respect fault domains: the primary is placed uniformly at
//     random, the second replica in another rack of the same pod, and the
//     third in a different pod.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s via an inverted, precomputed CDF. Unlike the standard
// library's rejection sampler it is exact for small n and deterministic in
// the number of random draws per sample (one), which keeps experiment
// traces reproducible across runs.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf creates a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(rng *rand.Rand, s float64, n int) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: Zipf needs n >= 1, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: Zipf needs s > 0, got %g", s)
	}
	cdf := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}, nil
}

// Sample returns a rank in [0, n), rank 0 being the most popular.
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Locality is the staggered client-placement distribution (R, P, O):
// probability of the client sharing the primary replica's rack, sharing
// only its pod, or being in another pod.
type Locality struct {
	SameRack float64 // R
	SamePod  float64 // P
	OtherPod float64 // O
}

// Paper locality mixes used in Figures 4-8.
var (
	LocalityRackHeavy = Locality{SameRack: 0.5, SamePod: 0.3, OtherPod: 0.2}
	LocalityPodHeavy  = Locality{SameRack: 0.3, SamePod: 0.5, OtherPod: 0.2}
	LocalityCoreHeavy = Locality{SameRack: 0.2, SamePod: 0.3, OtherPod: 0.5}
	LocalityUniform   = Locality{SameRack: 1.0 / 3, SamePod: 1.0 / 3, OtherPod: 1.0 / 3}
)

// Validate reports whether the probabilities are non-negative and sum to 1.
func (l Locality) Validate() error {
	if l.SameRack < 0 || l.SamePod < 0 || l.OtherPod < 0 {
		return fmt.Errorf("workload: negative locality probability %+v", l)
	}
	if s := l.SameRack + l.SamePod + l.OtherPod; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("workload: locality probabilities sum to %g, want 1", s)
	}
	return nil
}

// String renders the distribution as the paper writes it, e.g. "(0.5,0.3,0.2)".
func (l Locality) String() string {
	return fmt.Sprintf("(%.2g,%.2g,%.2g)", l.SameRack, l.SamePod, l.OtherPod)
}

// Placement selects replica hosts for new files.
type Placement int

const (
	// PlacementPaperEval is the §6.1.1 strategy: primary uniform at
	// random, second replica in another rack of the same pod, third in a
	// different pod.
	PlacementPaperEval Placement = iota + 1
	// PlacementRackPair is the §5 prototype default ("HDFS rack-aware"):
	// two replicas in the same rack, further replicas in other randomly
	// selected racks.
	PlacementRackPair
)

// PlaceReplicas chooses hosts for a file's replicas. The first host is the
// primary. All replicas land on distinct hosts, and (for PlacementPaperEval)
// in distinct racks with at least one replica outside the primary's pod.
func PlaceReplicas(topo *topology.Topology, rng *rand.Rand, strategy Placement, n int) ([]topology.NodeID, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: replication factor must be >= 1, got %d", n)
	}
	if n > topo.NumHosts() {
		return nil, fmt.Errorf("workload: replication factor %d exceeds %d hosts", n, topo.NumHosts())
	}
	cfg := topo.Config()
	hosts := topo.Hosts()
	primary := hosts[rng.Intn(len(hosts))]
	replicas := []topology.NodeID{primary}
	used := map[topology.NodeID]bool{primary: true}
	usedRack := map[[2]int]bool{{topo.Node(primary).Pod, topo.Node(primary).Rack}: true}

	pick := func(candidates []topology.NodeID) (topology.NodeID, bool) {
		var free []topology.NodeID
		for _, h := range candidates {
			if !used[h] {
				free = append(free, h)
			}
		}
		if len(free) == 0 {
			return 0, false
		}
		return free[rng.Intn(len(free))], true
	}

	hostsIn := func(pod, rack int) []topology.NodeID {
		out := make([]topology.NodeID, 0, cfg.HostsPerRack)
		for h := 0; h < cfg.HostsPerRack; h++ {
			out = append(out, topo.HostAt(pod, rack, h))
		}
		return out
	}

	switch strategy {
	case PlacementPaperEval:
		for i := 1; i < n; i++ {
			var cand []topology.NodeID
			p := topo.Node(primary).Pod
			if i == 1 && cfg.RacksPerPod > 1 {
				// Same pod, different rack.
				for r := 0; r < cfg.RacksPerPod; r++ {
					if r == topo.Node(primary).Rack {
						continue
					}
					cand = append(cand, hostsIn(p, r)...)
				}
			} else if cfg.Pods > 1 {
				// Different pod, previously unused rack preferred.
				for pp := 0; pp < cfg.Pods; pp++ {
					if pp == p {
						continue
					}
					for r := 0; r < cfg.RacksPerPod; r++ {
						if usedRack[[2]int{pp, r}] {
							continue
						}
						cand = append(cand, hostsIn(pp, r)...)
					}
				}
			}
			if len(cand) == 0 {
				cand = hosts // degenerate topologies: fall back to anywhere
			}
			h, ok := pick(cand)
			if !ok {
				return nil, fmt.Errorf("workload: no host available for replica %d", i)
			}
			replicas = append(replicas, h)
			used[h] = true
			usedRack[[2]int{topo.Node(h).Pod, topo.Node(h).Rack}] = true
		}
	case PlacementRackPair:
		for i := 1; i < n; i++ {
			var cand []topology.NodeID
			np := topo.Node(primary)
			if i == 1 && cfg.HostsPerRack > 1 {
				cand = hostsIn(np.Pod, np.Rack) // same rack as primary
			} else {
				for pp := 0; pp < cfg.Pods; pp++ {
					for r := 0; r < cfg.RacksPerPod; r++ {
						if pp == np.Pod && r == np.Rack {
							continue
						}
						if usedRack[[2]int{pp, r}] {
							continue
						}
						cand = append(cand, hostsIn(pp, r)...)
					}
				}
			}
			if len(cand) == 0 {
				cand = hosts
			}
			h, ok := pick(cand)
			if !ok {
				return nil, fmt.Errorf("workload: no host available for replica %d", i)
			}
			replicas = append(replicas, h)
			used[h] = true
			usedRack[[2]int{topo.Node(h).Pod, topo.Node(h).Rack}] = true
		}
	default:
		return nil, fmt.Errorf("workload: unknown placement strategy %d", strategy)
	}
	return replicas, nil
}

// PlaceClient picks a client host for a read of a file whose primary
// replica lives on primary, following the staggered locality distribution.
// The client is never the primary host itself (the paper ignores the fully
// co-located case "due to lack of network activity").
func PlaceClient(topo *topology.Topology, rng *rand.Rand, loc Locality, primary topology.NodeID) topology.NodeID {
	cfg := topo.Config()
	np := topo.Node(primary)
	u := rng.Float64()

	var cand []topology.NodeID
	switch {
	case u < loc.SameRack && cfg.HostsPerRack > 1:
		for h := 0; h < cfg.HostsPerRack; h++ {
			if c := topo.HostAt(np.Pod, np.Rack, h); c != primary {
				cand = append(cand, c)
			}
		}
	case u < loc.SameRack+loc.SamePod && cfg.RacksPerPod > 1:
		for r := 0; r < cfg.RacksPerPod; r++ {
			if r == np.Rack {
				continue
			}
			for h := 0; h < cfg.HostsPerRack; h++ {
				cand = append(cand, topo.HostAt(np.Pod, r, h))
			}
		}
	default:
		for p := 0; p < cfg.Pods; p++ {
			if p == np.Pod {
				continue
			}
			for r := 0; r < cfg.RacksPerPod; r++ {
				for h := 0; h < cfg.HostsPerRack; h++ {
					cand = append(cand, topo.HostAt(p, r, h))
				}
			}
		}
	}
	if len(cand) == 0 {
		// Degenerate single-pod/single-rack topologies: any other host.
		for _, h := range topo.Hosts() {
			if h != primary {
				cand = append(cand, h)
			}
		}
		if len(cand) == 0 {
			return primary
		}
	}
	return cand[rng.Intn(len(cand))]
}

// File is a stored file in the synthetic catalog.
type File struct {
	// Index is the file's position in the catalog (also its Zipf rank).
	Index int
	// SizeBits is the read size for a job on this file.
	SizeBits float64
	// Replicas holds the replica hosts; Replicas[0] is the primary.
	Replicas []topology.NodeID
}

// Catalog is a set of placed files.
type Catalog struct {
	Files []File
}

// CatalogConfig configures NewCatalog.
type CatalogConfig struct {
	NumFiles    int
	SizeBits    float64 // per-file read size (256 MB blocks in the paper)
	Replication int
	Placement   Placement
}

// NewCatalog creates and places a catalog of files.
func NewCatalog(topo *topology.Topology, rng *rand.Rand, cfg CatalogConfig) (*Catalog, error) {
	if cfg.NumFiles < 1 {
		return nil, fmt.Errorf("workload: NumFiles must be >= 1, got %d", cfg.NumFiles)
	}
	if cfg.SizeBits <= 0 {
		return nil, fmt.Errorf("workload: SizeBits must be > 0, got %g", cfg.SizeBits)
	}
	c := &Catalog{Files: make([]File, cfg.NumFiles)}
	for i := range c.Files {
		replicas, err := PlaceReplicas(topo, rng, cfg.Placement, cfg.Replication)
		if err != nil {
			return nil, err
		}
		c.Files[i] = File{Index: i, SizeBits: cfg.SizeBits, Replicas: replicas}
	}
	return c, nil
}

// Job is one read request: at Time, the client at Client reads file
// FileIndex in full.
type Job struct {
	ID        int
	Time      float64
	Client    topology.NodeID
	FileIndex int
}

// TraceConfig configures Generate.
type TraceConfig struct {
	// LambdaPerServer is the Poisson job arrival rate per server per
	// second; the system-wide rate is LambdaPerServer * NumHosts.
	LambdaPerServer float64
	// NumJobs is the number of jobs to generate.
	NumJobs int
	// ZipfSkew is the popularity skew (the paper uses ρ = 1.1).
	ZipfSkew float64
	// Locality is the staggered client-placement distribution.
	Locality Locality
}

// Generate produces a job trace over the catalog: Poisson arrivals,
// Zipf-popular files, staggered client placement relative to each file's
// primary replica.
func Generate(topo *topology.Topology, rng *rand.Rand, cat *Catalog, cfg TraceConfig) ([]Job, error) {
	if err := cfg.Locality.Validate(); err != nil {
		return nil, err
	}
	if cfg.LambdaPerServer <= 0 {
		return nil, fmt.Errorf("workload: LambdaPerServer must be > 0, got %g", cfg.LambdaPerServer)
	}
	if cfg.NumJobs < 0 {
		return nil, fmt.Errorf("workload: NumJobs must be >= 0, got %d", cfg.NumJobs)
	}
	zipf, err := NewZipf(rng, cfg.ZipfSkew, len(cat.Files))
	if err != nil {
		return nil, err
	}
	systemRate := cfg.LambdaPerServer * float64(topo.NumHosts())
	jobs := make([]Job, 0, cfg.NumJobs)
	var now float64
	for i := 0; i < cfg.NumJobs; i++ {
		now += rng.ExpFloat64() / systemRate
		file := &cat.Files[zipf.Sample()]
		client := PlaceClient(topo, rng, cfg.Locality, file.Replicas[0])
		jobs = append(jobs, Job{ID: i, Time: now, Client: client, FileIndex: file.Index})
	}
	return jobs, nil
}
