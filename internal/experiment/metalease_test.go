package experiment

import (
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// leaseConfig is a read-heavy run on the CI-sized topology with a small
// catalog, so each client re-reads the same files many times over —
// the regime where the metadata lease cache pays.
func leaseConfig(t *testing.T) Config {
	return Config{
		Scheme:        SchemeMayflower,
		Lambda:        3.0,
		NumJobs:       800,
		WarmupJobs:    50,
		NumFiles:      4,
		FileBits:      2e6,
		Replication:   3,
		Locality:      workload.LocalityRackHeavy,
		StatsInterval: 0.25,
		Seed:          7,
		Topo:          crossTopo(t),
	}
}

// TestMetaLeaseCutsNameserverLookups is the acceptance check for the
// metadata-path model: on a read-heavy sweep the lease cache cuts
// nameserver Lookup RPCs per job by at least 10x — each (client, file)
// pair pays one Lookup instead of one per job.
func TestMetaLeaseCutsNameserverLookups(t *testing.T) {
	noCache := leaseConfig(t)
	res0, err := Run(noCache)
	if err != nil {
		t.Fatal(err)
	}
	if res0.NSLookups != noCache.NumJobs {
		t.Fatalf("no-cache NSLookups = %d, want one per job (%d)", res0.NSLookups, noCache.NumJobs)
	}
	if res0.NSValidates != 0 {
		t.Fatalf("no-cache NSValidates = %d, want 0", res0.NSValidates)
	}

	cached := leaseConfig(t)
	cached.MetaLeaseSeconds = 1e9 // leases outlive the run
	res1, err := Run(cached)
	if err != nil {
		t.Fatal(err)
	}
	if res1.NSLookups == 0 {
		t.Fatal("cached run recorded no Lookups at all")
	}
	ratio := float64(res0.NSLookups) / float64(res1.NSLookups)
	t.Logf("lookups/job: %.3f without cache, %.3f with (%.1fx fewer)",
		float64(res0.NSLookups)/float64(noCache.NumJobs),
		float64(res1.NSLookups)/float64(cached.NumJobs), ratio)
	if ratio < 10 {
		t.Errorf("lease cache cut Lookups by %.1fx (%d -> %d), want >= 10x",
			ratio, res0.NSLookups, res1.NSLookups)
	}
	if res1.NSValidates != 0 {
		t.Errorf("NSValidates = %d with leases outliving the run, want 0", res1.NSValidates)
	}

	// A lease shorter than the run renews via Validate; Lookups stay at
	// one per (client, file) pair.
	renewing := leaseConfig(t)
	renewing.MetaLeaseSeconds = 5
	res2, err := Run(renewing)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NSLookups != res1.NSLookups {
		t.Errorf("short-lease NSLookups = %d, want %d (renewals must not re-Lookup)",
			res2.NSLookups, res1.NSLookups)
	}
	if res2.NSValidates == 0 {
		t.Error("short leases recorded no Validate renewals")
	}

	// The model is pure bookkeeping: completion times are identical with
	// the cache on and off.
	if len(res0.CompletionTimes) != len(res1.CompletionTimes) {
		t.Fatalf("completion count moved: %d vs %d", len(res0.CompletionTimes), len(res1.CompletionTimes))
	}
	for i := range res0.CompletionTimes {
		if res0.CompletionTimes[i] != res1.CompletionTimes[i] {
			t.Fatalf("job %d completion moved with the cache on: %g vs %g",
				i, res0.CompletionTimes[i], res1.CompletionTimes[i])
		}
	}
}

func TestMetaLeaseRejectsNegative(t *testing.T) {
	cfg := leaseConfig(t)
	cfg.MetaLeaseSeconds = -1
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted a negative MetaLeaseSeconds")
	}
}
