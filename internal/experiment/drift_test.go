package experiment

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/obs"
)

// fig4DriftMeanBound / fig4DriftP95Bound are the documented flow-model
// drift bounds for the Figure 4 workload (DESIGN.md §10): the mean
// relative error between the Flowserver's bandwidth estimates and the
// netsim fabric's true fair shares stays under 15%, p95 under 100%.
// Measured values on the scaled workload are ~6.5% mean / ~55% p95; the
// bounds leave headroom for workload-scale tweaks without letting the
// estimator quietly rot.
const (
	fig4DriftMeanBound = 0.15
	fig4DriftP95Bound  = 1.0
)

// TestDriftAuditExactWhenFlowsDontOverlap runs a trace so sparse that
// flows never share a link. The Flowserver's water-filling estimate for
// a lone flow is the path bottleneck capacity — exactly the fabric's
// fair share — so every audited sample must report zero relative error.
func TestDriftAuditExactWhenFlowsDontOverlap(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	cfg.NumJobs = 40
	cfg.WarmupJobs = 5
	cfg.Lambda = 0.0001
	res := mustRun(t, cfg)
	if res.Drift == nil {
		t.Fatal("no drift summary for a Flowserver scheme")
	}
	d := *res.Drift
	if d.Samples == 0 {
		t.Fatal("drift audit collected no samples")
	}
	if d.ZeroTruth != 0 {
		t.Errorf("ZeroTruth = %d, want 0 (every audited flow was live)", d.ZeroTruth)
	}
	if d.MeanRelErr != 0 || d.MaxRelErr != 0 {
		t.Errorf("lone flows drifted: mean=%g max=%g, want 0", d.MeanRelErr, d.MaxRelErr)
	}
}

// TestDriftAuditDetectsInvisibleTraffic forces model staleness with
// unscheduled background traffic: the fabric shares links with flows
// the Flowserver cannot see, so its estimates must drift. The auditor
// has to show a clearly larger error than the clean run — this is the
// failure mode the audit exists to catch.
func TestDriftAuditDetectsInvisibleTraffic(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	cfg.NumJobs = 250
	cfg.WarmupJobs = 30

	clean := mustRun(t, cfg)

	cfg.BackgroundLoad = 1.0
	stale := mustRun(t, cfg)

	if clean.Drift == nil || stale.Drift == nil {
		t.Fatal("missing drift summary")
	}
	if stale.Drift.MeanRelErr < 0.3 {
		t.Errorf("stale mean drift %g, want >= 0.3 with invisible traffic", stale.Drift.MeanRelErr)
	}
	if stale.Drift.MeanRelErr < 5*clean.Drift.MeanRelErr {
		t.Errorf("stale mean drift %g not clearly above clean %g",
			stale.Drift.MeanRelErr, clean.Drift.MeanRelErr)
	}
}

// TestDriftNilWithoutFlowserver: schemes that never consult a
// Flowserver have no estimates to audit.
func TestDriftNilWithoutFlowserver(t *testing.T) {
	cfg := smallConfig(SchemeNearestECMP)
	cfg.NumJobs = 100
	cfg.WarmupJobs = 10
	res := mustRun(t, cfg)
	if res.Drift != nil {
		t.Errorf("Drift = %+v for a scheme with no Flowserver, want nil", *res.Drift)
	}
}

// TestFigure4WorkloadDriftBound cross-validates the estimator on the
// Figure 4 workload: the drift bounds documented in DESIGN.md §10 must
// hold, or the paper's selection-quality results rest on a bandwidth
// model that no longer tracks the fabric.
func TestFigure4WorkloadDriftBound(t *testing.T) {
	res := mustRun(t, smallConfig(SchemeMayflower))
	if res.Drift == nil {
		t.Fatal("no drift summary")
	}
	d := *res.Drift
	if d.Samples < 100 {
		t.Fatalf("only %d drift samples; workload too small to validate the bound", d.Samples)
	}
	if d.MeanRelErr >= fig4DriftMeanBound {
		t.Errorf("mean relative drift %g >= documented bound %g", d.MeanRelErr, fig4DriftMeanBound)
	}
	if d.P95RelErr >= fig4DriftP95Bound {
		t.Errorf("p95 relative drift %g >= documented bound %g", d.P95RelErr, fig4DriftP95Bound)
	}
}

// TestMetricsRegistryAndProgress checks the run's instrumentation
// surface: a caller-supplied registry ends up holding the Flowserver's
// counters, the fabric's counters, and the merged drift histogram, and
// a Progress writer receives per-scheme lines.
func TestMetricsRegistryAndProgress(t *testing.T) {
	reg := obs.NewRegistry()
	var progress bytes.Buffer
	cfg := smallConfig(SchemeMayflower)
	cfg.NumJobs = 250
	cfg.WarmupJobs = 30
	cfg.Metrics = reg
	cfg.Progress = &progress
	mustRun(t, cfg)

	snap := reg.Snapshot()
	for _, name := range []string{
		"flowserver.selections",
		"flowserver.polls",
		"netsim.reallocs",
		"experiment.jobs_completed",
		"experiment.drift.mayflower.samples",
	} {
		v, ok := snap.Counters[name]
		if !ok {
			t.Errorf("counter %q missing from snapshot", name)
			continue
		}
		if v <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, v)
		}
	}
	if _, ok := snap.Histograms["experiment.drift.mayflower.rel_err"]; !ok {
		t.Error("drift histogram missing from snapshot")
	}
	out := progress.String()
	if !strings.Contains(out, "Mayflower [netsim]: 250/250 jobs") {
		t.Errorf("progress output missing final line:\n%s", out)
	}
}
