package experiment

import (
	"fmt"

	"github.com/mayflower-dfs/mayflower/internal/stats"
	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// Every figure builder in this file enumerates its (scheme × parameter ×
// trial) grid into a Sweep, executes the cells on the bounded worker
// pool, and assembles the table from the per-group results in
// enumeration order. The assembly is pure, so the rendered tables are
// byte-identical for every Config.Workers value; Config.Trials > 1 adds
// repetitions per point, merged with Student-t confidence intervals.

// NormalizedRow is one bar of Figures 4, 5 and 8: a scheme's average and
// 95th percentile completion time normalized to Mayflower's, with a
// confidence interval on the ratio of means.
type NormalizedRow struct {
	Scheme   Scheme
	AvgRatio float64
	AvgCI    stats.Interval
	P95Ratio float64
	// Raw summaries for reference. With Trials > 1 this pools the
	// completion times of every trial.
	Summary stats.Summary
}

// NormalizedTable is a group of normalized bars sharing one workload.
type NormalizedTable struct {
	Locality workload.Locality
	Lambda   float64
	Rows     []NormalizedRow
}

// Figure4 reproduces Figure 4: average and 95th-percentile job completion
// times of the five schemes normalized to Mayflower, with 50% of clients
// in the same rack as the primary replica (locality 0.5, 0.3, 0.2) and
// λ = 0.07.
func Figure4(base Config) (*NormalizedTable, error) {
	base.Locality = workload.LocalityRackHeavy
	return normalizedComparison(base, AllSchemes)
}

// Figure5 reproduces Figure 5: the Figure 4 comparison across the four
// client-locality distributions (0.5,0.3,0.2), (0.3,0.5,0.2),
// (0.2,0.3,0.5) and (1/3,1/3,1/3). All four tables' cells run in one
// sweep, so the worker pool stays busy across table boundaries.
func Figure5(base Config) ([]*NormalizedTable, error) {
	locs := []workload.Locality{
		workload.LocalityRackHeavy,
		workload.LocalityPodHeavy,
		workload.LocalityCoreHeavy,
		workload.LocalityUniform,
	}
	sw := NewSweep(base)
	for li, loc := range locs {
		for _, s := range AllSchemes {
			cfg := base
			cfg.Locality = loc
			cfg.Scheme = s
			sw.AddPoint(fmt.Sprintf("fig5/%v", loc), float64(li), cfg)
		}
	}
	groups, err := sw.RunGroups()
	if err != nil {
		return nil, err
	}
	tables := make([]*NormalizedTable, 0, len(locs))
	for i, loc := range locs {
		perLoc := groups[i*len(AllSchemes) : (i+1)*len(AllSchemes)]
		tbl, err := normalizedTable(perLoc, loc, base.Lambda)
		if err != nil {
			return nil, fmt.Errorf("locality %v: %w", loc, err)
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// Figure8 reproduces the prototype comparison of Figure 8 on the
// simulator: Mayflower against HDFS with and without Mayflower's network
// scheduler, normalized to Mayflower. (The paper runs this on the
// testbed; the same schemes run here on the shared workload so the
// comparison slots into the figure suite.)
func Figure8(base Config) (*NormalizedTable, error) {
	base.Locality = workload.LocalityRackHeavy
	return normalizedComparison(base, []Scheme{
		SchemeMayflower, SchemeHDFSMayflower, SchemeHDFSECMP,
	})
}

// normalizedComparison runs every scheme on the same workload seed and
// normalizes to the first scheme (Mayflower).
func normalizedComparison(base Config, schemes []Scheme) (*NormalizedTable, error) {
	if len(schemes) == 0 || schemes[0] != SchemeMayflower {
		return nil, fmt.Errorf("experiment: normalized comparison must lead with Mayflower")
	}
	sw := NewSweep(base)
	for _, s := range schemes {
		cfg := base
		cfg.Scheme = s
		sw.AddPoint("norm", 0, cfg)
	}
	groups, err := sw.RunGroups()
	if err != nil {
		return nil, err
	}
	return normalizedTable(groups, base.Locality, base.Lambda)
}

// normalizedTable folds one group per scheme (Mayflower first) into a
// normalized table. With a single trial the ratios carry the Fieller
// interval from stats.RatioCI, exactly as the sequential runner computed
// them; with Trials > 1 each trial contributes one paired ratio (the
// schemes of a trial share the workload seed) and the interval is the
// Student-t CI over those ratios.
func normalizedTable(groups []Group, loc workload.Locality, lambda float64) (*NormalizedTable, error) {
	if len(groups) == 0 || groups[0].Scheme != SchemeMayflower {
		return nil, fmt.Errorf("experiment: normalized comparison must lead with Mayflower")
	}
	baseGroup := groups[0]
	tbl := &NormalizedTable{Locality: loc, Lambda: lambda}
	for _, g := range groups {
		if len(g.Results) != len(baseGroup.Results) {
			return nil, fmt.Errorf("experiment: %v ran %d trials, Mayflower ran %d",
				g.Scheme, len(g.Results), len(baseGroup.Results))
		}
		row := NormalizedRow{Scheme: g.Scheme, Summary: pooledSummary(g.Results)}
		if len(g.Results) == 1 {
			res, baseRes := g.Results[0], baseGroup.Results[0]
			ratio, ci, err := stats.RatioCI(res.CompletionTimes, baseRes.CompletionTimes, 0.95)
			if err != nil {
				// Degenerate sample (e.g. tiny test runs): fall back to
				// the plain ratio without an interval.
				ratio = safeRatio(res.Summary.Mean, baseRes.Summary.Mean)
				ci = stats.Interval{Lo: ratio, Hi: ratio}
			}
			row.AvgRatio = ratio
			row.AvgCI = ci
			row.P95Ratio = safeRatio(res.Summary.P95, baseRes.Summary.P95)
		} else {
			ratios := make([]float64, len(g.Results))
			p95Ratios := make([]float64, len(g.Results))
			for t := range g.Results {
				ratios[t] = safeRatio(g.Results[t].Summary.Mean, baseGroup.Results[t].Summary.Mean)
				p95Ratios[t] = safeRatio(g.Results[t].Summary.P95, baseGroup.Results[t].Summary.P95)
			}
			mean, ci, err := stats.MeanCI(ratios, 0.95)
			if err != nil {
				mean = stats.Mean(ratios)
				ci = stats.Interval{Lo: mean, Hi: mean}
			}
			row.AvgRatio = mean
			row.AvgCI = ci
			row.P95Ratio = stats.Mean(p95Ratios)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

// pooledSummary summarizes the completion times of all trials of a group.
func pooledSummary(results []*Result) stats.Summary {
	if len(results) == 1 {
		return results[0].Summary
	}
	var all []float64
	for _, res := range results {
		all = append(all, res.CompletionTimes...)
	}
	return stats.Summarize(all)
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// SeriesPoint is one (x, scheme) cell of a line figure: the mean
// completion time with its Student-t confidence interval, and the 95th
// percentile.
type SeriesPoint struct {
	X      float64 // λ for Figure 6, oversubscription for Figure 7
	Scheme Scheme
	Mean   float64
	MeanCI stats.Interval
	P95    float64
}

// Series is a line figure: a series of points per scheme.
type Series struct {
	Label    string
	Locality workload.Locality
	Points   []SeriesPoint
}

// Figure6a reproduces Figure 6(a): average and 95th-percentile completion
// times versus the per-server job arrival rate λ ∈ [0.06, 0.14] under
// rack-heavy locality (0.5, 0.3, 0.2).
func Figure6a(base Config) (*Series, error) {
	base.Locality = workload.LocalityRackHeavy
	return lambdaSweep(base, "fig6a", []float64{0.06, 0.07, 0.08, 0.09, 0.10, 0.11, 0.12, 0.13, 0.14})
}

// Figure6b reproduces Figure 6(b): the same sweep for λ ∈ [0.06, 0.10]
// under core-heavy locality (0.2, 0.3, 0.5).
func Figure6b(base Config) (*Series, error) {
	base.Locality = workload.LocalityCoreHeavy
	return lambdaSweep(base, "fig6b", []float64{0.06, 0.07, 0.08, 0.09, 0.10})
}

func lambdaSweep(base Config, label string, lambdas []float64) (*Series, error) {
	sw := NewSweep(base)
	for _, lambda := range lambdas {
		for _, s := range AllSchemes {
			cfg := base
			cfg.Lambda = lambda
			cfg.Scheme = s
			sw.AddPoint(label, lambda, cfg)
		}
	}
	return assembleSeries(sw, label, base.Locality)
}

// assembleSeries runs a sweep and turns each cell group into one series
// point, in enumeration order.
func assembleSeries(sw *Sweep, label string, loc workload.Locality) (*Series, error) {
	groups, err := sw.RunGroups()
	if err != nil {
		return nil, err
	}
	out := &Series{Label: label, Locality: loc}
	for _, g := range groups {
		out.Points = append(out.Points, seriesPoint(g))
	}
	return out, nil
}

// seriesPoint folds one cell group into a series point. A single trial
// reports the Student-t CI over that run's completion times (the
// sequential runner's historical behavior); multiple trials report the
// grand mean with the Student-t CI over the per-trial means — the
// replicated-run methodology (each trial is one independent sample).
func seriesPoint(g Group) SeriesPoint {
	if len(g.Results) == 1 {
		res := g.Results[0]
		mean, ci, err := stats.MeanCI(res.CompletionTimes, 0.95)
		if err != nil {
			mean = res.Summary.Mean
			ci = stats.Interval{Lo: mean, Hi: mean}
		}
		return SeriesPoint{X: g.X, Scheme: g.Scheme, Mean: mean, MeanCI: ci, P95: res.Summary.P95}
	}
	means := make([]float64, len(g.Results))
	p95s := make([]float64, len(g.Results))
	for t, res := range g.Results {
		means[t] = res.Summary.Mean
		p95s[t] = res.Summary.P95
	}
	mean, ci, err := stats.MeanCI(means, 0.95)
	if err != nil {
		mean = stats.Mean(means)
		ci = stats.Interval{Lo: mean, Hi: mean}
	}
	return SeriesPoint{X: g.X, Scheme: g.Scheme, Mean: mean, MeanCI: ci, P95: stats.Mean(p95s)}
}

// Figure7 reproduces Figure 7: the impact of core-to-rack oversubscription
// (8:1, 16:1, 24:1) on Mayflower and Sinbad-R Mayflower at λ = 0.07 with
// rack-heavy locality.
func Figure7(base Config) (*Series, error) {
	base.Locality = workload.LocalityRackHeavy
	sw := NewSweep(base)
	for _, over := range []float64{8, 16, 24} {
		for _, s := range []Scheme{SchemeMayflower, SchemeSinbadRMayflower} {
			cfg := base
			cfg.Oversubscription = over
			cfg.Scheme = s
			sw.AddPoint("fig7", over, cfg)
		}
	}
	return assembleSeries(sw, "fig7", base.Locality)
}

// MultiReadResult is the §4.3 ablation: Mayflower with and without
// parallel multi-replica reads.
type MultiReadResult struct {
	Single, Multi *Result
	// MeanReductionPct is the relative improvement of the mean completion
	// time from enabling multi-replica reads (positive = faster).
	MeanReductionPct float64
	// SkewSummary summarizes the finish-time difference between paired
	// subflows (the paper reports < 1 s for 256 MB reads).
	SkewSummary stats.Summary
}

// MultiRead runs the §4.3 multi-replica read experiment. Both arms run
// as cells of one sweep, so they execute concurrently under -j >= 2.
func MultiRead(base Config) (*MultiReadResult, error) {
	single := base
	single.Scheme = SchemeMayflower
	single.MultiReplica = false
	multi := single
	multi.MultiReplica = true

	sw := NewSweep(base)
	sw.AddPoint("multiread/single", 0, single)
	sw.AddPoint("multiread/multi", 1, multi)
	results, err := sw.Run()
	if err != nil {
		return nil, err
	}
	// Cells are laid out trial-major per arm: single trials first, then
	// multi trials. With Trials > 1 the headline numbers come from trial
	// 0 of each arm (the base seed); the extra trials still run and
	// surface through the sweep's metrics registry.
	rs, rm := results[0], results[len(results)/2]
	out := &MultiReadResult{Single: rs, Multi: rm, SkewSummary: stats.Summarize(rm.SubflowSkews)}
	if rs.Summary.Mean > 0 {
		out.MeanReductionPct = 100 * (rs.Summary.Mean - rm.Summary.Mean) / rs.Summary.Mean
	}
	return out, nil
}

// AblationResult compares the full algorithm against one disabled
// mechanism on the same workload.
type AblationResult struct {
	Name           string
	Full, Ablated  *Result
	MeanRatio      float64 // ablated mean / full mean (>1 = mechanism helps)
	P95Ratio       float64
	DisabledDetail string
}

// AblateCostTerm measures the contribution of Eq. 2's second term (the
// completion-time increase of existing flows).
func AblateCostTerm(base Config) (*AblationResult, error) {
	return ablate(base, "impact-term", "cost reduced to d_j/b_j only", func(c *Config) {
		c.DisableImpactTerm = true
	})
}

// AblateFreeze measures the contribution of the update-freeze slack
// (Pseudocode 2).
func AblateFreeze(base Config) (*AblationResult, error) {
	return ablate(base, "update-freeze", "stats polls overwrite fresh estimates", func(c *Config) {
		c.DisableFreeze = true
	})
}

func ablate(base Config, name, detail string, disable func(*Config)) (*AblationResult, error) {
	full := base
	full.Scheme = SchemeMayflower
	ab := full
	disable(&ab)

	sw := NewSweep(base)
	sw.AddPoint("ablate/"+name+"/full", 0, full)
	sw.AddPoint("ablate/"+name+"/ablated", 1, ab)
	results, err := sw.Run()
	if err != nil {
		return nil, err
	}
	// Trial-major layout per arm, as in MultiRead: the headline
	// comparison pairs trial 0 of both arms.
	rf, ra := results[0], results[len(results)/2]
	return &AblationResult{
		Name:           name,
		Full:           rf,
		Ablated:        ra,
		MeanRatio:      safeRatio(ra.Summary.Mean, rf.Summary.Mean),
		P95Ratio:       safeRatio(ra.Summary.P95, rf.Summary.P95),
		DisabledDetail: detail,
	}, nil
}

// BackgroundSweep measures robustness to non-filesystem cross traffic the
// Flowserver cannot see or schedule (0 = the paper's pure-filesystem
// workload). It probes §4.2's claim that periodically refreshing
// estimates from switch counters keeps the model useful even when it is
// incomplete.
func BackgroundSweep(base Config, loads []float64) (*Series, error) {
	if len(loads) == 0 {
		loads = []float64{0, 0.25, 0.5, 1}
	}
	sw := NewSweep(base)
	for _, load := range loads {
		for _, s := range []Scheme{SchemeMayflower, SchemeSinbadRMayflower, SchemeNearestECMP} {
			cfg := base
			cfg.Scheme = s
			cfg.BackgroundLoad = load
			sw.AddPoint("background-load", load, cfg)
		}
	}
	return assembleSeries(sw, "background-load", base.Locality)
}

// Figure9 is the write-workload figure: completion times as the fraction
// of append jobs grows from a read-only trace to write-heavy mixes.
// Mayflower schedules every write hop (ingest plus the SelectWritePipeline
// replication fan-out); Sinbad-R Mayflower schedules the same hops but
// picks replicas by utilization for its reads; Nearest ECMP is the
// unscheduled baseline whose write hops take hashed paths in static
// replica order.
func Figure9(base Config) (*Series, error) {
	return WriteFractionSweep(base, nil)
}

// WriteFractionSweep runs the Figure 9 sweep over an explicit list of
// write fractions (nil: 0, 0.25, 0.5, 0.75, 1).
func WriteFractionSweep(base Config, fracs []float64) (*Series, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	sw := NewSweep(base)
	for _, frac := range fracs {
		for _, s := range []Scheme{SchemeMayflower, SchemeSinbadRMayflower, SchemeNearestECMP} {
			cfg := base
			cfg.Scheme = s
			cfg.WriteFraction = frac
			sw.AddPoint("write-mix", frac, cfg)
		}
	}
	return assembleSeries(sw, "write-mix", base.Locality)
}

// ShardSweep measures selection quality as the flow controller is
// partitioned: Mayflower's full workload re-run with the flowctl plane
// at increasing shard counts (nil: 1, 2, 4). One shard reproduces the
// single-controller decisions exactly; more shards trade global
// knowledge for partitioned state, with cross-pod selections scored
// against gossiped per-link digests of bounded staleness instead of the
// exact remote model. The figure is the cost of that staleness in
// completion time.
func ShardSweep(base Config, shardCounts []int) (*Series, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	sw := NewSweep(base)
	for _, n := range shardCounts {
		cfg := base
		cfg.Scheme = SchemeMayflower
		cfg.MultiReplica = false
		cfg.Shards = n
		sw.AddPoint("shards", float64(n), cfg)
	}
	return assembleSeries(sw, "shards", base.Locality)
}

// PollSweep measures Mayflower's sensitivity to the switch stats-polling
// interval.
func PollSweep(base Config, intervals []float64) (*Series, error) {
	if len(intervals) == 0 {
		intervals = []float64{0.25, 0.5, 1, 2, 4}
	}
	sw := NewSweep(base)
	for _, iv := range intervals {
		cfg := base
		cfg.Scheme = SchemeMayflower
		cfg.StatsInterval = iv
		sw.AddPoint("poll-interval", iv, cfg)
	}
	return assembleSeries(sw, "poll-interval", base.Locality)
}
