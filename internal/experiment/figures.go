package experiment

import (
	"fmt"

	"github.com/mayflower-dfs/mayflower/internal/stats"
	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// NormalizedRow is one bar of Figures 4 and 5: a scheme's average and 95th
// percentile completion time normalized to Mayflower's, with a Fieller
// confidence interval on the ratio of means.
type NormalizedRow struct {
	Scheme   Scheme
	AvgRatio float64
	AvgCI    stats.Interval
	P95Ratio float64
	// Raw summaries for reference.
	Summary stats.Summary
}

// NormalizedTable is a group of normalized bars sharing one workload.
type NormalizedTable struct {
	Locality workload.Locality
	Lambda   float64
	Rows     []NormalizedRow
}

// Figure4 reproduces Figure 4: average and 95th-percentile job completion
// times of the five schemes normalized to Mayflower, with 50% of clients
// in the same rack as the primary replica (locality 0.5, 0.3, 0.2) and
// λ = 0.07.
func Figure4(base Config) (*NormalizedTable, error) {
	base.Locality = workload.LocalityRackHeavy
	return normalizedComparison(base, AllSchemes)
}

// Figure5 reproduces Figure 5: the Figure 4 comparison across the four
// client-locality distributions (0.5,0.3,0.2), (0.3,0.5,0.2),
// (0.2,0.3,0.5) and (1/3,1/3,1/3).
func Figure5(base Config) ([]*NormalizedTable, error) {
	locs := []workload.Locality{
		workload.LocalityRackHeavy,
		workload.LocalityPodHeavy,
		workload.LocalityCoreHeavy,
		workload.LocalityUniform,
	}
	tables := make([]*NormalizedTable, 0, len(locs))
	for _, loc := range locs {
		cfg := base
		cfg.Locality = loc
		tbl, err := normalizedComparison(cfg, AllSchemes)
		if err != nil {
			return nil, fmt.Errorf("locality %v: %w", loc, err)
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// normalizedComparison runs every scheme on the same workload seed and
// normalizes to the first scheme (Mayflower).
func normalizedComparison(base Config, schemes []Scheme) (*NormalizedTable, error) {
	if len(schemes) == 0 || schemes[0] != SchemeMayflower {
		return nil, fmt.Errorf("experiment: normalized comparison must lead with Mayflower")
	}
	results := make([]*Result, 0, len(schemes))
	for _, s := range schemes {
		cfg := base
		cfg.Scheme = s
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("scheme %v: %w", s, err)
		}
		results = append(results, res)
	}
	baseTimes := results[0].CompletionTimes
	baseSummary := results[0].Summary

	tbl := &NormalizedTable{Locality: base.Locality, Lambda: base.Lambda}
	for i, res := range results {
		row := NormalizedRow{Scheme: schemes[i], Summary: res.Summary}
		ratio, ci, err := stats.RatioCI(res.CompletionTimes, baseTimes, 0.95)
		if err != nil {
			// Degenerate sample (e.g. tiny test runs): fall back to the
			// plain ratio without an interval.
			ratio = safeRatio(res.Summary.Mean, baseSummary.Mean)
			ci = stats.Interval{Lo: ratio, Hi: ratio}
		}
		row.AvgRatio = ratio
		row.AvgCI = ci
		row.P95Ratio = safeRatio(res.Summary.P95, baseSummary.P95)
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// SweepPoint is one (x, scheme) cell of a line figure: the mean completion
// time with its Student-t confidence interval, and the 95th percentile.
type SweepPoint struct {
	X      float64 // λ for Figure 6, oversubscription for Figure 7
	Scheme Scheme
	Mean   float64
	MeanCI stats.Interval
	P95    float64
}

// Sweep is a line figure: a series of points per scheme.
type Sweep struct {
	Label    string
	Locality workload.Locality
	Points   []SweepPoint
}

// Figure6a reproduces Figure 6(a): average and 95th-percentile completion
// times versus the per-server job arrival rate λ ∈ [0.06, 0.14] under
// rack-heavy locality (0.5, 0.3, 0.2).
func Figure6a(base Config) (*Sweep, error) {
	base.Locality = workload.LocalityRackHeavy
	return lambdaSweep(base, "fig6a", []float64{0.06, 0.07, 0.08, 0.09, 0.10, 0.11, 0.12, 0.13, 0.14})
}

// Figure6b reproduces Figure 6(b): the same sweep for λ ∈ [0.06, 0.10]
// under core-heavy locality (0.2, 0.3, 0.5).
func Figure6b(base Config) (*Sweep, error) {
	base.Locality = workload.LocalityCoreHeavy
	return lambdaSweep(base, "fig6b", []float64{0.06, 0.07, 0.08, 0.09, 0.10})
}

func lambdaSweep(base Config, label string, lambdas []float64) (*Sweep, error) {
	sw := &Sweep{Label: label, Locality: base.Locality}
	for _, lambda := range lambdas {
		for _, s := range AllSchemes {
			cfg := base
			cfg.Lambda = lambda
			cfg.Scheme = s
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("λ=%g scheme %v: %w", lambda, s, err)
			}
			sw.Points = append(sw.Points, sweepPoint(lambda, s, res))
		}
	}
	return sw, nil
}

func sweepPoint(x float64, s Scheme, res *Result) SweepPoint {
	mean, ci, err := stats.MeanCI(res.CompletionTimes, 0.95)
	if err != nil {
		mean = res.Summary.Mean
		ci = stats.Interval{Lo: mean, Hi: mean}
	}
	return SweepPoint{X: x, Scheme: s, Mean: mean, MeanCI: ci, P95: res.Summary.P95}
}

// Figure7 reproduces Figure 7: the impact of core-to-rack oversubscription
// (8:1, 16:1, 24:1) on Mayflower and Sinbad-R Mayflower at λ = 0.07 with
// rack-heavy locality.
func Figure7(base Config) (*Sweep, error) {
	base.Locality = workload.LocalityRackHeavy
	sw := &Sweep{Label: "fig7", Locality: base.Locality}
	for _, over := range []float64{8, 16, 24} {
		for _, s := range []Scheme{SchemeMayflower, SchemeSinbadRMayflower} {
			cfg := base
			cfg.Oversubscription = over
			cfg.Scheme = s
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("oversub %g scheme %v: %w", over, s, err)
			}
			sw.Points = append(sw.Points, sweepPoint(over, s, res))
		}
	}
	return sw, nil
}

// MultiReadResult is the §4.3 ablation: Mayflower with and without
// parallel multi-replica reads.
type MultiReadResult struct {
	Single, Multi *Result
	// MeanReductionPct is the relative improvement of the mean completion
	// time from enabling multi-replica reads (positive = faster).
	MeanReductionPct float64
	// SkewSummary summarizes the finish-time difference between paired
	// subflows (the paper reports < 1 s for 256 MB reads).
	SkewSummary stats.Summary
}

// MultiRead runs the §4.3 multi-replica read experiment.
func MultiRead(base Config) (*MultiReadResult, error) {
	single := base
	single.Scheme = SchemeMayflower
	single.MultiReplica = false
	rs, err := Run(single)
	if err != nil {
		return nil, err
	}
	multi := single
	multi.MultiReplica = true
	rm, err := Run(multi)
	if err != nil {
		return nil, err
	}
	out := &MultiReadResult{Single: rs, Multi: rm, SkewSummary: stats.Summarize(rm.SubflowSkews)}
	if rs.Summary.Mean > 0 {
		out.MeanReductionPct = 100 * (rs.Summary.Mean - rm.Summary.Mean) / rs.Summary.Mean
	}
	return out, nil
}

// AblationResult compares the full algorithm against one disabled
// mechanism on the same workload.
type AblationResult struct {
	Name           string
	Full, Ablated  *Result
	MeanRatio      float64 // ablated mean / full mean (>1 = mechanism helps)
	P95Ratio       float64
	DisabledDetail string
}

// AblateCostTerm measures the contribution of Eq. 2's second term (the
// completion-time increase of existing flows).
func AblateCostTerm(base Config) (*AblationResult, error) {
	return ablate(base, "impact-term", "cost reduced to d_j/b_j only", func(c *Config) {
		c.DisableImpactTerm = true
	})
}

// AblateFreeze measures the contribution of the update-freeze slack
// (Pseudocode 2).
func AblateFreeze(base Config) (*AblationResult, error) {
	return ablate(base, "update-freeze", "stats polls overwrite fresh estimates", func(c *Config) {
		c.DisableFreeze = true
	})
}

func ablate(base Config, name, detail string, disable func(*Config)) (*AblationResult, error) {
	full := base
	full.Scheme = SchemeMayflower
	rf, err := Run(full)
	if err != nil {
		return nil, err
	}
	ab := full
	disable(&ab)
	ra, err := Run(ab)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:           name,
		Full:           rf,
		Ablated:        ra,
		MeanRatio:      safeRatio(ra.Summary.Mean, rf.Summary.Mean),
		P95Ratio:       safeRatio(ra.Summary.P95, rf.Summary.P95),
		DisabledDetail: detail,
	}, nil
}

// BackgroundSweep measures robustness to non-filesystem cross traffic the
// Flowserver cannot schedule (0 = the paper's pure-filesystem workload).
// It probes §4.2's claim that periodically refreshing estimates from
// switch counters keeps the model useful even when it is incomplete.
func BackgroundSweep(base Config, loads []float64) (*Sweep, error) {
	if len(loads) == 0 {
		loads = []float64{0, 0.25, 0.5, 1}
	}
	sw := &Sweep{Label: "background-load", Locality: base.Locality}
	for _, load := range loads {
		for _, s := range []Scheme{SchemeMayflower, SchemeSinbadRMayflower, SchemeNearestECMP} {
			cfg := base
			cfg.Scheme = s
			cfg.BackgroundLoad = load
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("background %g scheme %v: %w", load, s, err)
			}
			sw.Points = append(sw.Points, sweepPoint(load, s, res))
		}
	}
	return sw, nil
}

// PollSweep measures Mayflower's sensitivity to the switch stats-polling
// interval.
func PollSweep(base Config, intervals []float64) (*Sweep, error) {
	if len(intervals) == 0 {
		intervals = []float64{0.25, 0.5, 1, 2, 4}
	}
	sw := &Sweep{Label: "poll-interval", Locality: base.Locality}
	for _, iv := range intervals {
		cfg := base
		cfg.Scheme = SchemeMayflower
		cfg.StatsInterval = iv
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("interval %g: %w", iv, err)
		}
		sw.Points = append(sw.Points, sweepPoint(iv, SchemeMayflower, res))
	}
	return sw, nil
}
