package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenShardSweep pins the flowctl shard-count figure: Mayflower's
// workload replayed with the control plane partitioned 1/2/4 ways. The
// sharded rows quantify what bounded-staleness digests cost relative to
// the exact single-controller model on the same trace.
func TestGoldenShardSweep(t *testing.T) {
	cfg := goldenConfig()
	cfg.Workers = 4
	sw, err := ShardSweep(cfg, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	var txt, csv bytes.Buffer
	if err := WriteSweep(&txt, sw, "shards"); err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepCSV(&csv, sw, "shards"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "shards.golden", txt.Bytes())
	checkGolden(t, "shards.csv.golden", csv.Bytes())
}

// TestShardSweepWorkerInvariance: the sharded plane is as deterministic
// as the single controller — the sweep renders byte-identical tables
// sequentially and under -j 8.
func TestShardSweepWorkerInvariance(t *testing.T) {
	run := func(workers int) []byte {
		cfg := goldenConfig()
		cfg.NumJobs = 100
		cfg.Workers = workers
		sw, err := ShardSweep(cfg, []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSweep(&buf, sw, "shards"); err != nil {
			t.Fatal(err)
		}
		if err := WriteSweepCSV(&buf, sw, "shards"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq, par := run(1), run(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("shard sweep differs across worker counts.\n--- workers=1\n%s--- workers=8\n%s", seq, par)
	}
}

// requireGolden compares against an existing golden file and never
// rewrites it — the byte-identity tests below assert equality with
// tables owned by other tests, so -update must not route through here.
func requireGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Shards=1 output drifted from %s.\n--- want\n%s--- got\n%s", name, want, got)
	}
}

// TestGoldenShards1ByteIdentity is the acceptance gate for the sharded
// control plane: every golden figure regenerated with Config.Shards = 1
// (the flowctl plane wrapping one shard) must reproduce the existing
// golden bytes exactly. A single shard delegates verbatim — no digests,
// no id striding, no directory hops on the decision path.
func TestGoldenShards1ByteIdentity(t *testing.T) {
	cfg := goldenConfig()
	cfg.Workers = 4
	cfg.Shards = 1

	t.Run("figure4", func(t *testing.T) {
		tbl, err := Figure4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var txt, csv bytes.Buffer
		if err := WriteNormalizedTable(&txt, tbl); err != nil {
			t.Fatal(err)
		}
		if err := WriteNormalizedCSV(&csv, tbl); err != nil {
			t.Fatal(err)
		}
		requireGolden(t, "figure4.golden", txt.Bytes())
		requireGolden(t, "figure4.csv.golden", csv.Bytes())
	})

	t.Run("figure6b", func(t *testing.T) {
		sw, err := lambdaSweep(cfg, "figure 6(b) reduced: mean completion vs λ", []float64{0.06, 0.09})
		if err != nil {
			t.Fatal(err)
		}
		var txt bytes.Buffer
		if err := WriteSweep(&txt, sw, "lambda"); err != nil {
			t.Fatal(err)
		}
		requireGolden(t, "figure6b.golden", txt.Bytes())
	})

	t.Run("figure7", func(t *testing.T) {
		sw, err := Figure7(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var txt bytes.Buffer
		if err := WriteSweep(&txt, sw, "oversub"); err != nil {
			t.Fatal(err)
		}
		requireGolden(t, "figure7.golden", txt.Bytes())
	})

	t.Run("figure9", func(t *testing.T) {
		sw, err := WriteFractionSweep(cfg, []float64{0.25, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		var txt bytes.Buffer
		if err := WriteSweep(&txt, sw, "write-frac"); err != nil {
			t.Fatal(err)
		}
		requireGolden(t, "figure9.golden", txt.Bytes())
	})
}

// TestShardedRunCompletes smoke-tests a sharded cell end to end and
// checks every job is accounted for (no flows stall when cross-pod
// selections run against digest estimates).
func TestShardedRunCompletes(t *testing.T) {
	cfg := goldenConfig()
	cfg.NumJobs = 120
	cfg.WarmupJobs = 20
	cfg.Shards = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.CompletionTimes), cfg.NumJobs-cfg.WarmupJobs; got != want {
		t.Errorf("completed %d of %d measured jobs", got, want)
	}
	if res.Drift == nil {
		t.Error("sharded run reported no drift audit")
	}
}

// TestShardsValidation: the config rejects sharded multi-replica (the
// §4.3 trial-commit would need an atomic two-shard snapshot).
func TestShardsValidation(t *testing.T) {
	cfg := goldenConfig()
	cfg.Shards = 2
	cfg.MultiReplica = true
	if _, err := Run(cfg); err == nil {
		t.Error("sharded multi-replica accepted")
	}
	cfg.MultiReplica = false
	cfg.Shards = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative shard count accepted")
	}
}
