package experiment

import (
	"math"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// crossTopo is the CI-sized cross-validation topology: 8 hosts in 2 pods
// × 2 racks × 2 hosts at 16 Mbps edges, so an emulated run's transfers
// finish in fractions of a second.
func crossTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Config{
		Pods: 2, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: 16e6, EdgeAggLinkBps: 16e6, AggCoreLinkBps: 8e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// crossConfig is one scheme's cross-validation run: a short trace of
// small reads that still overlaps flows enough to exercise fair sharing,
// selection, and stats polling.
func crossConfig(t *testing.T, scheme Scheme, backend BackendKind) Config {
	cfg := Config{
		Scheme:        scheme,
		Lambda:        3.0, // dense enough that transfers overlap and share links
		NumJobs:       24,
		WarmupJobs:    4,
		NumFiles:      12,
		FileBits:      2e6, // 2 Mbit: 0.125 s alone at 16 Mbps
		Replication:   3,
		Locality:      workload.LocalityRackHeavy,
		StatsInterval: 0.25,
		Seed:          7,
		Backend:       backend,
		Topo:          crossTopo(t),
	}
	if backend == BackendEmunet {
		cfg.EmuSpeedup = 4
	}
	return cfg
}

// TestCrossValidation runs every scheme of the paper's evaluation — the
// five §6.2 schemes plus the two HDFS Figure-8 schemes — through the one
// backend-parameterized driver on both substrates and asserts the mean
// read-completion times agree.
//
// Tolerance: the emulator's pacer sends 16 KB chunks (128 Kbit ≈ 8 ms of
// fabric time per chunk at 16 Mbps, the granularity at which rate changes
// take hold) and sleeps on the OS timer through a 4x-compressed clock
// (≈1-4 ms of fabric-time slop per sleep), and completion-callback
// timing feeds back into selection, so per-job times genuinely diverge.
// What must hold for the evaluation to be credible is that the schemes'
// aggregate behaviour matches; we allow the mean 35% relative + 80 ms
// absolute slack, far tighter than the ≥2x between-scheme separations
// the figures report.
func TestCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation moves real paced bytes; skipped in -short")
	}
	schemes := []Scheme{
		SchemeMayflower,
		SchemeSinbadRMayflower,
		SchemeSinbadRECMP,
		SchemeNearestMayflower,
		SchemeNearestECMP,
		SchemeHDFSECMP,
		SchemeHDFSMayflower,
	}
	// Serial on purpose: parallel subtests would contend for CPU and
	// distort the emulator's pacing.
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			simRes, err := Run(crossConfig(t, scheme, BackendNetsim))
			if err != nil {
				t.Fatalf("netsim run: %v", err)
			}
			emuRes, err := Run(crossConfig(t, scheme, BackendEmunet))
			if err != nil {
				t.Fatalf("emunet run: %v", err)
			}
			if len(simRes.CompletionTimes) != len(emuRes.CompletionTimes) {
				t.Fatalf("job counts differ: netsim %d, emunet %d",
					len(simRes.CompletionTimes), len(emuRes.CompletionTimes))
			}
			simMean := simRes.Summary.Mean
			emuMean := emuRes.Summary.Mean
			diff := math.Abs(simMean - emuMean)
			tol := 0.35*simMean + 0.08
			t.Logf("mean completion: netsim %.3fs, emunet %.3fs (diff %.3fs, tol %.3fs)",
				simMean, emuMean, diff, tol)
			if diff > tol {
				t.Errorf("backends disagree: netsim mean %.3fs vs emunet mean %.3fs (tolerance %.3fs)",
					simMean, emuMean, tol)
			}
		})
	}
}
