// Package experiment reproduces the Mayflower paper's simulation
// evaluation (§6): it wires the synthetic workload generator, the five
// replica/path-selection schemes of §6.2, and the flow-level network
// simulator together, and reports the job completion time statistics shown
// in Figures 4 through 7 (plus the §4.3 multi-replica result and the
// ablations called out in DESIGN.md).
package experiment

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"github.com/mayflower-dfs/mayflower/internal/emunet"
	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/flowctl"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/netsim"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/selection"
	"github.com/mayflower-dfs/mayflower/internal/stats"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// BackendKind selects the network substrate an experiment runs on.
type BackendKind int

// The two fabric backends. The zero value is the simulator, so existing
// configurations (and the figure reproductions) are unchanged.
const (
	// BackendNetsim runs the flow-level simulator in virtual time.
	BackendNetsim BackendKind = iota
	// BackendEmunet moves real paced bytes over the emulated network in
	// wall time (optionally compressed by EmuSpeedup).
	BackendEmunet
)

// String names the backend.
func (b BackendKind) String() string {
	switch b {
	case BackendNetsim:
		return "netsim"
	case BackendEmunet:
		return "emunet"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(b))
	}
}

// Scheme is a replica-selection + path-selection combination (§6.2).
type Scheme int

// The five schemes of the replica/path selection comparison, plus the two
// HDFS-based schemes of the prototype comparison (Figure 8).
const (
	// SchemeMayflower is the paper's contribution: joint replica and path
	// selection by the Flowserver.
	SchemeMayflower Scheme = iota + 1
	// SchemeSinbadRMayflower: Sinbad-R replica selection, Mayflower's
	// flow scheduler for the path.
	SchemeSinbadRMayflower
	// SchemeSinbadRECMP: Sinbad-R replica selection, ECMP paths.
	SchemeSinbadRECMP
	// SchemeNearestMayflower: nearest replica, Mayflower path scheduler.
	SchemeNearestMayflower
	// SchemeNearestECMP: nearest replica, ECMP paths ("HDFS with ECMP").
	SchemeNearestECMP
	// SchemeHDFSECMP: HDFS rack-aware replica selection with ECMP.
	SchemeHDFSECMP
	// SchemeHDFSMayflower: HDFS rack-aware replica selection with the
	// Mayflower flow scheduler.
	SchemeHDFSMayflower
)

// String returns the scheme name as the paper's figures label it.
func (s Scheme) String() string {
	switch s {
	case SchemeMayflower:
		return "Mayflower"
	case SchemeSinbadRMayflower:
		return "Sinbad-R Mayflower"
	case SchemeSinbadRECMP:
		return "Sinbad-R ECMP"
	case SchemeNearestMayflower:
		return "Nearest Mayflower"
	case SchemeNearestECMP:
		return "Nearest ECMP"
	case SchemeHDFSECMP:
		return "HDFS-ECMP"
	case SchemeHDFSMayflower:
		return "HDFS-Mayflower"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// AllSchemes lists the five schemes of Figures 4-6 in the paper's bar
// order.
var AllSchemes = []Scheme{
	SchemeMayflower,
	SchemeSinbadRMayflower,
	SchemeSinbadRECMP,
	SchemeNearestMayflower,
	SchemeNearestECMP,
}

// Config parameterizes one simulation run.
type Config struct {
	// Scheme is the replica/path selection combination under test.
	Scheme Scheme
	// Oversubscription is the core-to-rack ratio (8, 16 or 24).
	Oversubscription float64
	// Lambda is the Poisson job arrival rate per server per second.
	Lambda float64
	// NumJobs is the number of read jobs to simulate.
	NumJobs int
	// WarmupJobs are excluded from the reported statistics while the
	// system ramps up.
	WarmupJobs int
	// NumFiles is the catalog size.
	NumFiles int
	// FileBits is the per-job read size (the paper reads 256 MB blocks).
	FileBits float64
	// Replication is the number of replicas per file (3 in the paper).
	Replication int
	// Locality is the staggered client placement distribution.
	Locality workload.Locality
	// StatsInterval is the switch-counter polling period in seconds.
	StatsInterval float64
	// MultiReplica enables §4.3 parallel multi-replica reads
	// (Mayflower scheme only).
	MultiReplica bool
	// Shards selects the control-plane deployment for the schemes that
	// run a Flowserver. 0 (the default, and the historical behaviour)
	// runs the single in-process flowserver.Server directly. >= 1 runs
	// the sharded flowctl plane: 1 is a single shard (byte-identical
	// decisions to 0 — flowctl delegates verbatim, which the golden
	// suite pins), and N >= 2 partitions the link model by pod across N
	// shards with directory routing and gossiped utilization digests.
	// Schemes without a Flowserver ignore the knob.
	Shards int
	// WriteFraction is the fraction of jobs that are appends instead of
	// reads (0 = the paper's read-only workload, leaving every read
	// figure unchanged). A write job moves the payload from the client
	// to the file's primary and then fans the replication out from the
	// primary to the remaining replicas; under the Mayflower path
	// schemes every hop is registered with the Flowserver, and the
	// replication order comes from SelectWritePipeline's cost estimates
	// (§3.3). Whether a given job writes is a pure hash of (Seed, job
	// ID), so the decision is identical across schemes and worker
	// counts.
	WriteFraction float64
	// MetaLeaseSeconds models the client metadata lease cache on the
	// simulated metadata path: every job charges its client one
	// nameserver Lookup the first time it touches a file, a (cheap,
	// batched) Validate when an expired lease is renewed, and nothing
	// while the lease is live. 0 (the default, and the historical
	// behaviour) models no cache: every job costs one Lookup. The model
	// is pure bookkeeping — it reads the fabric clock but starts no
	// flows and draws no randomness — so completion-time results are
	// identical for every value; only Result.NSLookups/NSValidates move.
	MetaLeaseSeconds float64
	// DisableImpactTerm / DisableFreeze are the DESIGN.md ablations.
	DisableImpactTerm bool
	DisableFreeze     bool
	// Backend selects the network substrate; the zero value is the
	// flow-level simulator. Results are deterministic only on
	// BackendNetsim — BackendEmunet is subject to real scheduling and
	// pacing jitter, which is what cross-validation quantifies.
	Backend BackendKind
	// Topo overrides the topology (nil: the paper testbed at
	// Oversubscription). Cross-validation uses a CI-sized topology here so
	// emulated runs finish in seconds.
	Topo *topology.Topology
	// EmuSpeedup compresses the emulator's wall clock (BackendEmunet
	// only): the run's fabric timeline is unchanged but elapses
	// EmuSpeedup times faster. <= 0 or unset means real time.
	EmuSpeedup float64
	// BackgroundLoad injects non-filesystem cross traffic the Flowserver
	// cannot see or schedule: random host-to-host transfers over ECMP
	// paths arriving at BackgroundLoad times the job rate, each moving
	// one file-sized payload. The paper's workload studies note that
	// 54-85% of datacenter traffic is filesystem traffic (§2.2) — this
	// knob models the rest and probes §4.2's claim that periodic counter
	// polls keep bandwidth estimates from drifting when the model is
	// incomplete.
	BackgroundLoad float64
	// Seed drives all randomness; equal seeds give identical traces.
	Seed int64
	// Trials repeats every figure cell this many times on independently
	// derived seeds (trial 0 keeps Seed, trial k mixes k in via
	// testutil.DeriveSeed) and merges each cell group's statistics with
	// Student-t confidence intervals over the trial means. 0 or 1 means
	// a single trial, reproducing the historical single-run tables.
	// Run ignores Trials — it is a sweep-level knob consumed by the
	// figure builders.
	Trials int
	// Workers bounds how many sweep cells the figure builders execute
	// concurrently; 0 means GOMAXPROCS. Results and rendered tables are
	// byte-identical for every Workers value (see Sweep).
	Workers int
	// Metrics, when set, receives the run's instrumentation: flowserver
	// counters, fabric reallocation counters, job progress, and the
	// accumulated drift histograms under "experiment.drift.<scheme>".
	// Instrumentation runs either way (atomic-only, off the result path);
	// a nil registry just keeps it private to the run.
	Metrics *obs.Registry
	// Progress, when set, receives a coarse per-scheme progress line as
	// jobs complete (intended for stderr on long sweeps). Nothing is
	// written when nil, keeping figure tables on stdout byte-identical.
	Progress io.Writer
}

// Defaults returns the paper's default parameters for a scheme: the §6.1
// testbed at 8:1 oversubscription, λ = 0.07, 256 MB reads, replication 3,
// rack-heavy locality (0.5, 0.3, 0.2), and 1 s stats polling.
func Defaults(scheme Scheme) Config {
	return Config{
		Scheme:           scheme,
		Oversubscription: 8,
		Lambda:           0.07,
		NumJobs:          1200,
		WarmupJobs:       100,
		NumFiles:         300,
		FileBits:         256 * 8 * 1e6, // 256 MB
		Replication:      3,
		Locality:         workload.LocalityRackHeavy,
		StatsInterval:    1.0,
		Seed:             1,
	}
}

func (c Config) validate() error {
	switch {
	case c.Scheme < SchemeMayflower || c.Scheme > SchemeHDFSMayflower:
		return fmt.Errorf("experiment: unknown scheme %d", int(c.Scheme))
	case c.Backend < BackendNetsim || c.Backend > BackendEmunet:
		return fmt.Errorf("experiment: unknown backend %d", int(c.Backend))
	case c.Topo == nil && c.Oversubscription <= 0:
		return fmt.Errorf("experiment: oversubscription must be > 0, got %g", c.Oversubscription)
	case c.NumJobs <= 0:
		return fmt.Errorf("experiment: NumJobs must be > 0, got %d", c.NumJobs)
	case c.WarmupJobs < 0 || c.WarmupJobs >= c.NumJobs:
		return fmt.Errorf("experiment: WarmupJobs %d out of range for %d jobs", c.WarmupJobs, c.NumJobs)
	case c.StatsInterval <= 0:
		return fmt.Errorf("experiment: StatsInterval must be > 0, got %g", c.StatsInterval)
	case c.Shards < 0:
		return fmt.Errorf("experiment: Shards must be >= 0, got %d", c.Shards)
	case c.Shards > 1 && c.MultiReplica:
		return fmt.Errorf("experiment: multi-replica reads require a single controller (Shards <= 1)")
	case c.WriteFraction < 0 || c.WriteFraction > 1:
		return fmt.Errorf("experiment: WriteFraction must be in [0, 1], got %g", c.WriteFraction)
	case c.MetaLeaseSeconds < 0:
		return fmt.Errorf("experiment: MetaLeaseSeconds must be >= 0, got %g", c.MetaLeaseSeconds)
	case c.Trials < 0:
		return fmt.Errorf("experiment: Trials must be >= 0, got %d", c.Trials)
	case c.Workers < 0:
		return fmt.Errorf("experiment: Workers must be >= 0, got %d", c.Workers)
	}
	return nil
}

// Result is the outcome of one simulation run.
type Result struct {
	Config Config
	// CompletionTimes holds per-job completion times in seconds
	// (arrival to last byte), warmup excluded, in arrival order.
	CompletionTimes []float64
	// SubflowSkews holds, for each job that was split across two
	// replicas, the absolute difference between the subflows' finish
	// times (§4.3 reports this stays under a second).
	SubflowSkews []float64
	// SplitJobs counts jobs served from two replicas in parallel.
	SplitJobs int
	// LocalJobs counts jobs whose chosen replica was co-located with the
	// client (zero network time).
	LocalJobs int
	// WriteJobs counts measured jobs that ran as appends (see
	// Config.WriteFraction).
	WriteJobs int
	// NSLookups counts modeled full nameserver Lookup RPCs over the whole
	// trace (warmup included): one per job without a metadata lease
	// cache, one per first (client, file) touch with it. See
	// Config.MetaLeaseSeconds.
	NSLookups int
	// NSValidates counts modeled batched lease renewals (ns.Validate):
	// charged when a job finds its lease expired. Zero without a cache.
	NSValidates int
	// Summary aggregates CompletionTimes.
	Summary stats.Summary
	// Drift is the flow-model drift audit for schemes that ran a
	// Flowserver: every stats-poll tick compared each live flow's
	// bandwidth estimate against the fabric's ground-truth rate. Nil for
	// schemes without a Flowserver.
	Drift *obs.DriftSummary
}

// Run executes one experiment — the whole trace on the configured
// fabric backend — and returns its result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topo
	if topo == nil {
		var err error
		topo, err = topology.New(topology.PaperTestbed(cfg.Oversubscription))
		if err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat, err := workload.NewCatalog(topo, rng, workload.CatalogConfig{
		NumFiles:    cfg.NumFiles,
		SizeBits:    cfg.FileBits,
		Replication: cfg.Replication,
		Placement:   workload.PlacementPaperEval,
	})
	if err != nil {
		return nil, err
	}
	jobs, err := workload.Generate(topo, rng, cat, workload.TraceConfig{
		LambdaPerServer: cfg.Lambda,
		NumJobs:         cfg.NumJobs,
		ZipfSkew:        1.1,
		Locality:        cfg.Locality,
	})
	if err != nil {
		return nil, err
	}

	var fab fabric.Backend
	switch cfg.Backend {
	case BackendNetsim:
		fab = netsim.New(topo)
	case BackendEmunet:
		fab = emunet.NewFabric(emunet.NewWithClock(topo, fabric.NewScaledClock(cfg.EmuSpeedup)))
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// Both backends expose their reallocation counters; the interface
	// assertion keeps fabric.Backend itself observability-free.
	if am, ok := fab.(interface{ AttachMetrics(*obs.Registry) }); ok {
		am.AttachMetrics(reg)
	}

	r := &runner{
		cfg:   cfg,
		topo:  topo,
		fab:   fab,
		rng:   rng,
		cat:   cat,
		reg:   reg,
		audit: obs.NewDriftAuditor(),
		res:   &Result{Config: cfg},
	}
	r.jobsStarted = reg.Counter("experiment.jobs_started")
	r.jobsCompleted = reg.Counter("experiment.jobs_completed")
	r.jobsSkipped = reg.Counter("experiment.jobs_skipped")
	r.jobsLocal = reg.Counter("experiment.jobs_local")
	r.jobsSplit = reg.Counter("experiment.jobs_split")
	r.jobsWrite = reg.Counter("experiment.jobs_write")
	r.nsLookups = reg.Counter("experiment.ns_lookups")
	r.nsValidates = reg.Counter("experiment.ns_validates")
	if cfg.MetaLeaseSeconds > 0 {
		r.leases = make(map[leaseKey]float64)
	}
	if err := r.setupPolicies(); err != nil {
		return nil, err
	}
	r.scheduleJobs(jobs)
	if cfg.BackgroundLoad > 0 && len(jobs) > 0 {
		r.scheduleBackground(jobs[len(jobs)-1].Time)
	}
	r.schedulePolling()
	if err := r.fab.Run(); err != nil {
		return nil, err
	}

	if got, want := len(r.res.CompletionTimes)+r.skipped, cfg.NumJobs-cfg.WarmupJobs; got != want {
		return nil, fmt.Errorf("experiment: recorded %d of %d measured jobs", got, want)
	}
	r.res.Summary = stats.Summarize(r.res.CompletionTimes)
	// Jobs that started but neither completed nor were skipped stalled in
	// the fabric; with a healthy run this gauge reads zero.
	reg.Gauge("experiment.jobs_stalled").Set(
		r.jobsStarted.Value() - r.jobsCompleted.Value() - r.jobsSkipped.Value())
	if r.fs != nil {
		d := r.audit.Summary()
		c := r.fs.Counters()
		d.FreezeHits = c.FreezeHits
		d.FreezeExpirations = c.FreezeExpirations
		d.PollDropsDT = c.PollDropsDT
		d.PollDropsRegress = c.PollDropsRegress
		d.PollDropsSkew = c.PollDropsSkewFuture + c.PollDropsSkewPast
		r.res.Drift = &d
		r.audit.MergeInto(reg, "experiment.drift."+schemeSlug(cfg.Scheme))
	}
	return r.res, nil
}

// schemeSlug turns a scheme's display name into a metric-name segment
// ("Sinbad-R Mayflower" → "sinbad-r-mayflower").
func schemeSlug(s Scheme) string {
	return strings.ReplaceAll(strings.ToLower(s.String()), " ", "-")
}

// runner carries the per-run state. All of its callbacks run as fabric
// driver callbacks, which the backend serializes, so the runner needs no
// locking on either substrate.
type runner struct {
	cfg  Config
	topo *topology.Topology
	fab  fabric.Backend
	rng  *rand.Rand
	cat  *workload.Catalog
	res  *Result

	// Policy components; which are non-nil depends on the scheme. fs is
	// the flow controller — a bare flowserver.Server (Config.Shards ==
	// 0) or a flowctl.Plane (>= 1); both satisfy controlPlane.
	fs      controlPlane
	nearest *selection.Nearest
	hdfs    *selection.HDFSRackAware
	sinbad  *selection.SinbadR
	ecmp    *selection.ECMP

	// Sinbad-R's (stale) utilization snapshot, refreshed every poll.
	util     selection.StaticUtilization
	lastPoll float64
	prevBits []float64

	// Mayflower flow bookkeeping: Flowserver id → fabric flow id.
	tracked map[flowserver.FlowID]fabric.FlowID

	// Observability: the run's registry, the per-run drift auditor, and
	// the job-progress counters (registry-owned, atomic).
	reg           *obs.Registry
	audit         *obs.DriftAuditor
	jobsStarted   *obs.Counter
	jobsCompleted *obs.Counter
	jobsSkipped   *obs.Counter
	jobsLocal     *obs.Counter
	jobsSplit     *obs.Counter
	jobsWrite     *obs.Counter
	nsLookups     *obs.Counter
	nsValidates   *obs.Counter
	completed     int // jobs finished, for the progress line

	// Metadata-path model: per-(client, file) lease expiries in fabric
	// time. Nil when Config.MetaLeaseSeconds is zero (no cache).
	leases map[leaseKey]float64

	skipped int // failed selections (should stay zero)
	polling bool
}

// controlPlane is the flow-controller surface the runner drives. Both
// the bare flowserver.Server and the sharded flowctl.Plane satisfy it,
// so the trace logic is identical under either deployment.
type controlPlane interface {
	SelectReplicaAndPath(flowserver.Request) ([]flowserver.Assignment, error)
	SelectPath(client, replica topology.NodeID, bits float64) (flowserver.Assignment, error)
	SelectWritePipeline(source topology.NodeID, targets []topology.NodeID, bits float64) ([]flowserver.Assignment, error)
	FlowFinished(flowserver.FlowID)
	EstimatedBW(flowserver.FlowID) (float64, bool)
	PollFrom(now float64, src flowserver.StatsSource)
	Counters() flowserver.StatsCounters
}

func (r *runner) setupPolicies() error {
	cfg := r.cfg
	usesFlowserver := false
	switch cfg.Scheme {
	case SchemeMayflower, SchemeSinbadRMayflower, SchemeNearestMayflower, SchemeHDFSMayflower:
		usesFlowserver = true
	}
	if usesFlowserver {
		opts := flowserver.Options{
			MultiReplica:      cfg.MultiReplica && cfg.Scheme == SchemeMayflower,
			DisableImpactTerm: cfg.DisableImpactTerm,
			DisableFreeze:     cfg.DisableFreeze,
			Now:               r.fab.Now,
			Metrics:           r.reg,
		}
		if cfg.Shards > 0 {
			plane, err := flowctl.NewPlane(r.topo, flowctl.Options{
				Shards:            cfg.Shards,
				MultiReplica:      opts.MultiReplica,
				DisableImpactTerm: opts.DisableImpactTerm,
				DisableFreeze:     opts.DisableFreeze,
				Now:               opts.Now,
				Metrics:           r.reg,
			})
			if err != nil {
				return err
			}
			r.fs = plane
		} else {
			r.fs = flowserver.New(r.topo, opts)
		}
		r.tracked = make(map[flowserver.FlowID]fabric.FlowID)
		r.polling = true
	}
	switch cfg.Scheme {
	case SchemeNearestMayflower, SchemeNearestECMP:
		r.nearest = selection.NewNearest(r.topo, r.rng)
	case SchemeHDFSECMP, SchemeHDFSMayflower:
		r.hdfs = selection.NewHDFSRackAware(r.topo, r.rng)
	case SchemeSinbadRMayflower, SchemeSinbadRECMP:
		r.util = make(selection.StaticUtilization)
		r.sinbad = selection.NewSinbadR(r.topo, r.rng, r.util)
		r.prevBits = make([]float64, r.topo.NumLinks())
		r.polling = true
	}
	switch cfg.Scheme {
	case SchemeSinbadRECMP, SchemeNearestECMP, SchemeHDFSECMP:
		r.ecmp = selection.NewECMP(r.topo)
	}
	return nil
}

func (r *runner) scheduleJobs(jobs []workload.Job) {
	for _, job := range jobs {
		job := job
		r.fab.Schedule(job.Time, func() { r.startJob(job) })
	}
}

// scheduleBackground injects cross traffic until the trace ends: random
// host pairs move file-sized payloads over ECMP paths. These flows never
// touch the Flowserver's model or Sinbad-R's visibility beyond what the
// link counters naturally report.
func (r *runner) scheduleBackground(horizon float64) {
	bgRng := rand.New(rand.NewSource(r.cfg.Seed + 0x6267)) // independent stream
	bgECMP := selection.NewECMP(r.topo)
	hosts := r.topo.Hosts()
	rate := r.cfg.Lambda * float64(len(hosts)) * r.cfg.BackgroundLoad
	var now float64
	for key := uint64(0); ; key++ {
		now += bgRng.ExpFloat64() / rate
		if now > horizon {
			return
		}
		src := hosts[bgRng.Intn(len(hosts))]
		dst := hosts[bgRng.Intn(len(hosts))]
		if src == dst {
			continue
		}
		path, err := bgECMP.SelectPath(src, dst, key)
		if err != nil {
			continue
		}
		bits := r.cfg.FileBits
		start := now
		r.fab.Schedule(start, func() {
			r.fab.StartFlow(fabric.FlowConfig{Links: path, Bits: bits})
		})
	}
}

// schedulePolling installs the periodic stats collection loop: switch
// counters feed the Flowserver's bandwidth model and Sinbad-R's
// utilization snapshot. Polling pauses while the network is idle and is
// restarted by ensurePolling when new flows appear.
func (r *runner) schedulePolling() {
	if !r.polling {
		return
	}
	r.fab.Schedule(r.cfg.StatsInterval, r.pollTick)
}

// ensurePolling restarts the polling loop after an idle pause.
func (r *runner) ensurePolling() {
	if r.polling || (r.fs == nil && r.sinbad == nil) {
		return
	}
	r.polling = true
	r.fab.Schedule(r.fab.Now()+r.cfg.StatsInterval, r.pollTick)
}

// pollTick performs one stats collection cycle and re-arms itself while
// flows remain in the network.
func (r *runner) pollTick() {
	now := r.fab.Now()
	if r.fs != nil {
		r.fs.PollFrom(now, r)
		// Drift audit: compare each live flow's post-poll estimate
		// against the fabric's ground-truth fair-share rate. Read-only
		// against both layers — no RNG, no model writes — so enabling it
		// cannot perturb the run.
		for fsID, fabID := range r.tracked {
			est, ok := r.fs.EstimatedBW(fsID)
			if !ok {
				continue
			}
			r.audit.Record(est, r.fab.FlowRate(fabID))
		}
	}
	if r.sinbad != nil {
		dt := now - r.lastPoll
		if dt > 0 {
			for id := 0; id < r.topo.NumLinks(); id++ {
				lid := topology.LinkID(id)
				bits := r.fab.LinkTransferred(lid)
				r.util[lid] = (bits - r.prevBits[id]) / dt
				r.prevBits[id] = bits
			}
		}
		r.lastPoll = now
	}
	if r.fab.NumActiveFlows() > 0 {
		r.fab.Schedule(now+r.cfg.StatsInterval, r.pollTick)
	} else {
		r.polling = false
	}
}

// FlowStats implements flowserver.StatsSource: the driver reads each
// tracked flow's byte counter straight off the fabric, standing in for
// the testbed's edge-switch stats requests.
func (r *runner) FlowStats() []flowserver.FlowStat {
	batch := make([]flowserver.FlowStat, 0, len(r.tracked))
	for fsID, fabID := range r.tracked {
		batch = append(batch, flowserver.FlowStat{
			ID:              fsID,
			TransferredBits: r.fab.FlowTransferred(fabID),
		})
	}
	return batch
}

// leaseKey identifies one client's cached metadata for one file.
type leaseKey struct {
	client topology.NodeID
	file   int
}

// metaLookup charges the metadata-path cost of one job against the
// modeled nameserver: a full Lookup on the first touch (or always,
// without a cache), a batched Validate to renew an expired lease, and
// nothing while the lease is live. The catalog is immutable during a
// run, so a renewal never changes the record — the model stays pure
// bookkeeping and cannot perturb completion times.
func (r *runner) metaLookup(job workload.Job) {
	if r.leases == nil {
		r.res.NSLookups++
		r.nsLookups.Inc()
		return
	}
	key := leaseKey{client: job.Client, file: job.FileIndex}
	now := r.fab.Now()
	exp, ok := r.leases[key]
	switch {
	case ok && now < exp:
		return // live lease: no nameserver traffic
	case ok:
		r.res.NSValidates++
		r.nsValidates.Inc()
	default:
		r.res.NSLookups++
		r.nsLookups.Inc()
	}
	r.leases[key] = now + r.cfg.MetaLeaseSeconds
}

// startJob performs replica/path selection for one job and launches its
// flow(s) on the fabric.
func (r *runner) startJob(job workload.Job) {
	r.metaLookup(job)
	if r.isWriteJob(job.ID) {
		r.startWriteJob(job)
		return
	}
	file := &r.cat.Files[job.FileIndex]
	measured := job.ID >= r.cfg.WarmupJobs
	r.jobsStarted.Inc()
	defer r.ensurePolling()

	record := func(end float64) {
		r.jobsCompleted.Inc()
		r.completed++
		r.reportProgress()
		if measured {
			r.res.CompletionTimes = append(r.res.CompletionTimes, end-job.Time)
		}
	}

	switch r.cfg.Scheme {
	case SchemeMayflower:
		as, err := r.fs.SelectReplicaAndPath(flowserver.Request{
			Client:   job.Client,
			Replicas: file.Replicas,
			Bits:     file.SizeBits,
		})
		if err != nil {
			r.skip(measured)
			return
		}
		r.launchAssignments(job, as, record, measured)

	case SchemeSinbadRMayflower, SchemeNearestMayflower, SchemeHDFSMayflower:
		replica, err := r.selectReplica(job.Client, file.Replicas)
		if err != nil {
			r.skip(measured)
			return
		}
		if replica == job.Client {
			r.localJob(record, measured)
			return
		}
		a, err := r.fs.SelectPath(job.Client, replica, file.SizeBits)
		if err != nil {
			r.skip(measured)
			return
		}
		r.launchAssignments(job, []flowserver.Assignment{a}, record, measured)

	case SchemeSinbadRECMP, SchemeNearestECMP, SchemeHDFSECMP:
		replica, err := r.selectReplica(job.Client, file.Replicas)
		if err != nil {
			r.skip(measured)
			return
		}
		if replica == job.Client {
			r.localJob(record, measured)
			return
		}
		path, err := r.ecmp.SelectPath(replica, job.Client, uint64(job.ID))
		if err != nil {
			r.skip(measured)
			return
		}
		r.fab.StartFlow(fabric.FlowConfig{
			Links:      path,
			Bits:       file.SizeBits,
			OnComplete: record,
		})
	}
}

func (r *runner) selectReplica(client topology.NodeID, replicas []topology.NodeID) (topology.NodeID, error) {
	switch {
	case r.nearest != nil:
		return r.nearest.SelectReplica(client, replicas)
	case r.hdfs != nil:
		return r.hdfs.SelectReplica(client, replicas)
	case r.sinbad != nil:
		return r.sinbad.SelectReplica(client, replicas)
	default:
		return 0, fmt.Errorf("experiment: no replica selector for scheme %v", r.cfg.Scheme)
	}
}

// launchAssignments starts one simulator flow per Flowserver assignment
// and completes the job when the last subflow finishes.
func (r *runner) launchAssignments(job workload.Job, as []flowserver.Assignment, record func(float64), measured bool) {
	if len(as) == 1 && as[0].Local() {
		r.localJob(record, measured)
		return
	}
	if len(as) > 1 {
		r.jobsSplit.Inc()
		if measured {
			r.res.SplitJobs++
		}
	}
	pending := len(as)
	ends := make([]float64, 0, len(as))
	for _, a := range as {
		a := a
		simID := r.fab.StartFlow(fabric.FlowConfig{
			Links: a.Path,
			Bits:  a.Bits,
			OnComplete: func(end float64) {
				delete(r.tracked, a.FlowID)
				r.fs.FlowFinished(a.FlowID)
				pending--
				ends = append(ends, end)
				if pending == 0 {
					record(end)
					if len(ends) == 2 && measured {
						r.res.SubflowSkews = append(r.res.SubflowSkews, math.Abs(ends[0]-ends[1]))
					}
				}
			},
		})
		r.tracked[a.FlowID] = simID
	}
}

// localJob records a read served from a co-located replica: no network
// transfer, so it completes immediately.
func (r *runner) localJob(record func(float64), measured bool) {
	r.jobsLocal.Inc()
	if measured {
		r.res.LocalJobs++
	}
	record(r.fab.Now())
}

func (r *runner) skip(measured bool) {
	r.jobsSkipped.Inc()
	if measured {
		r.skipped++
	}
}

// reportProgress emits the per-scheme progress line every 100 completed
// jobs (and on the last one) when Config.Progress is set.
func (r *runner) reportProgress() {
	if r.cfg.Progress == nil {
		return
	}
	if r.completed%100 == 0 || r.completed == r.cfg.NumJobs {
		fmt.Fprintf(r.cfg.Progress, "%s [%s]: %d/%d jobs\n",
			r.cfg.Scheme, r.cfg.Backend, r.completed, r.cfg.NumJobs)
	}
}
