package experiment

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/obs"
)

// tinyConfig is the reduced cell grid the sweep tests run: small enough
// that a full Figure 6(b) enumeration stays in CI budget, large enough
// that flows overlap and schemes diverge.
func tinyConfig() Config {
	cfg := Defaults(SchemeMayflower)
	cfg.NumJobs = 120
	cfg.WarmupJobs = 20
	cfg.NumFiles = 60
	return cfg
}

// runFigure6bReduced renders the reduced-grid Figure 6(b) table and
// returns the per-cell results alongside the rendered bytes.
func runFigure6bReduced(t *testing.T, workers int) (string, [][]float64) {
	t.Helper()
	base := tinyConfig()
	base.Workers = workers
	base.Trials = 2

	sw := NewSweep(base)
	for _, lambda := range []float64{0.06, 0.09} {
		for _, s := range AllSchemes {
			cfg := base
			cfg.Lambda = lambda
			cfg.Scheme = s
			sw.AddPoint("fig6b-reduced", lambda, cfg)
		}
	}
	results, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	times := make([][]float64, len(results))
	for i, res := range results {
		times[i] = res.CompletionTimes
	}

	// Render through the same assembly the figure builders use.
	series, err := assembleSeries(sw, "fig6b-reduced", base.Locality)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSweep(&sb, series, "lambda"); err != nil {
		t.Fatal(err)
	}
	return sb.String(), times
}

// TestSweepParallelMatchesSequential is the determinism regression test
// for the parallel sweep runner: a reduced Figure 6(b) grid (2 λ-points
// × 5 schemes × 2 trials) must produce byte-identical rendered tables
// and identical per-cell Result.CompletionTimes at -j 1 and -j 8. CI
// runs this under -race (make figures-smoke), which also exercises the
// shared shortest-path cache from 8 concurrent cells.
func TestSweepParallelMatchesSequential(t *testing.T) {
	seqTable, seqTimes := runFigure6bReduced(t, 1)
	parTable, parTimes := runFigure6bReduced(t, 8)

	if seqTable != parTable {
		t.Errorf("rendered tables differ between -j 1 and -j 8:\n--- j=1\n%s--- j=8\n%s", seqTable, parTable)
	}
	if len(seqTimes) != len(parTimes) {
		t.Fatalf("cell counts differ: %d vs %d", len(seqTimes), len(parTimes))
	}
	for i := range seqTimes {
		if len(seqTimes[i]) != len(parTimes[i]) {
			t.Fatalf("cell %d: job counts differ: %d vs %d", i, len(seqTimes[i]), len(parTimes[i]))
		}
		for j := range seqTimes[i] {
			if seqTimes[i][j] != parTimes[i][j] {
				t.Fatalf("cell %d job %d: completion %g (j=1) vs %g (j=8)",
					i, j, seqTimes[i][j], parTimes[i][j])
			}
		}
	}
}

// TestSweepSingleTrialMatchesRun pins the backward-compatibility
// contract: a single-trial sweep cell produces exactly the result of
// calling the single-cell primitive Run with the same config — same
// seed, same completion times — so the parallel figure tables stay
// byte-identical to the historical sequential ones.
func TestSweepSingleTrialMatchesRun(t *testing.T) {
	cfg := tinyConfig()
	direct := mustRun(t, cfg)

	sw := NewSweep(cfg)
	sw.AddPoint("compat", 0, cfg)
	results, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	got := results[0]
	if got.Config.Seed != cfg.Seed {
		t.Errorf("trial 0 seed = %d, want base seed %d", got.Config.Seed, cfg.Seed)
	}
	if len(got.CompletionTimes) != len(direct.CompletionTimes) {
		t.Fatalf("job counts differ: %d vs %d", len(got.CompletionTimes), len(direct.CompletionTimes))
	}
	for i := range got.CompletionTimes {
		if got.CompletionTimes[i] != direct.CompletionTimes[i] {
			t.Fatalf("job %d differs: %g vs %g", i, got.CompletionTimes[i], direct.CompletionTimes[i])
		}
	}
}

// TestSweepTrialSeeds checks the seed-derivation rule: trial 0 keeps the
// base seed, later trials get distinct derived seeds, and every scheme
// of a figure point shares its trial's seed (paired comparisons).
func TestSweepTrialSeeds(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 3
	sw := NewSweep(cfg)
	for _, s := range AllSchemes {
		c := cfg
		c.Scheme = s
		sw.AddPoint("seeds", 0, c)
	}
	cells := sw.Cells()
	if len(cells) != len(AllSchemes)*3 {
		t.Fatalf("enumerated %d cells, want %d", len(cells), len(AllSchemes)*3)
	}
	seedsByTrial := make(map[int]int64)
	for _, c := range cells {
		if prev, ok := seedsByTrial[c.Trial]; ok {
			if c.Config.Seed != prev {
				t.Errorf("trial %d: scheme %v seed %d != %d (schemes must share the trial seed)",
					c.Trial, c.Scheme, c.Config.Seed, prev)
			}
			continue
		}
		seedsByTrial[c.Trial] = c.Config.Seed
	}
	if seedsByTrial[0] != cfg.Seed {
		t.Errorf("trial 0 seed = %d, want base %d", seedsByTrial[0], cfg.Seed)
	}
	if seedsByTrial[1] == seedsByTrial[0] || seedsByTrial[2] == seedsByTrial[0] || seedsByTrial[1] == seedsByTrial[2] {
		t.Errorf("trial seeds not distinct: %v", seedsByTrial)
	}
	// Cell indices must be dense and in enumeration order.
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
	}
}

// TestSweepTrialsNarrowCI sanity-checks the trial merge: with several
// trials a series point reports the grand mean with a finite Student-t
// interval around it.
func TestSweepTrialsNarrowCI(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumJobs = 80
	cfg.WarmupJobs = 10
	cfg.Trials = 3
	sw := NewSweep(cfg)
	sw.AddPoint("trials", 1, cfg)
	groups, err := sw.RunGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0].Results) != 3 {
		t.Fatalf("grouping wrong: %d groups", len(groups))
	}
	p := seriesPoint(groups[0])
	if p.Mean <= 0 {
		t.Fatalf("merged mean %g", p.Mean)
	}
	if !(p.MeanCI.Lo <= p.Mean && p.Mean <= p.MeanCI.Hi) {
		t.Errorf("mean %g outside its CI [%g, %g]", p.Mean, p.MeanCI.Lo, p.MeanCI.Hi)
	}
	if p.MeanCI.Lo == p.MeanCI.Hi {
		t.Errorf("trial CI degenerate: [%g, %g]", p.MeanCI.Lo, p.MeanCI.Hi)
	}
	// The per-trial workloads differ, so the trial means should too.
	m := groups[0].Results
	if m[0].Summary.Mean == m[1].Summary.Mean && m[1].Summary.Mean == m[2].Summary.Mean {
		t.Error("all trial means identical; trial seeds did not vary the workload")
	}
}

// TestSweepSharedTopology verifies parallel cells at the same
// oversubscription share one topology instance (and its shortest-path
// cache) while cells at different ratios get their own.
func TestSweepSharedTopology(t *testing.T) {
	cfg := tinyConfig()
	sw := NewSweep(cfg)
	for _, over := range []float64{8, 8, 16} {
		c := cfg
		c.Oversubscription = over
		sw.AddPoint("topo", over, c)
	}
	cells := sw.Cells()
	if err := shareTopologies(cells); err != nil {
		t.Fatal(err)
	}
	if cells[0].Config.Topo == nil || cells[0].Config.Topo != cells[1].Config.Topo {
		t.Error("cells at the same oversubscription should share a topology")
	}
	if cells[2].Config.Topo == cells[0].Config.Topo {
		t.Error("cells at different oversubscription must not share a topology")
	}
}

// TestSweepProgressAggregated runs a parallel sweep with a progress
// writer and checks the funneled output: every line is complete, carries
// its cell's prefix, and no two cells' lines interleave mid-line.
func TestSweepProgressAggregated(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.NumJobs = 150 // multiple of the 100-job progress stride
	cfg.WarmupJobs = 20
	cfg.Workers = 4
	cfg.Progress = &buf

	sw := NewSweep(cfg)
	for _, s := range AllSchemes[:3] {
		c := cfg
		c.Scheme = s
		sw.AddPoint("prog", 0, c)
	}
	if _, err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if out == "" {
		t.Fatal("no progress output")
	}
	lineRE := regexp.MustCompile(`^\[prog/x=0/[a-z0-9-]+/t0\] .+ \[netsim\]: \d+/\d+ jobs$`)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !lineRE.MatchString(line) {
			t.Errorf("malformed progress line %q", line)
		}
	}
	for _, s := range AllSchemes[:3] {
		want := "[prog/x=0/" + schemeSlug(s) + "/t0] "
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing cell prefix %q", want)
		}
	}
}

// TestSweepMetricsMergedPerCell checks the registry-merge layout: each
// cell's private registry lands in the parent under cell.<name>., and
// sibling cells never share counters.
func TestSweepMetricsMergedPerCell(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := tinyConfig()
	cfg.NumJobs = 80
	cfg.WarmupJobs = 10
	cfg.Workers = 4
	cfg.Metrics = reg

	sw := NewSweep(cfg)
	for _, s := range []Scheme{SchemeMayflower, SchemeNearestECMP} {
		c := cfg
		c.Scheme = s
		sw.AddPoint("met", 0, c)
	}
	if _, err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"cell.met/x=0/mayflower/t0.experiment.jobs_completed",
		"cell.met/x=0/mayflower/t0.flowserver.selections",
		"cell.met/x=0/nearest-ecmp/t0.experiment.jobs_completed",
	} {
		v, ok := snap.Counters[name]
		if !ok {
			t.Errorf("counter %q missing from merged snapshot", name)
			continue
		}
		if v <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, v)
		}
	}
	// Per-cell job counters must reflect only their own cell.
	want := int64(cfg.NumJobs)
	if got := snap.Counters["cell.met/x=0/mayflower/t0.experiment.jobs_started"]; got != want {
		t.Errorf("mayflower cell jobs_started = %d, want %d", got, want)
	}
	// The drift histogram of the Flowserver cell must be present; the
	// ECMP cell has no Flowserver and must not have one.
	if _, ok := snap.Histograms["cell.met/x=0/mayflower/t0.experiment.drift.mayflower.rel_err"]; !ok {
		t.Error("mayflower cell drift histogram missing")
	}
	if _, ok := snap.Histograms["cell.met/x=0/nearest-ecmp/t0.experiment.drift.nearest-ecmp.rel_err"]; ok {
		t.Error("nearest-ecmp cell unexpectedly has a drift histogram")
	}
}

// TestSweepErrorDeterministic: a sweep with failing cells reports the
// earliest failing cell in enumeration order, for every worker count.
func TestSweepErrorDeterministic(t *testing.T) {
	mkSweep := func(workers int) *Sweep {
		cfg := tinyConfig()
		cfg.Workers = workers
		sw := NewSweep(cfg)
		ok := cfg
		sw.AddPoint("err", 0, ok)
		bad1 := cfg
		bad1.NumJobs = 0 // fails validation
		sw.AddPoint("err", 1, bad1)
		bad2 := cfg
		bad2.StatsInterval = 0 // also fails
		sw.AddPoint("err", 2, bad2)
		return sw
	}
	var first string
	for _, workers := range []int{1, 4} {
		_, err := mkSweep(workers).Run()
		if err == nil {
			t.Fatalf("workers=%d: sweep with invalid cells succeeded", workers)
		}
		if !strings.Contains(err.Error(), "err/x=1") {
			t.Errorf("workers=%d: error %q does not name the earliest failing cell", workers, err)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Errorf("error differs across worker counts:\n%q\n%q", first, err.Error())
		}
	}
}

// TestFigure8Shape checks the new Figure 8 table: HDFS-ECMP trails
// Mayflower, and adding Mayflower's network scheduler to HDFS helps.
func TestFigure8Shape(t *testing.T) {
	tbl, err := Figure8(smallConfig(SchemeMayflower))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(tbl.Rows))
	}
	if tbl.Rows[0].Scheme != SchemeMayflower || tbl.Rows[0].AvgRatio != 1 {
		t.Errorf("lead row not Mayflower at 1.0: %+v", tbl.Rows[0])
	}
	byScheme := make(map[Scheme]NormalizedRow)
	for _, r := range tbl.Rows {
		byScheme[r.Scheme] = r
	}
	if ecmp := byScheme[SchemeHDFSECMP].AvgRatio; !(ecmp > 1) {
		t.Errorf("HDFS-ECMP ratio %.2f, want > 1", ecmp)
	}
	if mf, ecmp := byScheme[SchemeHDFSMayflower].AvgRatio, byScheme[SchemeHDFSECMP].AvgRatio; mf > ecmp*1.05 {
		t.Errorf("HDFS-Mayflower (%.2f) should not trail HDFS-ECMP (%.2f)", mf, ecmp)
	}
}
