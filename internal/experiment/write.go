package experiment

import (
	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/testutil"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// This file models the write path of the evaluation (Config.WriteFraction):
// a write job ingests the payload from the client to the file's primary and
// fans the replication out from the primary to the remaining replicas, the
// way the real dataserver relays appends. Under the Mayflower path schemes
// every hop is a registered Flowserver flow and the fan-out order comes
// from SelectWritePipeline; under the ECMP schemes the hops take hashed
// ECMP paths in static replica order. All hops run concurrently, modeling
// a streamed pipeline (the primary relays while it is still receiving).

// writeMixSalt decorrelates the write/read coin from every other consumer
// of the workload seed.
const writeMixSalt = 0x77726974 // "writ"

// isWriteJob decides whether a job runs as an append. The decision is a
// pure hash of (Seed, job ID) — independent of scheme, worker count, and
// RNG consumption order — so sweeps stay deterministic and cross-scheme
// comparisons stay paired on the same job mix.
func (r *runner) isWriteJob(id int) bool {
	wf := r.cfg.WriteFraction
	if wf <= 0 {
		return false
	}
	if wf >= 1 {
		return true
	}
	h := uint64(testutil.DeriveSeed(r.cfg.Seed^writeMixSalt, uint64(id)))
	return float64(h>>11)/(1<<53) < wf
}

// startWriteJob performs path selection for one append and launches its
// ingest and replication hops on the fabric. The job completes when the
// last hop finishes.
func (r *runner) startWriteJob(job workload.Job) {
	file := &r.cat.Files[job.FileIndex]
	measured := job.ID >= r.cfg.WarmupJobs
	r.jobsStarted.Inc()
	r.jobsWrite.Inc()
	if measured {
		r.res.WriteJobs++
	}
	defer r.ensurePolling()

	record := func(end float64) {
		r.jobsCompleted.Inc()
		r.completed++
		r.reportProgress()
		if measured {
			r.res.CompletionTimes = append(r.res.CompletionTimes, end-job.Time)
		}
	}

	primary := file.Replicas[0]
	targets := file.Replicas[1:]

	switch r.cfg.Scheme {
	case SchemeMayflower, SchemeSinbadRMayflower, SchemeNearestMayflower, SchemeHDFSMayflower:
		// Ingest hop: the client is the sender, the primary the receiver.
		var as []flowserver.Assignment
		if job.Client != primary {
			a, err := r.fs.SelectPath(primary, job.Client, file.SizeBits)
			if err != nil {
				r.skip(measured)
				return
			}
			as = append(as, a)
		}
		if len(targets) > 0 {
			pipe, err := r.fs.SelectWritePipeline(primary, targets, file.SizeBits)
			if err != nil {
				// Roll back the committed ingest flow so the model does not
				// leak a flow that will never run.
				for _, a := range as {
					r.fs.FlowFinished(a.FlowID)
				}
				r.skip(measured)
				return
			}
			as = append(as, pipe...)
		}
		r.launchWrite(as, record, measured)

	case SchemeSinbadRECMP, SchemeNearestECMP, SchemeHDFSECMP:
		// Resolve every hop before launching any, so a failed selection
		// skips the whole job instead of leaving half a write in flight.
		hops := make([]topology.Path, 0, len(file.Replicas))
		addHop := func(src, dst topology.NodeID, key uint64) bool {
			if src == dst {
				return true
			}
			path, err := r.ecmp.SelectPath(src, dst, key)
			if err != nil {
				return false
			}
			hops = append(hops, path)
			return true
		}
		ok := addHop(job.Client, primary, uint64(job.ID)*8)
		for i := 0; ok && i < len(targets); i++ {
			ok = addHop(primary, targets[i], uint64(job.ID)*8+uint64(i)+1)
		}
		if !ok {
			r.skip(measured)
			return
		}
		if len(hops) == 0 {
			r.localJob(record, measured)
			return
		}
		pending := len(hops)
		for _, path := range hops {
			r.fab.StartFlow(fabric.FlowConfig{
				Links: path,
				Bits:  file.SizeBits,
				OnComplete: func(end float64) {
					pending--
					if pending == 0 {
						record(end)
					}
				},
			})
		}
	}
}

// launchWrite starts one fabric flow per non-local assignment and records
// the job when the last hop completes. Local assignments (co-located
// client or replica) move no bytes.
func (r *runner) launchWrite(as []flowserver.Assignment, record func(float64), measured bool) {
	live := make([]flowserver.Assignment, 0, len(as))
	for _, a := range as {
		if !a.Local() {
			live = append(live, a)
		}
	}
	if len(live) == 0 {
		r.localJob(record, measured)
		return
	}
	pending := len(live)
	for _, a := range live {
		a := a
		simID := r.fab.StartFlow(fabric.FlowConfig{
			Links: a.Path,
			Bits:  a.Bits,
			OnComplete: func(end float64) {
				delete(r.tracked, a.FlowID)
				r.fs.FlowFinished(a.FlowID)
				pending--
				if pending == 0 {
					record(end)
				}
			},
		})
		r.tracked[a.FlowID] = simID
	}
}
