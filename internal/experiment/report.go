package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteNormalizedTable renders a Figure 4/5-style table: one row per
// scheme with the completion-time ratios relative to Mayflower.
func WriteNormalizedTable(w io.Writer, tbl *NormalizedTable) error {
	if _, err := fmt.Fprintf(w, "locality %v, λ=%g per server\n", tbl.Locality, tbl.Lambda); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-22s %10s %22s %10s %12s %12s\n",
		"scheme", "avg ratio", "avg 95% CI", "p95 ratio", "mean (s)", "p95 (s)"); err != nil {
		return err
	}
	for _, r := range tbl.Rows {
		if _, err := fmt.Fprintf(w, "%-22s %9.2fx    [%6.2f, %6.2f]      %8.2fx %12.3f %12.3f\n",
			r.Scheme, r.AvgRatio, r.AvgCI.Lo, r.AvgCI.Hi, r.P95Ratio,
			r.Summary.Mean, r.Summary.P95); err != nil {
			return err
		}
	}
	return nil
}

// WriteSweep renders a Figure 6/7-style series table: one row per
// (x, scheme) point with mean, its confidence interval, and p95.
func WriteSweep(w io.Writer, sw *Series, xLabel string) error {
	if _, err := fmt.Fprintf(w, "%s (locality %v)\n", sw.Label, sw.Locality); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %-22s %10s %22s %10s\n",
		xLabel, "scheme", "mean (s)", "mean 95% CI", "p95 (s)"); err != nil {
		return err
	}
	for _, p := range sw.Points {
		if _, err := fmt.Fprintf(w, "%-8.3g %-22s %10.3f    [%6.3f, %6.3f]   %10.3f\n",
			p.X, p.Scheme, p.Mean, p.MeanCI.Lo, p.MeanCI.Hi, p.P95); err != nil {
			return err
		}
	}
	return nil
}

// WriteNormalizedCSV emits a Figure 4/5-style table as CSV rows suitable
// for plotting: scheme, avg ratio with its CI bounds, p95 ratio, and the
// raw mean/p95 seconds.
func WriteNormalizedCSV(w io.Writer, tbl *NormalizedTable) error {
	cw := csv.NewWriter(w)
	header := []string{"locality", "lambda", "scheme", "avg_ratio", "avg_ci_lo", "avg_ci_hi", "p95_ratio", "mean_s", "p95_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range tbl.Rows {
		rec := []string{
			tbl.Locality.String(),
			formatFloat(tbl.Lambda),
			r.Scheme.String(),
			formatFloat(r.AvgRatio),
			formatFloat(r.AvgCI.Lo),
			formatFloat(r.AvgCI.Hi),
			formatFloat(r.P95Ratio),
			formatFloat(r.Summary.Mean),
			formatFloat(r.Summary.P95),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV emits a Figure 6/7-style series as CSV rows.
func WriteSweepCSV(w io.Writer, sw *Series, xLabel string) error {
	cw := csv.NewWriter(w)
	header := []string{xLabel, "scheme", "mean_s", "mean_ci_lo", "mean_ci_hi", "p95_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range sw.Points {
		rec := []string{
			formatFloat(p.X),
			p.Scheme.String(),
			formatFloat(p.Mean),
			formatFloat(p.MeanCI.Lo),
			formatFloat(p.MeanCI.Hi),
			formatFloat(p.P95),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteMultiRead renders the §4.3 multi-replica read result.
func WriteMultiRead(w io.Writer, r *MultiReadResult) error {
	_, err := fmt.Fprintf(w,
		"multi-replica reads (λ=%g, locality %v)\n"+
			"  single-replica mean %.3f s, p95 %.3f s\n"+
			"  multi-replica  mean %.3f s, p95 %.3f s\n"+
			"  mean reduction %.1f%%; %d/%d jobs split\n"+
			"  subflow finish skew: mean %.3f s, p95 %.3f s, max %.3f s (n=%d)\n",
		r.Single.Config.Lambda, r.Single.Config.Locality,
		r.Single.Summary.Mean, r.Single.Summary.P95,
		r.Multi.Summary.Mean, r.Multi.Summary.P95,
		r.MeanReductionPct, r.Multi.SplitJobs, r.Multi.Summary.N,
		r.SkewSummary.Mean, r.SkewSummary.P95, r.SkewSummary.Max, r.SkewSummary.N)
	return err
}

// WriteAblation renders one ablation comparison.
func WriteAblation(w io.Writer, r *AblationResult) error {
	_, err := fmt.Fprintf(w,
		"ablation %s (%s)\n"+
			"  full    mean %.3f s, p95 %.3f s\n"+
			"  ablated mean %.3f s, p95 %.3f s\n"+
			"  ablated/full: mean %.2fx, p95 %.2fx\n",
		r.Name, r.DisabledDetail,
		r.Full.Summary.Mean, r.Full.Summary.P95,
		r.Ablated.Summary.Mean, r.Ablated.Summary.P95,
		r.MeanRatio, r.P95Ratio)
	return err
}
