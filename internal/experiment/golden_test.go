package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/experiment/ -run TestGolden -update
//
// Inspect the diff before committing — a golden change means the figure
// pipeline's output changed for a pinned seed.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenConfig is the pinned configuration every golden table is
// generated from. Changing anything here invalidates the goldens.
func goldenConfig() Config {
	cfg := Defaults(SchemeMayflower)
	cfg.NumJobs = 150
	cfg.WarmupJobs = 20
	cfg.NumFiles = 80
	cfg.Seed = 1
	return cfg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- want\n%s--- got\n%s\n(rerun with -update if the change is intended)",
			name, want, got)
	}
}

// TestGoldenFigure4 pins the Figure 4 normalized table — text and CSV —
// for the golden seed. The parallel sweep runner must keep reproducing
// these bytes regardless of worker count.
func TestGoldenFigure4(t *testing.T) {
	cfg := goldenConfig()
	cfg.Workers = 4
	tbl, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var txt, csv bytes.Buffer
	if err := WriteNormalizedTable(&txt, tbl); err != nil {
		t.Fatal(err)
	}
	if err := WriteNormalizedCSV(&csv, tbl); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure4.golden", txt.Bytes())
	checkGolden(t, "figure4.csv.golden", csv.Bytes())
}

// TestGoldenFigure6b pins a reduced Figure 6(b) λ-series.
func TestGoldenFigure6b(t *testing.T) {
	cfg := goldenConfig()
	cfg.Workers = 4
	sw, err := lambdaSweep(cfg, "figure 6(b) reduced: mean completion vs λ", []float64{0.06, 0.09})
	if err != nil {
		t.Fatal(err)
	}
	var txt, csv bytes.Buffer
	if err := WriteSweep(&txt, sw, "lambda"); err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepCSV(&csv, sw, "lambda"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure6b.golden", txt.Bytes())
	checkGolden(t, "figure6b.csv.golden", csv.Bytes())
}

// TestGoldenFigure7 pins the Figure 7 oversubscription series.
func TestGoldenFigure7(t *testing.T) {
	cfg := goldenConfig()
	cfg.Workers = 4
	sw, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var txt, csv bytes.Buffer
	if err := WriteSweep(&txt, sw, "oversub"); err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepCSV(&csv, sw, "oversub"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure7.golden", txt.Bytes())
	checkGolden(t, "figure7.csv.golden", csv.Bytes())
}

// TestGoldenFigure9 pins a reduced Figure 9 write-fraction series: the
// write-path model (ingest hop + SelectWritePipeline replication fan-out)
// must keep reproducing these bytes for the pinned seed.
func TestGoldenFigure9(t *testing.T) {
	cfg := goldenConfig()
	cfg.Workers = 4
	sw, err := WriteFractionSweep(cfg, []float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var txt, csv bytes.Buffer
	if err := WriteSweep(&txt, sw, "write-frac"); err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepCSV(&csv, sw, "write-frac"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure9.golden", txt.Bytes())
	checkGolden(t, "figure9.csv.golden", csv.Bytes())
}

// TestSweepFigure9WorkerInvariance checks the write sweep renders
// byte-identical tables sequentially and under -j 8: the write/read coin
// is a pure hash of (seed, job ID), never of scheduling.
func TestSweepFigure9WorkerInvariance(t *testing.T) {
	run := func(workers int) []byte {
		cfg := goldenConfig()
		cfg.NumJobs = 100
		cfg.Workers = workers
		sw, err := WriteFractionSweep(cfg, []float64{0.5})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSweep(&buf, sw, "write-frac"); err != nil {
			t.Fatal(err)
		}
		if err := WriteSweepCSV(&buf, sw, "write-frac"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq, par := run(1), run(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("write sweep differs across worker counts.\n--- workers=1\n%s--- workers=8\n%s", seq, par)
	}
}

// TestGoldenTrials pins a two-trial table so the trial-merge path
// (Student-t over per-trial paired ratios) is golden-covered too.
func TestGoldenTrials(t *testing.T) {
	cfg := goldenConfig()
	cfg.NumJobs = 100
	cfg.Trials = 2
	cfg.Workers = 4
	tbl, err := normalizedComparison(cfg, []Scheme{SchemeMayflower, SchemeNearestECMP})
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := WriteNormalizedTable(&txt, tbl); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trials.golden", txt.Bytes())
}
