package experiment

import (
	"runtime"
	"testing"
)

// BenchmarkSweepFigure6b measures one reduced Figure 6(b) grid (2
// λ-points × 5 schemes) through the parallel sweep runner at
// GOMAXPROCS workers. Tracked by bench-check; compare against
// BenchmarkSweepFigure6bSerial to see the parallel speedup on a given
// machine.
func BenchmarkSweepFigure6b(b *testing.B) {
	benchmarkSweepFigure6b(b, runtime.GOMAXPROCS(0))
}

// BenchmarkSweepFigure6bSerial is the same grid at one worker — the
// baseline the parallel variant's speedup is measured against.
func BenchmarkSweepFigure6bSerial(b *testing.B) {
	benchmarkSweepFigure6b(b, 1)
}

func benchmarkSweepFigure6b(b *testing.B, workers int) {
	base := Defaults(SchemeMayflower)
	base.NumJobs = 120
	base.WarmupJobs = 20
	base.NumFiles = 60
	base.Workers = workers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := NewSweep(base)
		for _, lambda := range []float64{0.06, 0.09} {
			for _, s := range AllSchemes {
				cfg := base
				cfg.Lambda = lambda
				cfg.Scheme = s
				sw.AddPoint("fig6b-bench", lambda, cfg)
			}
		}
		if _, err := sw.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
