package experiment

import (
	"strings"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// smallConfig returns a scaled-down run that keeps tests fast while
// preserving the workload's character.
func smallConfig(scheme Scheme) Config {
	cfg := Defaults(scheme)
	cfg.NumJobs = 500
	cfg.WarmupJobs = 60
	cfg.NumFiles = 150
	return cfg
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%v): %v", cfg.Scheme, err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unknown scheme", func(c *Config) { c.Scheme = Scheme(99) }},
		{"zero oversub", func(c *Config) { c.Oversubscription = 0 }},
		{"zero jobs", func(c *Config) { c.NumJobs = 0 }},
		{"warmup >= jobs", func(c *Config) { c.WarmupJobs = c.NumJobs }},
		{"zero poll", func(c *Config) { c.StatsInterval = 0 }},
		{"zero lambda", func(c *Config) { c.Lambda = 0 }},
		{"zero files", func(c *Config) { c.NumFiles = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig(SchemeMayflower)
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("Run accepted invalid config")
			}
		})
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, s := range []Scheme{
		SchemeMayflower, SchemeSinbadRMayflower, SchemeSinbadRECMP,
		SchemeNearestMayflower, SchemeNearestECMP,
		SchemeHDFSECMP, SchemeHDFSMayflower,
	} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := smallConfig(s)
			cfg.NumJobs = 250
			cfg.WarmupJobs = 30
			res := mustRun(t, cfg)
			if res.Summary.N != cfg.NumJobs-cfg.WarmupJobs {
				t.Errorf("measured %d jobs, want %d", res.Summary.N, cfg.NumJobs-cfg.WarmupJobs)
			}
			if res.Summary.Mean <= 0 {
				t.Errorf("mean completion %g, want > 0", res.Summary.Mean)
			}
			for _, ct := range res.CompletionTimes {
				if ct < 0 {
					t.Fatalf("negative completion time %g", ct)
				}
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	cfg.NumJobs = 200
	cfg.WarmupJobs = 20
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if len(a.CompletionTimes) != len(b.CompletionTimes) {
		t.Fatalf("lengths differ: %d vs %d", len(a.CompletionTimes), len(b.CompletionTimes))
	}
	for i := range a.CompletionTimes {
		if a.CompletionTimes[i] != b.CompletionTimes[i] {
			t.Fatalf("job %d differs: %g vs %g", i, a.CompletionTimes[i], b.CompletionTimes[i])
		}
	}
}

// TestFigure4Shape checks the paper's headline ordering (Figure 4):
// Mayflower < Sinbad-R Mayflower <= Sinbad-R ECMP < Nearest schemes, and
// the p95 gap for Nearest schemes being much larger than the mean gap
// (stragglers).
func TestFigure4Shape(t *testing.T) {
	tbl, err := Figure4(smallConfig(SchemeMayflower))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	byScheme := make(map[Scheme]NormalizedRow, len(tbl.Rows))
	for _, r := range tbl.Rows {
		byScheme[r.Scheme] = r
	}
	if r := byScheme[SchemeMayflower]; r.AvgRatio != 1 || r.P95Ratio != 1 {
		t.Errorf("Mayflower row not normalized to 1: %+v", r)
	}
	// Paper: 1.42x / 1.69x / 3.24x / 3.42x. Require the ordering and
	// rough magnitudes, not the exact testbed numbers.
	srMF := byScheme[SchemeSinbadRMayflower].AvgRatio
	srECMP := byScheme[SchemeSinbadRECMP].AvgRatio
	nMF := byScheme[SchemeNearestMayflower].AvgRatio
	nECMP := byScheme[SchemeNearestECMP].AvgRatio

	if !(srMF > 1.05) {
		t.Errorf("Sinbad-R Mayflower ratio %.2f, want > 1.05", srMF)
	}
	if !(srECMP >= srMF) {
		t.Errorf("Sinbad-R ECMP (%.2f) should not beat Sinbad-R Mayflower (%.2f)", srECMP, srMF)
	}
	if !(nMF > 1.8*srMF) {
		t.Errorf("Nearest Mayflower (%.2f) should be far worse than Sinbad-R Mayflower (%.2f)", nMF, srMF)
	}
	if !(nECMP >= nMF*0.9) {
		t.Errorf("Nearest ECMP (%.2f) should be about as bad as Nearest Mayflower (%.2f)", nECMP, nMF)
	}
	// Stragglers: the Nearest p95 ratio dwarfs its mean ratio.
	if p95 := byScheme[SchemeNearestECMP].P95Ratio; !(p95 > nECMP) {
		t.Errorf("Nearest ECMP p95 ratio %.2f should exceed its mean ratio %.2f", p95, nECMP)
	}
}

func TestNormalizedComparisonRequiresMayflowerFirst(t *testing.T) {
	if _, err := normalizedComparison(smallConfig(SchemeMayflower), []Scheme{SchemeNearestECMP}); err == nil {
		t.Error("normalizedComparison accepted a non-Mayflower lead scheme")
	}
}

// TestFigure5CoreHeavyPathSelectionMatters checks §6.4's observation for
// the (0.2,0.3,0.5) mix: schemes with Mayflower's path scheduler beat
// their ECMP counterparts when half the traffic crosses the core.
func TestFigure5CoreHeavyPathSelectionMatters(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	cfg.Locality = workload.LocalityCoreHeavy
	tbl, err := normalizedComparison(cfg, AllSchemes)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := make(map[Scheme]NormalizedRow)
	for _, r := range tbl.Rows {
		byScheme[r.Scheme] = r
	}
	if n, ne := byScheme[SchemeNearestMayflower].AvgRatio, byScheme[SchemeNearestECMP].AvgRatio; n > ne {
		t.Errorf("Nearest Mayflower (%.2f) should beat Nearest ECMP (%.2f) under core-heavy locality", n, ne)
	}
	if s, se := byScheme[SchemeSinbadRMayflower].AvgRatio, byScheme[SchemeSinbadRECMP].AvgRatio; s > se {
		t.Errorf("Sinbad-R Mayflower (%.2f) should beat Sinbad-R ECMP (%.2f) under core-heavy locality", s, se)
	}
}

// TestLambdaScaling checks Figure 6's qualitative claim: completion time
// grows with λ, and grows much faster for Nearest ECMP than for Mayflower.
func TestLambdaScaling(t *testing.T) {
	run := func(s Scheme, lambda float64) float64 {
		cfg := smallConfig(s)
		cfg.Lambda = lambda
		cfg.NumJobs = 400
		cfg.WarmupJobs = 50
		return mustRun(t, cfg).Summary.Mean
	}
	mfLow, mfHigh := run(SchemeMayflower, 0.06), run(SchemeMayflower, 0.12)
	neLow, neHigh := run(SchemeNearestECMP, 0.06), run(SchemeNearestECMP, 0.12)

	if mfHigh < mfLow*0.95 {
		t.Errorf("Mayflower mean fell with load: %.2f -> %.2f", mfLow, mfHigh)
	}
	if neHigh <= neLow {
		t.Errorf("Nearest ECMP mean did not grow with load: %.2f -> %.2f", neLow, neHigh)
	}
	// The paper's Figure 6(a): Mayflower shows "a small increase in
	// completion time" while Nearest degrades quickly — compare the
	// absolute slopes.
	if growthMF, growthNE := mfHigh-mfLow, neHigh-neLow; growthNE <= growthMF {
		t.Errorf("Nearest ECMP growth (+%.2fs) should exceed Mayflower growth (+%.2fs)", growthNE, growthMF)
	}
}

// TestOversubscriptionScaling checks Figure 7: doubling the
// oversubscription ratio roughly doubles completion times.
func TestOversubscriptionScaling(t *testing.T) {
	run := func(over float64) float64 {
		cfg := smallConfig(SchemeMayflower)
		cfg.Oversubscription = over
		cfg.NumJobs = 400
		cfg.WarmupJobs = 50
		return mustRun(t, cfg).Summary.Mean
	}
	m8, m16 := run(8), run(16)
	if m16 <= m8 {
		t.Errorf("mean at 16:1 (%.2f) should exceed mean at 8:1 (%.2f)", m16, m8)
	}
	if m16 > m8*4 {
		t.Errorf("mean at 16:1 (%.2f) implausibly far above 8:1 (%.2f)", m16, m8)
	}
}

func TestMultiRead(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	res, err := MultiRead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Multi.SplitJobs == 0 {
		t.Error("no jobs were split across replicas")
	}
	// §4.3: "completion time of read jobs is further reduced up to 10% on
	// average". Require it not to hurt beyond noise.
	if res.MeanReductionPct < -5 {
		t.Errorf("multi-replica reads hurt mean by %.1f%%", -res.MeanReductionPct)
	}
	// Subflow skew must be small relative to mean completion time
	// (paper: < 1 s for 256 MB reads).
	if res.SkewSummary.N == 0 {
		t.Fatal("no subflow skews recorded")
	}
	if res.SkewSummary.Mean > res.Multi.Summary.Mean {
		t.Errorf("mean skew %.2f exceeds mean completion %.2f", res.SkewSummary.Mean, res.Multi.Summary.Mean)
	}
}

func TestAblations(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	cfg.NumJobs = 400
	cfg.WarmupJobs = 50

	cost, err := AblateCostTerm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cost.MeanRatio <= 0 {
		t.Errorf("cost ablation ratio %g", cost.MeanRatio)
	}

	freeze, err := AblateFreeze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if freeze.MeanRatio <= 0 {
		t.Errorf("freeze ablation ratio %g", freeze.MeanRatio)
	}
}

func TestPollSweep(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	cfg.NumJobs = 250
	cfg.WarmupJobs = 30
	sw, err := PollSweep(cfg, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("got %d points", len(sw.Points))
	}
	for _, p := range sw.Points {
		if p.Mean <= 0 {
			t.Errorf("interval %g: mean %g", p.X, p.Mean)
		}
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		SchemeMayflower:        "Mayflower",
		SchemeSinbadRMayflower: "Sinbad-R Mayflower",
		SchemeSinbadRECMP:      "Sinbad-R ECMP",
		SchemeNearestMayflower: "Nearest Mayflower",
		SchemeNearestECMP:      "Nearest ECMP",
		SchemeHDFSECMP:         "HDFS-ECMP",
		SchemeHDFSMayflower:    "HDFS-Mayflower",
		Scheme(42):             "Scheme(42)",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestWriteReports(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	cfg.NumJobs = 200
	cfg.WarmupJobs = 20

	tbl, err := normalizedComparison(cfg, AllSchemes)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteNormalizedTable(&sb, tbl); err != nil {
		t.Fatal(err)
	}
	for _, s := range AllSchemes {
		if !strings.Contains(sb.String(), s.String()) {
			t.Errorf("table missing scheme %v", s)
		}
	}

	sw, err := PollSweep(cfg, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteSweep(&sb, sw, "interval"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Mayflower") {
		t.Error("sweep table missing scheme name")
	}

	mr, err := MultiRead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteMultiRead(&sb, mr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "multi-replica") {
		t.Error("multi-read report missing header")
	}

	ab, err := AblateFreeze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteAblation(&sb, ab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "update-freeze") {
		t.Error("ablation report missing name")
	}
}

func TestHDFSVsMayflowerShape(t *testing.T) {
	// Figure 8's qualitative content: HDFS-ECMP ≫ HDFS-Mayflower ≥
	// Mayflower (network load balancing helps, co-design helps more).
	run := func(s Scheme) float64 {
		cfg := smallConfig(s)
		cfg.NumJobs = 400
		cfg.WarmupJobs = 50
		return mustRun(t, cfg).Summary.Mean
	}
	mf := run(SchemeMayflower)
	hdfsMF := run(SchemeHDFSMayflower)
	hdfsECMP := run(SchemeHDFSECMP)
	if !(mf < hdfsECMP) {
		t.Errorf("Mayflower (%.2f) should beat HDFS-ECMP (%.2f)", mf, hdfsECMP)
	}
	if !(hdfsMF <= hdfsECMP*1.05) {
		t.Errorf("HDFS-Mayflower (%.2f) should not trail HDFS-ECMP (%.2f)", hdfsMF, hdfsECMP)
	}
}

// TestBackgroundSweep checks the cross-traffic robustness experiment:
// completion times grow with unscheduled load, and Mayflower stays ahead
// of Nearest ECMP even with its model half-blind.
func TestBackgroundSweep(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	cfg.NumJobs = 300
	cfg.WarmupJobs = 40
	sw, err := BackgroundSweep(cfg, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	means := make(map[[2]interface{}]float64)
	for _, p := range sw.Points {
		means[[2]interface{}{p.X, p.Scheme}] = p.Mean
	}
	mf0 := means[[2]interface{}{0.0, SchemeMayflower}]
	mf5 := means[[2]interface{}{0.5, SchemeMayflower}]
	ne5 := means[[2]interface{}{0.5, SchemeNearestECMP}]
	if mf5 < mf0 {
		t.Errorf("Mayflower mean fell with background load: %.2f -> %.2f", mf0, mf5)
	}
	if mf5 >= ne5 {
		t.Errorf("Mayflower (%.2f) lost to Nearest ECMP (%.2f) at 0.5 background load", mf5, ne5)
	}
}

func TestBackgroundDeterministic(t *testing.T) {
	cfg := smallConfig(SchemeMayflower)
	cfg.NumJobs = 150
	cfg.WarmupJobs = 20
	cfg.BackgroundLoad = 0.5
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	for i := range a.CompletionTimes {
		if a.CompletionTimes[i] != b.CompletionTimes[i] {
			t.Fatalf("background runs diverge at job %d", i)
		}
	}
}
