package experiment

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/testutil"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// Cell is one independent run in a figure grid: a fully resolved Config
// plus the coordinates the figure assembly needs to put its result back
// in the right row. The paper's evaluation (§6, Figures 4-8) is exactly
// such a grid — (scheme × parameter × trial) cells that share nothing at
// runtime — which is what makes the sweep embarrassingly parallel.
type Cell struct {
	// Figure labels the grid the cell belongs to ("fig6b", "fig5/…").
	Figure string
	// X is the cell's figure x-coordinate (λ, oversubscription, load…).
	X float64
	// Scheme is the replica/path selection combination under test.
	Scheme Scheme
	// Trial numbers the repetition within the cell's group; trial 0 runs
	// on the base seed, trial k > 0 on a seed derived from (Seed, k).
	Trial int
	// Index is the cell's position in enumeration order. Results are
	// assembled in Index order regardless of completion order, which is
	// what keeps rendered tables byte-identical across worker counts.
	Index int
	// Config is the cell's fully resolved configuration (seed included).
	Config Config
}

// groupKey identifies the cell group (figure point) a cell's trials are
// merged into.
func (c Cell) groupKey() string {
	return fmt.Sprintf("%s/x=%g/%s", c.Figure, c.X, schemeSlug(c.Scheme))
}

// Name uniquely identifies a cell; it prefixes the cell's metrics in the
// parent registry and its lines in the aggregated progress stream.
func (c Cell) Name() string {
	return fmt.Sprintf("%s/t%d", c.groupKey(), c.Trial)
}

// Sweep enumerates experiment cells up front and executes them on a
// bounded worker pool. Determinism is preserved by construction:
//
//   - every cell's seed is a pure function of the base seed and the
//     cell's coordinates (see seedForTrial), never of scheduling;
//   - each cell runs the single-cell primitive Run with its own RNG,
//     fabric, and registry, sharing only the immutable topology;
//   - results are assembled in cell order, and the first error in cell
//     order wins, so output and errors are identical for every Workers
//     value, including 1 (the sequential path).
type Sweep struct {
	// Workers bounds how many cells execute concurrently; <= 0 means
	// GOMAXPROCS. The value never affects results, only wall-clock time.
	Workers int
	// Progress, when set, receives each cell's per-scheme progress lines
	// prefixed with the cell name. Lines from concurrent cells are
	// funneled through one aggregator so they never interleave mid-line.
	Progress io.Writer
	// Metrics, when set, receives every cell's private registry merged
	// under the prefix "cell.<cell name>." after the cell completes.
	Metrics *obs.Registry

	cells []Cell
}

// NewSweep creates an empty sweep taking its execution knobs (Workers,
// Progress, Metrics) from a base configuration. The knobs live on Config
// so the figure entry points — which take only a Config — stay
// parameterizable without signature changes.
func NewSweep(base Config) *Sweep {
	return &Sweep{Workers: base.Workers, Progress: base.Progress, Metrics: base.Metrics}
}

// AddPoint appends one figure point to the sweep: cfg.Trials cells (at
// least one) whose seeds are derived from (cfg.Seed, trial). Trials of
// the same point share a group; RunGroups folds them back together.
func (s *Sweep) AddPoint(figure string, x float64, cfg Config) {
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	for t := 0; t < trials; t++ {
		c := Cell{
			Figure: figure,
			X:      x,
			Scheme: cfg.Scheme,
			Trial:  t,
			Index:  len(s.cells),
			Config: cfg,
		}
		// The per-cell config must not alias the sweep-level knobs: the
		// sweep itself owns progress funneling and metrics merging.
		c.Config.Seed = seedForTrial(cfg.Seed, t)
		c.Config.Metrics = nil
		c.Config.Progress = nil
		s.cells = append(s.cells, c)
	}
}

// Cells returns the enumerated cells in execution (index) order.
func (s *Sweep) Cells() []Cell { return s.cells }

// seedForTrial derives the workload seed for one trial of a cell group.
// Trial 0 keeps the base seed, so single-trial sweeps reproduce the
// historical sequential tables byte for byte; trial k > 0 mixes k in
// through a SplitMix64 round, giving each repetition a statistically
// independent workload. Every scheme at a given (figure point, trial)
// shares the trial seed, keeping cross-scheme comparisons paired on the
// same workload — the §6.3 methodology the normalized tables rely on.
func seedForTrial(base int64, trial int) int64 {
	if trial == 0 {
		return base
	}
	return testutil.DeriveSeed(base, uint64(trial))
}

// Run executes every cell and returns the results in cell order. A nil
// error means every cell succeeded; otherwise the error of the earliest
// failing cell (in cell order, not completion order) is returned.
func (s *Sweep) Run() ([]*Result, error) {
	cells := make([]Cell, len(s.cells))
	copy(cells, s.cells)
	if err := shareTopologies(cells); err != nil {
		return nil, err
	}

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		results = make([]*Result, len(cells))
		errs    = make([]error, len(cells))
		next    atomic.Int64
		agg     = newProgressMux(s.Progress)
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				cell := cells[i]
				cfg := cell.Config
				// Each cell gets a private registry; merging under the
				// per-cell prefix happens after the run, so no two live
				// cells ever share metric writer state.
				reg := obs.NewRegistry()
				cfg.Metrics = reg
				if agg != nil {
					cfg.Progress = agg.writer("[" + cell.Name() + "] ")
				}
				res, err := Run(cfg)
				if err != nil {
					errs[i] = fmt.Errorf("cell %s: %w", cell.Name(), err)
					continue
				}
				results[i] = res
				if s.Metrics != nil {
					s.Metrics.Merge(reg, "cell."+cell.Name()+".")
				}
			}
		}()
	}
	wg.Wait()
	agg.flush()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Group is one figure point reassembled from its trial cells, in trial
// order.
type Group struct {
	Figure  string
	X       float64
	Scheme  Scheme
	Cells   []Cell
	Results []*Result
}

// RunGroups runs the sweep and folds the per-cell results back into
// figure points, in first-enumerated order. This is the entry point the
// figure builders use: enumerate with AddPoint, then consume one Group
// per table row or series point.
func (s *Sweep) RunGroups() ([]Group, error) {
	results, err := s.Run()
	if err != nil {
		return nil, err
	}
	var (
		order []string
		byKey = make(map[string]*Group)
	)
	for i, c := range s.cells {
		key := c.groupKey()
		g, ok := byKey[key]
		if !ok {
			order = append(order, key)
			g = &Group{Figure: c.Figure, X: c.X, Scheme: c.Scheme}
			byKey[key] = g
		}
		g.Cells = append(g.Cells, c)
		g.Results = append(g.Results, results[i])
	}
	out := make([]Group, 0, len(order))
	for _, key := range order {
		out = append(out, *byKey[key])
	}
	return out, nil
}

// shareTopologies resolves the default paper testbed once per distinct
// oversubscription ratio so parallel cells share one immutable topology —
// and its memoized shortest-path cache — instead of rebuilding both per
// cell. Cells with an explicit Topo, or with an invalid oversubscription
// (left for Run's validation to report), are untouched.
func shareTopologies(cells []Cell) error {
	shared := make(map[float64]*topology.Topology)
	for i := range cells {
		cfg := &cells[i].Config
		if cfg.Topo != nil || cfg.Oversubscription <= 0 {
			continue
		}
		topo, ok := shared[cfg.Oversubscription]
		if !ok {
			var err error
			topo, err = topology.New(topology.PaperTestbed(cfg.Oversubscription))
			if err != nil {
				return fmt.Errorf("cell %s: %w", cells[i].Name(), err)
			}
			shared[cfg.Oversubscription] = topo
		}
		cfg.Topo = topo
	}
	return nil
}

// progressMux funnels the progress lines of concurrent cells into one
// writer. Each cell gets its own line-buffered writer (cells are single-
// threaded internally, so the per-cell buffer needs no lock); only the
// emission of a complete line takes the shared mutex, so lines from
// different cells interleave only at line boundaries and `-progress`
// output stays readable under -j 8.
type progressMux struct {
	mu sync.Mutex
	w  io.Writer

	wsMu    sync.Mutex
	writers []*progressWriter
}

func newProgressMux(w io.Writer) *progressMux {
	if w == nil {
		return nil
	}
	return &progressMux{w: w}
}

func (m *progressMux) writer(prefix string) io.Writer {
	pw := &progressWriter{mux: m, prefix: prefix}
	m.wsMu.Lock()
	m.writers = append(m.writers, pw)
	m.wsMu.Unlock()
	return pw
}

// flush emits any buffered partial lines once all cells have finished.
func (m *progressMux) flush() {
	if m == nil {
		return
	}
	m.wsMu.Lock()
	writers := m.writers
	m.wsMu.Unlock()
	for _, pw := range writers {
		pw.flushPartial()
	}
}

// emit writes one already-prefixed chunk under the shared lock.
func (m *progressMux) emit(b []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.w.Write(b) //nolint:errcheck // progress output is best effort
}

type progressWriter struct {
	mux    *progressMux
	prefix string
	buf    bytes.Buffer
}

// Write buffers p and emits every complete line, prefixed, as one
// atomic chunk.
func (w *progressWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			// Partial line: keep it buffered for the next Write.
			w.buf.WriteString(line)
			break
		}
		w.mux.emit([]byte(w.prefix + line))
	}
	return len(p), nil
}

func (w *progressWriter) flushPartial() {
	if w.buf.Len() == 0 {
		return
	}
	w.mux.emit([]byte(w.prefix + w.buf.String() + "\n"))
	w.buf.Reset()
}
