package flowserver

// StatsSource supplies one stats-poll cycle's worth of per-flow byte
// counters. It is the seam between the Flowserver's model maintenance
// and wherever the counters actually come from: the experiment driver
// reads them straight off the network fabric, the testbed reads them
// off its SDN switch agents — UpdateFlowStats cannot tell the
// difference, which is the point.
type StatsSource interface {
	// FlowStats returns the current cumulative byte counter of every
	// flow the source knows about. Order is not significant; the slice
	// is owned by the caller once returned.
	FlowStats() []FlowStat
}

// PollFrom performs one stats collection cycle at time now against a
// counter source, feeding the samples through UpdateFlowStats.
func (s *Server) PollFrom(now float64, src StatsSource) {
	s.UpdateFlowStats(now, src.FlowStats())
}
