package flowserver

import (
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// This file is the Flowserver surface the sharded control plane
// (internal/flowctl) builds on. A flowctl shard owns the links of its
// pods and keeps a full Server as its model; cross-pod flows touch two
// shards, so the coordinator needs to (a) score just the links it owns
// with the remote sub-path's share as a cap, (b) commit a flow onto an
// explicit link set, (c) register the remote half of a flow under the
// coordinator's id, and (d) export its per-link load for the gossip
// digests remote coordinators score against. None of these paths are
// reachable from the standalone server's API, and the capped evaluation
// collapses to the historical arithmetic at capBw = +Inf, so the
// single-controller behaviour (and the figure goldens) are unchanged.

// EvalPathCost scores placing a new flow of the given size on an
// arbitrary set of links, Eq. 2 style: the new flow's completion time
// plus the completion-time increase of the modeled flows sharing those
// links. capBw caps the new flow's demand — the bandwidth granted by
// links outside this server's model — and +Inf means uncapped. Nothing
// is registered.
func (s *Server) EvalPathCost(links topology.Path, bits, capBw float64) (cost, estimatedBw float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.evalPathCapped(0, links, bits, capBw)
	return c.cost, c.bw
}

// CommitPath registers a new flow on the given links with the next id
// from this server's sequence, applying SETBW freeze to the flow and to
// every modeled flow whose estimate the admission changed. capBw caps
// the flow's demand as in EvalPathCost. The links need not form a
// client-to-replica path — a flowctl coordinator commits only the
// sub-path it owns. The returned Assignment carries no replica.
func (s *Server) CommitPath(links topology.Path, bits, capBw float64) Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.evalPathCapped(0, links, bits, capBw)
	s.nextID += s.idStep
	return s.commitAs(s.nextID, c, bits)
}

// CommitForeign registers the local sub-path of a flow another server
// coordinated, under that coordinator's id. The id sequence is not
// advanced; callers must guarantee cross-server id uniqueness (flowctl
// does, via Options.IDBase/IDStride). A duplicate id is a retry of a
// commit that already applied: it returns the registered estimate and
// changes nothing.
func (s *Server) CommitForeign(id FlowID, links topology.Path, bits, capBw float64) (estimatedBw float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flows[id]; ok {
		return f.bw
	}
	c := s.evalPathCapped(0, links, bits, capBw)
	a := s.commitAs(id, c, bits)
	return a.EstimatedBw
}

// AllocFlowID draws the next flow id from this server's sequence
// without registering anything. Local (zero network cost) assignments
// need an id for the caller's bookkeeping but no model entry; the
// standalone select paths allocate the same way internally.
func (s *Server) AllocFlowID() FlowID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID += s.idStep
	return s.nextID
}

// LinkLoads visits every link's modeled load — the number of registered
// flows crossing it and the sum of their current bandwidth estimates —
// in ascending link order. Links with no flows are skipped. This is the
// raw material of flowctl's cross-shard utilization digests.
func (s *Server) LinkLoads(visit func(link int, flows int, sumBw float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for l, fs := range s.linkFlows {
		if len(fs) == 0 {
			continue
		}
		sum := 0.0
		for _, f := range fs {
			sum += f.bw
		}
		visit(l, len(fs), sum)
	}
}
