package flowserver

import (
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/testutil"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// BenchmarkSelect measures one SelectReplicaAndPath decision against a
// model already holding n live flows — the §4.2 hot path: every shortest
// path from three replicas is scored with per-link water-filling over the
// flows it would share links with.
func BenchmarkSelect(b *testing.B) {
	for _, bc := range []struct {
		name string
		n    int
	}{{"1k", 1000}, {"10k", 10000}} {
		b.Run(bc.name, func(b *testing.B) {
			topo, err := topology.New(topology.PaperTestbed(8))
			if err != nil {
				b.Fatal(err)
			}
			srv := New(topo, Options{})
			r := testutil.Rand(b, 7)
			hosts := topo.Hosts()
			for i := 0; i < bc.n; i++ {
				src := hosts[r.Intn(len(hosts))]
				dst := hosts[r.Intn(len(hosts))]
				if src == dst {
					i--
					continue
				}
				paths := topo.ShortestPaths(src, dst)
				path := paths[r.Intn(len(paths))]
				srv.ForceFlow(path, 1e6*(1+r.Float64()*2000), 1e6*(1+r.Float64()*999))
			}
			client := topo.HostAt(0, 0, 0)
			replicas := []topology.NodeID{
				topo.HostAt(0, 1, 0), topo.HostAt(1, 0, 0), topo.HostAt(2, 2, 3),
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				as, err := srv.SelectReplicaAndPath(Request{Client: client, Replicas: replicas, Bits: 256 * 8e6})
				if err != nil {
					b.Fatal(err)
				}
				for _, a := range as {
					srv.FlowFinished(a.FlowID)
				}
			}
		})
	}
}
