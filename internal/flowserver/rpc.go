package flowserver

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// RPC method names served by the Flowserver. Per §5 of the paper, the
// replica-path function is exposed as an RPC service that is not tied to
// Mayflower: any distributed application can pass candidate sources and a
// transfer size and get back the chosen sources with per-source sizes.
const (
	MethodSelect      = "fs.Select"
	MethodSelectWrite = "fs.SelectWrite"
	MethodFinished    = "fs.Finished"
)

// SelectArgs asks for a read assignment. Hosts are topology host names
// (the prototype's stand-in for the IP addresses the paper's RPC takes).
type SelectArgs struct {
	ClientHost   string   `json:"clientHost"`
	ReplicaHosts []string `json:"replicaHosts"`
	Bits         float64  `json:"bits"`
}

// AssignmentDTO is the wire form of one Assignment.
type AssignmentDTO struct {
	FlowID      FlowID  `json:"flowId"`
	ReplicaHost string  `json:"replicaHost"`
	Bits        float64 `json:"bits"`
	EstimatedBw float64 `json:"estimatedBw,omitempty"`
	Local       bool    `json:"local,omitempty"`
	PathLen     int     `json:"pathLen"`
}

// SelectWriteArgs asks for a replication-pipeline schedule: one transfer
// of Bits bits from SourceHost to every target host, ordered by the
// Flowserver (see Server.SelectWritePipeline). In the returned
// assignments ReplicaHost names the *target* of each hop — the flow runs
// source→target, the reverse of a read assignment.
type SelectWriteArgs struct {
	SourceHost  string   `json:"sourceHost"`
	TargetHosts []string `json:"targetHosts"`
	Bits        float64  `json:"bits"`
}

// FinishedArgs reports a completed flow.
type FinishedArgs struct {
	FlowID FlowID `json:"flowId"`
}

// Hooks let the embedding controller react to assignments: the prototype
// installs OpenFlow rules for the selected path on assignment and removes
// them when the client reports completion.
type Hooks struct {
	// OnAssign runs after a non-local assignment is made.
	OnAssign func(a Assignment)
	// OnFinish runs when a flow is reported finished.
	OnFinish func(id FlowID)
}

// Service is the selection surface RegisterRPC serves. The standalone
// *Server implements it, and so do the sharded deployments in
// internal/flowctl (a whole Plane, or one Shard serving its pods).
type Service interface {
	SelectReplicaAndPath(Request) ([]Assignment, error)
	SelectWritePipeline(source topology.NodeID, targets []topology.NodeID, bits float64) ([]Assignment, error)
	FlowFinished(FlowID)
}

// RegisterRPC exposes a Flowserver on a wire server, resolving host names
// against the topology.
func RegisterRPC(srv *wire.Server, fs Service, topo *topology.Topology, hooks Hooks) error {
	hostByName := make(map[string]topology.NodeID, topo.NumHosts())
	nameByHost := make(map[topology.NodeID]string, topo.NumHosts())
	for _, h := range topo.Hosts() {
		n := topo.Node(h)
		hostByName[n.Name] = h
		nameByHost[h] = n.Name
	}

	selectHandler := func(_ context.Context, params json.RawMessage) (any, error) {
		var a SelectArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		client, ok := hostByName[a.ClientHost]
		if !ok {
			return nil, fmt.Errorf("flowserver: unknown client host %q", a.ClientHost)
		}
		replicas := make([]topology.NodeID, 0, len(a.ReplicaHosts))
		for _, name := range a.ReplicaHosts {
			h, ok := hostByName[name]
			if !ok {
				return nil, fmt.Errorf("flowserver: unknown replica host %q", name)
			}
			replicas = append(replicas, h)
		}
		as, err := fs.SelectReplicaAndPath(Request{Client: client, Replicas: replicas, Bits: a.Bits})
		if err != nil {
			return nil, err
		}
		out := make([]AssignmentDTO, 0, len(as))
		for _, asg := range as {
			if !asg.Local() && hooks.OnAssign != nil {
				hooks.OnAssign(asg)
			}
			out = append(out, AssignmentDTO{
				FlowID:      asg.FlowID,
				ReplicaHost: nameByHost[asg.Replica],
				Bits:        asg.Bits,
				EstimatedBw: asg.EstimatedBw,
				Local:       asg.Local(),
				PathLen:     len(asg.Path),
			})
		}
		return out, nil
	}

	selectWriteHandler := func(_ context.Context, params json.RawMessage) (any, error) {
		var a SelectWriteArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		source, ok := hostByName[a.SourceHost]
		if !ok {
			return nil, fmt.Errorf("flowserver: unknown source host %q", a.SourceHost)
		}
		targets := make([]topology.NodeID, 0, len(a.TargetHosts))
		for _, name := range a.TargetHosts {
			h, ok := hostByName[name]
			if !ok {
				return nil, fmt.Errorf("flowserver: unknown target host %q", name)
			}
			targets = append(targets, h)
		}
		as, err := fs.SelectWritePipeline(source, targets, a.Bits)
		if err != nil {
			return nil, err
		}
		out := make([]AssignmentDTO, 0, len(as))
		for _, asg := range as {
			if !asg.Local() && hooks.OnAssign != nil {
				hooks.OnAssign(asg)
			}
			out = append(out, AssignmentDTO{
				FlowID:      asg.FlowID,
				ReplicaHost: nameByHost[asg.Replica],
				Bits:        asg.Bits,
				EstimatedBw: asg.EstimatedBw,
				Local:       asg.Local(),
				PathLen:     len(asg.Path),
			})
		}
		return out, nil
	}

	finishedHandler := func(_ context.Context, params json.RawMessage) (any, error) {
		var a FinishedArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		fs.FlowFinished(a.FlowID)
		if hooks.OnFinish != nil {
			hooks.OnFinish(a.FlowID)
		}
		return struct{}{}, nil
	}

	if err := srv.Register(MethodSelect, selectHandler); err != nil {
		return err
	}
	if err := srv.Register(MethodSelectWrite, selectWriteHandler); err != nil {
		return err
	}
	return srv.Register(MethodFinished, finishedHandler)
}

// RPCClient is the typed Flowserver stub over an rpc session (usually an
// *rpc.Peer). Connection lifecycle — dialing, pooling, reconnection —
// belongs to the session layer, not this stub.
type RPCClient struct {
	c rpc.Caller
}

// NewRPCClient wraps a control-plane session.
func NewRPCClient(c rpc.Caller) *RPCClient { return &RPCClient{c: c} }

// Select asks the Flowserver for a read assignment.
func (c *RPCClient) Select(ctx context.Context, args SelectArgs) ([]AssignmentDTO, error) {
	var out []AssignmentDTO
	if err := c.c.Call(ctx, MethodSelect, args, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SelectWrite asks the Flowserver to order a replication pipeline.
func (c *RPCClient) SelectWrite(ctx context.Context, args SelectWriteArgs) ([]AssignmentDTO, error) {
	var out []AssignmentDTO
	if err := c.c.Call(ctx, MethodSelectWrite, args, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Finished reports a completed flow.
func (c *RPCClient) Finished(ctx context.Context, id FlowID) error {
	var out struct{}
	return c.c.Call(ctx, MethodFinished, FinishedArgs{FlowID: id}, &out)
}
