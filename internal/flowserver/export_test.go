package flowserver

import (
	"fmt"
	"sort"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// ForceFlow registers a background flow with a fixed bandwidth estimate
// and remaining size, bypassing selection. Tests use it to reconstruct the
// paper's worked examples exactly.
func (s *Server) ForceFlow(links []topology.LinkID, remaining, bw float64) FlowID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	ls := make([]int, len(links))
	for i, l := range links {
		ls[i] = int(l)
	}
	s.flows[id] = &flowState{
		id:        id,
		links:     ls,
		totalBits: remaining,
		remaining: remaining,
		bw:        bw,
		lastPoll:  s.now(),
	}
	for _, l := range ls {
		s.linkFlows[l] = insertFlow(s.linkFlows[l], s.flows[id])
	}
	return id
}

// FlowFrozen reports the freeze state of a flow, for tests.
func (s *Server) FlowFrozen(id FlowID) (frozen bool, until float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.flows[id]
	if !ok {
		return false, 0
	}
	return f.frozen, f.freezeUntil
}

// FlowRemainingEstimate returns the server's view of a flow's remaining
// bits, for tests.
func (s *Server) FlowRemainingEstimate(id FlowID) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.flows[id]
	if !ok {
		return 0, false
	}
	return f.remaining, true
}

// CheckInvariants verifies the internal model's consistency: every link
// index lists only live flows in strictly ascending id order, every live
// flow appears on each of its links, no estimate is negative, and the id
// counter is ahead of every live flow. Tests call it after random op
// sequences.
func (s *Server) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkInvariantsLocked()
}

// InstallRestoreAudit runs the invariant checker immediately after every
// snapshot rollback (the selectMulti reject path), panicking on a
// violation since restore has no error return. It returns an uninstall
// func for defer. The hook is package-global: don't use with t.Parallel.
func InstallRestoreAudit() func() {
	restoreHook = func(s *Server) {
		if err := s.checkInvariantsLocked(); err != nil {
			panic(fmt.Sprintf("flowserver: post-restore invariant violation: %v", err))
		}
	}
	return func() { restoreHook = nil }
}

func (s *Server) checkInvariantsLocked() error {
	for link, fs := range s.linkFlows {
		for i, f := range fs {
			if i > 0 && fs[i-1].id >= f.id {
				return fmt.Errorf("link %d index out of order at %d", link, i)
			}
			live, ok := s.flows[f.id]
			if !ok {
				return fmt.Errorf("link %d references dead flow %d", link, f.id)
			}
			if live != f {
				return fmt.Errorf("link %d holds a stale state for flow %d", link, f.id)
			}
			found := false
			for _, l := range f.links {
				if l == link {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("flow %d indexed on link %d it does not traverse", f.id, link)
			}
		}
	}
	for id, f := range s.flows {
		if f.bw < 0 || f.remaining < 0 || f.totalBits < 0 {
			return fmt.Errorf("flow %d has negative state: bw=%g rem=%g total=%g", id, f.bw, f.remaining, f.totalBits)
		}
		if id > s.nextID {
			return fmt.Errorf("flow %d is ahead of the id counter %d", id, s.nextID)
		}
		for _, l := range f.links {
			fs := s.linkFlows[l]
			i := sort.Search(len(fs), func(i int) bool { return fs[i].id >= id })
			if i >= len(fs) || fs[i].id != id {
				return fmt.Errorf("flow %d missing from link %d index", id, l)
			}
		}
	}
	return nil
}
