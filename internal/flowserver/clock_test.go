package flowserver

import (
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// These tests pin the single-clock rule for UpdateFlowStats: freeze
// horizons are stamped from the model clock (Options.Now), so poll
// timestamps from a different clock domain must either be re-stamped
// onto the model clock (small skew) or rejected whole (skew beyond
// MaxPollSkew), never compared raw against the horizons.

func TestUpdateFlowStatsRejectsFutureSkew(t *testing.T) {
	clock := 0.0
	f := newFigure2(t, Options{Now: func() float64 { return clock }})
	id := f.flow6
	bwBefore, _ := f.srv.EstimatedBW(id)
	remBefore, _ := f.srv.FlowRemainingEstimate(id)

	clock = 2
	// Stamped 10 model-seconds ahead (> DefaultMaxPollSkew): the whole
	// poll is rejected — remaining must not move either, or a wall-clock
	// poller against an injected-clock server would corrupt progress.
	f.srv.UpdateFlowStats(12, []FlowStat{{ID: id, TransferredBits: 4}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, bwBefore) {
		t.Errorf("bw moved on future-skewed poll: %g -> %g", bwBefore, bw)
	}
	if rem, _ := f.srv.FlowRemainingEstimate(id); !near(rem, remBefore) {
		t.Errorf("remaining moved on future-skewed poll: %g -> %g", remBefore, rem)
	}
	if c := f.srv.Counters(); c.PollDropsSkewFuture != 1 {
		t.Errorf("PollDropsSkewFuture = %d, want 1", c.PollDropsSkewFuture)
	}

	// Half a second ahead is within tolerance: the poll is re-stamped to
	// the model time, so the rate uses dt=2, not the caller's 2.5.
	f.srv.UpdateFlowStats(2.5, []FlowStat{{ID: id, TransferredBits: 4}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 2) {
		t.Errorf("bw = %g, want 2 (4 Mb over model dt=2)", bw)
	}
}

func TestUpdateFlowStatsRejectsPastSkew(t *testing.T) {
	clock := 0.0
	f := newFigure2(t, Options{Now: func() float64 { return clock }})
	id := f.flow6

	clock = 10
	// Stamped 8 model-seconds behind: rejected whole.
	bwBefore, _ := f.srv.EstimatedBW(id)
	f.srv.UpdateFlowStats(2, []FlowStat{{ID: id, TransferredBits: 4}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, bwBefore) {
		t.Errorf("bw moved on past-skewed poll: %g -> %g", bwBefore, bw)
	}
	if c := f.srv.Counters(); c.PollDropsSkewPast != 1 {
		t.Errorf("PollDropsSkewPast = %d, want 1", c.PollDropsSkewPast)
	}

	// Slightly behind is fine (re-stamped to model time 10).
	f.srv.UpdateFlowStats(9.8, []FlowStat{{ID: id, TransferredBits: 4}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 0.4) {
		t.Errorf("bw = %g, want 0.4 (4 Mb over model dt=10)", bw)
	}
}

// TestFreezeSurvivesSkewedPoll pins the original bug: a poll stamped by a
// wall clock running ahead of the model clock used to expire freezes
// early, because the raw timestamp was compared against horizons set
// from the model clock.
func TestFreezeSurvivesSkewedPoll(t *testing.T) {
	clock := 0.0
	f := newFigure2(t, Options{Now: func() float64 { return clock }})
	as, err := f.srv.SelectReplicaAndPath(Request{
		Client: f.reader, Replicas: []topology.NodeID{f.source}, Bits: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := as[0].FlowID
	// Estimate 3 Mb/s over 9 Mb → frozen until t=3.
	if _, until := f.srv.FlowFrozen(id); !near(until, 3) {
		t.Fatalf("freezeUntil = %g, want 3", until)
	}

	// Model time 1, poll stamped 3.5: raw comparison would see the freeze
	// expired; the model clock says it has 2 s to run. The estimate must
	// hold while remaining still tracks the counter.
	clock = 1
	f.srv.UpdateFlowStats(3.5, []FlowStat{{ID: id, TransferredBits: 6}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 3) {
		t.Errorf("frozen bw = %g, want 3 (freeze must survive skewed poll)", bw)
	}
	if rem, _ := f.srv.FlowRemainingEstimate(id); !near(rem, 3) {
		t.Errorf("remaining = %g, want 3", rem)
	}
	c := f.srv.Counters()
	if c.FreezeHits != 1 {
		t.Errorf("FreezeHits = %d, want 1", c.FreezeHits)
	}

	// At model time 3 the freeze has expired regardless of the stamp.
	clock = 3
	f.srv.UpdateFlowStats(3.2, []FlowStat{{ID: id, TransferredBits: 8}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 1) {
		t.Errorf("bw after expiry = %g, want 1 (2 Mb over model dt=2)", bw)
	}
	if c := f.srv.Counters(); c.FreezeExpirations != 1 {
		t.Errorf("FreezeExpirations = %d, want 1", c.FreezeExpirations)
	}
}

func TestUpdateFlowStatsMaxPollSkewKnob(t *testing.T) {
	// A tight custom tolerance rejects what the default accepts.
	clock := 0.0
	f := newFigure2(t, Options{Now: func() float64 { return clock }, MaxPollSkew: 0.1})
	id := f.flow6
	clock = 2
	f.srv.UpdateFlowStats(2.5, []FlowStat{{ID: id, TransferredBits: 4}})
	if c := f.srv.Counters(); c.PollDropsSkewFuture != 1 {
		t.Errorf("PollDropsSkewFuture = %d, want 1 under MaxPollSkew=0.1", c.PollDropsSkewFuture)
	}

	// A negative tolerance disables the check entirely: any stamp is
	// accepted and re-stamped onto the model clock.
	clock2 := 0.0
	g := newFigure2(t, Options{Now: func() float64 { return clock2 }, MaxPollSkew: -1})
	id2 := g.flow6
	clock2 = 2
	g.srv.UpdateFlowStats(500, []FlowStat{{ID: id2, TransferredBits: 4}})
	if bw, _ := g.srv.EstimatedBW(id2); !near(bw, 2) {
		t.Errorf("bw = %g, want 2 (poll applied at model time despite wild stamp)", bw)
	}
	if c := g.srv.Counters(); c.PollDropsSkewFuture != 0 || c.PollDropsSkewPast != 0 {
		t.Errorf("skew drops with check disabled: %+v", c)
	}
}

func TestUpdateFlowStatsPastPollCounterNoInjectedClock(t *testing.T) {
	// Without an injected clock the poll timestamps are the clock; a poll
	// stamped before the high-water mark is a replay and is rejected whole.
	f := newFigure2(t, Options{})
	f.srv.UpdateFlowStats(5, []FlowStat{{ID: f.flow6, TransferredBits: 1}})
	f.srv.UpdateFlowStats(2, []FlowStat{{ID: f.flow6, TransferredBits: 2}})
	c := f.srv.Counters()
	if c.PollDropsSkewPast != 1 {
		t.Errorf("PollDropsSkewPast = %d, want 1", c.PollDropsSkewPast)
	}
	if rem, _ := f.srv.FlowRemainingEstimate(f.flow6); !near(rem, 5) {
		t.Errorf("remaining = %g, want 5 (replayed poll must not apply)", rem)
	}
}
