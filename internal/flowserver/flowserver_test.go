package flowserver

import (
	"math"
	"reflect"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

const tol = 1e-6

func near(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

// figure2 builds the §4.2 worked example: one pod, two racks, two
// aggregation switches, 10 Mbps links (units here are Mb and Mbps). The
// replica source is in rack 0 and the reader in rack 1, giving two
// four-link paths (via agg 0 and agg 1). Background flows carry the shares
// shown in Figure 2(a).
type figure2 struct {
	topo           *topology.Topology
	srv            *Server
	source         topology.NodeID
	reader         topology.NodeID
	pathA, pathB   topology.Path // via agg 0, agg 1
	link2A, link3A topology.LinkID
	flow6, flow10  FlowID // the squeezed flows on path A
}

func newFigure2(t *testing.T, opts Options) *figure2 {
	t.Helper()
	topo, err := topology.New(topology.Config{
		Pods: 1, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 1,
		EdgeLinkBps: 10, EdgeAggLinkBps: 10, AggCoreLinkBps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &figure2{
		topo:   topo,
		srv:    New(topo, opts),
		source: topo.HostAt(0, 0, 0),
		reader: topo.HostAt(0, 1, 0),
	}
	paths := topo.ShortestPaths(f.source, f.reader)
	if len(paths) != 2 {
		t.Fatalf("expected 2 paths, got %d", len(paths))
	}
	f.pathA, f.pathB = paths[0], paths[1]

	link := func(p topology.Path, i int) topology.LinkID { return p[i] }
	f.link2A, f.link3A = link(f.pathA, 1), link(f.pathA, 2)
	link2B, link3B := link(f.pathB, 1), link(f.pathB, 2)

	// Figure 2(a): path A second link carries shares {2, 2, 6}; its third
	// link carries {10}. Path B: {2, 2, 4} and {8}. Remaining size of all
	// existing flows is 6 Mb.
	f.srv.ForceFlow([]topology.LinkID{f.link2A}, 6, 2)
	f.srv.ForceFlow([]topology.LinkID{f.link2A}, 6, 2)
	f.flow6 = f.srv.ForceFlow([]topology.LinkID{f.link2A}, 6, 6)
	f.flow10 = f.srv.ForceFlow([]topology.LinkID{f.link3A}, 6, 10)
	f.srv.ForceFlow([]topology.LinkID{link2B}, 6, 2)
	f.srv.ForceFlow([]topology.LinkID{link2B}, 6, 2)
	f.srv.ForceFlow([]topology.LinkID{link2B}, 6, 4)
	f.srv.ForceFlow([]topology.LinkID{link3B}, 6, 8)
	return f
}

func TestFigure2PathCosts(t *testing.T) {
	f := newFigure2(t, Options{})

	costA, bwA := f.srv.PathCost(f.source, f.pathA, 9)
	// C1 = 9/3 + (6/3 − 6/6) + (6/7 − 6/10) = 4.2571... ("4.25").
	wantA := 3.0 + 1.0 + (6.0/7 - 0.6)
	if !near(costA, wantA) {
		t.Errorf("cost(path A) = %g, want %g", costA, wantA)
	}
	if !near(bwA, 3) {
		t.Errorf("bw(path A) = %g, want 3", bwA)
	}

	costB, bwB := f.srv.PathCost(f.source, f.pathB, 9)
	// C2 = 9/3 + (6/3 − 6/4) + (6/7 − 6/8) = 3.6071... ("3.6").
	wantB := 3.0 + 0.5 + (6.0/7 - 0.75)
	if !near(costB, wantB) {
		t.Errorf("cost(path B) = %g, want %g", costB, wantB)
	}
	if !near(bwB, 3) {
		t.Errorf("bw(path B) = %g, want 3", bwB)
	}
}

func TestFigure2SelectsSecondPath(t *testing.T) {
	f := newFigure2(t, Options{})
	as, err := f.srv.SelectReplicaAndPath(Request{
		Client:   f.reader,
		Replicas: []topology.NodeID{f.source},
		Bits:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 {
		t.Fatalf("got %d assignments, want 1", len(as))
	}
	a := as[0]
	if a.Path[1] != f.pathB[1] {
		t.Errorf("selected path via link %d, want path B (link %d)", a.Path[1], f.pathB[1])
	}
	if !near(a.EstimatedBw, 3) {
		t.Errorf("EstimatedBw = %g, want 3", a.EstimatedBw)
	}
	if a.Replica != f.source || !near(a.Bits, 9) || a.Local() {
		t.Errorf("assignment = %+v", a)
	}
}

func TestFigure2HeterogeneousCapacityFlipsChoice(t *testing.T) {
	// §4.2: "if we assume that the second link in the first path has
	// 20Mbps capacity, then the cost of the first path will become 2.4
	// seconds and thus the first path will be selected."
	f := newFigure2(t, Options{})
	if err := f.srv.SetLinkCapacity(f.link2A, 20); err != nil {
		t.Fatal(err)
	}

	costA, bwA := f.srv.PathCost(f.source, f.pathA, 9)
	if !near(bwA, 5) {
		t.Errorf("bw(path A) = %g, want 5 (bottleneck moves to third link)", bwA)
	}
	// C1 = 9/5 + (6/7 − 6/10) = 1.8 + 0.2571 ≈ 2.057. The paper states
	// 2.4 by keeping the second-link squeeze in its narrative; the exact
	// recomputation with the bottleneck at the third link gives 2.057 —
	// either way strictly below C2 = 3.6, so the choice flips to path A.
	if costA >= 2.5 {
		t.Errorf("cost(path A) = %g, want < 2.5", costA)
	}

	as, err := f.srv.SelectReplicaAndPath(Request{
		Client: f.reader, Replicas: []topology.NodeID{f.source}, Bits: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Path[1] != f.pathA[1] {
		t.Error("selection did not flip to path A with 20 Mbps second link")
	}
}

func TestSetLinkCapacityValidation(t *testing.T) {
	f := newFigure2(t, Options{})
	if err := f.srv.SetLinkCapacity(f.link2A, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := f.srv.SetLinkCapacity(topology.LinkID(9999), 10); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestCommitFreezesChangedFlows(t *testing.T) {
	clock := 0.0
	f := newFigure2(t, Options{Now: func() float64 { return clock }})

	as, err := f.srv.SelectReplicaAndPath(Request{
		Client: f.reader, Replicas: []topology.NodeID{f.source}, Bits: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The new flow is frozen for its expected completion (9/3 = 3 s).
	frozen, until := f.srv.FlowFrozen(as[0].FlowID)
	if !frozen || !near(until, 3) {
		t.Errorf("new flow frozen=%v until=%g, want true until 3", frozen, until)
	}
	// Path B was chosen, so path A's flows are untouched.
	if frozen, _ := f.srv.FlowFrozen(f.flow6); frozen {
		t.Error("flow on unchosen path was frozen")
	}
	if bw, _ := f.srv.EstimatedBW(f.flow6); !near(bw, 6) {
		t.Errorf("flow6 bw = %g, want 6 (untouched)", bw)
	}
}

func TestUpdateFlowStatsRespectsFreeze(t *testing.T) {
	clock := 0.0
	f := newFigure2(t, Options{Now: func() float64 { return clock }})
	as, err := f.srv.SelectReplicaAndPath(Request{
		Client: f.reader, Replicas: []topology.NodeID{f.source}, Bits: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := as[0].FlowID

	// A poll at t=1 measuring 5 Mb transferred implies 5 Mbps, but the
	// flow is frozen until t=3, so the estimate must hold at 3.
	clock = 1
	f.srv.UpdateFlowStats(1, []FlowStat{{ID: id, TransferredBits: 5}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 3) {
		t.Errorf("bw after frozen poll = %g, want 3", bw)
	}
	// Remaining always tracks counters.
	if rem, _ := f.srv.FlowRemainingEstimate(id); !near(rem, 4) {
		t.Errorf("remaining = %g, want 4", rem)
	}

	// After the freeze expires, polls take effect: 2 more Mb in 3 s.
	clock = 4
	f.srv.UpdateFlowStats(4, []FlowStat{{ID: id, TransferredBits: 7}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 2.0/3) {
		t.Errorf("bw after unfrozen poll = %g, want %g", bw, 2.0/3)
	}
}

func TestUpdateFlowStatsDisableFreeze(t *testing.T) {
	clock := 0.0
	f := newFigure2(t, Options{Now: func() float64 { return clock }, DisableFreeze: true})
	as, err := f.srv.SelectReplicaAndPath(Request{
		Client: f.reader, Replicas: []topology.NodeID{f.source}, Bits: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := as[0].FlowID
	clock = 1
	f.srv.UpdateFlowStats(1, []FlowStat{{ID: id, TransferredBits: 5}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 5) {
		t.Errorf("bw = %g, want 5 (freeze disabled)", bw)
	}
}

func TestUpdateFlowStatsIgnoresUnknownAndStale(t *testing.T) {
	f := newFigure2(t, Options{})
	// Unknown flow: no panic, no effect.
	f.srv.UpdateFlowStats(1, []FlowStat{{ID: 9999, TransferredBits: 5}})
	// Stale (dt <= 0) poll: ignored entirely — neither bandwidth nor
	// remaining may move, or a duplicated/reordered poll would roll the
	// remaining-bits estimate backward.
	bwBefore, _ := f.srv.EstimatedBW(f.flow6)
	remBefore, _ := f.srv.FlowRemainingEstimate(f.flow6)
	f.srv.UpdateFlowStats(0, []FlowStat{{ID: f.flow6, TransferredBits: 1}})
	if bw, _ := f.srv.EstimatedBW(f.flow6); !near(bw, bwBefore) {
		t.Errorf("bw changed on dt<=0 poll: %g -> %g", bwBefore, bw)
	}
	if rem, _ := f.srv.FlowRemainingEstimate(f.flow6); !near(rem, remBefore) {
		t.Errorf("remaining changed on dt<=0 poll: %g -> %g", remBefore, rem)
	}
}

func TestUpdateFlowStatsReorderedPolls(t *testing.T) {
	clock := 0.0
	f := newFigure2(t, Options{Now: func() float64 { return clock }})
	id := f.flow6 // 6 Mb total, not frozen

	clock = 2
	f.srv.UpdateFlowStats(2, []FlowStat{{ID: id, TransferredBits: 4}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 2) {
		t.Fatalf("bw = %g, want 2", bw)
	}
	if rem, _ := f.srv.FlowRemainingEstimate(id); !near(rem, 2) {
		t.Fatalf("remaining = %g, want 2", rem)
	}

	check := func(what string) {
		t.Helper()
		if bw, _ := f.srv.EstimatedBW(id); !near(bw, 2) {
			t.Errorf("%s: bw = %g, want 2 (unchanged)", what, bw)
		}
		if rem, _ := f.srv.FlowRemainingEstimate(id); !near(rem, 2) {
			t.Errorf("%s: remaining = %g, want 2 (unchanged)", what, rem)
		}
	}

	// A delayed poll from t=1 delivered after the t=2 poll must not roll
	// the remaining estimate backward (to 6−2 = 4) or corrupt the rate.
	f.srv.UpdateFlowStats(1, []FlowStat{{ID: id, TransferredBits: 2}})
	check("out-of-order poll")

	// An exact duplicate of the t=2 poll carries no new information.
	f.srv.UpdateFlowStats(2, []FlowStat{{ID: id, TransferredBits: 4}})
	check("duplicate poll")

	// A regressed counter at a later time (switch table reset) is ignored.
	clock = 3
	f.srv.UpdateFlowStats(3, []FlowStat{{ID: id, TransferredBits: 3}})
	check("regressed counter")

	// The next good poll resumes from the preserved counter state.
	clock = 4
	f.srv.UpdateFlowStats(4, []FlowStat{{ID: id, TransferredBits: 5}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 0.5) {
		t.Errorf("bw after recovery poll = %g, want 0.5 (1 Mb over 2 s)", bw)
	}
	if rem, _ := f.srv.FlowRemainingEstimate(id); !near(rem, 1) {
		t.Errorf("remaining after recovery poll = %g, want 1", rem)
	}
}

func TestFreezeExpiresAtBoundary(t *testing.T) {
	clock := 0.0
	f := newFigure2(t, Options{Now: func() float64 { return clock }})
	as, err := f.srv.SelectReplicaAndPath(Request{
		Client: f.reader, Replicas: []topology.NodeID{f.source}, Bits: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := as[0].FlowID
	if _, until := f.srv.FlowFrozen(id); !near(until, 3) {
		t.Fatalf("freezeUntil = %g, want 3", until)
	}

	// Pseudocode 2 holds the estimate *until* the expected completion: a
	// poll landing exactly at the horizon already sees the freeze expired.
	clock = 3
	f.srv.UpdateFlowStats(3, []FlowStat{{ID: id, TransferredBits: 6}})
	if bw, _ := f.srv.EstimatedBW(id); !near(bw, 2) {
		t.Errorf("bw at freeze boundary = %g, want 2 (6 Mb over 3 s)", bw)
	}
	if frozen, _ := f.srv.FlowFrozen(id); frozen {
		t.Error("flow still frozen at its freeze horizon")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	f := newFigure2(t, Options{})
	s := f.srv

	s.mu.Lock()
	defer s.mu.Unlock()
	wantNext := s.nextID
	wantFlows := make(map[FlowID]flowState, len(s.flows))
	for id, fl := range s.flows {
		wantFlows[id] = *fl
	}
	wantLinks := make([][]FlowID, len(s.linkFlows))
	for l, fs := range s.linkFlows {
		for _, fl := range fs {
			wantLinks[l] = append(wantLinks[l], fl.id)
		}
	}

	snap := s.snapshot()
	// Mutate every part of the model: admit flows on both paths (new ids,
	// new index entries, squeezed estimates on existing flows).
	for _, p := range []topology.Path{f.pathA, f.pathB} {
		c := s.evalPath(f.source, p, 9)
		s.commit(c, 9)
	}
	if s.nextID == wantNext {
		t.Fatal("commits did not advance nextID; test is vacuous")
	}
	s.restore(snap)

	if s.nextID != wantNext {
		t.Errorf("nextID = %d, want %d", s.nextID, wantNext)
	}
	if len(s.flows) != len(wantFlows) {
		t.Fatalf("len(flows) = %d, want %d", len(s.flows), len(wantFlows))
	}
	for id, want := range wantFlows {
		got, ok := s.flows[id]
		if !ok {
			t.Fatalf("flow %d missing after restore", id)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("flow %d = %+v, want %+v", id, *got, want)
		}
	}
	for l := range s.linkFlows {
		got, want := s.linkFlows[l], wantLinks[l]
		if len(got) != len(want) {
			t.Errorf("link %d index has %d flows, want %d", l, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i].id != want[i] {
				t.Errorf("link %d index entry %d = flow %d, want %d", l, i, got[i].id, want[i])
				break
			}
		}
	}
}

func TestDisableImpactTermChangesChoice(t *testing.T) {
	// Path A: bottleneck share 4, nothing to squeeze. Path B: share 5 but
	// an existing flow pays a huge penalty. Full Eq. 2 picks A; the
	// ablated cost (d/b only) picks B.
	build := func(opts Options) (*Server, *figure2) {
		f := newFigure2(t, opts)
		srv := New(f.topo, opts)
		// Path A second link: one flow demanding 6 → new flow share
		// (10-6 vs equal split) = max-min: level 5 caps... water-fill
		// {6, inf} on 10 → {5, 5}? The 6-demand flow gets 5 (squeezed).
		// To make A penalty-free, cap its demand at 6 on a 10 link and
		// give the new flow 4 via demand 6 flow staying: use {6} on cap
		// 10: new flow gets 4? Water-fill: level rises to 5: flow (d=6)
		// not capped at 5... both get 5. That squeezes 6→5.
		// Simpler: put a *demand 2* flow with remaining 0.0001 (neglig.)
		// Instead: A has capacity 4 on its third link (SetLinkCapacity)
		// and no flows; B keeps cap 10 with a heavily-squeezed flow.
		if err := srv.SetLinkCapacity(f.link3A, 4); err != nil {
			t.Fatal(err)
		}
		pathB := f.pathB
		srv.ForceFlow([]topology.LinkID{pathB[1]}, 1000, 10)
		return srv, f
	}

	full, f := build(Options{})
	as, err := full.SelectReplicaAndPath(Request{
		Client: f.reader, Replicas: []topology.NodeID{f.source}, Bits: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Path[1] != f.pathA[1] {
		t.Error("full cost should avoid squeezing the long-lived flow (path A)")
	}

	ablated, f2 := build(Options{DisableImpactTerm: true})
	as, err = ablated.SelectReplicaAndPath(Request{
		Client: f2.reader, Replicas: []topology.NodeID{f2.source}, Bits: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Path[1] != f2.pathB[1] {
		t.Error("ablated cost should chase raw bandwidth (path B)")
	}
}

func TestLocalReplicaWinsImmediately(t *testing.T) {
	f := newFigure2(t, Options{})
	as, err := f.srv.SelectReplicaAndPath(Request{
		Client:   f.reader,
		Replicas: []topology.NodeID{f.source, f.reader},
		Bits:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || !as[0].Local() || as[0].Replica != f.reader {
		t.Errorf("assignments = %+v, want single local read", as)
	}
	if !math.IsInf(as[0].EstimatedBw, 1) {
		t.Errorf("local EstimatedBw = %g, want +Inf", as[0].EstimatedBw)
	}
	// Local reads register nothing.
	if n := f.srv.NumFlows(); n != 8 {
		t.Errorf("NumFlows = %d, want the 8 background flows", n)
	}
}

func TestSelectErrors(t *testing.T) {
	f := newFigure2(t, Options{})
	if _, err := f.srv.SelectReplicaAndPath(Request{Client: f.reader}); err == nil {
		t.Error("empty replica list accepted")
	}
	if _, err := f.srv.SelectReplicaAndPath(Request{
		Client: f.reader, Replicas: []topology.NodeID{f.source}, Bits: -1,
	}); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := f.srv.SelectPath(f.reader, f.source, -1); err == nil {
		t.Error("SelectPath negative size accepted")
	}
}

func TestFlowFinishedRemoves(t *testing.T) {
	f := newFigure2(t, Options{})
	before := f.srv.NumFlows()
	as, err := f.srv.SelectPath(f.reader, f.source, 9)
	if err != nil {
		t.Fatal(err)
	}
	if f.srv.NumFlows() != before+1 {
		t.Fatalf("NumFlows = %d, want %d", f.srv.NumFlows(), before+1)
	}
	f.srv.FlowFinished(as.FlowID)
	if f.srv.NumFlows() != before {
		t.Fatalf("NumFlows after finish = %d, want %d", f.srv.NumFlows(), before)
	}
	f.srv.FlowFinished(as.FlowID) // idempotent
	if _, ok := f.srv.EstimatedBW(as.FlowID); ok {
		t.Error("finished flow still visible")
	}
}

// multiTopo builds a topology where a client can read from two replicas in
// different pods over disjoint bottlenecks.
func multiTopo(t *testing.T) (*topology.Topology, topology.NodeID, []topology.NodeID) {
	t.Helper()
	topo, err := topology.New(topology.Config{
		Pods: 3, RacksPerPod: 1, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: 100, EdgeAggLinkBps: 10, AggCoreLinkBps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := topo.HostAt(0, 0, 0)
	replicas := []topology.NodeID{topo.HostAt(1, 0, 0), topo.HostAt(2, 0, 0)}
	return topo, client, replicas
}

func TestMultiReplicaSplit(t *testing.T) {
	topo, client, replicas := multiTopo(t)
	srv := New(topo, Options{MultiReplica: true})

	as, err := srv.SelectReplicaAndPath(Request{Client: client, Replicas: replicas, Bits: 18})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("got %d assignments, want 2 (split read)", len(as))
	}
	if as[0].Replica == as[1].Replica {
		t.Error("subflows assigned the same replica")
	}
	if total := as[0].Bits + as[1].Bits; !near(total, 18) {
		t.Errorf("split sizes sum to %g, want 18", total)
	}
	// Bottlenecks are the disjoint 10 bps pod uplinks, while the shared
	// client downlink is 100 bps: both subflows should see ~10 and split
	// evenly, finishing together.
	t1 := as[0].Bits / as[0].EstimatedBw
	bw2, _ := srv.EstimatedBW(as[1].FlowID)
	t2 := as[1].Bits / bw2
	if !near(t1, t2) {
		t.Errorf("subflow finish times differ: %g vs %g", t1, t2)
	}
	if srv.NumFlows() != 2 {
		t.Errorf("NumFlows = %d, want 2", srv.NumFlows())
	}
}

func TestMultiReplicaRollback(t *testing.T) {
	// Both replicas sit behind the client's single 10 bps downlink, so a
	// second subflow cannot add bandwidth; selection must fall back to a
	// single flow and leave no tentative state behind.
	topo, err := topology.New(topology.Config{
		Pods: 2, RacksPerPod: 1, HostsPerRack: 3, AggsPerPod: 1, Cores: 1,
		EdgeLinkBps: 10, EdgeAggLinkBps: 100, AggCoreLinkBps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := topo.HostAt(0, 0, 0)
	replicas := []topology.NodeID{topo.HostAt(1, 0, 0), topo.HostAt(1, 0, 1)}
	srv := New(topo, Options{MultiReplica: true})

	as, err := srv.SelectReplicaAndPath(Request{Client: client, Replicas: replicas, Bits: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 {
		t.Fatalf("got %d assignments, want 1 (rollback to single)", len(as))
	}
	if !near(as[0].Bits, 20) || !near(as[0].EstimatedBw, 10) {
		t.Errorf("assignment = %+v", as[0])
	}
	// The rolled-back probe must not burn flow ids: the accepted flow is
	// the first ever registered, so it gets id 1.
	if as[0].FlowID != 1 {
		t.Errorf("FlowID = %d, want 1 (rollback must restore the id counter)", as[0].FlowID)
	}
	if srv.NumFlows() != 1 {
		t.Errorf("NumFlows = %d, want 1 after rollback", srv.NumFlows())
	}
}

func TestMultiReplicaSingleReplicaFallback(t *testing.T) {
	topo, client, replicas := multiTopo(t)
	srv := New(topo, Options{MultiReplica: true})
	as, err := srv.SelectReplicaAndPath(Request{Client: client, Replicas: replicas[:1], Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 {
		t.Fatalf("got %d assignments, want 1", len(as))
	}
}

func TestSelectPathRegistersFlow(t *testing.T) {
	topo, client, replicas := multiTopo(t)
	srv := New(topo, Options{})
	a, err := srv.SelectPath(client, replicas[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Replica != replicas[0] || len(a.Path) == 0 {
		t.Errorf("assignment = %+v", a)
	}
	if srv.NumFlows() != 1 {
		t.Errorf("NumFlows = %d, want 1", srv.NumFlows())
	}
}

func TestSequentialSelectionsSpreadLoad(t *testing.T) {
	// Two equal paths (figure 2 topology, no background flows): two
	// consecutive flows between the same pair should take different
	// aggregation switches, because the first flow's presence raises the
	// second path's cost.
	topo, err := topology.New(topology.Config{
		Pods: 1, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 1,
		EdgeLinkBps: 40, EdgeAggLinkBps: 10, AggCoreLinkBps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(topo, Options{})
	src, dst := topo.HostAt(0, 0, 0), topo.HostAt(0, 1, 0)

	a1, err := srv.SelectPath(dst, src, 100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := srv.SelectPath(dst, src, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Path[1] == a2.Path[1] {
		t.Error("second flow stacked onto the first flow's path")
	}
}

func BenchmarkSelectReplicaPath(b *testing.B) {
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		b.Fatal(err)
	}
	srv := New(topo, Options{})
	client := topo.HostAt(0, 0, 0)
	replicas := []topology.NodeID{
		topo.HostAt(0, 1, 0), topo.HostAt(1, 0, 0), topo.HostAt(2, 2, 3),
	}
	// Populate a realistic base load.
	for i := 0; i < 100; i++ {
		dst := topo.HostAt(i%4, (i/4)%4, i%4)
		src := topo.HostAt((i+1)%4, (i/3)%4, (i+2)%4)
		if src == dst {
			continue
		}
		if _, err := srv.SelectPath(dst, src, 256*8e6); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as, err := srv.SelectReplicaAndPath(Request{Client: client, Replicas: replicas, Bits: 256 * 8e6})
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range as {
			srv.FlowFinished(a.FlowID)
		}
	}
}
