package flowserver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// TestRandomOperationSequences drives the Flowserver with random
// interleavings of selections, completions, splits, and stats polls, and
// checks the model invariants plus basic estimate sanity after every
// step.
func TestRandomOperationSequences(t *testing.T) {
	defer InstallRestoreAudit()()
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		clock := 0.0
		srv := New(topo, Options{
			MultiReplica: r.Intn(2) == 0,
			Now:          func() float64 { return clock },
		})
		var live []FlowID
		for step := 0; step < 60; step++ {
			clock += r.Float64()
			switch r.Intn(4) {
			case 0, 1: // new read
				client := hosts[r.Intn(len(hosts))]
				replicas := make([]topology.NodeID, 0, 3)
				for len(replicas) < 3 {
					h := hosts[r.Intn(len(hosts))]
					if h != client {
						replicas = append(replicas, h)
					}
				}
				as, err := srv.SelectReplicaAndPath(Request{
					Client:   client,
					Replicas: replicas,
					Bits:     1e6 * (1 + r.Float64()*2000),
				})
				if err != nil {
					t.Logf("seed %d step %d: select: %v", seed, step, err)
					return false
				}
				for _, a := range as {
					if a.EstimatedBw <= 0 {
						t.Logf("seed %d: non-positive estimate %g", seed, a.EstimatedBw)
						return false
					}
					if !a.Local() && a.EstimatedBw > topology.Gbps(1)+1 {
						t.Logf("seed %d: estimate %g above edge capacity", seed, a.EstimatedBw)
						return false
					}
					if !a.Local() {
						live = append(live, a.FlowID)
					}
				}
			case 2: // a flow finishes
				if len(live) > 0 {
					i := r.Intn(len(live))
					srv.FlowFinished(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 3: // stats poll with plausible counters
				stats := make([]FlowStat, 0, len(live))
				for _, id := range live {
					stats = append(stats, FlowStat{
						ID:              id,
						TransferredBits: r.Float64() * 1e9,
					})
				}
				srv.UpdateFlowStats(clock, stats)
			}
			if err := srv.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		if srv.NumFlows() != len(live) {
			t.Logf("seed %d: NumFlows %d != live %d", seed, srv.NumFlows(), len(live))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Error(err)
	}
}

// TestEstimateBoundsUnderLoad checks that the new-flow estimate always
// lies between the fair-share floor (capacity divided by flows-plus-one
// on the busiest path link) and the bottleneck capacity.
func TestEstimateBoundsUnderLoad(t *testing.T) {
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(topo, Options{})
	src, dst := topo.HostAt(0, 0, 0), topo.HostAt(1, 0, 0)

	for load := 0; load < 12; load++ {
		paths := topo.ShortestPaths(src, dst)
		for _, p := range paths {
			_, bw := srv.PathCost(src, p, 256*8e6)
			if bw <= 0 {
				t.Fatalf("load %d: estimate %g", load, bw)
			}
			// Floor: even sharing one link with `load` flows leaves at
			// least cap/(load+1) under max-min.
			minCap := math.Inf(1)
			for _, l := range p {
				if c := topo.Link(l).Capacity; c < minCap {
					minCap = c
				}
			}
			if bw < minCap/float64(load+1)-1 {
				t.Fatalf("load %d: estimate %g below fair floor %g", load, bw, minCap/float64(load+1))
			}
			if bw > topology.Gbps(1)+1 {
				t.Fatalf("load %d: estimate %g above bottleneck", load, bw)
			}
		}
		if _, err := srv.SelectPath(dst, src, 256*8e6); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMultiReplicaSplitConservation property-checks §4.3: whenever a read
// splits, the subflow sizes are positive and sum to the request, and the
// split is accepted only with distinct replicas.
func TestMultiReplicaSplitConservation(t *testing.T) {
	defer InstallRestoreAudit()()
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		srv := New(topo, Options{MultiReplica: true})
		// Random background load.
		for i := 0; i < r.Intn(20); i++ {
			a := hosts[r.Intn(len(hosts))]
			b := hosts[r.Intn(len(hosts))]
			if a == b {
				continue
			}
			if _, err := srv.SelectPath(a, b, 1e6*(1+r.Float64()*2000)); err != nil {
				return false
			}
		}
		client := hosts[r.Intn(len(hosts))]
		replicas := make([]topology.NodeID, 0, 3)
		for len(replicas) < 3 {
			h := hosts[r.Intn(len(hosts))]
			if h != client {
				replicas = append(replicas, h)
			}
		}
		bits := 1e6 * (1 + r.Float64()*4000)
		as, err := srv.SelectReplicaAndPath(Request{Client: client, Replicas: replicas, Bits: bits})
		if err != nil {
			return false
		}
		var total float64
		seen := make(map[topology.NodeID]bool)
		for _, a := range as {
			if a.Bits <= 0 {
				t.Logf("seed %d: non-positive subflow %g", seed, a.Bits)
				return false
			}
			total += a.Bits
			if seen[a.Replica] {
				t.Logf("seed %d: duplicate replica in split", seed)
				return false
			}
			seen[a.Replica] = true
		}
		if math.Abs(total-bits) > 1e-6*(1+bits) {
			t.Logf("seed %d: split sums to %g, want %g", seed, total, bits)
			return false
		}
		return srv.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// TestIngressShareMonotone checks EstimateIngressShare decreases as flows
// pile onto a host and recovers as they finish.
func TestIngressShareMonotone(t *testing.T) {
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(topo, Options{})
	victim := topo.HostAt(0, 0, 0)

	base := srv.EstimateIngressShare(victim)
	if base != topology.Gbps(1) {
		t.Fatalf("idle ingress = %g, want 1 Gbps", base)
	}
	var flows []FlowID
	prev := base
	for i := 0; i < 4; i++ {
		src := topo.HostAt(1+i%3, i%4, i%4)
		a, err := srv.SelectPath(victim, src, 256*8e6)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, a.FlowID)
		cur := srv.EstimateIngressShare(victim)
		if cur > prev+1 {
			t.Fatalf("ingress share rose under load: %g -> %g", prev, cur)
		}
		prev = cur
	}
	if prev >= base {
		t.Fatalf("ingress share %g did not drop from %g under 4 flows", prev, base)
	}
	for _, id := range flows {
		srv.FlowFinished(id)
	}
	if got := srv.EstimateIngressShare(victim); got != base {
		t.Fatalf("ingress share %g did not recover to %g", got, base)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEstimateIngressShare(b *testing.B) {
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		b.Fatal(err)
	}
	srv := New(topo, Options{})
	for i := 0; i < 50; i++ {
		src := topo.HostAt(i%4, (i/4)%4, i%4)
		dst := topo.HostAt((i+1)%4, (i/3)%4, (i+2)%4)
		if src == dst {
			continue
		}
		if _, err := srv.SelectPath(dst, src, 256*8e6); err != nil {
			b.Fatal(err)
		}
	}
	host := topo.HostAt(0, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.EstimateIngressShare(host)
	}
}

func TestPathCostMatchesManualExample(t *testing.T) {
	// Sanity against a hand-computed case distinct from Figure 2: one
	// background flow at 4 on a 10-capacity link, new 12-bit read.
	topo, err := topology.New(topology.Config{
		Pods: 1, RacksPerPod: 2, HostsPerRack: 1, AggsPerPod: 1, Cores: 1,
		EdgeLinkBps: 10, EdgeAggLinkBps: 10, AggCoreLinkBps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(topo, Options{})
	src, dst := topo.HostAt(0, 0, 0), topo.HostAt(0, 1, 0)
	path := topo.ShortestPaths(src, dst)[0]
	srv.ForceFlow([]topology.LinkID{path[1]}, 8, 4)

	cost, bw := srv.PathCost(src, path, 12)
	// Water-fill {4, ∞} on 10: new flow gets 6, existing keeps 4 (its
	// demand) — no squeeze, so cost is just 12/6 = 2.
	if math.Abs(bw-6) > 1e-9 {
		t.Errorf("bw = %g, want 6", bw)
	}
	if math.Abs(cost-2) > 1e-9 {
		t.Errorf("cost = %g, want 2", cost)
	}

	// Add another background flow at 5: demands {4,5} on 10 → new flow
	// share water-fills to 3.33...; 4-flow drops to 3.33, 5-flow to 3.33.
	srv.ForceFlow([]topology.LinkID{path[1]}, 9, 5)
	cost, bw = srv.PathCost(src, path, 12)
	third := 10.0 / 3
	if math.Abs(bw-third) > 1e-9 {
		t.Errorf("bw = %g, want %g", bw, third)
	}
	// Cost = 12/(10/3) + [8/(10/3) − 8/4] + [9/(10/3) − 9/5]
	want := 12/third + (8/third - 2) + (9/third - 1.8)
	if math.Abs(cost-want) > 1e-9 {
		t.Errorf("cost = %g, want %g", cost, want)
	}

}
