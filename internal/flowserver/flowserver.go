// Package flowserver implements Mayflower's core contribution: joint
// replica and network-path selection inside the SDN control plane (§4 of
// the paper).
//
// The Flowserver keeps a model of every filesystem read flow it has
// scheduled: the path it was assigned, its most recent bandwidth-share
// estimate, and its remaining bytes. When a client asks where to read a
// file from, the Flowserver evaluates every shortest path from every
// replica to the client and picks the one minimizing Eq. 2:
//
//	Cost(p) = d_j/b_j + Σ_{f ∈ F_p} ( r_f/b'_f − r_f/b_f )
//
// the sum of the new flow's expected completion time and the increase in
// completion time the new flow inflicts on flows already on the path.
// Bandwidth shares are estimated by per-link max-min water-filling where
// existing flows demand their current share and the new flow demands
// infinity (§4.2).
//
// Estimates committed at selection time are protected from being clobbered
// by the next (stale) switch-counter poll with the paper's update-freeze
// mechanism (Pseudocode 2), and reads can be split across two replicas
// when the combined share beats the single best replica (§4.3).
package flowserver

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/maxmin"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// FlowID identifies a flow registered with the Flowserver.
type FlowID int64

// ErrNoReplicas is returned when a request carries no replica locations.
var ErrNoReplicas = errors.New("flowserver: request has no replicas")

// Options tune the selection algorithm; the zero value is the full paper
// algorithm with multi-replica reads disabled (they are an explicit
// optimization, enabled by MultiReplica).
type Options struct {
	// MultiReplica enables splitting a read across two replicas when the
	// combined estimated bandwidth beats the best single replica (§4.3).
	MultiReplica bool
	// DisableImpactTerm drops the second term of Eq. 2 (the increase in
	// completion time of existing flows), reducing the cost to the new
	// flow's own completion time. Ablation only.
	DisableImpactTerm bool
	// DisableFreeze disables the update-freeze slack (Pseudocode 2),
	// letting every stats poll overwrite bandwidth estimates. Ablation
	// only.
	DisableFreeze bool
	// Now supplies the current time in seconds; defaults to a clock that
	// only advances via stats polls (simulation callers inject the
	// simulator clock).
	Now func() float64
	// MaxPollSkew bounds how far a poll's caller-supplied timestamp may
	// disagree with the model clock (Now) before the whole poll is
	// rejected, in seconds. Freeze horizons are set from the model clock,
	// so a poll stamped far in the model's future would expire every
	// freeze early and one stamped in the past would never expire any;
	// neither can be interpreted safely. 0 means DefaultMaxPollSkew;
	// negative disables the check. Only consulted when Now is injected —
	// without Now the poll timestamps *are* the clock.
	MaxPollSkew float64
	// Metrics optionally publishes the server's counters and latency
	// histogram under "flowserver." names. Instrumentation is always on
	// (atomic words only); the registry just makes it visible.
	Metrics *obs.Registry
	// IDBase and IDStride partition the flow-id space between cooperating
	// servers: ids are assigned IDBase, IDBase+IDStride, IDBase+2·IDStride…
	// The internal/flowctl shards use (k+1, N) so ids stay globally unique
	// without coordination while every server still assigns strictly
	// increasing ids (the per-link flow lists rely on that). Zero values
	// mean the standalone sequence 1, 2, 3, …
	IDBase   int64
	IDStride int64
}

// DefaultMaxPollSkew is the poll-timestamp skew tolerance when
// Options.MaxPollSkew is zero. Real deployments poll every ~1s with
// microsecond-level clock agreement; 5 seconds rejects only polls that
// are unambiguously from a different clock domain.
const DefaultMaxPollSkew = 5.0

// metrics holds the server's instrumentation. Counters are plain atomic
// words touched directly on the hot path; the registry (when configured)
// holds pointers to these same fields.
type metrics struct {
	selections          obs.Counter
	writeSelections     obs.Counter
	candidates          obs.Counter
	multiAccepts        obs.Counter
	multiRejects        obs.Counter
	freezeHits          obs.Counter
	freezeExpirations   obs.Counter
	polls               obs.Counter
	pollSamples         obs.Counter
	pollDropsDT         obs.Counter
	pollDropsRegress    obs.Counter
	pollDropsSkewFuture obs.Counter
	pollDropsSkewPast   obs.Counter
	selectSeconds       *obs.Histogram
}

// register publishes the metric fields into r under "flowserver." names.
func (m *metrics) register(r *obs.Registry) {
	r.RegisterCounter("flowserver.selections", &m.selections)
	r.RegisterCounter("flowserver.write_selections", &m.writeSelections)
	r.RegisterCounter("flowserver.candidates_evaluated", &m.candidates)
	r.RegisterCounter("flowserver.multi_accepts", &m.multiAccepts)
	r.RegisterCounter("flowserver.multi_rejects", &m.multiRejects)
	r.RegisterCounter("flowserver.freeze_hits", &m.freezeHits)
	r.RegisterCounter("flowserver.freeze_expirations", &m.freezeExpirations)
	r.RegisterCounter("flowserver.polls", &m.polls)
	r.RegisterCounter("flowserver.poll_samples", &m.pollSamples)
	r.RegisterCounter("flowserver.poll_drops_dt", &m.pollDropsDT)
	r.RegisterCounter("flowserver.poll_drops_regress", &m.pollDropsRegress)
	r.RegisterCounter("flowserver.poll_drops_skew_future", &m.pollDropsSkewFuture)
	r.RegisterCounter("flowserver.poll_drops_skew_past", &m.pollDropsSkewPast)
	r.RegisterHistogram("flowserver.select_seconds", m.selectSeconds)
}

// StatsCounters is a cumulative snapshot of the server's poll and freeze
// accounting, for drift-audit reports (which subtract a baseline taken at
// run start).
type StatsCounters struct {
	Selections          int64
	WriteSelections     int64
	CandidatesEvaluated int64
	MultiAccepts        int64
	MultiRejects        int64
	FreezeHits          int64
	FreezeExpirations   int64
	Polls               int64
	PollSamples         int64
	PollDropsDT         int64
	PollDropsRegress    int64
	PollDropsSkewFuture int64
	PollDropsSkewPast   int64
}

// Counters returns the server's cumulative instrumentation counters.
func (s *Server) Counters() StatsCounters {
	return StatsCounters{
		Selections:          s.met.selections.Value(),
		WriteSelections:     s.met.writeSelections.Value(),
		CandidatesEvaluated: s.met.candidates.Value(),
		MultiAccepts:        s.met.multiAccepts.Value(),
		MultiRejects:        s.met.multiRejects.Value(),
		FreezeHits:          s.met.freezeHits.Value(),
		FreezeExpirations:   s.met.freezeExpirations.Value(),
		Polls:               s.met.polls.Value(),
		PollSamples:         s.met.pollSamples.Value(),
		PollDropsDT:         s.met.pollDropsDT.Value(),
		PollDropsRegress:    s.met.pollDropsRegress.Value(),
		PollDropsSkewFuture: s.met.pollDropsSkewFuture.Value(),
		PollDropsSkewPast:   s.met.pollDropsSkewPast.Value(),
	}
}

// Request asks for a read assignment.
type Request struct {
	// Client is the host that will read the data.
	Client topology.NodeID
	// Replicas are the hosts holding a copy of the file.
	Replicas []topology.NodeID
	// Bits is the amount of data to read.
	Bits float64
}

// Assignment is one flow of a read: fetch Bits bits of the file from
// Replica over Path. A read split across two replicas yields two
// assignments. A replica co-located with the client yields a single
// assignment with an empty path and infinite bandwidth (a local read).
type Assignment struct {
	FlowID      FlowID
	Replica     topology.NodeID
	Path        topology.Path
	Bits        float64
	EstimatedBw float64
}

// Local reports whether the assignment is a local (zero network cost) read.
func (a Assignment) Local() bool { return len(a.Path) == 0 }

type flowState struct {
	id          FlowID
	links       []int
	totalBits   float64
	remaining   float64
	bw          float64
	frozen      bool
	freezeUntil float64
	transferred float64
	lastPoll    float64
}

// Server is the Flowserver: it runs inside the SDN controller and owns the
// global flow model. All methods are safe for concurrent use.
type Server struct {
	topo     *topology.Topology
	capacity []float64
	opts     Options

	mu     sync.Mutex
	clock  float64 // last known time when opts.Now is nil
	nextID FlowID
	idStep FlowID
	flows  map[FlowID]*flowState
	// linkFlows[l] holds the flows crossing link l, sorted by ascending
	// id. It is maintained incrementally by commit, FlowFinished and
	// restore so path evaluation never collects-and-sorts, and it stores
	// the flow states directly so the hot path never hits the flows map.
	linkFlows [][]*flowState

	// Scratch reused across path evaluations (callers hold mu).
	mm            maxmin.Alloc
	demandScratch []float64
	// evalBufs double-buffers the changed-flow sets: the set held by the
	// current best candidate lives in one slot (two ping-pong buffers for
	// merging) while the next candidate is evaluated into the other
	// (bestPath swaps slots on every new best).
	evalBufs [2][2]changeSet
	evalIdx  int

	met metrics
}

// changeSet records the existing flows whose bandwidth estimate changes if
// a candidate path is chosen, with their new shares. Both slices are
// parallel and sorted by ascending flow id.
type changeSet struct {
	flows  []*flowState
	shares []float64
}

// New creates a Flowserver over the given topology.
func New(topo *topology.Topology, opts Options) *Server {
	capacity := make([]float64, topo.NumLinks())
	for _, l := range topo.Links() {
		capacity[l.ID] = l.Capacity
	}
	step := FlowID(opts.IDStride)
	if step <= 0 {
		step = 1
	}
	base := FlowID(opts.IDBase)
	if base <= 0 {
		base = 1
	}
	s := &Server{
		topo:      topo,
		capacity:  capacity,
		opts:      opts,
		idStep:    step,
		nextID:    base - step,
		flows:     make(map[FlowID]*flowState),
		linkFlows: make([][]*flowState, topo.NumLinks()),
	}
	s.met.selectSeconds = obs.NewHistogram(1e-6, 10)
	if opts.Metrics != nil {
		s.met.register(opts.Metrics)
	}
	return s
}

// insertFlow inserts f into an id-sorted flow slice. Ids are assigned in
// increasing order, so outside of post-rollback re-commits this is a plain
// append.
func insertFlow(fs []*flowState, f *flowState) []*flowState {
	if n := len(fs); n == 0 || fs[n-1].id < f.id {
		return append(fs, f)
	}
	i := sort.Search(len(fs), func(i int) bool { return fs[i].id >= f.id })
	fs = append(fs, nil)
	copy(fs[i+1:], fs[i:])
	fs[i] = f
	return fs
}

// removeFlow removes the flow with the given id from an id-sorted flow
// slice (no-op when absent).
func removeFlow(fs []*flowState, id FlowID) []*flowState {
	i := sort.Search(len(fs), func(i int) bool { return fs[i].id >= id })
	if i >= len(fs) || fs[i].id != id {
		return fs
	}
	return append(fs[:i], fs[i+1:]...)
}

func (s *Server) now() float64 {
	if s.opts.Now != nil {
		return s.opts.Now()
	}
	return s.clock
}

// NumFlows returns the number of flows currently registered.
func (s *Server) NumFlows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flows)
}

// SelectReplicaAndPath runs the replica–path selection algorithm
// (Pseudocode 1) and registers the resulting flow(s) in the model. The
// caller must report flow completion with FlowFinished and should feed
// switch counters via UpdateFlowStats.
func (s *Server) SelectReplicaAndPath(req Request) ([]Assignment, error) {
	if len(req.Replicas) == 0 {
		return nil, ErrNoReplicas
	}
	if req.Bits < 0 {
		return nil, fmt.Errorf("flowserver: negative read size %g", req.Bits)
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	as, err := s.selectLocked(req, s.opts.MultiReplica)
	s.met.selections.Inc()
	s.met.selectSeconds.Observe(time.Since(start).Seconds())
	return as, err
}

// selectLocked runs selection with an explicit multi-replica setting.
// Caller must hold s.mu.
func (s *Server) selectLocked(req Request, allowMulti bool) ([]Assignment, error) {
	// A co-located replica costs nothing; every policy prefers it.
	for _, r := range req.Replicas {
		if r == req.Client {
			s.nextID += s.idStep
			return []Assignment{{
				FlowID:      s.nextID,
				Replica:     r,
				Bits:        req.Bits,
				EstimatedBw: math.Inf(1),
			}}, nil
		}
	}

	best, ok := s.bestPath(req.Client, req.Replicas, req.Bits, nil)
	if !ok {
		return nil, fmt.Errorf("flowserver: no path from any replica to client %d", req.Client)
	}

	if !allowMulti || len(req.Replicas) < 2 {
		a := s.commit(best, req.Bits)
		return []Assignment{a}, nil
	}
	return s.selectMulti(req, best), nil
}

// SelectPath is the path-only scheduler: the replica is already chosen and
// only the network path is optimized (used by the Nearest-Mayflower and
// Sinbad-R-Mayflower baselines, §6.2). It registers the flow like
// SelectReplicaAndPath.
func (s *Server) SelectPath(client, replica topology.NodeID, bits float64) (Assignment, error) {
	if bits < 0 {
		return Assignment{}, fmt.Errorf("flowserver: negative read size %g", bits)
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	as, err := s.selectLocked(Request{Client: client, Replicas: []topology.NodeID{replica}, Bits: bits}, false)
	s.met.selections.Inc()
	s.met.selectSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		return Assignment{}, err
	}
	return as[0], nil
}

// SelectWritePipeline schedules a replication fan-out: one flow of the
// given size from source to each target, ordered cheapest-first by
// repeated Eq. 2 evaluation. Each round evaluates every shortest path
// from the source to every remaining target, commits the minimum-cost
// one, and re-evaluates the rest against the updated model — so later
// hops see the bandwidth the earlier hops already claimed. This extends
// the read-side co-design of Pseudocode 1 to replication traffic (§3.3's
// "collaboratively with the Flowserver" direction): the primary learns
// both which replica to stream to first and which path each hop takes.
//
// Assignments are returned in the chosen pipeline order. The caller must
// report each non-local flow's completion with FlowFinished. A target
// co-located with the source yields a local assignment (no flow).
func (s *Server) SelectWritePipeline(source topology.NodeID, targets []topology.NodeID, bits float64) ([]Assignment, error) {
	if len(targets) == 0 {
		return nil, ErrNoReplicas
	}
	if bits < 0 {
		return nil, fmt.Errorf("flowserver: negative write size %g", bits)
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.selections.Inc()
	s.met.writeSelections.Inc()

	remaining := append([]topology.NodeID(nil), targets...)
	out := make([]Assignment, 0, len(targets))
	for len(remaining) > 0 {
		bestIdx, local := -1, false
		var best candidate
		evaluated := int64(0)
		for i, tgt := range remaining {
			if tgt == source {
				// A co-located target costs nothing; it always wins.
				bestIdx, local = i, true
				break
			}
			for _, path := range s.topo.ShortestPaths(source, tgt) {
				c := s.evalPath(tgt, path, bits)
				evaluated++
				if bestIdx < 0 || c.cost < best.cost {
					best = c
					bestIdx = i
					// Protect the new best's changed set from being
					// overwritten by the next evaluation.
					s.evalIdx ^= 1
				}
			}
		}
		s.met.candidates.Add(evaluated)
		if bestIdx < 0 {
			return nil, fmt.Errorf("flowserver: no path from source %d to targets %v", source, remaining)
		}
		if local {
			s.nextID += s.idStep
			out = append(out, Assignment{
				FlowID:      s.nextID,
				Replica:     source,
				Bits:        bits,
				EstimatedBw: math.Inf(1),
			})
		} else {
			out = append(out, s.commit(best, bits))
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	s.met.selectSeconds.Observe(time.Since(start).Seconds())
	return out, nil
}

// candidate is a scored replica-path option.
type candidate struct {
	replica topology.NodeID
	path    topology.Path
	bw      float64
	cost    float64
	// changed holds the post-admission share of each existing flow whose
	// estimate changes if this path is chosen. It aliases one of the
	// server's eval buffers: valid until the second evalPath after this
	// candidate becomes best (bestPath swaps slots on every new best),
	// and consumed by commit.
	changed *changeSet
}

// bestPath evaluates all shortest paths from the replicas to the client
// and returns the minimum-cost candidate. exclude removes replicas from
// consideration (used when picking the second subflow).
// Caller must hold s.mu.
func (s *Server) bestPath(client topology.NodeID, replicas []topology.NodeID, bits float64, exclude map[topology.NodeID]bool) (candidate, bool) {
	var best candidate
	found := false
	evaluated := int64(0)
	for _, rep := range replicas {
		if exclude[rep] || rep == client {
			continue
		}
		for _, path := range s.topo.ShortestPaths(rep, client) {
			c := s.evalPath(rep, path, bits)
			evaluated++
			if !found || c.cost < best.cost {
				best = c
				found = true
				// Protect the new best's changed set from being
				// overwritten by the next evaluation.
				s.evalIdx ^= 1
			}
		}
	}
	s.met.candidates.Add(evaluated)
	return best, found
}

// evalPath computes the Eq. 2 cost of placing a new flow of the given size
// on the path (Pseudocode 2, FLOWCOST). Caller must hold s.mu.
func (s *Server) evalPath(replica topology.NodeID, path topology.Path, bits float64) candidate {
	return s.evalPathCapped(replica, path, bits, math.Inf(1))
}

// evalPathCapped is evalPath with the new flow's demand capped at capBw:
// the share granted by links outside this server's model (a flowctl
// coordinator passes the bottleneck estimate of the remote sub-path).
// With capBw = +Inf it is exactly the historical evalPath. Caller must
// hold s.mu.
func (s *Server) evalPathCapped(replica topology.NodeID, path topology.Path, bits, capBw float64) candidate {
	// Estimated share of the new flow: water-fill each link with existing
	// flows demanding their current share and the new flow demanding
	// infinity; the path share is the bottleneck minimum (MAXMINSHARE).
	bw := math.Inf(1)
	for _, lid := range path {
		l := int(lid)
		share := s.mm.ShareOnLink(s.capacity[l], s.demandsOn(l))
		if share < bw {
			bw = share
		}
	}
	if bw > capBw {
		bw = capBw
	}

	cost := 0.0
	if bw > 0 {
		cost = bits / bw
	} else {
		cost = math.Inf(1)
	}

	// Impact on existing flows: re-water-fill each path link with the new
	// flow's demand pinned to bw; a flow crossing several path links gets
	// the most pessimistic (minimum) of its per-link shares. The per-link
	// flow lists are sorted by id, so min-merging them keeps the changed
	// set in ascending id order without a per-evaluation sort or map.
	cur := &s.evalBufs[s.evalIdx][0]
	nxt := &s.evalBufs[s.evalIdx][1]
	cur.flows, cur.shares = cur.flows[:0], cur.shares[:0]
	for _, lid := range path {
		l := int(lid)
		onLink := s.linkFlows[l]
		if len(onLink) == 0 {
			continue
		}
		shares, _ := s.mm.SharesWithNewFlow(s.capacity[l], s.demandsOn(l), bw)
		if len(cur.flows) == 0 {
			cur.flows = append(cur.flows, onLink...)
			cur.shares = append(cur.shares, shares...)
			continue
		}
		nxt.flows, nxt.shares = nxt.flows[:0], nxt.shares[:0]
		i, j := 0, 0
		for i < len(cur.flows) && j < len(onLink) {
			switch {
			case cur.flows[i].id < onLink[j].id:
				nxt.flows = append(nxt.flows, cur.flows[i])
				nxt.shares = append(nxt.shares, cur.shares[i])
				i++
			case cur.flows[i].id > onLink[j].id:
				nxt.flows = append(nxt.flows, onLink[j])
				nxt.shares = append(nxt.shares, shares[j])
				j++
			default:
				v := cur.shares[i]
				if shares[j] < v {
					v = shares[j]
				}
				nxt.flows = append(nxt.flows, cur.flows[i])
				nxt.shares = append(nxt.shares, v)
				i++
				j++
			}
		}
		nxt.flows = append(nxt.flows, cur.flows[i:]...)
		nxt.shares = append(nxt.shares, cur.shares[i:]...)
		nxt.flows = append(nxt.flows, onLink[j:]...)
		nxt.shares = append(nxt.shares, shares[j:]...)
		cur, nxt = nxt, cur
	}
	// Walk the changed set in ascending id order — float summation is not
	// associative, so any other order would make equal-cost comparisons
	// (and therefore selections) run-dependent — dropping flows whose
	// share does not actually change (they contribute no cost and must
	// not be re-frozen by commit).
	keep := 0
	for i, f := range cur.flows {
		nbw := cur.shares[i]
		if nbw >= f.bw-bwEps || f.remaining <= 0 {
			continue
		}
		if !s.opts.DisableImpactTerm {
			if nbw <= 0 {
				cost = math.Inf(1)
			} else {
				cost += f.remaining/nbw - f.remaining/f.bw
			}
		}
		cur.flows[keep], cur.shares[keep] = f, nbw
		keep++
	}
	cur.flows, cur.shares = cur.flows[:keep], cur.shares[:keep]
	return candidate{replica: replica, path: path, bw: bw, cost: cost, changed: cur}
}

const bwEps = 1e-9

// demandsOn returns the current bandwidth-share demands of flows assigned
// to a link, in flow-id order (the water-filling arithmetic is float and
// therefore order-sensitive at the last bit). The returned slice is scratch
// backed, valid until the next call. Caller must hold s.mu.
func (s *Server) demandsOn(link int) []float64 {
	d := s.demandScratch[:0]
	for _, f := range s.linkFlows[link] {
		d = append(d, f.bw)
	}
	s.demandScratch = d
	return d
}

// commit registers the winning candidate as a live flow and applies SETBW
// to it and to every existing flow whose estimate changed (Pseudocode 1,
// lines 9-11). Caller must hold s.mu.
func (s *Server) commit(c candidate, bits float64) Assignment {
	s.nextID += s.idStep
	return s.commitAs(s.nextID, c, bits)
}

// commitAs registers the candidate under an explicit flow id without
// touching the id sequence (foreign commits carry the coordinator's id).
// Caller must hold s.mu.
func (s *Server) commitAs(id FlowID, c candidate, bits float64) Assignment {
	links := make([]int, len(c.path))
	for i, l := range c.path {
		links[i] = int(l)
	}
	f := &flowState{
		id:        id,
		links:     links,
		totalBits: bits,
		remaining: bits,
		lastPoll:  s.now(),
	}
	s.flows[id] = f
	for _, l := range links {
		s.linkFlows[l] = insertFlow(s.linkFlows[l], f)
	}
	s.setBW(f, c.bw)
	for i, cf := range c.changed.flows {
		s.setBW(cf, c.changed.shares[i])
	}
	return Assignment{FlowID: id, Replica: c.replica, Path: c.path, Bits: bits, EstimatedBw: c.bw}
}

// setBW implements SETBW from Pseudocode 2: record the estimate and freeze
// it for the flow's expected completion time.
func (s *Server) setBW(f *flowState, bw float64) {
	f.bw = bw
	if s.opts.DisableFreeze {
		return
	}
	if bw > 0 && !math.IsInf(bw, 1) {
		f.freezeUntil = s.now() + f.remaining/bw
	} else {
		f.freezeUntil = s.now()
	}
	f.frozen = true
}

// selectMulti implements the §4.3 multi-replica split: commit the best
// single candidate, try a second subflow from a different replica, and
// keep the pair only if the combined share beats the single flow.
// Caller must hold s.mu.
func (s *Server) selectMulti(req Request, best candidate) []Assignment {
	snap := s.snapshot()

	b1 := best.bw
	a1 := s.commit(best, req.Bits)

	second, ok := s.bestPath(req.Client, req.Replicas, req.Bits,
		map[topology.NodeID]bool{best.replica: true})
	if !ok {
		return []Assignment{a1}
	}
	a2 := s.commit(second, req.Bits)

	// The second subflow may have squeezed the first one.
	b1p := s.flows[a1.FlowID].bw
	b2 := second.bw
	combined := b1p + b2
	if combined <= b1+bwEps {
		// Roll back everything the tentative pair touched. The model is
		// back to its pre-selection state, so re-evaluating the winning
		// path reproduces the original candidate exactly (best.changed
		// itself may have been recycled while scoring the second
		// subflow).
		s.restore(snap)
		c := s.evalPath(best.replica, best.path, req.Bits)
		a1 = s.commit(c, req.Bits)
		s.met.multiRejects.Inc()
		return []Assignment{a1}
	}
	s.met.multiAccepts.Inc()

	// Split sizes proportionally to bandwidth so subflows finish together.
	s1 := req.Bits * b1p / combined
	s2 := req.Bits - s1
	s.resize(a1.FlowID, s1)
	s.resize(a2.FlowID, s2)
	a1.Bits, a1.EstimatedBw = s1, b1p
	a2.Bits = s2
	return []Assignment{a1, a2}
}

// resize adjusts a freshly committed flow's size and refreshes its freeze
// horizon. Caller must hold s.mu.
func (s *Server) resize(id FlowID, bits float64) {
	f := s.flows[id]
	f.totalBits = bits
	f.remaining = bits
	s.setBW(f, f.bw)
}

// modelSnapshot captures the full flow model for rollback, including the
// id counter: without it a rejected multi-replica probe would burn flow
// ids, making the accepted flow's id depend on rolled-back work.
type modelSnapshot struct {
	nextID FlowID
	flows  map[FlowID]flowState
}

// snapshot captures the flow model for rollback. Caller must hold s.mu.
func (s *Server) snapshot() modelSnapshot {
	snap := modelSnapshot{
		nextID: s.nextID,
		flows:  make(map[FlowID]flowState, len(s.flows)),
	}
	for id, f := range s.flows {
		snap.flows[id] = *f
	}
	return snap
}

// restore rolls the flow model back to a snapshot, dropping flows created
// after it was taken (and their per-link index entries). Caller must hold
// s.mu.
func (s *Server) restore(snap modelSnapshot) {
	for id, f := range s.flows {
		if _, ok := snap.flows[id]; !ok {
			for _, l := range f.links {
				s.linkFlows[l] = removeFlow(s.linkFlows[l], id)
			}
			delete(s.flows, id)
		}
	}
	for id, saved := range snap.flows {
		f := s.flows[id]
		state := saved
		*f = state
	}
	s.nextID = snap.nextID
	if restoreHook != nil {
		restoreHook(s)
	}
}

// restoreHook, when non-nil, runs immediately after every rollback with
// s.mu held. Tests install an invariant checker here to pin the
// snapshot/restore path; it is nil in production.
var restoreHook func(*Server)

// EstimateIngressShare estimates the max-min bandwidth share a new flow
// *into* the given host would receive across the edge tier: the bottleneck
// of the host's downlink and the best aggregation-to-edge link feeding its
// rack, given the flows currently modeled on them. This is the signal for
// Sinbad-like collaborative write placement — the paper notes (§3.3) that
// the nameserver can make placement decisions "collaboratively with the
// Flowserver", and this method is the Flowserver's half of that contract.
func (s *Server) EstimateIngressShare(host topology.NodeID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	down := int(s.topo.DownlinkOf(host))
	share := s.mm.ShareOnLink(s.capacity[down], s.demandsOn(down))

	edge := s.topo.EdgeOf(host)
	best := -1.0
	for _, agg := range s.topo.AggSwitches() {
		id, ok := s.topo.LinkBetween(agg, edge)
		if !ok {
			continue
		}
		if v := s.mm.ShareOnLink(s.capacity[id], s.demandsOn(int(id))); v > best {
			best = v
		}
	}
	if best >= 0 && best < share {
		share = best
	}
	return share
}

// SetLinkCapacity overrides the modeled capacity of one directed link.
// The paper's cost example (§4.2) notes that heterogeneous link capacities
// change path choice; this supports fabrics whose links differ from the
// topology's nominal capacities.
func (s *Server) SetLinkCapacity(id topology.LinkID, bps float64) error {
	if bps <= 0 {
		return fmt.Errorf("flowserver: capacity must be > 0, got %g", bps)
	}
	if int(id) < 0 || int(id) >= len(s.capacity) {
		return fmt.Errorf("flowserver: unknown link %d", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity[id] = bps
	return nil
}

// FlowFinished removes a completed (or aborted) flow from the model.
// Unknown ids are ignored, mirroring a switch evicting an expired entry.
func (s *Server) FlowFinished(id FlowID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.flows[id]
	if !ok {
		return
	}
	for _, l := range f.links {
		s.linkFlows[l] = removeFlow(s.linkFlows[l], id)
	}
	delete(s.flows, id)
}

// FlowStat is one flow's byte counter as read from an edge switch.
type FlowStat struct {
	ID FlowID
	// TransferredBits is the cumulative counter value.
	TransferredBits float64
}

// UpdateFlowStats ingests a stats-poll cycle taken at time now: for each
// flow, the measured bandwidth since the previous poll and the remaining
// size are derived from the byte counter. Bandwidth estimates honour the
// update-freeze state (Pseudocode 2, UPDATEBW); remaining sizes always
// update, since counters are ground truth for progress.
//
// Clock domains: freeze horizons (setBW) are stamped from the model clock
// — opts.Now when injected, else s.clock, which only poll timestamps
// advance. All freeze comparisons here use that same model clock. When
// Now is injected, a poll whose caller-supplied timestamp disagrees with
// the model clock by more than MaxPollSkew is rejected whole (counted by
// skew direction): its dt and freeze decisions would be computed against
// horizons from a different clock. When Now is nil, a poll stamped before
// the clock's high-water mark is a replay of the past and is rejected the
// same way.
func (s *Server) UpdateFlowStats(now float64, stats []FlowStat) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.polls.Inc()
	if s.opts.Now == nil {
		if now < s.clock {
			s.met.pollDropsSkewPast.Inc()
			return
		}
		s.clock = now
	} else {
		model := s.opts.Now()
		tol := s.opts.MaxPollSkew
		if tol == 0 {
			tol = DefaultMaxPollSkew
		}
		if tol >= 0 {
			if now > model+tol {
				s.met.pollDropsSkewFuture.Inc()
				return
			}
			if now < model-tol {
				s.met.pollDropsSkewPast.Inc()
				return
			}
		}
		// Within tolerance: re-stamp the poll onto the model clock so dt
		// and freeze-expiry checks share one time base.
		now = model
	}
	for _, st := range stats {
		f, ok := s.flows[st.ID]
		if !ok {
			continue
		}
		// A duplicate, reordered or regressed sample (the chaos
		// flowserver-stall proxy can replay polls out of order) carries
		// no new information; applying it would roll the flow's
		// remaining size and counter backward. Drop it before touching
		// any state.
		dt := now - f.lastPoll
		if dt <= 0 {
			s.met.pollDropsDT.Inc()
			continue
		}
		if st.TransferredBits < f.transferred {
			s.met.pollDropsRegress.Inc()
			continue
		}
		s.met.pollSamples.Inc()
		f.remaining = f.totalBits - st.TransferredBits
		if f.remaining < 0 {
			f.remaining = 0
		}
		measured := (st.TransferredBits - f.transferred) / dt
		f.transferred = st.TransferredBits
		f.lastPoll = now
		// Pseudocode 2 freezes the estimate until the flow's expected
		// completion, so a poll landing exactly at the horizon already
		// sees it expired.
		if s.opts.DisableFreeze || !f.frozen || now >= f.freezeUntil {
			if f.frozen && now >= f.freezeUntil {
				s.met.freezeExpirations.Inc()
			}
			f.bw = measured
			f.frozen = false
		} else {
			s.met.freezeHits.Inc()
		}
	}
}

// EstimatedBW returns the Flowserver's current bandwidth estimate for a
// flow (for inspection and tests); ok is false for unknown flows.
func (s *Server) EstimatedBW(id FlowID) (bw float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.flows[id]
	if !ok {
		return 0, false
	}
	return f.bw, true
}

// PathCost exposes the Eq. 2 cost of one candidate path given the current
// flow model, without registering anything. It is the FLOWCOST procedure
// and exists for tests, tooling and what-if analysis.
func (s *Server) PathCost(replica topology.NodeID, path topology.Path, bits float64) (cost, estimatedBw float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.evalPath(replica, path, bits)
	return c.cost, c.bw
}
