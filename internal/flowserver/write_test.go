package flowserver

import (
	"errors"
	"math"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// writeTopo is a one-pod, two-rack, two-agg fabric (the figure-2 shape
// without its background flows).
func writeTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Config{
		Pods: 1, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 1,
		EdgeLinkBps: 10, EdgeAggLinkBps: 10, AggCoreLinkBps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestSelectWritePipelineOrdersByCost congests one target's downlink and
// checks the pipeline streams to the uncongested target first.
func TestSelectWritePipelineOrdersByCost(t *testing.T) {
	topo := writeTopo(t)
	srv := New(topo, Options{})
	source := topo.HostAt(0, 0, 0)
	slow := topo.HostAt(0, 0, 1) // same rack, but congested below
	fast := topo.HostAt(0, 1, 0) // cross rack, idle

	// Saturate the congested target's downlink with a long-lived flow.
	srv.ForceFlow([]topology.LinkID{topo.DownlinkOf(slow)}, 1000, 10)

	as, err := srv.SelectWritePipeline(source, []topology.NodeID{slow, fast}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("got %d assignments, want 2", len(as))
	}
	if as[0].Replica != fast || as[1].Replica != slow {
		t.Fatalf("pipeline order = [%d, %d], want idle target %d first (congested %d last)",
			as[0].Replica, as[1].Replica, fast, slow)
	}
	if as[0].EstimatedBw <= as[1].EstimatedBw {
		t.Errorf("first hop bw %g not greater than congested hop bw %g",
			as[0].EstimatedBw, as[1].EstimatedBw)
	}
	if srv.NumFlows() != 3 {
		t.Errorf("NumFlows = %d, want 3 (background + two hops)", srv.NumFlows())
	}
	for _, a := range as {
		srv.FlowFinished(a.FlowID)
	}
	if srv.NumFlows() != 1 {
		t.Errorf("NumFlows after finish = %d, want 1", srv.NumFlows())
	}
}

// TestSelectWritePipelineSpreadsAggLinks checks each hop is committed
// before the next is scored: two hops to the same remote rack should take
// different aggregation paths, because the second sees the first's load.
func TestSelectWritePipelineSpreadsAggLinks(t *testing.T) {
	// Fat edge links so the aggregation tier — where the two hops can
	// diverge — is the bottleneck, not the shared source uplink.
	topo, err := topology.New(topology.Config{
		Pods: 1, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 1,
		EdgeLinkBps: 40, EdgeAggLinkBps: 10, AggCoreLinkBps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(topo, Options{})
	source := topo.HostAt(0, 0, 0)
	t1 := topo.HostAt(0, 1, 0)
	t2 := topo.HostAt(0, 1, 1)

	as, err := srv.SelectWritePipeline(source, []topology.NodeID{t1, t2}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("got %d assignments, want 2", len(as))
	}
	// Both paths leave on the same source uplink but must diverge at the
	// aggregation tier.
	if as[0].Path[1] == as[1].Path[1] {
		t.Errorf("both hops took agg link %d; want the second hop to avoid the first's load", as[0].Path[1])
	}
}

// TestSelectWritePipelineLocalTarget checks a target co-located with the
// source yields a local assignment and registers no flow.
func TestSelectWritePipelineLocalTarget(t *testing.T) {
	topo := writeTopo(t)
	srv := New(topo, Options{})
	source := topo.HostAt(0, 0, 0)

	as, err := srv.SelectWritePipeline(source, []topology.NodeID{source, topo.HostAt(0, 0, 1)}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("got %d assignments, want 2", len(as))
	}
	if !as[0].Local() || !math.IsInf(as[0].EstimatedBw, 1) {
		t.Errorf("co-located target not assigned locally: %+v", as[0])
	}
	if as[1].Local() {
		t.Errorf("remote target assigned locally: %+v", as[1])
	}
	if srv.NumFlows() != 1 {
		t.Errorf("NumFlows = %d, want 1 (local hop must not register)", srv.NumFlows())
	}
	// Finishing the local assignment's id must be a harmless no-op.
	srv.FlowFinished(as[0].FlowID)
	if srv.NumFlows() != 1 {
		t.Errorf("NumFlows after local finish = %d, want 1", srv.NumFlows())
	}
}

// TestSelectWritePipelineErrors pins the argument validation.
func TestSelectWritePipelineErrors(t *testing.T) {
	topo := writeTopo(t)
	srv := New(topo, Options{})
	if _, err := srv.SelectWritePipeline(topo.HostAt(0, 0, 0), nil, 6); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("empty targets: got %v, want ErrNoReplicas", err)
	}
	if _, err := srv.SelectWritePipeline(topo.HostAt(0, 0, 0), []topology.NodeID{topo.HostAt(0, 0, 1)}, -1); err == nil {
		t.Error("negative bits: got nil error")
	}
}
