package emunet

import (
	"context"
	"time"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
