// Package emunet emulates a datacenter network for the Mayflower
// prototype experiments, standing in for the paper's Mininet testbed
// (§6.1). Real bytes move over loopback TCP between in-process servers,
// but every registered flow's throughput is governed by a max-min fair
// arbiter over the emulated topology — the same steady-state sharing a
// fabric of drop-tail switches and long TCP flows converges to, and the
// property Mininet's link shaping provides the paper.
//
// The package is the wall-clock implementation of the shared network
// fabric contract (package fabric): Network is the fabric.Admitter the
// testbed's Flowserver hooks speak, and Fabric (see fabric.go) adapts it
// to the full fabric.Backend driver contract so simulation experiments
// run unchanged on emulated bytes. The arbiter bookkeeping is the shared
// fabric.Table; all pacer timing goes through a fabric.Clock, so tests
// can compress wall time deterministically with fabric.NewScaledClock.
//
// The package implements dataserver.Pacer: a dataserver constructed with
// an emunet pacer streams each read through a token pacer whose rate is
// recomputed whenever flows enter or leave the network. Optionally, a
// fabric.CounterSink (e.g. sdn.CounterBridge wiring SDN switch agents to
// topology switch nodes) can be attached; the pacer then credits
// per-flow and per-port byte counters as traffic passes, which is what
// the Flowserver's stats polling observes.
package emunet

import (
	"errors"
	"fmt"
	"io"

	"sync"

	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// chunkBytes is the pacing quantum: small enough that rate changes take
// effect quickly, large enough to keep syscall overhead negligible.
const chunkBytes = 16 << 10

// starvedPollSeconds is how often (in fabric time) a fully starved flow
// rechecks its rate. A flow is starved when the arbiter allocates it
// zero bandwidth — every link on its path dead — so it must make no
// progress at all, yet resume promptly when a fault heals.
const starvedPollSeconds = 2e-3

// ErrUnknownFlow is returned when pacing an unregistered flow.
var ErrUnknownFlow = errors.New("emunet: unknown flow")

type emuFlow struct {
	id    uint64
	links []int

	mu   sync.Mutex
	rate float64 // bits per second
	// released is set when the flow is unregistered; a pacer starved on
	// a dead link checks it so it can unblock instead of waiting for a
	// reallocation that will never include the flow again.
	released bool
	// nextFree is the fabric time (seconds) before which the flow's
	// pacer must not send more bytes.
	nextFree float64
	// transferredBits counts bits delivered through the pacer: the
	// per-flow byte counter an edge switch would export.
	transferredBits float64
}

func (f *emuFlow) currentRate() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rate
}

// Network is the emulated fabric. It implements fabric.Admitter.
type Network struct {
	topo  *topology.Topology
	clock fabric.Clock

	mu         sync.Mutex
	flows      map[uint64]*emuFlow
	table      *fabric.Table
	linkBits   []float64 // cumulative bits forwarded per directed link
	sink       fabric.CounterSink
	rateNotify func()

	// Reallocation instrumentation (atomic; see AttachMetrics).
	reallocs    obs.Counter
	activeFlows obs.Gauge
}

// AttachMetrics publishes the network's reallocation counters into r
// under "emunet." names. The emulated fabric recomputes every rate
// globally (no component allocator), so only the reallocation count and
// the live-flow gauge exist here.
func (n *Network) AttachMetrics(r *obs.Registry) {
	r.RegisterCounter("emunet.reallocs", &n.reallocs)
	r.RegisterGauge("emunet.active_flows", &n.activeFlows)
}

var _ fabric.Admitter = (*Network)(nil)

// New creates an emulated network over the topology, on the wall clock.
func New(topo *topology.Topology) *Network {
	return NewWithClock(topo, fabric.NewWallClock())
}

// NewWithClock creates an emulated network whose pacers and observers
// run on the given fabric clock. Pass fabric.NewScaledClock to compress
// an emulation's wall time without changing any fabric-time behaviour.
func NewWithClock(topo *topology.Topology, clock fabric.Clock) *Network {
	capacity := make([]float64, topo.NumLinks())
	for _, l := range topo.Links() {
		capacity[l.ID] = l.Capacity
	}
	return &Network{
		topo:     topo,
		clock:    clock,
		flows:    make(map[uint64]*emuFlow),
		table:    fabric.NewTable(capacity),
		linkBits: make([]float64, topo.NumLinks()),
	}
}

// Topology returns the emulated topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Clock returns the fabric clock the network runs on.
func (n *Network) Clock() fabric.Clock { return n.clock }

// SetCounterSink installs the sink that receives byte credits as traffic
// crosses links (nil uninstalls). The sink is invoked with the network's
// lock held and must not call back into the network.
func (n *Network) SetCounterSink(s fabric.CounterSink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sink = s
}

// SetRateNotify installs fn to run after every fair-share reallocation
// (admission, removal, capacity change). nil uninstalls.
func (n *Network) SetRateNotify(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rateNotify = fn
}

// RegisterFlow admits a flow on a path and recomputes every flow's fair
// rate. Registering an existing id replaces its path.
func (n *Network) RegisterFlow(id uint64, path topology.Path) error {
	if id == 0 {
		return errors.New("emunet: flow id 0 is reserved")
	}
	links := make([]int, len(path))
	for i, l := range path {
		if !n.table.ValidLink(int(l)) {
			return fmt.Errorf("emunet: invalid link %d", l)
		}
		links[i] = int(l)
	}
	n.mu.Lock()
	f := n.flows[id]
	if f == nil {
		f = &emuFlow{id: id}
		n.flows[id] = f
	}
	f.links = links
	n.table.Set(id, links)
	notify := n.reallocateLocked()
	n.mu.Unlock()
	if notify != nil {
		notify()
	}
	return nil
}

// UnregisterFlow removes a flow and returns bandwidth to the others.
// Unknown ids are a no-op.
func (n *Network) UnregisterFlow(id uint64) {
	n.mu.Lock()
	f, ok := n.flows[id]
	if !ok {
		n.mu.Unlock()
		return
	}
	delete(n.flows, id)
	n.table.Remove(id)
	f.mu.Lock()
	f.released = true
	f.mu.Unlock()
	notify := n.reallocateLocked()
	n.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// SetLinkCapacity changes the capacity of one directed link (bps >= 0;
// zero models a dead link, starving every flow crossing it). Every fair
// rate is recomputed immediately.
func (n *Network) SetLinkCapacity(id topology.LinkID, bps float64) {
	if bps < 0 {
		panic(fmt.Sprintf("emunet: negative capacity %g for link %d", bps, id))
	}
	n.mu.Lock()
	n.table.SetCapacity(int(id), bps)
	notify := n.reallocateLocked()
	n.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// NumFlows returns the number of registered flows.
func (n *Network) NumFlows() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.flows)
}

// FlowRate returns a flow's current fair rate in bits per second.
func (n *Network) FlowRate(id uint64) (float64, bool) {
	n.mu.Lock()
	f, ok := n.flows[id]
	n.mu.Unlock()
	if !ok {
		return 0, false
	}
	return f.currentRate(), true
}

// FlowTransferred returns the cumulative bits delivered for a registered
// flow so far, or 0 for unknown flows (counters for finished flows are
// gone, as when a switch evicts a flow-table entry).
func (n *Network) FlowTransferred(id uint64) float64 {
	n.mu.Lock()
	f, ok := n.flows[id]
	n.mu.Unlock()
	if !ok {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transferredBits
}

// LinkTransferred returns the cumulative bits forwarded over a directed
// link: the port byte counter of the switch driving that link.
func (n *Network) LinkTransferred(id topology.LinkID) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.linkBits[id]
}

// reallocateLocked recomputes max-min fair rates through the shared
// fabric table. Caller must hold n.mu; the returned notifier (nil if
// none installed) must be invoked after releasing it.
func (n *Network) reallocateLocked() func() {
	n.reallocs.Inc()
	n.activeFlows.Set(int64(len(n.flows)))
	n.table.Reallocate()
	n.table.Each(func(id uint64, rate float64) {
		f := n.flows[id]
		f.mu.Lock()
		f.rate = rate
		f.mu.Unlock()
	})
	return n.rateNotify
}

// Writer implements dataserver.Pacer: writes to the returned writer are
// paced at the flow's fair share and credited to the fabric's byte
// counters (and any attached CounterSink) along its path. Writes for
// unregistered flows (including id 0) pass through unpaced and
// uncounted — such traffic is invisible to the control plane, like any
// flow an operator forgot to schedule.
func (n *Network) Writer(flowID uint64, w io.Writer) io.Writer {
	n.mu.Lock()
	f := n.flows[flowID]
	n.mu.Unlock()
	if f == nil {
		return w
	}
	return &pacedWriter{net: n, flow: f, w: w}
}

var _ interface {
	Writer(uint64, io.Writer) io.Writer
} = (*Network)(nil)

type pacedWriter struct {
	net  *Network
	flow *emuFlow
	w    io.Writer
}

// Write sends b in pacing quanta, sleeping so the flow's average rate
// tracks its allocated share even as the share changes mid-transfer.
func (p *pacedWriter) Write(b []byte) (int, error) {
	written := 0
	for written < len(b) {
		nn := len(b) - written
		if nn > chunkBytes {
			nn = chunkBytes
		}
		p.pace(float64(nn * 8))
		m, err := p.w.Write(b[written : written+nn])
		written += m
		if m > 0 {
			p.credit(m)
		}
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// pace blocks until the flow may send another bits-sized quantum. A flow
// whose rate is zero (dead link) makes no progress until a reallocation
// grants it bandwidth again.
func (p *pacedWriter) pace(bits float64) {
	f := p.flow
	clock := p.net.clock
	for {
		f.mu.Lock()
		rate := f.rate
		if rate > 0 {
			now := clock.Now()
			if f.nextFree < now {
				f.nextFree = now
			}
			start := f.nextFree
			f.nextFree = start + bits/rate
			f.mu.Unlock()
			if d := start - clock.Now(); d > 0 {
				clock.Sleep(d)
			}
			return
		}
		released := f.released
		f.mu.Unlock()
		if released {
			return // unregistered while starved; let the writer drain
		}
		clock.Sleep(starvedPollSeconds)
	}
}

// credit adds transmitted bytes to the flow's and path's byte counters,
// mirroring them into the attached CounterSink (the SDN switch agents).
func (p *pacedWriter) credit(bytes int) {
	bits := float64(bytes) * 8
	f := p.flow
	f.mu.Lock()
	f.transferredBits += bits
	f.mu.Unlock()

	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	for _, l := range f.links {
		p.net.linkBits[l] += bits
		if p.net.sink != nil {
			p.net.sink.CreditBytes(f.id, topology.LinkID(l), uint64(bytes))
		}
	}
}
