// Package emunet emulates a datacenter network for the Mayflower
// prototype experiments, standing in for the paper's Mininet testbed
// (§6.1). Real bytes move over loopback TCP between in-process servers,
// but every registered flow's throughput is governed by a max-min fair
// arbiter over the emulated topology — the same steady-state sharing a
// fabric of drop-tail switches and long TCP flows converges to, and the
// property Mininet's link shaping provides the paper.
//
// The package implements dataserver.Pacer: a dataserver constructed with
// an emunet pacer streams each read through a token pacer whose rate is
// recomputed whenever flows enter or leave the network. Optionally, SDN
// switch agents (package sdn) can be attached to topology switch nodes;
// the pacer then credits their per-flow and per-port byte counters as
// traffic passes, which is what the Flowserver's stats polling observes.
package emunet

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/maxmin"
	"github.com/mayflower-dfs/mayflower/internal/sdn"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// chunkBytes is the pacing quantum: small enough that rate changes take
// effect quickly, large enough to keep syscall overhead negligible.
const chunkBytes = 16 << 10

// ErrUnknownFlow is returned when pacing an unregistered flow.
var ErrUnknownFlow = errors.New("emunet: unknown flow")

type emuFlow struct {
	id    uint64
	links []int

	mu   sync.Mutex
	rate float64 // bits per second
	// nextFree is the virtual time before which the flow's pacer must
	// not send more bytes.
	nextFree time.Time
}

func (f *emuFlow) currentRate() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rate
}

// Network is the emulated fabric.
type Network struct {
	topo *topology.Topology

	mu       sync.Mutex
	flows    map[uint64]*emuFlow
	switches map[topology.NodeID]*sdn.Switch
	capacity []float64
}

// New creates an emulated network over the topology.
func New(topo *topology.Topology) *Network {
	capacity := make([]float64, topo.NumLinks())
	for _, l := range topo.Links() {
		capacity[l.ID] = l.Capacity
	}
	return &Network{
		topo:     topo,
		flows:    make(map[uint64]*emuFlow),
		switches: make(map[topology.NodeID]*sdn.Switch),
		capacity: capacity,
	}
}

// Topology returns the emulated topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// AttachSwitch wires an SDN switch agent to a topology switch node so the
// node's forwarding credits the agent's byte counters.
func (n *Network) AttachSwitch(node topology.NodeID, sw *sdn.Switch) error {
	kind := n.topo.Node(node).Kind
	if kind == topology.KindHost {
		return fmt.Errorf("emunet: node %d is a host, not a switch", node)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.switches[node] = sw
	return nil
}

// RegisterFlow admits a flow on a path and recomputes every flow's fair
// rate. Registering an existing id replaces its path.
func (n *Network) RegisterFlow(id uint64, path topology.Path) error {
	if id == 0 {
		return errors.New("emunet: flow id 0 is reserved")
	}
	links := make([]int, len(path))
	for i, l := range path {
		if int(l) < 0 || int(l) >= len(n.capacity) {
			return fmt.Errorf("emunet: invalid link %d", l)
		}
		links[i] = int(l)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	f := n.flows[id]
	if f == nil {
		f = &emuFlow{id: id}
		n.flows[id] = f
	}
	f.links = links
	n.reallocateLocked()
	return nil
}

// UnregisterFlow removes a flow and returns bandwidth to the others.
// Unknown ids are a no-op.
func (n *Network) UnregisterFlow(id uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.flows[id]; !ok {
		return
	}
	delete(n.flows, id)
	n.reallocateLocked()
}

// NumFlows returns the number of registered flows.
func (n *Network) NumFlows() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.flows)
}

// FlowRate returns a flow's current fair rate in bits per second.
func (n *Network) FlowRate(id uint64) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f, ok := n.flows[id]
	if !ok {
		return 0, false
	}
	return f.currentRate(), true
}

// reallocateLocked recomputes max-min fair rates. Caller must hold n.mu.
func (n *Network) reallocateLocked() {
	ids := make([]uint64, 0, len(n.flows))
	flows := make([]maxmin.Flow, 0, len(n.flows))
	for id, f := range n.flows {
		ids = append(ids, id)
		flows = append(flows, maxmin.Flow{Links: f.links, Demand: math.Inf(1)})
	}
	rates := maxmin.Allocate(n.capacity, flows)
	for i, id := range ids {
		f := n.flows[id]
		f.mu.Lock()
		f.rate = rates[i]
		f.mu.Unlock()
	}
}

// Writer implements dataserver.Pacer: writes to the returned writer are
// paced at the flow's fair share and credited to the switch counters
// along its path. Writes for unregistered flows (including id 0) pass
// through unpaced and uncounted — such traffic is invisible to the
// control plane, like any flow an operator forgot to schedule.
func (n *Network) Writer(flowID uint64, w io.Writer) io.Writer {
	n.mu.Lock()
	f := n.flows[flowID]
	n.mu.Unlock()
	if f == nil {
		return w
	}
	return &pacedWriter{net: n, flow: f, w: w}
}

var _ interface {
	Writer(uint64, io.Writer) io.Writer
} = (*Network)(nil)

type pacedWriter struct {
	net  *Network
	flow *emuFlow
	w    io.Writer
}

// Write sends b in pacing quanta, sleeping so the flow's average rate
// tracks its allocated share even as the share changes mid-transfer.
func (p *pacedWriter) Write(b []byte) (int, error) {
	written := 0
	for written < len(b) {
		nn := len(b) - written
		if nn > chunkBytes {
			nn = chunkBytes
		}
		if err := p.pace(float64(nn * 8)); err != nil {
			return written, err
		}
		m, err := p.w.Write(b[written : written+nn])
		written += m
		if m > 0 {
			p.credit(uint64(m))
		}
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// pace blocks until the flow may send another bits-sized quantum.
func (p *pacedWriter) pace(bits float64) error {
	f := p.flow
	f.mu.Lock()
	rate := f.rate
	if rate <= 0 {
		// A flow can be momentarily starved during reallocation races;
		// treat a tiny floor as the minimum rate rather than dividing by
		// zero.
		rate = 1
	}
	now := time.Now()
	if f.nextFree.Before(now) {
		f.nextFree = now
	}
	start := f.nextFree
	f.nextFree = start.Add(time.Duration(bits / rate * float64(time.Second)))
	f.mu.Unlock()

	if d := time.Until(start); d > 0 {
		time.Sleep(d)
	}
	return nil
}

// credit adds transmitted bytes to the SDN switch counters along the path.
func (p *pacedWriter) credit(bytes uint64) {
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	for _, l := range p.flow.links {
		link := p.net.topo.Link(topology.LinkID(l))
		if sw, ok := p.net.switches[link.From]; ok {
			sw.AddBytes(p.flow.id, uint32(l), bytes)
		}
	}
}
