package emunet

import (
	"io"
	"math"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// Fabric adapts a Network to the full fabric.Backend driver contract:
// where the testbed's dataservers push their own bytes through the
// network's pacers, Fabric moves each admitted flow's bytes itself, from
// a per-flow goroutine into io.Discard, paced exactly like dataserver
// traffic. This is what lets the experiment driver run a simulation
// trace on emulated bytes — same scheme code, same polling, real time.
//
// Driver callbacks (Schedule functions and flow OnComplete functions)
// are serialized on one mutex, honouring the fabric callback discipline.
// Run returns once every scheduled callback has fired and every admitted
// flow has finished or been cancelled.
type Fabric struct {
	net *Network

	// cbMu serializes all driver callbacks.
	cbMu sync.Mutex
	// wg counts in-flight work: scheduled callbacks and flow movers.
	// Adds happen either before Run (seeding the timeline) or from
	// within counted callbacks, which keeps Run's Wait sound.
	wg sync.WaitGroup

	mu     sync.Mutex
	nextID fabric.FlowID
	active map[fabric.FlowID]*fabricFlow
}

type fabricFlow struct {
	onComplete func(float64)
	cancel     chan struct{}
}

var _ fabric.Backend = (*Fabric)(nil)

// NewFabric wraps a Network as a fabric.Backend. The Network may be
// shared with a live testbed; driver flows and dataserver flows then
// contend for bandwidth like any other traffic.
func NewFabric(n *Network) *Fabric {
	return &Fabric{net: n, active: make(map[fabric.FlowID]*fabricFlow)}
}

// Network returns the underlying emulated network.
func (f *Fabric) Network() *Network { return f.net }

// AttachMetrics publishes the underlying network's reallocation counters
// into r (see Network.AttachMetrics).
func (f *Fabric) AttachMetrics(r *obs.Registry) { f.net.AttachMetrics(r) }

// Topology returns the topology the backend runs over.
func (f *Fabric) Topology() *topology.Topology { return f.net.topo }

// Now returns the current backend time in seconds (fabric clock time).
func (f *Fabric) Now() float64 { return f.net.clock.Now() }

// Schedule runs fn at backend time t as a serialized driver callback.
// Times in the past fire immediately.
func (f *Fabric) Schedule(t float64, fn func()) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.net.clock.Sleep(t - f.net.clock.Now())
		f.cbMu.Lock()
		defer f.cbMu.Unlock()
		fn()
	}()
}

// StartFlow admits a flow and starts a mover goroutine streaming its
// bytes through the network's pacer into io.Discard.
func (f *Fabric) StartFlow(cfg fabric.FlowConfig) fabric.FlowID {
	f.mu.Lock()
	f.nextID++
	id := f.nextID
	ff := &fabricFlow{onComplete: cfg.OnComplete, cancel: make(chan struct{})}
	f.active[id] = ff
	f.mu.Unlock()

	// Flow ids are positive, so uint64(id) never hits the network's
	// reserved id 0.
	if err := f.net.RegisterFlow(uint64(id), cfg.Links); err != nil {
		// The driver handed us a path that isn't in the topology; that is
		// a programming error on a fixed experiment trace.
		panic(err)
	}

	f.wg.Add(1)
	go f.move(id, ff, cfg.Bits)
	return id
}

// move streams bits through the paced writer, then reports completion.
func (f *Fabric) move(id fabric.FlowID, ff *fabricFlow, bits float64) {
	defer f.wg.Done()

	regID := uint64(id)
	w := f.net.Writer(regID, io.Discard)
	remaining := int64(math.Ceil(bits / 8))
	buf := make([]byte, chunkBytes)
	cancelled := false
	for remaining > 0 {
		select {
		case <-ff.cancel:
			cancelled = true
		default:
		}
		if cancelled {
			break
		}
		nn := int64(chunkBytes)
		if remaining < nn {
			nn = remaining
		}
		if _, err := w.Write(buf[:nn]); err != nil {
			break // io.Discard never errors; defensive
		}
		remaining -= nn
	}

	// The pacer returns when the last chunk starts transmitting; the
	// flow completes when its last bit lands, one chunk-time later.
	f.net.mu.Lock()
	ef := f.net.flows[regID]
	f.net.mu.Unlock()
	if !cancelled && ef != nil {
		ef.mu.Lock()
		tail := ef.nextFree - f.net.clock.Now()
		ef.mu.Unlock()
		f.net.clock.Sleep(tail)
	}
	end := f.net.clock.Now()

	f.mu.Lock()
	_, live := f.active[id]
	if live {
		delete(f.active, id)
	}
	f.mu.Unlock()
	if !live {
		return // cancelled concurrently; CancelFlow owns the unregister
	}
	f.net.UnregisterFlow(regID)
	if cancelled || ff.onComplete == nil {
		return
	}
	f.cbMu.Lock()
	defer f.cbMu.Unlock()
	ff.onComplete(end)
}

// CancelFlow removes a flow without running its completion callback.
func (f *Fabric) CancelFlow(id fabric.FlowID) {
	f.mu.Lock()
	ff := f.active[id]
	if ff != nil {
		delete(f.active, id)
	}
	f.mu.Unlock()
	if ff == nil {
		return
	}
	close(ff.cancel)
	// Unregistering releases the flow from the arbiter; the release flag
	// also unblocks a mover starved on a dead link so it can observe the
	// cancellation and exit.
	f.net.UnregisterFlow(uint64(id))
}

// FlowRate returns the flow's current fair rate in bits per second.
func (f *Fabric) FlowRate(id fabric.FlowID) float64 {
	r, _ := f.net.FlowRate(uint64(id))
	return r
}

// FlowTransferred returns the cumulative bits delivered for an active
// flow, 0 once it has completed.
func (f *Fabric) FlowTransferred(id fabric.FlowID) float64 {
	return f.net.FlowTransferred(uint64(id))
}

// LinkTransferred returns the cumulative bits forwarded over a link.
func (f *Fabric) LinkTransferred(id topology.LinkID) float64 {
	return f.net.LinkTransferred(id)
}

// SetLinkCapacity changes one directed link's capacity.
func (f *Fabric) SetLinkCapacity(id topology.LinkID, bps float64) {
	f.net.SetLinkCapacity(id, bps)
}

// NumActiveFlows returns the number of in-flight driver flows.
func (f *Fabric) NumActiveFlows() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.active)
}

// SetRateNotify installs fn to run after every fair-share reallocation.
func (f *Fabric) SetRateNotify(fn func()) { f.net.SetRateNotify(fn) }

// Run blocks until all scheduled callbacks have fired and all admitted
// flows have finished or been cancelled.
func (f *Fabric) Run() error {
	f.wg.Wait()
	return nil
}
