package emunet

import (
	"bytes"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/sdn"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Config{
		Pods: 2, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		// Small rates so pacing effects are measurable in milliseconds.
		EdgeLinkBps: 8e6, EdgeAggLinkBps: 8e6, AggCoreLinkBps: 4e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func testNet(t *testing.T) *Network {
	t.Helper()
	return New(testTopo(t))
}

// testNetCompressed builds a network on a compressed clock: pacing tests
// assert fabric-time bounds (via the clock) while spending 1/speedup of
// that in wall time.
func testNetCompressed(t *testing.T, speedup float64) *Network {
	t.Helper()
	return NewWithClock(testTopo(t), fabric.NewScaledClock(speedup))
}

func pathFor(t *testing.T, n *Network, a, b topology.NodeID) topology.Path {
	t.Helper()
	paths := n.Topology().ShortestPaths(a, b)
	if len(paths) == 0 {
		t.Fatal("no path")
	}
	return paths[0]
}

func TestRegisterValidation(t *testing.T) {
	n := testNet(t)
	if err := n.RegisterFlow(0, nil); err == nil {
		t.Error("flow id 0 accepted")
	}
	if err := n.RegisterFlow(1, topology.Path{topology.LinkID(99999)}); err == nil {
		t.Error("invalid link accepted")
	}
}

func TestFairShareAcrossFlows(t *testing.T) {
	n := testNet(t)
	topo := n.Topology()
	src, dst := topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1)
	path := pathFor(t, n, src, dst)

	if err := n.RegisterFlow(1, path); err != nil {
		t.Fatal(err)
	}
	r1, ok := n.FlowRate(1)
	if !ok || math.Abs(r1-8e6) > 1 {
		t.Fatalf("solo rate = %g, want 8e6", r1)
	}
	if err := n.RegisterFlow(2, path); err != nil {
		t.Fatal(err)
	}
	r1, _ = n.FlowRate(1)
	r2, _ := n.FlowRate(2)
	if math.Abs(r1-4e6) > 1 || math.Abs(r2-4e6) > 1 {
		t.Fatalf("shared rates = %g, %g, want 4e6 each", r1, r2)
	}
	n.UnregisterFlow(2)
	r1, _ = n.FlowRate(1)
	if math.Abs(r1-8e6) > 1 {
		t.Fatalf("rate after release = %g, want 8e6", r1)
	}
	if n.NumFlows() != 1 {
		t.Fatalf("NumFlows = %d", n.NumFlows())
	}
	n.UnregisterFlow(99) // no-op
}

func TestLinkCapacityChangeReallocates(t *testing.T) {
	n := testNet(t)
	topo := n.Topology()
	path := pathFor(t, n, topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))
	notified := 0
	n.SetRateNotify(func() { notified++ })
	if err := n.RegisterFlow(1, path); err != nil {
		t.Fatal(err)
	}
	n.SetLinkCapacity(path[0], 2e6)
	if r, _ := n.FlowRate(1); math.Abs(r-2e6) > 1 {
		t.Fatalf("rate after capacity cut = %g, want 2e6", r)
	}
	n.SetLinkCapacity(path[0], 0)
	if r, _ := n.FlowRate(1); r != 0 {
		t.Fatalf("rate on dead link = %g, want 0", r)
	}
	n.SetLinkCapacity(path[0], 8e6)
	if r, _ := n.FlowRate(1); math.Abs(r-8e6) > 1 {
		t.Fatalf("rate after restore = %g, want 8e6", r)
	}
	if notified != 4 { // register + three capacity changes
		t.Errorf("rate notify fired %d times, want 4", notified)
	}
}

func TestPacedWriterThroughput(t *testing.T) {
	// Compressed 8x: the ≈200 ms fabric-time transfer takes ≈25 ms wall.
	n := testNetCompressed(t, 8)
	topo := n.Topology()
	path := pathFor(t, n, topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))
	if err := n.RegisterFlow(7, path); err != nil {
		t.Fatal(err)
	}

	// 8 Mbps = 1 MB/s; transferring 200 KB should take ≈200 ms fabric.
	var sink bytes.Buffer
	w := n.Writer(7, &sink)
	payload := make([]byte, 200<<10)
	start := n.Clock().Now()
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	elapsed := n.Clock().Now() - start
	if sink.Len() != len(payload) {
		t.Fatalf("wrote %d bytes", sink.Len())
	}
	if elapsed < 0.15 || elapsed > 0.6 {
		t.Errorf("transfer took %.3fs fabric, want ≈0.2s", elapsed)
	}
	if bits := n.FlowTransferred(7); bits != float64(len(payload))*8 {
		t.Errorf("FlowTransferred = %g bits, want %g", bits, float64(len(payload))*8)
	}
	if bits := n.LinkTransferred(path[0]); bits != float64(len(payload))*8 {
		t.Errorf("LinkTransferred = %g bits, want %g", bits, float64(len(payload))*8)
	}
}

func TestUnregisteredFlowUnpaced(t *testing.T) {
	n := testNet(t)
	var sink bytes.Buffer
	w := n.Writer(0, &sink)
	start := time.Now()
	if _, err := w.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("unregistered flow paced: %v", elapsed)
	}
}

func TestTwoFlowsShareLinkInTime(t *testing.T) {
	// Compressed 8x: ≈200 ms fabric each, ≈25 ms wall.
	n := testNetCompressed(t, 8)
	topo := n.Topology()
	path := pathFor(t, n, topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))
	if err := n.RegisterFlow(1, path); err != nil {
		t.Fatal(err)
	}
	if err := n.RegisterFlow(2, path); err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 100<<10) // 100 KB each at 0.5 MB/s ≈ 200 ms fabric
	var wg sync.WaitGroup
	durations := make([]float64, 2)
	for i, id := range []uint64{1, 2} {
		i, id := i, id
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := n.Writer(id, io.Discard)
			start := n.Clock().Now()
			if _, err := w.Write(payload); err != nil {
				t.Error(err)
			}
			durations[i] = n.Clock().Now() - start
		}()
	}
	wg.Wait()
	for i, d := range durations {
		if d < 0.14 || d > 0.8 {
			t.Errorf("flow %d took %.3fs fabric, want ≈0.2s (half rate)", i+1, d)
		}
	}
}

func TestRateAdaptsMidTransfer(t *testing.T) {
	// Compressed 4x (modest: the mid-transfer event is timing-sensitive).
	n := testNetCompressed(t, 4)
	topo := n.Topology()
	path := pathFor(t, n, topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))
	if err := n.RegisterFlow(1, path); err != nil {
		t.Fatal(err)
	}

	// Start at full rate; halfway through, a competitor arrives.
	payload := make([]byte, 200<<10) // alone: ≈200 ms fabric; competitor for 2nd half: ≈300 ms
	done := make(chan float64, 1)
	go func() {
		w := n.Writer(1, io.Discard)
		start := n.Clock().Now()
		_, _ = w.Write(payload)
		done <- n.Clock().Now() - start
	}()
	n.Clock().Sleep(0.1)
	if err := n.RegisterFlow(2, path); err != nil {
		t.Fatal(err)
	}
	elapsed := <-done
	if elapsed < 0.25 {
		t.Errorf("transfer took %.3fs fabric; competitor did not slow the flow", elapsed)
	}
}

func TestStarvedFlowResumesAfterRestore(t *testing.T) {
	n := testNetCompressed(t, 8)
	topo := n.Topology()
	path := pathFor(t, n, topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))
	if err := n.RegisterFlow(1, path); err != nil {
		t.Fatal(err)
	}
	n.SetLinkCapacity(path[0], 0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		w := n.Writer(1, io.Discard)
		_, _ = w.Write(make([]byte, 64<<10))
	}()
	select {
	case <-done:
		t.Fatal("write completed over a dead link")
	case <-time.After(50 * time.Millisecond):
	}
	n.SetLinkCapacity(path[0], 8e6)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("write did not resume after the link was restored")
	}
}

func TestSwitchCountersCredited(t *testing.T) {
	n := testNet(t)
	topo := n.Topology()
	src, dst := topo.HostAt(0, 0, 0), topo.HostAt(1, 0, 0)
	path := pathFor(t, n, src, dst)

	edge := topo.EdgeOf(src)
	sw := sdn.NewSwitch(uint64(edge))
	bridge := sdn.NewCounterBridge(topo)
	if err := bridge.Attach(edge, sw); err != nil {
		t.Fatal(err)
	}
	if err := bridge.Attach(src, sw); err == nil {
		t.Error("attached a switch to a host node")
	}
	n.SetCounterSink(bridge)

	if err := n.RegisterFlow(5, path); err != nil {
		t.Fatal(err)
	}
	w := n.Writer(5, io.Discard)
	if _, err := w.Write(make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	// The edge switch forwards the flow on its second link (edge→agg).
	port, _ := uint32(path[1]), error(nil)
	if got, _ := sw.HasFlow(5); got != 0 {
		// No flow table entry was installed; counters are still credited.
		_ = got
	}
	// Verify via the switch's own counters.
	found := false
	swStats := collectFlowStats(sw)
	for _, s := range swStats {
		if s.FlowID == 5 && s.ByteCount == 64<<10 {
			found = true
		}
	}
	if !found {
		t.Errorf("flow counter missing or wrong: %+v (port %d)", swStats, port)
	}
}

// collectFlowStats reads a switch's counters through its own public hook
// (AddBytes is the write side; there is no direct read, so use a
// controller round trip in integration tests — here we reach through the
// control protocol instead).
func collectFlowStats(sw *sdn.Switch) []sdn.FlowStat {
	// The switch only exposes counters via the control protocol; spin up
	// a loopback controller for the query.
	c := sdn.NewController()
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		return nil
	}
	defer c.Close()
	if err := sw.Connect(addr.String()); err != nil {
		return nil
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(c.Switches()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := contextWithTimeout(2 * time.Second)
	defer cancel()
	stats, err := c.FlowStats(ctx, sw.DatapathID())
	if err != nil {
		return nil
	}
	return stats
}
