package emunet

import (
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/netsim"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// TestEmunetMatchesNetsim cross-validates the two network substrates: the
// wall-clock completion times of concurrent paced transfers through
// emunet must track the flow-level simulator's predictions for the same
// scenario. This ties the prototype experiments (Figure 8) to the
// simulation experiments (Figures 4–7): both halves of the evaluation
// share one bandwidth-sharing model.
func TestEmunetMatchesNetsim(t *testing.T) {
	topo, err := topology.New(topology.Config{
		Pods: 2, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: 16e6, EdgeAggLinkBps: 16e6, AggCoreLinkBps: 8e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	hosts := topo.Hosts()

	// A handful of concurrent transfers over random paths.
	type xfer struct {
		id   uint64
		path topology.Path
		bits float64
	}
	var xfers []xfer
	for i := 0; i < 5; i++ {
		src := hosts[r.Intn(len(hosts))]
		dst := hosts[r.Intn(len(hosts))]
		if src == dst {
			i--
			continue
		}
		paths := topo.ShortestPaths(src, dst)
		xfers = append(xfers, xfer{
			id:   uint64(i + 1),
			path: paths[r.Intn(len(paths))],
			bits: float64((64 + r.Intn(128)) * 1024 * 8), // 64–192 KB
		})
	}

	// Predicted completion times from the simulator.
	sim := netsim.New(topo)
	predicted := make([]float64, len(xfers))
	for i, x := range xfers {
		i := i
		sim.StartFlow(netsim.FlowConfig{
			Links: x.path,
			Bits:  x.bits,
			OnComplete: func(end float64) {
				predicted[i] = end
			},
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	// Measured completion times from the emulated network.
	net := New(topo)
	for _, x := range xfers {
		if err := net.RegisterFlow(x.id, x.path); err != nil {
			t.Fatal(err)
		}
	}
	measured := make([]float64, len(xfers))
	var wg sync.WaitGroup
	start := time.Now()
	for i, x := range xfers {
		i, x := i, x
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := net.Writer(x.id, io.Discard)
			if _, err := w.Write(make([]byte, int(x.bits/8))); err != nil {
				t.Error(err)
			}
			measured[i] = time.Since(start).Seconds()
			net.UnregisterFlow(x.id)
		}()
	}
	wg.Wait()

	// The emulated network sees flows start simultaneously but finishers
	// release bandwidth just like the simulator, so per-flow times should
	// agree within scheduling noise.
	for i := range xfers {
		if predicted[i] <= 0 {
			t.Fatalf("flow %d: no prediction", i)
		}
		ratio := measured[i] / predicted[i]
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("flow %d: measured %.3fs vs predicted %.3fs (ratio %.2f)",
				i, measured[i], predicted[i], ratio)
		}
	}
}
