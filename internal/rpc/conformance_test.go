package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// testServer is a wire server with the conformance methods: echo, fail,
// and hang (blocks until release or ctx done, reporting what it saw).
type testServer struct {
	srv      *wire.Server
	addr     string
	hangs    chan error    // ctx.Err() observed by each hang handler on exit
	entered  chan struct{} // signalled when a hang handler starts
	release  chan struct{}
	echoed   atomic.Int64
	released sync.Once
}

func startTestServer(t testing.TB) *testServer {
	t.Helper()
	ts := &testServer{
		srv:     wire.NewServer(),
		hangs:   make(chan error, 16),
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(ts.srv.Register("echo", func(_ context.Context, p json.RawMessage) (any, error) {
		ts.echoed.Add(1)
		return p, nil
	}))
	must(ts.srv.Register("fail", func(context.Context, json.RawMessage) (any, error) {
		return nil, errors.New("boom")
	}))
	must(ts.srv.Register("hang", func(ctx context.Context, _ json.RawMessage) (any, error) {
		ts.entered <- struct{}{}
		select {
		case <-ctx.Done():
			ts.hangs <- ctx.Err()
			return nil, ctx.Err()
		case <-ts.release:
			ts.hangs <- nil
			return "released", nil
		}
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go ts.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	ts.addr = ln.Addr().String()
	t.Cleanup(ts.Close)
	return ts
}

// Close stops the server first — hung handlers unwind via their
// connection-scoped ctx, so a mid-call shutdown never turns into a late
// success through the release channel.
func (ts *testServer) Close() {
	ts.srv.Close()
	ts.released.Do(func() { close(ts.release) })
}

func echoCall(ctx context.Context, c Caller) error {
	var out int
	if err := c.Call(ctx, "echo", 7, &out); err != nil {
		return err
	}
	if out != 7 {
		return fmt.Errorf("echo = %d, want 7", out)
	}
	return nil
}

// TestPeerSharesOneSession: concurrent calls through one peer multiplex
// over a single lazily-dialed connection — the dial generation is 1
// after any number of calls.
func TestPeerSharesOneSession(t *testing.T) {
	ts := startTestServer(t)
	p := NewPeer(ts.addr, Options{})
	defer p.Close()
	if p.Epoch() != 0 {
		t.Fatalf("epoch before first call = %d, want 0", p.Epoch())
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- echoCall(context.Background(), p)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if p.Epoch() != 1 {
		t.Fatalf("epoch after 32 concurrent calls = %d, want 1 shared dial", p.Epoch())
	}
}

// TestPeerReconnectsAcrossServerRestart: when the pooled session dies,
// the next call transparently re-dials (here via a Dial hook that
// follows the server's current address) and the epoch bumps so
// consumers can re-establish connection-scoped state.
func TestPeerReconnectsAcrossServerRestart(t *testing.T) {
	ts1 := startTestServer(t)
	var target atomic.Value
	target.Store(ts1.addr)

	reg := obs.NewRegistry()
	p := NewPeer("logical-ns", Options{
		Dial: func(ctx context.Context, _ string) (*wire.Client, error) {
			return DialSession(ctx, target.Load().(string))
		},
		Metrics: reg,
	})
	defer p.Close()

	if err := echoCall(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", p.Epoch())
	}

	// The server restarts elsewhere; the cached session is now dead.
	ts2 := startTestServer(t)
	target.Store(ts2.addr)
	ts1.Close()

	if err := echoCall(context.Background(), p); err != nil {
		t.Fatalf("call across restart: %v", err)
	}
	if p.Epoch() != 2 {
		t.Fatalf("epoch after restart = %d, want 2", p.Epoch())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["rpc.peer.logical-ns.reconnects"]; got != 1 {
		t.Fatalf("reconnects counter = %d, want 1", got)
	}
}

// TestPostSendFailureIsNotRetried: a call whose request reached the wire
// before the connection died must NOT be transparently re-sent — the
// handler may have run and the method may not be idempotent.
func TestPostSendFailureIsNotRetried(t *testing.T) {
	ts := startTestServer(t)
	p := NewPeer(ts.addr, Options{Reconnects: 3})
	defer p.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- p.Call(context.Background(), "hang", nil, nil) }()
	<-ts.entered
	// Kill the server mid-call: the request was sent, no response comes.
	ts.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("call survived server death")
		}
		var unsent *wire.UnsentError
		if errors.As(err, &unsent) {
			t.Fatalf("post-send failure classified as unsent: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call hung after server death")
	}
	// Exactly one hang handler ran: the budget of 3 reconnects did not
	// replay the request.
	if got := len(ts.entered); got != 0 {
		t.Fatalf("%d extra handler invocations after failure", got)
	}
}

// TestPeerDeadlineObservedServerSide: the caller's deadline travels
// through the session layer to the remote handler's context.
func TestPeerDeadlineObservedServerSide(t *testing.T) {
	ts := startTestServer(t)
	p := NewPeer(ts.addr, Options{})
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Call(ctx, "hang", nil, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	<-ts.entered
	select {
	case herr := <-ts.hangs:
		if !errors.Is(herr, context.DeadlineExceeded) {
			t.Fatalf("handler observed %v, want DeadlineExceeded", herr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not observe the propagated deadline")
	}
}

// TestPeerCancelStopsHandlerAndSessionSurvives: abandoning a call
// cancels the in-flight handler server-side; the late (ignored) response
// does not poison the shared session — the next call reuses it.
func TestPeerCancelStopsHandlerAndSessionSurvives(t *testing.T) {
	ts := startTestServer(t)
	p := NewPeer(ts.addr, Options{})
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- p.Call(ctx, "hang", nil, nil) }()
	<-ts.entered
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	select {
	case herr := <-ts.hangs:
		if !errors.Is(herr, context.Canceled) {
			t.Fatalf("handler observed %v, want Canceled (cancel frame)", herr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel frame did not stop the handler")
	}
	// Same session, still healthy.
	if err := echoCall(context.Background(), p); err != nil {
		t.Fatalf("call after abandoned call: %v", err)
	}
	if p.Epoch() != 1 {
		t.Fatalf("epoch = %d: the abandoned call cost a reconnect", p.Epoch())
	}
}

// TestConcurrentCallResetClose races calls against session resets and a
// final close — the contract is "clean error or success", never a panic
// or deadlock (run under -race).
func TestConcurrentCallResetClose(t *testing.T) {
	ts := startTestServer(t)
	p := NewPeer(ts.addr, Options{Reconnects: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				err := echoCall(ctx, p)
				cancel()
				if err != nil && errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			p.Reset()
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := echoCall(context.Background(), p); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close = %v, want ErrClosed", err)
	}
	if err := p.Connect(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("connect after close = %v, want ErrClosed", err)
	}
}

// TestPoolSharedIdentityAndClose: one peer per address, shared by every
// lookup; Close fails future calls with ErrClosed, and lookups against a
// closed pool hand out closed peers instead of panicking.
func TestPoolSharedIdentityAndClose(t *testing.T) {
	ts := startTestServer(t)
	pl := NewPool(Options{})
	p1 := pl.Peer(ts.addr)
	p2 := pl.Peer(ts.addr)
	if p1 != p2 {
		t.Fatal("two lookups of one address produced distinct peers")
	}
	if err := echoCall(context.Background(), p1); err != nil {
		t.Fatal(err)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := echoCall(context.Background(), p1); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after pool close = %v, want ErrClosed", err)
	}
	if err := echoCall(context.Background(), pl.Peer("127.0.0.1:1")); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer from closed pool = %v, want ErrClosed", err)
	}
}

// TestPoolResetForcesRedial: Reset severs every cached session; the next
// call dials fresh (chaos scenarios model control-plane partitions with
// this).
func TestPoolResetForcesRedial(t *testing.T) {
	ts := startTestServer(t)
	pl := NewPool(Options{})
	defer pl.Close()
	p := pl.Peer(ts.addr)
	if err := echoCall(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	pl.Reset()
	if err := echoCall(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 2 {
		t.Fatalf("epoch after reset = %d, want 2", p.Epoch())
	}
}

// TestPeerMetrics: the built-in interceptor publishes per-peer counters
// and the inflight gauge under "<prefix>.peer.<addr>.*".
func TestPeerMetrics(t *testing.T) {
	ts := startTestServer(t)
	reg := obs.NewRegistry()
	p := NewPeer(ts.addr, Options{Metrics: reg, MetricsPrefix: "client.rpc"})
	defer p.Close()

	if err := echoCall(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if err := p.Call(context.Background(), "fail", nil, nil); err == nil {
		t.Fatal("fail call succeeded")
	}
	snap := reg.Snapshot()
	base := "client.rpc.peer." + ts.addr + "."
	if got := snap.Counters[base+"calls"]; got != 2 {
		t.Errorf("calls = %d, want 2", got)
	}
	if got := snap.Counters[base+"errors"]; got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if got, ok := snap.Gauges[base+"inflight"]; !ok || got != 0 {
		t.Errorf("inflight = %v (present %v), want 0 after calls drain", got, ok)
	}
}

// TestInterceptorChainOrder: Options.Intercept wraps outermost-first and
// receives the peer's address.
func TestInterceptorChainOrder(t *testing.T) {
	ts := startTestServer(t)
	var order []string
	mk := func(name string) Interceptor {
		return func(addr string, next CallFunc) CallFunc {
			if addr != ts.addr {
				t.Errorf("interceptor %s saw addr %q, want %q", name, addr, ts.addr)
			}
			return func(ctx context.Context, method string, args, reply any) error {
				order = append(order, name)
				return next(ctx, method, args, reply)
			}
		}
	}
	p := NewPeer(ts.addr, Options{Intercept: []Interceptor{mk("outer"), mk("inner")}})
	defer p.Close()
	if err := echoCall(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("interceptor order = %v, want [outer inner]", order)
	}
}

// TestConnectFailsFast: Connect against a dead address surfaces the
// error immediately, bounded by the configured connect timeout.
func TestConnectFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	p := NewPeer(addr, Options{ConnectTimeout: 200 * time.Millisecond})
	defer p.Close()
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Connect(ctx); err == nil {
		t.Fatal("connect to dead address succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("connect took %v, want bounded by the connect timeout", d)
	}
}
