package rpc

import "sync"

// Pool hands out one shared Peer per remote address: every consumer in a
// process that talks to the same nameserver, dataserver, or flowserver
// multiplexes over the same underlying session. Peers are created
// lazily, live for the pool's lifetime, and are all closed by Close.
// Safe for concurrent use.
type Pool struct {
	opts Options

	mu     sync.Mutex
	peers  map[string]*Peer
	closed bool
}

// NewPool creates a pool; every peer it creates shares opts.
func NewPool(opts Options) *Pool {
	return &Pool{
		opts:  opts.withDefaults(),
		peers: make(map[string]*Peer),
	}
}

// Peer returns the pool's shared peer for addr, creating it on first
// use. A peer obtained from a closed pool is itself closed and fails
// calls with ErrClosed rather than panicking, so racing lookups against
// shutdown is benign.
func (pl *Pool) Peer(addr string) *Peer {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	p, ok := pl.peers[addr]
	if !ok {
		p = NewPeer(addr, pl.opts)
		if pl.closed {
			p.Close()
		}
		pl.peers[addr] = p
	}
	return p
}

// Reset discards the cached session of every peer; subsequent calls
// re-dial. Chaos scenarios use it to sever all control connections at
// once.
func (pl *Pool) Reset() {
	pl.mu.Lock()
	peers := make([]*Peer, 0, len(pl.peers))
	for _, p := range pl.peers {
		peers = append(peers, p)
	}
	pl.mu.Unlock()
	for _, p := range peers {
		p.Reset()
	}
}

// Close closes every peer. The pool stays usable for lookups (returning
// closed peers) so concurrent callers see clean errors, not panics.
func (pl *Pool) Close() error {
	pl.mu.Lock()
	pl.closed = true
	peers := make([]*Peer, 0, len(pl.peers))
	for _, p := range pl.peers {
		peers = append(peers, p)
	}
	pl.mu.Unlock()
	var first error
	for _, p := range peers {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
