// Package rpc is the control-plane session layer: every control message
// in the system — client↔nameserver, client↔dataserver,
// dataserver↔dataserver replication relays, flowserver registrations,
// Paxos traffic, repair, chaos probes — travels through a Peer from this
// package rather than a hand-dialed wire connection.
//
// The package owns exactly the concerns the eight former call sites each
// reimplemented (DESIGN.md §13):
//
//   - connection lifecycle: one shared, health-checked, multiplexed
//     session per remote address, lazily dialed with a bounded connect
//     timeout and transparently re-dialed when it dies;
//   - retry safety: a call is re-sent only when wire proves the request
//     never reached the network (*wire.UnsentError), so non-idempotent
//     methods are never duplicated;
//   - policy: one shared exponential Backoff and an Interceptor chain
//     with per-peer obs metrics (calls, errors, retries, reconnects,
//     inflight).
//
// Deadline and cancellation semantics come from wire itself: the caller's
// ctx deadline rides in the request frame and bounds the server-side
// handler ctx, and abandoning a call sends a cancel frame. The session
// layer adds nothing on top — which is the point; there is exactly one
// timeout mechanism.
//
// Typed per-service stubs (nameserver.Client, dataserver.Client,
// flowserver.RPCClient) wrap the Caller interface, so the compiler checks
// call sites and tests can fake a service without a socket.
package rpc

import (
	"context"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// Caller is the hook the typed service stubs build on: anything that can
// issue one control-plane call. *Peer implements it; tests implement it
// in-memory.
type Caller interface {
	Call(ctx context.Context, method string, args, reply any) error
}

// CallFunc is the functional form of Caller, used by interceptors.
type CallFunc func(ctx context.Context, method string, args, reply any) error

// Interceptor wraps every call through a peer; addr identifies the
// remote. Interceptors compose like middleware: the first in the slice
// is outermost.
type Interceptor func(addr string, next CallFunc) CallFunc

// DefaultConnectTimeout bounds each TCP connect when Options.ConnectTimeout
// is zero. Matches the 5s the client historically used, and turns the
// former unbounded dials (paxos, dataserver relay) into bounded ones.
const DefaultConnectTimeout = 5 * time.Second

// Options configures a Pool or a standalone Peer. The zero value is
// usable: real TCP dials with DefaultConnectTimeout, one transparent
// reconnect attempt per call, no metrics.
type Options struct {
	// ConnectTimeout bounds each TCP connect (<=0: DefaultConnectTimeout).
	ConnectTimeout time.Duration
	// Dial establishes the underlying session (nil: DialSession). Chaos
	// scenarios inject partition-aware dialers here.
	Dial func(ctx context.Context, addr string) (*wire.Client, error)
	// Reconnects is the per-call budget of transparent redial attempts
	// when the pooled session is dead or the request provably never hit
	// the wire (0: one attempt; negative: none).
	Reconnects int
	// Backoff spaces reconnect attempts within one call.
	Backoff Backoff
	// Metrics, when set, publishes per-peer counters and the inflight
	// gauge under "<MetricsPrefix>.peer.<addr>.*".
	Metrics *obs.Registry
	// MetricsPrefix namespaces this pool's metrics ("" : "rpc").
	MetricsPrefix string
	// Intercept wraps every call, outermost first, outside the built-in
	// metrics interceptor's instrumentation of retries but inside its
	// call/error accounting.
	Intercept []Interceptor
}

// withDefaults resolves zero fields to their documented defaults.
func (o Options) withDefaults() Options {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = DefaultConnectTimeout
	}
	if o.Dial == nil {
		o.Dial = DialSession
	}
	if o.Reconnects == 0 {
		o.Reconnects = 1
	}
	if o.MetricsPrefix == "" {
		o.MetricsPrefix = "rpc"
	}
	return o
}

// DialSession is the default session dialer and the single place the
// repo touches wire.DialContext (grep-enforced by a test): one bare,
// ctx-bounded TCP connect. Callers needing a raw session outside a Peer
// (the chaos partition scenario's connection tracker) go through here so
// the invariant holds.
func DialSession(ctx context.Context, addr string) (*wire.Client, error) {
	return wire.DialContext(ctx, addr)
}
