package rpc

import (
	"context"
	"sync"
	"testing"
)

// BenchmarkRPCRoundTrip measures one pooled-session echo round trip over
// loopback — the floor every control message (heartbeat, lookup,
// schedule request) pays for the typed session layer.
func BenchmarkRPCRoundTrip(b *testing.B) {
	ts := startTestServer(b)
	p := NewPeer(ts.addr, Options{})
	defer p.Close()
	ctx := context.Background()
	// Prime the session so the dial is outside the measured loop.
	if err := echoCall(ctx, p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out int
		if err := p.Call(ctx, "echo", i, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCPooledFanout measures a 3-way concurrent fan-out through
// one pool — the replication-relay shape: a primary issuing parallel
// calls to every replica over shared sessions.
func BenchmarkRPCPooledFanout(b *testing.B) {
	const fanout = 3
	servers := make([]*testServer, fanout)
	for i := range servers {
		servers[i] = startTestServer(b)
	}
	pl := NewPool(Options{})
	defer pl.Close()
	ctx := context.Background()
	for _, ts := range servers {
		if err := echoCall(ctx, pl.Peer(ts.addr)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, fanout)
		for j, ts := range servers {
			wg.Add(1)
			go func(j int, addr string) {
				defer wg.Done()
				var out int
				errs[j] = pl.Peer(addr).Call(ctx, "echo", j, &out)
			}(j, ts.addr)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
