package rpc

import (
	"context"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/obs"
)

// peerMetrics instruments one peer. The structs are always allocated so
// the hot path never branches on nil; they are published to a registry
// only when Options.Metrics is set, under
// "<prefix>.peer.<addr>.{calls,errors,retries,reconnects,inflight}".
type peerMetrics struct {
	calls      obs.Counter
	errors     obs.Counter
	retries    obs.Counter
	reconnects obs.Counter
	inflight   obs.Gauge
}

func newPeerMetrics(opts Options, addr string) *peerMetrics {
	m := &peerMetrics{}
	if r := opts.Metrics; r != nil {
		base := opts.MetricsPrefix + ".peer." + addr + "."
		r.RegisterCounter(base+"calls", &m.calls)
		r.RegisterCounter(base+"errors", &m.errors)
		r.RegisterCounter(base+"retries", &m.retries)
		r.RegisterCounter(base+"reconnects", &m.reconnects)
		r.RegisterGauge(base+"inflight", &m.inflight)
	}
	return m
}

// MethodMetrics returns an interceptor that counts calls and errors per
// RPC method under "<prefix>.method.<method>.{calls,errors}", aggregated
// across peers. The client installs it to make metadata-path load
// directly observable (e.g. "client.rpc.method.ns.Lookup.calls" versus
// "...ns.Validate.calls" shows what the lease cache saves); counters are
// created lazily on first use of each method.
func MethodMetrics(r *obs.Registry, prefix string) Interceptor {
	var mu sync.Mutex
	counters := make(map[string]*methodCounters)
	get := func(method string) *methodCounters {
		mu.Lock()
		defer mu.Unlock()
		mc, ok := counters[method]
		if !ok {
			base := prefix + ".method." + method + "."
			mc = &methodCounters{
				calls:  r.Counter(base + "calls"),
				errors: r.Counter(base + "errors"),
			}
			counters[method] = mc
		}
		return mc
	}
	return func(_ string, next CallFunc) CallFunc {
		return func(ctx context.Context, method string, args, reply any) error {
			mc := get(method)
			mc.calls.Inc()
			err := next(ctx, method, args, reply)
			if err != nil {
				mc.errors.Inc()
			}
			return err
		}
	}
}

type methodCounters struct {
	calls  *obs.Counter
	errors *obs.Counter
}

// instrument is the built-in outermost interceptor: per-call and
// per-error counts plus the inflight gauge. Retries and reconnects are
// counted where they happen (transportCall, session).
func (m *peerMetrics) instrument(next CallFunc) CallFunc {
	return func(ctx context.Context, method string, args, reply any) error {
		m.calls.Inc()
		m.inflight.Add(1)
		err := next(ctx, method, args, reply)
		m.inflight.Add(-1)
		if err != nil {
			m.errors.Inc()
		}
		return err
	}
}
