package rpc

import (
	"context"

	"github.com/mayflower-dfs/mayflower/internal/obs"
)

// peerMetrics instruments one peer. The structs are always allocated so
// the hot path never branches on nil; they are published to a registry
// only when Options.Metrics is set, under
// "<prefix>.peer.<addr>.{calls,errors,retries,reconnects,inflight}".
type peerMetrics struct {
	calls      obs.Counter
	errors     obs.Counter
	retries    obs.Counter
	reconnects obs.Counter
	inflight   obs.Gauge
}

func newPeerMetrics(opts Options, addr string) *peerMetrics {
	m := &peerMetrics{}
	if r := opts.Metrics; r != nil {
		base := opts.MetricsPrefix + ".peer." + addr + "."
		r.RegisterCounter(base+"calls", &m.calls)
		r.RegisterCounter(base+"errors", &m.errors)
		r.RegisterCounter(base+"retries", &m.retries)
		r.RegisterCounter(base+"reconnects", &m.reconnects)
		r.RegisterGauge(base+"inflight", &m.inflight)
	}
	return m
}

// instrument is the built-in outermost interceptor: per-call and
// per-error counts plus the inflight gauge. Retries and reconnects are
// counted where they happen (transportCall, session).
func (m *peerMetrics) instrument(next CallFunc) CallFunc {
	return func(ctx context.Context, method string, args, reply any) error {
		m.calls.Inc()
		m.inflight.Add(1)
		err := next(ctx, method, args, reply)
		m.inflight.Add(-1)
		if err != nil {
			m.errors.Inc()
		}
		return err
	}
}
