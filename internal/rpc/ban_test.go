package rpc

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNoRawWireDialsOutsideSessionLayer enforces the session-layer
// invariant (DESIGN.md §13): internal/rpc owns every control-plane
// connection, so no package other than rpc itself (and wire's own
// tests) may call wire.DialContext — and the removed wire.Dial /
// wire.DialTimeout must not creep back in anywhere.
func TestNoRawWireDialsOutsideSessionLayer(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	ban := regexp.MustCompile(`wire\.Dial`)
	var offenders []string
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		// The session layer itself, and wire's in-package tests, are the
		// only legitimate homes for a raw dial.
		if strings.HasPrefix(rel, "internal/rpc/") || strings.HasPrefix(rel, "internal/wire/") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if ban.Match(data) {
			offenders = append(offenders, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Fatalf("raw wire.Dial* outside internal/rpc in: %v — route the connection through rpc.Pool/rpc.Peer (or rpc.DialSession for a bare session)", offenders)
	}
}

// moduleRoot walks up from the test's working directory to the directory
// containing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
