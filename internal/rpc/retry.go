package rpc

import (
	"context"
	"time"
)

// DefaultMaxBackoff caps the delay between retry passes when Backoff.Max
// is zero: past a couple of seconds more waiting only delays the error
// the application will see.
const DefaultMaxBackoff = 2 * time.Second

// Backoff is the one exponential retry-delay policy shared by the whole
// control plane: the client's read and write failover loops, and each
// Peer's transparent reconnects, all space their passes with it. The
// zero value disables delay (Base 0).
type Backoff struct {
	// Base is the delay before the first retry; each further pass
	// doubles it. Zero or negative means no delay.
	Base time.Duration
	// Max saturates the doubling (<=0: DefaultMaxBackoff).
	Max time.Duration
}

// Delay computes the exponential delay for a 1-based retry pass,
// saturating at Max. The exponent is clamped before shifting: base <<
// (pass-1) overflows int64 once pass exceeds ~62, flipping the duration
// negative and turning backoff into a hot retry loop (time.After fires
// immediately on non-positive durations).
func (b Backoff) Delay(pass int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	max := b.Max
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	if b.Base >= max {
		return max
	}
	shift := pass - 1
	if shift < 0 {
		shift = 0
	}
	// Max is a duration well below 2^62 ns; clamping the shift at 31
	// keeps base<<shift far from overflow for any realistic Base while
	// still saturating (2s cap is passed long before 31 doublings).
	if shift > 31 {
		return max
	}
	if d := b.Base << uint(shift); d > 0 && d < max {
		return d
	}
	return max
}

// Sleep waits Delay(pass), aborting early with ctx.Err() if ctx is done.
// A zero delay returns immediately without consulting ctx.
func (b Backoff) Sleep(ctx context.Context, pass int) error {
	d := b.Delay(pass)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
