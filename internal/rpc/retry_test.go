package rpc

import (
	"context"
	"testing"
	"time"
)

// TestBackoffDelayNeverNegative is the regression test for the shift
// overflow: Base << (pass-1) flips negative once pass exceeds ~62, and
// time.After fires immediately on non-positive durations, turning the
// backoff into a hot retry loop for large retry budgets.
func TestBackoffDelayNeverNegative(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond}
	prev := time.Duration(0)
	for pass := 1; pass <= 1000; pass++ {
		d := b.Delay(pass)
		if d <= 0 {
			t.Fatalf("pass %d: delay %v is not positive (shift overflow)", pass, d)
		}
		if d > DefaultMaxBackoff {
			t.Fatalf("pass %d: delay %v exceeds cap %v", pass, d, DefaultMaxBackoff)
		}
		if d < prev {
			t.Fatalf("pass %d: delay %v < previous %v (not monotone)", pass, d, prev)
		}
		prev = d
	}
	// The huge pass numbers that used to overflow.
	for _, pass := range []int{63, 64, 65, 1 << 20, 1<<31 - 1} {
		if d := b.Delay(pass); d != DefaultMaxBackoff {
			t.Errorf("pass %d: delay %v, want saturated %v", pass, d, DefaultMaxBackoff)
		}
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond}
	want := []time.Duration{
		50 * time.Millisecond,  // pass 1
		100 * time.Millisecond, // pass 2
		200 * time.Millisecond, // pass 3
		400 * time.Millisecond, // pass 4
		800 * time.Millisecond, // pass 5
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for i, w := range want {
		if d := b.Delay(i + 1); d != w {
			t.Errorf("pass %d: delay %v, want %v", i+1, d, w)
		}
	}
	if d := (Backoff{}).Delay(5); d != 0 {
		t.Errorf("zero base: delay %v, want 0", d)
	}
	if d := (Backoff{Base: 5 * time.Second}).Delay(1); d != DefaultMaxBackoff {
		t.Errorf("over-cap base: delay %v, want %v", d, DefaultMaxBackoff)
	}
	if d := b.Delay(0); d != b.Base {
		t.Errorf("pass 0 clamps to base: got %v", d)
	}
	// An explicit Max overrides the default cap.
	if d := (Backoff{Base: time.Second, Max: 3 * time.Second}).Delay(10); d != 3*time.Second {
		t.Errorf("custom cap: delay %v, want 3s", d)
	}
}

func TestBackoffSleep(t *testing.T) {
	// Zero delay returns immediately, reporting the context's state.
	if err := (Backoff{}).Sleep(context.Background(), 5); err != nil {
		t.Errorf("zero-delay sleep err = %v", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (Backoff{}).Sleep(cancelled, 1); err != context.Canceled {
		t.Errorf("zero-delay sleep on cancelled ctx err = %v, want Canceled", err)
	}
	// A cancelled context aborts a pending delay promptly.
	start := time.Now()
	err := (Backoff{Base: 10 * time.Second}).Sleep(cancelled, 1)
	if err != context.Canceled {
		t.Errorf("sleep on cancelled ctx err = %v, want Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled sleep did not return promptly")
	}
	// A short delay elapses normally.
	if err := (Backoff{Base: time.Millisecond}).Sleep(context.Background(), 1); err != nil {
		t.Errorf("short sleep err = %v", err)
	}
}
