package rpc

import (
	"context"
	"errors"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// ErrClosed is returned for calls through a closed Peer or Pool.
var ErrClosed = errors.New("rpc: peer closed")

// Peer is one pooled control-plane session to a remote address: all
// callers of the same address share one multiplexed wire connection,
// lazily dialed and transparently replaced when it dies. Peer implements
// Caller; the typed service stubs wrap it. Safe for concurrent use.
type Peer struct {
	addr string
	opts Options
	met  *peerMetrics
	call CallFunc // composed interceptor chain ending in transportCall

	// dialMu serializes reconnection so a burst of calls against a dead
	// session produces one dial, not a thundering herd; calls that find a
	// live session never touch it.
	dialMu sync.Mutex

	mu     sync.Mutex
	sess   *wire.Client
	epoch  uint64 // dial generation; bumps on every successful (re)connect
	closed bool
}

// NewPeer creates a standalone peer (no pool) for addr.
func NewPeer(addr string, opts Options) *Peer {
	p := &Peer{
		addr: addr,
		opts: opts.withDefaults(),
	}
	p.met = newPeerMetrics(p.opts, addr)
	next := CallFunc(p.transportCall)
	for i := len(p.opts.Intercept) - 1; i >= 0; i-- {
		next = p.opts.Intercept[i](addr, next)
	}
	p.call = p.met.instrument(next)
	return p
}

// Addr returns the remote address this peer serves.
func (p *Peer) Addr() string { return p.addr }

// Epoch returns the peer's dial generation: 0 before the first
// connection, incremented on every successful (re)connect. Consumers
// with connection-scoped server state (the dataserver's registration
// with the nameserver) compare epochs to learn that a reconnect happened
// and that state must be re-established.
func (p *Peer) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Connect ensures a live session exists, dialing if needed (bounded by
// ctx and the connect timeout). Calls dial lazily; Connect exists for
// fail-fast startup paths that want a misconfigured address to surface
// immediately.
func (p *Peer) Connect(ctx context.Context) error {
	_, err := p.session(ctx)
	return err
}

// Reset discards the current session, if any; the next call re-dials.
// Chaos scenarios use it to model a severed control connection.
func (p *Peer) Reset() {
	p.mu.Lock()
	sess := p.sess
	p.sess = nil
	p.mu.Unlock()
	if sess != nil {
		sess.Close()
	}
}

// Close shuts the peer down; subsequent calls fail with ErrClosed.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	sess := p.sess
	p.sess = nil
	p.mu.Unlock()
	if sess != nil {
		return sess.Close()
	}
	return nil
}

// Call issues one RPC through the interceptor chain. See transportCall
// for the session/retry contract.
func (p *Peer) Call(ctx context.Context, method string, args, reply any) error {
	return p.call(ctx, method, args, reply)
}

// session returns the live shared session, dialing (or replacing a dead
// one) if needed.
func (p *Peer) session(ctx context.Context) (*wire.Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if s := p.sess; s != nil && s.Err() == nil {
		p.mu.Unlock()
		return s, nil
	}
	p.mu.Unlock()

	p.dialMu.Lock()
	defer p.dialMu.Unlock()
	// Re-check: another caller may have completed the dial while this one
	// waited on dialMu.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if s := p.sess; s != nil && s.Err() == nil {
		p.mu.Unlock()
		return s, nil
	}
	dead := p.sess
	p.sess = nil
	reconnect := p.epoch > 0
	p.mu.Unlock()
	if dead != nil {
		dead.Close()
	}

	dctx, cancel := context.WithTimeout(ctx, p.opts.ConnectTimeout)
	defer cancel()
	s, err := p.opts.Dial(dctx, p.addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		s.Close()
		return nil, ErrClosed
	}
	p.sess = s
	p.epoch++
	p.mu.Unlock()
	if reconnect {
		p.met.reconnects.Inc()
	}
	return s, nil
}

// drop discards sess if it is still the cached session; a concurrent
// caller may already have replaced it.
func (p *Peer) drop(sess *wire.Client) {
	p.mu.Lock()
	if p.sess == sess {
		p.sess = nil
	}
	p.mu.Unlock()
	sess.Close()
}

// transportCall is the innermost CallFunc: acquire the shared session,
// send, and handle transport death. A failed call is transparently
// retried on a fresh connection only when wire proves the request never
// reached the network (*wire.UnsentError — dead cached session, broken
// write) and the per-call reconnect budget allows; anything after the
// frame was sent is returned as-is, because the handler may have run and
// the method may not be idempotent. Dial failures share the same budget.
func (p *Peer) transportCall(ctx context.Context, method string, args, reply any) error {
	budget := p.opts.Reconnects
	for pass := 0; ; pass++ {
		if pass > 0 {
			p.met.retries.Inc()
			if err := p.opts.Backoff.Sleep(ctx, pass); err != nil {
				return err
			}
		}
		sess, err := p.session(ctx)
		if err == nil {
			err = sess.Call(ctx, method, args, reply)
			if err == nil {
				return nil
			}
			var remote *wire.RemoteError
			if errors.As(err, &remote) || ctx.Err() != nil {
				// Application error or caller abandonment: the session is
				// healthy, nothing to retry.
				return err
			}
			// Transport failure: this session is dead either way.
			p.drop(sess)
			var unsent *wire.UnsentError
			if !errors.As(err, &unsent) {
				// The request reached the wire; retrying could re-run a
				// non-idempotent handler. The next call gets a fresh
				// session.
				return err
			}
		} else if errors.Is(err, ErrClosed) {
			return err
		}
		if pass >= budget {
			return err
		}
	}
}
