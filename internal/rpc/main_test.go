package rpc

import (
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/testutil"
)

// TestMain fails the package if any test leaves a goroutine behind —
// every peer, pool, and server the conformance suite starts must unwind
// completely on Close.
func TestMain(m *testing.M) {
	testutil.VerifyNoLeaks(m)
}
