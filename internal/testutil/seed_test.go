package testutil

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	for _, base := range []int64{0, 1, -1, 42, 1 << 40} {
		for idx := uint64(0); idx < 64; idx++ {
			a := DeriveSeed(base, idx)
			b := DeriveSeed(base, idx)
			if a != b {
				t.Fatalf("DeriveSeed(%d, %d) unstable: %d vs %d", base, idx, a, b)
			}
		}
	}
}

// TestDeriveSeedNoCollisions checks the practical independence property
// the sweep runner relies on: across a grid of bases and cell indices far
// larger than any figure sweep, every derived seed is distinct.
func TestDeriveSeedNoCollisions(t *testing.T) {
	seen := make(map[int64][2]int64, 64*4096)
	for _, base := range []int64{0, 1, 2, 3, 7, -9, 1e12, -1e12} {
		for idx := uint64(0); idx < 4096; idx++ {
			s := DeriveSeed(base, idx)
			if prev, ok := seen[s]; ok {
				t.Fatalf("collision: (%d,%d) and (%d,%d) both derive %d",
					prev[0], prev[1], base, idx, s)
			}
			seen[s] = [2]int64{base, int64(idx)}
		}
	}
}

// TestDeriveSeedDiffersFromBase guards the property DESIGN.md §11 leans
// on: a derived trial seed never silently equals the base seed, so trial
// k > 0 cannot replay trial 0's workload.
func TestDeriveSeedDiffersFromBase(t *testing.T) {
	for _, base := range []int64{0, 1, -1, 12345, 1 << 33} {
		for idx := uint64(0); idx < 128; idx++ {
			if DeriveSeed(base, idx) == base {
				t.Errorf("DeriveSeed(%d, %d) == base", base, idx)
			}
		}
	}
}

func TestSplitMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a contiguous range (a true bijection
	// cannot collide anywhere).
	seen := make(map[uint64]uint64, 1<<14)
	for x := uint64(0); x < 1<<14; x++ {
		y := SplitMix64(x)
		if prev, ok := seen[y]; ok {
			t.Fatalf("SplitMix64 collision: %d and %d -> %d", prev, x, y)
		}
		seen[y] = x
	}
}
