// Package testutil holds helpers shared by the package test suites:
// deterministic seeded randomness that announces its seed in the test
// log, and a goroutine-leak check for TestMain.
package testutil

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"
)

// Rand returns a deterministic rng for the test and logs the seed, so a
// failure report (or -v run) always states which seed produced it. Tests
// must derive all randomness from explicit seeds — never the global
// source — so any failure replays exactly.
func Rand(tb testing.TB, seed int64) *rand.Rand {
	tb.Helper()
	tb.Logf("rng seed: %d", seed)
	return rand.New(rand.NewSource(seed))
}

// leakSlack is how many goroutines above the pre-run baseline are
// tolerated after tests finish; the runtime keeps a few service
// goroutines alive whose lifecycle the test suite does not control.
const leakSlack = 2

// VerifyNoLeaks runs the test binary via m.Run and then fails it if
// goroutines spawned during the tests are still running once everything
// has had a chance to wind down. Use from TestMain:
//
//	func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }
//
// Servers, clients, and monitors started by tests must therefore be
// closed by the tests that start them (t.Cleanup), or the whole package
// fails with a full stack dump of the stragglers.
func VerifyNoLeaks(m *testing.M) {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		// Closed connections and servers need a moment to unwind their
		// reader goroutines; poll instead of asserting instantly.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before+leakSlack {
				break
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				fmt.Fprintf(os.Stderr,
					"goroutine leak: %d goroutines alive after tests, %d before\n\n%s\n",
					runtime.NumGoroutine(), before, buf[:n])
				code = 1
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	os.Exit(code)
}
