package testutil

// splitmix64 is one round of Steele et al.'s SplitMix64 finalizer, the
// standard way to expand one seed into many statistically independent
// streams (it is what math/rand/v2 and Java's SplittableRandom use to
// split generators). One round is a full-avalanche bijection on 64 bits,
// so nearby inputs — consecutive cell indices, small seeds — land on
// unrelated outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SplitMix64 mixes x through one SplitMix64 round. Exposed for callers
// that want the raw bijection; most callers want DeriveSeed.
func SplitMix64(x uint64) uint64 { return splitmix64(x) }

// DeriveSeed derives the index-th child seed from a base seed. The
// mapping is a pure function of (base, index): equal inputs always give
// the same child, distinct indices give unrelated children, and the
// child streams of different bases do not collide in any systematic way
// — exactly what a sweep of independently seeded experiment cells needs.
// DeriveSeed(base, 0) is NOT the identity; callers that want index 0 to
// preserve the base seed (for backward-compatible single-trial runs)
// special-case it themselves.
func DeriveSeed(base int64, index uint64) int64 {
	// Mix the base first, then offset by the index and mix again. The
	// asymmetry matters: a commutative combiner (xor of two mixes) would
	// collide on swapped (base, index) pairs, which real sweeps hit —
	// seed 1 cell 0 vs seed 0 cell 1.
	return int64(splitmix64(splitmix64(uint64(base)) + index))
}
