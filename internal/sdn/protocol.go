// Package sdn is a minimal OpenFlow-style software-defined networking
// control plane: software switches that dial a central controller, a
// binary wire protocol carrying flow-table modifications and counter
// queries, and a controller API the Mayflower Flowserver drives (§3.3.3,
// §5 of the paper).
//
// The protocol is deliberately a small subset of OpenFlow 1.0 — the paper
// only needs rule installation plus per-port and per-flow byte counters.
// Reproduction note: Go had no maintained OpenFlow controller library, so
// this package fills that gap with the narrow interface Mayflower uses.
//
// Message layout (big endian):
//
//	header:  version(1)=1  type(1)  payloadLen(4)  xid(4)
//	HELLO:         datapathID(8)
//	FLOW_MOD:      command(1: 1=add, 2=delete)  flowID(8)  outPort(4)
//	PORT_STATS_REQUEST:  (empty)
//	PORT_STATS_REPLY:    count(4) { port(4) txBytes(8) }*
//	FLOW_STATS_REQUEST:  (empty)
//	FLOW_STATS_REPLY:    count(4) { flowID(8) byteCount(8) }*
//	ECHO_REQUEST/REPLY:  opaque payload
//	ERROR:         code(2)  message(rest)
//
// Like OpenFlow, switches initiate the TCP connection to the controller
// and announce themselves with HELLO; the controller matches replies to
// requests by transaction id (xid).
package sdn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version carried in every header.
const Version = 1

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol message types.
const (
	TypeHello MsgType = iota + 1
	TypeFlowMod
	TypePortStatsRequest
	TypePortStatsReply
	TypeFlowStatsRequest
	TypeFlowStatsReply
	TypeEchoRequest
	TypeEchoReply
	TypeError
)

// FlowMod commands.
const (
	FlowAdd    = uint8(1)
	FlowDelete = uint8(2)
)

// maxPayload bounds a message payload against corrupt headers.
const maxPayload = 1 << 20

// ErrBadMessage is returned when a frame cannot be decoded.
var ErrBadMessage = errors.New("sdn: malformed message")

// message is one decoded protocol frame.
type message struct {
	Type    MsgType
	Xid     uint32
	Payload []byte
}

func writeMessage(w io.Writer, m message) error {
	if len(m.Payload) > maxPayload {
		return fmt.Errorf("sdn: payload too large (%d)", len(m.Payload))
	}
	hdr := make([]byte, 10, 10+len(m.Payload))
	hdr[0] = Version
	hdr[1] = byte(m.Type)
	binary.BigEndian.PutUint32(hdr[2:6], uint32(len(m.Payload)))
	binary.BigEndian.PutUint32(hdr[6:10], m.Xid)
	_, err := w.Write(append(hdr, m.Payload...))
	return err
}

func readMessage(r io.Reader) (message, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return message{}, err
	}
	if hdr[0] != Version {
		return message{}, fmt.Errorf("%w: version %d", ErrBadMessage, hdr[0])
	}
	n := binary.BigEndian.Uint32(hdr[2:6])
	if n > maxPayload {
		return message{}, fmt.Errorf("%w: payload length %d", ErrBadMessage, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return message{}, err
	}
	return message{
		Type:    MsgType(hdr[1]),
		Xid:     binary.BigEndian.Uint32(hdr[6:10]),
		Payload: payload,
	}, nil
}

// PortStat is one port's transmit byte counter.
type PortStat struct {
	Port    uint32
	TxBytes uint64
}

// FlowStat is one flow table entry's byte counter.
type FlowStat struct {
	FlowID    uint64
	ByteCount uint64
}

func encodeHello(dpid uint64) []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, dpid)
	return buf
}

func decodeHello(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, ErrBadMessage
	}
	return binary.BigEndian.Uint64(p), nil
}

func encodeFlowMod(cmd uint8, flowID uint64, outPort uint32) []byte {
	buf := make([]byte, 13)
	buf[0] = cmd
	binary.BigEndian.PutUint64(buf[1:9], flowID)
	binary.BigEndian.PutUint32(buf[9:13], outPort)
	return buf
}

func decodeFlowMod(p []byte) (cmd uint8, flowID uint64, outPort uint32, err error) {
	if len(p) != 13 {
		return 0, 0, 0, ErrBadMessage
	}
	return p[0], binary.BigEndian.Uint64(p[1:9]), binary.BigEndian.Uint32(p[9:13]), nil
}

func encodePortStats(stats []PortStat) []byte {
	buf := make([]byte, 4+12*len(stats))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(stats)))
	off := 4
	for _, s := range stats {
		binary.BigEndian.PutUint32(buf[off:off+4], s.Port)
		binary.BigEndian.PutUint64(buf[off+4:off+12], s.TxBytes)
		off += 12
	}
	return buf
}

func decodePortStats(p []byte) ([]PortStat, error) {
	if len(p) < 4 {
		return nil, ErrBadMessage
	}
	n := binary.BigEndian.Uint32(p[0:4])
	if uint32(len(p)-4) != n*12 {
		return nil, ErrBadMessage
	}
	stats := make([]PortStat, n)
	off := 4
	for i := range stats {
		stats[i] = PortStat{
			Port:    binary.BigEndian.Uint32(p[off : off+4]),
			TxBytes: binary.BigEndian.Uint64(p[off+4 : off+12]),
		}
		off += 12
	}
	return stats, nil
}

func encodeFlowStats(stats []FlowStat) []byte {
	buf := make([]byte, 4+16*len(stats))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(stats)))
	off := 4
	for _, s := range stats {
		binary.BigEndian.PutUint64(buf[off:off+8], s.FlowID)
		binary.BigEndian.PutUint64(buf[off+8:off+16], s.ByteCount)
		off += 16
	}
	return buf
}

func decodeFlowStats(p []byte) ([]FlowStat, error) {
	if len(p) < 4 {
		return nil, ErrBadMessage
	}
	n := binary.BigEndian.Uint32(p[0:4])
	if uint32(len(p)-4) != n*16 {
		return nil, ErrBadMessage
	}
	stats := make([]FlowStat, n)
	off := 4
	for i := range stats {
		stats[i] = FlowStat{
			FlowID:    binary.BigEndian.Uint64(p[off : off+8]),
			ByteCount: binary.BigEndian.Uint64(p[off+8 : off+16]),
		}
		off += 16
	}
	return stats, nil
}

func encodeError(code uint16, msg string) []byte {
	buf := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(buf[0:2], code)
	copy(buf[2:], msg)
	return buf
}

func decodeError(p []byte) (uint16, string, error) {
	if len(p) < 2 {
		return 0, "", ErrBadMessage
	}
	return binary.BigEndian.Uint16(p[0:2]), string(p[2:]), nil
}
