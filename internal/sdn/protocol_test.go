package sdn

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(typeByte uint8, xid uint32, payload []byte) bool {
		if len(payload) > maxPayload {
			payload = payload[:maxPayload]
		}
		m := message{Type: MsgType(typeByte), Xid: xid, Payload: payload}
		var buf bytes.Buffer
		if err := writeMessage(&buf, m); err != nil {
			return false
		}
		got, err := readMessage(&buf)
		if err != nil {
			return false
		}
		return got.Type == m.Type && got.Xid == m.Xid && bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestReadMessageGarbage feeds random bytes to the frame reader: it must
// either produce a well-formed message or fail cleanly, never panic or
// over-read.
func TestReadMessageGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		raw := make([]byte, r.Intn(64))
		r.Read(raw)
		_, err := readMessage(bytes.NewReader(raw))
		// Most random frames fail on version or truncation; success is
		// also legal when the bytes happen to form a frame.
		_ = err
	}
}

func TestReadMessageRejects(t *testing.T) {
	// Wrong version.
	var buf bytes.Buffer
	buf.Write([]byte{9, 1, 0, 0, 0, 0, 0, 0, 0, 1})
	if _, err := readMessage(&buf); err == nil {
		t.Error("wrong version accepted")
	}
	// Oversized payload length.
	buf.Reset()
	buf.Write([]byte{Version, 1, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 1})
	if _, err := readMessage(&buf); err == nil {
		t.Error("oversized payload accepted")
	}
	// Truncated payload.
	buf.Reset()
	buf.Write([]byte{Version, 1, 0, 0, 0, 10, 0, 0, 0, 1, 'x'})
	if _, err := readMessage(&buf); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated payload err = %v", err)
	}
	// Oversized write is refused.
	if err := writeMessage(io.Discard, message{Payload: make([]byte, maxPayload+1)}); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestStatsCodecsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ps := make([]PortStat, r.Intn(20))
		for i := range ps {
			ps[i] = PortStat{Port: r.Uint32(), TxBytes: r.Uint64()}
		}
		got, err := decodePortStats(encodePortStats(ps))
		if err != nil || len(got) != len(ps) {
			return false
		}
		for i := range ps {
			if got[i] != ps[i] {
				return false
			}
		}
		fsStats := make([]FlowStat, r.Intn(20))
		for i := range fsStats {
			fsStats[i] = FlowStat{FlowID: r.Uint64(), ByteCount: r.Uint64()}
		}
		gotF, err := decodeFlowStats(encodeFlowStats(fsStats))
		if err != nil || len(gotF) != len(fsStats) {
			return false
		}
		for i := range fsStats {
			if gotF[i] != fsStats[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	cmd, id, port, err := decodeFlowMod(encodeFlowMod(FlowAdd, 0xdeadbeefcafe, 42))
	if err != nil || cmd != FlowAdd || id != 0xdeadbeefcafe || port != 42 {
		t.Errorf("round trip = %d %d %d %v", cmd, id, port, err)
	}
	dp, err := decodeHello(encodeHello(777))
	if err != nil || dp != 777 {
		t.Errorf("hello round trip = %d %v", dp, err)
	}
}
