package sdn

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// startPlane brings up a controller and n connected switches.
func startPlane(t *testing.T, n int) (*Controller, []*Switch) {
	t.Helper()
	c := NewController()
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	switches := make([]*Switch, n)
	for i := 0; i < n; i++ {
		sw := NewSwitch(uint64(100 + i))
		if err := sw.Connect(addr.String()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sw.Close() })
		switches[i] = sw
	}
	// Wait for all HELLOs to land.
	deadline := time.Now().Add(3 * time.Second)
	for len(c.Switches()) < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(c.Switches()); got != n {
		t.Fatalf("controller sees %d switches, want %d", got, n)
	}
	return c, switches
}

func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestHelloRegistersSwitch(t *testing.T) {
	c, switches := startPlane(t, 3)
	ids := c.Switches()
	if len(ids) != 3 {
		t.Fatalf("Switches() = %v", ids)
	}
	for _, sw := range switches {
		found := false
		for _, id := range ids {
			if id == sw.DatapathID() {
				found = true
			}
		}
		if !found {
			t.Errorf("switch %d not registered", sw.DatapathID())
		}
	}
}

func TestInstallAndRemoveFlow(t *testing.T) {
	c, switches := startPlane(t, 1)
	sw := switches[0]

	if err := c.InstallFlow(sw.DatapathID(), 42, 7); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { _, ok := sw.HasFlow(42); return ok })
	if port, _ := sw.HasFlow(42); port != 7 {
		t.Errorf("flow 42 out port = %d, want 7", port)
	}

	if err := c.RemoveFlow(sw.DatapathID(), 42); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { _, ok := sw.HasFlow(42); return !ok })
	if n := sw.NumFlows(); n != 0 {
		t.Errorf("NumFlows = %d, want 0", n)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	c, switches := startPlane(t, 1)
	sw := switches[0]
	dpid := sw.DatapathID()

	if err := c.InstallFlow(dpid, 1, 3); err != nil {
		t.Fatal(err)
	}
	sw.AddBytes(1, 3, 1000)
	sw.AddBytes(1, 3, 500)
	sw.AddBytes(2, 4, 42)

	fstats, err := c.FlowStats(ctxShort(t), dpid)
	if err != nil {
		t.Fatal(err)
	}
	byFlow := make(map[uint64]uint64)
	for _, s := range fstats {
		byFlow[s.FlowID] = s.ByteCount
	}
	if byFlow[1] != 1500 || byFlow[2] != 42 {
		t.Errorf("flow stats = %v", byFlow)
	}

	pstats, err := c.PortStats(ctxShort(t), dpid)
	if err != nil {
		t.Fatal(err)
	}
	byPort := make(map[uint32]uint64)
	for _, s := range pstats {
		byPort[s.Port] = s.TxBytes
	}
	if byPort[3] != 1500 || byPort[4] != 42 {
		t.Errorf("port stats = %v", byPort)
	}
}

func TestFlowDeleteClearsCounters(t *testing.T) {
	c, switches := startPlane(t, 1)
	sw := switches[0]
	dpid := sw.DatapathID()
	if err := c.InstallFlow(dpid, 9, 1); err != nil {
		t.Fatal(err)
	}
	sw.AddBytes(9, 1, 777)
	if err := c.RemoveFlow(dpid, 9); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		stats, err := c.FlowStats(ctxShort(t), dpid)
		if err != nil {
			return false
		}
		for _, s := range stats {
			if s.FlowID == 9 {
				return false
			}
		}
		return true
	})
}

func TestEcho(t *testing.T) {
	c, switches := startPlane(t, 1)
	payload := []byte("ping-payload")
	got, err := c.Echo(ctxShort(t), switches[0].DatapathID(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("echo = %q, want %q", got, payload)
	}
}

func TestUnknownSwitch(t *testing.T) {
	c, _ := startPlane(t, 1)
	if err := c.InstallFlow(999, 1, 1); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("InstallFlow(999) = %v, want ErrUnknownSwitch", err)
	}
	if _, err := c.PortStats(ctxShort(t), 999); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("PortStats(999) = %v, want ErrUnknownSwitch", err)
	}
}

func TestSwitchDisconnectDeregisters(t *testing.T) {
	c, switches := startPlane(t, 2)
	if err := switches[0].Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(c.Switches()) == 1 })
	if _, err := c.FlowStats(ctxShort(t), switches[0].DatapathID()); err == nil {
		t.Error("stats for disconnected switch succeeded")
	}
	// The remaining switch keeps working.
	if _, err := c.FlowStats(ctxShort(t), switches[1].DatapathID()); err != nil {
		t.Errorf("surviving switch stats: %v", err)
	}
}

func TestControllerCloseUnblocksSwitches(t *testing.T) {
	c, switches := startPlane(t, 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// Switch close must not hang after the controller is gone.
	done := make(chan struct{})
	go func() {
		switches[0].Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("switch Close hung after controller close")
	}
}

func TestSwitchDoubleConnect(t *testing.T) {
	c := NewController()
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sw := NewSwitch(5)
	if err := sw.Connect(addr.String()); err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	if err := sw.Connect(addr.String()); err == nil {
		t.Error("second Connect accepted")
	}
}

func TestMessageCodecs(t *testing.T) {
	if _, err := decodeHello([]byte{1, 2}); !errors.Is(err, ErrBadMessage) {
		t.Error("short hello accepted")
	}
	if _, _, _, err := decodeFlowMod([]byte{1}); !errors.Is(err, ErrBadMessage) {
		t.Error("short flowmod accepted")
	}
	if _, err := decodePortStats([]byte{0, 0, 0, 2, 1}); !errors.Is(err, ErrBadMessage) {
		t.Error("truncated port stats accepted")
	}
	if _, err := decodeFlowStats([]byte{0, 0, 0, 1}); !errors.Is(err, ErrBadMessage) {
		t.Error("truncated flow stats accepted")
	}
	if _, _, err := decodeError([]byte{9}); !errors.Is(err, ErrBadMessage) {
		t.Error("short error accepted")
	}

	// Round trips.
	ps, err := decodePortStats(encodePortStats([]PortStat{{Port: 1, TxBytes: 2}, {Port: 3, TxBytes: 4}}))
	if err != nil || len(ps) != 2 || ps[1].TxBytes != 4 {
		t.Errorf("port stats round trip: %v %v", ps, err)
	}
	fs, err := decodeFlowStats(encodeFlowStats([]FlowStat{{FlowID: 7, ByteCount: 8}}))
	if err != nil || len(fs) != 1 || fs[0].FlowID != 7 {
		t.Errorf("flow stats round trip: %v %v", fs, err)
	}
	code, msg, err := decodeError(encodeError(3, "oops"))
	if err != nil || code != 3 || msg != "oops" {
		t.Errorf("error round trip: %d %q %v", code, msg, err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}
