package sdn

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// ErrUnknownSwitch is returned when addressing a datapath id that has not
// said HELLO.
var ErrUnknownSwitch = errors.New("sdn: unknown switch")

// Controller accepts switch connections and exposes the control-plane
// operations the Flowserver needs: flow installation/removal and counter
// collection. All methods are safe for concurrent use.
type Controller struct {
	mu       sync.Mutex
	ln       net.Listener
	switches map[uint64]*switchConn
	closed   bool
	wg       sync.WaitGroup
}

type switchConn struct {
	dpid uint64
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	nextXid uint32
	pending map[uint32]chan message
}

// NewController creates an idle controller.
func NewController() *Controller {
	return &Controller{switches: make(map[uint64]*switchConn)}
}

// Listen starts accepting switch connections on addr and returns the
// bound address.
func (c *Controller) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return nil, errors.New("sdn: controller closed")
	}
	c.ln = ln
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.serveSwitch(conn)
			}()
		}
	}()
	return ln.Addr(), nil
}

func (c *Controller) serveSwitch(conn net.Conn) {
	defer conn.Close()

	hello, err := readMessage(conn)
	if err != nil || hello.Type != TypeHello {
		return
	}
	dpid, err := decodeHello(hello.Payload)
	if err != nil {
		return
	}
	sc := &switchConn{dpid: dpid, conn: conn, pending: make(map[uint32]chan message)}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.switches[dpid] = sc
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if c.switches[dpid] == sc {
			delete(c.switches, dpid)
		}
		c.mu.Unlock()
		sc.failAll()
	}()

	for {
		m, err := readMessage(conn)
		if err != nil {
			return
		}
		sc.mu.Lock()
		ch := sc.pending[m.Xid]
		delete(sc.pending, m.Xid)
		sc.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

func (sc *switchConn) failAll() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for xid, ch := range sc.pending {
		delete(sc.pending, xid)
		close(ch)
	}
}

// send transmits a message and, if wantReply, returns a channel the reply
// will arrive on.
func (sc *switchConn) send(t MsgType, payload []byte, wantReply bool) (chan message, error) {
	var ch chan message
	var xid uint32
	if wantReply {
		ch = make(chan message, 1)
		sc.mu.Lock()
		sc.nextXid++
		xid = sc.nextXid
		sc.pending[xid] = ch
		sc.mu.Unlock()
	}
	err := func() error {
		sc.writeMu.Lock()
		defer sc.writeMu.Unlock()
		return writeMessage(sc.conn, message{Type: t, Xid: xid, Payload: payload})
	}()
	if err != nil {
		if wantReply {
			sc.mu.Lock()
			delete(sc.pending, xid)
			sc.mu.Unlock()
		}
		return nil, err
	}
	return ch, nil
}

func (c *Controller) lookup(dpid uint64) (*switchConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc, ok := c.switches[dpid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSwitch, dpid)
	}
	return sc, nil
}

// Switches lists the datapath ids of connected switches.
func (c *Controller) Switches() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.switches))
	for id := range c.switches {
		out = append(out, id)
	}
	return out
}

// InstallFlow adds a flow entry (flowID → outPort) on a switch.
func (c *Controller) InstallFlow(dpid, flowID uint64, outPort uint32) error {
	sc, err := c.lookup(dpid)
	if err != nil {
		return err
	}
	_, err = sc.send(TypeFlowMod, encodeFlowMod(FlowAdd, flowID, outPort), false)
	return err
}

// RemoveFlow deletes a flow entry from a switch.
func (c *Controller) RemoveFlow(dpid, flowID uint64) error {
	sc, err := c.lookup(dpid)
	if err != nil {
		return err
	}
	_, err = sc.send(TypeFlowMod, encodeFlowMod(FlowDelete, flowID, 0), false)
	return err
}

// PortStats fetches the transmit byte counters of every port on a switch.
func (c *Controller) PortStats(ctx context.Context, dpid uint64) ([]PortStat, error) {
	m, err := c.roundTrip(ctx, dpid, TypePortStatsRequest, nil, TypePortStatsReply)
	if err != nil {
		return nil, err
	}
	return decodePortStats(m.Payload)
}

// FlowStats fetches the byte counters of every flow entry on a switch.
func (c *Controller) FlowStats(ctx context.Context, dpid uint64) ([]FlowStat, error) {
	m, err := c.roundTrip(ctx, dpid, TypeFlowStatsRequest, nil, TypeFlowStatsReply)
	if err != nil {
		return nil, err
	}
	return decodeFlowStats(m.Payload)
}

// Echo round-trips an opaque payload (liveness probe).
func (c *Controller) Echo(ctx context.Context, dpid uint64, payload []byte) ([]byte, error) {
	m, err := c.roundTrip(ctx, dpid, TypeEchoRequest, payload, TypeEchoReply)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

func (c *Controller) roundTrip(ctx context.Context, dpid uint64, reqType MsgType, payload []byte, wantType MsgType) (message, error) {
	sc, err := c.lookup(dpid)
	if err != nil {
		return message{}, err
	}
	ch, err := sc.send(reqType, payload, true)
	if err != nil {
		return message{}, err
	}
	select {
	case <-ctx.Done():
		return message{}, ctx.Err()
	case m, ok := <-ch:
		if !ok {
			return message{}, fmt.Errorf("sdn: switch %d disconnected", dpid)
		}
		if m.Type == TypeError {
			code, msg, derr := decodeError(m.Payload)
			if derr != nil {
				return message{}, derr
			}
			return message{}, fmt.Errorf("sdn: switch %d error %d: %s", dpid, code, msg)
		}
		if m.Type != wantType {
			return message{}, fmt.Errorf("sdn: switch %d replied type %d, want %d", dpid, m.Type, wantType)
		}
		return m, nil
	}
}

// Close stops the controller and disconnects every switch.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	conns := make([]*switchConn, 0, len(c.switches))
	for _, sc := range c.switches {
		conns = append(conns, sc)
	}
	c.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, sc := range conns {
		sc.conn.Close()
	}
	c.wg.Wait()
	return err
}
