package sdn

import (
	"fmt"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// CounterBridge mirrors network-fabric byte credits into switch agents'
// OpenFlow-style counters: it implements fabric.CounterSink, resolving
// each directed link to the switch driving it and crediting that
// switch's per-flow and per-port counters (the port number is the link
// id, matching the flow rules the testbed installs). This is the whole
// coupling between the data plane and the SDN agents — the fabric does
// not know switches exist, and the switches cannot tell bridged credits
// from a hardware ASIC's.
type CounterBridge struct {
	topo *topology.Topology

	mu       sync.RWMutex
	switches map[topology.NodeID]*Switch
}

// NewCounterBridge creates an empty bridge over a topology.
func NewCounterBridge(topo *topology.Topology) *CounterBridge {
	return &CounterBridge{topo: topo, switches: make(map[topology.NodeID]*Switch)}
}

// Attach binds a switch agent to a topology switch node, so credits for
// links leaving that node land in the agent's counters.
func (b *CounterBridge) Attach(node topology.NodeID, sw *Switch) error {
	n := b.topo.Node(node)
	if n.Kind == topology.KindHost {
		return fmt.Errorf("sdn: node %d (%s) is a host, not a switch", node, n.Name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.switches[node]; ok {
		return fmt.Errorf("sdn: switch already attached to node %d", node)
	}
	b.switches[node] = sw
	return nil
}

// CreditBytes implements fabric.CounterSink. Credits for links driven by
// hosts (or by switch nodes with no attached agent) are dropped — hosts
// have no switch ASIC to count them.
func (b *CounterBridge) CreditBytes(flowID uint64, link topology.LinkID, bytes uint64) {
	from := b.topo.Link(link).From
	b.mu.RLock()
	sw := b.switches[from]
	b.mu.RUnlock()
	if sw != nil {
		sw.AddBytes(flowID, uint32(link), bytes)
	}
}
