package sdn

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Switch is a software OpenFlow-style switch agent. It holds a flow table
// and byte counters, dials the controller, and answers FlowMod and stats
// messages. The data plane (package emunet) credits bytes to its counters
// as transfers progress, exactly as a hardware switch's ASIC would bump
// counters as frames pass through.
type Switch struct {
	dpid uint64

	mu      sync.Mutex
	flows   map[uint64]uint32 // flowID → out port
	flowTx  map[uint64]uint64 // flowID → bytes forwarded
	portTx  map[uint32]uint64 // port → bytes transmitted
	conn    net.Conn
	closed  bool
	writeMu sync.Mutex
	done    chan struct{}
}

// NewSwitch creates a switch agent with the given datapath id.
func NewSwitch(dpid uint64) *Switch {
	return &Switch{
		dpid:   dpid,
		flows:  make(map[uint64]uint32),
		flowTx: make(map[uint64]uint64),
		portTx: make(map[uint32]uint64),
		done:   make(chan struct{}),
	}
}

// DatapathID returns the switch's identity.
func (sw *Switch) DatapathID() uint64 { return sw.dpid }

// Connect dials the controller at addr, sends HELLO, and starts serving
// control messages in the background until Close or connection loss.
func (sw *Switch) Connect(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("sdn: switch %d dial: %w", sw.dpid, err)
	}
	sw.mu.Lock()
	if sw.closed {
		sw.mu.Unlock()
		conn.Close()
		return errors.New("sdn: switch closed")
	}
	if sw.conn != nil {
		sw.mu.Unlock()
		conn.Close()
		return errors.New("sdn: switch already connected")
	}
	sw.conn = conn
	sw.mu.Unlock()

	if err := writeMessage(conn, message{Type: TypeHello, Payload: encodeHello(sw.dpid)}); err != nil {
		conn.Close()
		return fmt.Errorf("sdn: switch %d hello: %w", sw.dpid, err)
	}
	go sw.serve(conn)
	return nil
}

func (sw *Switch) serve(conn net.Conn) {
	defer close(sw.done)
	for {
		m, err := readMessage(conn)
		if err != nil {
			return
		}
		sw.handle(conn, m)
	}
}

func (sw *Switch) handle(conn net.Conn, m message) {
	reply := func(t MsgType, payload []byte) {
		sw.writeMu.Lock()
		defer sw.writeMu.Unlock()
		_ = writeMessage(conn, message{Type: t, Xid: m.Xid, Payload: payload})
	}
	switch m.Type {
	case TypeFlowMod:
		cmd, flowID, outPort, err := decodeFlowMod(m.Payload)
		if err != nil {
			reply(TypeError, encodeError(1, err.Error()))
			return
		}
		sw.mu.Lock()
		switch cmd {
		case FlowAdd:
			sw.flows[flowID] = outPort
		case FlowDelete:
			delete(sw.flows, flowID)
			delete(sw.flowTx, flowID)
		}
		sw.mu.Unlock()
		// FlowMod is fire-and-forget, like OpenFlow (no barrier support).
	case TypePortStatsRequest:
		sw.mu.Lock()
		stats := make([]PortStat, 0, len(sw.portTx))
		for p, tx := range sw.portTx {
			stats = append(stats, PortStat{Port: p, TxBytes: tx})
		}
		sw.mu.Unlock()
		reply(TypePortStatsReply, encodePortStats(stats))
	case TypeFlowStatsRequest:
		sw.mu.Lock()
		stats := make([]FlowStat, 0, len(sw.flowTx))
		for f, tx := range sw.flowTx {
			stats = append(stats, FlowStat{FlowID: f, ByteCount: tx})
		}
		sw.mu.Unlock()
		reply(TypeFlowStatsReply, encodeFlowStats(stats))
	case TypeEchoRequest:
		reply(TypeEchoReply, m.Payload)
	default:
		reply(TypeError, encodeError(2, fmt.Sprintf("unsupported type %d", m.Type)))
	}
}

// AddBytes is the data-plane hook: record that the switch forwarded n
// bytes of the given flow out of the given port.
func (sw *Switch) AddBytes(flowID uint64, port uint32, n uint64) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.flowTx[flowID] += n
	sw.portTx[port] += n
}

// HasFlow reports whether a flow entry is installed (for tests and for
// data planes that check admission).
func (sw *Switch) HasFlow(flowID uint64) (outPort uint32, ok bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	p, ok := sw.flows[flowID]
	return p, ok
}

// NumFlows returns the number of installed flow entries.
func (sw *Switch) NumFlows() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return len(sw.flows)
}

// Close disconnects from the controller.
func (sw *Switch) Close() error {
	sw.mu.Lock()
	if sw.closed {
		sw.mu.Unlock()
		return nil
	}
	sw.closed = true
	conn := sw.conn
	sw.mu.Unlock()
	if conn != nil {
		err := conn.Close()
		<-sw.done
		return err
	}
	return nil
}
