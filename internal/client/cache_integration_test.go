package client

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
)

// newLeasedClient builds a client with a short metadata lease and a
// private metrics registry, so tests can watch which cache path served
// each operation.
func newLeasedClient(t *testing.T, tc *testCluster, host string, ttl time.Duration) (*Client, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	c, err := New(Options{
		NameserverAddr: tc.nsAddr,
		FlowserverAddr: tc.fsAddr,
		Host:           host,
		Consistency:    Sequential,
		Rand:           rand.New(rand.NewSource(5)),
		CacheTTL:       ttl,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, reg
}

// secondClientHost returns the other reserved (non-dataserver) host.
func secondClientHost(tc *testCluster) string {
	hosts := tc.topo.Hosts()
	return tc.topo.Node(hosts[len(hosts)-2]).Name
}

// TestStaleReadAfterDeleteTwoClients: client B holds a live lease on a
// file that client A deletes. The lease contract allows B to serve the
// cached record until the lease runs out, but no longer: one lease after
// the delete, B must observe ErrNotFound — and must learn it through the
// batched Validate renewal, not a full Lookup.
func TestStaleReadAfterDeleteTwoClients(t *testing.T) {
	tc := defaultCluster(t)
	writer := newClient(t, tc, clientHost(tc), true, Sequential)
	const ttl = 100 * time.Millisecond
	reader, reg := newLeasedClient(t, tc, secondClientHost(tc), ttl)
	ctx := context.Background()

	payload := bytes.Repeat([]byte("mayflower"), 1024)
	if _, err := writer.Create(ctx, "sr/doc", nameserver.CreateOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Append(ctx, "sr/doc", payload); err != nil {
		t.Fatal(err)
	}
	got, err := reader.ReadAll(ctx, "sr/doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("prime read returned wrong bytes")
	}

	if err := writer.Delete(ctx, "sr/doc"); err != nil {
		t.Fatal(err)
	}
	lookupsAfterPrime := reg.Counter("client.rpc.method.ns.Lookup.calls").Value()

	// One lease past the delete the reader must see the file gone.
	time.Sleep(ttl + 50*time.Millisecond)
	if _, err := reader.ReadAll(ctx, "sr/doc"); !errors.Is(err, nameserver.ErrNotFound) {
		t.Fatalf("read one lease after delete: err = %v, want ErrNotFound", err)
	}
	if extra := reg.Counter("client.rpc.method.ns.Lookup.calls").Value() - lookupsAfterPrime; extra != 0 {
		t.Errorf("delete discovered via %d full Lookups, want 0 (batched Validate)", extra)
	}
	// The gone verdict is negatively cached: an immediate retry costs no
	// further nameserver round trip of either kind.
	validates := reg.Counter("client.rpc.method.ns.Validate.calls").Value()
	if _, err := reader.ReadAll(ctx, "sr/doc"); !errors.Is(err, nameserver.ErrNotFound) {
		t.Fatalf("second read after delete: err = %v", err)
	}
	if got := reg.Counter("client.rpc.method.ns.Validate.calls").Value(); got != validates {
		t.Errorf("negative entry not cached: %d extra Validate calls", got-validates)
	}
}

// TestLeaseRevalidationAfterReplicaFailover: the nameserver replaces a
// file's primary (what a repair pass does after a dataserver death)
// while a reader holds a live lease on the old replica set. Within one
// lease the reader's metadata must converge on the promoted primary via
// lease revalidation — no error-driven invalidation, no full Lookup.
func TestLeaseRevalidationAfterReplicaFailover(t *testing.T) {
	tc := defaultCluster(t)
	writer := newClient(t, tc, clientHost(tc), true, Sequential)
	const ttl = 100 * time.Millisecond
	reader, reg := newLeasedClient(t, tc, secondClientHost(tc), ttl)
	ctx := context.Background()

	payload := bytes.Repeat([]byte("failover"), 2048)
	if _, err := writer.Create(ctx, "fo/file", nameserver.CreateOptions{Replication: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Append(ctx, "fo/file", payload); err != nil {
		t.Fatal(err)
	}
	info, err := reader.Stat(ctx, "fo/file")
	if err != nil {
		t.Fatal(err)
	}
	victim := info.Primary().ServerID
	survivor := info.Replicas[1].ServerID

	// Replace the primary on the nameserver, as a repair pass would after
	// declaring it dead: the first survivor is promoted, the newcomer
	// appended.
	var spare nameserver.ServerInfo
	inSet := func(id string) bool {
		for _, r := range info.Replicas {
			if r.ServerID == id {
				return true
			}
		}
		return false
	}
	for _, si := range tc.nsSvc.Servers() {
		if !inSet(si.ID) {
			spare = si
			break
		}
	}
	if spare.ID == "" {
		t.Fatal("no spare dataserver outside the replica set")
	}
	err = tc.nsSvc.ReplaceReplica("fo/file", victim, nameserver.ReplicaLoc{
		ServerID:    spare.ID,
		ControlAddr: spare.ControlAddr,
		DataAddr:    spare.DataAddr,
		Host:        spare.Host,
	})
	if err != nil {
		t.Fatal(err)
	}
	lookupsPrimed := reg.Counter("client.rpc.method.ns.Lookup.calls").Value()

	// One lease later the reader's view must show the promoted primary.
	time.Sleep(ttl + 50*time.Millisecond)
	after, err := reader.Stat(ctx, "fo/file")
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Primary().ServerID; got != survivor {
		t.Errorf("post-failover primary = %s, want promoted survivor %s", got, survivor)
	}
	if after.Version <= info.Version {
		t.Errorf("replacement did not bump the record version: %d -> %d", info.Version, after.Version)
	}
	if extra := reg.Counter("client.rpc.method.ns.Lookup.calls").Value() - lookupsPrimed; extra != 0 {
		t.Errorf("failover discovered via %d full Lookups, want 0 (batched Validate)", extra)
	}
	if reg.Counter("client.cache_stale_served").Value() == 0 {
		t.Error("revalidation did not flag the obsoleted record as stale")
	}
	// And the data still reads back through the new replica set.
	got, err := reader.ReadAll(ctx, "fo/file")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("post-failover read returned wrong bytes")
	}
}
