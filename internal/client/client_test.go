package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// testCluster is a full in-process Mayflower deployment: nameserver,
// Flowserver, and a dataserver on a subset of topology hosts.
type testCluster struct {
	topo    *topology.Topology
	nsSvc   *nameserver.Service
	nsAddr  string
	fsSrv   *flowserver.Server
	fsAddr  string
	servers map[string]*dataserver.Server // host name → server
	assigns *assignCounter
}

type assignCounter struct {
	mu sync.Mutex
	n  int
	// perSelect records how many assignments each Select produced.
	split int
}

// startCluster boots the deployment. dataserverHosts selects which
// topology hosts run dataservers.
func startCluster(t *testing.T, topoCfg topology.Config, dataserverHosts []topology.NodeID, fsOpts flowserver.Options) *testCluster {
	t.Helper()
	topo, err := topology.New(topoCfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{topo: topo, servers: make(map[string]*dataserver.Server), assigns: &assignCounter{}}

	// Nameserver.
	store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	tc.nsSvc, err = nameserver.NewService(store, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	nsSrv := wire.NewServer()
	if err := nameserver.RegisterRPC(nsSrv, tc.nsSvc); err != nil {
		t.Fatal(err)
	}
	nsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go nsSrv.Serve(nsLn)
	t.Cleanup(func() { nsSrv.Close() })
	tc.nsAddr = nsLn.Addr().String()

	// Flowserver.
	tc.fsSrv = flowserver.New(topo, fsOpts)
	fsWire := wire.NewServer()
	hooks := flowserver.Hooks{OnAssign: func(a flowserver.Assignment) {
		tc.assigns.mu.Lock()
		tc.assigns.n++
		tc.assigns.mu.Unlock()
	}}
	if err := flowserver.RegisterRPC(fsWire, tc.fsSrv, topo, hooks); err != nil {
		t.Fatal(err)
	}
	fsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fsWire.Serve(fsLn)
	t.Cleanup(func() { fsWire.Close() })
	tc.fsAddr = fsLn.Addr().String()

	// Dataservers.
	for i, h := range dataserverHosts {
		node := topo.Node(h)
		ds, err := dataserver.New(dataserver.Config{
			ID:   fmt.Sprintf("ds-%d", i),
			Root: t.TempDir(),
			Host: node.Name,
			Pod:  node.Pod,
			Rack: node.Rack,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dataLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Start(ctlLn, dataLn, tc.nsAddr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		tc.servers[node.Name] = ds
	}
	return tc
}

// smallTopo is 2 pods × 2 racks × 2 hosts.
func smallTopo() topology.Config {
	return topology.Config{
		Pods: 2, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: topology.Mbps(100), EdgeAggLinkBps: topology.Mbps(100),
		AggCoreLinkBps: topology.Mbps(100),
	}
}

func defaultCluster(t *testing.T) *testCluster {
	cfg := smallTopo()
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dataservers on six hosts; clients run on the remaining two.
	hosts := topo.Hosts()
	return startCluster(t, cfg, hosts[:6], flowserver.Options{})
}

func newClient(t *testing.T, tc *testCluster, host string, withFS bool, mode Consistency) *Client {
	t.Helper()
	opts := Options{
		NameserverAddr: tc.nsAddr,
		Host:           host,
		Consistency:    mode,
		Rand:           rand.New(rand.NewSource(3)),
	}
	if withFS {
		opts.FlowserverAddr = tc.fsAddr
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func clientHost(tc *testCluster) string {
	hosts := tc.topo.Hosts()
	return tc.topo.Node(hosts[len(hosts)-1]).Name
}

func TestCreateAppendReadDelete(t *testing.T) {
	tc := defaultCluster(t)
	c := newClient(t, tc, clientHost(tc), true, Sequential)
	ctx := context.Background()

	info, err := c.Create(ctx, "docs/readme", nameserver.CreateOptions{ChunkSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Replicas) != 3 {
		t.Fatalf("replicas = %d", len(info.Replicas))
	}

	payload := bytes.Repeat([]byte("mayflower "), 20) // 200 bytes, 4 chunks
	size, err := c.Append(ctx, "docs/readme", payload)
	if err != nil {
		t.Fatal(err)
	}
	if size != 200 {
		t.Fatalf("size = %d, want 200", size)
	}

	got, err := c.ReadAll(ctx, "docs/readme")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("ReadAll returned wrong bytes")
	}

	// Ranged read crossing chunk boundaries.
	got, err = c.ReadAt(ctx, "docs/readme", 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[60:70]) {
		t.Fatalf("ReadAt = %q, want %q", got, payload[60:70])
	}

	if err := c.Delete(ctx, "docs/readme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAll(ctx, "docs/readme"); !errors.Is(err, nameserver.ErrNotFound) {
		t.Errorf("ReadAll after delete err = %v", err)
	}
	// Every dataserver dropped the chunks.
	for host, ds := range tc.servers {
		_ = host
		cc := rpc.NewPeer(ds.ControlAddr(), rpc.Options{})
		var recs []nameserver.FileRecord
		if err := cc.Call(ctx, dataserver.MethodListFiles, struct{}{}, &recs); err != nil {
			t.Fatal(err)
		}
		cc.Close()
		if len(recs) != 0 {
			t.Errorf("dataserver %s still holds %d files", host, len(recs))
		}
	}
	// Flowserver flow table drained.
	if n := tc.fsSrv.NumFlows(); n != 0 {
		t.Errorf("flowserver still tracks %d flows", n)
	}
}

func TestReadWithoutFlowserver(t *testing.T) {
	tc := defaultCluster(t)
	c := newClient(t, tc, clientHost(tc), false, Sequential)
	ctx := context.Background()

	if _, err := c.Create(ctx, "nofs", nameserver.CreateOptions{ChunkSize: 32}); err != nil {
		t.Fatal(err)
	}
	payload := []byte("reads fall back to a random replica")
	if _, err := c.Append(ctx, "nofs", payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadAll(ctx, "nofs")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("wrong bytes")
	}
}

func TestStrongConsistencyReads(t *testing.T) {
	tc := defaultCluster(t)
	c := newClient(t, tc, clientHost(tc), true, Strong)
	ctx := context.Background()

	if _, err := c.Create(ctx, "strong", nameserver.CreateOptions{ChunkSize: 16}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("ab"), 25) // 50 bytes: chunks 16/16/16/2
	if _, err := c.Append(ctx, "strong", payload); err != nil {
		t.Fatal(err)
	}
	// Whole-file read spans immutable chunks plus the tail.
	got, err := c.ReadAll(ctx, "strong")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("wrong bytes under strong consistency")
	}
	// A tail-only read.
	got, err = c.ReadAt(ctx, "strong", 48, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[48:]) {
		t.Fatal("wrong tail bytes")
	}
}

func TestAppendVisibleToOtherClients(t *testing.T) {
	tc := defaultCluster(t)
	writer := newClient(t, tc, clientHost(tc), true, Sequential)
	hosts := tc.topo.Hosts()
	readerHost := tc.topo.Node(hosts[len(hosts)-2]).Name
	reader := newClient(t, tc, readerHost, true, Sequential)
	ctx := context.Background()

	if _, err := writer.Create(ctx, "shared", nameserver.CreateOptions{ChunkSize: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Append(ctx, "shared", []byte("first")); err != nil {
		t.Fatal(err)
	}
	got, err := reader.ReadAll(ctx, "shared")
	if err != nil || string(got) != "first" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	// The reader's metadata is now cached; a later append must still be
	// visible because size is revalidated against the dataserver.
	if _, err := writer.Append(ctx, "shared", []byte(" second")); err != nil {
		t.Fatal(err)
	}
	got, err = reader.ReadAll(ctx, "shared")
	if err != nil || string(got) != "first second" {
		t.Fatalf("ReadAll after append = %q, %v", got, err)
	}
}

func TestReadBeyondSizeFails(t *testing.T) {
	tc := defaultCluster(t)
	c := newClient(t, tc, clientHost(tc), true, Sequential)
	ctx := context.Background()
	if _, err := c.Create(ctx, "short", nameserver.CreateOptions{ChunkSize: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, "short", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(ctx, "short", 3, 10); err == nil {
		t.Error("read beyond size succeeded")
	}
	if _, err := c.ReadAt(ctx, "short", -1, 2); err == nil {
		t.Error("negative offset accepted")
	}
	if got, err := c.ReadAt(ctx, "short", 2, 0); err != nil || got != nil {
		t.Errorf("zero-length read = %v, %v", got, err)
	}
}

func TestReadFailoverToPrimary(t *testing.T) {
	tc := defaultCluster(t)
	c := newClient(t, tc, clientHost(tc), false, Sequential)
	ctx := context.Background()

	info, err := c.Create(ctx, "failover", nameserver.CreateOptions{ChunkSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1000)
	if _, err := c.Append(ctx, "failover", payload); err != nil {
		t.Fatal(err)
	}
	// Kill both secondary replicas; every read must fail over to the
	// primary regardless of which replica the client picks.
	for _, rep := range info.Replicas[1:] {
		tc.servers[rep.Host].Close()
	}
	for i := 0; i < 5; i++ {
		got, err := c.ReadAll(ctx, "failover")
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("read %d returned wrong bytes", i)
		}
	}
}

func TestMultiReplicaSplitRead(t *testing.T) {
	// Client pod 0; replicas in pods 1 and 2 behind disjoint 10 Mbps
	// uplinks while the client's downlink is 100 Mbps: the Flowserver
	// should split reads across both replicas (§4.3).
	cfg := topology.Config{
		Pods: 3, RacksPerPod: 1, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: topology.Mbps(100), EdgeAggLinkBps: topology.Mbps(10),
		AggCoreLinkBps: topology.Mbps(10),
	}
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dsHosts := []topology.NodeID{
		topo.HostAt(1, 0, 0), topo.HostAt(2, 0, 0),
	}
	tc := startCluster(t, cfg, dsHosts, flowserver.Options{MultiReplica: true})
	c := newClient(t, tc, topo.Node(topo.HostAt(0, 0, 0)).Name, true, Sequential)
	ctx := context.Background()

	if _, err := c.Create(ctx, "split", nameserver.CreateOptions{ChunkSize: 1 << 20, Replication: 2}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100*1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := c.Append(ctx, "split", payload); err != nil {
		t.Fatal(err)
	}

	got, err := c.ReadAll(ctx, "split")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("split read returned wrong bytes")
	}
	tc.assigns.mu.Lock()
	n := tc.assigns.n
	tc.assigns.mu.Unlock()
	if n < 2 {
		t.Errorf("expected a split read (>=2 assignments), saw %d", n)
	}
	if fn := tc.fsSrv.NumFlows(); fn != 0 {
		t.Errorf("flowserver still tracks %d flows after split read", fn)
	}
}

func TestListAndStat(t *testing.T) {
	tc := defaultCluster(t)
	c := newClient(t, tc, clientHost(tc), true, Sequential)
	ctx := context.Background()

	for _, name := range []string{"a/1", "a/2", "b/1"} {
		if _, err := c.Create(ctx, name, nameserver.CreateOptions{ChunkSize: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Append(ctx, "a/1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	files, err := c.List(ctx, "a/")
	if err != nil || len(files) != 2 {
		t.Fatalf("List = %v, %v", files, err)
	}
	st, err := c.Stat(ctx, "a/1")
	if err != nil {
		t.Fatal(err)
	}
	if st.SizeBytes != 5 {
		t.Errorf("Stat size = %d, want 5", st.SizeBytes)
	}
}

func TestLargeAppendSplits(t *testing.T) {
	tc := defaultCluster(t)
	c := newClient(t, tc, clientHost(tc), true, Sequential)
	ctx := context.Background()
	if _, err := c.Create(ctx, "large", nameserver.CreateOptions{ChunkSize: 6 << 20}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, dataserver.MaxAppend+dataserver.MaxAppend/2)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	size, err := c.Append(ctx, "large", payload)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Fatalf("size = %d, want %d", size, len(payload))
	}
	got, err := c.ReadAll(ctx, "large")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large append round trip failed")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing nameserver address accepted")
	}
	if _, err := New(Options{NameserverAddr: "127.0.0.1:1"}); err == nil {
		t.Error("dial to dead nameserver succeeded")
	}
}

func TestContextDeadlinePropagates(t *testing.T) {
	tc := defaultCluster(t)
	c := newClient(t, tc, clientHost(tc), true, Sequential)

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := c.Create(ctx, "deadline", nameserver.CreateOptions{}); err == nil {
		t.Error("expired context accepted")
	}
}
