package client

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkLookupCached measures the metadata hot path a read job pays
// per file open when its lease is live: one cache Get, no nameserver
// round trip. This is the number the lease cache buys over the ~ms cost
// of a Lookup RPC.
func BenchmarkLookupCached(b *testing.B) {
	tc := newTestCache(4096, 1e9)
	ctx := context.Background()
	const files = 1024
	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("bench/f%04d", i)
		tc.put(names[i], int64(i))
		if _, err := tc.Get(ctx, names[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.Get(ctx, names[i%files]); err != nil {
			b.Fatal(err)
		}
	}
}
