package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
)

// This file is the client's fault-handling read path: per-replica attempt
// timeouts, exponential backoff between failover passes, and
// locality-order replica selection for when the Flowserver is
// unreachable. The Flowserver is an optimizer, not a dependency (§3.3 of
// the paper); losing it must degrade read placement, never availability.

// Locator maps a topology host name to its (pod, rack) coordinates; ok is
// false for unknown hosts.
type Locator func(host string) (pod, rack int, ok bool)

// defaultLocate parses the repository's canonical host naming scheme,
// "host-p<pod>-r<rack>-h<idx>".
func defaultLocate(host string) (pod, rack int, ok bool) {
	var h int
	if _, err := fmt.Sscanf(host, "host-p%d-r%d-h%d", &pod, &rack, &h); err != nil {
		return 0, 0, false
	}
	return pod, rack, true
}

// localityRank scores a replica host's network distance from this client:
// 0 same host, 1 same rack, 2 same pod, 3 other pod or unknown.
func (c *Client) localityRank(host string) int {
	if host != "" && host == c.opts.Host {
		return 0
	}
	cp, cr, ok := c.opts.Locate(c.opts.Host)
	if !ok {
		return 3
	}
	p, r, ok := c.opts.Locate(host)
	if !ok {
		return 3
	}
	switch {
	case p == cp && r == cr:
		return 1
	case p == cp:
		return 2
	default:
		return 3
	}
}

// orderCandidates returns the replicas to try for a read, best first:
// first (when non-nil) pinned to the front, the rest in locality order.
// Ties keep replica-set order, so candidate lists are deterministic given
// the metadata — a fault-injection run with a fixed seed replays the same
// failover sequence.
func (c *Client) orderCandidates(info nameserver.FileInfo, first *nameserver.ReplicaLoc) []nameserver.ReplicaLoc {
	out := make([]nameserver.ReplicaLoc, 0, len(info.Replicas)+1)
	if first != nil {
		out = append(out, *first)
	}
	rest := make([]nameserver.ReplicaLoc, 0, len(info.Replicas))
	for _, rep := range info.Replicas {
		if first != nil && rep.ServerID == first.ServerID {
			continue
		}
		rest = append(rest, rep)
	}
	sort.SliceStable(rest, func(i, j int) bool {
		return c.localityRank(rest[i].Host) < c.localityRank(rest[j].Host)
	})
	return append(out, rest...)
}

// flowTagger supplies the flow id (and an optional completion callback)
// to tag a read attempt against a given replica with. Attempts against
// replicas the tagger does not know run unscheduled (flow id 0) — the
// degraded, control-plane-invisible mode.
type flowTagger func(rep nameserver.ReplicaLoc) (flowID uint64, done func())

// readWithFailover fills buf from [offset, offset+len(buf)), retrying
// across the candidate replicas with a per-attempt timeout and exponential
// backoff between passes. Between passes the file metadata is refreshed so
// a repaired replica set (or a promoted primary, when primaryOnly) is
// picked up. It returns the joined attempt errors only after every pass
// has failed — the read path never hangs on a single dead replica.
func (c *Client) readWithFailover(ctx context.Context, name string, info nameserver.FileInfo,
	cands []nameserver.ReplicaLoc, tag flowTagger, offset int64, buf []byte, primaryOnly bool) error {

	retries := c.opts.ReadRetries
	var errs []error
	for pass := 0; pass < retries; pass++ {
		if pass > 0 {
			c.met.failoverPasses.Inc()
			if err := c.backoff(ctx, pass); err != nil {
				return errors.Join(append(errs, err)...)
			}
			c.invalidate(name)
			fresh, err := c.fileInfo(ctx, name)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			info = fresh
			if primaryOnly {
				cands = []nameserver.ReplicaLoc{fresh.Primary()}
			} else {
				cands = c.orderCandidates(fresh, nil)
			}
			tag = nil // the original schedule no longer applies
		}
		for _, rep := range cands {
			var flowID uint64
			var done func()
			if tag != nil {
				flowID, done = tag(rep)
			}
			err := c.readAttempt(ctx, name, info, rep, flowID, offset, buf)
			if done != nil {
				done()
			}
			if err == nil {
				c.met.attemptsOK.Inc()
				return nil
			}
			c.met.attemptsErr.Inc()
			errs = append(errs, err)
			if ctx.Err() != nil {
				return errors.Join(errs...)
			}
		}
	}
	return fmt.Errorf("client: read %s failed on every replica: %w", name, errors.Join(errs...))
}

// readAttempt performs one bounded read attempt against one replica.
func (c *Client) readAttempt(ctx context.Context, name string, info nameserver.FileInfo,
	rep nameserver.ReplicaLoc, flowID uint64, offset int64, buf []byte) error {
	if t := c.opts.ReadTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	return c.readOnce(ctx, name, info, rep, flowID, offset, buf)
}

// backoff sleeps the exponential retry delay for the given pass (1-based),
// aborting early if ctx is done. The policy is the control plane's shared
// rpc.Backoff — the same curve the session layer uses between reconnects.
func (c *Client) backoff(ctx context.Context, pass int) error {
	start := time.Now()
	defer func() { c.met.backoffSeconds.Observe(time.Since(start).Seconds()) }()
	return c.retry.Sleep(ctx, pass)
}

// statReplicas asks the primary, then the remaining replicas in order, for
// the file's local size. The primary holds every acknowledged byte; the
// fallbacks may briefly lag relayed appends, so the first answer wins and
// the caller merges it with the nameserver's record.
func (c *Client) statReplicas(ctx context.Context, info nameserver.FileInfo) (int64, error) {
	var errs []error
	for _, rep := range info.Replicas {
		sctx, cancel := c.rpcCtx(ctx)
		st, err := c.control(rep.ControlAddr).Stat(sctx, info.ID)
		cancel()
		if err != nil {
			errs = append(errs, fmt.Errorf("client: stat on %s: %w", rep.ServerID, err))
			if ctx.Err() != nil {
				break
			}
			continue
		}
		return st.SizeBytes, nil
	}
	return 0, errors.Join(errs...)
}

// rpcCtx bounds a small metadata/control RPC with the client's default
// timeout when the caller supplied no deadline, so a stalled nameserver or
// dataserver surfaces as an error instead of a hang.
func (c *Client) rpcCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.opts.RPCTimeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.opts.RPCTimeout)
}
