package client

import (
	"testing"
	"time"
)

// TestBackoffDelayNeverNegative is the regression test for the shift
// overflow: RetryBackoff << (pass-1) flips negative once pass exceeds
// ~62, and time.After fires immediately on non-positive durations,
// turning the failover backoff into a hot retry loop for large
// configured ReadRetries.
func TestBackoffDelayNeverNegative(t *testing.T) {
	base := 50 * time.Millisecond
	prev := time.Duration(0)
	for pass := 1; pass <= 1000; pass++ {
		d := backoffDelay(base, pass)
		if d <= 0 {
			t.Fatalf("pass %d: delay %v is not positive (shift overflow)", pass, d)
		}
		if d > maxBackoff {
			t.Fatalf("pass %d: delay %v exceeds cap %v", pass, d, maxBackoff)
		}
		if d < prev {
			t.Fatalf("pass %d: delay %v < previous %v (not monotone)", pass, d, prev)
		}
		prev = d
	}
	// The huge pass numbers that used to overflow.
	for _, pass := range []int{63, 64, 65, 1 << 20, 1<<31 - 1} {
		if d := backoffDelay(base, pass); d != maxBackoff {
			t.Errorf("pass %d: delay %v, want saturated %v", pass, d, maxBackoff)
		}
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	base := 50 * time.Millisecond
	want := []time.Duration{
		50 * time.Millisecond,  // pass 1
		100 * time.Millisecond, // pass 2
		200 * time.Millisecond, // pass 3
		400 * time.Millisecond, // pass 4
		800 * time.Millisecond, // pass 5
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for i, w := range want {
		if d := backoffDelay(base, i+1); d != w {
			t.Errorf("pass %d: delay %v, want %v", i+1, d, w)
		}
	}
	if d := backoffDelay(0, 5); d != 0 {
		t.Errorf("zero base: delay %v, want 0", d)
	}
	if d := backoffDelay(5*time.Second, 1); d != maxBackoff {
		t.Errorf("over-cap base: delay %v, want %v", d, maxBackoff)
	}
	if d := backoffDelay(base, 0); d != base {
		t.Errorf("pass 0 clamps to base: got %v", d)
	}
}
