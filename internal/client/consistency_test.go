package client

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
)

// appendPattern produces deterministic content so a reader can verify
// that any prefix it observes is exactly the written prefix (no torn or
// reordered appends).
func appendPattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte('a' + (i/7+i)%23)
	}
	return out
}

// TestStrongReadsSeePrefixesUnderConcurrentAppends runs a writer
// appending continuously while strong-consistency readers sample the
// file; every read must return exactly the pattern prefix for the size
// the dataserver reported (§3.4's sequential ordering through the
// primary).
func TestStrongReadsSeePrefixesUnderConcurrentAppends(t *testing.T) {
	tc := defaultCluster(t)
	writer := newClient(t, tc, clientHost(tc), true, Sequential)
	hosts := tc.topo.Hosts()
	readerHost := tc.topo.Node(hosts[len(hosts)-2]).Name
	reader := newClient(t, tc, readerHost, true, Strong)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	const (
		appendSize = 64
		appends    = 40
		chunkSize  = 150 // appends regularly cross chunk boundaries
	)
	if _, err := writer.Create(ctx, "prefix", nameserver.CreateOptions{ChunkSize: chunkSize}); err != nil {
		t.Fatal(err)
	}
	full := appendPattern(appendSize * appends)

	var wg sync.WaitGroup
	writeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if _, err := writer.Append(ctx, "prefix", full[i*appendSize:(i+1)*appendSize]); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- nil
	}()

	for i := 0; i < 30; i++ {
		got, err := reader.ReadAll(ctx, "prefix")
		if err != nil {
			t.Fatal(err)
		}
		if len(got)%appendSize != 0 {
			t.Fatalf("read %d bytes: torn append visible", len(got))
		}
		if !bytes.Equal(got, full[:len(got)]) {
			t.Fatalf("read of %d bytes is not the written prefix", len(got))
		}
	}
	wg.Wait()
	if err := <-writeErr; err != nil {
		t.Fatal(err)
	}

	got, err := reader.ReadAll(ctx, "prefix")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("final read does not match all appends")
	}
}

// TestSequentialReadsAlsoPrefixConsistent repeats the check in the
// default consistency mode: because relayed appends apply in primary
// order at every replica and readers verify against the reported size,
// sequential mode still returns clean prefixes (it may just lag).
func TestSequentialReadsAlsoPrefixConsistent(t *testing.T) {
	tc := defaultCluster(t)
	writer := newClient(t, tc, clientHost(tc), true, Sequential)
	reader := newClient(t, tc, clientHost(tc), false, Sequential)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	if _, err := writer.Create(ctx, "seq", nameserver.CreateOptions{ChunkSize: 100}); err != nil {
		t.Fatal(err)
	}
	full := appendPattern(40 * 16)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 40; i++ {
			if _, err := writer.Append(ctx, "seq", full[i*16:(i+1)*16]); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 20; i++ {
		got, err := reader.ReadAll(ctx, "seq")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, full[:len(got)]) {
			t.Fatalf("sequential read of %d bytes not a prefix", len(got))
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
