package client

import (
	"context"
	"errors"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
)

// This file is the client's fault-handling write path, the mirror of
// failover.go for appends: each piece carries a stable sequence number
// and is retried across primary failures with backoff and metadata
// refresh, so an append survives repair-driven primary re-election
// without ever duplicating bytes. The client→primary transfer is also
// registered with the Flowserver so write traffic is a scheduled,
// control-plane-visible citizen like reads (§3.3 of the paper); as
// everywhere else, the Flowserver is an optimizer, not a dependency.

// appendSeqBase draws a random nonzero base for one Append call's piece
// sequence numbers; piece i is sent as base+i on every attempt.
func (c *Client) appendSeqBase() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Odd and therefore nonzero; collisions across calls are as unlikely
	// as 63-bit random collisions within a file's dedupe window.
	return uint64(c.rng.Int63())<<1 | 1
}

// appendPiece sends one piece under its sequence number, retrying across
// primary failures with the read path's backoff/refresh discipline. It
// returns the acknowledged file size and the (possibly refreshed) file
// metadata for the next piece.
func (c *Client) appendPiece(ctx context.Context, name string, info nameserver.FileInfo,
	seq uint64, piece []byte, remBits float64, wf *writeFlow) (int64, nameserver.FileInfo, error) {

	retries := c.opts.WriteRetries
	var errs []error
	for pass := 0; pass < retries; pass++ {
		if pass > 0 {
			c.met.writeFailoverPasses.Inc()
			if err := c.backoff(ctx, pass); err != nil {
				return 0, info, errors.Join(append(errs, err)...)
			}
			c.invalidate(name)
			fresh, err := c.fileInfo(ctx, name)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			if fresh.Primary().ServerID != info.Primary().ServerID {
				// Repair promoted a new primary: move the scheduled flow's
				// registration to the new receiver.
				wf.rebind(c, ctx, fresh.Primary().Host, remBits)
			}
			info = fresh
		}
		reply, err := c.appendAttempt(ctx, name, info, seq, piece)
		if err == nil {
			c.met.appendAttemptsOK.Inc()
			return reply.SizeBytes, info, nil
		}
		c.met.appendAttemptsErr.Inc()
		// The primary may be dead: drop the cached metadata so the retry
		// re-resolves it (the session pool already discards the dead
		// connection itself).
		c.invalidate(name)
		errs = append(errs, err)
		if ctx.Err() != nil {
			break
		}
	}
	return 0, info, errors.Join(errs...)
}

// appendAttempt performs one bounded append RPC against the primary.
func (c *Client) appendAttempt(ctx context.Context, name string, info nameserver.FileInfo,
	seq uint64, piece []byte) (dataserver.AppendReply, error) {

	// Deliberately the caller's ctx, not rpcCtx: this RPC carries up to
	// MaxAppend of bulk data plus the replication relay, so the metadata
	// RPCTimeout would cut off large pieces on slow links. A dead primary
	// still fails fast (connection error), which is what the retry loop
	// keys on.
	return c.control(info.Primary().ControlAddr).Append(ctx, dataserver.AppendArgs{
		FileID: info.ID,
		Name:   name,
		Data:   piece,
		Seq:    seq,
	})
}

// writeFlow tracks the control-plane registration of one append's
// client→primary transfer, pinned to the stub that issued it so the
// release reaches the coordinating shard under directory routing.
type writeFlow struct {
	id     flowserver.FlowID
	fs     *flowserver.RPCClient
	active bool
}

// registerWriteFlow registers the client→primary hop of an append with
// the Flowserver: the primary is the flow's receiver, this client the
// sender. Errors degrade to an unscheduled write.
func (c *Client) registerWriteFlow(ctx context.Context, primaryHost string, bits float64) writeFlow {
	if (c.fs == nil && c.fr == nil) || c.opts.Host == "" {
		c.met.writesDegraded.Inc()
		return writeFlow{}
	}
	sctx := ctx
	if t := c.opts.FlowserverTimeout; t > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	as, stub, err := c.flowSelect(sctx, flowserver.SelectArgs{
		ClientHost:   primaryHost,
		ReplicaHosts: []string{c.opts.Host},
		Bits:         bits,
	})
	if err != nil || len(as) == 0 {
		c.met.writesDegraded.Inc()
		return writeFlow{}
	}
	if as[0].Local {
		// Client and primary share a host; nothing crosses the network.
		return writeFlow{}
	}
	c.met.writeFlows.Inc()
	return writeFlow{id: as[0].FlowID, fs: stub, active: true}
}

// finish releases the flow-table entry on a fresh bounded context,
// mirroring the read path's cleanup (cancellation must not leak
// control-plane state).
func (wf *writeFlow) finish(c *Client) {
	if !wf.active {
		return
	}
	wf.active = false
	fctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = wf.fs.Finished(fctx, wf.id)
	cancel()
}

// rebind moves the registration to a newly promoted primary, sized to
// the bits still to send.
func (wf *writeFlow) rebind(c *Client, ctx context.Context, primaryHost string, bits float64) {
	wf.finish(c)
	*wf = c.registerWriteFlow(ctx, primaryHost, bits)
}
