// Package client is the Mayflower client library (§3.3, §5 of the
// paper). It talks to the nameserver for metadata, consults the
// Flowserver during reads so replica and network path are chosen jointly
// with the SDN control plane, and moves bulk data directly against
// dataservers. Its interface is deliberately HDFS-like: create, append,
// read, delete, list and stat.
//
// The client caches file metadata to reduce nameserver load. Mayflower's
// append-only semantics make the cache safe: a file's identity, chunk
// size and replica set never change while it exists, and its size only
// grows — the dataserver reports the current size with every read, so a
// reader discovers newly appended data without asking the nameserver.
//
// Two consistency modes are offered (§3.4): Sequential (default) lets any
// replica serve any chunk; Strong additionally routes reads that touch
// the last (still mutable) chunk to the primary, which orders appends —
// every other chunk is immutable and safe from any replica.
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// Consistency selects the read consistency mode (§3.4).
type Consistency int

// Consistency modes.
const (
	// Sequential consistency: reads may go to any replica.
	Sequential Consistency = iota + 1
	// Strong consistency: reads touching the last chunk go to the
	// primary; immutable chunks may still come from any replica.
	Strong
)

// Options configure a client.
type Options struct {
	// NameserverAddr is the nameserver's RPC address (required).
	NameserverAddr string
	// FlowserverAddr is the Flowserver's RPC address; when empty the
	// client picks replicas uniformly at random (the degraded mode the
	// paper compares against).
	FlowserverAddr string
	// FlowDirectoryAddr, when set (and FlowserverAddr is empty), routes
	// selections through the sharded flowctl control plane: the client
	// resolves the shard owning its pod against this directory service,
	// caches the route under the directory epoch for FlowRouteTTL, and
	// rebinds whenever a Lookup returns a higher epoch — a failed-over
	// shard must not keep serving new Selects from a stale cached peer.
	// Requires Host to parse under Locate (the pod is the routing key).
	FlowDirectoryAddr string
	// FlowRouteTTL is how long a resolved shard route is reused before
	// the directory is consulted again (5 s if zero). Select failures
	// re-resolve immediately regardless.
	FlowRouteTTL time.Duration
	// Host is the topology host name this client runs on, passed to the
	// Flowserver for path selection.
	Host string
	// Consistency is the read mode; Sequential if zero.
	Consistency Consistency
	// CacheTTL is the metadata lease length: how long file→dataserver
	// mappings are served without nameserver traffic before the lease is
	// revalidated with a batched ns.Validate (30 s if zero; the paper
	// sizes this against replica migration and failure rates). Leases are
	// measured on Clock, so under a compressed fabric clock the TTL means
	// fabric seconds, not wall seconds.
	CacheTTL time.Duration
	// CacheEntries caps the metadata cache; least-recently-used entries
	// are evicted beyond it (4096 if zero).
	CacheEntries int
	// Clock supplies the time base for lease expiry; the wall clock if
	// nil. The testbed injects its fabric clock so compressed-clock
	// emulation keeps the configured TTL instead of shrinking it by the
	// speedup factor.
	Clock fabric.Clock
	// DialData opens bulk data connections; net.Dial if nil (the
	// emulated network injects its paced dialer here).
	DialData func(ctx context.Context, addr string) (net.Conn, error)
	// Rand drives replica selection fallback; seeded from the clock if
	// nil.
	Rand *rand.Rand
	// PickReplica, when set, chooses the replica for a read instead of
	// leaving the choice to the Flowserver (package hdfsbaseline supplies
	// HDFS's rack-aware policy). With a Flowserver configured the client
	// still asks it to schedule the network path for the pre-picked
	// replica — the paper's "HDFS-Mayflower" configuration (§6.7);
	// without one, reads go straight to the picked replica.
	PickReplica func(info nameserver.FileInfo) nameserver.ReplicaLoc
	// AssignFlow, when set and no Flowserver is configured, runs before
	// each bulk read so a harness can register the transfer with a
	// network emulator or traffic-engineering system (e.g. to give ECMP
	// flows a paced path). It returns the flow id to tag the read with
	// and a cleanup callback invoked when the read finishes.
	AssignFlow func(replicaHost string, bytes int64) (flowID uint64, done func())
	// DialControl opens the sessions behind the client's control-plane
	// peer pool (nameserver, flowserver and dataserver alike);
	// rpc.DialSession with a bounded connect if nil. Fault-injection
	// harnesses substitute a partition-aware dialer here.
	DialControl func(ctx context.Context, addr string) (*wire.Client, error)
	// ReadTimeout bounds each per-replica read attempt (2 min if zero,
	// <0 disables). On expiry the read fails over to the next candidate
	// instead of hanging on a stalled or partitioned replica.
	ReadTimeout time.Duration
	// ReadRetries is how many full passes over the replica candidate
	// list a read makes before giving up (2 if zero). File metadata is
	// refreshed between passes so repaired replica sets and promoted
	// primaries are picked up mid-failure.
	ReadRetries int
	// RetryBackoff is the base delay before the second failover pass,
	// doubled each further pass and capped at 2 s (50 ms if zero).
	RetryBackoff time.Duration
	// WriteRetries is how many attempts each append piece makes before
	// giving up (3 if zero). Between attempts the file metadata is
	// refreshed so a repair-promoted primary is picked up, and pieces are
	// re-sent under the same sequence number so dataservers deduplicate
	// them — a retry never appends bytes twice.
	WriteRetries int
	// AppendPieceBytes overrides the append piece size (dataserver
	// MaxAppend if zero or larger; tests shrink it to exercise multi-piece
	// appends with small payloads).
	AppendPieceBytes int
	// FlowserverTimeout bounds the Flowserver Select RPC (2 s if zero,
	// <0 disables). On expiry or error the client degrades to
	// locality-order replica selection; the Flowserver is an optimizer,
	// not a dependency.
	FlowserverTimeout time.Duration
	// RPCTimeout is the default deadline applied to small metadata and
	// control RPCs when the caller's context has none (10 s if zero,
	// <0 disables), so a stalled nameserver cannot hang the client.
	RPCTimeout time.Duration
	// Locate maps host names to (pod, rack) for locality-order replica
	// selection; defaults to parsing the canonical
	// "host-p<pod>-r<rack>-h<idx>" scheme. Unknown hosts sort last.
	Locate Locator
	// Metrics optionally publishes the client's failover and attempt
	// counters under "client." names. Instrumentation is always on.
	Metrics *obs.Registry
}

// clientMetrics counts the fault-handling read path: failover passes,
// per-replica attempt outcomes, time spent backing off, and reads that
// ran degraded (no Flowserver schedule).
type clientMetrics struct {
	failoverPasses obs.Counter
	attemptsOK     obs.Counter
	attemptsErr    obs.Counter
	readsDegraded  obs.Counter
	backoffSeconds *obs.Histogram

	// Write path: flows registered for appends, failover passes across
	// primary re-election, per-piece attempt outcomes, and appends that
	// ran without a Flowserver schedule.
	writeFlows          obs.Counter
	writeFailoverPasses obs.Counter
	appendAttemptsOK    obs.Counter
	appendAttemptsErr   obs.Counter
	writesDegraded      obs.Counter

	// Metadata cache: lease hits/misses/renewals, stale records caught
	// at renewal, evictions, entry count.
	cache cacheMetrics
}

func (m *clientMetrics) register(r *obs.Registry) {
	r.RegisterCounter("client.failover_passes", &m.failoverPasses)
	r.RegisterCounter("client.read_attempts_ok", &m.attemptsOK)
	r.RegisterCounter("client.read_attempts_err", &m.attemptsErr)
	r.RegisterCounter("client.reads_degraded", &m.readsDegraded)
	r.RegisterHistogram("client.backoff_seconds", m.backoffSeconds)
	r.RegisterCounter("client.write_flows", &m.writeFlows)
	r.RegisterCounter("client.write_failover_passes", &m.writeFailoverPasses)
	r.RegisterCounter("client.append_attempts_ok", &m.appendAttemptsOK)
	r.RegisterCounter("client.append_attempts_err", &m.appendAttemptsErr)
	r.RegisterCounter("client.writes_degraded", &m.writesDegraded)
	m.cache.register(r)
}

// Client is a Mayflower filesystem client. It is safe for concurrent use.
type Client struct {
	opts Options
	pool *rpc.Pool // one shared session per control-plane address
	ns   *nameserver.Client
	fs   *flowserver.RPCClient
	fr   *flowRouter // directory-routed Flowserver (sharded control plane)

	cache *metaCache

	mu  sync.Mutex
	rng *rand.Rand

	met   clientMetrics
	retry rpc.Backoff
}

// New connects a client.
func New(opts Options) (*Client, error) {
	if opts.NameserverAddr == "" {
		return nil, errors.New("client: NameserverAddr is required")
	}
	if opts.Consistency == 0 {
		opts.Consistency = Sequential
	}
	if opts.CacheTTL == 0 {
		opts.CacheTTL = 30 * time.Second
	}
	if opts.DialData == nil {
		opts.DialData = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if opts.ReadTimeout == 0 {
		opts.ReadTimeout = 2 * time.Minute
	}
	if opts.ReadRetries == 0 {
		opts.ReadRetries = 2
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	if opts.WriteRetries == 0 {
		opts.WriteRetries = 3
	}
	if opts.FlowserverTimeout == 0 {
		opts.FlowserverTimeout = 2 * time.Second
	}
	if opts.RPCTimeout == 0 {
		opts.RPCTimeout = 10 * time.Second
	}
	if opts.Locate == nil {
		opts.Locate = defaultLocate
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}

	poolOpts := rpc.Options{
		ConnectTimeout: 5 * time.Second,
		Dial:           opts.DialControl,
		Backoff:        rpc.Backoff{Base: opts.RetryBackoff},
		Metrics:        opts.Metrics,
		MetricsPrefix:  "client.rpc",
	}
	if opts.Metrics != nil {
		// Per-method call counters make the metadata path observable:
		// ns.Lookup vs ns.Validate traffic shows what the lease cache
		// saves.
		poolOpts.Intercept = []rpc.Interceptor{rpc.MethodMetrics(opts.Metrics, "client.rpc")}
	}
	pool := rpc.NewPool(poolOpts)
	c := &Client{
		opts:  opts,
		pool:  pool,
		ns:    nameserver.NewClient(pool.Peer(opts.NameserverAddr)),
		rng:   rng,
		retry: rpc.Backoff{Base: opts.RetryBackoff},
	}
	c.cache = newMetaCache(opts.CacheEntries, opts.CacheTTL.Seconds(), opts.Clock, &c.met.cache)
	c.cache.lookup = func(ctx context.Context, name string) (nameserver.FileInfo, error) {
		lctx, cancel := c.rpcCtx(ctx)
		defer cancel()
		return c.ns.Lookup(lctx, name)
	}
	c.cache.validate = func(ctx context.Context, epoch int64, entries []nameserver.ValidateEntry) ([]nameserver.ValidateResult, int64, error) {
		vctx, cancel := c.rpcCtx(ctx)
		defer cancel()
		return c.ns.Validate(vctx, epoch, entries)
	}
	// Fail fast on a misconfigured nameserver address; the pool re-dials
	// on its own from here on.
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err := pool.Peer(opts.NameserverAddr).Connect(cctx)
	cancel()
	if err != nil {
		pool.Close()
		return nil, fmt.Errorf("client: connect nameserver: %w", err)
	}
	c.met.backoffSeconds = obs.NewHistogram(1e-4, 10)
	if opts.Metrics != nil {
		c.met.register(opts.Metrics)
	}
	if opts.FlowserverAddr != "" {
		// The Flowserver is an optimizer, not a dependency: its peer dials
		// lazily and every Select is bounded by FlowserverTimeout, so an
		// unreachable Flowserver degrades reads to locality-order replica
		// selection instead of failing them.
		c.fs = flowserver.NewRPCClient(pool.Peer(opts.FlowserverAddr))
	} else if opts.FlowDirectoryAddr != "" {
		pod, _, ok := opts.Locate(opts.Host)
		if !ok {
			pool.Close()
			return nil, fmt.Errorf("client: FlowDirectoryAddr routing needs a locatable Host, got %q", opts.Host)
		}
		ttl := opts.FlowRouteTTL
		if ttl == 0 {
			ttl = 5 * time.Second
		}
		c.fr = newFlowRouter(opts.FlowDirectoryAddr, pod, ttl.Seconds(), opts.Clock, pool)
	}
	return c, nil
}

// Close tears down every pooled control connection.
func (c *Client) Close() error {
	return c.pool.Close()
}

// control returns the typed control stub for a dataserver, backed by the
// pool's shared session for that address (dialed lazily, replaced
// automatically when it dies).
func (c *Client) control(addr string) *dataserver.Client {
	return dataserver.NewClient(c.pool.Peer(addr))
}

// fileInfo returns (possibly cached) metadata for a file; see metaCache
// for the lease protocol.
func (c *Client) fileInfo(ctx context.Context, name string) (nameserver.FileInfo, error) {
	return c.cache.Get(ctx, name)
}

func (c *Client) storeCache(name string, info nameserver.FileInfo) {
	c.cache.Store(name, info)
}

func (c *Client) invalidate(name string) {
	c.cache.Invalidate(name)
}

// observeSize folds a size learned from a dataserver read into the cache
// (sizes only grow under append-only semantics). version must be the
// version of the record the size was observed under, so a stale read
// cannot resurrect or pollute a newer cached record.
func (c *Client) observeSize(name string, version, size int64) {
	c.cache.ObserveSize(name, version, size)
}

// Create creates a file: the nameserver allocates replicas, then the
// primary dataserver prepares local state and relays to the other
// replicas.
func (c *Client) Create(ctx context.Context, name string, opts nameserver.CreateOptions) (nameserver.FileInfo, error) {
	cctx, cancel := c.rpcCtx(ctx)
	info, err := c.ns.Create(cctx, name, opts)
	cancel()
	if err != nil {
		return nameserver.FileInfo{}, err
	}
	prepare := func() error {
		pctx, pcancel := c.rpcCtx(ctx)
		defer pcancel()
		return c.control(info.Primary().ControlAddr).
			Prepare(pctx, dataserver.PrepareArgs{Info: info, Relay: true})
	}
	if err := prepare(); err != nil {
		// The nameserver installed the file before Prepare ran; without
		// cleanup a failed create strands a zero-byte orphan that blocks
		// the name forever. Best-effort: the metadata delete is what
		// matters, and an error from it keeps the orphan — the caller's
		// retry then reports ErrExists rather than silently re-creating.
		dctx, dcancel := c.rpcCtx(ctx)
		_, _ = c.ns.Delete(dctx, name)
		dcancel()
		return nameserver.FileInfo{}, fmt.Errorf("client: prepare %s: %w", name, err)
	}
	c.storeCache(name, info)
	return info, nil
}

// Append appends data to a file through its primary replica and returns
// the file's new size. Large appends are split into MaxAppend pieces
// (see write.go for the failover and flow-scheduling machinery).
//
// Each piece is retried across primary failures: the client drops its
// cached metadata and control connection, backs off, refreshes the
// replica set (picking up a repair-promoted primary), and re-sends the
// piece under the same sequence number, which dataservers deduplicate —
// a retry after a lost ack never appends bytes twice.
//
// On error, the returned size is the file size as of the last piece this
// call got acknowledged (0 when no piece was acknowledged): bytes up to
// that size are durably appended, bytes past it are not guaranteed.
func (c *Client) Append(ctx context.Context, name string, data []byte) (int64, error) {
	info, err := c.fileInfo(ctx, name)
	if err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return info.SizeBytes, nil
	}

	// Register the client→primary transfer with the Flowserver so write
	// traffic is scheduled (and visible) like reads; the primary registers
	// the replication hops itself.
	wf := c.registerWriteFlow(ctx, info.Primary().Host, float64(len(data))*8)
	defer wf.finish(c)

	pieceMax := dataserver.MaxAppend
	if p := c.opts.AppendPieceBytes; p > 0 && p < pieceMax {
		pieceMax = p
	}
	seqBase := c.appendSeqBase()
	var size int64
	for off, piece := 0, 0; off < len(data); piece++ {
		n := len(data) - off
		if n > pieceMax {
			n = pieceMax
		}
		seq := seqBase + uint64(piece)
		if seq == 0 {
			seq = 1
		}
		remBits := float64(len(data)-off) * 8
		sz, fresh, err := c.appendPiece(ctx, name, info, seq, data[off:off+n], remBits, &wf)
		info = fresh
		if err != nil {
			return size, fmt.Errorf("client: append %s: %w", name, err)
		}
		size = sz
		off += n
	}
	c.observeSize(name, info.Version, size)
	return size, nil
}

// Stat returns fresh metadata: the nameserver record with the size
// corrected by a dataserver's local size (the primary is asked first; on
// its failure the remaining replicas answer). If every replica of the
// cached set is unreachable the metadata is refreshed once — a repaired
// replica set may have entirely superseded the cached one.
func (c *Client) Stat(ctx context.Context, name string) (nameserver.FileInfo, error) {
	info, err := c.fileInfo(ctx, name)
	if err != nil {
		return nameserver.FileInfo{}, err
	}
	size, serr := c.statReplicas(ctx, info)
	if serr != nil {
		c.invalidate(name)
		info, err = c.fileInfo(ctx, name)
		if err != nil {
			return nameserver.FileInfo{}, err
		}
		size, serr = c.statReplicas(ctx, info)
		if serr != nil {
			return nameserver.FileInfo{}, fmt.Errorf("client: stat %s: %w", name, serr)
		}
	}
	if size > info.SizeBytes {
		info.SizeBytes = size
		c.observeSize(name, info.Version, size)
	}
	return info, nil
}

// List returns metadata for files whose names have the given prefix.
func (c *Client) List(ctx context.Context, prefix string) ([]nameserver.FileInfo, error) {
	lctx, cancel := c.rpcCtx(ctx)
	defer cancel()
	return c.ns.List(lctx, prefix)
}

// Delete removes a file: metadata first (so new readers stop finding it),
// then the replicas' chunk data. Replica cleanup failures are collected
// but do not resurrect the file.
func (c *Client) Delete(ctx context.Context, name string) error {
	dctx, cancel := c.rpcCtx(ctx)
	info, err := c.ns.Delete(dctx, name)
	cancel()
	if err != nil {
		return err
	}
	c.invalidate(name)
	var firstErr error
	for _, rep := range info.Replicas {
		cctx, ccancel := c.rpcCtx(ctx)
		err := c.control(rep.ControlAddr).Delete(cctx, info.ID)
		ccancel()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return fmt.Errorf("client: delete %s replicas: %w", name, firstErr)
	}
	return nil
}

// ReadAll reads the whole file at its current authoritative size.
func (c *Client) ReadAll(ctx context.Context, name string) ([]byte, error) {
	info, err := c.Stat(ctx, name)
	if err != nil {
		return nil, err
	}
	if info.SizeBytes == 0 {
		return nil, nil
	}
	return c.ReadAt(ctx, name, 0, info.SizeBytes)
}

// ReadAt reads length bytes starting at offset.
func (c *Client) ReadAt(ctx context.Context, name string, offset, length int64) ([]byte, error) {
	if offset < 0 || length < 0 {
		return nil, fmt.Errorf("client: invalid range [%d, %d)", offset, offset+length)
	}
	info, err := c.fileInfo(ctx, name)
	if err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, nil
	}
	if offset+length > info.SizeBytes {
		// The cached size may be stale under appends; revalidate.
		info, err = c.Stat(ctx, name)
		if err != nil {
			return nil, err
		}
		if offset+length > info.SizeBytes {
			return nil, fmt.Errorf("client: read [%d, %d) beyond size %d", offset, offset+length, info.SizeBytes)
		}
	}

	buf := make([]byte, length)
	if c.opts.Consistency == Strong {
		// Immutable chunks can come from anywhere; the tail chunk must
		// come from the primary, which orders appends (§3.4).
		lastChunkStart := (info.SizeBytes - 1) / info.ChunkSize * info.ChunkSize
		if offset+length > lastChunkStart {
			split := lastChunkStart - offset
			if split < 0 {
				split = 0
			}
			var wg sync.WaitGroup
			var errBody, errTail error
			if split > 0 {
				wg.Add(1)
				go func() {
					defer wg.Done()
					errBody = c.readSegment(ctx, name, info, offset, buf[:split], false)
				}()
			}
			errTail = c.readSegment(ctx, name, info, offset+split, buf[split:], true)
			wg.Wait()
			if errBody != nil {
				return nil, errBody
			}
			if errTail != nil {
				return nil, errTail
			}
			return buf, nil
		}
	}
	if err := c.readSegment(ctx, name, info, offset, buf, false); err != nil {
		return nil, err
	}
	return buf, nil
}

// readSegment fills buf from the file starting at offset. primaryOnly
// pins the read to the primary replica; otherwise the Flowserver (when
// configured) chooses the replica(s) and may split the read in two
// (§4.3). Every branch funnels into readWithFailover, so a dead or
// stalled replica costs a bounded attempt, never the read.
func (c *Client) readSegment(ctx context.Context, name string, info nameserver.FileInfo, offset int64, buf []byte, primaryOnly bool) error {
	if len(buf) == 0 {
		return nil
	}
	if primaryOnly || (c.fs == nil && c.fr == nil) {
		cands := []nameserver.ReplicaLoc{info.Primary()}
		if !primaryOnly {
			c.met.readsDegraded.Inc()
			first := info.Primary()
			if c.opts.PickReplica != nil {
				first = c.opts.PickReplica(info)
			} else {
				// Random first pick spreads load in the degraded
				// no-flowserver mode the paper compares against; failover
				// candidates follow in locality order.
				first = info.Replicas[c.pick(len(info.Replicas))]
			}
			cands = c.orderCandidates(info, &first)
		}
		return c.readWithFailover(ctx, name, info, cands, c.assignTagger(len(buf)), offset, buf, primaryOnly)
	}

	candidates := info.Replicas
	if c.opts.PickReplica != nil {
		// Replica pre-picked (HDFS-Mayflower mode): the Flowserver only
		// schedules the path.
		candidates = []nameserver.ReplicaLoc{c.opts.PickReplica(info)}
	}
	hosts := make([]string, len(candidates))
	byHost := make(map[string]nameserver.ReplicaLoc, len(candidates))
	for i, r := range candidates {
		hosts[i] = r.Host
		byHost[r.Host] = r
	}
	sctx := ctx
	if t := c.opts.FlowserverTimeout; t > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	assignments, fstub, err := c.flowSelect(sctx, flowserver.SelectArgs{
		ClientHost:   c.opts.Host,
		ReplicaHosts: hosts,
		Bits:         float64(len(buf)) * 8,
	})
	if err != nil || len(assignments) == 0 {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The Flowserver is an optimizer, not a dependency: degrade to
		// locality-order replica selection with unscheduled flows.
		c.met.readsDegraded.Inc()
		return c.readWithFailover(ctx, name, info, c.orderCandidates(info, nil), nil, offset, buf, false)
	}

	// Convert the bit split into byte ranges, last assignment taking the
	// remainder.
	totalBits := 0.0
	for _, a := range assignments {
		totalBits += a.Bits
	}
	var (
		wg       sync.WaitGroup
		errs     = make([]error, len(assignments))
		segStart = int64(0)
	)
	for i, a := range assignments {
		rep, ok := byHost[a.ReplicaHost]
		if !ok {
			return fmt.Errorf("client: flowserver chose unknown replica host %q", a.ReplicaHost)
		}
		segLen := int64(len(buf)) - segStart
		if i < len(assignments)-1 && totalBits > 0 {
			segLen = int64(float64(len(buf)) * a.Bits / totalBits)
			if rem := int64(len(buf)) - segStart; segLen > rem {
				segLen = rem
			}
		}
		i, rep, off, sub := i, rep, offset+segStart, buf[segStart:segStart+segLen]
		flowID := uint64(a.FlowID)
		// The scheduled flow id applies only to the replica the
		// Flowserver chose; failover attempts run unscheduled.
		tag := func(r nameserver.ReplicaLoc) (uint64, func()) {
			if r.ServerID == rep.ServerID {
				return flowID, nil
			}
			return 0, nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = c.readWithFailover(ctx, name, info, c.orderCandidates(info, &rep), tag, off, sub, false)
			// Always release the flow table entry, even when the read (or
			// its context) failed — on a fresh context so cancellation
			// cannot leak control-plane state. The release goes to the
			// stub that issued the assignment: under directory routing
			// only the coordinating shard knows the flow.
			fctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = fstub.Finished(fctx, flowserver.FlowID(flowID))
			cancel()
		}()
		segStart += segLen
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (c *Client) pick(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// assignTagger adapts Options.AssignFlow to a flowTagger for reads that
// bypass the Flowserver; nil when no AssignFlow hook is configured.
func (c *Client) assignTagger(n int) flowTagger {
	if c.opts.AssignFlow == nil {
		return nil
	}
	return func(rep nameserver.ReplicaLoc) (uint64, func()) {
		return c.opts.AssignFlow(rep.Host, int64(n))
	}
}

func (c *Client) readOnce(ctx context.Context, name string, info nameserver.FileInfo, rep nameserver.ReplicaLoc, flowID uint64, offset int64, buf []byte) error {
	conn, err := c.opts.DialData(ctx, rep.DataAddr)
	if err != nil {
		return fmt.Errorf("client: dial %s: %w", rep.ServerID, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	req := dataserver.EncodeReadRequest(dataserver.ReadRequest{
		FlowID: flowID,
		FileID: info.ID,
		Offset: offset,
		Length: int64(len(buf)),
	})
	if _, err := conn.Write(req); err != nil {
		return fmt.Errorf("client: send read to %s: %w", rep.ServerID, err)
	}
	size, err := dataserver.ReadResponseHeader(conn)
	if err != nil {
		return fmt.Errorf("client: read %s from %s: %w", name, rep.ServerID, err)
	}
	c.observeSize(name, info.Version, size)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return fmt.Errorf("client: read %s body from %s: %w", name, rep.ServerID, err)
	}
	return nil
}
