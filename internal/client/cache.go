package client

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
)

// maxValidateBatch caps how many expired leases one Validate RPC renews.
// Anything beyond it simply waits for the next expiry-triggered batch.
const maxValidateBatch = 512

// cacheMetrics counts the metadata cache: lease hits (negative hits
// included), misses that cost a full Lookup, coalesced misses that rode
// another goroutine's Lookup, lease renewals via Validate, renewals that
// revealed the cached record had gone stale (the client had been serving
// it), LRU evictions, and the current entry count.
type cacheMetrics struct {
	hits        obs.Counter
	misses      obs.Counter
	coalesced   obs.Counter
	renewed     obs.Counter
	staleServed obs.Counter
	evicted     obs.Counter
	entries     obs.Gauge
}

func (m *cacheMetrics) register(r *obs.Registry) {
	r.RegisterCounter("client.cache_hits", &m.hits)
	r.RegisterCounter("client.cache_misses", &m.misses)
	r.RegisterCounter("client.cache_coalesced", &m.coalesced)
	r.RegisterCounter("client.cache_renewed", &m.renewed)
	r.RegisterCounter("client.cache_stale_served", &m.staleServed)
	r.RegisterCounter("client.cache_evicted", &m.evicted)
	r.RegisterGauge("client.cache_entries", &m.entries)
}

// metaEntry is one leased cache slot. A negative entry records that the
// name did not exist — repeated opens of a deleted file cost one Lookup
// per lease, not one per call.
type metaEntry struct {
	name     string
	info     nameserver.FileInfo
	negative bool
	// expires is the lease deadline in fabric-clock seconds. An expired
	// entry is not discarded: it is revalidated with a batched Validate
	// carrying (name, version), which is far cheaper than a Lookup when
	// the record has not changed.
	expires float64
	// epoch is the newest namespace epoch at which this record is known
	// fresh: the epoch attached to the Validate reply that produced or
	// renewed it, or the client's epoch at store time for records fetched
	// by Lookup (the fetch happened no earlier than that observation). A
	// Validate batch claims the minimum epoch over its entries, so the
	// server's epoch fast path can never renew an entry cached under an
	// older epoch than the one claimed.
	epoch int64
}

// flight coalesces concurrent misses on one name into a single
// nameserver round trip (lease-expiry revalidation included).
type flight struct {
	done chan struct{}
	info nameserver.FileInfo
	err  error
}

// metaCache is the client's metadata cache: a bounded LRU of leased
// FileInfo records keyed by name.
//
// Correctness model: within a lease a record may be served without any
// nameserver traffic, so a read can act on metadata at most one lease
// stale — the same bound the TTL cache gave, but now measured on the
// fabric clock (so compressed-clock emulation keeps the configured TTL)
// and with expiry costing a batched Validate instead of a full Lookup.
// The nameserver's namespace epoch makes the common renewal O(1): when
// the claimed epoch still matches the server's, the server renews the
// whole batch without per-entry checks. Soundness hinges on what epoch a
// batch may claim: each entry carries the epoch at which it is known
// fresh, and a batch claims the minimum over its entries — so an entry
// cached under an old epoch can never ride the fast path on the strength
// of a newer epoch the client adopted afterwards from an unrelated
// renewal. A lower claim merely forfeits the fast path; the server then
// checks versions per entry, which stays correct.
type metaCache struct {
	cap   int
	ttl   float64 // lease length, fabric seconds
	clock fabric.Clock

	// lookup performs a full metadata fetch; validate renews a batch of
	// (name, version) leases. Both are injected so the cache is testable
	// (and benchmarkable) without a nameserver.
	lookup   func(ctx context.Context, name string) (nameserver.FileInfo, error)
	validate func(ctx context.Context, epoch int64, entries []nameserver.ValidateEntry) ([]nameserver.ValidateResult, int64, error)

	mu      sync.Mutex
	entries map[string]*list.Element // name → *metaEntry element
	lru     *list.List               // front = most recently used
	flights map[string]*flight
	epoch   int64 // newest namespace epoch observed in any Validate reply

	met *cacheMetrics
}

func newMetaCache(capEntries int, ttl float64, clock fabric.Clock, met *cacheMetrics) *metaCache {
	if capEntries <= 0 {
		capEntries = 4096
	}
	if clock == nil {
		clock = fabric.NewWallClock()
	}
	return &metaCache{
		cap:     capEntries,
		ttl:     ttl,
		clock:   clock,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
		met:     met,
	}
}

// Get returns leased metadata for name, consulting the nameserver only
// on a miss (full Lookup, concurrent misses coalesced) or an expired
// lease (batched Validate, falling back to Lookup if the RPC fails).
func (mc *metaCache) Get(ctx context.Context, name string) (nameserver.FileInfo, error) {
	mc.mu.Lock()
	now := mc.clock.Now()
	var expired *metaEntry
	if el, ok := mc.entries[name]; ok {
		e := el.Value.(*metaEntry)
		if now < e.expires {
			mc.lru.MoveToFront(el)
			info, neg := e.info, e.negative
			mc.mu.Unlock()
			mc.met.hits.Inc()
			if neg {
				return nameserver.FileInfo{}, fmt.Errorf("%w: %s", nameserver.ErrNotFound, name)
			}
			return info, nil
		}
		expired = e
	}
	// Miss or expired lease: coalesce with any in-flight resolution.
	if fl, ok := mc.flights[name]; ok {
		mc.mu.Unlock()
		mc.met.coalesced.Inc()
		select {
		case <-fl.done:
			return fl.info, fl.err
		case <-ctx.Done():
			return nameserver.FileInfo{}, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	mc.flights[name] = fl
	var batch []nameserver.ValidateEntry
	var epoch int64
	if expired != nil {
		batch, epoch = mc.expiredBatchLocked(name, now)
	}
	mc.mu.Unlock()

	if expired != nil {
		fl.info, fl.err = mc.revalidate(ctx, name, epoch, batch)
	} else {
		mc.met.misses.Inc()
		fl.info, fl.err = mc.lookupAndStore(ctx, name)
	}

	mc.mu.Lock()
	delete(mc.flights, name)
	mc.mu.Unlock()
	close(fl.done)
	return fl.info, fl.err
}

// expiredBatchLocked collects (name, version) pairs for every expired
// entry — the requested name first — so one Validate renews them all,
// along with the epoch the batch may soundly claim: the minimum over its
// entries' fresh-at epochs. Caller holds mc.mu.
func (mc *metaCache) expiredBatchLocked(name string, now float64) ([]nameserver.ValidateEntry, int64) {
	batch := make([]nameserver.ValidateEntry, 0, 8)
	var epoch int64
	add := func(e *metaEntry) {
		v := e.info.Version
		if e.negative {
			v = 0
		}
		if len(batch) == 0 || e.epoch < epoch {
			epoch = e.epoch
		}
		batch = append(batch, nameserver.ValidateEntry{Name: e.name, Version: v})
	}
	add(mc.entries[name].Value.(*metaEntry))
	for el := mc.lru.Back(); el != nil && len(batch) < maxValidateBatch; el = el.Prev() {
		e := el.Value.(*metaEntry)
		if e.name != name && now >= e.expires {
			add(e)
		}
	}
	return batch, epoch
}

// revalidate renews a batch of expired leases with one Validate RPC and
// resolves the requested name from the verdicts. A transport failure
// degrades to a plain Lookup for the requested name — the other expired
// entries just stay expired and retry on their next access.
func (mc *metaCache) revalidate(ctx context.Context, name string, epoch int64, batch []nameserver.ValidateEntry) (nameserver.FileInfo, error) {
	results, newEpoch, err := mc.validate(ctx, epoch, batch)
	if err != nil {
		return mc.lookupAndStore(ctx, name)
	}
	mc.mu.Lock()
	now := mc.clock.Now()
	var out nameserver.FileInfo
	outErr := error(nil)
	found := false
	byName := make(map[string]nameserver.ValidateEntry, len(batch))
	for _, e := range batch {
		byName[e.Name] = e
	}
	for _, r := range results {
		sent := byName[r.Name]
		switch r.Status {
		case nameserver.ValidateOK:
			// Renew only if the slot still holds exactly what we asked
			// about; a concurrent store or invalidation wins.
			if el, ok := mc.entries[r.Name]; ok {
				e := el.Value.(*metaEntry)
				curVer := e.info.Version
				if e.negative {
					curVer = 0
				}
				if curVer == sent.Version {
					e.expires = now + mc.ttl
					if newEpoch > e.epoch {
						e.epoch = newEpoch
					}
					mc.met.renewed.Inc()
					if r.Name == name {
						found = true
						out, outErr = e.info, nil
						if e.negative {
							outErr = fmt.Errorf("%w: %s", nameserver.ErrNotFound, r.Name)
						}
					}
				}
			}
		case nameserver.ValidateStale:
			if r.Info == nil {
				continue
			}
			// The attached record is server-fresh; storing it is
			// equivalent to a Lookup completing now.
			mc.storeLocked(r.Name, *r.Info, now, newEpoch)
			mc.met.staleServed.Inc()
			if r.Name == name {
				found = true
				out, outErr = *r.Info, nil
			}
		case nameserver.ValidateGone:
			mc.storeNegativeLocked(r.Name, now, newEpoch)
			if r.Name == name {
				found = true
				out, outErr = nameserver.FileInfo{}, fmt.Errorf("%w: %s", nameserver.ErrNotFound, r.Name)
			}
		}
	}
	if newEpoch > mc.epoch {
		mc.epoch = newEpoch
	}
	mc.mu.Unlock()
	if found {
		return out, outErr
	}
	// The server did not answer for the requested name (defensive; a
	// well-formed reply always covers the batch). Fall back to Lookup.
	return mc.lookupAndStore(ctx, name)
}

// lookupAndStore performs the full metadata fetch and caches the result,
// negatively for a NotFound.
func (mc *metaCache) lookupAndStore(ctx context.Context, name string) (nameserver.FileInfo, error) {
	info, err := mc.lookup(ctx, name)
	if err != nil {
		if errors.Is(err, nameserver.ErrNotFound) {
			mc.mu.Lock()
			mc.storeNegativeLocked(name, mc.clock.Now(), mc.epoch)
			mc.mu.Unlock()
		}
		return nameserver.FileInfo{}, err
	}
	mc.Store(name, info)
	return info, nil
}

// Store caches a server-fresh record under a new lease. The record is
// fresh no earlier than the client's current epoch observation (the RPC
// that produced it completed after that epoch was reported), so that is
// the epoch it may soundly claim.
func (mc *metaCache) Store(name string, info nameserver.FileInfo) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	mc.storeLocked(name, info, mc.clock.Now(), mc.epoch)
}

func (mc *metaCache) storeLocked(name string, info nameserver.FileInfo, now float64, epoch int64) {
	e := &metaEntry{name: name, info: info, expires: now + mc.ttl, epoch: epoch}
	mc.upsertLocked(name, e)
}

func (mc *metaCache) storeNegativeLocked(name string, now float64, epoch int64) {
	e := &metaEntry{name: name, negative: true, expires: now + mc.ttl, epoch: epoch}
	mc.upsertLocked(name, e)
}

func (mc *metaCache) upsertLocked(name string, e *metaEntry) {
	if el, ok := mc.entries[name]; ok {
		el.Value = e
		mc.lru.MoveToFront(el)
	} else {
		mc.entries[name] = mc.lru.PushFront(e)
	}
	for mc.lru.Len() > mc.cap {
		back := mc.lru.Back()
		delete(mc.entries, back.Value.(*metaEntry).name)
		mc.lru.Remove(back)
		mc.met.evicted.Inc()
	}
	mc.met.entries.Set(int64(len(mc.entries)))
}

// Invalidate drops a name from the cache (e.g. after a failed append,
// when the replica set may be changing under repair).
func (mc *metaCache) Invalidate(name string) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if el, ok := mc.entries[name]; ok {
		delete(mc.entries, name)
		mc.lru.Remove(el)
		mc.met.entries.Set(int64(len(mc.entries)))
	}
}

// ObserveSize folds a size learned from a dataserver into the cached
// record — but only into a still-present entry of the same version.
// Without the version guard a slow read's size report could resurrect
// metadata that a concurrent failed Append had just invalidated, or fold
// a pre-delete size into a re-created file's record.
func (mc *metaCache) ObserveSize(name string, version, size int64) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	el, ok := mc.entries[name]
	if !ok {
		return
	}
	e := el.Value.(*metaEntry)
	if e.negative || e.info.Version != version {
		return
	}
	if size > e.info.SizeBytes {
		e.info.SizeBytes = size
	}
}

// Len reports the current entry count.
func (mc *metaCache) Len() int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return len(mc.entries)
}

// has reports whether a (positive) entry for name is cached, expired or
// not. Test helper.
func (mc *metaCache) has(name string) bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	el, ok := mc.entries[name]
	return ok && !el.Value.(*metaEntry).negative
}
