package client

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// fakeDS is a scriptable dataserver control endpoint: Prepare always
// succeeds and Append runs the test's handler, recording every sequence
// number it sees. It lets the write tests force failures at exact pieces
// without real storage.
type fakeDS struct {
	addr string

	mu    sync.Mutex
	calls int
	seqs  []uint64
}

func startFakeDS(t *testing.T, appendFn func(call int, a dataserver.AppendArgs) (dataserver.AppendReply, error)) *fakeDS {
	t.Helper()
	f := &fakeDS{}
	srv := wire.NewServer()
	srv.Register(dataserver.MethodPrepare, func(_ context.Context, params json.RawMessage) (any, error) {
		var a dataserver.PrepareArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		return struct{}{}, nil
	})
	srv.Register(dataserver.MethodAppend, func(_ context.Context, params json.RawMessage) (any, error) {
		var a dataserver.AppendArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.calls++
		call := f.calls
		f.seqs = append(f.seqs, a.Seq)
		f.mu.Unlock()
		return appendFn(call, a)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	f.addr = ln.Addr().String()
	return f
}

func (f *fakeDS) stats() (int, []uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, append([]uint64(nil), f.seqs...)
}

// startFakeNS boots a real nameserver whose Service handle the test can
// drive directly (to register fake dataservers and simulate repair).
func startFakeNS(t *testing.T) (*nameserver.Service, string) {
	t.Helper()
	store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	svc, err := nameserver.NewService(store, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer()
	if err := nameserver.RegisterRPC(srv, svc); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return svc, ln.Addr().String()
}

func registerFake(t *testing.T, svc *nameserver.Service, id, host, addr string) {
	t.Helper()
	if err := svc.RegisterServer(nameserver.ServerInfo{
		ID: id, ControlAddr: addr, DataAddr: addr, Host: host,
	}); err != nil {
		t.Fatal(err)
	}
}

func newWriteClient(t *testing.T, nsAddr string, mutate func(*Options)) *Client {
	t.Helper()
	opts := Options{
		NameserverAddr: nsAddr,
		Rand:           rand.New(rand.NewSource(5)),
		RetryBackoff:   time.Millisecond,
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestAppendMidPieceFailureReturnsLastAcked pins the documented contract
// for a multi-piece append that dies mid-stream: the returned size is the
// size as of the last acknowledged piece, with a non-nil error — here the
// failure hits piece 2 of 3, so exactly one 4-byte piece is durable.
func TestAppendMidPieceFailureReturnsLastAcked(t *testing.T) {
	svc, nsAddr := startFakeNS(t)
	boom := errors.New("disk on fire")
	fake := startFakeDS(t, func(call int, a dataserver.AppendArgs) (dataserver.AppendReply, error) {
		if call == 1 {
			return dataserver.AppendReply{SizeBytes: int64(len(a.Data))}, nil
		}
		return dataserver.AppendReply{}, boom
	})
	for i, id := range []string{"p", "s1", "s2"} {
		registerFake(t, svc, id, []string{"h0", "h1", "h2"}[i], fake.addr)
	}
	c := newWriteClient(t, nsAddr, func(o *Options) {
		o.WriteRetries = 1
		o.AppendPieceBytes = 4
	})
	ctx := context.Background()
	if _, err := c.Create(ctx, "f", nameserver.CreateOptions{
		ChunkSize: 64, PreferredReplicas: []string{"p", "s1", "s2"},
	}); err != nil {
		t.Fatal(err)
	}

	size, err := c.Append(ctx, "f", []byte("0123456789ab")) // pieces 4+4+4
	if err == nil {
		t.Fatal("mid-stream append failure returned nil error")
	}
	if size != 4 {
		t.Errorf("size = %d, want 4 (last acknowledged piece)", size)
	}
	if calls, _ := fake.stats(); calls != 2 {
		t.Errorf("append RPCs = %d, want 2 (no retries configured)", calls)
	}
}

// TestAppendRetrySameSeq checks a retried piece is re-sent under the same
// nonzero sequence number, which is what lets the dataserver deduplicate
// a re-send after a lost ack.
func TestAppendRetrySameSeq(t *testing.T) {
	svc, nsAddr := startFakeNS(t)
	fake := startFakeDS(t, func(call int, a dataserver.AppendArgs) (dataserver.AppendReply, error) {
		if call == 1 {
			return dataserver.AppendReply{}, errors.New("ack lost")
		}
		return dataserver.AppendReply{SizeBytes: int64(len(a.Data))}, nil
	})
	for i, id := range []string{"p", "s1", "s2"} {
		registerFake(t, svc, id, []string{"h0", "h1", "h2"}[i], fake.addr)
	}
	c := newWriteClient(t, nsAddr, nil)
	ctx := context.Background()
	if _, err := c.Create(ctx, "f", nameserver.CreateOptions{
		ChunkSize: 64, PreferredReplicas: []string{"p", "s1", "s2"},
	}); err != nil {
		t.Fatal(err)
	}

	size, err := c.Append(ctx, "f", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if size != 5 {
		t.Errorf("size = %d, want 5", size)
	}
	_, seqs := fake.stats()
	if len(seqs) != 2 {
		t.Fatalf("append RPCs = %d, want 2", len(seqs))
	}
	if seqs[0] == 0 {
		t.Error("piece sent with zero sequence number")
	}
	if seqs[0] != seqs[1] {
		t.Errorf("retry changed sequence number: %d then %d", seqs[0], seqs[1])
	}
	if got := c.met.writeFailoverPasses.Value(); got != 1 {
		t.Errorf("writeFailoverPasses = %d, want 1", got)
	}
}

// TestAppendErrorInvalidatesCache is the regression test for the append
// error path forgetting to drop the cached file metadata: a failed append
// must invalidate the cache so the next operation re-resolves the replica
// set instead of re-dialing a dead primary for the whole TTL.
func TestAppendErrorInvalidatesCache(t *testing.T) {
	svc, nsAddr := startFakeNS(t)
	fake := startFakeDS(t, func(int, dataserver.AppendArgs) (dataserver.AppendReply, error) {
		return dataserver.AppendReply{}, errors.New("primary down")
	})
	for i, id := range []string{"p", "s1", "s2"} {
		registerFake(t, svc, id, []string{"h0", "h1", "h2"}[i], fake.addr)
	}
	c := newWriteClient(t, nsAddr, func(o *Options) { o.WriteRetries = 1 })
	ctx := context.Background()
	if _, err := c.Create(ctx, "f", nameserver.CreateOptions{
		ChunkSize: 64, PreferredReplicas: []string{"p", "s1", "s2"},
	}); err != nil {
		t.Fatal(err)
	}
	if !c.cache.has("f") {
		t.Fatal("Create did not prime the metadata cache")
	}

	if _, err := c.Append(ctx, "f", []byte("x")); err == nil {
		t.Fatal("append against failing primary succeeded")
	}
	if c.cache.has("f") {
		t.Error("failed append left stale metadata in the cache")
	}
}

// TestCreatePrepareFailureLeavesNoOrphan is the regression test for a
// failed create stranding a zero-byte file: the nameserver installs the
// metadata before the client prepares the primary, so when Prepare fails
// the client must delete the name again — otherwise every retry of the
// create reports ErrExists against a file no dataserver ever accepted.
func TestCreatePrepareFailureLeavesNoOrphan(t *testing.T) {
	svc, nsAddr := startFakeNS(t)
	// No fake dataserver behind this address: Prepare's dial fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	registerFake(t, svc, "p", "h0", deadAddr)
	registerFake(t, svc, "s1", "h1", deadAddr)

	c := newWriteClient(t, nsAddr, nil)
	ctx := context.Background()
	if _, err := c.Create(ctx, "f", nameserver.CreateOptions{
		ChunkSize: 64, PreferredReplicas: []string{"p", "s1"},
	}); err == nil {
		t.Fatal("create with unreachable primary succeeded")
	}
	if _, err := svc.Lookup("f"); err == nil {
		t.Error("failed create left an orphan file registered")
	}

	// With the name free again, a retry against a live primary succeeds.
	alive := startFakeDS(t, func(int, dataserver.AppendArgs) (dataserver.AppendReply, error) {
		return dataserver.AppendReply{SizeBytes: 1}, nil
	})
	registerFake(t, svc, "p2", "h2", alive.addr)
	if _, err := c.Create(ctx, "f", nameserver.CreateOptions{
		ChunkSize: 64, PreferredReplicas: []string{"p2"}, Replication: 1,
	}); err != nil {
		t.Fatalf("retry after cleaned-up create failed: %v", err)
	}
}

// TestAppendFailsOverToPromotedPrimary drives the full client-side
// failover loop: the primary fails the first attempt, the nameserver
// promotes a survivor (as repair would), and the retried piece lands at
// the new primary under the original sequence number.
func TestAppendFailsOverToPromotedPrimary(t *testing.T) {
	svc, nsAddr := startFakeNS(t)
	dead := startFakeDS(t, func(int, dataserver.AppendArgs) (dataserver.AppendReply, error) {
		return dataserver.AppendReply{}, errors.New("primary crashed")
	})
	alive := startFakeDS(t, func(call int, a dataserver.AppendArgs) (dataserver.AppendReply, error) {
		return dataserver.AppendReply{SizeBytes: int64(len(a.Data))}, nil
	})
	registerFake(t, svc, "p", "h0", dead.addr)
	registerFake(t, svc, "s1", "h1", alive.addr)
	registerFake(t, svc, "s2", "h2", alive.addr)
	registerFake(t, svc, "s3", "h3", alive.addr)

	c := newWriteClient(t, nsAddr, nil)
	ctx := context.Background()
	if _, err := c.Create(ctx, "f", nameserver.CreateOptions{
		ChunkSize: 64, PreferredReplicas: []string{"p", "s1", "s2"},
	}); err != nil {
		t.Fatal(err)
	}

	// Repair replaces the dead primary with s3; s1 is promoted. The client
	// still holds the pre-promotion metadata from Create and must shake it
	// off via invalidate + refresh.
	if err := svc.ReplaceReplica("f", "p", nameserver.ReplicaLoc{
		ServerID: "s3", ControlAddr: alive.addr, DataAddr: alive.addr, Host: "h3",
	}); err != nil {
		t.Fatal(err)
	}

	size, err := c.Append(ctx, "f", []byte("survives"))
	if err != nil {
		t.Fatal(err)
	}
	if size != 8 {
		t.Errorf("size = %d, want 8", size)
	}
	deadCalls, deadSeqs := dead.stats()
	aliveCalls, aliveSeqs := alive.stats()
	if deadCalls != 1 || aliveCalls != 1 {
		t.Fatalf("attempts = %d dead + %d alive, want 1 + 1", deadCalls, aliveCalls)
	}
	if deadSeqs[0] != aliveSeqs[0] {
		t.Errorf("failover changed sequence number: %d then %d", deadSeqs[0], aliveSeqs[0])
	}
	if got := c.met.writeFailoverPasses.Value(); got != 1 {
		t.Errorf("writeFailoverPasses = %d, want 1", got)
	}
}
