package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
)

// fakeClock is a hand-advanced fabric clock: lease expiry in these tests
// never depends on wall time.
type fakeClock struct {
	mu  sync.Mutex
	now float64
}

func (c *fakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}
func (c *fakeClock) Sleep(float64) {}
func (c *fakeClock) advance(d float64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// testCache builds a metaCache over fake nameserver callbacks backed by a
// mutable record table.
type testCache struct {
	*metaCache
	clk *fakeClock
	met *cacheMetrics

	mu        sync.Mutex
	files     map[string]nameserver.FileInfo
	epoch     int64
	lookups   atomic.Int64
	validates atomic.Int64
	lookupErr error // forced transport error, not NotFound
}

func newTestCache(capEntries int, ttl float64) *testCache {
	clk := &fakeClock{}
	met := &cacheMetrics{}
	tc := &testCache{clk: clk, met: met, files: make(map[string]nameserver.FileInfo)}
	mc := newMetaCache(capEntries, ttl, clk, met)
	mc.lookup = func(_ context.Context, name string) (nameserver.FileInfo, error) {
		tc.lookups.Add(1)
		tc.mu.Lock()
		defer tc.mu.Unlock()
		if tc.lookupErr != nil {
			return nameserver.FileInfo{}, tc.lookupErr
		}
		fi, ok := tc.files[name]
		if !ok {
			return nameserver.FileInfo{}, fmt.Errorf("%w: %s", nameserver.ErrNotFound, name)
		}
		return fi, nil
	}
	mc.validate = func(_ context.Context, epoch int64, entries []nameserver.ValidateEntry) ([]nameserver.ValidateResult, int64, error) {
		tc.validates.Add(1)
		tc.mu.Lock()
		defer tc.mu.Unlock()
		out := make([]nameserver.ValidateResult, len(entries))
		for i, e := range entries {
			fi, ok := tc.files[e.Name]
			switch {
			case epoch == tc.epoch:
				out[i] = nameserver.ValidateResult{Name: e.Name, Status: nameserver.ValidateOK}
			case !ok:
				out[i] = nameserver.ValidateResult{Name: e.Name, Status: nameserver.ValidateGone}
			case fi.Version == e.Version:
				out[i] = nameserver.ValidateResult{Name: e.Name, Status: nameserver.ValidateOK}
			default:
				fresh := fi
				out[i] = nameserver.ValidateResult{Name: e.Name, Status: nameserver.ValidateStale, Info: &fresh}
			}
		}
		return out, tc.epoch, nil
	}
	tc.metaCache = mc
	return tc
}

// put installs (or mutates) a record server-side, bumping its version and
// the epoch.
func (tc *testCache) put(name string, size int64) nameserver.FileInfo {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.epoch++
	fi := nameserver.FileInfo{Name: name, SizeBytes: size, ChunkSize: 64, Version: tc.epoch}
	tc.files[name] = fi
	return fi
}

func (tc *testCache) del(name string) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.epoch++
	delete(tc.files, name)
}

func TestCacheHitWithinLease(t *testing.T) {
	tc := newTestCache(8, 10)
	tc.put("a", 1)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := tc.Get(ctx, "a"); err != nil {
			t.Fatal(err)
		}
	}
	if got := tc.lookups.Load(); got != 1 {
		t.Errorf("lookups = %d, want 1 (rest served from lease)", got)
	}
	if hits := tc.met.hits.Value(); hits != 4 {
		t.Errorf("cache hits = %d, want 4", hits)
	}
}

func TestCacheLRUEvictionBounded(t *testing.T) {
	tc := newTestCache(3, 10)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("f%d", i)
		tc.put(name, 1)
		if _, err := tc.Get(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	if n := tc.Len(); n != 3 {
		t.Errorf("cache holds %d entries, want cap 3", n)
	}
	if ev := tc.met.evicted.Value(); ev != 2 {
		t.Errorf("evicted = %d, want 2", ev)
	}
	if g := tc.met.entries.Value(); g != 3 {
		t.Errorf("entries gauge = %d, want 3", g)
	}
	// f0 and f1 were evicted; re-reading them costs fresh lookups while
	// f4 is still a hit.
	before := tc.lookups.Load()
	if _, err := tc.Get(ctx, "f4"); err != nil {
		t.Fatal(err)
	}
	if tc.lookups.Load() != before {
		t.Error("recently used entry was evicted")
	}
	if _, err := tc.Get(ctx, "f0"); err != nil {
		t.Fatal(err)
	}
	if tc.lookups.Load() != before+1 {
		t.Error("evicted entry served without a lookup")
	}
}

// TestCacheLeaseUsesInjectedClock is the regression test for lease expiry
// ticking on the wall clock: with a fabric clock injected, wall time
// passing must not expire a lease, and fabric time passing must.
func TestCacheLeaseUsesInjectedClock(t *testing.T) {
	tc := newTestCache(8, 5)
	tc.put("a", 1)
	ctx := context.Background()
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // wall time is irrelevant
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if got := tc.lookups.Load() + tc.validates.Load(); got != 1 {
		t.Fatalf("wall-clock sleep triggered revalidation: %d nameserver calls", got)
	}
	tc.clk.advance(6) // past the 5 fabric-second lease
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if v := tc.validates.Load(); v != 1 {
		t.Errorf("fabric-clock expiry validates = %d, want 1", v)
	}
}

func TestCacheExpiredLeaseRenewsViaValidate(t *testing.T) {
	tc := newTestCache(8, 5)
	tc.put("a", 1)
	tc.put("b", 2)
	ctx := context.Background()
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Get(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	tc.clk.advance(6)
	// One access renews both expired leases in a single batched Validate;
	// no full Lookup.
	before := tc.lookups.Load()
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if tc.lookups.Load() != before {
		t.Error("lease renewal used a full Lookup")
	}
	if v := tc.validates.Load(); v != 1 {
		t.Fatalf("validates = %d, want 1", v)
	}
	// b's lease rode the same batch: no further nameserver traffic.
	if _, err := tc.Get(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if v := tc.validates.Load(); v != 1 {
		t.Errorf("b's renewal was not batched: validates = %d", v)
	}
	if r := tc.met.renewed.Value(); r != 2 {
		t.Errorf("renewed = %d, want 2", r)
	}
}

func TestCacheValidateRefreshesStaleRecord(t *testing.T) {
	tc := newTestCache(8, 5)
	tc.put("a", 1)
	ctx := context.Background()
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	fresh := tc.put("a", 99) // server-side mutation bumps version+epoch
	tc.clk.advance(6)
	info, err := tc.Get(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != fresh.Version || info.SizeBytes != 99 {
		t.Errorf("got version=%d size=%d, want fresh %d/99", info.Version, info.SizeBytes, fresh.Version)
	}
	if tc.lookups.Load() != 1 {
		t.Errorf("stale refresh used a full Lookup (lookups=%d)", tc.lookups.Load())
	}
	if s := tc.met.staleServed.Value(); s != 1 {
		t.Errorf("stale_served = %d, want 1", s)
	}
}

func TestCacheDeletedFileGoesNegative(t *testing.T) {
	tc := newTestCache(8, 5)
	tc.put("a", 1)
	ctx := context.Background()
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	tc.del("a")
	tc.clk.advance(6)
	if _, err := tc.Get(ctx, "a"); !errors.Is(err, nameserver.ErrNotFound) {
		t.Fatalf("post-delete Get err = %v, want ErrNotFound", err)
	}
	// The gone verdict is negatively cached: repeated opens within the
	// lease cost no nameserver traffic.
	calls := tc.lookups.Load() + tc.validates.Load()
	for i := 0; i < 3; i++ {
		if _, err := tc.Get(ctx, "a"); !errors.Is(err, nameserver.ErrNotFound) {
			t.Fatalf("negative Get err = %v", err)
		}
	}
	if got := tc.lookups.Load() + tc.validates.Load(); got != calls {
		t.Errorf("negative entries not cached: %d extra calls", got-calls)
	}
	// After re-creation the next renewal resolves the fresh record.
	fresh := tc.put("a", 7)
	tc.clk.advance(6)
	info, err := tc.Get(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != fresh.Version {
		t.Errorf("re-created version = %d, want %d", info.Version, fresh.Version)
	}
}

func TestCacheNegativeEntryFromLookup(t *testing.T) {
	tc := newTestCache(8, 5)
	ctx := context.Background()
	if _, err := tc.Get(ctx, "ghost"); !errors.Is(err, nameserver.ErrNotFound) {
		t.Fatalf("Get missing err = %v", err)
	}
	if _, err := tc.Get(ctx, "ghost"); !errors.Is(err, nameserver.ErrNotFound) {
		t.Fatalf("Get missing err = %v", err)
	}
	if got := tc.lookups.Load(); got != 1 {
		t.Errorf("lookups = %d, want 1 (NotFound negatively cached)", got)
	}
}

func TestCacheValidateErrorFallsBackToLookup(t *testing.T) {
	tc := newTestCache(8, 5)
	tc.put("a", 1)
	ctx := context.Background()
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	tc.metaCache.validate = func(context.Context, int64, []nameserver.ValidateEntry) ([]nameserver.ValidateResult, int64, error) {
		return nil, 0, errors.New("validate RPC down")
	}
	tc.clk.advance(6)
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if got := tc.lookups.Load(); got != 2 {
		t.Errorf("lookups = %d, want 2 (fallback after validate failure)", got)
	}
}

// TestCacheOldEpochEntryNotFastPathRenewed is the epoch-soundness
// regression test. The trap: x is cached, then mutated server-side
// (bumping the epoch); the client later adopts that newer epoch from an
// unrelated renewal of y. When x's lease finally expires, the server's
// epoch has not moved since the client's adopted value — a batch
// claiming the client's newest epoch would ride the fast path and renew
// stale x. The batch must instead claim x's own (older) fresh-at epoch,
// forcing the per-entry version check that catches the stale record.
func TestCacheOldEpochEntryNotFastPathRenewed(t *testing.T) {
	tc := newTestCache(8, 100)
	tc.put("y", 1)
	tc.put("x", 1)
	ctx := context.Background()
	if _, err := tc.Get(ctx, "y"); err != nil { // y leased until t=100
		t.Fatal(err)
	}
	tc.clk.advance(50)
	if _, err := tc.Get(ctx, "x"); err != nil { // x leased until t=150
		t.Fatal(err)
	}
	fresh := tc.put("x", 42) // server mutates x: version and epoch move
	// t=101: only y is expired. Its renewal adopts the server's newest
	// epoch — the one that already covers x's mutation.
	tc.clk.advance(51)
	if _, err := tc.Get(ctx, "y"); err != nil {
		t.Fatal(err)
	}
	// t=160: x expires and validates alone, with no further server-side
	// epoch movement. The fast path must not renew it.
	tc.clk.advance(59)
	info, err := tc.Get(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != fresh.Version || info.SizeBytes != 42 {
		t.Errorf("stale x fast-path renewed under adopted epoch: version=%d size=%d, want %d/42",
			info.Version, info.SizeBytes, fresh.Version)
	}
	if got := tc.lookups.Load(); got != 2 {
		t.Errorf("lookups = %d, want 2 (renewals must stay on Validate)", got)
	}
}

// flightCount reports in-flight lookups; test helper.
func (mc *metaCache) flightCount() int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return len(mc.flights)
}

func TestCacheSingleflightCoalescesMisses(t *testing.T) {
	tc := newTestCache(8, 10)
	tc.put("a", 1)
	release := make(chan struct{})
	var calls atomic.Int64
	tc.metaCache.lookup = func(_ context.Context, name string) (nameserver.FileInfo, error) {
		calls.Add(1)
		<-release
		tc.mu.Lock()
		defer tc.mu.Unlock()
		return tc.files[name], nil
	}
	const N = 16
	var wg sync.WaitGroup
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = tc.Get(context.Background(), "a")
		}()
	}
	// Let the stragglers pile onto the leader's flight, then release it.
	for tc.met.coalesced.Value() < N-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("lookup calls = %d, want 1 (misses coalesced)", got)
	}
}

func TestCacheSingleflightHonorsContext(t *testing.T) {
	tc := newTestCache(8, 10)
	release := make(chan struct{})
	defer close(release)
	tc.metaCache.lookup = func(context.Context, string) (nameserver.FileInfo, error) {
		<-release
		return nameserver.FileInfo{}, errors.New("too late")
	}
	leaderGone := make(chan struct{})
	go func() {
		defer close(leaderGone)
		_, _ = tc.Get(context.Background(), "a")
	}()
	for tc.flightCount() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tc.Get(ctx, "a"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled follower err = %v, want context.Canceled", err)
	}
}

// TestObserveSizeVersionGuard is the resurrection-race regression test:
// a size observed under an old record version must not fold into (or
// resurrect) a newer or invalidated cache entry.
func TestObserveSizeVersionGuard(t *testing.T) {
	tc := newTestCache(8, 10)
	fi := tc.put("a", 10)
	ctx := context.Background()
	if _, err := tc.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}

	// Same version, larger size: folds.
	tc.ObserveSize("a", fi.Version, 20)
	if info, _ := tc.Get(ctx, "a"); info.SizeBytes != 20 {
		t.Errorf("same-version observe did not fold: size=%d", info.SizeBytes)
	}
	// Stale version: ignored even though the size is larger.
	tc.ObserveSize("a", fi.Version-1, 1000)
	if info, _ := tc.Get(ctx, "a"); info.SizeBytes != 20 {
		t.Errorf("stale-version observe folded: size=%d", info.SizeBytes)
	}
	// Sizes never shrink.
	tc.ObserveSize("a", fi.Version, 5)
	if info, _ := tc.Get(ctx, "a"); info.SizeBytes != 20 {
		t.Errorf("shrinking observe folded: size=%d", info.SizeBytes)
	}
	// After invalidation the observe must not resurrect the entry.
	tc.Invalidate("a")
	tc.ObserveSize("a", fi.Version, 30)
	if tc.has("a") {
		t.Error("ObserveSize resurrected an invalidated entry")
	}
}

// TestCacheConcurrentExercise drives every cache operation from many
// goroutines at once; run under -race it is the data-race regression
// test for the cache layer (hit/miss/evict/invalidate/observe/renewal/
// singleflight all interleaving).
func TestCacheConcurrentExercise(t *testing.T) {
	tc := newTestCache(16, 0.005)
	names := make([]string, 32) // 2× cap so eviction churns constantly
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
		tc.put(names[i], int64(i))
	}
	stop := make(chan struct{})
	// A clock mover so leases expire mid-storm.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tc.clk.advance(0.001)
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 400; i++ {
				name := names[(g*13+i)%len(names)]
				switch i % 5 {
				case 0, 1, 2:
					info, err := tc.Get(ctx, name)
					if err != nil && !errors.Is(err, nameserver.ErrNotFound) {
						t.Errorf("get %s: %v", name, err)
						return
					}
					tc.ObserveSize(name, info.Version, info.SizeBytes+1)
				case 3:
					tc.Invalidate(name)
				case 4:
					if i%50 == 4 {
						tc.put(name, int64(i)) // server-side mutation
					} else if _, err := tc.Get(ctx, name); err != nil && !errors.Is(err, nameserver.ErrNotFound) {
						t.Errorf("get %s: %v", name, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if n := tc.Len(); n > 16 {
		t.Errorf("cache grew past its cap under concurrency: %d entries", n)
	}
}
