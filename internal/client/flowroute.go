package client

import (
	"context"
	"errors"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/flowctl"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
)

// flowRouter resolves which flowctl shard serves this client's pod and
// caches the route under its directory epoch. With a sharded control
// plane the Flowserver address is not static configuration: the shard
// owning a pod changes when the directory fails a dead shard over, and
// the bump of the directory epoch is the only signal. The router's
// contract is therefore epoch-checked rebinding: a cached peer bound
// under epoch E must stop serving new Selects the moment a Lookup
// returns epoch > E — even while the old shard's process is still
// alive and its pooled session still connected. (Routing new work to a
// live-but-deposed shard would split the pod's flow bookkeeping across
// two models; the regression test in flowroute_test.go pins this.)
type flowRouter struct {
	dc    *flowctl.DirectoryClient
	pool  *rpc.Pool
	pod   int
	ttl   float64 // route reuse window, fabric seconds
	clock fabric.Clock

	mu    sync.Mutex
	cur   *flowserver.RPCClient
	addr  string
	epoch int64
	fresh float64 // route trusted until (fabric seconds)
	have  bool
}

func newFlowRouter(dirAddr string, pod int, ttl float64, clock fabric.Clock, pool *rpc.Pool) *flowRouter {
	if clock == nil {
		clock = fabric.NewWallClock()
	}
	return &flowRouter{
		dc:    flowctl.NewDirectoryClient(pool.Peer(dirAddr)),
		pool:  pool,
		pod:   pod,
		ttl:   ttl,
		clock: clock,
	}
}

// stub returns the Flowserver stub for the shard currently owning this
// client's pod, resolving through the directory when the cached route's
// reuse window lapsed. A Lookup failure degrades to the cached route if
// one exists (a stale shard beats none — Select itself will fail over),
// else reports the error so the caller runs degraded.
func (fr *flowRouter) stub(ctx context.Context) (*flowserver.RPCClient, error) {
	now := fr.clock.Now()
	fr.mu.Lock()
	if fr.have && now < fr.fresh {
		cur := fr.cur
		fr.mu.Unlock()
		return cur, nil
	}
	fr.mu.Unlock()

	rep, err := fr.dc.Lookup(ctx, fr.pod)

	fr.mu.Lock()
	defer fr.mu.Unlock()
	if err != nil {
		if fr.have {
			return fr.cur, nil
		}
		return nil, err
	}
	switch {
	case !fr.have, rep.Epoch > fr.epoch:
		// Fresh route, or the directory moved ownership (failover bumped
		// the epoch): bind to the new owner. The old peer session stays
		// in the pool for other uses but serves no further Selects here.
		fr.bind(rep.Addr, rep.Epoch)
	case rep.Epoch == fr.epoch && rep.Addr != fr.addr:
		// Same epoch, new address: the shard re-registered (restart).
		fr.bind(rep.Addr, rep.Epoch)
	default:
		// rep.Epoch < fr.epoch: a stale directory replica answered with
		// ownership this client already knows to be superseded. Keep the
		// newer binding — rebinding backwards would reintroduce exactly
		// the deposed-shard hazard the epoch exists to prevent.
	}
	fr.have = true
	fr.fresh = now + fr.ttl
	return fr.cur, nil
}

func (fr *flowRouter) bind(addr string, epoch int64) {
	fr.cur = flowserver.NewRPCClient(fr.pool.Peer(addr))
	fr.addr = addr
	fr.epoch = epoch
}

// invalidate drops the cached route so the next stub() resolves through
// the directory immediately — called after a Select against the cached
// shard fails, which is how a client discovers a kill before its route
// TTL lapses.
func (fr *flowRouter) invalidate() {
	fr.mu.Lock()
	fr.have = false
	fr.mu.Unlock()
}

// errNoFlowserver marks a selection attempted with neither a static
// Flowserver address nor a resolvable directory route; callers degrade.
var errNoFlowserver = errors.New("client: no flowserver configured")

// flowStub returns the Flowserver stub to use for the next selection:
// the statically configured one, the directory-routed one, or nil when
// the client runs without a Flowserver (degraded replica selection).
func (c *Client) flowStub(ctx context.Context) *flowserver.RPCClient {
	if c.fs != nil {
		return c.fs
	}
	if c.fr == nil {
		return nil
	}
	stub, err := c.fr.stub(ctx)
	if err != nil {
		return nil
	}
	return stub
}

// flowSelect runs one read Select against the owning shard with
// directory-driven re-routing: a failure invalidates the cached route,
// re-resolves (picking up a freshly promoted shard), and retries once
// before the caller degrades to locality-order selection.
func (c *Client) flowSelect(ctx context.Context, args flowserver.SelectArgs) ([]flowserver.AssignmentDTO, *flowserver.RPCClient, error) {
	stub := c.flowStub(ctx)
	if stub == nil {
		return nil, nil, errNoFlowserver
	}
	as, err := stub.Select(ctx, args)
	if err == nil {
		return as, stub, nil
	}
	if c.fr == nil || ctx.Err() != nil {
		return nil, nil, err
	}
	c.fr.invalidate()
	stub2, rerr := c.fr.stub(ctx)
	if rerr != nil || stub2 == nil {
		return nil, nil, err
	}
	as, err = stub2.Select(ctx, args)
	if err != nil {
		return nil, nil, err
	}
	return as, stub2, nil
}
