package client

import (
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/testutil"
)

// TestMain fails the package if any test leaks goroutines — every
// cluster, client, and server a test starts must be torn down, or a
// stack dump of the stragglers is printed.
func TestMain(m *testing.M) {
	testutil.VerifyNoLeaks(m)
}
