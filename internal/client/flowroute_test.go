package client

import (
	"context"
	"encoding/json"
	"net"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/flowctl"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// startMarkedFlowserver serves fs.Select returning a fixed marker, so a
// test can tell which shard a Select landed on.
func startMarkedFlowserver(t *testing.T, marker string) string {
	t.Helper()
	srv := wire.NewServer()
	err := srv.Register(flowserver.MethodSelect, func(_ context.Context, _ json.RawMessage) (any, error) {
		return []flowserver.AssignmentDTO{{ReplicaHost: marker}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestFlowRouterRebindsOnEpochBump is the directory re-routing
// regression test: once a pod's ownership moves under a new epoch, the
// client's cached peer for the deposed shard must not serve another
// Select — even though that shard's process is still alive and the
// pooled session to it still healthy.
func TestFlowRouterRebindsOnEpochBump(t *testing.T) {
	addr0 := startMarkedFlowserver(t, "shard0")
	addr1 := startMarkedFlowserver(t, "shard1")

	dir, err := flowctl.NewDirectory(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Heartbeat(0, addr0, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Heartbeat(1, addr1, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	dirSrv := wire.NewServer()
	if err := flowctl.RegisterDirectoryRPC(dirSrv, dir, func() float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	dirLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dirSrv.Serve(dirLn) //nolint:errcheck
	defer dirSrv.Close()

	pool := rpc.NewPool(rpc.Options{})
	defer pool.Close()
	// ttl < 0: every stub() consults the directory, so the test observes
	// the rebind on the very next Select after the epoch bump.
	fr := newFlowRouter(dirLn.Addr().String(), 1, -1, nil, pool)

	ctx := context.Background()
	selectVia := func() string {
		t.Helper()
		stub, err := fr.stub(ctx)
		if err != nil {
			t.Fatal(err)
		}
		as, err := stub.Select(ctx, flowserver.SelectArgs{})
		if err != nil {
			t.Fatal(err)
		}
		return as[0].ReplicaHost
	}

	// Pod 1 belongs to shard 1.
	if got := selectVia(); got != "shard1" {
		t.Fatalf("pre-failover Select landed on %q, want shard1", got)
	}

	// Shard 1 is declared dead; the directory promotes pod 1 to shard 0
	// under a new epoch. Shard 1's server keeps running — the stale peer
	// stays perfectly reachable, which is exactly the hazard.
	if _, changed := dir.MarkDead(1); !changed {
		t.Fatal("MarkDead(1) changed nothing")
	}
	if got := selectVia(); got != "shard0" {
		t.Fatalf("post-failover Select landed on %q, want shard0 (stale peer still serving)", got)
	}

	// A lower-epoch answer must never rebind backwards: re-binding is
	// monotone in the epoch.
	fr.mu.Lock()
	epoch := fr.epoch
	fr.mu.Unlock()
	if epoch < 2 {
		t.Fatalf("router epoch after failover = %d, want >= 2", epoch)
	}
}

// TestFlowRouterCachesWithinTTL: with a positive TTL the route is
// reused without a directory round trip (the epoch check happens at
// refresh time, not per call).
func TestFlowRouterCachesWithinTTL(t *testing.T) {
	addr1 := startMarkedFlowserver(t, "shard1")
	dir, err := flowctl.NewDirectory(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Heartbeat(0, addr1, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Heartbeat(1, addr1, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	dirSrv := wire.NewServer()
	if err := flowctl.RegisterDirectoryRPC(dirSrv, dir, func() float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	dirLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dirSrv.Serve(dirLn) //nolint:errcheck

	pool := rpc.NewPool(rpc.Options{})
	defer pool.Close()
	fr := newFlowRouter(dirLn.Addr().String(), 0, 3600, nil, pool)
	ctx := context.Background()
	if _, err := fr.stub(ctx); err != nil {
		t.Fatal(err)
	}
	dirSrv.Close() // directory gone; the cached route must still serve
	if stub, err := fr.stub(ctx); err != nil || stub == nil {
		t.Fatalf("cached route not honored after directory loss: %v", err)
	}
}
