package obs

// The flow-model drift auditor quantifies the gap the paper's whole
// scheduling argument depends on staying small (§4.2): the Flowserver
// selects paths from *estimated* per-flow bandwidth shares, refreshed
// only by periodic stats polls and pinned by update-freezes, while the
// fabric knows every flow's exact fair-share rate. On every stats-poll
// tick the driver feeds each live flow's (estimate, ground truth) pair
// through Record; the auditor accumulates the relative-error histogram
// whose mean and p95 the experiment reports publish.

// driftLo / driftHi bound the relative-error histogram: errors below 2%
// count as exact (underflow, reported 0), errors at or above 1000x land
// in the overflow bucket. All drift auditors share this geometry so
// their histograms merge.
const (
	driftLo = 0.02
	driftHi = 1e3
)

// DriftAuditor accumulates flow-model drift samples. The zero value is
// not usable; create with NewDriftAuditor. Safe for concurrent use.
type DriftAuditor struct {
	// RelErr is the histogram of |estimate − truth| / truth across all
	// samples with positive, finite truth.
	RelErr *Histogram
	// Samples counts every Record call.
	Samples Counter
	// ZeroTruth counts samples whose ground-truth rate was zero or
	// unavailable (flow finished between the poll and the audit); these
	// carry no drift information and are excluded from RelErr.
	ZeroTruth Counter
}

// NewDriftAuditor creates an empty auditor.
func NewDriftAuditor() *DriftAuditor {
	return &DriftAuditor{RelErr: NewHistogram(driftLo, driftHi)}
}

// Record compares one flow's bandwidth estimate against the fabric's
// ground-truth rate (both in bits per second).
func (a *DriftAuditor) Record(estimate, truth float64) {
	a.Samples.Inc()
	if !(truth > 0) || truth != truth || estimate != estimate {
		a.ZeroTruth.Inc()
		return
	}
	rel := (estimate - truth) / truth
	if rel < 0 {
		rel = -rel
	}
	a.RelErr.Observe(rel)
}

// MergeInto folds the auditor's accumulated state into a registry under
// the given name prefix (e.g. "experiment.drift.mayflower"), creating
// the destination metrics on first use. Per-run auditors stay isolated
// while the process-wide registry accumulates across runs.
func (a *DriftAuditor) MergeInto(r *Registry, prefix string) {
	r.Histogram(prefix+".rel_err", driftLo, driftHi).Merge(a.RelErr)
	r.Counter(prefix + ".samples").Add(a.Samples.Value())
	r.Counter(prefix + ".zero_truth").Add(a.ZeroTruth.Value())
}

// DriftSummary condenses an audit for experiment results and docs.
type DriftSummary struct {
	// Samples is the number of (estimate, truth) comparisons; ZeroTruth
	// of them had no usable ground truth.
	Samples   int64 `json:"samples"`
	ZeroTruth int64 `json:"zero_truth"`
	// MeanRelErr is the exact mean relative error; the quantiles are
	// bucket-resolution estimates. Relative errors under 2% report as 0.
	MeanRelErr float64 `json:"mean_rel_err"`
	P50RelErr  float64 `json:"p50_rel_err"`
	P95RelErr  float64 `json:"p95_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
	// Flowserver-side poll accounting over the audited run: how often
	// update-freezes held an estimate against a poll, how often they
	// expired, and why polls were dropped.
	FreezeHits        int64 `json:"freeze_hits"`
	FreezeExpirations int64 `json:"freeze_expirations"`
	PollDropsDT       int64 `json:"poll_drops_dt"`
	PollDropsRegress  int64 `json:"poll_drops_regress"`
	PollDropsSkew     int64 `json:"poll_drops_skew"`
}

// Summary snapshots the drift histogram. The flowserver-side counters
// are the caller's to fill in (they live in the Flowserver's metrics,
// not the auditor).
func (a *DriftAuditor) Summary() DriftSummary {
	return DriftSummary{
		Samples:    a.Samples.Value(),
		ZeroTruth:  a.ZeroTruth.Value(),
		MeanRelErr: a.RelErr.Mean(),
		P50RelErr:  a.RelErr.Quantile(0.50),
		P95RelErr:  a.RelErr.Quantile(0.95),
		MaxRelErr:  a.RelErr.Max(),
	}
}
