package obs

import (
	"math"
	"testing"
)

func TestDriftAuditorExact(t *testing.T) {
	a := NewDriftAuditor()
	for i := 0; i < 50; i++ {
		a.Record(100e6, 100e6) // estimate == truth
	}
	s := a.Summary()
	if s.Samples != 50 || s.ZeroTruth != 0 {
		t.Fatalf("samples=%d zero=%d, want 50/0", s.Samples, s.ZeroTruth)
	}
	if s.MeanRelErr != 0 || s.P95RelErr != 0 || s.MaxRelErr != 0 {
		t.Fatalf("exact estimates must report zero drift: %+v", s)
	}
}

func TestDriftAuditorStale(t *testing.T) {
	a := NewDriftAuditor()
	// Stale estimate: model thinks 100 Mb/s, fabric says 50 Mb/s → rel err 1.0.
	a.Record(100e6, 50e6)
	s := a.Summary()
	if s.MeanRelErr != 1.0 {
		t.Fatalf("mean rel err = %g, want 1.0", s.MeanRelErr)
	}
	// p95 is bucket-resolution around 1.0.
	if s.P95RelErr < 0.7 || s.P95RelErr > 1.4 {
		t.Fatalf("p95 rel err = %g, want ≈1.0", s.P95RelErr)
	}
	// Under-2% errors count as exact.
	b := NewDriftAuditor()
	b.Record(101e6, 100e6)
	if got := b.Summary().P50RelErr; got != 0 {
		t.Fatalf("1%% error p50 = %g, want 0 (under driftLo)", got)
	}
}

func TestDriftAuditorZeroTruth(t *testing.T) {
	a := NewDriftAuditor()
	a.Record(100e6, 0)
	a.Record(100e6, -1)
	a.Record(math.NaN(), 100e6)
	a.Record(100e6, math.NaN())
	s := a.Summary()
	if s.Samples != 4 || s.ZeroTruth != 4 {
		t.Fatalf("samples=%d zero=%d, want 4/4", s.Samples, s.ZeroTruth)
	}
	if s.MeanRelErr != 0 {
		t.Fatalf("zero-truth samples leaked into RelErr: %+v", s)
	}
}

func TestDriftAuditorMergeInto(t *testing.T) {
	reg := NewRegistry()
	for run := 0; run < 2; run++ {
		a := NewDriftAuditor()
		a.Record(100e6, 50e6)
		a.Record(100e6, 0)
		a.MergeInto(reg, "experiment.drift.mayflower")
	}
	snap := reg.Snapshot()
	if snap.Counters["experiment.drift.mayflower.samples"] != 4 {
		t.Errorf("merged samples = %d, want 4", snap.Counters["experiment.drift.mayflower.samples"])
	}
	if snap.Counters["experiment.drift.mayflower.zero_truth"] != 2 {
		t.Errorf("merged zero_truth = %d, want 2", snap.Counters["experiment.drift.mayflower.zero_truth"])
	}
	if h := snap.Histograms["experiment.drift.mayflower.rel_err"]; h.Count != 2 || h.Mean != 1.0 {
		t.Errorf("merged rel_err = %+v, want count 2 mean 1.0", h)
	}
}
