// Package obs is Mayflower's control-plane observability core: atomic
// counters, gauges, log-bucketed histograms, and a named registry with a
// cheap JSON snapshot. The paper's co-design claims (§4.2) rest on the
// Flowserver's model staying close to the fabric's ground truth between
// stats polls; this package supplies the machinery that measures that —
// the flow-model drift auditor (see drift.go) and the hot-seam metrics
// the flowserver, client, experiment driver and both fabric backends
// report through.
//
// Everything here is safe for concurrent use and deliberately cheap on
// the writer side: counters and gauges are single atomic words, and a
// histogram observation is one logarithm plus two atomic adds, so
// instrumentation can sit directly on selection and reallocation hot
// paths without perturbing benchmark results or fixed-seed experiment
// tables. Nothing in this package depends on any other Mayflower
// package.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n should be >= 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer value. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (use for live up/down quantities).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates float64 values with CAS, so histogram sums are
// exact under concurrency (modulo float association).
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *atomicFloat) max(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (a *atomicFloat) Value() float64 { return math.Float64frombits(a.bits.Load()) }

// bucketsPerDecade fixes the histogram resolution: 8 log-spaced buckets
// per factor of ten, i.e. bucket edges grow by 10^(1/8) ≈ 1.33, giving
// quantiles a worst-case relative error around ±15%.
const bucketsPerDecade = 8

// Histogram is a log-bucketed histogram of positive values (latencies in
// seconds, relative-error ratios). Values below lo land in a dedicated
// underflow bucket reported as 0 (an exact match, for ratios), values at
// or above hi land in an overflow bucket reported as hi. Observation is
// lock-free: one logarithm and two atomic adds.
type Histogram struct {
	lo, hi  float64
	logLo   float64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
	maxSeen atomicFloat
}

// NewHistogram creates a histogram covering [lo, hi) with 8 log-spaced
// buckets per decade. Requires 0 < lo < hi.
func NewHistogram(lo, hi float64) *Histogram {
	if !(lo > 0) || !(hi > lo) {
		panic("obs: NewHistogram requires 0 < lo < hi")
	}
	decades := math.Log10(hi / lo)
	n := int(math.Ceil(decades*bucketsPerDecade)) + 2 // + underflow + overflow
	return &Histogram{
		lo:      lo,
		hi:      hi,
		logLo:   math.Log10(lo),
		buckets: make([]atomic.Int64, n),
	}
}

// Observe records one value. Non-positive and sub-lo values count in the
// underflow bucket; NaN is ignored.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := 0
	switch {
	case v < h.lo:
		// underflow (including v <= 0): bucket 0
	case v >= h.hi || math.IsInf(v, 1):
		idx = len(h.buckets) - 1
	default:
		idx = 1 + int((math.Log10(v)-h.logLo)*bucketsPerDecade)
		if idx >= len(h.buckets)-1 {
			idx = len(h.buckets) - 2
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	if !math.IsInf(v, 1) {
		h.sum.Add(v)
		h.maxSeen.max(v)
	} else {
		h.maxSeen.max(h.hi)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the exact mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Value() / float64(n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.maxSeen.Value() }

// bucketValue returns the representative value reported for bucket i:
// 0 for underflow, hi for overflow, else the geometric midpoint of the
// bucket's bounds.
func (h *Histogram) bucketValue(i int) float64 {
	switch {
	case i == 0:
		return 0
	case i >= len(h.buckets)-1:
		return h.hi
	default:
		loEdge := h.lo * math.Pow(10, float64(i-1)/bucketsPerDecade)
		hiEdge := h.lo * math.Pow(10, float64(i)/bucketsPerDecade)
		return math.Sqrt(loEdge * hiEdge)
	}
}

// Quantile returns an estimate of the p-quantile (0 <= p <= 1), accurate
// to the bucket resolution. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return h.bucketValue(i)
		}
	}
	return h.hi
}

// Merge adds every observation recorded in src into h. The histograms
// must share the same geometry (created with equal lo and hi). The
// experiment driver uses this to fold a per-run drift histogram into a
// process-wide registry without sharing writer state across runs.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil {
		return
	}
	if len(src.buckets) != len(h.buckets) || src.lo != h.lo || src.hi != h.hi {
		panic("obs: Merge across histogram geometries")
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Value())
	h.maxSeen.max(src.maxSeen.Value())
}

// HistogramSnapshot is the exported summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot summarizes the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
