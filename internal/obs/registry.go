package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
)

// Registry is a named collection of metrics. Lookup is get-or-create, so
// independent components wire themselves to shared names without
// coordination; components that own their metric structs (for zero-cost
// field access on hot paths) register the same pointers under names with
// the Register* methods. All methods are safe for concurrent use; the
// metric handles returned never change for a given name.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds if needed (bounds are ignored for an existing
// histogram).
func (r *Registry) Histogram(name string, lo, hi float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(lo, hi)
		r.hists[name] = h
	}
	return h
}

// RegisterCounter publishes an externally owned counter under name,
// replacing any previous registration.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// RegisterGauge publishes an externally owned gauge under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = g
}

// RegisterGaugeFunc publishes a computed gauge: fn is evaluated at
// snapshot time. fn must be safe to call from any goroutine and must not
// call back into the registry.
func (r *Registry) RegisterGaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// RegisterHistogram publishes an externally owned histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}

// Merge folds every metric registered in src into r under the given name
// prefix: counter values add onto r's counters, gauge values overwrite,
// histograms merge bucket-for-bucket (created in r with src's geometry
// when absent), and gauge funcs are re-registered so future snapshots of
// r evaluate them live. src is read under its own lock and left
// untouched. The sweep runner uses this to fold each experiment cell's
// private registry into a parent registry under a per-cell prefix, so
// concurrent cells never share writer state and the parent's layout is
// deterministic. Merging a registry into itself is a no-op.
func (r *Registry) Merge(src *Registry, prefix string) {
	if src == nil || src == r {
		return
	}
	// Copy src's tables first, then apply under r's lock: never holding
	// both locks rules out deadlock regardless of merge direction.
	src.mu.RLock()
	counters := make(map[string]int64, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(src.gauges))
	for name, g := range src.gauges {
		gauges[name] = g.Value()
	}
	gaugeFuncs := make(map[string]func() float64, len(src.gaugeFuncs))
	for name, fn := range src.gaugeFuncs {
		gaugeFuncs[name] = fn
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for name, h := range src.hists {
		hists[name] = h
	}
	src.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range counters {
		c, ok := r.counters[prefix+name]
		if !ok {
			c = &Counter{}
			r.counters[prefix+name] = c
		}
		c.Add(v)
	}
	for name, v := range gauges {
		g, ok := r.gauges[prefix+name]
		if !ok {
			g = &Gauge{}
			r.gauges[prefix+name] = g
		}
		g.Set(v)
	}
	for name, fn := range gaugeFuncs {
		r.gaugeFuncs[prefix+name] = fn
	}
	for name, src := range hists {
		h, ok := r.hists[prefix+name]
		if !ok {
			h = NewHistogram(src.lo, src.hi)
			r.hists[prefix+name] = h
		}
		h.Merge(src)
	}
}

// Snapshot is a point-in-time, JSON-marshalable view of every metric in
// a registry. Map keys marshal in sorted order, so snapshots of the same
// state are byte-identical.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered metric. Gauge
// funcs are evaluated outside the registry lock.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = float64(g.Value())
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		funcs[name] = fn
	}
	r.mu.RUnlock()
	for name, fn := range funcs {
		snap.Gauges[name] = fn()
	}
	return snap
}

// WriteJSON writes the current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler returns an expvar-style HTTP handler serving the registry
// snapshot as JSON; mount it at /debug/metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Serve starts a background HTTP server on addr exposing the registry at
// /debug/metrics. It returns the bound server (Close to stop) and the
// resolved listen address.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", r.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return srv, ln.Addr().String(), nil
}

// RegisterRuntimeMetrics publishes Go runtime gauges (goroutines, heap
// bytes, GC cycles) under the "go." prefix, evaluated at snapshot time.
func RegisterRuntimeMetrics(r *Registry) {
	r.RegisterGaugeFunc("go.goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.RegisterGaugeFunc("go.heap_alloc_bytes", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	r.RegisterGaugeFunc("go.total_alloc_bytes", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.TotalAlloc)
	})
	r.RegisterGaugeFunc("go.num_gc", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.NumGC)
	})
}
