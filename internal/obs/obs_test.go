package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1e-3, 1e3)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.0)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Mean(); got != 1.0 {
		t.Fatalf("mean = %g, want 1 (sum is exact)", got)
	}
	// Quantiles are bucket-resolution: within ±1 bucket width (~33%).
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if q := h.Quantile(p); q < 0.7 || q > 1.4 {
			t.Errorf("q%g = %g, want ≈1", p*100, q)
		}
	}
	if got := h.Max(); got != 1.0 {
		t.Fatalf("max = %g, want 1", got)
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(0.01, 10)
	h.Observe(0)      // underflow
	h.Observe(-5)     // underflow
	h.Observe(0.0001) // underflow
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("all-underflow q99 = %g, want 0", got)
	}
	h2 := NewHistogram(0.01, 10)
	h2.Observe(1e9)
	h2.Observe(math.Inf(1))
	if got := h2.Quantile(0.5); got != 10 {
		t.Fatalf("overflow q50 = %g, want hi=10", got)
	}
	if got := h2.Max(); got != 1e9 {
		t.Fatalf("max = %g, want 1e9", got)
	}
	h2.Observe(math.NaN()) // ignored
	if got := h2.Count(); got != 2 {
		t.Fatalf("count after NaN = %d, want 2", got)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram(1e-6, 1e6)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i)) // 1..1000
	}
	q50, q95, q99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(q50 <= q95 && q95 <= q99) {
		t.Fatalf("quantiles not monotone: %g %g %g", q50, q95, q99)
	}
	// p50 of uniform 1..1000 is 500; log buckets are ±~15% accurate.
	if q50 < 350 || q50 > 700 {
		t.Errorf("q50 = %g, want ≈500", q50)
	}
	if q95 < 700 || q95 > 1300 {
		t.Errorf("q95 = %g, want ≈950", q95)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0.01, 100)
	b := NewHistogram(0.01, 100)
	for i := 0; i < 10; i++ {
		a.Observe(1)
		b.Observe(4)
	}
	a.Merge(b)
	if got := a.Count(); got != 20 {
		t.Fatalf("merged count = %d, want 20", got)
	}
	if got := a.Mean(); got != 2.5 {
		t.Fatalf("merged mean = %g, want 2.5", got)
	}
	if got := a.Max(); got != 4 {
		t.Fatalf("merged max = %g, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("merge across geometries did not panic")
		}
	}()
	a.Merge(NewHistogram(0.1, 100))
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Counter("a.count").Inc() // same counter
	r.Gauge("b.gauge").Set(-2)
	r.RegisterGaugeFunc("c.func", func() float64 { return 1.5 })
	r.Histogram("d.hist", 1e-3, 1e3).Observe(0.5)

	snap := r.Snapshot()
	if snap.Counters["a.count"] != 4 {
		t.Errorf("counter = %d, want 4", snap.Counters["a.count"])
	}
	if snap.Gauges["b.gauge"] != -2 || snap.Gauges["c.func"] != 1.5 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	if snap.Histograms["d.hist"].Count != 1 {
		t.Errorf("hist snapshot = %+v", snap.Histograms["d.hist"])
	}

	var buf jsonBuf
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.b, &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, buf.b)
	}
	if decoded.Counters["a.count"] != 4 {
		t.Errorf("decoded counter = %d", decoded.Counters["a.count"])
	}
}

type jsonBuf struct{ b []byte }

func (j *jsonBuf) Write(p []byte) (int, error) { j.b = append(j.b, p...); return len(p), nil }

func TestRegistryRegisterExisting(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(9)
	r.RegisterCounter("owned", &c)
	if got := r.Counter("owned"); got != &c {
		t.Fatal("get-or-create did not return the registered counter")
	}
	h := NewHistogram(1, 10)
	r.RegisterHistogram("owned.h", h)
	if got := r.Histogram("owned.h", 1, 10); got != h {
		t.Fatal("get-or-create did not return the registered histogram")
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	RegisterRuntimeMetrics(r)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if snap.Counters["x"] != 1 {
		t.Errorf("served counter = %d, want 1", snap.Counters["x"])
	}
	if snap.Gauges["go.goroutines"] <= 0 {
		t.Errorf("runtime gauge missing: %v", snap.Gauges)
	}
}

// TestConcurrentWriters exercises every writer path under the race
// detector.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1e-3, 1e3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				h.Observe(float64(i%100) / 10)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestRegistryMerge(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("cell.a.jobs").Add(5) // pre-existing: merge must add, not replace

	cell := NewRegistry()
	cell.Counter("jobs").Add(7)
	cell.Gauge("stalled").Set(3)
	cell.Histogram("lat", 1e-3, 1e3).Observe(0.5)
	cell.Histogram("lat", 1e-3, 1e3).Observe(2)
	cell.RegisterGaugeFunc("live", func() float64 { return 42 })

	parent.Merge(cell, "cell.a.")
	snap := parent.Snapshot()
	if got := snap.Counters["cell.a.jobs"]; got != 12 {
		t.Errorf("merged counter = %d, want 12 (5 pre-existing + 7)", got)
	}
	if got := snap.Gauges["cell.a.stalled"]; got != 3 {
		t.Errorf("merged gauge = %g, want 3", got)
	}
	if got := snap.Histograms["cell.a.lat"].Count; got != 2 {
		t.Errorf("merged histogram count = %d, want 2", got)
	}
	if got := snap.Gauges["cell.a.live"]; got != 42 {
		t.Errorf("merged gauge func = %g, want 42", got)
	}

	// Merging a second cell under a distinct prefix must not disturb the
	// first cell's names.
	other := NewRegistry()
	other.Counter("jobs").Add(100)
	parent.Merge(other, "cell.b.")
	snap = parent.Snapshot()
	if got := snap.Counters["cell.a.jobs"]; got != 12 {
		t.Errorf("cell.a.jobs disturbed by unrelated merge: %d", got)
	}
	if got := snap.Counters["cell.b.jobs"]; got != 100 {
		t.Errorf("cell.b.jobs = %d, want 100", got)
	}

	// Self-merge and nil-merge are no-ops.
	parent.Merge(parent, "loop.")
	parent.Merge(nil, "nil.")
	snap = parent.Snapshot()
	if _, ok := snap.Counters["loop.cell.a.jobs"]; ok {
		t.Error("self-merge duplicated metrics")
	}
}

func TestRegistryMergeConcurrent(t *testing.T) {
	parent := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cell := NewRegistry()
			cell.Counter("n").Add(int64(i + 1))
			cell.Histogram("h", 1e-3, 1e3).Observe(float64(i + 1))
			parent.Merge(cell, fmt.Sprintf("cell.%d.", i))
		}()
	}
	wg.Wait()
	snap := parent.Snapshot()
	for i := 0; i < 8; i++ {
		if got := snap.Counters[fmt.Sprintf("cell.%d.n", i)]; got != int64(i+1) {
			t.Errorf("cell.%d.n = %d, want %d", i, got, i+1)
		}
	}
}
