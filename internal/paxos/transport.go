package paxos

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// RPC method names for the wire transport.
const (
	MethodPrepare = "paxos.Prepare"
	MethodAccept  = "paxos.Accept"
	MethodLearn   = "paxos.Learn"
)

// RegisterRPC exposes a node's acceptor and learner roles on a wire
// server.
func RegisterRPC(srv *wire.Server, n *Node) error {
	handlers := map[string]wire.Handler{
		MethodPrepare: func(_ context.Context, params json.RawMessage) (any, error) {
			var a PrepareArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return n.HandlePrepare(a), nil
		},
		MethodAccept: func(_ context.Context, params json.RawMessage) (any, error) {
			var a AcceptArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return n.HandleAccept(a), nil
		},
		MethodLearn: func(_ context.Context, params json.RawMessage) (any, error) {
			var a LearnArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			n.HandleLearn(a)
			return struct{}{}, nil
		},
	}
	for name, h := range handlers {
		if err := srv.Register(name, h); err != nil {
			return err
		}
	}
	return nil
}

// RPCTransport is a Transport over the control plane's pooled session
// layer: the peer dials lazily with a bounded connect timeout and is
// replaced transparently when it dies, so a restarted Paxos peer is
// picked up without the proposer noticing. Prepare/Accept/Learn are all
// idempotent protocol messages, so the session layer's retry-on-unsent
// policy is safe here.
type RPCTransport struct {
	peer *rpc.Peer
}

var _ Transport = (*RPCTransport)(nil)

// NewRPCTransport creates a transport for the peer at addr.
func NewRPCTransport(addr string) *RPCTransport {
	return &RPCTransport{peer: rpc.NewPeer(addr, rpc.Options{})}
}

func (t *RPCTransport) call(ctx context.Context, method string, args, reply any) error {
	if err := t.peer.Call(ctx, method, args, reply); err != nil {
		return fmt.Errorf("paxos: %s %s: %w", method, t.peer.Addr(), err)
	}
	return nil
}

// Prepare implements Transport.
func (t *RPCTransport) Prepare(ctx context.Context, args PrepareArgs) (PrepareReply, error) {
	var reply PrepareReply
	err := t.call(ctx, MethodPrepare, args, &reply)
	return reply, err
}

// Accept implements Transport.
func (t *RPCTransport) Accept(ctx context.Context, args AcceptArgs) (AcceptReply, error) {
	var reply AcceptReply
	err := t.call(ctx, MethodAccept, args, &reply)
	return reply, err
}

// Learn implements Transport.
func (t *RPCTransport) Learn(ctx context.Context, args LearnArgs) error {
	var reply struct{}
	return t.call(ctx, MethodLearn, args, &reply)
}

// Close releases the underlying session.
func (t *RPCTransport) Close() error {
	return t.peer.Close()
}
