package paxos

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// RPC method names for the wire transport.
const (
	MethodPrepare = "paxos.Prepare"
	MethodAccept  = "paxos.Accept"
	MethodLearn   = "paxos.Learn"
)

// RegisterRPC exposes a node's acceptor and learner roles on a wire
// server.
func RegisterRPC(srv *wire.Server, n *Node) error {
	handlers := map[string]wire.Handler{
		MethodPrepare: func(_ context.Context, params json.RawMessage) (any, error) {
			var a PrepareArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return n.HandlePrepare(a), nil
		},
		MethodAccept: func(_ context.Context, params json.RawMessage) (any, error) {
			var a AcceptArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return n.HandleAccept(a), nil
		},
		MethodLearn: func(_ context.Context, params json.RawMessage) (any, error) {
			var a LearnArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			n.HandleLearn(a)
			return struct{}{}, nil
		},
	}
	for name, h := range handlers {
		if err := srv.Register(name, h); err != nil {
			return err
		}
	}
	return nil
}

// RPCTransport is a Transport over the wire RPC framework, redialing
// lazily so a restarted peer is picked up transparently.
type RPCTransport struct {
	addr string

	mu sync.Mutex
	c  *wire.Client
}

var _ Transport = (*RPCTransport)(nil)

// NewRPCTransport creates a transport for the peer at addr.
func NewRPCTransport(addr string) *RPCTransport {
	return &RPCTransport{addr: addr}
}

func (t *RPCTransport) client() (*wire.Client, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c != nil {
		return t.c, nil
	}
	c, err := wire.Dial(t.addr)
	if err != nil {
		return nil, fmt.Errorf("paxos: dial %s: %w", t.addr, err)
	}
	t.c = c
	return c, nil
}

func (t *RPCTransport) drop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c != nil {
		t.c.Close()
		t.c = nil
	}
}

func (t *RPCTransport) call(ctx context.Context, method string, args, reply any) error {
	c, err := t.client()
	if err != nil {
		return err
	}
	if err := c.Call(ctx, method, args, reply); err != nil {
		t.drop()
		return err
	}
	return nil
}

// Prepare implements Transport.
func (t *RPCTransport) Prepare(ctx context.Context, args PrepareArgs) (PrepareReply, error) {
	var reply PrepareReply
	err := t.call(ctx, MethodPrepare, args, &reply)
	return reply, err
}

// Accept implements Transport.
func (t *RPCTransport) Accept(ctx context.Context, args AcceptArgs) (AcceptReply, error) {
	var reply AcceptReply
	err := t.call(ctx, MethodAccept, args, &reply)
	return reply, err
}

// Learn implements Transport.
func (t *RPCTransport) Learn(ctx context.Context, args LearnArgs) error {
	var reply struct{}
	return t.call(ctx, MethodLearn, args, &reply)
}

// Close releases the underlying connection.
func (t *RPCTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c != nil {
		err := t.c.Close()
		t.c = nil
		return err
	}
	return nil
}
