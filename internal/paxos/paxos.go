// Package paxos implements multi-decree Paxos state machine replication.
// The Mayflower paper runs a single centralized nameserver and notes
// (§3.3.1) that "we can improve the fault-tolerance of the nameserver by
// using a state machine replication algorithm, such as Paxos, to
// replicate the nameserver to multiple nodes" — this package provides
// that algorithm, and internal/nameserver builds the replicated
// nameserver on top of it.
//
// The design is classic Paxos, one instance per log slot:
//
//   - Ballots are (round, proposer id) pairs, totally ordered.
//   - Phase 1 (Prepare/Promise) and phase 2 (Accept/Accepted) run against
//     a quorum of acceptors; a proposer that learns of an already
//     accepted value for a slot adopts it, which is what guarantees that
//     a slot never commits two different values.
//   - A proposer whose own command lost the slot retries the command on
//     the next free slot, so every submitted command eventually commits
//     exactly once (per submission) as long as a majority is reachable.
//   - Chosen values are broadcast with Learn messages; each node applies
//     committed entries to its state machine strictly in slot order.
//
// Transport is pluggable; the wire-RPC transport used by the replicated
// nameserver lives in transport.go.
package paxos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Ballot orders competing proposals. Zero is "no ballot".
type Ballot struct {
	Round int64 `json:"round"`
	Node  int64 `json:"node"`
}

// Less reports whether b orders before o.
func (b Ballot) Less(o Ballot) bool {
	if b.Round != o.Round {
		return b.Round < o.Round
	}
	return b.Node < o.Node
}

// IsZero reports whether the ballot is unset.
func (b Ballot) IsZero() bool { return b == Ballot{} }

// PrepareArgs is a phase-1a message.
type PrepareArgs struct {
	Slot   int64  `json:"slot"`
	Ballot Ballot `json:"ballot"`
}

// PrepareReply is a phase-1b message.
type PrepareReply struct {
	// Promised is true when the acceptor promised the ballot.
	Promised bool `json:"promised"`
	// AcceptedBallot/AcceptedValue report any previously accepted
	// proposal for the slot.
	AcceptedBallot Ballot `json:"acceptedBallot"`
	AcceptedValue  []byte `json:"acceptedValue,omitempty"`
}

// AcceptArgs is a phase-2a message.
type AcceptArgs struct {
	Slot   int64  `json:"slot"`
	Ballot Ballot `json:"ballot"`
	Value  []byte `json:"value"`
}

// AcceptReply is a phase-2b message.
type AcceptReply struct {
	Accepted bool `json:"accepted"`
}

// LearnArgs announces a chosen value.
type LearnArgs struct {
	Slot  int64  `json:"slot"`
	Value []byte `json:"value"`
}

// Transport sends Paxos messages to one peer.
type Transport interface {
	Prepare(ctx context.Context, args PrepareArgs) (PrepareReply, error)
	Accept(ctx context.Context, args AcceptArgs) (AcceptReply, error)
	Learn(ctx context.Context, args LearnArgs) error
}

// ErrNoQuorum is returned when a majority of acceptors is unreachable.
var ErrNoQuorum = errors.New("paxos: no quorum")

// acceptorSlot is one slot's durable acceptor state.
type acceptorSlot struct {
	promised Ballot
	accepted Ballot
	value    []byte
}

// Node is one Paxos participant: acceptor, proposer and learner.
type Node struct {
	id    int64
	peers map[int64]Transport // excludes self
	apply func(slot int64, value []byte)

	mu        sync.Mutex
	slots     map[int64]*acceptorSlot
	chosen    map[int64][]byte
	nextApply int64
	maxSeen   int64 // highest slot seen in any message
	round     int64 // local ballot round, monotone
	closed    bool
}

// Config configures a Node.
type Config struct {
	// ID is this node's unique identity (>= 0).
	ID int64
	// Peers maps every *other* node's id to a transport for it.
	Peers map[int64]Transport
	// Apply is invoked exactly once per slot, in slot order, with each
	// committed value.
	Apply func(slot int64, value []byte)
}

// NewNode creates a Paxos node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.ID < 0 {
		return nil, fmt.Errorf("paxos: negative node id %d", cfg.ID)
	}
	if cfg.Apply == nil {
		return nil, errors.New("paxos: Apply is required")
	}
	for id := range cfg.Peers {
		if id == cfg.ID {
			return nil, fmt.Errorf("paxos: peers must not contain self (%d)", id)
		}
	}
	return &Node{
		id:     cfg.ID,
		peers:  cfg.Peers,
		apply:  cfg.Apply,
		slots:  make(map[int64]*acceptorSlot),
		chosen: make(map[int64][]byte),
	}, nil
}

// ID returns the node's identity.
func (n *Node) ID() int64 { return n.id }

// clusterSize counts this node plus its peers.
func (n *Node) clusterSize() int { return len(n.peers) + 1 }

// quorum returns the majority size.
func (n *Node) quorum() int { return n.clusterSize()/2 + 1 }

// --- acceptor ------------------------------------------------------------

func (n *Node) slot(s int64) *acceptorSlot {
	sl, ok := n.slots[s]
	if !ok {
		sl = &acceptorSlot{}
		n.slots[s] = sl
	}
	if s > n.maxSeen {
		n.maxSeen = s
	}
	return sl
}

// HandlePrepare processes a phase-1a message (the acceptor role).
func (n *Node) HandlePrepare(args PrepareArgs) PrepareReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	sl := n.slot(args.Slot)
	if sl.promised.Less(args.Ballot) || sl.promised == args.Ballot {
		sl.promised = args.Ballot
		return PrepareReply{
			Promised:       true,
			AcceptedBallot: sl.accepted,
			AcceptedValue:  sl.value,
		}
	}
	return PrepareReply{Promised: false}
}

// HandleAccept processes a phase-2a message (the acceptor role).
func (n *Node) HandleAccept(args AcceptArgs) AcceptReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	sl := n.slot(args.Slot)
	if sl.promised.Less(args.Ballot) || sl.promised == args.Ballot {
		sl.promised = args.Ballot
		sl.accepted = args.Ballot
		sl.value = args.Value
		return AcceptReply{Accepted: true}
	}
	return AcceptReply{Accepted: false}
}

// HandleLearn records a chosen value (the learner role) and applies any
// newly contiguous prefix of the log.
func (n *Node) HandleLearn(args LearnArgs) {
	n.mu.Lock()
	if _, dup := n.chosen[args.Slot]; dup {
		n.mu.Unlock()
		return
	}
	n.chosen[args.Slot] = args.Value
	if args.Slot > n.maxSeen {
		n.maxSeen = args.Slot
	}
	var ready []LearnArgs
	for {
		v, ok := n.chosen[n.nextApply]
		if !ok {
			break
		}
		ready = append(ready, LearnArgs{Slot: n.nextApply, Value: v})
		n.nextApply++
	}
	n.mu.Unlock()
	for _, e := range ready {
		n.apply(e.Slot, e.Value)
	}
}

// Chosen reports the committed value for a slot, if known.
func (n *Node) Chosen(slot int64) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.chosen[slot]
	return v, ok
}

// Applied returns the number of contiguous log entries applied so far.
func (n *Node) Applied() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nextApply
}

// --- proposer ------------------------------------------------------------

// Propose submits a command to the replicated log. It returns the slot
// the command committed at. If competing proposers win intermediate
// slots, those slots commit the competitors' values and the command moves
// to the next free slot; Propose only returns once the submitted value
// itself is chosen.
func (n *Node) Propose(ctx context.Context, value []byte) (int64, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		slot := n.nextFreeSlot()
		chosenValue, err := n.runSlot(ctx, slot, value)
		if err != nil {
			// Back off briefly on quorum loss or ballot races before
			// retrying; the jitter comes from the node id.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Duration(1+attempt%5) * 5 * time.Millisecond):
			}
			continue
		}
		if string(chosenValue) == string(value) {
			return slot, nil
		}
		// The slot went to a competitor; try the next one.
	}
}

// nextFreeSlot picks the lowest slot this node has not seen decided.
func (n *Node) nextFreeSlot() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.nextApply
	for {
		if _, done := n.chosen[s]; !done {
			if sl, ok := n.slots[s]; !ok || sl.accepted.IsZero() {
				return s
			}
		}
		s++
	}
}

func (n *Node) newBallot() Ballot {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.round++
	return Ballot{Round: n.round, Node: n.id}
}

// bumpRound raises the local round past a ballot that beat us.
func (n *Node) bumpRound(b Ballot) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if b.Round > n.round {
		n.round = b.Round
	}
}

// CatchUp drives every undecided slot up to the highest slot this node
// has seen to a decision, proposing no-ops (empty values) for slots with
// no accepted value. It lets a replica that missed Learn messages close
// the gaps in its log so later entries can apply.
func (n *Node) CatchUp(ctx context.Context) error {
	for attempt := 0; ; {
		n.mu.Lock()
		var target int64 = -1
		for s := n.nextApply; s <= n.maxSeen; s++ {
			if _, done := n.chosen[s]; !done {
				target = s
				break
			}
		}
		n.mu.Unlock()
		if target < 0 {
			return nil
		}
		if _, err := n.runSlot(ctx, target, nil); err != nil {
			// Ballot races against live proposers are routine for a
			// recovering replica — back off and retry with the bumped
			// round, like Propose, until the context expires.
			attempt++
			select {
			case <-ctx.Done():
				return fmt.Errorf("paxos: catch up slot %d: %w", target, err)
			case <-time.After(time.Duration(1+attempt%5) * 5 * time.Millisecond):
			}
		}
	}
}

// runSlot runs both Paxos phases for one slot and returns the value that
// was chosen there (which may differ from the proposed value).
func (n *Node) runSlot(ctx context.Context, slot int64, value []byte) ([]byte, error) {
	ballot := n.newBallot()

	// Phase 1: prepare against all acceptors (self included).
	type prep struct {
		reply PrepareReply
		err   error
	}
	replies := make(chan prep, n.clusterSize())
	replies <- prep{reply: n.HandlePrepare(PrepareArgs{Slot: slot, Ballot: ballot})}
	for _, t := range n.peers {
		t := t
		go func() {
			r, err := t.Prepare(ctx, PrepareArgs{Slot: slot, Ballot: ballot})
			replies <- prep{reply: r, err: err}
		}()
	}
	promises := 0
	var adopted []byte
	var adoptedBallot Ballot
	for i := 0; i < n.clusterSize(); i++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case p := <-replies:
			if p.err != nil || !p.reply.Promised {
				continue
			}
			promises++
			if !p.reply.AcceptedBallot.IsZero() && adoptedBallot.Less(p.reply.AcceptedBallot) {
				adoptedBallot = p.reply.AcceptedBallot
				adopted = p.reply.AcceptedValue
			}
		}
		if promises >= n.quorum() {
			break
		}
	}
	if promises < n.quorum() {
		n.bumpRound(Ballot{Round: ballot.Round + 1})
		return nil, fmt.Errorf("%w: %d/%d promises for slot %d", ErrNoQuorum, promises, n.clusterSize(), slot)
	}
	proposal := value
	if adopted != nil {
		proposal = adopted // safety: an accepted value must be completed
	}

	// Phase 2: accept.
	type acc struct {
		reply AcceptReply
		err   error
	}
	acks := make(chan acc, n.clusterSize())
	acks <- acc{reply: n.HandleAccept(AcceptArgs{Slot: slot, Ballot: ballot, Value: proposal})}
	for _, t := range n.peers {
		t := t
		go func() {
			r, err := t.Accept(ctx, AcceptArgs{Slot: slot, Ballot: ballot, Value: proposal})
			acks <- acc{reply: r, err: err}
		}()
	}
	accepts := 0
	for i := 0; i < n.clusterSize(); i++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case a := <-acks:
			if a.err == nil && a.reply.Accepted {
				accepts++
			}
		}
		if accepts >= n.quorum() {
			break
		}
	}
	if accepts < n.quorum() {
		n.bumpRound(Ballot{Round: ballot.Round + 1})
		return nil, fmt.Errorf("%w: %d/%d accepts for slot %d", ErrNoQuorum, accepts, n.clusterSize(), slot)
	}

	// Chosen: teach everyone (self first, synchronously, so the caller
	// observes its own state machine advance).
	n.HandleLearn(LearnArgs{Slot: slot, Value: proposal})
	for _, t := range n.peers {
		t := t
		go func() {
			lctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = t.Learn(lctx, LearnArgs{Slot: slot, Value: proposal})
		}()
	}
	return proposal, nil
}
