package paxos

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// localTransport delivers messages to a node in-process, optionally
// through a fault gate.
type localTransport struct {
	node *Node
	mu   sync.Mutex
	down bool
}

func (t *localTransport) setDown(v bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down = v
}

func (t *localTransport) isDown() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down
}

func (t *localTransport) Prepare(_ context.Context, a PrepareArgs) (PrepareReply, error) {
	if t.isDown() {
		return PrepareReply{}, errors.New("down")
	}
	return t.node.HandlePrepare(a), nil
}

func (t *localTransport) Accept(_ context.Context, a AcceptArgs) (AcceptReply, error) {
	if t.isDown() {
		return AcceptReply{}, errors.New("down")
	}
	return t.node.HandleAccept(a), nil
}

func (t *localTransport) Learn(_ context.Context, a LearnArgs) error {
	if t.isDown() {
		return errors.New("down")
	}
	t.node.HandleLearn(a)
	return nil
}

// appliedLog records applications in order.
type appliedLog struct {
	mu      sync.Mutex
	entries []string
}

func (l *appliedLog) add(slot int64, v []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, fmt.Sprintf("%d:%s", slot, v))
}

func (l *appliedLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.entries))
	copy(out, l.entries)
	return out
}

// cluster builds n in-process nodes with full connectivity.
func cluster(t *testing.T, n int) ([]*Node, []*appliedLog, map[int64]*localTransport) {
	t.Helper()
	logs := make([]*appliedLog, n)
	nodes := make([]*Node, n)
	gates := make(map[int64]*localTransport, n)

	// Create nodes first with empty peer maps, then wire transports.
	peerMaps := make([]map[int64]Transport, n)
	for i := 0; i < n; i++ {
		peerMaps[i] = make(map[int64]Transport)
	}
	for i := 0; i < n; i++ {
		logs[i] = &appliedLog{}
		log := logs[i]
		node, err := NewNode(Config{
			ID:    int64(i),
			Peers: peerMaps[i],
			Apply: log.add,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i := 0; i < n; i++ {
		gate := &localTransport{node: nodes[i]}
		gates[int64(i)] = gate
		for j := 0; j < n; j++ {
			if i != j {
				peerMaps[j][int64(i)] = gate
			}
		}
	}
	return nodes, logs, gates
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSingleProposerCommits(t *testing.T) {
	nodes, logs, _ := cluster(t, 3)
	slot, err := nodes[0].Propose(ctxT(t), []byte("cmd-a"))
	if err != nil {
		t.Fatal(err)
	}
	if slot != 0 {
		t.Errorf("slot = %d, want 0", slot)
	}
	if v, ok := nodes[0].Chosen(0); !ok || string(v) != "cmd-a" {
		t.Errorf("Chosen(0) = %q, %v", v, ok)
	}
	waitFor(t, func() bool {
		for _, l := range logs {
			if len(l.snapshot()) != 1 {
				return false
			}
		}
		return true
	})
	for i, l := range logs {
		if got := l.snapshot()[0]; got != "0:cmd-a" {
			t.Errorf("node %d applied %q", i, got)
		}
	}
}

func TestSequentialProposals(t *testing.T) {
	nodes, logs, _ := cluster(t, 3)
	for i := 0; i < 10; i++ {
		if _, err := nodes[0].Propose(ctxT(t), []byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(logs[0].snapshot()) == 10 })
	for i, e := range logs[0].snapshot() {
		want := fmt.Sprintf("%d:cmd-%d", i, i)
		if e != want {
			t.Errorf("entry %d = %q, want %q", i, e, want)
		}
	}
}

func TestConcurrentProposersAllCommitAllConverge(t *testing.T) {
	nodes, logs, _ := cluster(t, 3)
	const perNode = 8
	var wg sync.WaitGroup
	for i, node := range nodes {
		i, node := i, node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perNode; k++ {
				if _, err := node.Propose(ctxT(t), []byte(fmt.Sprintf("n%d-%d", i, k))); err != nil {
					t.Errorf("node %d proposal %d: %v", i, k, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	total := perNode * len(nodes)
	// Everyone learns everything (learn broadcasts are async).
	waitFor(t, func() bool {
		for _, n := range nodes {
			if n.Applied() < int64(total) {
				return false
			}
		}
		return true
	})
	// All logs identical and containing every command exactly once.
	ref := logs[0].snapshot()[:total]
	seen := make(map[string]int)
	for _, e := range ref {
		seen[e[2:]]++ // strip "s:" prefix loosely; slots < 10 here may be 2 chars — use full entry instead
	}
	_ = seen
	for i := 1; i < len(logs); i++ {
		got := logs[i].snapshot()[:total]
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("log divergence at %d: node0=%q node%d=%q", k, ref[k], i, got[k])
			}
		}
	}
	// Exactly-once per submission: count distinct command payloads.
	cmds := make(map[string]int)
	for _, e := range ref {
		cmds[e] = cmds[e] + 1
	}
	if len(cmds) != total {
		t.Errorf("expected %d distinct commands, got %d", total, len(cmds))
	}
}

func TestCommitsWithMinorityDown(t *testing.T) {
	nodes, logs, gates := cluster(t, 5)
	gates[3].setDown(true)
	gates[4].setDown(true)

	if _, err := nodes[0].Propose(ctxT(t), []byte("majority")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(logs[1].snapshot()) == 1 })

	// Recovered nodes catch up via CatchUp after the partition heals.
	gates[3].setDown(false)
	gates[4].setDown(false)
	if err := nodes[3].CatchUp(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return nodes[3].Applied() >= 1 })
	if got := logs[3].snapshot(); len(got) == 0 || got[0] != "0:majority" {
		t.Errorf("recovered node applied %v", got)
	}
}

func TestNoQuorumFails(t *testing.T) {
	nodes, _, gates := cluster(t, 3)
	gates[1].setDown(true)
	gates[2].setDown(true)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err := nodes[0].Propose(ctx, []byte("doomed"))
	if err == nil {
		t.Fatal("proposal committed without a quorum")
	}
}

// TestSlotSafety checks the core Paxos invariant under dueling proposers:
// a slot never commits two different values. We force both proposers at
// the same slot by driving runSlot directly.
func TestSlotSafety(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		nodes, _, _ := cluster(t, 3)
		var wg sync.WaitGroup
		results := make([][]byte, 2)
		for i, node := range nodes[:2] {
			i, node := i, node
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := node.runSlot(ctxT(t), 0, []byte(fmt.Sprintf("v%d", i)))
				if err == nil {
					results[i] = v
				}
			}()
		}
		wg.Wait()
		if results[0] != nil && results[1] != nil && string(results[0]) != string(results[1]) {
			t.Fatalf("trial %d: slot 0 chose both %q and %q", trial, results[0], results[1])
		}
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{ID: -1, Apply: func(int64, []byte) {}}); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := NewNode(Config{ID: 0}); err == nil {
		t.Error("nil Apply accepted")
	}
	self := map[int64]Transport{0: &localTransport{}}
	if _, err := NewNode(Config{ID: 0, Peers: self, Apply: func(int64, []byte) {}}); err == nil {
		t.Error("self peer accepted")
	}
}

func TestBallotOrdering(t *testing.T) {
	a := Ballot{Round: 1, Node: 0}
	b := Ballot{Round: 1, Node: 1}
	c := Ballot{Round: 2, Node: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("ballot ordering broken")
	}
	if !(Ballot{}).IsZero() || a.IsZero() {
		t.Error("IsZero broken")
	}
}

// TestRPCTransportEndToEnd replicates across three nodes over real TCP.
func TestRPCTransportEndToEnd(t *testing.T) {
	const n = 3
	logs := make([]*appliedLog, n)
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	servers := make([]*wire.Server, n)
	peerMaps := make([]map[int64]Transport, n)

	for i := 0; i < n; i++ {
		peerMaps[i] = make(map[int64]Transport)
		logs[i] = &appliedLog{}
		node, err := NewNode(Config{ID: int64(i), Peers: peerMaps[i], Apply: logs[i].add})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		srv := wire.NewServer()
		if err := RegisterRPC(srv, node); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		servers[i] = srv
		addrs[i] = ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			tr := NewRPCTransport(addrs[j])
			t.Cleanup(func() { tr.Close() })
			peerMaps[i][int64(j)] = tr
		}
	}

	for k := 0; k < 5; k++ {
		proposer := nodes[k%n]
		if _, err := proposer.Propose(ctxT(t), []byte(fmt.Sprintf("rpc-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		for _, node := range nodes {
			if node.Applied() < 5 {
				return false
			}
		}
		return true
	})
	ref := logs[0].snapshot()
	for i := 1; i < n; i++ {
		got := logs[i].snapshot()
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("divergence at %d: %q vs %q", k, ref[k], got[k])
			}
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}
