package nameserver

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/kvstore"
)

// BenchmarkLookupBatchValidate measures the server-side cost of renewing
// a 64-entry lease batch with a stale claimed epoch — the worst case,
// where every entry takes the per-entry version check instead of the
// epoch fast path. This bounds the nameserver work one expired-lease
// renewal costs a client with a warm cache.
func BenchmarkLookupBatchValidate(b *testing.B) {
	store, err := kvstore.Open(b.TempDir(), kvstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	svc, err := NewService(store, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for pod := 0; pod < 2; pod++ {
		for rack := 0; rack < 2; rack++ {
			for h := 0; h < 4; h++ {
				err := svc.RegisterServer(ServerInfo{
					ID:          fmt.Sprintf("ds-%d-%d-%d", pod, rack, h),
					ControlAddr: fmt.Sprintf("10.%d.%d.%d:7000", pod, rack, h),
					DataAddr:    fmt.Sprintf("10.%d.%d.%d:7001", pod, rack, h),
					Host:        fmt.Sprintf("host-p%d-r%d-h%d", pod, rack, h),
					Pod:         pod,
					Rack:        rack,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	const batch = 64
	entries := make([]ValidateEntry, batch)
	for i := range entries {
		name := fmt.Sprintf("bench/f%03d", i)
		fi, err := svc.Create(name, CreateOptions{})
		if err != nil {
			b.Fatal(err)
		}
		entries[i] = ValidateEntry{Name: name, Version: fi.Version}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := svc.Validate(0, entries)
		if len(results) != batch {
			b.Fatalf("got %d results", len(results))
		}
	}
}
