package nameserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/paxos"
	"github.com/mayflower-dfs/mayflower/internal/uuid"
)

// Metadata is the nameserver interface served over RPC. Both the
// centralized Service and the Paxos-replicated ReplicatedService
// implement it.
type Metadata interface {
	RegisterServer(si ServerInfo) error
	Heartbeat(serverID string) error
	Servers() []ServerInfo
	Create(name string, opts CreateOptions) (FileInfo, error)
	Lookup(name string) (FileInfo, error)
	Validate(clientEpoch int64, entries []ValidateEntry) ([]ValidateResult, int64)
	Epoch() int64
	List(prefix string) []FileInfo
	Delete(name string) (FileInfo, error)
	ReportSize(name string, sizeBytes int64) error
	NumFiles() int
}

var (
	_ Metadata = (*Service)(nil)
	_ Metadata = (*ReplicatedService)(nil)
)

// command is one replicated nameserver mutation. The command carries the
// full outcome (e.g. the planned FileInfo, placement included) so that
// applying it is deterministic on every replica.
type command struct {
	// ID deduplicates re-proposed commands: a proposer whose accept
	// reached only a minority may see its value completed by another
	// node later *and* have retried it on a fresh slot.
	ID   string      `json:"id"`
	Op   string      `json:"op"`
	Info *FileInfo   `json:"info,omitempty"`
	Srv  *ServerInfo `json:"server,omitempty"`
	Name string      `json:"name,omitempty"`
	Size int64       `json:"size,omitempty"`
}

const (
	opCreate     = "create"
	opDelete     = "delete"
	opRegister   = "register"
	opReportSize = "reportSize"
)

// ErrReplicationTimeout is returned when a mutation could not be
// committed within the configured timeout (e.g. no quorum).
var ErrReplicationTimeout = errors.New("nameserver: replication timed out")

// ReplicatedService is a nameserver whose mutations are totally ordered
// by a Paxos log across replicas (§3.3.1's fault-tolerance extension).
// Reads are served from local state; mutations block until committed and
// applied locally.
type ReplicatedService struct {
	svc  *Service
	node *paxos.Node
	// ProposeTimeout bounds each mutation (default 10 s).
	ProposeTimeout time.Duration

	mu      sync.Mutex
	applied map[string]bool
	waiters map[string]chan error
}

// NewReplicatedService wraps a local Service. The returned value's Apply
// method must be used as the paxos.Config.Apply callback, and the
// resulting node attached with SetNode before serving requests:
//
//	rs := nameserver.NewReplicatedService(svc)
//	node, _ := paxos.NewNode(paxos.Config{ID: id, Peers: peers, Apply: rs.Apply})
//	rs.SetNode(node)
func NewReplicatedService(svc *Service) *ReplicatedService {
	return &ReplicatedService{
		svc:            svc,
		ProposeTimeout: 10 * time.Second,
		applied:        make(map[string]bool),
		waiters:        make(map[string]chan error),
	}
}

// SetNode attaches the Paxos node (once, before use).
func (rs *ReplicatedService) SetNode(node *paxos.Node) { rs.node = node }

// Apply is the Paxos state machine hook: it executes one committed
// command against the local Service. Empty values (gap-filling no-ops)
// and duplicate command ids are skipped.
func (rs *ReplicatedService) Apply(_ int64, value []byte) {
	if len(value) == 0 {
		return
	}
	var cmd command
	if err := json.Unmarshal(value, &cmd); err != nil {
		return // a corrupt entry can only come from a buggy proposer
	}
	rs.mu.Lock()
	if rs.applied[cmd.ID] {
		rs.mu.Unlock()
		return
	}
	rs.applied[cmd.ID] = true
	rs.mu.Unlock()

	var err error
	switch cmd.Op {
	case opCreate:
		if cmd.Info == nil {
			err = errors.New("nameserver: create command without file info")
		} else {
			_, err = rs.svc.InstallFile(*cmd.Info)
		}
	case opDelete:
		_, err = rs.svc.Delete(cmd.Name)
	case opRegister:
		if cmd.Srv == nil {
			err = errors.New("nameserver: register command without server info")
		} else {
			err = rs.svc.RegisterServer(*cmd.Srv)
		}
	case opReportSize:
		err = rs.svc.ReportSize(cmd.Name, cmd.Size)
	default:
		err = fmt.Errorf("nameserver: unknown replicated op %q", cmd.Op)
	}

	rs.mu.Lock()
	ch := rs.waiters[cmd.ID]
	delete(rs.waiters, cmd.ID)
	rs.mu.Unlock()
	if ch != nil {
		ch <- err
	}
}

// replicate proposes a command and waits for it to apply locally,
// returning the apply outcome.
func (rs *ReplicatedService) replicate(cmd command) error {
	if rs.node == nil {
		return errors.New("nameserver: replicated service has no paxos node")
	}
	id, err := uuid.New()
	if err != nil {
		return err
	}
	cmd.ID = id.String()
	body, err := json.Marshal(cmd)
	if err != nil {
		return err
	}

	ch := make(chan error, 1)
	rs.mu.Lock()
	rs.waiters[cmd.ID] = ch
	rs.mu.Unlock()
	defer func() {
		rs.mu.Lock()
		delete(rs.waiters, cmd.ID)
		rs.mu.Unlock()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), rs.ProposeTimeout)
	defer cancel()
	if _, err := rs.node.Propose(ctx, body); err != nil {
		return fmt.Errorf("%w: %v", ErrReplicationTimeout, err)
	}
	// The command is chosen; it applies once every lower slot has been
	// decided. Nudge gap-filling if the apply does not arrive promptly.
	for {
		select {
		case err := <-ch:
			return err
		case <-ctx.Done():
			return fmt.Errorf("%w: committed but not applied", ErrReplicationTimeout)
		case <-time.After(100 * time.Millisecond):
			cctx, ccancel := context.WithTimeout(ctx, time.Second)
			_ = rs.node.CatchUp(cctx)
			ccancel()
		}
	}
}

// RegisterServer replicates a dataserver registration.
func (rs *ReplicatedService) RegisterServer(si ServerInfo) error {
	if si.ID == "" || si.ControlAddr == "" {
		return errors.New("nameserver: server needs an id and control address")
	}
	return rs.replicate(command{Op: opRegister, Srv: &si})
}

// Heartbeat records liveness locally. Liveness is soft state and is not
// replicated: each replica independently observes the dataservers that
// talk to it.
func (rs *ReplicatedService) Heartbeat(serverID string) error { return rs.svc.Heartbeat(serverID) }

// Servers lists registered dataservers from local state.
func (rs *ReplicatedService) Servers() []ServerInfo { return rs.svc.Servers() }

// Create plans a file locally (placement included) and replicates the
// planned record; every replica installs the identical FileInfo.
func (rs *ReplicatedService) Create(name string, opts CreateOptions) (FileInfo, error) {
	fi, err := rs.svc.PlanCreate(name, opts)
	if err != nil {
		return FileInfo{}, err
	}
	if err := rs.replicate(command{Op: opCreate, Info: &fi}); err != nil {
		return FileInfo{}, err
	}
	// The apply stamped a version; hand back the installed record so the
	// caller caches a versioned FileInfo. If a later committed delete
	// already removed it (or the name was re-created), fall back to the
	// unversioned plan — caching it just fails the next validation, which
	// is the correct outcome.
	if installed, err := rs.svc.Lookup(fi.Name); err == nil && installed.ID == fi.ID {
		return installed, nil
	}
	return fi, nil
}

// Lookup serves a file's metadata from local state.
func (rs *ReplicatedService) Lookup(name string) (FileInfo, error) { return rs.svc.Lookup(name) }

// Validate checks cached leases against local state. Local reads may
// trail the log, but a lagging verdict is no worse than the lagging
// Lookup the client would otherwise issue — staleness stays bounded by
// the lease, exactly as with the centralized service.
func (rs *ReplicatedService) Validate(clientEpoch int64, entries []ValidateEntry) ([]ValidateResult, int64) {
	return rs.svc.Validate(clientEpoch, entries)
}

// Epoch reports the local namespace epoch.
func (rs *ReplicatedService) Epoch() int64 { return rs.svc.Epoch() }

// List serves the file listing from local state.
func (rs *ReplicatedService) List(prefix string) []FileInfo { return rs.svc.List(prefix) }

// Delete replicates a file deletion.
func (rs *ReplicatedService) Delete(name string) (FileInfo, error) {
	// Fetch first so the caller still gets the replica locations; the
	// authoritative existence check happens at apply time.
	fi, err := rs.svc.Lookup(name)
	if err != nil {
		return FileInfo{}, err
	}
	if err := rs.replicate(command{Op: opDelete, Name: name}); err != nil {
		return FileInfo{}, err
	}
	return fi, nil
}

// ReportSize replicates a size report.
func (rs *ReplicatedService) ReportSize(name string, sizeBytes int64) error {
	return rs.replicate(command{Op: opReportSize, Name: name, Size: sizeBytes})
}

// NumFiles reports the local file count.
func (rs *ReplicatedService) NumFiles() int { return rs.svc.NumFiles() }
