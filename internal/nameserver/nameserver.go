// Package nameserver implements Mayflower's metadata service (§3.3.1 of
// the paper): it owns the file→chunks and file→dataservers mappings,
// makes replica placement decisions under fault-domain constraints when a
// file is created, and persists its state in an embedded key-value store
// (the paper uses LevelDB with fsync off) so graceful restarts are fast.
// After an unexpected restart the nameserver does not trust the possibly
// stale store: it rebuilds the mappings by scanning the file metadata
// stored at the dataservers.
package nameserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/uuid"
)

// Default filesystem parameters (§5: 256 MB blocks, 3 replicas).
const (
	DefaultChunkSize   = 256 << 20
	DefaultReplication = 3
)

// Well-known errors, matched by clients with errors.Is.
var (
	ErrNotFound      = errors.New("nameserver: file not found")
	ErrExists        = errors.New("nameserver: file already exists")
	ErrNoDataservers = errors.New("nameserver: not enough dataservers registered")
)

// ReplicaLoc identifies one dataserver holding a replica.
type ReplicaLoc struct {
	// ServerID is the dataserver's stable identity.
	ServerID string `json:"serverId"`
	// ControlAddr is the dataserver's RPC endpoint.
	ControlAddr string `json:"controlAddr"`
	// DataAddr is the dataserver's bulk-read endpoint.
	DataAddr string `json:"dataAddr"`
	// Host is the topology host name the dataserver runs on, used by the
	// Flowserver for replica-path selection.
	Host string `json:"host"`
}

// FileInfo is the metadata record for one file. Replicas[0] is the
// primary, which orders all appends.
type FileInfo struct {
	ID        uuid.UUID    `json:"id"`
	Name      string       `json:"name"`
	SizeBytes int64        `json:"sizeBytes"`
	ChunkSize int64        `json:"chunkSize"`
	Replicas  []ReplicaLoc `json:"replicas"`
	// Version stamps the record's last mutation (install, size report,
	// replica replacement). Versions are drawn from the nameserver's
	// global namespace epoch, so they are monotonic per file AND unique
	// across a delete/re-create of the same name — a client holding a
	// pre-delete version can never mistake the re-created file for its
	// cached record. Clients cache FileInfo under a lease and revalidate
	// with a cheap batched Validate carrying (name, version) pairs instead
	// of a full Lookup; an unchanged version renews the lease without
	// re-sending the record.
	Version int64 `json:"version,omitempty"`
}

// NumChunks returns how many chunk files hold the file's bytes.
func (f FileInfo) NumChunks() int {
	if f.SizeBytes == 0 {
		return 0
	}
	return int((f.SizeBytes + f.ChunkSize - 1) / f.ChunkSize)
}

// Primary returns the primary replica location.
func (f FileInfo) Primary() ReplicaLoc { return f.Replicas[0] }

// ServerInfo is a registered dataserver.
type ServerInfo struct {
	ID          string `json:"id"`
	ControlAddr string `json:"controlAddr"`
	DataAddr    string `json:"dataAddr"`
	Host        string `json:"host"`
	Pod         int    `json:"pod"`
	Rack        int    `json:"rack"`
}

// CreateOptions tune file creation.
type CreateOptions struct {
	// ChunkSize in bytes; DefaultChunkSize if zero.
	ChunkSize int64 `json:"chunkSize,omitempty"`
	// Replication factor; DefaultReplication if zero.
	Replication int `json:"replication,omitempty"`
	// PreferredReplicas, when non-empty, pins the replica set to these
	// registered server ids (in order; the first is the primary),
	// bypassing the placement policy. Experiment harnesses use it to
	// give every scheme identical file placement, as the paper does for
	// its HDFS comparison ("we use the same primary replica location for
	// both Mayflower and HDFS", §6.7).
	PreferredReplicas []string `json:"preferredReplicas,omitempty"`
}

// PlacementScorer rates candidate dataservers for a new replica; higher
// scores are preferred. It lets the nameserver make placement decisions
// "collaboratively with the Flowserver" (§3.3) — package writeplace
// provides the Flowserver-backed, Sinbad-like implementation. Fault-domain
// constraints always apply first; the scorer only orders the candidates
// inside each domain.
type PlacementScorer interface {
	Score(si ServerInfo) float64
}

// Service is the nameserver's logic, independent of any transport. All
// methods are safe for concurrent use.
type Service struct {
	store *kvstore.Store
	rng   *rand.Rand

	mu        sync.Mutex
	files     map[string]FileInfo   // name → info
	servers   map[string]ServerInfo // id → info
	lastBeat  map[string]time.Time  // id → last heartbeat (in-memory only)
	scorer    PlacementScorer
	deadAfter time.Duration // placement skips servers silent this long (0 = no filter)

	// epoch counts namespace-shape mutations (InstallFile, Delete,
	// ReplaceReplica) — the events that can invalidate a cached replica
	// set. A client whose last observed epoch still matches can have every
	// lease renewed without per-entry version checks (sizes may have moved,
	// but sizes only grow and are corrected by every dataserver read).
	epoch int64
	// verSeq issues FileInfo versions: a global sequence bumped on every
	// record mutation (epoch events plus size reports), so versions are
	// monotonic per file and never reused across a delete/re-create.
	verSeq int64
}

const (
	filePrefix   = "file/"
	serverPrefix = "server/"
	epochKey     = "meta/epoch"
)

// NewService opens a nameserver over the given metadata store. Existing
// state is loaded from the store (the fast path after a graceful
// shutdown).
func NewService(store *kvstore.Store, rng *rand.Rand) (*Service, error) {
	s := &Service{
		store:    store,
		rng:      rng,
		files:    make(map[string]FileInfo),
		servers:  make(map[string]ServerInfo),
		lastBeat: make(map[string]time.Time),
	}
	err := store.Range([]byte(filePrefix), func(k, v []byte) bool {
		var fi FileInfo
		if err := json.Unmarshal(v, &fi); err == nil {
			s.files[fi.Name] = fi
			if fi.Version > s.verSeq {
				s.verSeq = fi.Version
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	err = store.Range([]byte(serverPrefix), func(k, v []byte) bool {
		var si ServerInfo
		if err := json.Unmarshal(v, &si); err == nil {
			s.servers[si.ID] = si
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	// Epoch and version sequence survive graceful restarts. The sequence
	// restores to the maximum of every persisted file version and the
	// checkpointed sequence — the checkpoint covers versions burned by
	// deletes, which live in no file record but must never be re-issued.
	if v, ok, err := store.Get([]byte(epochKey)); err != nil {
		return nil, err
	} else if ok {
		var rec epochRecord
		if err := json.Unmarshal(v, &rec); err == nil {
			if rec.Epoch > s.epoch {
				s.epoch = rec.Epoch
			}
			if rec.VerSeq > s.verSeq {
				s.verSeq = rec.VerSeq
			}
		}
	}
	if s.verSeq > s.epoch {
		// A crash between persisting a mutated record and its epoch bump
		// leaves file versions ahead of the checkpoint. Raise the epoch to
		// match: a too-large epoch only disables the Validate fast path,
		// while a too-small one could blanket-renew leases that predate the
		// unpersisted mutation.
		s.epoch = s.verSeq
	}
	return s, nil
}

// SetPlacementScorer installs (or clears, with nil) a collaborative
// placement scorer.
func (s *Service) SetPlacementScorer(sc PlacementScorer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scorer = sc
}

// SetPlacementLiveness makes new-file placement skip servers whose last
// heartbeat is older than deadAfter (0 restores the default: every
// registered server is a candidate). Use the same horizon the repair
// monitor declares death at, so a server repair considers dead never
// receives a fresh file's replica — the client's Prepare to it would
// only fail the whole create. Explicitly pinned replica sets
// (CreateOptions.PreferredReplicas) are not filtered.
func (s *Service) SetPlacementLiveness(deadAfter time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deadAfter = deadAfter
}

// RegisterServer adds (or refreshes) a dataserver.
func (s *Service) RegisterServer(si ServerInfo) error {
	if si.ID == "" || si.ControlAddr == "" {
		return errors.New("nameserver: server needs an id and control address")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.persist(serverPrefix+si.ID, si); err != nil {
		return err
	}
	s.servers[si.ID] = si
	s.lastBeat[si.ID] = time.Now()
	return nil
}

// Heartbeat records liveness for a registered dataserver.
func (s *Service) Heartbeat(serverID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.servers[serverID]; !ok {
		return fmt.Errorf("nameserver: heartbeat from unknown server %q", serverID)
	}
	s.lastBeat[serverID] = time.Now()
	return nil
}

// DeadServers lists registered dataservers whose last heartbeat (or
// registration) is older than the cutoff, sorted by id. Liveness is
// in-memory state: after a nameserver restart every server starts fresh
// and must miss another full timeout before being declared dead.
func (s *Service) DeadServers(cutoff time.Time) []ServerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ServerInfo
	for id, si := range s.servers {
		beat, ok := s.lastBeat[id]
		if !ok {
			// Restored from the store without a beat yet: seed now.
			s.lastBeat[id] = time.Now()
			continue
		}
		if beat.Before(cutoff) {
			out = append(out, si)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PlaceReplacement picks a live registered server to host a new replica
// of the file, excluding servers already holding it (and any ids in
// exclude), preferring racks the file does not already occupy. alive
// filters candidates (nil means all).
func (s *Service) PlaceReplacement(fi FileInfo, exclude []string, alive func(ServerInfo) bool) (ReplicaLoc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	skip := make(map[string]bool, len(fi.Replicas)+len(exclude))
	usedRack := make(map[[2]int]bool)
	for _, r := range fi.Replicas {
		skip[r.ServerID] = true
		if si, ok := s.servers[r.ServerID]; ok {
			usedRack[[2]int{si.Pod, si.Rack}] = true
		}
	}
	for _, id := range exclude {
		skip[id] = true
	}
	var fresh, any []ServerInfo
	ids := make([]string, 0, len(s.servers))
	for id := range s.servers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		si := s.servers[id]
		if skip[id] || (alive != nil && !alive(si)) {
			continue
		}
		any = append(any, si)
		if !usedRack[[2]int{si.Pod, si.Rack}] {
			fresh = append(fresh, si)
		}
	}
	cands := fresh
	if len(cands) == 0 {
		cands = any
	}
	if len(cands) == 0 {
		return ReplicaLoc{}, fmt.Errorf("%w: no live replacement for %s", ErrNoDataservers, fi.Name)
	}
	si := cands[s.rng.Intn(len(cands))]
	return ReplicaLoc{
		ServerID:    si.ID,
		ControlAddr: si.ControlAddr,
		DataAddr:    si.DataAddr,
		Host:        si.Host,
	}, nil
}

// ReplaceReplica swaps one replica location in a file's record. If the
// replaced replica was the primary, the first surviving replica is
// promoted to primary and the replacement appended, so appends keep a
// live orderer.
func (s *Service) ReplaceReplica(name, oldServerID string, repl ReplicaLoc) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, ok := s.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	idx := -1
	for i, r := range fi.Replicas {
		if r.ServerID == oldServerID {
			idx = i
			break
		}
		if r.ServerID == repl.ServerID {
			return fmt.Errorf("nameserver: %s already holds a replica of %s", repl.ServerID, name)
		}
	}
	if idx < 0 {
		return fmt.Errorf("nameserver: %s holds no replica of %s", oldServerID, name)
	}
	replicas := make([]ReplicaLoc, len(fi.Replicas))
	copy(replicas, fi.Replicas)
	if idx == 0 && len(replicas) > 1 {
		// Promote the next live replica; the newcomer goes to the back.
		replicas = append(replicas[1:len(replicas):len(replicas)], repl)
	} else {
		replicas[idx] = repl
	}
	fi.Replicas = replicas
	fi.Version = s.nextVersionLocked()
	if err := s.persist(filePrefix+name, fi); err != nil {
		return err
	}
	s.files[name] = fi
	return s.bumpEpochLocked()
}

// Servers lists registered dataservers sorted by id.
func (s *Service) Servers() []ServerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ServerInfo, 0, len(s.servers))
	for _, si := range s.servers {
		out = append(out, si)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Create allocates a new file: it picks replica locations under the
// fault-domain constraints and records the (empty) file.
func (s *Service) Create(name string, opts CreateOptions) (FileInfo, error) {
	fi, err := s.PlanCreate(name, opts)
	if err != nil {
		return FileInfo{}, err
	}
	return s.InstallFile(fi)
}

// PlanCreate performs the placement half of Create — validation, UUID
// allocation, and replica selection — without recording anything. The
// replicated nameserver proposes the planned FileInfo through Paxos and
// every replica records it via InstallFile, so placement randomness never
// has to be deterministic across replicas.
func (s *Service) PlanCreate(name string, opts CreateOptions) (FileInfo, error) {
	if name == "" || strings.ContainsRune(name, '\x00') {
		return FileInfo{}, errors.New("nameserver: invalid file name")
	}
	chunk := opts.ChunkSize
	if chunk == 0 {
		chunk = DefaultChunkSize
	}
	if chunk < 0 {
		return FileInfo{}, fmt.Errorf("nameserver: negative chunk size %d", chunk)
	}
	replication := opts.Replication
	if replication == 0 {
		replication = DefaultReplication
	}
	if replication < 1 {
		return FileInfo{}, fmt.Errorf("nameserver: replication %d < 1", replication)
	}

	id, err := uuid.New()
	if err != nil {
		return FileInfo{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.files[name]; dup {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrExists, name)
	}
	var replicas []ReplicaLoc
	if len(opts.PreferredReplicas) > 0 {
		replicas, err = s.pinnedLocked(opts.PreferredReplicas)
	} else {
		replicas, err = s.placeLocked(replication)
	}
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{ID: id, Name: name, ChunkSize: chunk, Replicas: replicas}, nil
}

// nextVersionLocked issues the next FileInfo version. Caller holds s.mu.
func (s *Service) nextVersionLocked() int64 {
	s.verSeq++
	return s.verSeq
}

// epochRecord is the persisted epoch checkpoint. It carries the version
// sequence too: versions burned by deletes live in no file record, so
// without the checkpoint a restart could re-issue them — and a client
// still holding a deleted file's version could then get a false OK from
// Validate against an unrelated record that reached the same number.
type epochRecord struct {
	Epoch  int64 `json:"epoch"`
	VerSeq int64 `json:"verSeq"`
}

// bumpEpochLocked advances and persists the namespace epoch (with the
// current version sequence). Caller holds s.mu and has already applied
// the mutation the bump announces.
func (s *Service) bumpEpochLocked() error {
	s.epoch++
	return s.persist(epochKey, epochRecord{Epoch: s.epoch, VerSeq: s.verSeq})
}

// Epoch returns the current namespace epoch: it advances exactly when a
// file is installed, deleted, or has a replica replaced — the mutations
// that can make a cached replica set stale.
func (s *Service) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// InstallFile records a fully planned file, failing if the name is taken.
// The record is stamped with a fresh version and the namespace epoch
// advances; the stamped record is returned so callers hand clients a
// cache-ready (versioned) FileInfo.
func (s *Service) InstallFile(fi FileInfo) (FileInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.files[fi.Name]; dup {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrExists, fi.Name)
	}
	fi.Version = s.nextVersionLocked()
	if err := s.persist(filePrefix+fi.Name, fi); err != nil {
		return FileInfo{}, err
	}
	s.files[fi.Name] = fi
	if err := s.bumpEpochLocked(); err != nil {
		return FileInfo{}, err
	}
	return fi, nil
}

// pinnedLocked resolves an explicit replica server list. Caller must hold
// s.mu.
func (s *Service) pinnedLocked(ids []string) ([]ReplicaLoc, error) {
	out := make([]ReplicaLoc, 0, len(ids))
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		si, ok := s.servers[id]
		if !ok {
			return nil, fmt.Errorf("%w: preferred replica %q not registered", ErrNoDataservers, id)
		}
		if seen[id] {
			return nil, fmt.Errorf("nameserver: duplicate preferred replica %q", id)
		}
		seen[id] = true
		out = append(out, ReplicaLoc{
			ServerID:    si.ID,
			ControlAddr: si.ControlAddr,
			DataAddr:    si.DataAddr,
			Host:        si.Host,
		})
	}
	return out, nil
}

// placeLocked picks replica hosts following the §5 default placement
// ("HDFS rack-aware"): the primary on a random server, the second replica
// in the primary's rack, and further replicas in other randomly selected
// racks. Caller must hold s.mu.
func (s *Service) placeLocked(n int) ([]ReplicaLoc, error) {
	ids := make([]string, 0, len(s.servers))
	for id := range s.servers {
		if s.deadAfter > 0 {
			// Liveness filter: a server the repair horizon considers dead
			// must not receive new replicas (its Prepare would fail the
			// create). Servers restored from the store without a beat yet
			// have no entry and stay eligible, matching DeadServers.
			if beat, ok := s.lastBeat[id]; ok && time.Since(beat) > s.deadAfter {
				continue
			}
		}
		ids = append(ids, id)
	}
	if len(ids) < n {
		return nil, fmt.Errorf("%w: need %d, have %d live", ErrNoDataservers, n, len(ids))
	}
	sort.Strings(ids)

	pick := func(filter func(ServerInfo) bool, used map[string]bool) (ServerInfo, bool) {
		var cands []ServerInfo
		for _, id := range ids {
			si := s.servers[id]
			if used[id] {
				continue
			}
			if filter == nil || filter(si) {
				cands = append(cands, si)
			}
		}
		if len(cands) == 0 {
			return ServerInfo{}, false
		}
		if s.scorer != nil {
			// Collaborative placement: best-scored candidate wins, ties
			// broken randomly.
			best := []ServerInfo{cands[0]}
			bestScore := s.scorer.Score(cands[0])
			for _, c := range cands[1:] {
				switch sc := s.scorer.Score(c); {
				case sc > bestScore:
					bestScore = sc
					best = append(best[:0], c)
				case sc == bestScore:
					best = append(best, c)
				}
			}
			return best[s.rng.Intn(len(best))], true
		}
		return cands[s.rng.Intn(len(cands))], true
	}

	used := make(map[string]bool, n)
	usedRack := make(map[[2]int]bool, n)
	var out []ReplicaLoc

	add := func(si ServerInfo) {
		used[si.ID] = true
		out = append(out, ReplicaLoc{
			ServerID:    si.ID,
			ControlAddr: si.ControlAddr,
			DataAddr:    si.DataAddr,
			Host:        si.Host,
		})
	}

	primary, ok := pick(nil, used)
	if !ok {
		return nil, ErrNoDataservers
	}
	add(primary)
	usedRack[[2]int{primary.Pod, primary.Rack}] = true

	for len(out) < n {
		var si ServerInfo
		if len(out) == 1 {
			// Second replica: same rack as the primary if possible.
			si, ok = pick(func(c ServerInfo) bool {
				return c.Pod == primary.Pod && c.Rack == primary.Rack
			}, used)
		} else {
			ok = false
		}
		if !ok {
			// Remaining replicas: previously unused racks first.
			si, ok = pick(func(c ServerInfo) bool {
				return !usedRack[[2]int{c.Pod, c.Rack}]
			}, used)
		}
		if !ok {
			// Fall back to any unused server.
			si, ok = pick(nil, used)
		}
		if !ok {
			return nil, ErrNoDataservers
		}
		add(si)
		usedRack[[2]int{si.Pod, si.Rack}] = true
	}
	return out, nil
}

// Lookup returns a file's metadata.
func (s *Service) Lookup(name string) (FileInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, ok := s.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return fi, nil
}

// Validation statuses returned by Validate for each checked entry.
const (
	// ValidateOK: the cached record is current; renew its lease.
	ValidateOK = "ok"
	// ValidateStale: the record changed; the fresh FileInfo is attached.
	ValidateStale = "stale"
	// ValidateGone: the file no longer exists; drop (or negatively cache)
	// the entry.
	ValidateGone = "gone"
)

// ValidateEntry is one cached record a client asks the nameserver to
// check: the file name and the version the client holds.
type ValidateEntry struct {
	Name    string `json:"name"`
	Version int64  `json:"version"`
}

// ValidateResult is the verdict for one ValidateEntry.
type ValidateResult struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	// Info carries the fresh record when Status is ValidateStale.
	Info *FileInfo `json:"info,omitempty"`
}

// Validate checks a batch of cached (name, version) pairs in one call —
// the lease-renewal path. clientEpoch is the namespace epoch the client
// last observed: when it still matches, every lease renews wholesale
// (no namespace-shape mutation happened, so replica sets are intact;
// sizes may have grown, but size drift is harmless and self-corrects on
// read). Otherwise each entry is checked against the live table. The
// current epoch is returned for the client to store.
func (s *Service) Validate(clientEpoch int64, entries []ValidateEntry) ([]ValidateResult, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ValidateResult, len(entries))
	if clientEpoch == s.epoch {
		for i, e := range entries {
			out[i] = ValidateResult{Name: e.Name, Status: ValidateOK}
		}
		return out, s.epoch
	}
	for i, e := range entries {
		fi, ok := s.files[e.Name]
		switch {
		case !ok:
			out[i] = ValidateResult{Name: e.Name, Status: ValidateGone}
		case fi.Version == e.Version:
			out[i] = ValidateResult{Name: e.Name, Status: ValidateOK}
		default:
			fresh := fi
			out[i] = ValidateResult{Name: e.Name, Status: ValidateStale, Info: &fresh}
		}
	}
	return out, s.epoch
}

// List returns metadata for every file whose name has the given prefix,
// sorted by name.
func (s *Service) List(prefix string) []FileInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []FileInfo
	for name, fi := range s.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, fi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete removes a file's metadata and returns its last known info so the
// caller can clear the replicas.
func (s *Service) Delete(name string) (FileInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, ok := s.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err := s.store.Delete([]byte(filePrefix + name)); err != nil {
		return FileInfo{}, err
	}
	delete(s.files, name)
	// Burn a version so a future re-create of the same name can never
	// reuse one a stale client still holds, then announce the shape change.
	s.nextVersionLocked()
	if err := s.bumpEpochLocked(); err != nil {
		return FileInfo{}, err
	}
	return fi, nil
}

// ReportSize records a file's new size, as reported by its primary
// dataserver after an append. Sizes never shrink (appends only).
func (s *Service) ReportSize(name string, sizeBytes int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, ok := s.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if sizeBytes <= fi.SizeBytes {
		return nil
	}
	fi.SizeBytes = sizeBytes
	// A size report bumps the record version (so Validate refreshes the
	// size on stale clients) but not the epoch: the replica set is intact,
	// and the epoch fast path tolerates size-only drift (sizes only grow
	// and every dataserver read self-corrects).
	fi.Version = s.nextVersionLocked()
	if err := s.persist(filePrefix+name, fi); err != nil {
		return err
	}
	s.files[name] = fi
	return nil
}

// FileRecord is a file as reported by a dataserver scan during rebuild.
type FileRecord struct {
	Info FileInfo `json:"info"`
	// LocalSizeBytes is the number of bytes this dataserver holds.
	LocalSizeBytes int64 `json:"localSizeBytes"`
}

// Scanner lists the file metadata stored on one dataserver, used to
// rebuild the nameserver after an unexpected restart.
type Scanner interface {
	ScanFiles(ctx context.Context, server ServerInfo) ([]FileRecord, error)
}

// Rebuild discards the (possibly stale) file table and reconstructs it by
// scanning every registered dataserver, keeping for each file the maximum
// size any replica reports (shorter replicas are still catching up on
// relayed appends). Scan failures of individual servers are tolerated:
// their exclusive files are simply not recovered, mirroring real data
// loss when a server is gone.
func (s *Service) Rebuild(ctx context.Context, sc Scanner) error {
	servers := s.Servers()
	rebuilt := make(map[string]FileInfo)
	for _, si := range servers {
		recs, err := sc.ScanFiles(ctx, si)
		if err != nil {
			continue
		}
		for _, rec := range recs {
			fi := rec.Info
			fi.SizeBytes = rec.LocalSizeBytes
			if prev, ok := rebuilt[fi.Name]; ok {
				if fi.SizeBytes > prev.SizeBytes {
					prev.SizeBytes = fi.SizeBytes
					rebuilt[fi.Name] = prev
				}
			} else {
				rebuilt[fi.Name] = fi
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Clear persisted file records, then write the rebuilt table.
	for name := range s.files {
		if err := s.store.Delete([]byte(filePrefix + name)); err != nil {
			return err
		}
	}
	s.files = make(map[string]FileInfo, len(rebuilt))
	names := make([]string, 0, len(rebuilt))
	for name := range rebuilt {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fi := rebuilt[name]
		// Every rebuilt record gets a fresh version: clients that cached
		// metadata before the crash must revalidate, since the scan may
		// have recovered different sizes or dropped files.
		fi.Version = s.nextVersionLocked()
		if err := s.persist(filePrefix+name, fi); err != nil {
			return err
		}
		s.files[name] = fi
	}
	return s.bumpEpochLocked()
}

// NumFiles returns the number of files.
func (s *Service) NumFiles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

func (s *Service) persist(key string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.store.Put([]byte(key), body)
}
