package nameserver

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/kvstore"
)

// TestVersionsMonotonicAndUniqueAcrossRecreate pins the versioning
// contract the client lease cache depends on: versions only grow, every
// record mutation bumps them, and a re-created name can never reuse a
// version its previous incarnation handed out.
func TestVersionsMonotonicAndUniqueAcrossRecreate(t *testing.T) {
	svc := newService(t, t.TempDir())
	registerCluster(t, svc)

	fi, err := svc.Create("v/f", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Version == 0 {
		t.Fatal("Create returned an unstamped record")
	}
	if err := svc.ReportSize("v/f", 4096); err != nil {
		t.Fatal(err)
	}
	grown, err := svc.Lookup("v/f")
	if err != nil {
		t.Fatal(err)
	}
	if grown.Version <= fi.Version {
		t.Errorf("ReportSize did not bump version: %d -> %d", fi.Version, grown.Version)
	}
	if _, err := svc.Delete("v/f"); err != nil {
		t.Fatal(err)
	}
	again, err := svc.Create("v/f", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Version <= grown.Version {
		t.Errorf("re-created version %d not above pre-delete %d: a client holding "+
			"the old version could mistake the new file for its cached record",
			again.Version, grown.Version)
	}
}

// TestEpochMovesOnShapeMutationsOnly: the namespace epoch (the Validate
// fast path's correctness lever) must move on create/delete/replica
// changes and must NOT move on size reports — otherwise every append
// would defeat the batched-renewal fast path.
func TestEpochMovesOnShapeMutationsOnly(t *testing.T) {
	svc := newService(t, t.TempDir())
	servers := registerCluster(t, svc)

	fi, err := svc.Create("e/f", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e0 := svc.Epoch()
	if e0 == 0 {
		t.Fatal("epoch still zero after Create")
	}
	if err := svc.ReportSize("e/f", 1024); err != nil {
		t.Fatal(err)
	}
	if got := svc.Epoch(); got != e0 {
		t.Errorf("ReportSize moved the epoch %d -> %d", e0, got)
	}
	// Replica replacement changes where the data lives: shape mutation.
	var spare ServerInfo
	inSet := func(id string) bool {
		for _, r := range fi.Replicas {
			if r.ServerID == id {
				return true
			}
		}
		return false
	}
	for _, si := range servers {
		if !inSet(si.ID) {
			spare = si
			break
		}
	}
	err = svc.ReplaceReplica("e/f", fi.Primary().ServerID, ReplicaLoc{
		ServerID: spare.ID, ControlAddr: spare.ControlAddr,
		DataAddr: spare.DataAddr, Host: spare.Host,
	})
	if err != nil {
		t.Fatal(err)
	}
	e1 := svc.Epoch()
	if e1 <= e0 {
		t.Errorf("ReplaceReplica did not move the epoch: %d -> %d", e0, e1)
	}
	if _, err := svc.Delete("e/f"); err != nil {
		t.Fatal(err)
	}
	if got := svc.Epoch(); got <= e1 {
		t.Errorf("Delete did not move the epoch: %d -> %d", e1, got)
	}
}

func TestValidateVerdicts(t *testing.T) {
	svc := newService(t, t.TempDir())
	registerCluster(t, svc)

	a, err := svc.Create("val/a", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Create("val/b", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate b and delete nothing yet: a's version is current, b's cached
	// copy is stale, and "ghost" never existed.
	if err := svc.ReportSize("val/b", 2048); err != nil {
		t.Fatal(err)
	}
	results, epoch := svc.Validate(0, []ValidateEntry{
		{Name: "val/a", Version: a.Version},
		{Name: "val/b", Version: b.Version},
		{Name: "val/ghost", Version: 7},
	})
	if epoch != svc.Epoch() {
		t.Errorf("Validate returned epoch %d, want %d", epoch, svc.Epoch())
	}
	want := map[string]string{"val/a": ValidateOK, "val/b": ValidateStale, "val/ghost": ValidateGone}
	for _, r := range results {
		if r.Status != want[r.Name] {
			t.Errorf("%s: status %s, want %s", r.Name, r.Status, want[r.Name])
		}
		if r.Status == ValidateStale {
			if r.Info == nil || r.Info.SizeBytes != 2048 {
				t.Errorf("%s: stale verdict missing fresh record: %+v", r.Name, r.Info)
			}
		} else if r.Info != nil {
			t.Errorf("%s: %s verdict carries a record", r.Name, r.Status)
		}
	}

	// Deleted files validate as gone.
	if _, err := svc.Delete("val/a"); err != nil {
		t.Fatal(err)
	}
	results, _ = svc.Validate(0, []ValidateEntry{{Name: "val/a", Version: a.Version}})
	if len(results) != 1 || results[0].Status != ValidateGone {
		t.Errorf("post-delete validate = %+v, want gone", results)
	}
}

// TestValidateEpochFastPath pins the fast path's contract: when the
// client's claimed epoch matches the server's, the whole batch renews OK
// without per-entry checks — sound because under a matching epoch the
// only possible drift is size reports, which the append-only client
// self-corrects from dataserver reads.
func TestValidateEpochFastPath(t *testing.T) {
	svc := newService(t, t.TempDir())
	registerCluster(t, svc)

	fi, err := svc.Create("fp/f", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.ReportSize("fp/f", 512); err != nil { // version drifts, epoch does not
		t.Fatal(err)
	}
	results, _ := svc.Validate(svc.Epoch(), []ValidateEntry{{Name: "fp/f", Version: fi.Version}})
	if len(results) != 1 || results[0].Status != ValidateOK {
		t.Errorf("epoch fast path = %+v, want blanket OK", results)
	}
	// With a stale claimed epoch the same entry gets the per-entry check.
	results, _ = svc.Validate(0, []ValidateEntry{{Name: "fp/f", Version: fi.Version}})
	if len(results) != 1 || results[0].Status != ValidateStale {
		t.Errorf("stale-epoch validate = %+v, want per-entry stale", results)
	}
}

// TestVersionSeqSurvivesRestart: a restarted nameserver must keep
// issuing versions above everything it ever issued, even for files that
// were deleted before the restart (their versions are gone from the
// store). The epoch persists to cover exactly that.
func TestVersionSeqSurvivesRestart(t *testing.T) {
	store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	svc, err := NewService(store, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	registerCluster(t, svc)

	fi, err := svc.Create("r/f", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Delete("r/f"); err != nil {
		t.Fatal(err)
	}
	deletedVer := fi.Version

	// A new service over the same store is a nameserver restart.
	svc2, err := NewService(store, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	again, err := svc2.Create("r/f", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Version <= deletedVer {
		t.Errorf("post-restart version %d not above deleted file's %d", again.Version, deletedVer)
	}
}

func TestLookupMissingIsNotFound(t *testing.T) {
	svc := newService(t, t.TempDir())
	if _, err := svc.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Lookup missing = %v, want ErrNotFound", err)
	}
}
