package nameserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// RPC method names served by the nameserver.
const (
	MethodRegister   = "ns.Register"
	MethodCreate     = "ns.Create"
	MethodLookup     = "ns.Lookup"
	MethodValidate   = "ns.Validate"
	MethodList       = "ns.List"
	MethodDelete     = "ns.Delete"
	MethodReportSize = "ns.ReportSize"
	MethodServers    = "ns.Servers"
	MethodHeartbeat  = "ns.Heartbeat"
)

type createArgs struct {
	Name string        `json:"name"`
	Opts CreateOptions `json:"opts"`
}

type nameArgs struct {
	Name string `json:"name"`
}

type listArgs struct {
	Prefix string `json:"prefix"`
}

type heartbeatArgs struct {
	ServerID string `json:"serverId"`
}

type reportSizeArgs struct {
	Name      string `json:"name"`
	SizeBytes int64  `json:"sizeBytes"`
}

type validateArgs struct {
	// Epoch is the namespace epoch the client last observed; a match
	// renews every lease in one shot.
	Epoch   int64           `json:"epoch"`
	Entries []ValidateEntry `json:"entries"`
}

type validateReply struct {
	Epoch   int64            `json:"epoch"`
	Results []ValidateResult `json:"results"`
}

// RegisterRPC exposes a nameserver (centralized Service or
// Paxos-replicated ReplicatedService) on a wire server.
func RegisterRPC(srv *wire.Server, svc Metadata) error {
	handlers := map[string]wire.Handler{
		MethodRegister: func(_ context.Context, params json.RawMessage) (any, error) {
			var si ServerInfo
			if err := json.Unmarshal(params, &si); err != nil {
				return nil, err
			}
			return struct{}{}, svc.RegisterServer(si)
		},
		MethodCreate: func(_ context.Context, params json.RawMessage) (any, error) {
			var a createArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return svc.Create(a.Name, a.Opts)
		},
		MethodLookup: func(_ context.Context, params json.RawMessage) (any, error) {
			var a nameArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return svc.Lookup(a.Name)
		},
		MethodValidate: func(_ context.Context, params json.RawMessage) (any, error) {
			var a validateArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			results, epoch := svc.Validate(a.Epoch, a.Entries)
			if results == nil {
				results = []ValidateResult{}
			}
			return validateReply{Epoch: epoch, Results: results}, nil
		},
		MethodList: func(_ context.Context, params json.RawMessage) (any, error) {
			var a listArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			files := svc.List(a.Prefix)
			if files == nil {
				files = []FileInfo{}
			}
			return files, nil
		},
		MethodDelete: func(_ context.Context, params json.RawMessage) (any, error) {
			var a nameArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return svc.Delete(a.Name)
		},
		MethodReportSize: func(_ context.Context, params json.RawMessage) (any, error) {
			var a reportSizeArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return struct{}{}, svc.ReportSize(a.Name, a.SizeBytes)
		},
		MethodHeartbeat: func(_ context.Context, params json.RawMessage) (any, error) {
			var a heartbeatArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return struct{}{}, svc.Heartbeat(a.ServerID)
		},
		MethodServers: func(_ context.Context, params json.RawMessage) (any, error) {
			servers := svc.Servers()
			if servers == nil {
				servers = []ServerInfo{}
			}
			return servers, nil
		},
	}
	for name, h := range handlers {
		if err := srv.Register(name, h); err != nil {
			return err
		}
	}
	return nil
}

// Client is the typed nameserver stub over an rpc session (usually an
// *rpc.Peer). Connection lifecycle — dialing, pooling, reconnection —
// belongs to the session layer, not this stub.
type Client struct {
	c rpc.Caller
}

// NewClient wraps a control-plane session.
func NewClient(c rpc.Caller) *Client { return &Client{c: c} }

// Register registers a dataserver.
func (c *Client) Register(ctx context.Context, si ServerInfo) error {
	var out struct{}
	return mapError(c.c.Call(ctx, MethodRegister, si, &out))
}

// Create creates a file and returns its metadata.
func (c *Client) Create(ctx context.Context, name string, opts CreateOptions) (FileInfo, error) {
	var fi FileInfo
	err := c.c.Call(ctx, MethodCreate, createArgs{Name: name, Opts: opts}, &fi)
	return fi, mapError(err)
}

// Lookup fetches a file's metadata.
func (c *Client) Lookup(ctx context.Context, name string) (FileInfo, error) {
	var fi FileInfo
	err := c.c.Call(ctx, MethodLookup, nameArgs{Name: name}, &fi)
	return fi, mapError(err)
}

// Validate checks a batch of cached (name, version) pairs — the lease
// renewal path. epoch is the namespace epoch last observed by the
// caller; the current epoch is returned alongside per-entry verdicts.
func (c *Client) Validate(ctx context.Context, epoch int64, entries []ValidateEntry) ([]ValidateResult, int64, error) {
	var reply validateReply
	err := c.c.Call(ctx, MethodValidate, validateArgs{Epoch: epoch, Entries: entries}, &reply)
	if err != nil {
		return nil, 0, mapError(err)
	}
	return reply.Results, reply.Epoch, nil
}

// List fetches metadata for files with the given name prefix.
func (c *Client) List(ctx context.Context, prefix string) ([]FileInfo, error) {
	var files []FileInfo
	err := c.c.Call(ctx, MethodList, listArgs{Prefix: prefix}, &files)
	return files, mapError(err)
}

// Delete removes a file's metadata, returning its last known info.
func (c *Client) Delete(ctx context.Context, name string) (FileInfo, error) {
	var fi FileInfo
	err := c.c.Call(ctx, MethodDelete, nameArgs{Name: name}, &fi)
	return fi, mapError(err)
}

// ReportSize records a file's new size after an append.
func (c *Client) ReportSize(ctx context.Context, name string, sizeBytes int64) error {
	var out struct{}
	return mapError(c.c.Call(ctx, MethodReportSize, reportSizeArgs{Name: name, SizeBytes: sizeBytes}, &out))
}

// Heartbeat reports a dataserver as alive.
func (c *Client) Heartbeat(ctx context.Context, serverID string) error {
	var out struct{}
	return mapError(c.c.Call(ctx, MethodHeartbeat, heartbeatArgs{ServerID: serverID}, &out))
}

// Servers lists registered dataservers.
func (c *Client) Servers(ctx context.Context) ([]ServerInfo, error) {
	var servers []ServerInfo
	err := c.c.Call(ctx, MethodServers, struct{}{}, &servers)
	return servers, mapError(err)
}

// mapError restores the package's sentinel errors from remote error
// strings so callers can use errors.Is across the RPC boundary.
func mapError(err error) error {
	if err == nil {
		return nil
	}
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	switch {
	case strings.Contains(re.Msg, ErrNotFound.Error()):
		return fmt.Errorf("%w (%s)", ErrNotFound, re.Method)
	case strings.Contains(re.Msg, ErrExists.Error()):
		return fmt.Errorf("%w (%s)", ErrExists, re.Method)
	case strings.Contains(re.Msg, ErrNoDataservers.Error()):
		return fmt.Errorf("%w (%s)", ErrNoDataservers, re.Method)
	default:
		return err
	}
}
