package nameserver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

func newService(t *testing.T, dir string) *Service {
	t.Helper()
	store, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	svc, err := NewService(store, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// registerCluster registers 16 dataservers across 2 pods × 2 racks × 4
// hosts.
func registerCluster(t *testing.T, svc *Service) []ServerInfo {
	t.Helper()
	var servers []ServerInfo
	for pod := 0; pod < 2; pod++ {
		for rack := 0; rack < 2; rack++ {
			for h := 0; h < 4; h++ {
				si := ServerInfo{
					ID:          fmt.Sprintf("ds-%d-%d-%d", pod, rack, h),
					ControlAddr: fmt.Sprintf("10.%d.%d.%d:7000", pod, rack, h),
					DataAddr:    fmt.Sprintf("10.%d.%d.%d:7001", pod, rack, h),
					Host:        fmt.Sprintf("host-p%d-r%d-h%d", pod, rack, h),
					Pod:         pod,
					Rack:        rack,
				}
				if err := svc.RegisterServer(si); err != nil {
					t.Fatal(err)
				}
				servers = append(servers, si)
			}
		}
	}
	return servers
}

func TestCreateLookupDelete(t *testing.T) {
	svc := newService(t, t.TempDir())
	registerCluster(t, svc)

	fi, err := svc.Create("data/part-000", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Name != "data/part-000" || fi.ChunkSize != DefaultChunkSize || len(fi.Replicas) != DefaultReplication {
		t.Errorf("Create = %+v", fi)
	}
	if fi.ID.IsZero() {
		t.Error("zero file id")
	}
	if fi.NumChunks() != 0 {
		t.Errorf("NumChunks = %d for empty file", fi.NumChunks())
	}

	got, err := svc.Lookup("data/part-000")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != fi.ID {
		t.Error("lookup returned different file")
	}

	if _, err := svc.Create("data/part-000", CreateOptions{}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create err = %v", err)
	}

	deleted, err := svc.Delete("data/part-000")
	if err != nil {
		t.Fatal(err)
	}
	if deleted.ID != fi.ID {
		t.Error("delete returned different file")
	}
	if _, err := svc.Lookup("data/part-000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup after delete err = %v", err)
	}
	if _, err := svc.Delete("data/part-000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestCreateValidation(t *testing.T) {
	svc := newService(t, t.TempDir())
	registerCluster(t, svc)

	if _, err := svc.Create("", CreateOptions{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := svc.Create("x", CreateOptions{ChunkSize: -1}); err == nil {
		t.Error("negative chunk size accepted")
	}
	if _, err := svc.Create("x", CreateOptions{Replication: -2}); err == nil {
		t.Error("negative replication accepted")
	}
	if _, err := svc.Create("x", CreateOptions{Replication: 100}); !errors.Is(err, ErrNoDataservers) {
		t.Errorf("excess replication err = %v", err)
	}
}

func TestCreateWithoutServers(t *testing.T) {
	svc := newService(t, t.TempDir())
	if _, err := svc.Create("x", CreateOptions{}); !errors.Is(err, ErrNoDataservers) {
		t.Errorf("err = %v, want ErrNoDataservers", err)
	}
}

// TestPlacementSkipsDeadServers pins the liveness filter: with
// SetPlacementLiveness on, a server whose heartbeat has gone stale past
// the horizon never receives a new file's replica, and placement that
// cannot find enough live servers fails rather than handing out dead
// ones. Explicitly pinned replica sets stay unfiltered.
func TestPlacementSkipsDeadServers(t *testing.T) {
	svc := newService(t, t.TempDir())
	for i := 0; i < 4; i++ {
		err := svc.RegisterServer(ServerInfo{
			ID:          fmt.Sprintf("ds-%d", i),
			ControlAddr: fmt.Sprintf("10.0.0.%d:7000", i),
			DataAddr:    fmt.Sprintf("10.0.0.%d:7001", i),
			Host:        fmt.Sprintf("host-p0-r%d-h0", i),
			Rack:        i,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	svc.SetPlacementLiveness(time.Minute)
	svc.mu.Lock()
	svc.lastBeat["ds-0"] = time.Now().Add(-2 * time.Minute) // silent past the horizon
	svc.mu.Unlock()

	for i := 0; i < 20; i++ {
		fi, err := svc.Create(fmt.Sprintf("live-%d", i), CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range fi.Replicas {
			if r.ServerID == "ds-0" {
				t.Fatalf("file %s placed on dead server ds-0", fi.Name)
			}
		}
	}
	if _, err := svc.Create("impossible", CreateOptions{Replication: 4}); !errors.Is(err, ErrNoDataservers) {
		t.Fatalf("replication 4 with 3 live servers: err = %v, want ErrNoDataservers", err)
	}
	// An explicit pin may still name the dead server — the caller asked.
	fi, err := svc.Create("pinned", CreateOptions{
		Replication:       2,
		PreferredReplicas: []string{"ds-0", "ds-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Replicas[0].ServerID != "ds-0" {
		t.Fatalf("pinned primary = %s, want ds-0", fi.Replicas[0].ServerID)
	}
}

func TestPlacementFaultDomains(t *testing.T) {
	svc := newService(t, t.TempDir())
	registerCluster(t, svc)

	byID := make(map[string]ServerInfo)
	for _, si := range svc.Servers() {
		byID[si.ID] = si
	}
	for i := 0; i < 100; i++ {
		fi, err := svc.Create(fmt.Sprintf("f-%d", i), CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(fi.Replicas) != 3 {
			t.Fatalf("got %d replicas", len(fi.Replicas))
		}
		seen := make(map[string]bool)
		for _, r := range fi.Replicas {
			if seen[r.ServerID] {
				t.Fatal("duplicate replica server")
			}
			seen[r.ServerID] = true
		}
		p0 := byID[fi.Replicas[0].ServerID]
		p1 := byID[fi.Replicas[1].ServerID]
		p2 := byID[fi.Replicas[2].ServerID]
		// §5 default placement: two replicas in the same rack, the third
		// in a different rack.
		if p0.Pod != p1.Pod || p0.Rack != p1.Rack {
			t.Fatalf("first two replicas in different racks: %+v %+v", p0, p1)
		}
		if p2.Pod == p0.Pod && p2.Rack == p0.Rack {
			t.Fatalf("third replica in the primary rack: %+v", p2)
		}
	}
}

func TestReportSizeMonotone(t *testing.T) {
	svc := newService(t, t.TempDir())
	registerCluster(t, svc)
	fi, err := svc.Create("f", CreateOptions{ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	_ = fi
	if err := svc.ReportSize("f", 250); err != nil {
		t.Fatal(err)
	}
	got, _ := svc.Lookup("f")
	if got.SizeBytes != 250 || got.NumChunks() != 3 {
		t.Errorf("size %d chunks %d, want 250 / 3", got.SizeBytes, got.NumChunks())
	}
	// Sizes never shrink.
	if err := svc.ReportSize("f", 100); err != nil {
		t.Fatal(err)
	}
	got, _ = svc.Lookup("f")
	if got.SizeBytes != 250 {
		t.Errorf("size shrank to %d", got.SizeBytes)
	}
	if err := svc.ReportSize("missing", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("ReportSize(missing) err = %v", err)
	}
}

func TestListPrefix(t *testing.T) {
	svc := newService(t, t.TempDir())
	registerCluster(t, svc)
	for _, name := range []string{"logs/a", "logs/b", "data/c"} {
		if _, err := svc.Create(name, CreateOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	logs := svc.List("logs/")
	if len(logs) != 2 || logs[0].Name != "logs/a" || logs[1].Name != "logs/b" {
		t.Errorf("List(logs/) = %+v", logs)
	}
	if all := svc.List(""); len(all) != 3 {
		t.Errorf("List() = %d files", len(all))
	}
	if svc.NumFiles() != 3 {
		t.Errorf("NumFiles = %d", svc.NumFiles())
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t, dir)
	registerCluster(t, svc)
	fi, err := svc.Create("persisted", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.ReportSize("persisted", 1234); err != nil {
		t.Fatal(err)
	}

	// Graceful restart: reopen the same store.
	store, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	svc2, err := NewService(store, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc2.Lookup("persisted")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != fi.ID || got.SizeBytes != 1234 {
		t.Errorf("restored file = %+v", got)
	}
	if len(svc2.Servers()) != 16 {
		t.Errorf("restored %d servers", len(svc2.Servers()))
	}
}

// fakeScanner serves canned per-server file records.
type fakeScanner struct {
	records map[string][]FileRecord
	fail    map[string]bool
}

func (f *fakeScanner) ScanFiles(_ context.Context, si ServerInfo) ([]FileRecord, error) {
	if f.fail[si.ID] {
		return nil, errors.New("scan failed")
	}
	return f.records[si.ID], nil
}

func TestRebuildFromDataservers(t *testing.T) {
	svc := newService(t, t.TempDir())
	servers := registerCluster(t, svc)
	fi, err := svc.Create("stale", CreateOptions{ChunkSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	// The dataservers know a file the store does not, and report
	// different sizes (a replica lagging on relayed appends).
	fresh := FileInfo{ID: fi.ID, Name: "recovered", ChunkSize: 64,
		Replicas: fi.Replicas}
	sc := &fakeScanner{
		records: map[string][]FileRecord{
			servers[0].ID: {{Info: fresh, LocalSizeBytes: 192}},
			servers[1].ID: {{Info: fresh, LocalSizeBytes: 128}},
		},
		fail: map[string]bool{servers[2].ID: true},
	}
	if err := svc.Rebuild(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	// The stale record is gone; the scanned file exists with the max size.
	if _, err := svc.Lookup("stale"); !errors.Is(err, ErrNotFound) {
		t.Errorf("stale file survived rebuild: %v", err)
	}
	got, err := svc.Lookup("recovered")
	if err != nil {
		t.Fatal(err)
	}
	if got.SizeBytes != 192 {
		t.Errorf("rebuilt size = %d, want 192 (max of replicas)", got.SizeBytes)
	}
}

func TestRegisterValidation(t *testing.T) {
	svc := newService(t, t.TempDir())
	if err := svc.RegisterServer(ServerInfo{}); err == nil {
		t.Error("empty server accepted")
	}
}

func TestRPCEndToEnd(t *testing.T) {
	svc := newService(t, t.TempDir())
	registerCluster(t, svc)

	srv := wire.NewServer()
	if err := RegisterRPC(srv, svc); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	peer := rpc.NewPeer(ln.Addr().String(), rpc.Options{})
	defer peer.Close()
	c := NewClient(peer)
	ctx := context.Background()

	if err := c.Register(ctx, ServerInfo{ID: "extra", ControlAddr: "1.2.3.4:1", Host: "h"}); err != nil {
		t.Fatal(err)
	}
	servers, err := c.Servers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 17 {
		t.Errorf("Servers = %d, want 17", len(servers))
	}

	fi, err := c.Create(ctx, "rpc-file", CreateOptions{ChunkSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if fi.ChunkSize != 1<<20 {
		t.Errorf("ChunkSize = %d", fi.ChunkSize)
	}
	if _, err := c.Create(ctx, "rpc-file", CreateOptions{}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create over RPC err = %v", err)
	}

	got, err := c.Lookup(ctx, "rpc-file")
	if err != nil || got.ID != fi.ID {
		t.Fatalf("Lookup = %+v, %v", got, err)
	}
	if _, err := c.Lookup(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Lookup(missing) err = %v", err)
	}

	if err := c.ReportSize(ctx, "rpc-file", 99); err != nil {
		t.Fatal(err)
	}
	files, err := c.List(ctx, "rpc-")
	if err != nil || len(files) != 1 || files[0].SizeBytes != 99 {
		t.Fatalf("List = %+v, %v", files, err)
	}

	if _, err := c.Delete(ctx, "rpc-file"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(ctx, "rpc-file"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(gone) err = %v", err)
	}
	if files, err := c.List(ctx, ""); err != nil || len(files) != 0 {
		t.Errorf("List after delete = %v, %v", files, err)
	}
}
