package nameserver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/paxos"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// replicatedCluster is three nameserver replicas over in-process Paxos.
type replicatedCluster struct {
	services []*ReplicatedService
	locals   []*Service
	nodes    []*paxos.Node
}

// localPaxosTransport adapts a node for in-process delivery.
type localPaxosTransport struct{ node *paxos.Node }

func (t localPaxosTransport) Prepare(_ context.Context, a paxos.PrepareArgs) (paxos.PrepareReply, error) {
	return t.node.HandlePrepare(a), nil
}

func (t localPaxosTransport) Accept(_ context.Context, a paxos.AcceptArgs) (paxos.AcceptReply, error) {
	return t.node.HandleAccept(a), nil
}

func (t localPaxosTransport) Learn(_ context.Context, a paxos.LearnArgs) error {
	t.node.HandleLearn(a)
	return nil
}

func newReplicatedCluster(t *testing.T, n int) *replicatedCluster {
	t.Helper()
	rc := &replicatedCluster{}
	peerMaps := make([]map[int64]paxos.Transport, n)
	for i := 0; i < n; i++ {
		peerMaps[i] = make(map[int64]paxos.Transport)
		store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		svc, err := NewService(store, rand.New(rand.NewSource(int64(i+1))))
		if err != nil {
			t.Fatal(err)
		}
		rs := NewReplicatedService(svc)
		rs.ProposeTimeout = 5 * time.Second
		node, err := paxos.NewNode(paxos.Config{ID: int64(i), Peers: peerMaps[i], Apply: rs.Apply})
		if err != nil {
			t.Fatal(err)
		}
		rs.SetNode(node)
		rc.services = append(rc.services, rs)
		rc.locals = append(rc.locals, svc)
		rc.nodes = append(rc.nodes, node)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				peerMaps[i][int64(j)] = localPaxosTransport{node: rc.nodes[j]}
			}
		}
	}
	return rc
}

// registerTestServers registers a small dataserver fleet through replica 0.
func registerTestServers(t *testing.T, rs *ReplicatedService) {
	t.Helper()
	for pod := 0; pod < 2; pod++ {
		for rack := 0; rack < 2; rack++ {
			for h := 0; h < 2; h++ {
				err := rs.RegisterServer(ServerInfo{
					ID:          fmt.Sprintf("ds-%d-%d-%d", pod, rack, h),
					ControlAddr: "127.0.0.1:1",
					Host:        fmt.Sprintf("host-p%d-r%d-h%d", pod, rack, h),
					Pod:         pod,
					Rack:        rack,
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func waitReplicated(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("replicas did not converge")
}

func TestReplicatedCreateVisibleEverywhere(t *testing.T) {
	rc := newReplicatedCluster(t, 3)
	registerTestServers(t, rc.services[0])

	fi, err := rc.services[0].Create("repl/file-1", CreateOptions{ChunkSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	waitReplicated(t, func() bool {
		for _, svc := range rc.services {
			if _, err := svc.Lookup("repl/file-1"); err != nil {
				return false
			}
		}
		return true
	})
	// Identical record — including placement — on every replica.
	for i, svc := range rc.services {
		got, err := svc.Lookup("repl/file-1")
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != fi.ID || len(got.Replicas) != len(fi.Replicas) {
			t.Fatalf("replica %d has %+v, want %+v", i, got, fi)
		}
		for j := range got.Replicas {
			if got.Replicas[j].ServerID != fi.Replicas[j].ServerID {
				t.Fatalf("replica %d placement diverged", i)
			}
		}
	}
}

func TestReplicatedDuplicateCreateRejected(t *testing.T) {
	rc := newReplicatedCluster(t, 3)
	registerTestServers(t, rc.services[0])

	if _, err := rc.services[0].Create("dup", CreateOptions{}); err != nil {
		t.Fatal(err)
	}
	// A concurrent create of the same name through another replica: the
	// second committed command must fail at apply time on every node.
	waitReplicated(t, func() bool {
		_, err := rc.services[1].Lookup("dup")
		return err == nil
	})
	if _, err := rc.services[1].Create("dup", CreateOptions{}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create err = %v, want ErrExists", err)
	}
}

func TestReplicatedDeleteAndReportSize(t *testing.T) {
	rc := newReplicatedCluster(t, 3)
	registerTestServers(t, rc.services[0])
	if _, err := rc.services[0].Create("f", CreateOptions{ChunkSize: 128}); err != nil {
		t.Fatal(err)
	}
	if err := rc.services[1].ReportSize("f", 777); err != nil {
		// Replica 1 may not have applied the create yet; retry briefly.
		waitReplicated(t, func() bool { return rc.services[1].ReportSize("f", 777) == nil })
	}
	waitReplicated(t, func() bool {
		for _, svc := range rc.services {
			fi, err := svc.Lookup("f")
			if err != nil || fi.SizeBytes != 777 {
				return false
			}
		}
		return true
	})

	if _, err := rc.services[2].Delete("f"); err != nil {
		waitReplicated(t, func() bool {
			_, err := rc.services[2].Delete("f")
			return err == nil || errors.Is(err, ErrNotFound)
		})
	}
	waitReplicated(t, func() bool {
		for _, svc := range rc.services {
			if _, err := svc.Lookup("f"); !errors.Is(err, ErrNotFound) {
				return false
			}
		}
		return true
	})
}

func TestReplicatedConcurrentCreatesDistinctNames(t *testing.T) {
	rc := newReplicatedCluster(t, 3)
	registerTestServers(t, rc.services[0])
	// Placement plans run against replica-local state; wait until every
	// replica has applied the registrations before creating through them.
	waitReplicated(t, func() bool {
		for _, svc := range rc.services {
			if len(svc.Servers()) != 8 {
				return false
			}
		}
		return true
	})

	var wg sync.WaitGroup
	const perReplica = 5
	for i, svc := range rc.services {
		i, svc := i, svc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perReplica; k++ {
				name := fmt.Sprintf("c/%d-%d", i, k)
				if _, err := svc.Create(name, CreateOptions{}); err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := perReplica * len(rc.services)
	waitReplicated(t, func() bool {
		for _, svc := range rc.services {
			if svc.NumFiles() != total {
				return false
			}
		}
		return true
	})
	// Every replica agrees on every record.
	ref := rc.services[0].List("")
	for i := 1; i < len(rc.services); i++ {
		got := rc.services[i].List("")
		if len(got) != len(ref) {
			t.Fatalf("replica %d has %d files, want %d", i, len(got), len(ref))
		}
		for k := range ref {
			if got[k].ID != ref[k].ID || got[k].Name != ref[k].Name {
				t.Fatalf("replica %d diverges at %s", i, ref[k].Name)
			}
		}
	}
}

func TestReplicatedWithoutNode(t *testing.T) {
	store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	svc, err := NewService(store, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rs := NewReplicatedService(svc)
	if err := rs.RegisterServer(ServerInfo{ID: "x", ControlAddr: "y"}); err == nil {
		t.Error("mutation without a paxos node succeeded")
	}
	if err := rs.RegisterServer(ServerInfo{}); err == nil {
		t.Error("invalid server accepted")
	}
}

// TestReplicatedOverRPC serves a replicated nameserver through the normal
// nameserver RPC interface — proving Metadata covers both
// implementations — with Paxos running over real TCP.
func TestReplicatedOverRPC(t *testing.T) {
	const n = 3
	type replica struct {
		rs   *ReplicatedService
		node *paxos.Node
	}
	replicas := make([]replica, n)
	peerMaps := make([]map[int64]paxos.Transport, n)
	paxosAddrs := make([]string, n)

	for i := 0; i < n; i++ {
		peerMaps[i] = make(map[int64]paxos.Transport)
		store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		svc, err := NewService(store, rand.New(rand.NewSource(int64(i+10))))
		if err != nil {
			t.Fatal(err)
		}
		rs := NewReplicatedService(svc)
		node, err := paxos.NewNode(paxos.Config{ID: int64(i), Peers: peerMaps[i], Apply: rs.Apply})
		if err != nil {
			t.Fatal(err)
		}
		rs.SetNode(node)
		replicas[i] = replica{rs: rs, node: node}

		psrv := wire.NewServer()
		if err := paxos.RegisterRPC(psrv, node); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go psrv.Serve(ln)
		t.Cleanup(func() { psrv.Close() })
		paxosAddrs[i] = ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			tr := paxos.NewRPCTransport(paxosAddrs[j])
			t.Cleanup(func() { tr.Close() })
			peerMaps[i][int64(j)] = tr
		}
	}

	// Serve replica 0 through the standard nameserver RPC surface.
	nsSrv := wire.NewServer()
	if err := RegisterRPC(nsSrv, replicas[0].rs); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go nsSrv.Serve(ln)
	t.Cleanup(func() { nsSrv.Close() })

	peer := rpc.NewPeer(ln.Addr().String(), rpc.Options{})
	defer peer.Close()
	c := NewClient(peer)
	ctx := context.Background()

	if err := c.Register(ctx, ServerInfo{ID: "ds-a", ControlAddr: "127.0.0.1:1", Host: "h"}); err != nil {
		t.Fatal(err)
	}
	fi, err := c.Create(ctx, "over-rpc", CreateOptions{Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Name != "over-rpc" {
		t.Errorf("Create = %+v", fi)
	}
	// The mutation reached the other replicas through Paxos.
	waitReplicated(t, func() bool {
		for i := 1; i < n; i++ {
			if _, err := replicas[i].rs.Lookup("over-rpc"); err != nil {
				return false
			}
		}
		return true
	})
}
