package dataserver

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/uuid"
)

func newStorage(t *testing.T) *storage {
	t.Helper()
	st, err := openStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testInfo(t *testing.T, chunkSize int64) nameserver.FileInfo {
	t.Helper()
	return nameserver.FileInfo{
		ID:        uuid.MustNew(),
		Name:      "test-file",
		ChunkSize: chunkSize,
		Replicas:  []nameserver.ReplicaLoc{{ServerID: "ds-0"}},
	}
}

func TestPrepareIdempotent(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 100)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if err := st.prepare(info); err != nil {
		t.Fatalf("second prepare: %v", err)
	}
	if _, err := st.get(info.ID); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareValidation(t *testing.T) {
	st := newStorage(t)
	if err := st.prepare(nameserver.FileInfo{ID: uuid.MustNew()}); err == nil {
		t.Error("zero chunk size accepted")
	}
	if err := st.prepare(nameserver.FileInfo{ChunkSize: 10}); err == nil {
		t.Error("zero file id accepted")
	}
}

func TestAppendReadAcrossChunks(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 10) // tiny chunks force boundary crossings
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}

	payload := []byte("the quick brown fox jumps over the lazy dog") // 43 bytes
	size, err := st.appendAt(info.ID, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	if size != 43 {
		t.Fatalf("size = %d, want 43", size)
	}

	// Five chunk files must exist: 10+10+10+10+3.
	for chunk := 1; chunk <= 5; chunk++ {
		fi, err := os.Stat(st.chunkPath(info.ID, chunk))
		if err != nil {
			t.Fatalf("chunk %d missing: %v", chunk, err)
		}
		want := int64(10)
		if chunk == 5 {
			want = 3
		}
		if fi.Size() != want {
			t.Errorf("chunk %d size = %d, want %d", chunk, fi.Size(), want)
		}
	}

	// Whole-file read.
	var buf bytes.Buffer
	gotSize, err := st.readAt(info.ID, 0, 43, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotSize != 43 || !bytes.Equal(buf.Bytes(), payload) {
		t.Errorf("read = %q (size %d)", buf.Bytes(), gotSize)
	}

	// Unaligned range crossing a boundary.
	buf.Reset()
	if _, err := st.readAt(info.ID, 7, 9, &buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(payload[7:16]) {
		t.Errorf("range read = %q, want %q", got, payload[7:16])
	}
}

func TestAppendContinuesLastChunk(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 10)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 0, []byte("1234567")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 7, []byte("89abcd")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.readAt(info.ID, 0, 13, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "123456789abcd" {
		t.Errorf("read = %q", buf.String())
	}
}

func TestAppendOffsetChecks(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 100)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// A gap is rejected.
	if _, err := st.appendAt(info.ID, 10, []byte("x")); !errors.Is(err, ErrOffsetGap) {
		t.Errorf("gap append err = %v", err)
	}
	// A duplicate delivery (fully covered) is a quiet no-op.
	size, err := st.appendAt(info.ID, 0, []byte("hello"))
	if err != nil || size != 5 {
		t.Errorf("duplicate append = %d, %v", size, err)
	}
	var buf bytes.Buffer
	if _, err := st.readAt(info.ID, 0, 5, &buf); err != nil || buf.String() != "hello" {
		t.Errorf("read after duplicate = %q, %v", buf.String(), err)
	}
}

func TestReadValidation(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 100)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.readAt(info.ID, 0, 6, &buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("over-read err = %v", err)
	}
	if _, err := st.readAt(info.ID, -1, 1, &buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset err = %v", err)
	}
	if _, err := st.readAt(uuid.MustNew(), 0, 1, &buf); !errors.Is(err, ErrUnknownFile) {
		t.Errorf("unknown file err = %v", err)
	}
	size, err := st.readAt(info.ID, 5, 0, &buf)
	if err != nil || size != 5 {
		t.Errorf("empty read = %d, %v", size, err)
	}
}

func TestDelete(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 100)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := st.delete(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(st.dirOf(info.ID)); !errors.Is(err, os.ErrNotExist) {
		t.Error("file directory survived delete")
	}
	if _, err := st.get(info.ID); !errors.Is(err, ErrUnknownFile) {
		t.Errorf("get after delete err = %v", err)
	}
	if err := st.delete(info.ID); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestReopenRecoversFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := openStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	info := testInfo(t, 10)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 0, bytes.Repeat([]byte("z"), 25)); err != nil {
		t.Fatal(err)
	}

	st2, err := openStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := st2.get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fs.localSize() != 25 {
		t.Errorf("recovered size = %d, want 25", fs.localSize())
	}
	if fs.info.Name != "test-file" {
		t.Errorf("recovered name = %q", fs.info.Name)
	}
	recs := st2.list()
	if len(recs) != 1 || recs[0].LocalSizeBytes != 25 {
		t.Errorf("list = %+v", recs)
	}

	// A directory with torn metadata is skipped, not fatal.
	tornDir := filepath.Join(dir, uuid.MustNew().String())
	if err := os.MkdirAll(tornDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tornDir, metaFileName), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := openStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st3.list()) != 1 {
		t.Errorf("torn directory not skipped: %d files", len(st3.list()))
	}
}

func TestConcurrentAppendsSerialize(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 64)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers = 8
	const perWriter = 20
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Emulate primary behaviour: take the order lock, find the
				// offset, apply.
				fs, err := st.get(info.ID)
				if err != nil {
					t.Error(err)
					return
				}
				fs.appendMu.Lock()
				off := fs.localSize()
				_, err = st.appendAtLocked(fs, info.ID, off, []byte("0123456789"))
				fs.appendMu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	fs, _ := st.get(info.ID)
	if got, want := fs.localSize(), int64(writers*perWriter*10); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	var buf bytes.Buffer
	if _, err := st.readAt(info.ID, 0, fs.localSize(), &buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i+10 <= buf.Len(); i += 10 {
		if string(buf.Bytes()[i:i+10]) != "0123456789" {
			t.Fatalf("interleaved append at %d: %q", i, buf.Bytes()[i:i+10])
		}
	}
}

func TestConcurrentReadsDuringAppend(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 1024)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 0, bytes.Repeat([]byte("a"), 4096)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		off := int64(4096)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := st.appendAt(info.ID, off, bytes.Repeat([]byte("b"), 100))
			if err != nil {
				t.Error(err)
				return
			}
			off = n
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		// Reads of immutable early chunks proceed during appends.
		if _, err := st.readAt(info.ID, 0, 1024, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), bytes.Repeat([]byte("a"), 1024)) {
			t.Fatal("early chunk corrupted during appends")
		}
	}
	close(stop)
	wg.Wait()
}

func TestListSnapshot(t *testing.T) {
	st := newStorage(t)
	for i := 0; i < 5; i++ {
		info := testInfo(t, 100)
		info.Name = fmt.Sprintf("f-%d", i)
		if err := st.prepare(info); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(st.list()); got != 5 {
		t.Errorf("list = %d entries, want 5", got)
	}
}
