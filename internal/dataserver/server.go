package dataserver

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/uuid"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// Control RPC method names served by a dataserver.
const (
	MethodPrepare   = "ds.Prepare"
	MethodAppend    = "ds.Append"
	MethodAppendAt  = "ds.AppendAt"
	MethodDelete    = "ds.Delete"
	MethodStat      = "ds.Stat"
	MethodListFiles = "ds.ListFiles"
	MethodScrub     = "ds.Scrub"
)

// MaxAppend bounds a single append RPC; the client library splits larger
// writes.
const MaxAppend = 8 << 20

// Pacer shapes the dataserver's bulk read streams. The emulated
// datacenter network implements it to enforce link sharing; NopPacer runs
// at full speed.
type Pacer interface {
	// Writer wraps w so that writes count against (and are paced as)
	// the given flow.
	Writer(flowID uint64, w io.Writer) io.Writer
}

// NopPacer performs no pacing.
type NopPacer struct{}

// Writer returns w unchanged.
func (NopPacer) Writer(_ uint64, w io.Writer) io.Writer { return w }

var _ Pacer = NopPacer{}

// Config describes a dataserver instance.
type Config struct {
	// ID is the server's stable identity.
	ID string
	// Root is the chunk store directory.
	Root string
	// Host is the topology host name this server runs on.
	Host string
	// Pod and Rack are the server's fault-domain coordinates.
	Pod, Rack int
	// Pacer shapes bulk reads; nil means NopPacer.
	Pacer Pacer
	// HeartbeatInterval is how often the server reports liveness to the
	// nameserver (1 s if zero; 0 heartbeats are never sent when no
	// nameserver is configured).
	HeartbeatInterval time.Duration
	// FlowserverAddr, when set, makes this server (as a file's primary)
	// ask the Flowserver to order its replication fan-out and register
	// each relay hop as a scheduled flow. Empty keeps the static replica
	// order with no flow registration.
	FlowserverAddr string
	// FlowDirectoryAddr, when set (and FlowserverAddr is not), routes
	// relay planning through the flowctl shard directory: the server
	// resolves the shard owning its own Pod and re-resolves when the
	// directory epoch bumps (shard failover) or a call fails. Static
	// FlowserverAddr wins when both are set.
	FlowDirectoryAddr string
	// FlowRouteTTL is how long a resolved shard route is reused before
	// consulting the directory again (5 s if zero; negative re-resolves
	// on every relay plan — useful in tests).
	FlowRouteTTL time.Duration
	// ConnectTimeout bounds each control-plane TCP connect (nameserver,
	// flowserver, replica peers); rpc.DefaultConnectTimeout if zero.
	ConnectTimeout time.Duration
	// Metrics optionally publishes the server's write-path counters under
	// "dataserver.<ID>." names. Instrumentation is always on.
	Metrics *obs.Registry
	// Logger receives non-fatal warnings; nil discards them.
	Logger *log.Logger
}

// dsMetrics counts the write path: appends ordered as primary, re-sent
// pieces absorbed by the sequence dedupe, and how the relay order was
// chosen (Flowserver-scheduled vs static fallback).
type dsMetrics struct {
	appends        obs.Counter
	appendDedups   obs.Counter
	relayScheduled obs.Counter
	relayStatic    obs.Counter
}

func (m *dsMetrics) register(r *obs.Registry, id string) {
	prefix := "dataserver." + id + "."
	r.RegisterCounter(prefix+"appends", &m.appends)
	r.RegisterCounter(prefix+"append_dedups", &m.appendDedups)
	r.RegisterCounter(prefix+"relays_scheduled", &m.relayScheduled)
	r.RegisterCounter(prefix+"relays_static", &m.relayStatic)
}

// WriteStats is a snapshot of the server's write-path counters.
type WriteStats struct {
	Appends         int64
	AppendDedups    int64
	RelaysScheduled int64
	RelaysStatic    int64
}

// WriteStats returns the server's cumulative write-path counters.
func (s *Server) WriteStats() WriteStats {
	return WriteStats{
		Appends:         s.met.appends.Value(),
		AppendDedups:    s.met.appendDedups.Value(),
		RelaysScheduled: s.met.relayScheduled.Value(),
		RelaysStatic:    s.met.relayStatic.Value(),
	}
}

// Server is a running dataserver: a control RPC endpoint, a bulk data
// endpoint, and the chunk store.
type Server struct {
	cfg   Config
	store *storage
	ctl   *wire.Server
	pool  *rpc.Pool // all outbound control sessions (ns, fs, peers)
	fsc   *flowserver.RPCClient
	fr    *dsFlowRouter // directory-routed alternative to fsc

	mu        sync.Mutex
	dataLn    net.Listener
	ctlAddr   string
	dataAddr  string
	ns        *nameserver.Client
	nsPeer    *rpc.Peer
	dataConns map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
	beatStop  chan struct{}

	met dsMetrics
}

// New creates a dataserver over the given storage root.
func New(cfg Config) (*Server, error) {
	if cfg.ID == "" {
		return nil, errors.New("dataserver: config needs an ID")
	}
	if cfg.Pacer == nil {
		cfg.Pacer = NopPacer{}
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Second
	}
	st, err := openStorage(cfg.Root)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: st,
		ctl:   wire.NewServer(),
		pool: rpc.NewPool(rpc.Options{
			ConnectTimeout: cfg.ConnectTimeout,
			Metrics:        cfg.Metrics,
			MetricsPrefix:  "dataserver." + cfg.ID + ".rpc",
		}),
		dataConns: make(map[net.Conn]struct{}),
		beatStop:  make(chan struct{}),
	}
	if cfg.FlowserverAddr != "" {
		s.fsc = flowserver.NewRPCClient(s.pool.Peer(cfg.FlowserverAddr))
	} else if cfg.FlowDirectoryAddr != "" {
		s.fr = newDSFlowRouter(cfg.FlowDirectoryAddr, cfg.Pod, cfg.FlowRouteTTL, s.pool)
	}
	if cfg.Metrics != nil {
		s.met.register(cfg.Metrics, cfg.ID)
	}
	if err := s.registerHandlers(); err != nil {
		return nil, err
	}
	if err := s.registerReplicateHandler(); err != nil {
		return nil, err
	}
	return s, nil
}

// Start begins serving the control and data endpoints on the given
// listeners and registers with the nameserver at nsAddr (skipped when
// empty, for tests that drive the server directly).
func (s *Server) Start(ctlLn, dataLn net.Listener, nsAddr string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dataserver: closed")
	}
	s.dataLn = dataLn
	s.ctlAddr = ctlLn.Addr().String()
	s.dataAddr = dataLn.Addr().String()
	s.mu.Unlock()

	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		_ = s.ctl.Serve(ctlLn)
	}()
	go func() {
		defer s.wg.Done()
		s.serveData(dataLn)
	}()

	if nsAddr == "" {
		return nil
	}
	peer := s.pool.Peer(nsAddr)
	ns := nameserver.NewClient(peer)
	s.mu.Lock()
	s.ns = ns
	s.nsPeer = peer
	s.mu.Unlock()
	info := nameserver.ServerInfo{
		ID:          s.cfg.ID,
		ControlAddr: s.ctlAddr,
		DataAddr:    s.dataAddr,
		Host:        s.cfg.Host,
		Pod:         s.cfg.Pod,
		Rack:        s.cfg.Rack,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ns.Register(ctx, info); err != nil {
		return fmt.Errorf("dataserver: nameserver register: %w", err)
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.heartbeatLoop(peer, ns, info)
	}()
	return nil
}

// heartbeatLoop reports liveness until the server closes. The pooled
// peer redials on its own; what this loop owns is the connection-scoped
// server state on top of it: registration with the nameserver is bound
// to the peer's dial epoch, so after any reconnect (a restarted
// nameserver, a severed link) the server re-registers before heartbeating
// — a restarted nameserver relearns this server instead of declaring it
// dead forever.
func (s *Server) heartbeatLoop(peer *rpc.Peer, ns *nameserver.Client, info nameserver.ServerInfo) {
	registered := peer.Epoch()
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.beatStop:
			return
		case <-ticker.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.HeartbeatInterval)
		if e := peer.Epoch(); e != registered {
			if err := ns.Register(ctx, info); err != nil {
				s.logf("dataserver %s: re-register: %v", s.cfg.ID, err)
				cancel()
				continue
			}
			registered = peer.Epoch()
		}
		err := ns.Heartbeat(ctx, s.cfg.ID)
		cancel()
		if err != nil {
			// A heartbeat that rode a transparent reconnect may land on a
			// restarted nameserver that no longer knows this server; the
			// epoch check above re-registers on the next tick.
			s.logf("dataserver %s: heartbeat: %v", s.cfg.ID, err)
		}
	}
}

// ControlAddr returns the control endpoint address (after Start).
func (s *Server) ControlAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctlAddr
}

// DataAddr returns the bulk data endpoint address (after Start).
func (s *Server) DataAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataAddr
}

// Close stops serving and disconnects from peers and the nameserver.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	dataLn := s.dataLn
	conns := make([]net.Conn, 0, len(s.dataConns))
	for conn := range s.dataConns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()

	close(s.beatStop)
	err := s.ctl.Close()
	if dataLn != nil {
		dataLn.Close()
	}
	// Sever in-flight bulk streams: a killed server must interrupt its
	// readers (so their failover fires), not leave them mid-stream.
	for _, conn := range conns {
		conn.Close()
	}
	s.pool.Close()
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// peer returns the typed control stub for a replica peer, backed by the
// pool's shared session for that address.
func (s *Server) peer(addr string) *Client {
	return NewClient(s.pool.Peer(addr))
}

// --- control plane -------------------------------------------------------

// PrepareArgs creates a file's local state.
type PrepareArgs struct {
	Info nameserver.FileInfo `json:"info"`
	// Relay makes the (primary) receiver propagate the prepare to the
	// other replicas.
	Relay bool `json:"relay,omitempty"`
}

// AppendArgs appends data to a file through its primary. A nonzero Seq
// identifies the piece for deduplication: a re-sent piece (lost ack or
// client failover) with the same Seq is applied at the offset the first
// delivery chose instead of being appended twice.
type AppendArgs struct {
	FileID uuid.UUID `json:"fileId"`
	Name   string    `json:"name"`
	Data   []byte    `json:"data"`
	Seq    uint64    `json:"seq,omitempty"`
}

// AppendAtArgs applies a relayed append at a fixed offset. Seq carries
// the originating piece's sequence number so replicas inherit the dedupe
// state (a replica promoted to primary must recognize re-sent pieces it
// already holds).
type AppendAtArgs struct {
	FileID uuid.UUID `json:"fileId"`
	Offset int64     `json:"offset"`
	Data   []byte    `json:"data"`
	Seq    uint64    `json:"seq,omitempty"`
}

// AppendReply reports the file size after an append.
type AppendReply struct {
	SizeBytes int64 `json:"sizeBytes"`
}

// FileIDArgs addresses a file by id.
type FileIDArgs struct {
	FileID uuid.UUID `json:"fileId"`
}

// StatReply reports a file's local size.
type StatReply struct {
	SizeBytes int64 `json:"sizeBytes"`
}

func (s *Server) registerHandlers() error {
	handlers := map[string]wire.Handler{
		MethodPrepare: func(ctx context.Context, params json.RawMessage) (any, error) {
			var a PrepareArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return struct{}{}, s.handlePrepare(ctx, a)
		},
		MethodAppend: func(ctx context.Context, params json.RawMessage) (any, error) {
			var a AppendArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return s.handleAppend(ctx, a)
		},
		MethodAppendAt: func(_ context.Context, params json.RawMessage) (any, error) {
			var a AppendAtArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			fs, err := s.store.get(a.FileID)
			if err != nil {
				return nil, err
			}
			fs.appendMu.Lock()
			size, err := s.store.appendAtLocked(fs, a.FileID, a.Offset, a.Data)
			fs.appendMu.Unlock()
			if err != nil {
				return nil, err
			}
			fs.recordSeq(a.Seq, a.Offset)
			return AppendReply{SizeBytes: size}, nil
		},
		MethodDelete: func(_ context.Context, params json.RawMessage) (any, error) {
			var a FileIDArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			return struct{}{}, s.store.delete(a.FileID)
		},
		MethodStat: func(_ context.Context, params json.RawMessage) (any, error) {
			var a FileIDArgs
			if err := json.Unmarshal(params, &a); err != nil {
				return nil, err
			}
			fs, err := s.store.get(a.FileID)
			if err != nil {
				return nil, err
			}
			return StatReply{SizeBytes: fs.localSize()}, nil
		},
		MethodListFiles: func(_ context.Context, params json.RawMessage) (any, error) {
			return s.store.list(), nil
		},
		MethodScrub: func(_ context.Context, params json.RawMessage) (any, error) {
			faults, err := s.store.scrub()
			if err != nil {
				return nil, err
			}
			if faults == nil {
				faults = []ChunkFault{}
			}
			return faults, nil
		},
	}
	for name, h := range handlers {
		if err := s.ctl.Register(name, h); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) handlePrepare(ctx context.Context, a PrepareArgs) error {
	if err := s.store.prepare(a.Info); err != nil {
		return err
	}
	if !a.Relay {
		return nil
	}
	if a.Info.Primary().ServerID != s.cfg.ID {
		return fmt.Errorf("%w: %s", ErrNotPrimary, s.cfg.ID)
	}
	for _, rep := range a.Info.Replicas[1:] {
		if err := s.peer(rep.ControlAddr).Prepare(ctx, PrepareArgs{Info: a.Info}); err != nil {
			return fmt.Errorf("relay prepare to %s: %w", rep.ServerID, err)
		}
	}
	return nil
}

// handleAppend orders an append as the file's primary: apply locally,
// relay to the other replicas, report the new size to the nameserver.
func (s *Server) handleAppend(ctx context.Context, a AppendArgs) (AppendReply, error) {
	if len(a.Data) > MaxAppend {
		return AppendReply{}, fmt.Errorf("dataserver: append of %d bytes exceeds %d", len(a.Data), MaxAppend)
	}
	fs, err := s.store.get(a.FileID)
	if err != nil {
		return AppendReply{}, err
	}
	info := fs.getInfo()
	if info.Primary().ServerID != s.cfg.ID {
		return AppendReply{}, fmt.Errorf("%w: primary is %s", ErrNotPrimary, info.Primary().ServerID)
	}

	// Hold the append order for the whole relay so concurrent appends
	// see consistent offsets on every replica.
	fs.appendMu.Lock()
	defer fs.appendMu.Unlock()
	s.met.appends.Inc()

	offset := fs.localSize()
	if prev, ok := fs.lookupSeq(a.Seq); ok {
		// Re-sent piece: land it at the offset the first delivery chose.
		// The local apply below no-ops via the duplicate check and the
		// relay heals any replica that missed the original delivery.
		offset = prev
		s.met.appendDedups.Inc()
	} else {
		// Record before applying or relaying: if the relay fails after
		// the local apply, the retry must reuse this offset, not append
		// the piece again after the locally applied bytes.
		fs.recordSeq(a.Seq, offset)
	}
	size, err := s.store.appendAtLocked(fs, a.FileID, offset, a.Data)
	if err != nil {
		return AppendReply{}, err
	}
	order, flows, flowStub := s.planRelay(ctx, info, float64(len(a.Data))*8)
	var relayErr error
	for _, rep := range order {
		if _, err := s.peer(rep.ControlAddr).AppendAt(ctx,
			AppendAtArgs{FileID: a.FileID, Offset: offset, Data: a.Data, Seq: a.Seq}); err != nil {
			relayErr = fmt.Errorf("relay append to %s: %w", rep.ServerID, err)
			break
		}
	}
	s.finishFlows(flowStub, flows)
	if relayErr != nil {
		return AppendReply{}, relayErr
	}

	s.mu.Lock()
	ns := s.ns
	s.mu.Unlock()
	if ns != nil && a.Name != "" {
		if err := ns.ReportSize(ctx, a.Name, size); err != nil {
			// The size report is advisory; readers learn the size from
			// the dataserver on every read anyway.
			s.logf("dataserver %s: report size of %s: %v", s.cfg.ID, a.Name, err)
		}
	}
	return AppendReply{SizeBytes: size}, nil
}

// flowserverRPCTimeout bounds each control exchange with the Flowserver
// on the append relay path; a slow controller must degrade the write to
// static order, not stall it.
const flowserverRPCTimeout = 2 * time.Second

// planRelay orders the replication fan-out for one append. With a
// Flowserver configured the order comes from SelectWritePipeline —
// cheapest hop first, every hop's admission visible to the next — and
// the returned ids keep the transfers registered in the network model
// until finishFlows releases them. Any failure falls back to the static
// replica order: the Flowserver is an optimizer, never a dependency
// (mirroring the read path's degraded mode).
func (s *Server) planRelay(ctx context.Context, info nameserver.FileInfo, bits float64) ([]nameserver.ReplicaLoc, []flowserver.FlowID, *flowserver.RPCClient) {
	rest := info.Replicas[1:]
	if len(rest) == 0 {
		return rest, nil, nil
	}
	sctx, cancel := context.WithTimeout(ctx, flowserverRPCTimeout)
	defer cancel()
	fsc := s.flowStub(sctx)
	if fsc == nil {
		s.met.relayStatic.Inc()
		return rest, nil, nil
	}
	byHost := make(map[string]nameserver.ReplicaLoc, len(rest))
	hosts := make([]string, len(rest))
	for i, rep := range rest {
		hosts[i] = rep.Host
		byHost[rep.Host] = rep
	}
	args := flowserver.SelectWriteArgs{
		SourceHost:  s.cfg.Host,
		TargetHosts: hosts,
		Bits:        bits,
	}
	as, err := fsc.SelectWrite(sctx, args)
	if err != nil && s.fr != nil && sctx.Err() == nil {
		// The cached shard may have been killed: drop the route,
		// re-resolve (picking up a freshly promoted shard under a newer
		// epoch), and retry once before degrading this append.
		s.fr.invalidate()
		if stub2, rerr := s.fr.stub(sctx); rerr == nil && stub2 != nil {
			fsc = stub2
			as, err = fsc.SelectWrite(sctx, args)
		}
	}
	if err != nil {
		s.met.relayStatic.Inc()
		return rest, nil, nil
	}
	order := make([]nameserver.ReplicaLoc, 0, len(as))
	flows := make([]flowserver.FlowID, 0, len(as))
	for _, a := range as {
		if !a.Local {
			flows = append(flows, a.FlowID)
		}
		rep, ok := byHost[a.ReplicaHost]
		if !ok {
			break
		}
		order = append(order, rep)
	}
	if len(order) != len(rest) {
		// The schedule does not cover the replica set (e.g. two replicas
		// sharing a host); release what it admitted and go static.
		s.finishFlows(fsc, flows)
		s.met.relayStatic.Inc()
		return rest, nil, nil
	}
	s.met.relayScheduled.Inc()
	return order, flows, fsc
}

// finishFlows releases relay flow-table entries on a fresh bounded
// context (the append's own context may already be expired), against
// the stub that issued them — under directory routing the releases must
// reach the shard coordinating the flows, not whichever shard a later
// resolution would name.
func (s *Server) finishFlows(fsc *flowserver.RPCClient, flows []flowserver.FlowID) {
	if len(flows) == 0 || fsc == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), flowserverRPCTimeout)
	defer cancel()
	for _, id := range flows {
		if err := fsc.Finished(ctx, id); err != nil {
			return
		}
	}
}

// --- data plane ----------------------------------------------------------

// The bulk read protocol: the client sends a fixed 40-byte request
//
//	flowID(8) fileID(16) offset(8) length(8)
//
// and the server replies with status(1); on success the reply continues
// with fileSize(8) followed by exactly length bytes of data, written
// through the pacer. On failure a message string follows (length-prefixed
// with 2 bytes).
const (
	dataStatusOK  = byte(0)
	dataStatusErr = byte(1)
)

// ReadRequest is the bulk read header (exported for the client package).
type ReadRequest struct {
	FlowID uint64
	FileID uuid.UUID
	Offset int64
	Length int64
}

// EncodeReadRequest serializes the request header.
func EncodeReadRequest(r ReadRequest) []byte {
	buf := make([]byte, 40)
	binary.BigEndian.PutUint64(buf[0:8], r.FlowID)
	copy(buf[8:24], r.FileID[:])
	binary.BigEndian.PutUint64(buf[24:32], uint64(r.Offset))
	binary.BigEndian.PutUint64(buf[32:40], uint64(r.Length))
	return buf
}

// DecodeReadRequest parses the request header.
func DecodeReadRequest(buf []byte) (ReadRequest, error) {
	if len(buf) != 40 {
		return ReadRequest{}, errors.New("dataserver: bad read request")
	}
	var r ReadRequest
	r.FlowID = binary.BigEndian.Uint64(buf[0:8])
	copy(r.FileID[:], buf[8:24])
	r.Offset = int64(binary.BigEndian.Uint64(buf[24:32]))
	r.Length = int64(binary.BigEndian.Uint64(buf[32:40]))
	return r, nil
}

func (s *Server) serveData(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.dataConns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.dataConns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveOneRead(conn)
		}()
	}
}

func (s *Server) serveOneRead(conn net.Conn) {
	hdr := make([]byte, 40)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return
	}
	req, err := DecodeReadRequest(hdr)
	if err != nil {
		return
	}

	fail := func(err error) {
		msg := err.Error()
		if len(msg) > 65535 {
			msg = msg[:65535]
		}
		buf := make([]byte, 3+len(msg))
		buf[0] = dataStatusErr
		binary.BigEndian.PutUint16(buf[1:3], uint16(len(msg)))
		copy(buf[3:], msg)
		_, _ = conn.Write(buf)
	}

	// Validate before committing to a success header.
	fs, err := s.store.get(req.FileID)
	if err != nil {
		fail(err)
		return
	}
	size := fs.localSize()
	if req.Offset < 0 || req.Length < 0 || req.Offset+req.Length > size {
		fail(fmt.Errorf("%w: [%d, %d) of %d", ErrOutOfRange, req.Offset, req.Offset+req.Length, size))
		return
	}

	var ok [9]byte
	ok[0] = dataStatusOK
	binary.BigEndian.PutUint64(ok[1:9], uint64(size))
	if _, err := conn.Write(ok[:]); err != nil {
		return
	}
	paced := s.cfg.Pacer.Writer(req.FlowID, conn)
	if _, err := s.store.readAt(req.FileID, req.Offset, req.Length, paced); err != nil {
		s.logf("dataserver %s: read %s: %v", s.cfg.ID, req.FileID, err)
	}
}

// ReadResponseHeader parses the 9-byte success header or the error reply
// from a bulk read stream (exported for the client package).
func ReadResponseHeader(r io.Reader) (fileSize int64, err error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return 0, err
	}
	switch status[0] {
	case dataStatusOK:
		var sz [8]byte
		if _, err := io.ReadFull(r, sz[:]); err != nil {
			return 0, err
		}
		return int64(binary.BigEndian.Uint64(sz[:])), nil
	case dataStatusErr:
		var ln [2]byte
		if _, err := io.ReadFull(r, ln[:]); err != nil {
			return 0, err
		}
		msg := make([]byte, binary.BigEndian.Uint16(ln[:]))
		if _, err := io.ReadFull(r, msg); err != nil {
			return 0, err
		}
		return 0, remoteReadError(string(msg))
	default:
		return 0, fmt.Errorf("dataserver: bad read status %d", status[0])
	}
}

// remoteReadError maps a remote failure string back to this package's
// sentinels where possible.
func remoteReadError(msg string) error {
	switch {
	case strings.Contains(msg, ErrUnknownFile.Error()):
		return fmt.Errorf("%w (remote: %s)", ErrUnknownFile, msg)
	case strings.Contains(msg, ErrOutOfRange.Error()):
		return fmt.Errorf("%w (remote: %s)", ErrOutOfRange, msg)
	default:
		return fmt.Errorf("dataserver: remote read: %s", msg)
	}
}
