package dataserver

import (
	"context"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/flowctl"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
)

// dsFlowRouter resolves which flowctl shard owns this dataserver's pod
// and caches the route under its directory epoch, mirroring the client's
// flowRouter. The invariant is the same epoch-checked rebinding: a peer
// bound under epoch E serves no further SelectWrite calls once a Lookup
// reports epoch > E, and a stale lower-epoch answer never rebinds the
// route backwards to a deposed shard.
type dsFlowRouter struct {
	dc   *flowctl.DirectoryClient
	pool *rpc.Pool
	pod  int
	ttl  time.Duration

	mu    sync.Mutex
	cur   *flowserver.RPCClient
	addr  string
	epoch int64
	fresh time.Time
	have  bool
}

func newDSFlowRouter(dirAddr string, pod int, ttl time.Duration, pool *rpc.Pool) *dsFlowRouter {
	if ttl == 0 {
		ttl = 5 * time.Second
	}
	return &dsFlowRouter{
		dc:   flowctl.NewDirectoryClient(pool.Peer(dirAddr)),
		pool: pool,
		pod:  pod,
		ttl:  ttl,
	}
}

// stub returns the Flowserver stub for the shard currently owning this
// server's pod. A Lookup failure degrades to the cached route when one
// exists; with none the caller relays in static order.
func (fr *dsFlowRouter) stub(ctx context.Context) (*flowserver.RPCClient, error) {
	now := time.Now()
	fr.mu.Lock()
	if fr.have && now.Before(fr.fresh) {
		cur := fr.cur
		fr.mu.Unlock()
		return cur, nil
	}
	fr.mu.Unlock()

	rep, err := fr.dc.Lookup(ctx, fr.pod)

	fr.mu.Lock()
	defer fr.mu.Unlock()
	if err != nil {
		if fr.have {
			return fr.cur, nil
		}
		return nil, err
	}
	switch {
	case !fr.have, rep.Epoch > fr.epoch:
		fr.bind(rep.Addr, rep.Epoch)
	case rep.Epoch == fr.epoch && rep.Addr != fr.addr:
		// Same epoch, new address: the shard re-registered after a restart.
		fr.bind(rep.Addr, rep.Epoch)
	default:
		// rep.Epoch < fr.epoch: stale directory replica; keep the newer
		// binding — the epoch is the ownership order.
	}
	fr.have = true
	fr.fresh = now.Add(fr.ttl)
	return fr.cur, nil
}

func (fr *dsFlowRouter) bind(addr string, epoch int64) {
	fr.cur = flowserver.NewRPCClient(fr.pool.Peer(addr))
	fr.addr = addr
	fr.epoch = epoch
}

// invalidate drops the cached route so the next stub() re-resolves —
// how the relay path discovers a killed shard before the TTL lapses.
func (fr *dsFlowRouter) invalidate() {
	fr.mu.Lock()
	fr.have = false
	fr.mu.Unlock()
}

// flowStub picks the Flowserver stub for the next relay plan: the
// statically configured one, the directory-routed one, or nil when this
// server relays in static order without flow registration.
func (s *Server) flowStub(ctx context.Context) *flowserver.RPCClient {
	if s.fsc != nil {
		return s.fsc
	}
	if s.fr == nil {
		return nil
	}
	stub, err := s.fr.stub(ctx)
	if err != nil {
		return nil
	}
	return stub
}
