package dataserver

import (
	"math/rand"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/kvstore"
)

func newNSStore(t *testing.T) *kvstore.Store {
	t.Helper()
	store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

func testRand() *rand.Rand { return rand.New(rand.NewSource(1)) }
