package dataserver

import (
	"context"
	"fmt"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// RPCScanner implements nameserver.Scanner over the dataserver control
// protocol: it is what lets a nameserver that restarted unexpectedly
// rebuild its mappings "by scanning the file metadata stored at the
// dataservers" instead of trusting its possibly stale database (§3.3.1).
type RPCScanner struct {
	// Dial opens control connections; wire.Dial when nil.
	Dial func(addr string) (*wire.Client, error)
}

var _ nameserver.Scanner = (*RPCScanner)(nil)

// ScanFiles lists the files stored on one dataserver.
func (s *RPCScanner) ScanFiles(ctx context.Context, si nameserver.ServerInfo) ([]nameserver.FileRecord, error) {
	dial := s.Dial
	if dial == nil {
		dial = wire.Dial
	}
	c, err := dial(si.ControlAddr)
	if err != nil {
		return nil, fmt.Errorf("dataserver: scan %s: %w", si.ID, err)
	}
	defer c.Close()
	var recs []nameserver.FileRecord
	if err := c.Call(ctx, MethodListFiles, struct{}{}, &recs); err != nil {
		return nil, fmt.Errorf("dataserver: scan %s: %w", si.ID, err)
	}
	return recs, nil
}
