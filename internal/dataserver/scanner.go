package dataserver

import (
	"context"
	"fmt"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
)

// RPCScanner implements nameserver.Scanner over the dataserver control
// protocol: it is what lets a nameserver that restarted unexpectedly
// rebuild its mappings "by scanning the file metadata stored at the
// dataservers" instead of trusting its possibly stale database (§3.3.1).
type RPCScanner struct {
	// Pool supplies the control sessions; a private pool with default
	// options when nil (each scan then dials and closes its own peer).
	Pool *rpc.Pool
}

var _ nameserver.Scanner = (*RPCScanner)(nil)

// ScanFiles lists the files stored on one dataserver.
func (s *RPCScanner) ScanFiles(ctx context.Context, si nameserver.ServerInfo) ([]nameserver.FileRecord, error) {
	var caller rpc.Caller
	if s.Pool != nil {
		caller = s.Pool.Peer(si.ControlAddr)
	} else {
		peer := rpc.NewPeer(si.ControlAddr, rpc.Options{})
		defer peer.Close()
		caller = peer
	}
	recs, err := NewClient(caller).ListFiles(ctx)
	if err != nil {
		return nil, fmt.Errorf("dataserver: scan %s: %w", si.ID, err)
	}
	return recs, nil
}
