package dataserver

import (
	"context"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/uuid"
)

// Client is the typed dataserver control stub over an rpc session
// (usually an *rpc.Peer): every consumer of a dataserver's control plane
// — the filesystem client, repair, peer relays, the nameserver's startup
// scanner, the CLI — calls through these methods instead of
// stringly-typed Call("ds.X", ...) sites, so the compiler checks
// argument and reply shapes. Connection lifecycle belongs to the session
// layer, not this stub.
type Client struct {
	c rpc.Caller
}

// NewClient wraps a control-plane session.
func NewClient(c rpc.Caller) *Client { return &Client{c: c} }

// Prepare creates the local file state for a file (relaying to the other
// replicas when args.Relay is set and this server is the primary).
func (c *Client) Prepare(ctx context.Context, args PrepareArgs) error {
	var out struct{}
	return c.c.Call(ctx, MethodPrepare, args, &out)
}

// Append appends a piece through the file's primary.
func (c *Client) Append(ctx context.Context, args AppendArgs) (AppendReply, error) {
	var out AppendReply
	err := c.c.Call(ctx, MethodAppend, args, &out)
	return out, err
}

// AppendAt applies a relayed append at a fixed offset.
func (c *Client) AppendAt(ctx context.Context, args AppendAtArgs) (AppendReply, error) {
	var out AppendReply
	err := c.c.Call(ctx, MethodAppendAt, args, &out)
	return out, err
}

// Delete removes a file's local state.
func (c *Client) Delete(ctx context.Context, fileID uuid.UUID) error {
	var out struct{}
	return c.c.Call(ctx, MethodDelete, FileIDArgs{FileID: fileID}, &out)
}

// Stat reports a file's local size.
func (c *Client) Stat(ctx context.Context, fileID uuid.UUID) (StatReply, error) {
	var out StatReply
	err := c.c.Call(ctx, MethodStat, FileIDArgs{FileID: fileID}, &out)
	return out, err
}

// ListFiles returns every locally stored file with its local size (the
// nameserver's startup-rebuild scan).
func (c *Client) ListFiles(ctx context.Context) ([]nameserver.FileRecord, error) {
	var out []nameserver.FileRecord
	err := c.c.Call(ctx, MethodListFiles, struct{}{}, &out)
	return out, err
}

// Scrub verifies every local chunk against its checksum sidecar.
func (c *Client) Scrub(ctx context.Context) ([]ChunkFault, error) {
	var out []ChunkFault
	err := c.c.Call(ctx, MethodScrub, struct{}{}, &out)
	return out, err
}

// Replicate instructs the server to copy a file from a live peer.
func (c *Client) Replicate(ctx context.Context, args ReplicateArgs) (ReplicateReply, error) {
	var out ReplicateReply
	err := c.c.Call(ctx, MethodReplicate, args, &out)
	return out, err
}

// UpdateMeta rewrites a stored file's metadata.
func (c *Client) UpdateMeta(ctx context.Context, args UpdateMetaArgs) error {
	var out struct{}
	return c.c.Call(ctx, MethodUpdateMeta, args, &out)
}
