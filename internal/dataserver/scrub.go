package dataserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"github.com/mayflower-dfs/mayflower/internal/uuid"
)

// Chunk checksums: every chunk file has a sidecar "<n>.crc" holding the
// CRC-32 (IEEE) of its contents, maintained incrementally on append.
// Scrub recomputes every chunk's checksum and reports mismatches — the
// background integrity verification a production chunk server performs
// (HDFS block scanner equivalent), guarding the immutable chunks that
// Mayflower's append-only design otherwise never re-validates.

func (st *storage) crcPath(id uuid.UUID, chunk int) string {
	return st.chunkPath(id, chunk) + ".crc"
}

// loadChunkCRC reads a chunk's sidecar checksum; ok is false when the
// sidecar does not exist (a pre-checksum chunk or torn create).
func (st *storage) loadChunkCRC(id uuid.UUID, chunk int) (uint32, bool, error) {
	raw, err := os.ReadFile(st.crcPath(id, chunk))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if len(raw) != 4 {
		return 0, false, fmt.Errorf("dataserver: malformed crc sidecar for chunk %d", chunk)
	}
	return binary.BigEndian.Uint32(raw), true, nil
}

func (st *storage) storeChunkCRC(id uuid.UUID, chunk int, crc uint32) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], crc)
	return os.WriteFile(st.crcPath(id, chunk), buf[:], 0o644)
}

// updateChunkCRC folds freshly appended bytes into a chunk's running
// checksum. CRC-32 extends over appended data directly, so no re-read of
// the chunk is needed.
func (st *storage) updateChunkCRC(id uuid.UUID, chunk int, appended []byte) error {
	prev, ok, err := st.loadChunkCRC(id, chunk)
	if err != nil {
		return err
	}
	if !ok {
		prev = 0
	}
	next := crc32.Update(prev, crc32.IEEETable, appended)
	return st.storeChunkCRC(id, chunk, next)
}

// ChunkFault describes one integrity problem found by Scrub.
type ChunkFault struct {
	FileID uuid.UUID `json:"fileId"`
	Chunk  int       `json:"chunk"`
	// Reason is "checksum-mismatch", "missing-sidecar" or
	// "unreadable".
	Reason string `json:"reason"`
}

// scrub verifies every chunk of every stored file against its sidecar
// checksum and returns the faults found, sorted by file then chunk.
func (st *storage) scrub() ([]ChunkFault, error) {
	st.mu.Lock()
	ids := make([]uuid.UUID, 0, len(st.files))
	for id := range st.files {
		ids = append(ids, id)
	}
	st.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })

	var faults []ChunkFault
	for _, id := range ids {
		for chunk := 1; ; chunk++ {
			f, err := os.Open(st.chunkPath(id, chunk))
			if errors.Is(err, os.ErrNotExist) {
				break
			}
			if err != nil {
				faults = append(faults, ChunkFault{FileID: id, Chunk: chunk, Reason: "unreadable"})
				continue
			}
			sum := crc32.NewIEEE()
			_, copyErr := io.Copy(sum, f)
			f.Close()
			if copyErr != nil {
				faults = append(faults, ChunkFault{FileID: id, Chunk: chunk, Reason: "unreadable"})
				continue
			}
			want, ok, err := st.loadChunkCRC(id, chunk)
			if err != nil || !ok {
				faults = append(faults, ChunkFault{FileID: id, Chunk: chunk, Reason: "missing-sidecar"})
				continue
			}
			if sum.Sum32() != want {
				faults = append(faults, ChunkFault{FileID: id, Chunk: chunk, Reason: "checksum-mismatch"})
			}
		}
	}
	return faults, nil
}
