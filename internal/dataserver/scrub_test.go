package dataserver

import (
	"bytes"
	"context"
	"os"
	"testing"
)

func TestScrubCleanStore(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 16)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	// Multiple appends across chunk boundaries keep sidecars current.
	data := bytes.Repeat([]byte("integrity"), 10) // 90 bytes over 6 chunks
	if _, err := st.appendAt(info.ID, 0, data[:40]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 40, data[40:]); err != nil {
		t.Fatal(err)
	}
	faults, err := st.scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 0 {
		t.Fatalf("clean store reported faults: %+v", faults)
	}
}

func TestScrubDetectsBitRot(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 16)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 0, bytes.Repeat([]byte("x"), 50)); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the middle of chunk 2 behind the server's back.
	path := st.chunkPath(info.ID, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[5] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	faults, err := st.scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 {
		t.Fatalf("faults = %+v, want exactly one", faults)
	}
	if faults[0].FileID != info.ID || faults[0].Chunk != 2 || faults[0].Reason != "checksum-mismatch" {
		t.Errorf("fault = %+v", faults[0])
	}
}

func TestScrubDetectsMissingSidecar(t *testing.T) {
	st := newStorage(t)
	info := testInfo(t, 100)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(st.crcPath(info.ID, 1)); err != nil {
		t.Fatal(err)
	}
	faults, err := st.scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 || faults[0].Reason != "missing-sidecar" {
		t.Fatalf("faults = %+v", faults)
	}
}

func TestScrubSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := openStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	info := testInfo(t, 32)
	if err := st.prepare(info); err != nil {
		t.Fatal(err)
	}
	if _, err := st.appendAt(info.ID, 0, bytes.Repeat([]byte("ab"), 40)); err != nil {
		t.Fatal(err)
	}
	// Checksums remain valid across a restart, including for continued
	// appends into a partially filled chunk.
	st2, err := openStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.appendAt(info.ID, 80, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	faults, err := st2.scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 0 {
		t.Fatalf("faults after reopen = %+v", faults)
	}
}

func TestScrubRPC(t *testing.T) {
	c := startCluster(t, 1, 16)
	if err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: bytes.Repeat([]byte("z"), 64)}, &AppendReply{}); err != nil {
		t.Fatal(err)
	}
	var faults []ChunkFault
	if err := c.ctl[0].Call(context.Background(), MethodScrub, struct{}{}, &faults); err != nil {
		t.Fatal(err)
	}
	if len(faults) != 0 {
		t.Fatalf("faults = %+v", faults)
	}

	// Corrupt a chunk on disk; the RPC reports it.
	path := c.servers[0].store.chunkPath(c.info.ID, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x55
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.ctl[0].Call(context.Background(), MethodScrub, struct{}{}, &faults); err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 || faults[0].Chunk != 1 {
		t.Fatalf("faults = %+v", faults)
	}
}
