package dataserver

import (
	"context"
	"fmt"
	"net"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/uuid"
)

// BenchmarkAppendReplicated measures the primary's full append path over
// loopback — local apply, chunk CRC, and the two-replica relay — which is
// the hot path the write-scheduling work rides on.
func BenchmarkAppendReplicated(b *testing.B) {
	var replicas []nameserver.ReplicaLoc
	var servers []*Server
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("ds-%d", i)
		s, err := New(Config{ID: id, Root: b.TempDir(), Host: "host-" + id})
		if err != nil {
			b.Fatal(err)
		}
		ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		dataLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Start(ctlLn, dataLn, ""); err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		servers = append(servers, s)
		replicas = append(replicas, nameserver.ReplicaLoc{
			ServerID:    id,
			ControlAddr: s.ControlAddr(),
			DataAddr:    s.DataAddr(),
			Host:        s.cfg.Host,
		})
	}
	info := nameserver.FileInfo{
		ID:        uuid.MustNew(),
		Name:      "bench-file",
		ChunkSize: 1 << 20,
		Replicas:  replicas,
	}
	cc := rpc.NewPeer(servers[0].ControlAddr(), rpc.Options{})
	defer cc.Close()
	var out struct{}
	if err := cc.Call(context.Background(), MethodPrepare, PrepareArgs{Info: info, Relay: true}, &out); err != nil {
		b.Fatal(err)
	}

	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var reply AppendReply
		if err := cc.Call(context.Background(), MethodAppend,
			AppendArgs{FileID: info.ID, Data: payload, Seq: uint64(i + 1)}, &reply); err != nil {
			b.Fatal(err)
		}
	}
}
