package dataserver

import (
	"bytes"
	"context"
	"net"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/uuid"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

func statSize(t *testing.T, cc *rpc.Peer, c *cluster) int64 {
	t.Helper()
	var st StatReply
	if err := cc.Call(context.Background(), MethodStat, FileIDArgs{FileID: c.info.ID}, &st); err != nil {
		t.Fatal(err)
	}
	return st.SizeBytes
}

// TestAppendSeqDedupe re-sends an acknowledged piece under the same
// sequence number and checks no replica appends it twice.
func TestAppendSeqDedupe(t *testing.T) {
	c := startCluster(t, 3, 64)
	payload := []byte("hello replicated world")
	args := AppendArgs{FileID: c.info.ID, Data: payload, Seq: 7}

	var reply AppendReply
	if err := c.ctl[0].Call(context.Background(), MethodAppend, args, &reply); err != nil {
		t.Fatal(err)
	}
	// A lost ack makes the client re-send the identical piece.
	if err := c.ctl[0].Call(context.Background(), MethodAppend, args, &reply); err != nil {
		t.Fatal(err)
	}
	want := int64(len(payload))
	if reply.SizeBytes != want {
		t.Errorf("size after re-send = %d, want %d", reply.SizeBytes, want)
	}
	for i, cc := range c.ctl {
		if got := statSize(t, cc, c); got != want {
			t.Errorf("replica %d size = %d, want %d", i, got, want)
		}
	}
	if st := c.servers[0].WriteStats(); st.AppendDedups != 1 {
		t.Errorf("AppendDedups = %d, want 1", st.AppendDedups)
	}
}

// TestAppendSeqRetryHealsReplicas simulates the dangerous half-applied
// state — the primary applied a piece locally and recorded its sequence,
// but the relay never ran — and checks the client's retry lands at the
// recorded offset (no duplicate on the primary) while the relay brings
// the replicas up to date.
func TestAppendSeqRetryHealsReplicas(t *testing.T) {
	c := startCluster(t, 3, 64)
	payload := []byte("piece that lost its relay")

	fs0, err := c.servers[0].store.get(c.info.ID)
	if err != nil {
		t.Fatal(err)
	}
	offset := fs0.localSize()
	fs0.recordSeq(42, offset)
	if _, err := c.servers[0].store.appendAt(c.info.ID, offset, payload); err != nil {
		t.Fatal(err)
	}

	var reply AppendReply
	if err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: payload, Seq: 42}, &reply); err != nil {
		t.Fatal(err)
	}
	want := int64(len(payload))
	if reply.SizeBytes != want {
		t.Errorf("size after retry = %d, want %d (primary must not duplicate)", reply.SizeBytes, want)
	}
	for i, cc := range c.ctl {
		if got := statSize(t, cc, c); got != want {
			t.Errorf("replica %d size = %d, want %d", i, got, want)
		}
	}
}

// TestPromotedPrimaryInheritsSeqDedupe kills the primary after a fully
// relayed append and checks a replica promoted in its place recognizes
// the piece's sequence number: the client's re-send must not duplicate.
func TestPromotedPrimaryInheritsSeqDedupe(t *testing.T) {
	c := startCluster(t, 3, 64)
	payload := []byte("acked everywhere, ack lost")
	args := AppendArgs{FileID: c.info.ID, Data: payload, Seq: 5}

	var reply AppendReply
	if err := c.ctl[0].Call(context.Background(), MethodAppend, args, &reply); err != nil {
		t.Fatal(err)
	}
	if err := c.servers[0].Close(); err != nil {
		t.Fatal(err)
	}

	// Promote replica 1 the way repair does: rewrite the metadata with the
	// survivors and the new primary first.
	info := c.info
	info.Replicas = []nameserver.ReplicaLoc{c.info.Replicas[1], c.info.Replicas[2]}
	if err := c.servers[1].store.updateInfo(info); err != nil {
		t.Fatal(err)
	}
	if err := c.servers[2].store.updateInfo(info); err != nil {
		t.Fatal(err)
	}

	if err := c.ctl[1].Call(context.Background(), MethodAppend, args, &reply); err != nil {
		t.Fatal(err)
	}
	want := int64(len(payload))
	if reply.SizeBytes != want {
		t.Errorf("size after failover re-send = %d, want %d", reply.SizeBytes, want)
	}
	if st := c.servers[1].WriteStats(); st.AppendDedups != 1 {
		t.Errorf("promoted primary AppendDedups = %d, want 1", st.AppendDedups)
	}
}

// startFlowserver serves a Flowserver over RPC on an ephemeral port.
func startFlowserver(t *testing.T, topo *topology.Topology) (*flowserver.Server, string) {
	t.Helper()
	fs := flowserver.New(topo, flowserver.Options{})
	srv := wire.NewServer()
	if err := flowserver.RegisterRPC(srv, fs, topo, flowserver.Hooks{}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return fs, ln.Addr().String()
}

// startScheduledCluster is startCluster with the dataservers placed on
// real topology hosts and pointed at a live Flowserver.
func startScheduledCluster(t *testing.T, fsAddr string, hosts []string) *cluster {
	t.Helper()
	c := &cluster{}
	var replicas []nameserver.ReplicaLoc
	for i, host := range hosts {
		id := []string{"ds-0", "ds-1", "ds-2"}[i]
		s, err := New(Config{ID: id, Root: t.TempDir(), Host: host, FlowserverAddr: fsAddr})
		if err != nil {
			t.Fatal(err)
		}
		ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dataLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(ctlLn, dataLn, ""); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		c.servers = append(c.servers, s)
		replicas = append(replicas, nameserver.ReplicaLoc{
			ServerID:    id,
			ControlAddr: s.ControlAddr(),
			DataAddr:    s.DataAddr(),
			Host:        host,
		})
		cc := rpc.NewPeer(s.ControlAddr(), rpc.Options{})
		t.Cleanup(func() { cc.Close() })
		c.ctl = append(c.ctl, cc)
	}
	c.info = nameserver.FileInfo{
		ID:        uuid.MustNew(),
		Name:      "scheduled-file",
		ChunkSize: 64,
		Replicas:  replicas,
	}
	var out struct{}
	if err := c.ctl[0].Call(context.Background(), MethodPrepare,
		PrepareArgs{Info: c.info, Relay: true}, &out); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAppendRelayUsesFlowserver checks the primary registers its relay
// hops with the Flowserver, orders them from its schedule, and releases
// every flow once the append is acknowledged.
func TestAppendRelayUsesFlowserver(t *testing.T) {
	topo, err := topology.New(topology.Config{
		Pods: 1, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 1,
		EdgeLinkBps: 1e9, EdgeAggLinkBps: 1e9, AggCoreLinkBps: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, fsAddr := startFlowserver(t, topo)
	hosts := []string{
		topo.Node(topo.HostAt(0, 0, 0)).Name,
		topo.Node(topo.HostAt(0, 0, 1)).Name,
		topo.Node(topo.HostAt(0, 1, 0)).Name,
	}
	c := startScheduledCluster(t, fsAddr, hosts)

	payload := bytes.Repeat([]byte("w"), 100)
	var reply AppendReply
	if err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: payload, Seq: 1}, &reply); err != nil {
		t.Fatal(err)
	}
	for i, cc := range c.ctl {
		if got := statSize(t, cc, c); got != int64(len(payload)) {
			t.Errorf("replica %d size = %d, want %d", i, got, len(payload))
		}
	}
	if st := c.servers[0].WriteStats(); st.RelaysScheduled != 1 || st.RelaysStatic != 0 {
		t.Errorf("WriteStats = %+v, want one scheduled relay", st)
	}
	if got := fs.Counters().WriteSelections; got != 1 {
		t.Errorf("flowserver WriteSelections = %d, want 1", got)
	}
	if n := fs.NumFlows(); n != 0 {
		t.Errorf("flowserver still tracks %d flows after the append", n)
	}
}

// TestAppendRelayFallsBackStatic points the primary at a dead Flowserver
// and checks the append still succeeds in static order.
func TestAppendRelayFallsBackStatic(t *testing.T) {
	// Grab a port that refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	c := startScheduledCluster(t, deadAddr, []string{"h0", "h1", "h2"})
	payload := []byte("degraded but durable")
	var reply AppendReply
	if err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: payload, Seq: 1}, &reply); err != nil {
		t.Fatal(err)
	}
	for i, cc := range c.ctl {
		if got := statSize(t, cc, c); got != int64(len(payload)) {
			t.Errorf("replica %d size = %d, want %d", i, got, len(payload))
		}
	}
	if st := c.servers[0].WriteStats(); st.RelaysStatic != 1 || st.RelaysScheduled != 0 {
		t.Errorf("WriteStats = %+v, want one static relay", st)
	}
}
