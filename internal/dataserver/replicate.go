package dataserver

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
)

// Re-replication control methods (the paper's §3.2 design goal of
// GFS/HDFS-grade fault tolerance).
const (
	// MethodReplicate instructs a dataserver to become a replica of a
	// file by copying it from a live peer.
	MethodReplicate = "ds.Replicate"
	// MethodUpdateMeta rewrites a stored file's metadata (the repaired
	// replica set, including a possibly promoted primary).
	MethodUpdateMeta = "ds.UpdateMeta"
)

// UpdateMetaArgs carries the new metadata for a stored file.
type UpdateMetaArgs struct {
	Info nameserver.FileInfo `json:"info"`
}

// ReplicateArgs ask the receiving server to fetch a file from a peer.
type ReplicateArgs struct {
	// Info is the file's metadata (with the post-repair replica set).
	Info nameserver.FileInfo `json:"info"`
	// SourceDataAddr is the bulk data endpoint of a live replica.
	SourceDataAddr string `json:"sourceDataAddr"`
	// SizeBytes is how much of the file to copy.
	SizeBytes int64 `json:"sizeBytes"`
}

// ReplicateReply reports the receiving server's local size afterwards.
type ReplicateReply struct {
	SizeBytes int64 `json:"sizeBytes"`
}

func (s *Server) registerReplicateHandler() error {
	err := s.ctl.Register(MethodReplicate, func(ctx context.Context, params json.RawMessage) (any, error) {
		var a ReplicateArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		size, err := s.replicateFrom(ctx, a)
		if err != nil {
			return nil, err
		}
		return ReplicateReply{SizeBytes: size}, nil
	})
	if err != nil {
		return err
	}
	return s.ctl.Register(MethodUpdateMeta, func(_ context.Context, params json.RawMessage) (any, error) {
		var a UpdateMetaArgs
		if err := json.Unmarshal(params, &a); err != nil {
			return nil, err
		}
		return struct{}{}, s.store.updateInfo(a.Info)
	})
}

// replicateFrom copies a file from a peer in MaxAppend slices, resuming
// from whatever prefix is already local (re-replication after a partial
// earlier attempt is incremental).
func (s *Server) replicateFrom(ctx context.Context, a ReplicateArgs) (int64, error) {
	if a.SizeBytes < 0 {
		return 0, fmt.Errorf("dataserver: negative replicate size %d", a.SizeBytes)
	}
	if err := s.store.prepare(a.Info); err != nil {
		return 0, err
	}
	fs, err := s.store.get(a.Info.ID)
	if err != nil {
		return 0, err
	}
	offset := fs.localSize()
	buf := make([]byte, MaxAppend)
	for offset < a.SizeBytes {
		n := a.SizeBytes - offset
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if err := s.fetchRange(ctx, a.SourceDataAddr, a.Info, offset, buf[:n]); err != nil {
			return offset, fmt.Errorf("dataserver: replicate %s from %s: %w", a.Info.ID, a.SourceDataAddr, err)
		}
		offset, err = s.store.appendAt(a.Info.ID, offset, buf[:n])
		if err != nil {
			return offset, err
		}
	}
	return offset, nil
}

// fetchRange reads one byte range from a peer over the bulk data
// protocol.
func (s *Server) fetchRange(ctx context.Context, addr string, info nameserver.FileInfo, offset int64, buf []byte) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	} else {
		_ = conn.SetDeadline(time.Now().Add(5 * time.Minute))
	}
	req := EncodeReadRequest(ReadRequest{
		FileID: info.ID,
		Offset: offset,
		Length: int64(len(buf)),
	})
	if _, err := conn.Write(req); err != nil {
		return err
	}
	if _, err := ReadResponseHeader(conn); err != nil {
		return err
	}
	_, err = io.ReadFull(conn, buf)
	return err
}
