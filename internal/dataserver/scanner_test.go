package dataserver

import (
	"bytes"
	"context"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
)

// TestRebuildFromRealDataservers exercises the full §3.3.1 crash-recovery
// path: a nameserver that lost its database reconstructs the file table by
// scanning live dataservers over RPC.
func TestRebuildFromRealDataservers(t *testing.T) {
	c := startCluster(t, 3, 32)

	// Write some data so local sizes are non-trivial.
	payload := bytes.Repeat([]byte("r"), 100)
	var reply AppendReply
	if err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: payload}, &reply); err != nil {
		t.Fatal(err)
	}

	// A fresh nameserver knowing only the dataservers (not the files).
	store := newNSStore(t)
	svc, err := nameserver.NewService(store, testRand())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range c.servers {
		err := svc.RegisterServer(nameserver.ServerInfo{
			ID:          s.cfg.ID,
			ControlAddr: s.ControlAddr(),
			DataAddr:    s.DataAddr(),
			Host:        s.cfg.Host,
			Pod:         i, // arbitrary coordinates
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if svc.NumFiles() != 0 {
		t.Fatal("fresh nameserver should know no files")
	}

	if err := svc.Rebuild(context.Background(), &RPCScanner{}); err != nil {
		t.Fatal(err)
	}
	got, err := svc.Lookup("cluster-file")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != c.info.ID {
		t.Errorf("rebuilt id = %s, want %s", got.ID, c.info.ID)
	}
	if got.SizeBytes != 100 {
		t.Errorf("rebuilt size = %d, want 100", got.SizeBytes)
	}
	if len(got.Replicas) != 3 {
		t.Errorf("rebuilt replicas = %d, want 3", len(got.Replicas))
	}
}

func TestRPCScannerDeadServer(t *testing.T) {
	sc := &RPCScanner{}
	_, err := sc.ScanFiles(context.Background(), nameserver.ServerInfo{
		ID:          "gone",
		ControlAddr: "127.0.0.1:1",
	})
	if err == nil {
		t.Fatal("scan of dead server succeeded")
	}
}
