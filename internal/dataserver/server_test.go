package dataserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/uuid"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// cluster is three running dataservers plus typed control clients.
type cluster struct {
	servers []*Server
	ctl     []*rpc.Peer
	info    nameserver.FileInfo
}

// startServer brings up one dataserver on ephemeral ports.
func startServer(t *testing.T, id string, pacer Pacer) *Server {
	t.Helper()
	s, err := New(Config{ID: id, Root: t.TempDir(), Host: "host-" + id, Pacer: pacer})
	if err != nil {
		t.Fatal(err)
	}
	ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(ctlLn, dataLn, ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// startCluster brings up n dataservers and a prepared, replicated file.
func startCluster(t *testing.T, n int, chunkSize int64) *cluster {
	t.Helper()
	c := &cluster{}
	var replicas []nameserver.ReplicaLoc
	for i := 0; i < n; i++ {
		s := startServer(t, fmt.Sprintf("ds-%d", i), nil)
		c.servers = append(c.servers, s)
		replicas = append(replicas, nameserver.ReplicaLoc{
			ServerID:    s.cfg.ID,
			ControlAddr: s.ControlAddr(),
			DataAddr:    s.DataAddr(),
			Host:        s.cfg.Host,
		})
		cc := rpc.NewPeer(s.ControlAddr(), rpc.Options{})
		t.Cleanup(func() { cc.Close() })
		c.ctl = append(c.ctl, cc)
	}
	c.info = nameserver.FileInfo{
		ID:        uuid.MustNew(),
		Name:      "cluster-file",
		ChunkSize: chunkSize,
		Replicas:  replicas,
	}
	var out struct{}
	if err := c.ctl[0].Call(context.Background(), MethodPrepare,
		PrepareArgs{Info: c.info, Relay: true}, &out); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPrepareRelayReachesAllReplicas(t *testing.T) {
	c := startCluster(t, 3, 64)
	for i, cc := range c.ctl {
		var reply StatReply
		if err := cc.Call(context.Background(), MethodStat, FileIDArgs{FileID: c.info.ID}, &reply); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if reply.SizeBytes != 0 {
			t.Errorf("replica %d size = %d", i, reply.SizeBytes)
		}
	}
}

func TestPrepareRelayRejectsNonPrimary(t *testing.T) {
	c := startCluster(t, 3, 64)
	info := c.info
	info.ID = uuid.MustNew()
	info.Name = "wrong-primary"
	var out struct{}
	err := c.ctl[1].Call(context.Background(), MethodPrepare, PrepareArgs{Info: info, Relay: true}, &out)
	if err == nil || !strings.Contains(err.Error(), "not the file's primary") {
		t.Errorf("err = %v, want not-primary", err)
	}
}

func TestAppendRelaysToReplicas(t *testing.T) {
	c := startCluster(t, 3, 16)
	payload := bytes.Repeat([]byte("ab"), 20) // 40 bytes across 3 chunks

	var reply AppendReply
	err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: payload}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if reply.SizeBytes != 40 {
		t.Fatalf("size = %d, want 40", reply.SizeBytes)
	}
	// Every replica holds all 40 bytes.
	for i, cc := range c.ctl {
		var st StatReply
		if err := cc.Call(context.Background(), MethodStat, FileIDArgs{FileID: c.info.ID}, &st); err != nil {
			t.Fatal(err)
		}
		if st.SizeBytes != 40 {
			t.Errorf("replica %d size = %d, want 40", i, st.SizeBytes)
		}
	}
}

func TestAppendRejectsNonPrimary(t *testing.T) {
	c := startCluster(t, 3, 16)
	var reply AppendReply
	err := c.ctl[2].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: []byte("x")}, &reply)
	if err == nil || !strings.Contains(err.Error(), "not the file's primary") {
		t.Errorf("err = %v, want not-primary", err)
	}
}

func TestAppendTooLarge(t *testing.T) {
	c := startCluster(t, 1, 1<<20)
	var reply AppendReply
	err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: make([]byte, MaxAppend+1)}, &reply)
	if err == nil {
		t.Error("oversized append accepted")
	}
}

func TestAppendFailsWhenReplicaDown(t *testing.T) {
	c := startCluster(t, 3, 16)
	// Kill a secondary replica; the primary's relay must fail loudly
	// rather than silently under-replicate.
	if err := c.servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	var reply AppendReply
	err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: []byte("x")}, &reply)
	if err == nil {
		t.Error("append succeeded with a dead replica")
	}
}

func TestConcurrentAppendsThroughPrimary(t *testing.T) {
	c := startCluster(t, 3, 256)
	var wg sync.WaitGroup
	const writers = 6
	const perWriter = 10
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc := rpc.NewPeer(c.servers[0].ControlAddr(), rpc.Options{})
			defer cc.Close()
			for i := 0; i < perWriter; i++ {
				var reply AppendReply
				if err := cc.Call(context.Background(), MethodAppend,
					AppendArgs{FileID: c.info.ID, Data: []byte("0123456789")}, &reply); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	want := int64(writers * perWriter * 10)
	for i, cc := range c.ctl {
		var st StatReply
		if err := cc.Call(context.Background(), MethodStat, FileIDArgs{FileID: c.info.ID}, &st); err != nil {
			t.Fatal(err)
		}
		if st.SizeBytes != want {
			t.Errorf("replica %d size = %d, want %d", i, st.SizeBytes, want)
		}
	}
	// No torn appends on any replica.
	for i := range c.servers {
		data := readAll(t, c.servers[i], c.info.ID, 0, want)
		for off := int64(0); off+10 <= int64(len(data)); off += 10 {
			if string(data[off:off+10]) != "0123456789" {
				t.Fatalf("replica %d interleaved append at %d", i, off)
			}
		}
	}
}

// readAll fetches a byte range through the bulk data protocol.
func readAll(t *testing.T, s *Server, id uuid.UUID, offset, length int64) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", s.DataAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := EncodeReadRequest(ReadRequest{FlowID: 1, FileID: id, Offset: offset, Length: length})
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResponseHeader(conn); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, length)
	if _, err := io.ReadFull(conn, data); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDataProtocolRoundTrip(t *testing.T) {
	c := startCluster(t, 2, 32)
	payload := bytes.Repeat([]byte("xyz"), 30) // 90 bytes
	var reply AppendReply
	if err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: payload}, &reply); err != nil {
		t.Fatal(err)
	}

	// Read the full range from the secondary replica.
	got := readAll(t, c.servers[1], c.info.ID, 0, 90)
	if !bytes.Equal(got, payload) {
		t.Error("data protocol returned wrong bytes")
	}
	// Ranged read.
	got = readAll(t, c.servers[0], c.info.ID, 30, 45)
	if !bytes.Equal(got, payload[30:75]) {
		t.Error("ranged read returned wrong bytes")
	}
}

func TestDataProtocolReportsSize(t *testing.T) {
	c := startCluster(t, 1, 32)
	if err := c.ctl[0].Call(context.Background(), MethodAppend,
		AppendArgs{FileID: c.info.ID, Data: bytes.Repeat([]byte("q"), 77)}, &AppendReply{}); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", c.servers[0].DataAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := EncodeReadRequest(ReadRequest{FileID: c.info.ID, Offset: 0, Length: 10})
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	size, err := ReadResponseHeader(conn)
	if err != nil {
		t.Fatal(err)
	}
	if size != 77 {
		t.Errorf("reported size = %d, want 77", size)
	}
}

func TestDataProtocolErrors(t *testing.T) {
	c := startCluster(t, 1, 32)

	read := func(id uuid.UUID, off, length int64) error {
		conn, err := net.Dial("tcp", c.servers[0].DataAddr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(EncodeReadRequest(ReadRequest{FileID: id, Offset: off, Length: length})); err != nil {
			t.Fatal(err)
		}
		_, err = ReadResponseHeader(conn)
		return err
	}

	if err := read(uuid.MustNew(), 0, 1); !errors.Is(err, ErrUnknownFile) {
		t.Errorf("unknown file err = %v", err)
	}
	if err := read(c.info.ID, 0, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("over-read err = %v", err)
	}
}

func TestRegistersWithNameserver(t *testing.T) {
	// Bring up a real nameserver.
	nsStore := newNSStore(t)
	svc, err := nameserver.NewService(nsStore, testRand())
	if err != nil {
		t.Fatal(err)
	}
	nsSrv := wire.NewServer()
	if err := nameserver.RegisterRPC(nsSrv, svc); err != nil {
		t.Fatal(err)
	}
	nsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go nsSrv.Serve(nsLn)
	t.Cleanup(func() { nsSrv.Close() })

	s, err := New(Config{ID: "reg-ds", Root: t.TempDir(), Host: "h", Pod: 1, Rack: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctlLn, _ := net.Listen("tcp", "127.0.0.1:0")
	dataLn, _ := net.Listen("tcp", "127.0.0.1:0")
	if err := s.Start(ctlLn, dataLn, nsLn.Addr().String()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	servers := svc.Servers()
	if len(servers) != 1 || servers[0].ID != "reg-ds" || servers[0].Pod != 1 || servers[0].Rack != 2 {
		t.Errorf("registered servers = %+v", servers)
	}
	if servers[0].ControlAddr != s.ControlAddr() || servers[0].DataAddr != s.DataAddr() {
		t.Error("registered addresses do not match server addresses")
	}
}

func TestListFilesRPC(t *testing.T) {
	c := startCluster(t, 1, 32)
	var recs []nameserver.FileRecord
	if err := c.ctl[0].Call(context.Background(), MethodListFiles, struct{}{}, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Info.ID != c.info.ID {
		t.Errorf("ListFiles = %+v", recs)
	}
}

func TestDeleteRPC(t *testing.T) {
	c := startCluster(t, 1, 32)
	var out struct{}
	if err := c.ctl[0].Call(context.Background(), MethodDelete, FileIDArgs{FileID: c.info.ID}, &out); err != nil {
		t.Fatal(err)
	}
	var st StatReply
	err := c.ctl[0].Call(context.Background(), MethodStat, FileIDArgs{FileID: c.info.ID}, &st)
	if err == nil {
		t.Error("stat succeeded after delete")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Root: t.TempDir()}); err == nil {
		t.Error("missing ID accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := startServer(t, "close-ds", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// slowPacer throttles to verify the pacer hook is honoured.
type slowPacer struct {
	delay time.Duration
}

type slowWriter struct {
	w     io.Writer
	delay time.Duration
}

func (p *slowPacer) Writer(_ uint64, w io.Writer) io.Writer {
	return &slowWriter{w: w, delay: p.delay}
}

func (sw *slowWriter) Write(b []byte) (int, error) {
	time.Sleep(sw.delay)
	return sw.w.Write(b)
}

func TestPacerIsApplied(t *testing.T) {
	s := startServer(t, "paced-ds", &slowPacer{delay: 30 * time.Millisecond})
	info := nameserver.FileInfo{
		ID:        uuid.MustNew(),
		Name:      "paced",
		ChunkSize: 1 << 20,
		Replicas:  []nameserver.ReplicaLoc{{ServerID: "paced-ds"}},
	}
	cc := rpc.NewPeer(s.ControlAddr(), rpc.Options{})
	defer cc.Close()
	var out struct{}
	if err := cc.Call(context.Background(), MethodPrepare, PrepareArgs{Info: info}, &out); err != nil {
		t.Fatal(err)
	}
	if err := cc.Call(context.Background(), MethodAppend,
		AppendArgs{FileID: info.ID, Data: []byte("0123456789")}, &AppendReply{}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	got := readAll(t, s, info.ID, 0, 10)
	if string(got) != "0123456789" {
		t.Fatalf("read = %q", got)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("read completed in %v; pacer not applied", elapsed)
	}
}
